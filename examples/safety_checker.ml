(* The compiler safety analysis (sec 3.3 / 4.3) on display.

   Builds two small IR programs — one that respects the multi-VAS
   pointer rules and one that dereferences a pointer in the wrong
   address space — runs the dataflow analysis, inserts checks only
   where safety cannot be proven, and executes both to show the check
   trapping before the unsafe access.

   Run with: dune exec examples/safety_checker.exe *)

open Sj_checker

let block label instrs term = { Ir.label; instrs; term }
let func fname params blocks = { Ir.fname; params; blocks }

let describe name prog =
  Format.printf "--- %s ---@.%a" name Ir.pp_program prog;
  (match Ir.validate prog with
  | Ok () -> ()
  | Error e ->
    Format.printf "invalid IR: %s@." e;
    exit 1);
  let info = Analysis.analyze prog in
  let violations = Analysis.violations info in
  Format.printf "analysis: %d unsafe site(s)@." (List.length violations);
  List.iter (fun v -> Format.printf "  %a@." Analysis.pp_violation v) violations;
  let instrumented, report = Transform.instrument prog in
  Format.printf "transform: %d check(s) inserted, %d of %d memory ops elided@."
    report.Transform.checks_inserted report.Transform.elided report.Transform.memory_ops;
  (match Interp.run instrumented with
  | Interp.Finished v ->
    Format.printf "execution: finished%s@."
      (match v with Some (Interp.Int n) -> Printf.sprintf " with %d" n | _ -> "")
  | Interp.Trapped { site; what } -> Format.printf "execution: TRAPPED at %s (%s)@." site what
  | Interp.Faulted { site; what } -> Format.printf "execution: FAULTED at %s (%s)?!@." site what
  | Interp.Type_fault { site; what } -> Format.printf "execution: type fault at %s (%s)@." site what
  | Interp.Out_of_fuel -> Format.printf "execution: out of fuel@.");
  Format.printf "@."

let () =
  (* Safe: allocate and use within one VAS; share through the common
     region (stack) legally. *)
  describe "safe program"
    {
      Ir.funcs =
        [
          func "main" []
            [
              block "entry"
                [
                  Ir.Alloca "slot";
                  Ir.Switch "v1";
                  Ir.Malloc "p";
                  Ir.Const ("x", 42);
                  Ir.Store ("p", "x");
                  Ir.Store ("slot", "p");
                  Ir.Load ("y", "p");
                ]
                (Ir.Ret (Some "y"));
            ];
        ];
    };

  (* Unsafe: the pointer crosses a switch; the analysis flags it and
     the inserted check traps before the bad dereference. *)
  describe "unsafe program (cross-VAS dereference)"
    {
      Ir.funcs =
        [
          func "main" []
            [
              block "entry"
                [
                  Ir.Switch "v1";
                  Ir.Malloc "p";
                  Ir.Const ("x", 7);
                  Ir.Store ("p", "x");
                  Ir.Switch "v2";
                  Ir.Load ("y", "p");
                ]
                (Ir.Ret (Some "y"));
            ];
        ];
    }
