test/test_api_fuzz.ml: Alcotest Api Array Errors Gen Hashtbl Int64 List Printf QCheck QCheck_alcotest Segment Size Sj_core Sj_kernel Sj_machine Sj_paging Sj_util Vas
