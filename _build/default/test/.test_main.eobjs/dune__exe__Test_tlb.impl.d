test/test_tlb.ml: Addr Alcotest Gen Hashtbl List Page_table Prot QCheck QCheck_alcotest Size Sj_paging Sj_tlb Sj_util Test
