test/test_cow.ml: Addr Alcotest Api Segment Size Sj_core Sj_kernel Sj_machine Sj_mem Sj_paging Sj_util
