test/test_tiers.ml: Addr Alcotest Api Bytes Printf Rng Segment Size Sj_core Sj_kernel Sj_machine Sj_mem Sj_paging Sj_util
