test/test_des.ml: Alcotest Engine Gen List QCheck QCheck_alcotest Resource Sj_des
