test/test_gups.ml: Alcotest Float List Size Sj_gups Sj_util
