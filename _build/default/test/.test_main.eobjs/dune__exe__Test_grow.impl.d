test/test_grow.ml: Alcotest Api Option Segment Size Sj_alloc Sj_core Sj_kernel Sj_machine Sj_paging Sj_persist Sj_util
