test/test_util.ml: Addr Alcotest Array Gen List QCheck QCheck_alcotest Rng Size Sj_util Stats String Table
