test/test_core.ml: Alcotest Api Bytes Errors Gen List QCheck QCheck_alcotest Registry Segment Size Sj_core Sj_kernel Sj_machine Sj_mem Sj_paging Sj_util Vas
