test/test_alloc.ml: Alcotest Gen List Option QCheck QCheck_alcotest Sj_alloc
