test/test_hugepages.ml: Addr Alcotest Api Array Bytes Printf Rng Segment Size Sj_core Sj_kernel Sj_machine Sj_mem Sj_paging Sj_persist Sj_tlb Sj_util
