test/test_machine.ml: Addr Alcotest Bytes Cost_model Machine Platform Size Sj_machine Sj_mem Sj_paging Sj_tlb Sj_util
