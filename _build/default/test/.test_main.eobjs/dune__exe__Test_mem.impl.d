test/test_mem.ml: Addr Alcotest Bytes QCheck QCheck_alcotest Size Sj_mem Sj_util String
