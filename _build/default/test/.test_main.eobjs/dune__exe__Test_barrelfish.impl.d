test/test_barrelfish.ml: Alcotest Api List Printf Size Sj_core Sj_kernel Sj_machine Sj_paging Sj_util
