test/test_notify.ml: Alcotest Bytes Notify Redisjmp Resp Size Sj_core Sj_kernel Sj_kvstore Sj_machine Sj_util
