test/test_kernel.ml: Acl Alcotest Cap Layout List Process Size Sj_kernel Sj_machine Sj_mem Sj_paging Sj_util Vm_object Vmspace
