test/test_ipc.ml: Alcotest Bytes Gen List QCheck QCheck_alcotest Size Sj_ipc Sj_machine Sj_util
