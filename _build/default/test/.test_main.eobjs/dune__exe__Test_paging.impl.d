test/test_paging.ml: Addr Alcotest Array Gen Hashtbl List Page_table Prot QCheck QCheck_alcotest Size Sj_mem Sj_paging Sj_util
