test/test_compress.ml: Alcotest Buffer Bytes Char Gen List Printf QCheck QCheck_alcotest Sj_compress Sj_util String
