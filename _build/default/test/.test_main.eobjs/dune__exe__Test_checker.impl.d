test/test_checker.ml: Alcotest Analysis Format Interp Ir List Printf QCheck QCheck_alcotest Result Sj_checker Transform
