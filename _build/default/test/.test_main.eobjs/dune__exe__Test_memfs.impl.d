test/test_memfs.ml: Alcotest Bytes Gen List QCheck QCheck_alcotest Size Sj_machine Sj_mem Sj_memfs Sj_util String
