test/test_checker_parser.ml: Alcotest Analysis Filename Format Gen Interp Ir List Parser Printf QCheck QCheck_alcotest Sj_checker String Transform
