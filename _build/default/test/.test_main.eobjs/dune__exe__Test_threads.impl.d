test/test_threads.ml: Alcotest Api Errors List Segment Size Sj_core Sj_kernel Sj_machine Sj_mem Sj_paging Sj_util
