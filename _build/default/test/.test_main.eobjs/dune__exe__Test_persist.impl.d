test/test_persist.ml: Alcotest Api Bytes Errors Gen Int64 List QCheck QCheck_alcotest Segment Size Sj_core Sj_kernel Sj_machine Sj_paging Sj_persist Sj_util String Vas
