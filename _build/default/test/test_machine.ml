(* Tests for the machine layer: cores, caches, translation costs. *)
open Sj_util
open Sj_machine
module Core = Machine.Core
module Pm = Sj_mem.Phys_mem
module Page_table = Sj_paging.Page_table
module Prot = Sj_paging.Prot

(* A small bespoke platform to keep tests fast. *)
let tiny : Platform.t =
  {
    Platform.m2 with
    name = "tiny";
    mem_size = Size.mib 64;
    sockets = 2;
    cores_per_socket = 2;
  }

let setup () =
  let m = Machine.create tiny in
  let pt = Page_table.create (Machine.mem m) in
  let frames = Pm.alloc_frames (Machine.mem m) ~n:16 in
  Page_table.map_range pt ~va:0x10000 ~frames ~prot:Prot.rw;
  let core = Machine.core m 0 in
  Core.set_page_table core (Some pt);
  (m, pt, core)

let test_cr3_cost () =
  let m = Machine.create tiny in
  let core = Machine.core m 0 in
  let pt = Page_table.create (Machine.mem m) in
  let c0 = Core.cycles core in
  Core.set_page_table core (Some pt);
  Alcotest.(check int) "untagged CR3" (Machine.cost m).cr3_load (Core.cycles core - c0);
  let c1 = Core.cycles core in
  Core.set_page_table core ~tag:5 (Some pt);
  Alcotest.(check int) "tagged CR3" (Machine.cost m).cr3_load_tagged (Core.cycles core - c1)

let test_load_store_roundtrip () =
  let _, _, core = setup () in
  Core.store64 core ~va:0x10008 0xFACEFEEDL;
  Alcotest.(check int64) "value" 0xFACEFEEDL (Core.load64 core ~va:0x10008);
  Core.store8 core ~va:0x10000 0x7F;
  Alcotest.(check int) "byte" 0x7F (Core.load8 core ~va:0x10000)

let test_page_fault () =
  let _, _, core = setup () in
  Alcotest.(check bool) "fault on unmapped" true
    (try
       ignore (Core.load64 core ~va:0xDEAD0000);
       false
     with Machine.Page_fault _ -> true)

let test_protection_fault () =
  let m, pt, core = setup () in
  let f = Pm.alloc_frame (Machine.mem m) in
  Page_table.map pt ~va:0x80000 ~pa:(Pm.base_of_frame f) ~prot:Prot.r ~size:Page_table.P4K;
  ignore (Core.load64 core ~va:0x80000);
  Alcotest.(check bool) "write to read-only faults" true
    (try
       Core.store64 core ~va:0x80000 1L;
       false
     with Machine.Protection_fault _ -> true)

let test_no_page_table () =
  let m = Machine.create tiny in
  let core = Machine.core m 0 in
  Alcotest.check_raises "no pt" Machine.No_page_table (fun () ->
      ignore (Core.load64 core ~va:0x1000))

let test_tlb_warms_up () =
  let _, _, core = setup () in
  ignore (Core.load64 core ~va:0x10000);
  let misses = Core.tlb_misses core in
  ignore (Core.load64 core ~va:0x10010);
  Alcotest.(check int) "second access hits TLB" misses (Core.tlb_misses core)

let test_cache_locality_cheaper () =
  let _, _, core = setup () in
  (* First access: TLB miss + walk + DRAM. *)
  ignore (Core.load64 core ~va:0x10000);
  let c1 = Core.cycles core in
  ignore (Core.load64 core ~va:0x10000);
  let hot = Core.cycles core - c1 in
  Alcotest.(check bool) "hot access is L1-priced" true (hot <= 8);
  (* A cold page costs translation + memory. *)
  let c2 = Core.cycles core in
  ignore (Core.load64 core ~va:0x1C000);
  let cold = Core.cycles core - c2 in
  Alcotest.(check bool) "cold access much dearer" true (cold > 10 * hot)

let test_cross_page_store () =
  let _, _, core = setup () in
  let va = 0x10000 + Addr.page_size - 4 in
  Core.store64 core ~va 0x1122334455667788L;
  Alcotest.(check int64) "straddle" 0x1122334455667788L (Core.load64 core ~va)

let test_bytes_roundtrip () =
  let _, _, core = setup () in
  let msg = Bytes.of_string "virtual address spaces as first-class citizens" in
  Core.store_bytes core ~va:0x11f00 msg;
  Alcotest.(check string) "bytes" (Bytes.to_string msg)
    (Bytes.to_string (Core.load_bytes core ~va:0x11f00 ~len:(Bytes.length msg)))

let test_memset () =
  let _, _, core = setup () in
  Core.memset core ~va:0x10100 ~len:300 'q';
  let out = Core.load_bytes core ~va:0x10100 ~len:300 in
  Alcotest.(check bool) "filled" true (Bytes.for_all (fun c -> c = 'q') out);
  (* Neighbouring bytes untouched. *)
  Alcotest.(check int) "before untouched" 0 (Core.load8 core ~va:0x100ff);
  Alcotest.(check int) "after untouched" 0 (Core.load8 core ~va:(0x10100 + 300))

let test_memcpy () =
  let _, _, core = setup () in
  Core.store_bytes core ~va:0x10000 (Bytes.of_string "spacejmp!");
  Core.memcpy core ~dst:0x12000 ~src:0x10000 ~len:9;
  Alcotest.(check string) "copied" "spacejmp!"
    (Bytes.to_string (Core.load_bytes core ~va:0x12000 ~len:9))

let test_untagged_switch_flushes () =
  let m, pt, core = setup () in
  ignore (Core.load64 core ~va:0x10000);
  ignore m;
  let misses0 = Core.tlb_misses core in
  (* Untagged switch to the same table: TLB flushed, so next access misses. *)
  Core.set_page_table core (Some pt);
  ignore (Core.load64 core ~va:0x10000);
  Alcotest.(check int) "miss after untagged switch" (misses0 + 1) (Core.tlb_misses core)

let test_tagged_switch_preserves () =
  let m, pt, core = setup () in
  ignore m;
  Core.set_page_table core ~tag:3 (Some pt);
  ignore (Core.load64 core ~va:0x10000);
  let misses0 = Core.tlb_misses core in
  Core.set_page_table core ~tag:4 (Some pt);
  Core.set_page_table core ~tag:3 (Some pt);
  ignore (Core.load64 core ~va:0x10000);
  Alcotest.(check int) "no miss after tagged round trip" misses0 (Core.tlb_misses core)

let test_vas_switch_cost_table2 () =
  (* The cost model must reproduce Table 2 exactly on M2. *)
  let c = Cost_model.m2 in
  Alcotest.(check int) "DF untagged" 1127 (Cost_model.vas_switch_cost c ~os:`Dragonfly ~tagged:false);
  Alcotest.(check int) "DF tagged" 807 (Cost_model.vas_switch_cost c ~os:`Dragonfly ~tagged:true);
  Alcotest.(check int) "BF untagged" 664 (Cost_model.vas_switch_cost c ~os:`Barrelfish ~tagged:false);
  Alcotest.(check int) "BF tagged" 462 (Cost_model.vas_switch_cost c ~os:`Barrelfish ~tagged:true)

let test_numa_remote_dearer () =
  let m = Machine.create tiny in
  let mem = Machine.mem m in
  let pt = Page_table.create mem in
  let local = Pm.alloc_frame ~node:0 mem in
  let remote = Pm.alloc_frame ~node:1 mem in
  Page_table.map pt ~va:0x10000 ~pa:(Pm.base_of_frame local) ~prot:Prot.rw ~size:Page_table.P4K;
  Page_table.map pt ~va:0x20000 ~pa:(Pm.base_of_frame remote) ~prot:Prot.rw ~size:Page_table.P4K;
  let core = Machine.core m 0 in
  Core.set_page_table core (Some pt);
  (* Warm the TLB so only DRAM cost differs. *)
  ignore (Core.load64 core ~va:0x10000);
  ignore (Core.load64 core ~va:0x20000);
  Sj_tlb.Tlb.flush_all (Core.tlb core);
  let t0 = Core.cycles core in
  ignore (Core.load64 core ~va:0x10f00);
  let local_cost = Core.cycles core - t0 in
  let t1 = Core.cycles core in
  ignore (Core.load64 core ~va:0x20f00);
  let remote_cost = Core.cycles core - t1 in
  Alcotest.(check bool) "remote > local" true (remote_cost > local_cost)

let suite =
  [
    Alcotest.test_case "CR3 write costs" `Quick test_cr3_cost;
    Alcotest.test_case "load/store roundtrip" `Quick test_load_store_roundtrip;
    Alcotest.test_case "page fault" `Quick test_page_fault;
    Alcotest.test_case "protection fault" `Quick test_protection_fault;
    Alcotest.test_case "no page table" `Quick test_no_page_table;
    Alcotest.test_case "TLB warms up" `Quick test_tlb_warms_up;
    Alcotest.test_case "cache locality" `Quick test_cache_locality_cheaper;
    Alcotest.test_case "cross-page store" `Quick test_cross_page_store;
    Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
    Alcotest.test_case "memset" `Quick test_memset;
    Alcotest.test_case "memcpy" `Quick test_memcpy;
    Alcotest.test_case "untagged switch flushes TLB" `Quick test_untagged_switch_flushes;
    Alcotest.test_case "tagged switch preserves TLB" `Quick test_tagged_switch_preserves;
    Alcotest.test_case "Table 2 switch costs" `Quick test_vas_switch_cost_table2;
    Alcotest.test_case "NUMA remote access dearer" `Quick test_numa_remote_dearer;
  ]
