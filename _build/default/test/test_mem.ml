(* Tests for simulated physical memory. *)
open Sj_util
module Pm = Sj_mem.Phys_mem

let mk () = Pm.create ~size:(Size.mib 4) ~numa_nodes:2

let test_create () =
  let m = mk () in
  Alcotest.(check int) "size" (Size.mib 4) (Pm.size m);
  Alcotest.(check int) "frames" 1024 (Pm.frames_total m);
  Alcotest.(check int) "none allocated" 0 (Pm.frames_allocated m)

let test_alloc_free () =
  let m = mk () in
  let f = Pm.alloc_frame m in
  Alcotest.(check bool) "allocated" true (Pm.is_allocated m f);
  Alcotest.(check int) "count" 1 (Pm.frames_allocated m);
  Pm.free_frame m f;
  Alcotest.(check bool) "freed" false (Pm.is_allocated m f);
  Alcotest.(check int) "count back to zero" 0 (Pm.frames_allocated m)

let test_double_free () =
  let m = mk () in
  let f = Pm.alloc_frame m in
  Pm.free_frame m f;
  Alcotest.check_raises "double free"
    (Invalid_argument "Phys_mem.free_frame: frame not allocated") (fun () -> Pm.free_frame m f)

let test_frame_reuse () =
  let m = mk () in
  let f1 = Pm.alloc_frame m in
  Pm.free_frame m f1;
  let f2 = Pm.alloc_frame m in
  Alcotest.(check int) "freed frame reused" (f1 :> int) (f2 :> int)

let test_numa_placement () =
  let m = mk () in
  let f0 = Pm.alloc_frame ~node:0 m in
  let f1 = Pm.alloc_frame ~node:1 m in
  Alcotest.(check int) "node 0" 0 (Pm.node_of_frame m f0);
  Alcotest.(check int) "node 1" 1 (Pm.node_of_frame m f1)

let test_numa_fallback () =
  (* Tiny memory: exhaust node 0, allocation spills to node 1. *)
  let m = Pm.create ~size:(Size.kib 16) ~numa_nodes:2 in
  let _ = Pm.alloc_frame ~node:0 m in
  let _ = Pm.alloc_frame ~node:0 m in
  let f = Pm.alloc_frame ~node:0 m in
  Alcotest.(check int) "spilled to node 1" 1 (Pm.node_of_frame m f)

let test_out_of_memory () =
  let m = Pm.create ~size:(Size.kib 8) ~numa_nodes:1 in
  let _ = Pm.alloc_frame m and _ = Pm.alloc_frame m in
  Alcotest.check_raises "oom" Pm.Out_of_memory (fun () -> ignore (Pm.alloc_frame m))

let test_zero_on_alloc () =
  let m = mk () in
  let f = Pm.alloc_frame m in
  let pa = Pm.base_of_frame f in
  Alcotest.(check int) "reads zero" 0 (Pm.read8 m ~pa);
  Alcotest.(check int64) "reads zero 64" 0L (Pm.read64 m ~pa)

let test_rw_roundtrip () =
  let m = mk () in
  let f = Pm.alloc_frame m in
  let pa = Pm.base_of_frame f in
  Pm.write8 m ~pa 0xAB;
  Alcotest.(check int) "byte" 0xAB (Pm.read8 m ~pa);
  Pm.write64 m ~pa:(pa + 8) 0x1122334455667788L;
  Alcotest.(check int64) "word" 0x1122334455667788L (Pm.read64 m ~pa:(pa + 8))

let test_cross_frame_access () =
  let m = mk () in
  (* Two consecutive frames from the bump allocator are physically adjacent. *)
  let f1 = Pm.alloc_frame m in
  let f2 = Pm.alloc_frame m in
  Alcotest.(check int) "adjacent" ((f1 :> int) + 1) (f2 :> int);
  let pa = Pm.base_of_frame f1 + Addr.page_size - 4 in
  Pm.write64 m ~pa 0x0102030405060708L;
  Alcotest.(check int64) "straddling word" 0x0102030405060708L (Pm.read64 m ~pa);
  let data = Bytes.of_string "hello, spacejmp!" in
  Pm.write_bytes m ~pa data;
  Alcotest.(check string) "straddling bytes" "hello, spacejmp!"
    (Bytes.to_string (Pm.read_bytes m ~pa ~len:(Bytes.length data)))

let test_unallocated_access_rejected () =
  let m = mk () in
  Alcotest.(check_raises) "read unallocated"
    (Invalid_argument "Phys_mem.read8: access to unallocated frame 100") (fun () ->
      ignore (Pm.read8 m ~pa:(100 * Addr.page_size)))

let test_zero_frame () =
  let m = mk () in
  let f = Pm.alloc_frame m in
  let pa = Pm.base_of_frame f in
  Pm.write8 m ~pa 1;
  Pm.zero_frame m f;
  Alcotest.(check int) "zeroed" 0 (Pm.read8 m ~pa)

let prop_rw_roundtrip =
  QCheck.Test.make ~name:"write64/read64 roundtrip at random offsets" ~count:300
    QCheck.(pair (int_bound (Size.mib 4 - 8)) int64)
    (fun (off, v) ->
      let m = Pm.create ~size:(Size.mib 4) ~numa_nodes:1 in
      let _ = Pm.alloc_frames m ~n:1024 in
      Pm.write64 m ~pa:off v;
      Pm.read64 m ~pa:off = v)

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"write_bytes/read_bytes roundtrip" ~count:200
    QCheck.(pair (int_bound (Size.kib 64)) string)
    (fun (off, s) ->
      QCheck.assume (String.length s > 0);
      let m = Pm.create ~size:(Size.kib 128) ~numa_nodes:1 in
      let _ = Pm.alloc_frames m ~n:32 in
      let off = off mod (Size.kib 128 - String.length s) in
      Pm.write_bytes m ~pa:off (Bytes.of_string s);
      Bytes.to_string (Pm.read_bytes m ~pa:off ~len:(String.length s)) = s)

let suite =
  [
    Alcotest.test_case "create" `Quick test_create;
    Alcotest.test_case "alloc/free" `Quick test_alloc_free;
    Alcotest.test_case "double free detected" `Quick test_double_free;
    Alcotest.test_case "frame reuse" `Quick test_frame_reuse;
    Alcotest.test_case "NUMA placement" `Quick test_numa_placement;
    Alcotest.test_case "NUMA fallback" `Quick test_numa_fallback;
    Alcotest.test_case "out of memory" `Quick test_out_of_memory;
    Alcotest.test_case "zero on alloc" `Quick test_zero_on_alloc;
    Alcotest.test_case "read/write roundtrip" `Quick test_rw_roundtrip;
    Alcotest.test_case "cross-frame access" `Quick test_cross_frame_access;
    Alcotest.test_case "unallocated access rejected" `Quick test_unallocated_access_rejected;
    Alcotest.test_case "zero_frame" `Quick test_zero_frame;
    QCheck_alcotest.to_alcotest prop_rw_roundtrip;
    QCheck_alcotest.to_alcotest prop_bytes_roundtrip;
  ]
