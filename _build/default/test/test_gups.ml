(* Tests for the GUPS workload (sec 5.2). Small configurations keep the
   suite fast; the assertions target the paper's qualitative claims. *)
module Gups = Sj_gups.Gups
open Sj_util

let small ?(windows = 4) ?(updates = 16) ?(tags = false) () =
  {
    Gups.default_config with
    windows;
    updates_per_set = updates;
    window_size = Size.mib 4;
    window_visits = 50;
    tags;
  }

let test_all_designs_complete () =
  List.iter
    (fun design ->
      let r = Gups.run (small ()) ~design in
      Alcotest.(check int) "updates" (50 * 16) r.Gups.updates;
      Alcotest.(check bool) "positive mups" true (r.Gups.mups > 0.0))
    [ Gups.Spacejmp; Gups.Map; Gups.Mp ]

let test_single_window_parity () =
  (* Paper: with one window, all designs perform equally well. *)
  let mups design = (Gups.run (small ~windows:1 ()) ~design).Gups.mups in
  let sj = mups Gups.Spacejmp and map = mups Gups.Map and mp = mups Gups.Mp in
  Alcotest.(check bool) "within 10%" true
    (Float.abs (sj -. map) /. sj < 0.1 && Float.abs (sj -. mp) /. sj < 0.1)

let test_map_collapses () =
  let sj = (Gups.run (small ()) ~design:Gups.Spacejmp).Gups.mups in
  let map = (Gups.run (small ()) ~design:Gups.Map).Gups.mups in
  Alcotest.(check bool) "MAP at least 10x slower with remapping" true (map *. 10.0 < sj)

let test_spacejmp_beats_mp () =
  let sj = (Gups.run (small ()) ~design:Gups.Spacejmp).Gups.mups in
  let mp = (Gups.run (small ()) ~design:Gups.Mp).Gups.mups in
  Alcotest.(check bool) "SpaceJMP at least as fast as MP" true (sj >= mp *. 0.95)

let test_switch_rate_counted () =
  let r = Gups.run (small ()) ~design:Gups.Spacejmp in
  Alcotest.(check bool) "switches happen" true (r.Gups.switches_per_sec > 0.0);
  let r1 = Gups.run (small ~windows:1 ()) ~design:Gups.Spacejmp in
  Alcotest.(check bool) "single window barely switches" true
    (r1.Gups.switches_per_sec < r.Gups.switches_per_sec /. 5.0)

let test_tags_help () =
  let off = Gups.run (small ~windows:4 ()) ~design:Gups.Spacejmp in
  let on = Gups.run (small ~windows:4 ~tags:true ()) ~design:Gups.Spacejmp in
  Alcotest.(check bool) "tagged at least as fast" true (on.Gups.mups >= off.Gups.mups *. 0.99)

let test_deterministic () =
  let a = Gups.run (small ()) ~design:Gups.Spacejmp in
  let b = Gups.run (small ()) ~design:Gups.Spacejmp in
  Alcotest.(check int) "same cycles" a.Gups.cycles b.Gups.cycles

let test_update_set_size_effect () =
  (* Larger update sets amortize switching: higher MUPS. *)
  let u16 = (Gups.run (small ~updates:16 ()) ~design:Gups.Spacejmp).Gups.mups in
  let u64 = (Gups.run (small ~updates:64 ()) ~design:Gups.Spacejmp).Gups.mups in
  Alcotest.(check bool) "64-update sets faster per update" true (u64 > u16)

let suite =
  [
    Alcotest.test_case "all designs complete" `Quick test_all_designs_complete;
    Alcotest.test_case "single-window parity" `Quick test_single_window_parity;
    Alcotest.test_case "MAP collapses" `Quick test_map_collapses;
    Alcotest.test_case "SpaceJMP >= MP" `Quick test_spacejmp_beats_mp;
    Alcotest.test_case "switch rate counted" `Quick test_switch_rate_counted;
    Alcotest.test_case "tags help" `Quick test_tags_help;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "update-set size effect" `Quick test_update_set_size_effect;
  ]
