(* Tests for the safety IR, the VAS dataflow analysis, the
   check-inserting transform, and the interpreter — including the
   cross-validation properties:
     1. programs the analysis calls clean never fault at runtime;
     2. instrumented programs never fault (checks trap first). *)
open Sj_checker

let block label instrs term = { Ir.label; instrs; term }
let func fname params blocks = { Ir.fname; params; blocks }
let prog funcs = { Ir.funcs }

let validate_ok p =
  match Ir.validate p with
  | Ok () -> ()
  | Error e -> Alcotest.failf "program invalid: %s" e

(* The paper's motivating unsafe pattern: allocate in v1, switch to v2,
   dereference. *)
let cross_vas_deref =
  prog
    [
      func "main" []
        [
          block "entry"
            [
              Ir.Switch "v1";
              Ir.Malloc "p";
              Ir.Switch "v2";
              Ir.Load ("x", "p");
            ]
            (Ir.Ret (Some "x"));
        ];
    ]

let safe_common_only =
  prog
    [
      func "main" []
        [
          block "entry"
            [
              Ir.Alloca "s";
              Ir.Const ("c", 7);
              Ir.Store ("s", "c");
              Ir.Load ("x", "s");
            ]
            (Ir.Ret (Some "x"));
        ];
    ]

let safe_single_vas =
  prog
    [
      func "main" []
        [
          block "entry"
            [
              Ir.Switch "v1";
              Ir.Malloc "p";
              Ir.Const ("c", 1);
              Ir.Store ("p", "c");
              Ir.Load ("x", "p");
            ]
            (Ir.Ret (Some "x"));
        ];
    ]

let test_validate () =
  validate_ok cross_vas_deref;
  validate_ok safe_common_only;
  (* Double assignment rejected. *)
  let bad =
    prog [ func "main" [] [ block "entry" [ Ir.Const ("x", 1); Ir.Const ("x", 2) ] (Ir.Ret None) ] ]
  in
  Alcotest.(check bool) "SSA violation" true (Result.is_error (Ir.validate bad));
  (* Undefined use rejected. *)
  let bad2 = prog [ func "main" [] [ block "entry" [ Ir.Load ("x", "ghost") ] (Ir.Ret None) ] ] in
  Alcotest.(check bool) "undefined reg" true (Result.is_error (Ir.validate bad2));
  (* Missing branch target. *)
  let bad3 = prog [ func "main" [] [ block "entry" [] (Ir.Jmp "nowhere") ] ] in
  Alcotest.(check bool) "missing target" true (Result.is_error (Ir.validate bad3))

let test_analysis_flags_cross_vas () =
  let info = Analysis.analyze cross_vas_deref in
  let violations = Analysis.violations info in
  Alcotest.(check int) "one violation" 1 (List.length violations);
  match violations with
  | [ v ] ->
    Alcotest.(check bool) "wrong-vas reason" true
      (List.mem Analysis.Deref_wrong_vas v.reasons)
  | _ -> Alcotest.fail "expected one violation"

let test_analysis_accepts_safe () =
  Alcotest.(check int) "common-only clean" 0
    (List.length (Analysis.violations (Analysis.analyze safe_common_only)));
  Alcotest.(check int) "single-vas clean" 0
    (List.length (Analysis.violations (Analysis.analyze safe_single_vas)))

let test_vas_valid_tracking () =
  let info = Analysis.analyze safe_single_vas in
  let v = Analysis.vas_valid info ~func:"main" "p" in
  Alcotest.(check bool) "p valid in v1" true
    (Analysis.Vset.mem (Analysis.Velt.V "v1") v);
  Alcotest.(check int) "exactly one" 1 (Analysis.Vset.cardinal v);
  let s = Analysis.vas_valid info ~func:"main" "c" in
  Alcotest.(check bool) "const is not a pointer" true (Analysis.Vset.is_empty s)

let test_phi_ambiguity_flagged () =
  (* p is a phi of pointers from two different VASes: deref ambiguous. *)
  let p =
    prog
      [
        func "main" []
          [
            block "entry" [ Ir.Const ("cond", 1) ] (Ir.Br ("cond", "a", "b"));
            block "a" [ Ir.Switch "v1"; Ir.Malloc "p1" ] (Ir.Jmp "join");
            block "b" [ Ir.Switch "v2"; Ir.Malloc "p2" ] (Ir.Jmp "join");
            block "join"
              [ Ir.Phi ("p", [ ("a", "p1"); ("b", "p2") ]); Ir.Load ("x", "p") ]
              (Ir.Ret (Some "x"));
          ];
      ]
  in
  validate_ok p;
  let info = Analysis.analyze p in
  let violations = Analysis.violations info in
  Alcotest.(check bool) "flagged" true (List.length violations >= 1);
  let v = List.hd violations in
  Alcotest.(check bool) "ambiguous target" true
    (List.mem Analysis.Deref_ambiguous_target v.reasons
    || List.mem Analysis.Deref_ambiguous_current v.reasons)

let test_store_escape_flagged () =
  (* Storing a common-region pointer into VAS memory violates 3.3. *)
  let p =
    prog
      [
        func "main" []
          [
            block "entry"
              [
                Ir.Alloca "s";
                Ir.Switch "v1";
                Ir.Malloc "p";
                Ir.Store ("p", "s");
              ]
              (Ir.Ret None);
          ];
      ]
  in
  validate_ok p;
  let info = Analysis.analyze p in
  Alcotest.(check bool) "escape flagged" true
    (List.exists
       (fun (v : Analysis.violation) -> List.mem Analysis.Store_pointer_escape v.reasons)
       (Analysis.violations info))

let test_store_to_common_ok () =
  (* Storing a VAS pointer into the common region is fine. *)
  let p =
    prog
      [
        func "main" []
          [
            block "entry"
              [ Ir.Alloca "s"; Ir.Switch "v1"; Ir.Malloc "p"; Ir.Store ("s", "p") ]
              (Ir.Ret None);
          ];
      ]
  in
  let info = Analysis.analyze p in
  Alcotest.(check int) "clean" 0 (List.length (Analysis.violations info))

let test_interprocedural () =
  (* Callee mallocs in the current VAS; caller's deref is safe because
     VAS_in flows through the call. *)
  let p =
    prog
      [
        func "main" []
          [
            block "entry"
              [ Ir.Switch "v1"; Ir.Call (Some "p", "alloc_one", []); Ir.Load ("x", "p") ]
              (Ir.Ret (Some "x"));
          ];
        func "alloc_one" []
          [ block "entry" [ Ir.Malloc "q" ] (Ir.Ret (Some "q")) ];
      ]
  in
  validate_ok p;
  let info = Analysis.analyze p in
  Alcotest.(check int) "clean across call" 0 (List.length (Analysis.violations info))

let test_callee_switch_propagates () =
  (* If the callee switches VASes, the caller's VAS_out reflects it and
     a post-call deref of a pre-call pointer is flagged. *)
  let p =
    prog
      [
        func "main" []
          [
            block "entry"
              [
                Ir.Switch "v1";
                Ir.Malloc "p";
                Ir.Call (None, "jump_away", []);
                Ir.Load ("x", "p");
              ]
              (Ir.Ret (Some "x"));
          ];
        func "jump_away" [] [ block "entry" [ Ir.Switch "v2" ] (Ir.Ret None) ];
      ]
  in
  validate_ok p;
  let info = Analysis.analyze p in
  Alcotest.(check bool) "post-call deref flagged" true
    (List.length (Analysis.violations info) >= 1)

let test_recursive_function () =
  (* Recursion through the interprocedural fixpoint: a callee that
     conditionally recurses and mallocs in the current VAS. *)
  let p =
    prog
      [
        func "main" []
          [
            block "entry"
              [ Ir.Switch "v1"; Ir.Call (Some "p", "alloc_rec", []); Ir.Load ("x", "p") ]
              (Ir.Ret (Some "x"));
          ];
        func "alloc_rec" []
          [
            block "entry" [ Ir.Const ("c", 0) ] (Ir.Br ("c", "again", "base"));
            block "again" [ Ir.Call (Some "q1", "alloc_rec", []) ] (Ir.Ret (Some "q1"));
            block "base" [ Ir.Malloc "q2" ] (Ir.Ret (Some "q2"));
          ];
      ]
  in
  validate_ok p;
  let info = Analysis.analyze p in
  Alcotest.(check int) "recursion converges, clean" 0
    (List.length (Analysis.violations info));
  match Interp.run p with
  | Interp.Finished _ -> ()
  | _ -> Alcotest.fail "recursive program should finish"

let test_mutual_recursion_with_switch () =
  (* Mutually recursive functions where one arm switches: the caller's
     post-call deref must be flagged (VAS_out ambiguous). *)
  let p =
    prog
      [
        func "main" []
          [
            block "entry"
              [
                Ir.Switch "v1";
                Ir.Malloc "p";
                Ir.Call (None, "even", []);
                Ir.Load ("x", "p");
              ]
              (Ir.Ret (Some "x"));
          ];
        func "even" []
          [
            block "entry" [ Ir.Const ("c", 0) ] (Ir.Br ("c", "rec", "out"));
            block "rec" [ Ir.Call (None, "odd", []) ] (Ir.Ret None);
            block "out" [] (Ir.Ret None);
          ];
        func "odd" []
          [
            block "entry" [ Ir.Switch "v2"; Ir.Call (None, "even", []) ] (Ir.Ret None);
          ];
      ]
  in
  validate_ok p;
  let info = Analysis.analyze p in
  Alcotest.(check bool) "flagged through mutual recursion" true
    (List.length (Analysis.violations info) >= 1)

let test_vcast_overrides () =
  let p =
    prog
      [
        func "main" []
          [
            block "entry"
              [
                Ir.Switch "v1";
                Ir.Malloc "p";
                Ir.Switch "v2";
                Ir.Vcast ("q", "p", "v2");
                Ir.Load ("x", "q");
              ]
              (Ir.Ret (Some "x"));
          ];
      ]
  in
  let info = Analysis.analyze p in
  (* The vcast silences the static analysis... *)
  Alcotest.(check int) "no static violation" 0 (List.length (Analysis.violations info));
  (* ...and the deref then reads the wrong space's memory: a silent
     garbage read (zero), exactly why vcast is the paper's explicitly
     unsafe escape hatch. *)
  match Interp.run p with
  | Interp.Finished (Some (Interp.Int 0)) -> ()
  | _ -> Alcotest.fail "expected a silent garbage read"

let test_transform_elides_safe () =
  let p', report = Transform.instrument safe_single_vas in
  Alcotest.(check int) "no checks" 0 report.Transform.checks_inserted;
  Alcotest.(check int) "two memory ops" 2 report.Transform.memory_ops;
  Alcotest.(check int) "both elided" 2 report.Transform.elided;
  match Interp.run p' with
  | Interp.Finished _ -> ()
  | _ -> Alcotest.fail "safe program must finish"

let test_transform_traps_unsafe () =
  let p', report = Transform.instrument cross_vas_deref in
  Alcotest.(check bool) "check inserted" true (report.Transform.checks_inserted >= 1);
  (match Interp.run p' with
  | Interp.Trapped _ -> ()
  | Interp.Faulted _ -> Alcotest.fail "check failed to fire before the fault"
  | Interp.Finished _ -> Alcotest.fail "unsafe op went unnoticed"
  | Interp.Type_fault _ -> Alcotest.fail "unexpected type error"
  | Interp.Out_of_fuel -> Alcotest.fail "fuel");
  (* Without instrumentation the same program faults. *)
  match Interp.run cross_vas_deref with
  | Interp.Faulted _ -> ()
  | _ -> Alcotest.fail "raw program should fault"

let test_interp_loop () =
  (* Count down from 3 via phi + branch; exercises control flow. *)
  let p =
    prog
      [
        func "main" []
          [
            block "entry" [ Ir.Const ("three", 3) ] (Ir.Jmp "loop");
            block "loop"
              [
                Ir.Phi ("i", [ ("entry", "three"); ("loop", "i'") ]);
                Ir.Const ("one", 1);
                Ir.Call (Some "i'", "dec", [ "i" ]);
              ]
              (Ir.Br ("i'", "loop", "done"));
            block "done" [] (Ir.Ret (Some "i'"));
          ];
        func "dec" [ "n" ]
          [
            (* n - 1 is emulated by repeated callee logic: store/load via
               common memory with a const; simplest: return n unchanged
               minus... the IR has no arithmetic, so emulate with a
               bounded chain. *)
            block "entry" [ Ir.Const ("z", 0) ] (Ir.Ret (Some "z"));
          ];
      ]
  in
  validate_ok p;
  match Interp.run p with
  | Interp.Finished (Some (Interp.Int 0)) -> ()
  | _ -> Alcotest.fail "expected Finished 0"

(* ---------- random program generation for the cross-validation ---------- *)

let gen_program =
  let open QCheck.Gen in
  let vases = [ "v1"; "v2"; "v3" ] in
  (* Straight-line main with randomly interleaved switches, allocations,
     copies, loads and stores. *)
  let* n = int_range 1 40 in
  let* choices = list_repeat n (int_bound 9) in
  let instrs = ref [] in
  let regs = ref [] (* all defined registers *) in
  let fresh = ref 0 in
  let reg () =
    incr fresh;
    Printf.sprintf "r%d" !fresh
  in
  let* picks = list_repeat n (pair (int_bound 1000) (int_bound 1000)) in
  List.iter2
    (fun c (p1, p2) ->
      let pick_reg () =
        match !regs with
        | [] -> None
        | rs -> Some (List.nth rs (p1 mod List.length rs))
      in
      match c with
      | 0 | 1 -> instrs := Ir.Switch (List.nth vases (p2 mod 3)) :: !instrs
      | 2 ->
        let x = reg () in
        instrs := Ir.Malloc x :: !instrs;
        regs := x :: !regs
      | 3 ->
        let x = reg () in
        instrs := Ir.Alloca x :: !instrs;
        regs := x :: !regs
      | 4 ->
        let x = reg () in
        instrs := Ir.Const (x, p2) :: !instrs;
        regs := x :: !regs
      | 5 -> (
        match pick_reg () with
        | Some y ->
          let x = reg () in
          instrs := Ir.Copy (x, y) :: !instrs;
          regs := x :: !regs
        | None -> ())
      | 6 | 7 -> (
        match pick_reg () with
        | Some p ->
          let x = reg () in
          instrs := Ir.Load (x, p) :: !instrs;
          regs := x :: !regs
        | None -> ())
      | _ -> (
        match (pick_reg (), !regs) with
        | Some p, rs when rs <> [] ->
          let q = List.nth rs (p2 mod List.length rs) in
          instrs := Ir.Store (p, q) :: !instrs
        | _ -> ()))
    choices picks;
  return
    (prog
       [ func "main" [] [ block "entry" (List.rev !instrs) (Ir.Ret None) ] ])

let arbitrary_program = QCheck.make ~print:(Format.asprintf "%a" Ir.pp_program) gen_program

(* Interpreting a Load of an Int register is a dynamic type error our
   generator can produce; both raw and instrumented runs treat it as
   fault/trap respectively, which the properties already handle. *)

let prop_clean_programs_never_fault =
  QCheck.Test.make ~name:"analysis-clean programs never fault" ~count:300 arbitrary_program
    (fun p ->
      QCheck.assume (Result.is_ok (Ir.validate p));
      let info = Analysis.analyze p in
      QCheck.assume (Analysis.violations info = []);
      match Interp.run p with
      | Interp.Faulted _ -> false
      | Interp.Finished _ | Interp.Trapped _ | Interp.Type_fault _ | Interp.Out_of_fuel ->
        true)

let prop_instrumented_never_faults =
  QCheck.Test.make ~name:"instrumented programs never fault" ~count:300 arbitrary_program
    (fun p ->
      QCheck.assume (Result.is_ok (Ir.validate p));
      let p', _ = Transform.instrument p in
      match Interp.run p' with
      | Interp.Faulted _ -> false
      | Interp.Finished _ | Interp.Trapped _ | Interp.Type_fault _ | Interp.Out_of_fuel ->
        true)

let prop_instrumentation_preserves_clean_runs =
  QCheck.Test.make ~name:"instrumentation preserves completing runs" ~count:300
    arbitrary_program (fun p ->
      QCheck.assume (Result.is_ok (Ir.validate p));
      match Interp.run p with
      | Interp.Finished v -> (
        let p', _ = Transform.instrument p in
        match Interp.run p' with Interp.Finished v' -> v = v' | _ -> false)
      | _ -> QCheck.assume_fail ())

let suite =
  [
    Alcotest.test_case "validate" `Quick test_validate;
    Alcotest.test_case "analysis flags cross-VAS deref" `Quick test_analysis_flags_cross_vas;
    Alcotest.test_case "analysis accepts safe programs" `Quick test_analysis_accepts_safe;
    Alcotest.test_case "VAS_valid tracking" `Quick test_vas_valid_tracking;
    Alcotest.test_case "phi ambiguity flagged" `Quick test_phi_ambiguity_flagged;
    Alcotest.test_case "store escape flagged" `Quick test_store_escape_flagged;
    Alcotest.test_case "store to common region ok" `Quick test_store_to_common_ok;
    Alcotest.test_case "interprocedural VAS flow" `Quick test_interprocedural;
    Alcotest.test_case "callee switch propagates" `Quick test_callee_switch_propagates;
    Alcotest.test_case "recursion converges" `Quick test_recursive_function;
    Alcotest.test_case "mutual recursion with switch" `Quick test_mutual_recursion_with_switch;
    Alcotest.test_case "vcast overrides statically, tagged dynamically" `Quick test_vcast_overrides;
    Alcotest.test_case "transform elides safe sites" `Quick test_transform_elides_safe;
    Alcotest.test_case "transform traps unsafe sites" `Quick test_transform_traps_unsafe;
    Alcotest.test_case "interpreter control flow" `Quick test_interp_loop;
    QCheck_alcotest.to_alcotest prop_clean_programs_never_fault;
    QCheck_alcotest.to_alcotest prop_instrumented_never_faults;
    QCheck_alcotest.to_alcotest prop_instrumentation_preserves_clean_runs;
  ]
