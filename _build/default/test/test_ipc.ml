(* Tests for the IPC substrate: URPC rings, MPI-like channels, domain
   sockets. *)
open Sj_util
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Urpc = Sj_ipc.Urpc
module Msg_channel = Sj_ipc.Msg_channel
module Dsock = Sj_ipc.Dsock

let tiny : Sj_machine.Platform.t =
  { Sj_machine.Platform.m2 with name = "tiny"; mem_size = Size.mib 64; sockets = 2; cores_per_socket = 2 }

let setup () =
  let m = Machine.create tiny in
  (m, Machine.core m 0, Machine.core m 1, Machine.core m 2)

let test_urpc_fifo () =
  let m, a, b, _ = setup () in
  let ch = Urpc.create m ~a ~b () in
  Urpc.send ch ~from:a (Bytes.of_string "first");
  Urpc.send ch ~from:a (Bytes.of_string "second");
  Alcotest.(check string) "fifo 1" "first" (Bytes.to_string (Urpc.recv ch ~at:b));
  Alcotest.(check string) "fifo 2" "second" (Bytes.to_string (Urpc.recv ch ~at:b))

let test_urpc_bidirectional () =
  let m, a, b, _ = setup () in
  let ch = Urpc.create m ~a ~b () in
  Urpc.send ch ~from:a (Bytes.of_string "ping");
  Urpc.send ch ~from:b (Bytes.of_string "pong");
  Alcotest.(check string) "a->b" "ping" (Bytes.to_string (Urpc.recv ch ~at:b));
  Alcotest.(check string) "b->a" "pong" (Bytes.to_string (Urpc.recv ch ~at:a))

let test_urpc_ring_bounded () =
  let m, a, b, _ = setup () in
  let ch = Urpc.create m ~a ~b ~slots:2 () in
  Urpc.send ch ~from:a (Bytes.create 8);
  Urpc.send ch ~from:a (Bytes.create 8);
  Alcotest.(check bool) "full ring fails" true
    (try
       Urpc.send ch ~from:a (Bytes.create 8);
       false
     with Failure _ -> true)

let test_urpc_cross_socket_dearer () =
  let m, a, b, _ = setup () in
  let x = Machine.core m 2 (* socket 1 *) in
  Alcotest.(check bool) "placement" true (Core.socket x <> Core.socket a);
  let intra = Urpc.create m ~a ~b () in
  let cross = Urpc.create m ~a ~b:x () in
  Alcotest.(check bool) "detects cross" true (Urpc.cross_socket cross);
  let cost core ch peer =
    let c0 = Core.cycles peer in
    Urpc.send ch ~from:core (Bytes.create 1024);
    ignore (Urpc.recv ch ~at:peer);
    Core.cycles peer - c0
  in
  let c_intra = cost a intra b in
  let c_cross = cost a cross x in
  Alcotest.(check bool) "cross socket costlier" true (c_cross > 2 * c_intra)

let test_msg_channel_rpc () =
  let m, a, b, _ = setup () in
  let ch = Msg_channel.create m ~master:a ~slave:b () in
  let reply = Msg_channel.rpc ch ~request:(Bytes.of_string "work") ~reply_len:16 in
  Alcotest.(check int) "reply size" 16 (Bytes.length reply)

let test_msg_channel_oversubscribed_dearer () =
  let cost ~oversubscribed =
    let m, a, b, _ = setup () in
    let ch = Msg_channel.create m ~master:a ~slave:b ~oversubscribed () in
    let c0 = Core.cycles b in
    Msg_channel.send ch ~from:a (Bytes.create 64);
    ignore (Msg_channel.recv ch ~at:b);
    Core.cycles b - c0
  in
  Alcotest.(check bool) "scheduling penalty" true
    (cost ~oversubscribed:true > cost ~oversubscribed:false)

let test_dsock_roundtrip () =
  let m, client, server, _ = setup () in
  let s = Dsock.create m () in
  Dsock.send s ~from:client ~dir:`To_server (Bytes.of_string "GET k");
  (match Dsock.recv s ~at:server ~dir:`To_server with
  | Some req -> Alcotest.(check string) "request" "GET k" (Bytes.to_string req)
  | None -> Alcotest.fail "no request");
  Dsock.send s ~from:server ~dir:`To_client (Bytes.of_string "42");
  match Dsock.recv s ~at:client ~dir:`To_client with
  | Some rep -> Alcotest.(check string) "reply" "42" (Bytes.to_string rep)
  | None -> Alcotest.fail "no reply"

let test_dsock_empty () =
  let m, _, server, _ = setup () in
  let s = Dsock.create m () in
  Alcotest.(check bool) "empty" true (Dsock.recv s ~at:server ~dir:`To_server = None)

let test_dsock_charges_syscalls () =
  let m, client, _, _ = setup () in
  let s = Dsock.create m () in
  let c0 = Core.cycles client in
  Dsock.send s ~from:client ~dir:`To_server (Bytes.create 64);
  Alcotest.(check bool) "syscall priced" true
    (Core.cycles client - c0 >= (Machine.cost m).syscall_generic)

let prop_urpc_payload_integrity =
  QCheck.Test.make ~name:"URPC preserves payloads in order" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 30) (string_of_size Gen.(int_range 0 300)))
    (fun msgs ->
      let m, a, b, _ = setup () in
      let ch = Urpc.create m ~a ~b ~slots:64 () in
      List.iter (fun s -> Urpc.send ch ~from:a (Bytes.of_string s)) msgs;
      List.for_all (fun s -> Bytes.to_string (Urpc.recv ch ~at:b) = s) msgs)

let suite =
  [
    Alcotest.test_case "urpc FIFO" `Quick test_urpc_fifo;
    Alcotest.test_case "urpc bidirectional" `Quick test_urpc_bidirectional;
    Alcotest.test_case "urpc ring bounded" `Quick test_urpc_ring_bounded;
    Alcotest.test_case "urpc cross-socket dearer" `Quick test_urpc_cross_socket_dearer;
    Alcotest.test_case "msg_channel rpc" `Quick test_msg_channel_rpc;
    Alcotest.test_case "msg_channel oversubscription" `Quick test_msg_channel_oversubscribed_dearer;
    Alcotest.test_case "dsock roundtrip" `Quick test_dsock_roundtrip;
    Alcotest.test_case "dsock empty" `Quick test_dsock_empty;
    Alcotest.test_case "dsock charges syscalls" `Quick test_dsock_charges_syscalls;
    QCheck_alcotest.to_alcotest prop_urpc_payload_integrity;
  ]
