(* Tests for varint coding and the block-LZ compressor. *)
module Varint = Sj_compress.Varint
module Block_lz = Sj_compress.Block_lz

let test_varint_roundtrip () =
  List.iter
    (fun n ->
      let buf = Buffer.create 8 in
      Varint.write buf n;
      let v, pos = Varint.read (Buffer.to_bytes buf) ~pos:0 in
      Alcotest.(check int) (string_of_int n) n v;
      Alcotest.(check int) "consumed all" (Buffer.length buf) pos)
    [ 0; 1; 127; 128; 300; 16383; 16384; 1 lsl 40; max_int ]

let test_varint_signed () =
  List.iter
    (fun n ->
      let buf = Buffer.create 8 in
      Varint.write_signed buf n;
      let v, _ = Varint.read_signed (Buffer.to_bytes buf) ~pos:0 in
      Alcotest.(check int) (string_of_int n) n v)
    [ 0; 1; -1; 63; -64; 1000; -1000; 1 lsl 30; -(1 lsl 30) ]

let test_varint_truncated () =
  let buf = Buffer.create 8 in
  Varint.write buf 100000;
  let b = Buffer.to_bytes buf in
  Alcotest.(check bool) "truncated raises" true
    (try
       ignore (Varint.read (Bytes.sub b 0 1) ~pos:0);
       false
     with Invalid_argument _ -> true)

let test_varint_sequence () =
  let buf = Buffer.create 16 in
  List.iter (Varint.write buf) [ 5; 500; 50000 ];
  let b = Buffer.to_bytes buf in
  let a, p = Varint.read b ~pos:0 in
  let bb, p = Varint.read b ~pos:p in
  let c, _ = Varint.read b ~pos:p in
  Alcotest.(check (list int)) "sequence" [ 5; 500; 50000 ] [ a; bb; c ]

let roundtrip s =
  Bytes.to_string (Block_lz.decompress (Block_lz.compress (Bytes.of_string s)))

let test_lz_empty () = Alcotest.(check string) "empty" "" (roundtrip "")

let test_lz_simple () =
  let s = "hello hello hello hello hello" in
  Alcotest.(check string) "repetitive" s (roundtrip s)

let test_lz_compresses_repetition () =
  let s = String.concat "" (List.init 1000 (fun _ -> "abcdefgh")) in
  let c = Block_lz.compress (Bytes.of_string s) in
  Alcotest.(check bool) "ratio > 10x" true (Bytes.length c * 10 < String.length s);
  Alcotest.(check string) "roundtrip" s (Bytes.to_string (Block_lz.decompress c))

let test_lz_incompressible () =
  let rng = Sj_util.Rng.create ~seed:5 in
  let s = String.init 10000 (fun _ -> Char.chr (Sj_util.Rng.int rng 256)) in
  let c = Block_lz.compress (Bytes.of_string s) in
  (* Random data must not blow up much. *)
  Alcotest.(check bool) "expansion < 5%" true
    (Bytes.length c < String.length s * 105 / 100);
  Alcotest.(check string) "roundtrip" s (Bytes.to_string (Block_lz.decompress c))

let test_lz_multi_block () =
  let s = String.concat "" (List.init 12000 (fun i -> Printf.sprintf "line %d. " (i mod 97))) in
  Alcotest.(check bool) "spans blocks" true (String.length s > Block_lz.block_size);
  let c = Block_lz.compress (Bytes.of_string s) in
  Alcotest.(check bool) "block count" true (Block_lz.compressed_blocks c >= 2);
  Alcotest.(check string) "roundtrip" s (Bytes.to_string (Block_lz.decompress c))

let test_lz_rle_overlap () =
  (* Overlapping match (distance 1): the RLE case. *)
  let s = String.make 5000 'x' in
  let c = Block_lz.compress (Bytes.of_string s) in
  Alcotest.(check bool) "tiny" true (Bytes.length c < 100);
  Alcotest.(check string) "roundtrip" s (Bytes.to_string (Block_lz.decompress c))

let test_lz_corrupt () =
  let c = Block_lz.compress (Bytes.of_string "some reasonable input data here") in
  Bytes.set c (Bytes.length c - 1) '\xff';
  Alcotest.(check bool) "corrupt detected or diff output" true
    (try Block_lz.decompress c <> Bytes.of_string "some reasonable input data here"
     with Invalid_argument _ -> true)

let prop_roundtrip =
  QCheck.Test.make ~name:"compress/decompress identity" ~count:200
    QCheck.(string_of_size Gen.(int_range 0 5000))
    (fun s -> roundtrip s = s)

let prop_roundtrip_structured =
  QCheck.Test.make ~name:"roundtrip on record-like text" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 200) (pair small_nat (string_of_size Gen.(int_range 0 30))))
    (fun rows ->
      let s =
        String.concat "\n"
          (List.map (fun (n, txt) -> Printf.sprintf "read_%07d\t%d\t%s" n (n * 3) txt) rows)
      in
      roundtrip s = s)

let suite =
  [
    Alcotest.test_case "varint roundtrip" `Quick test_varint_roundtrip;
    Alcotest.test_case "varint signed" `Quick test_varint_signed;
    Alcotest.test_case "varint truncated" `Quick test_varint_truncated;
    Alcotest.test_case "varint sequence" `Quick test_varint_sequence;
    Alcotest.test_case "lz empty" `Quick test_lz_empty;
    Alcotest.test_case "lz simple" `Quick test_lz_simple;
    Alcotest.test_case "lz compresses repetition" `Quick test_lz_compresses_repetition;
    Alcotest.test_case "lz incompressible input" `Quick test_lz_incompressible;
    Alcotest.test_case "lz multi-block" `Quick test_lz_multi_block;
    Alcotest.test_case "lz RLE overlap" `Quick test_lz_rle_overlap;
    Alcotest.test_case "lz corruption" `Quick test_lz_corrupt;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_roundtrip_structured;
  ]
