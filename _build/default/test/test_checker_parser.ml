(* Tests for the IR text parser and the redundant-check optimizer. *)
open Sj_checker

let parse_ok src =
  match Parser.parse src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse failed: %s" e

let parse_err src =
  match Parser.parse src with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error e -> e

let test_parse_basic () =
  let p =
    parse_ok
      {|
# the Fig. 4-flavoured example
func main():
entry:
  switch v1
  p = malloc
  x = 42
  *p = x
  y = *p
  ret y
|}
  in
  Alcotest.(check int) "one function" 1 (List.length p.Ir.funcs);
  let f = List.hd p.Ir.funcs in
  Alcotest.(check int) "six instructions" 5 (List.length (Ir.entry_block f).Ir.instrs);
  match Interp.run p with
  | Interp.Finished (Some (Interp.Int 42)) -> ()
  | _ -> Alcotest.fail "expected 42"

let test_parse_control_flow () =
  let p =
    parse_ok
      {|
func main():
entry:
  c = 1
  br c, a, b
a:
  x1 = 10
  jmp join
b:
  x2 = 20
  jmp join
join:
  x = phi [a: x1] [b: x2]
  ret x
|}
  in
  match Interp.run p with
  | Interp.Finished (Some (Interp.Int 10)) -> ()
  | _ -> Alcotest.fail "expected 10 via the taken branch"

let test_parse_calls () =
  let p =
    parse_ok
      {|
func main():
entry:
  a = 5
  r = call id(a)
  call noop()
  ret r

func id(x):
entry:
  ret x

func noop():
entry:
  ret
|}
  in
  match Interp.run p with
  | Interp.Finished (Some (Interp.Int 5)) -> ()
  | _ -> Alcotest.fail "expected 5"

let test_parse_vcast_and_checks () =
  let p =
    parse_ok
      {|
func main():
entry:
  switch v1
  p = malloc
  q = vcast p v2
  check_deref p
  check_store p, q
  ret
|}
  in
  ignore p

let test_parse_errors () =
  let has_line e = String.length e > 4 && String.sub e 0 4 = "line" in
  Alcotest.(check bool) "missing terminator" true
    (has_line (parse_err "func main():\nentry:\n  x = 1\n"));
  Alcotest.(check bool) "instr outside block" true
    (has_line (parse_err "func main():\n  x = 1\n  ret\n"));
  Alcotest.(check bool) "garbage" true (has_line (parse_err "func main():\nentry:\n  ???\n  ret\n"));
  ignore (parse_err "");
  (* Validation errors surface too (use before def). *)
  Alcotest.(check bool) "validation" true
    (String.length (parse_err "func main():\nentry:\n  y = *ghost\n  ret\n") > 0)

let test_parse_roundtrip_pp () =
  (* pp_program output parses back to an equivalent program. *)
  let p1 =
    parse_ok
      {|
func main():
entry:
  s = alloca
  switch v1
  p = malloc
  c = 7
  *p = c
  y = *p
  *s = p
  br y, again, out
again:
  z = phi [entry: y]
  ret z
out:
  ret
|}
  in
  let printed = Format.asprintf "%a" Ir.pp_program p1 in
  let p2 = parse_ok printed in
  Alcotest.(check bool) "roundtrip" true (p1 = p2)

(* --- optimizer --- *)

let count_checks p =
  List.fold_left
    (fun acc (f : Ir.func) ->
      List.fold_left
        (fun acc (b : Ir.block) ->
          List.fold_left
            (fun acc i ->
              match i with Ir.Check_deref _ | Ir.Check_store _ -> acc + 1 | _ -> acc)
            acc b.Ir.instrs)
        acc f.Ir.blocks)
    0 p.Ir.funcs

let test_optimize_removes_duplicates () =
  let p =
    parse_ok
      {|
func main():
entry:
  switch v1
  p = malloc
  check_deref p
  x = *p
  check_deref p
  y = *p
  check_store p, x
  check_deref p
  *p = x
  ret
|}
  in
  let p', removed = Transform.optimize p in
  Alcotest.(check int) "two removed" 2 removed;
  Alcotest.(check int) "one check left... plus store check" 2 (count_checks p');
  (* Semantics preserved. *)
  Alcotest.(check bool) "same outcome" true (Interp.run p = Interp.run p')

let test_optimize_respects_switch () =
  let p =
    parse_ok
      {|
func main():
entry:
  switch v1
  p = malloc
  check_deref p
  x = *p
  switch v1
  check_deref p
  y = *p
  ret
|}
  in
  let _, removed = Transform.optimize p in
  Alcotest.(check int) "switch invalidates" 0 removed

let test_optimize_respects_calls () =
  let p =
    parse_ok
      {|
func main():
entry:
  switch v1
  p = malloc
  check_deref p
  x = *p
  call f()
  check_deref p
  y = *p
  ret

func f():
entry:
  switch v2
  ret
|}
  in
  let _, removed = Transform.optimize p in
  Alcotest.(check int) "call invalidates" 0 removed

let test_instrument_optimized_still_safe () =
  (* The end-to-end pipeline on an unsafe program still traps. *)
  let p =
    parse_ok
      {|
func main():
entry:
  switch v1
  p = malloc
  switch v2
  a = *p
  b = *p
  ret
|}
  in
  let p', report = Transform.instrument_optimized p in
  (* Two flagged loads; the second check is NOT redundant-eliminable
     here only if a switch/call intervenes — none does, so it is. *)
  Alcotest.(check int) "one check remains" 1 report.Transform.checks_inserted;
  match Interp.run p' with
  | Interp.Trapped _ -> ()
  | _ -> Alcotest.fail "must still trap"

let prop_optimize_preserves_outcome =
  (* Reuse the random-program generator shape from Test_checker by
     parsing random pretty-printed programs is circular; instead rely on
     instrument+optimize over the same generator used there, embedded
     here in miniature: straight-line programs. *)
  QCheck.Test.make ~name:"optimize preserves run outcome" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 30) (pair (int_bound 5) (int_bound 500)))
    (fun ops ->
      let instrs = ref [] in
      let regs = ref [] in
      let fresh = ref 0 in
      List.iter
        (fun (c, r) ->
          let reg () =
            incr fresh;
            Printf.sprintf "r%d" !fresh
          in
          let pick () =
            match !regs with [] -> None | rs -> Some (List.nth rs (r mod List.length rs))
          in
          match c with
          | 0 -> instrs := Ir.Switch (Printf.sprintf "v%d" (r mod 3)) :: !instrs
          | 1 ->
            let x = reg () in
            instrs := Ir.Malloc x :: !instrs;
            regs := x :: !regs
          | 2 ->
            let x = reg () in
            instrs := Ir.Alloca x :: !instrs;
            regs := x :: !regs
          | 3 -> (
            match pick () with
            | Some p ->
              let x = reg () in
              instrs := Ir.Load (x, p) :: !instrs;
              regs := x :: !regs
            | None -> ())
          | _ -> (
            match pick () with
            | Some p -> (
              match pick () with
              | Some q -> instrs := Ir.Store (p, q) :: !instrs
              | None -> ())
            | None -> ()))
        ops;
      let p =
        { Ir.funcs = [ { Ir.fname = "main"; params = []; blocks = [ { Ir.label = "entry"; instrs = List.rev !instrs; term = Ir.Ret None } ] } ] }
      in
      match Ir.validate p with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
        let inst, _ = Transform.instrument p in
        let opt, _ = Transform.optimize inst in
        Interp.run inst = Interp.run opt)

(* Golden tests over the shipped .sjir corpus. *)
let corpus_dir = "../../../examples/ir"

let read_file path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_corpus () =
  (* (file, expected violations, expected checks, expected outcome) *)
  let cases =
    [
      ("safe.sjir", 0, 0, `Finished);
      ("unsafe.sjir", 1, 1, `Trapped);
      ("escape.sjir", 1, 1, `Trapped);
      (* statically ambiguous, but this execution stays in the VAS it
         allocated in: the inserted check is exercised and passes *)
      ("ambiguous.sjir", 1, 1, `Finished);
    ]
  in
  List.iter
    (fun (file, exp_viol, exp_checks, exp_outcome) ->
      let path = Filename.concat corpus_dir file in
      match Parser.parse (read_file path) with
      | Error e -> Alcotest.failf "%s: %s" file e
      | Ok p ->
        let info = Analysis.analyze p in
        Alcotest.(check int) (file ^ " violations") exp_viol
          (List.length (Analysis.violations info));
        let p', report = Transform.instrument_optimized p in
        Alcotest.(check int) (file ^ " checks") exp_checks report.Transform.checks_inserted;
        let outcome = Interp.run p' in
        let ok =
          match (exp_outcome, outcome) with
          | `Finished, Interp.Finished _ -> true
          | `Trapped, Interp.Trapped _ -> true
          | _ -> false
        in
        Alcotest.(check bool) (file ^ " outcome") true ok)
    cases

let suite =
  [
    Alcotest.test_case "parse basic" `Quick test_parse_basic;
    Alcotest.test_case "parse control flow" `Quick test_parse_control_flow;
    Alcotest.test_case "parse calls" `Quick test_parse_calls;
    Alcotest.test_case "parse vcast/checks" `Quick test_parse_vcast_and_checks;
    Alcotest.test_case "parse errors carry line numbers" `Quick test_parse_errors;
    Alcotest.test_case "pp/parse roundtrip" `Quick test_parse_roundtrip_pp;
    Alcotest.test_case "optimizer removes duplicates" `Quick test_optimize_removes_duplicates;
    Alcotest.test_case "optimizer respects switch" `Quick test_optimize_respects_switch;
    Alcotest.test_case "optimizer respects calls" `Quick test_optimize_respects_calls;
    Alcotest.test_case "instrument+optimize still safe" `Quick test_instrument_optimized_still_safe;
    Alcotest.test_case "shipped .sjir corpus" `Quick test_corpus;
    QCheck_alcotest.to_alcotest prop_optimize_preserves_outcome;
  ]
