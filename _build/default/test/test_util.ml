(* Unit and property tests for Sj_util. *)
open Sj_util

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let test_size_constants () =
  check "kib" 4096 (Size.kib 4);
  check "mib" (1024 * 1024) (Size.mib 1);
  check "gib" (1 lsl 30) (Size.gib 1);
  check "tib" (1 lsl 40) (Size.tib 1)

let test_size_pp () =
  checks "bytes" "512B" (Size.to_string 512);
  checks "kib" "1.5KiB" (Size.to_string 1536);
  checks "gib" "4GiB" (Size.to_string (Size.gib 4))

let test_power_of_two () =
  checkb "1" true (Size.is_power_of_two 1);
  checkb "4096" true (Size.is_power_of_two 4096);
  checkb "0" false (Size.is_power_of_two 0);
  checkb "3" false (Size.is_power_of_two 3);
  checkb "neg" false (Size.is_power_of_two (-4))

let test_log2 () =
  check "log2 1" 0 (Size.log2 1);
  check "log2 4096" 12 (Size.log2 4096);
  check "log2 5000" 12 (Size.log2 5000)

let test_rounding () =
  check "up exact" 8192 (Size.round_up 8192 ~align:4096);
  check "up" 8192 (Size.round_up 4097 ~align:4096);
  check "down" 4096 (Size.round_down 8191 ~align:4096);
  check "down exact" 8192 (Size.round_down 8192 ~align:4096)

let test_addr_indices () =
  (* 0x0000_7fff_ffff_f000: top of canonical lower-half user VA. *)
  let va = 0x7fff_ffff_f000 in
  check "pml4" 255 (Addr.pml4_index va);
  check "pdpt" 511 (Addr.pdpt_index va);
  check "pd" 511 (Addr.pd_index va);
  check "pt" 511 (Addr.pt_index va);
  check "pml4 of 0" 0 (Addr.pml4_index 0);
  (* Index boundaries: 1 GiB = one PDPT slot. *)
  check "pdpt of 1GiB" 1 (Addr.pdpt_index (Size.gib 1))

let test_addr_ranges () =
  checkb "overlap" true
    (Addr.range_overlaps ~base1:0 ~size1:100 ~base2:50 ~size2:100);
  checkb "adjacent" false
    (Addr.range_overlaps ~base1:0 ~size1:100 ~base2:100 ~size2:100);
  checkb "contains" true (Addr.range_contains ~base:100 ~size:10 105);
  checkb "contains edge" false (Addr.range_contains ~base:100 ~size:10 110)

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done;
  let c = Rng.create ~seed:43 in
  checkb "different seed different stream" false (Rng.bits64 a = Rng.bits64 c && Rng.bits64 a = Rng.bits64 c)

let test_rng_copy () =
  let a = Rng.create ~seed:7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_stats () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.median xs);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min xs);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.max xs)

let test_table_render () =
  let t = Table.create [ ("a", Table.Left); ("b", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "yy"; "22" ];
  let s = Table.render t in
  checkb "contains header" true (String.length s > 0);
  checkb "row count" true (List.length (String.split_on_char '\n' s) >= 4)

let test_cell_int () =
  checks "thousands" "1,127" (Table.cell_int 1127);
  checks "millions" "1,234,567" (Table.cell_int 1234567);
  checks "small" "42" (Table.cell_int 42);
  checks "negative" "-1,000" (Table.cell_int (-1000))

(* Property tests *)

let prop_round_up_ge =
  QCheck.Test.make ~name:"round_up >= n and aligned" ~count:500
    QCheck.(pair (int_bound 1_000_000) (int_bound 10))
    (fun (n, k) ->
      let align = 1 lsl k in
      let r = Size.round_up n ~align in
      r >= n && r mod align = 0 && r - n < align)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int within bounds" ~count:500
    QCheck.(pair int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed:(abs seed) in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_zipf_bounds =
  QCheck.Test.make ~name:"Rng.zipf in [1,n]" ~count:200
    QCheck.(pair int (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Rng.create ~seed:(abs seed) in
      let v = Rng.zipf rng ~n ~s:1.1 in
      v >= 1 && v <= n)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair int (list int))
    (fun (seed, xs) ->
      let a = Array.of_list xs in
      let b = Array.copy a in
      Rng.shuffle (Rng.create ~seed:(abs seed)) b;
      List.sort compare (Array.to_list a) = List.sort compare (Array.to_list b))

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let a = Array.of_list xs in
      Stats.percentile a 25.0 <= Stats.percentile a 75.0)

let suite =
  [
    Alcotest.test_case "size constants" `Quick test_size_constants;
    Alcotest.test_case "size pretty-print" `Quick test_size_pp;
    Alcotest.test_case "is_power_of_two" `Quick test_power_of_two;
    Alcotest.test_case "log2" `Quick test_log2;
    Alcotest.test_case "rounding" `Quick test_rounding;
    Alcotest.test_case "x86-64 page indices" `Quick test_addr_indices;
    Alcotest.test_case "address ranges" `Quick test_addr_ranges;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng copy" `Quick test_rng_copy;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "thousands separators" `Quick test_cell_int;
    QCheck_alcotest.to_alcotest prop_round_up_ge;
    QCheck_alcotest.to_alcotest prop_rng_int_bounds;
    QCheck_alcotest.to_alcotest prop_zipf_bounds;
    QCheck_alcotest.to_alcotest prop_shuffle_permutation;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
  ]
