(* Tests for the in-memory file system. *)
open Sj_util
module Machine = Sj_machine.Machine
module Memfs = Sj_memfs.Memfs

let tiny : Sj_machine.Platform.t =
  { Sj_machine.Platform.m2 with name = "tiny"; mem_size = Size.mib 64; sockets = 2; cores_per_socket = 1 }

let mk () =
  let m = Machine.create tiny in
  (m, Memfs.create m)

let test_create_write_read () =
  let _, fs = mk () in
  let fd = Memfs.create_file fs ~path:"/a.txt" in
  Memfs.write fd ~charge_to:None (Bytes.of_string "hello ");
  Memfs.write fd ~charge_to:None (Bytes.of_string "world");
  Alcotest.(check int) "size" 11 (Memfs.file_size fs ~path:"/a.txt");
  let fd2 = Memfs.open_file fs ~path:"/a.txt" in
  Alcotest.(check string) "contents" "hello world"
    (Bytes.to_string (Memfs.read_all fd2 ~charge_to:None))

let test_seek () =
  let _, fs = mk () in
  let fd = Memfs.create_file fs ~path:"/b" in
  Memfs.write fd ~charge_to:None (Bytes.of_string "0123456789");
  Memfs.seek fd 4;
  Alcotest.(check string) "mid read" "456" (Bytes.to_string (Memfs.read fd ~charge_to:None ~len:3));
  Alcotest.(check int) "offset advanced" 7 (Memfs.offset fd);
  Memfs.seek fd 8;
  Memfs.write fd ~charge_to:None (Bytes.of_string "XY");
  Memfs.seek fd 0;
  Alcotest.(check string) "overwrite" "01234567XY"
    (Bytes.to_string (Memfs.read fd ~charge_to:None ~len:100))

let test_short_read_at_eof () =
  let _, fs = mk () in
  let fd = Memfs.create_file fs ~path:"/c" in
  Memfs.write fd ~charge_to:None (Bytes.of_string "abc");
  Memfs.seek fd 2;
  Alcotest.(check string) "short" "c" (Bytes.to_string (Memfs.read fd ~charge_to:None ~len:10));
  Alcotest.(check string) "empty at eof" "" (Bytes.to_string (Memfs.read fd ~charge_to:None ~len:10))

let test_growth_across_pages () =
  let _, fs = mk () in
  let fd = Memfs.create_file fs ~path:"/big" in
  let chunk = Bytes.make 3000 'z' in
  for _ = 1 to 10 do
    Memfs.write fd ~charge_to:None chunk
  done;
  Alcotest.(check int) "30000 bytes" 30000 (Memfs.file_size fs ~path:"/big");
  let fd2 = Memfs.open_file fs ~path:"/big" in
  let all = Memfs.read_all fd2 ~charge_to:None in
  Alcotest.(check bool) "all z" true (Bytes.for_all (fun c -> c = 'z') all)

let test_delete_and_list () =
  let _, fs = mk () in
  ignore (Memfs.create_file fs ~path:"/x");
  ignore (Memfs.create_file fs ~path:"/y");
  Alcotest.(check (list string)) "list" [ "/x"; "/y" ] (Memfs.list_files fs);
  Memfs.delete fs ~path:"/x";
  Alcotest.(check bool) "gone" false (Memfs.exists fs ~path:"/x");
  Alcotest.check_raises "open missing" Not_found (fun () ->
      ignore (Memfs.open_file fs ~path:"/x"))

let test_truncate_on_recreate () =
  let _, fs = mk () in
  let fd = Memfs.create_file fs ~path:"/t" in
  Memfs.write fd ~charge_to:None (Bytes.of_string "old content");
  let _ = Memfs.create_file fs ~path:"/t" in
  Alcotest.(check int) "truncated" 0 (Memfs.file_size fs ~path:"/t")

let test_io_charges () =
  let m, fs = mk () in
  let core = Machine.core m 0 in
  let fd = Memfs.create_file fs ~path:"/charged" in
  let c0 = Machine.Core.cycles core in
  Memfs.write fd ~charge_to:(Some core) (Bytes.make 4096 'a');
  Alcotest.(check bool) "write charged" true (Machine.Core.cycles core - c0 > 0)

let test_frames_released_on_delete () =
  let m, fs = mk () in
  let before = Sj_mem.Phys_mem.frames_allocated (Machine.mem m) in
  let fd = Memfs.create_file fs ~path:"/d" in
  Memfs.write fd ~charge_to:None (Bytes.make 100000 'q');
  Memfs.delete fs ~path:"/d";
  Alcotest.(check int) "frames back" before (Sj_mem.Phys_mem.frames_allocated (Machine.mem m))

let prop_write_read =
  QCheck.Test.make ~name:"memfs write-then-read returns data" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 20) (string_of_size Gen.(int_range 0 2000)))
    (fun chunks ->
      let _, fs = mk () in
      let fd = Memfs.create_file fs ~path:"/p" in
      List.iter (fun s -> Memfs.write fd ~charge_to:None (Bytes.of_string s)) chunks;
      let expected = String.concat "" chunks in
      let fd2 = Memfs.open_file fs ~path:"/p" in
      Bytes.to_string (Memfs.read_all fd2 ~charge_to:None) = expected)

let suite =
  [
    Alcotest.test_case "create/write/read" `Quick test_create_write_read;
    Alcotest.test_case "seek" `Quick test_seek;
    Alcotest.test_case "short read at EOF" `Quick test_short_read_at_eof;
    Alcotest.test_case "growth across pages" `Quick test_growth_across_pages;
    Alcotest.test_case "delete and list" `Quick test_delete_and_list;
    Alcotest.test_case "truncate on recreate" `Quick test_truncate_on_recreate;
    Alcotest.test_case "I/O charges cycles" `Quick test_io_charges;
    Alcotest.test_case "frames released on delete" `Quick test_frames_released_on_delete;
    QCheck_alcotest.to_alcotest prop_write_read;
  ]
