(* Tests for page tables: mapping, walking, sharing, accounting. *)
open Sj_util
open Sj_paging
module Pm = Sj_mem.Phys_mem

let mk () = Pm.create ~size:(Size.mib 64) ~numa_nodes:1

let test_map_walk () =
  let m = mk () in
  let pt = Page_table.create m in
  let f = Pm.alloc_frame m in
  let va = 0xC0DE000 in
  Page_table.map pt ~va ~pa:(Pm.base_of_frame f) ~prot:Prot.rw ~size:Page_table.P4K;
  (match Page_table.walk pt ~va with
  | Some mapping ->
    Alcotest.(check int) "pa" (Pm.base_of_frame f) mapping.pa;
    Alcotest.(check int) "4 levels" 4 mapping.levels;
    Alcotest.(check bool) "writable" true mapping.prot.write
  | None -> Alcotest.fail "expected mapping");
  Alcotest.(check bool) "unmapped va faults" true (Page_table.walk pt ~va:0xDEAD000 = None)

let test_map_2m () =
  let m = mk () in
  let pt = Page_table.create m in
  let pa = Size.mib 2 in
  (* Physical range must exist for data access, but walk itself doesn't
     check frames; map a 2 MiB page at VA 4 MiB. *)
  Page_table.map pt ~va:(Size.mib 4) ~pa ~prot:Prot.r ~size:Page_table.P2M;
  match Page_table.walk pt ~va:(Size.mib 4 + 12345) with
  | Some mapping ->
    Alcotest.(check int) "3 levels for 2M page" 3 mapping.levels;
    Alcotest.(check int) "page base pa" pa mapping.pa
  | None -> Alcotest.fail "expected 2M mapping"

let test_double_map_rejected () =
  let m = mk () in
  let pt = Page_table.create m in
  let f = Pm.alloc_frame m in
  Page_table.map pt ~va:0x1000 ~pa:(Pm.base_of_frame f) ~prot:Prot.rw ~size:Page_table.P4K;
  Alcotest.(check bool) "second map raises" true
    (try
       Page_table.map pt ~va:0x1000 ~pa:(Pm.base_of_frame f) ~prot:Prot.rw
         ~size:Page_table.P4K;
       false
     with Invalid_argument _ -> true)

let test_unmap () =
  let m = mk () in
  let pt = Page_table.create m in
  let f = Pm.alloc_frame m in
  Page_table.map pt ~va:0x1000 ~pa:(Pm.base_of_frame f) ~prot:Prot.rw ~size:Page_table.P4K;
  Page_table.unmap pt ~va:0x1000 ~size:Page_table.P4K;
  Alcotest.(check bool) "gone" true (Page_table.walk pt ~va:0x1000 = None);
  (* Empty interior tables are pruned: only the root remains. *)
  let st = Page_table.stats pt in
  Alcotest.(check int) "all interior tables freed"
    (st.tables_allocated - 1) st.tables_freed

let test_alignment_checks () =
  let m = mk () in
  let pt = Page_table.create m in
  Alcotest.(check bool) "unaligned va" true
    (try
       Page_table.map pt ~va:0x1001 ~pa:0 ~prot:Prot.r ~size:Page_table.P4K;
       false
     with Invalid_argument _ -> true)

let test_protect () =
  let m = mk () in
  let pt = Page_table.create m in
  let f = Pm.alloc_frame m in
  Page_table.map pt ~va:0x1000 ~pa:(Pm.base_of_frame f) ~prot:Prot.rw ~size:Page_table.P4K;
  Page_table.protect pt ~va:0x1000 ~size:Page_table.P4K ~prot:Prot.r;
  match Page_table.walk pt ~va:0x1000 with
  | Some mapping -> Alcotest.(check bool) "now read-only" false mapping.prot.write
  | None -> Alcotest.fail "mapping lost"

let test_table_accounting () =
  let m = mk () in
  let pt = Page_table.create m in
  let frames = Pm.alloc_frames m ~n:8 in
  Page_table.map_range pt ~va:0x10000 ~frames ~prot:Prot.rw;
  let st = Page_table.stats pt in
  (* Root + PDPT + PD + PT = 4 tables; 3 interior links + 8 leaves = 11 writes. *)
  Alcotest.(check int) "tables" 4 st.tables_allocated;
  Alcotest.(check int) "pte writes" 11 st.pte_writes

let test_pml4_boundary_tables () =
  (* §4.4: an 8 KiB segment crossing a PML4 slot boundary requires 7
     tables (1 PML4 + 2 each of PDPT, PD, PT). *)
  let m = mk () in
  let pt = Page_table.create m in
  let frames = Pm.alloc_frames m ~n:2 in
  let boundary = 1 lsl 39 in
  Page_table.map pt ~va:(boundary - Addr.page_size) ~pa:(Pm.base_of_frame frames.(0))
    ~prot:Prot.rw ~size:Page_table.P4K;
  Page_table.map pt ~va:boundary ~pa:(Pm.base_of_frame frames.(1)) ~prot:Prot.rw
    ~size:Page_table.P4K;
  Alcotest.(check int) "7 tables for straddling 8KiB" 7
    (Page_table.stats pt).tables_allocated

let test_subtree_sharing () =
  let m = mk () in
  let pt1 = Page_table.create m in
  let frames = Pm.alloc_frames m ~n:16 in
  let base = Size.gib 1 in
  Page_table.map_range pt1 ~va:base ~frames ~prot:Prot.rw;
  let sub =
    match Page_table.extract_subtree pt1 ~va:base ~level:2 with
    | Some s -> s
    | None -> Alcotest.fail "no subtree"
  in
  Alcotest.(check int) "PD level" 2 (Page_table.subtree_level sub);
  let pt2 = Page_table.create m in
  let writes_before = (Page_table.stats pt2).pte_writes in
  Page_table.graft_subtree pt2 ~va:base sub;
  (* Grafting into an empty root allocates the PDPT + 2 entry writes. *)
  Alcotest.(check bool) "cheap graft" true ((Page_table.stats pt2).pte_writes - writes_before <= 2);
  (match Page_table.walk pt2 ~va:(base + (3 * Addr.page_size)) with
  | Some mapping ->
    Alcotest.(check int) "same translation" (Pm.base_of_frame frames.(3)) mapping.pa
  | None -> Alcotest.fail "graft did not translate");
  (* Unmap via pt1 is visible through pt2 (shared tables). *)
  Page_table.unmap pt1 ~va:(base + (3 * Addr.page_size)) ~size:Page_table.P4K;
  Alcotest.(check bool) "shared update visible" true
    (Page_table.walk pt2 ~va:(base + (3 * Addr.page_size)) = None);
  (* Destroying pt1 must not free the shared subtree. *)
  Page_table.destroy pt1;
  Alcotest.(check bool) "still translates after owner death" true
    (Page_table.walk pt2 ~va:(base + Addr.page_size) <> None);
  Page_table.prune_subtree pt2 ~va:base ~level:2;
  Page_table.release_subtree pt2 sub;
  Page_table.destroy pt2

let test_frames_reclaimed () =
  let m = mk () in
  let before = Pm.frames_allocated m in
  let pt = Page_table.create m in
  let frames = Pm.alloc_frames m ~n:64 in
  Page_table.map_range pt ~va:0x200000 ~frames ~prot:Prot.rw;
  Page_table.destroy pt;
  Array.iter (Pm.free_frame m) frames;
  Alcotest.(check int) "no leaked frames" before (Pm.frames_allocated m)

let prop_walk_inverts_map =
  QCheck.Test.make ~name:"walk returns exactly what map installed" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 50) (int_bound 100_000))
    (fun page_numbers ->
      let page_numbers = List.sort_uniq compare page_numbers in
      let m = Pm.create ~size:(Size.mib 16) ~numa_nodes:1 in
      let pt = Page_table.create m in
      let assoc =
        List.map
          (fun pn ->
            let f = Pm.alloc_frame m in
            let va = pn * Addr.page_size in
            Page_table.map pt ~va ~pa:(Pm.base_of_frame f) ~prot:Prot.rw
              ~size:Page_table.P4K;
            (va, Pm.base_of_frame f))
          page_numbers
      in
      List.for_all
        (fun (va, pa) ->
          match Page_table.walk pt ~va with Some m -> m.pa = pa | None -> false)
        assoc)

let prop_unmap_removes_exactly =
  QCheck.Test.make ~name:"unmap removes only the target page" ~count:50
    QCheck.(pair (int_range 2 30) (int_bound 1000))
    (fun (n, seed) ->
      let m = Pm.create ~size:(Size.mib 16) ~numa_nodes:1 in
      let pt = Page_table.create m in
      let frames = Pm.alloc_frames m ~n in
      Page_table.map_range pt ~va:0x400000 ~frames ~prot:Prot.rw;
      let victim = seed mod n in
      Page_table.unmap pt ~va:(0x400000 + (victim * Addr.page_size)) ~size:Page_table.P4K;
      let ok = ref true in
      for i = 0 to n - 1 do
        let present = Page_table.walk pt ~va:(0x400000 + (i * Addr.page_size)) <> None in
        if i = victim then ok := !ok && not present else ok := !ok && present
      done;
      !ok)

(* Model-based: random map/unmap/protect sequences agree with a shadow
   association table (page -> (pa, writable)). *)
let prop_paging_model =
  QCheck.Test.make ~name:"page table agrees with shadow map under mixed ops" ~count:60
    QCheck.(
      list_of_size Gen.(int_range 1 200) (triple (int_bound 3) (int_bound 60) (int_bound 1)))
    (fun ops ->
      let m = Pm.create ~size:(Size.mib 32) ~numa_nodes:1 in
      let pt = Page_table.create m in
      let shadow : (int, int * bool) Hashtbl.t = Hashtbl.create 64 in
      let ok = ref true in
      List.iter
        (fun (op, page, w) ->
          let va = (page + 16) * Addr.page_size in
          let writable = w = 1 in
          match op with
          | 0 | 1 ->
            if not (Hashtbl.mem shadow page) then begin
              let f = Pm.alloc_frame m in
              Page_table.map pt ~va ~pa:(Pm.base_of_frame f)
                ~prot:(if writable then Prot.rw else Prot.r)
                ~size:Page_table.P4K;
              Hashtbl.replace shadow page (Pm.base_of_frame f, writable)
            end
          | 2 ->
            if Hashtbl.mem shadow page then begin
              Page_table.unmap pt ~va ~size:Page_table.P4K;
              Hashtbl.remove shadow page
            end
          | _ ->
            if Hashtbl.mem shadow page then begin
              Page_table.protect pt ~va ~size:Page_table.P4K
                ~prot:(if writable then Prot.rw else Prot.r);
              let pa, _ = Hashtbl.find shadow page in
              Hashtbl.replace shadow page (pa, writable)
            end)
        ops;
      (* Verify every page in a window around the touched range. *)
      for page = 0 to 100 do
        let va = (page + 16) * Addr.page_size in
        match (Page_table.walk pt ~va, Hashtbl.find_opt shadow page) with
        | None, None -> ()
        | Some mp, Some (pa, writable) ->
          if mp.pa <> pa || mp.prot.write <> writable then ok := false
        | Some _, None | None, Some _ -> ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "map and walk" `Quick test_map_walk;
    Alcotest.test_case "2 MiB pages" `Quick test_map_2m;
    Alcotest.test_case "double map rejected" `Quick test_double_map_rejected;
    Alcotest.test_case "unmap prunes tables" `Quick test_unmap;
    Alcotest.test_case "alignment checks" `Quick test_alignment_checks;
    Alcotest.test_case "protect" `Quick test_protect;
    Alcotest.test_case "table accounting" `Quick test_table_accounting;
    Alcotest.test_case "PML4-boundary 7-table case (sec 4.4)" `Quick test_pml4_boundary_tables;
    Alcotest.test_case "subtree sharing" `Quick test_subtree_sharing;
    Alcotest.test_case "frames reclaimed" `Quick test_frames_reclaimed;
    QCheck_alcotest.to_alcotest prop_walk_inverts_map;
    QCheck_alcotest.to_alcotest prop_unmap_removes_exactly;
    QCheck_alcotest.to_alcotest prop_paging_model;
  ]
