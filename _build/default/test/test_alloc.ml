(* Tests for the dlmalloc-style mspace allocator. *)
module Mspace = Sj_alloc.Mspace

let mk ?(size = 65536) () = Mspace.create ~base:0x1000_0000 ~size

let test_basic_alloc () =
  let h = mk () in
  match Mspace.malloc h 100 with
  | Some va ->
    Alcotest.(check bool) "aligned" true (va mod 16 = 0);
    Alcotest.(check bool) "in range" true (Mspace.owns h va);
    Alcotest.(check bool) "live" true (Mspace.is_allocated h va);
    Alcotest.(check bool) "usable >= requested" true (Mspace.usable_size h va >= 100)
  | None -> Alcotest.fail "allocation failed"

let test_free_reuse () =
  let h = mk () in
  let a = Option.get (Mspace.malloc h 1000) in
  Mspace.free h a;
  let b = Option.get (Mspace.malloc h 1000) in
  Alcotest.(check int) "freed space reused" a b

let test_double_free_rejected () =
  let h = mk () in
  let a = Option.get (Mspace.malloc h 64) in
  Mspace.free h a;
  Alcotest.(check bool) "double free raises" true
    (try
       Mspace.free h a;
       false
     with Invalid_argument _ -> true)

let test_foreign_pointer_rejected () =
  let h = mk () in
  let a = Option.get (Mspace.malloc h 64) in
  Alcotest.(check bool) "interior pointer raises" true
    (try
       Mspace.free h (a + 8);
       false
     with Invalid_argument _ -> true)

let test_exhaustion () =
  let h = mk ~size:1024 () in
  Alcotest.(check bool) "too big" true (Mspace.malloc h 4096 = None);
  let a = Mspace.malloc h 1000 in
  Alcotest.(check bool) "close fit works" true (a <> None);
  Alcotest.(check bool) "then exhausted" true (Mspace.malloc h 64 = None)

let test_coalescing () =
  let h = mk ~size:4096 () in
  let a = Option.get (Mspace.malloc h 1000) in
  let b = Option.get (Mspace.malloc h 1000) in
  let c = Option.get (Mspace.malloc h 1000) in
  ignore c;
  Mspace.free h a;
  Mspace.free h b;
  (* After coalescing a+b, a 2000-byte allocation must fit at a. *)
  match Mspace.malloc h 2000 with
  | Some va -> Alcotest.(check int) "coalesced block reused" a va
  | None -> Alcotest.fail "coalescing failed"

let test_zero_size () =
  let h = mk () in
  match Mspace.malloc h 0 with
  | Some va -> Alcotest.(check bool) "minimum chunk" true (Mspace.usable_size h va >= 16)
  | None -> Alcotest.fail "zero-size alloc"

let test_accounting () =
  let h = mk () in
  Alcotest.(check int) "initially empty" 0 (Mspace.used_bytes h);
  let a = Option.get (Mspace.malloc h 100) in
  let used = Mspace.used_bytes h in
  Alcotest.(check bool) "used tracks" true (used >= 100);
  Alcotest.(check int) "one allocation" 1 (Mspace.allocations h);
  Mspace.free h a;
  Alcotest.(check int) "empty again" 0 (Mspace.used_bytes h);
  Alcotest.(check int) "free = total" 65536 (Mspace.free_bytes h);
  Alcotest.(check int) "largest free = whole range" 65536 (Mspace.largest_free h)

(* Random alloc/free interleavings preserve every invariant. *)
let prop_invariants =
  QCheck.Test.make ~name:"mspace invariants under random workloads" ~count:150
    QCheck.(list_of_size Gen.(int_range 1 200) (pair bool (int_bound 2000)))
    (fun ops ->
      let h = Mspace.create ~base:0x4000_0000 ~size:(1 lsl 17) in
      let live = ref [] in
      List.iter
        (fun (do_alloc, n) ->
          if do_alloc || !live = [] then begin
            match Mspace.malloc h n with
            | Some va -> live := va :: !live
            | None -> ()
          end
          else begin
            match !live with
            | va :: rest ->
              Mspace.free h va;
              live := rest
            | [] -> ()
          end;
          Mspace.check_invariants h)
        ops;
      List.iter (Mspace.free h) !live;
      Mspace.check_invariants h;
      Mspace.used_bytes h = 0 && Mspace.largest_free h = 1 lsl 17)

(* Live allocations never overlap. *)
let prop_no_overlap =
  QCheck.Test.make ~name:"live allocations never overlap" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 60) (int_range 1 3000))
    (fun sizes ->
      let h = Mspace.create ~base:0 ~size:(1 lsl 18) in
      let allocs =
        List.filter_map
          (fun n -> Option.map (fun va -> (va, Mspace.usable_size h va)) (Mspace.malloc h n))
          sizes
      in
      let sorted = List.sort compare allocs in
      let rec disjoint = function
        | (a, sa) :: ((b, _) as nb) :: rest -> a + sa <= b && disjoint (nb :: rest)
        | _ -> true
      in
      disjoint sorted)

let suite =
  [
    Alcotest.test_case "basic alloc" `Quick test_basic_alloc;
    Alcotest.test_case "free and reuse" `Quick test_free_reuse;
    Alcotest.test_case "double free rejected" `Quick test_double_free_rejected;
    Alcotest.test_case "foreign pointer rejected" `Quick test_foreign_pointer_rejected;
    Alcotest.test_case "exhaustion" `Quick test_exhaustion;
    Alcotest.test_case "coalescing" `Quick test_coalescing;
    Alcotest.test_case "zero-size request" `Quick test_zero_size;
    Alcotest.test_case "accounting" `Quick test_accounting;
    QCheck_alcotest.to_alcotest prop_invariants;
    QCheck_alcotest.to_alcotest prop_no_overlap;
  ]
