let to_line (r : Record.t) =
  Printf.sprintf "%s\t%d\t%s\t%d\t%d\t%s\t%s\t%d\t%d\t%s\t%s" r.qname r.flag r.rname r.pos
    r.mapq r.cigar r.rnext r.pnext r.tlen r.seq r.qual

let of_line line =
  match String.split_on_char '\t' line with
  | [ qname; flag; rname; pos; mapq; cigar; rnext; pnext; tlen; seq; qual ] -> (
    match
      ( int_of_string_opt flag,
        int_of_string_opt pos,
        int_of_string_opt mapq,
        int_of_string_opt pnext,
        int_of_string_opt tlen )
    with
    | Some flag, Some pos, Some mapq, Some pnext, Some tlen ->
      Ok { Record.qname; flag; rname; pos; mapq; cigar; rnext; pnext; tlen; seq; qual }
    | _ -> Error ("bad numeric field in: " ^ line))
  | _ -> Error ("wrong field count in: " ^ line)

let header refs =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "@HD\tVN:1.6\tSO:unknown\n";
  List.iter
    (fun (r : Record.reference) ->
      Buffer.add_string buf (Printf.sprintf "@SQ\tSN:%s\tLN:%d\n" r.ref_name r.length))
    refs;
  Buffer.contents buf

let encode refs records =
  let buf = Buffer.create (Array.length records * 256) in
  Buffer.add_string buf (header refs);
  Array.iter
    (fun r ->
      Buffer.add_string buf (to_line r);
      Buffer.add_char buf '\n')
    records;
  Buffer.to_bytes buf

let decode b =
  let lines = String.split_on_char '\n' (Bytes.to_string b) in
  let rec go acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | "" :: rest -> go acc rest
    | line :: rest ->
      if String.length line > 0 && line.[0] = '@' then go acc rest
      else (
        match of_line line with Ok r -> go (r :: acc) rest | Error e -> Error e)
  in
  go [] lines

let parse_cycles ~bytes = bytes * 11
let serialize_cycles ~bytes = bytes * 6
