(** DNA sequence alignment records (the SAM data model, Li et al. 2009).

    Real SAMTools inputs are unavailable offline, so {!generate}
    synthesizes a dataset with realistic field distributions: paired-end
    reads sampled from a random reference genome, mostly-matching CIGAR
    strings, Phred-like quality strings. The record structure and the
    operations over it (flagstat, sorts, indexing) are faithful; only
    the biology is synthetic. *)

type t = {
  qname : string;  (** read (query template) name *)
  flag : int;  (** bitwise alignment flags *)
  rname : string;  (** reference sequence name ("*" if unmapped) *)
  pos : int;  (** 1-based leftmost position (0 if unmapped) *)
  mapq : int;
  cigar : string;
  rnext : string;
  pnext : int;
  tlen : int;
  seq : string;
  qual : string;
}

(** Flag bits (SAM spec subset). *)

val flag_paired : int
val flag_proper_pair : int
val flag_unmapped : int
val flag_mate_unmapped : int
val flag_reverse : int
val flag_read1 : int
val flag_read2 : int
val flag_secondary : int
val flag_duplicate : int

val is_mapped : t -> bool

type reference = { ref_name : string; length : int }

val generate :
  seed:int -> references:reference list -> reads:int -> read_len:int -> t array
(** Paired-end synthetic alignments over the given references; a small
    fraction are unmapped, secondary, or duplicates. Deterministic in
    [seed]. *)

val default_references : reference list
(** Three chromosomes, 200 kbp each. *)

val compare_qname : t -> t -> int
(** Order for [samtools sort -n]. *)

val compare_coordinate : t -> t -> int
(** Order for coordinate sort: (rname, pos); unmapped reads last. *)

val approx_bytes : t -> int
(** In-memory footprint estimate, used to lay records out in simulated
    memory. *)
