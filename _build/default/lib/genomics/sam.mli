(** SAM text format: tab-separated alignment lines.

    Cost model: text parsing and formatting are the serialization taxes
    §5.4 measures, charged per byte at rates representative of
    SAMTools' line tokenizer. *)

val to_line : Record.t -> string
val of_line : string -> (Record.t, string) result
val header : Record.reference list -> string
val encode : Record.reference list -> Record.t array -> bytes
val decode : bytes -> (Record.t array, string) result
(** Ignores header lines. *)

val parse_cycles : bytes:int -> int
(** ~11 cycles/byte: field splitting, integer conversion, validation. *)

val serialize_cycles : bytes:int -> int
(** ~6 cycles/byte. *)
