lib/genomics/pipelines.mli: Ops Record Sj_core Sj_machine Sj_memfs
