lib/genomics/bam.ml: Array Buffer Bytes Char List Record Sj_compress String
