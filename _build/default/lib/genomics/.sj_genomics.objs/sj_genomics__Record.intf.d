lib/genomics/record.mli:
