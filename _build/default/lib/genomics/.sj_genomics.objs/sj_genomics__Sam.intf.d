lib/genomics/sam.mli: Record
