lib/genomics/bam.mli: Buffer Record
