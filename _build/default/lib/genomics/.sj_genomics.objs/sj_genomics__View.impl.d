lib/genomics/view.ml: Array Bam List Ops Record Sj_compress Sj_machine
