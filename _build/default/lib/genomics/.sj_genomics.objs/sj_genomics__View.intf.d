lib/genomics/view.mli: Ops Record Sj_machine
