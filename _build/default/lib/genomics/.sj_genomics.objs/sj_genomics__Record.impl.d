lib/genomics/record.ml: Array Buffer Char Hashtbl Printf Rng Size Sj_util String
