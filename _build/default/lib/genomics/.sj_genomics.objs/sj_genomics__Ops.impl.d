lib/genomics/ops.ml: Array Fun Hashtbl List Record Sj_machine
