lib/genomics/sam.ml: Array Buffer Bytes List Printf Record String
