lib/genomics/ops.mli: Record Sj_machine
