lib/genomics/pipelines.ml: Addr Array Bam Buffer Bytes Ops Record Sam Size Sj_compress Sj_core Sj_kernel Sj_machine Sj_memfs Sj_paging Sj_util
