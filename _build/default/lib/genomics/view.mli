(** Region queries over an indexed, compressed alignment file —
    [samtools view chr:lo-hi], the workhorse SAMTools operation the
    BAM/BAI combination exists for.

    A {!t} bundles a coordinate-sorted {!Bam.encode_indexed} stream,
    its per-record virtual offsets, and a BAI-style binning index.
    {!query} touches only the blocks holding candidate records: a small
    genomic window costs one or two block decompressions regardless of
    file size. *)

type t

val build :
  ?charge_to:Sj_machine.Machine.Core.core ->
  Record.reference list -> Record.t array -> t
(** Sort coordinate-wise (if needed), encode, and index. Charged like
    the index pipeline when a core is given. *)

val of_parts : data:bytes -> offsets:int array -> index:Ops.index_entry list -> t
(** Assemble from precomputed pieces. *)

val query :
  ?charge_to:Sj_machine.Machine.Core.core ->
  t -> rname:string -> lo:int -> hi:int -> Record.t list
(** All mapped records with [lo <= pos < hi] on [rname], in coordinate
    order. Decompression costs are charged for touched blocks only. *)

val blocks_for : t -> rname:string -> lo:int -> hi:int -> int * int
(** [(blocks touched, total blocks)] for a query — the random-access
    saving made measurable. *)

val bin_bp : int
(** Genomic window width per index bin (16384, BAI's smallest). *)
