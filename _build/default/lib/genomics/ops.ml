module Core = Sj_machine.Machine.Core

type dataset = {
  records : Record.t array;
  addrs : int array option;
  core : Core.core option;
}

let host_only records = { records; addrs = None; core = None }
let in_memory records ~addrs ~core = { records; addrs = Some addrs; core = Some core }

(* Visit record [i]: one header access; [deep] additionally reads the
   string payload area (qname compares, serialization passes). *)
let touch ?(deep = false) d i =
  match (d.addrs, d.core) with
  | Some addrs, Some core ->
    Core.touch core ~va:addrs.(i) ~access:Sj_machine.Machine.Read;
    if deep then Core.touch core ~va:(addrs.(i) + 64) ~access:Sj_machine.Machine.Read
  | _ -> ()

let charge d cycles =
  match d.core with Some core -> Core.charge core cycles | None -> ()

type flagstat = {
  total : int;
  mapped : int;
  paired : int;
  proper_pair : int;
  duplicates : int;
  secondary : int;
  read1 : int;
  read2 : int;
}

let flagstat d =
  let total = ref 0 and mapped = ref 0 and paired = ref 0 and proper = ref 0 in
  let dup = ref 0 and sec = ref 0 and r1 = ref 0 and r2 = ref 0 in
  Array.iteri
    (fun i r ->
      touch d i;
      charge d 6 (* flag tests *);
      incr total;
      if Record.is_mapped r then incr mapped;
      if r.Record.flag land Record.flag_paired <> 0 then incr paired;
      if r.Record.flag land Record.flag_proper_pair <> 0 then incr proper;
      if r.Record.flag land Record.flag_duplicate <> 0 then incr dup;
      if r.Record.flag land Record.flag_secondary <> 0 then incr sec;
      if r.Record.flag land Record.flag_read1 <> 0 then incr r1;
      if r.Record.flag land Record.flag_read2 <> 0 then incr r2)
    d.records;
  {
    total = !total;
    mapped = !mapped;
    paired = !paired;
    proper_pair = !proper;
    duplicates = !dup;
    secondary = !sec;
    read1 = !r1;
    read2 = !r2;
  }

let sort_permutation d ~by =
  let n = Array.length d.records in
  let perm = Array.init n Fun.id in
  let compare_fn, deep, cpu =
    match by with
    | `Qname -> (Record.compare_qname, true, 40)
    | `Coordinate -> (Record.compare_coordinate, false, 10)
  in
  let cmp i j =
    touch ~deep d i;
    touch ~deep d j;
    charge d cpu;
    compare_fn d.records.(i) d.records.(j)
  in
  Array.sort cmp perm;
  (* Persist the permutation: one pointer store per record. *)
  (match (d.addrs, d.core) with
  | Some addrs, Some core ->
    Array.iteri (fun i _ -> Core.touch core ~va:addrs.(i) ~access:Sj_machine.Machine.Write) perm
  | _ -> ());
  perm

let apply_permutation records perm = Array.map (fun i -> records.(i)) perm

type index_entry = { bin_rname : string; bin_id : int; first : int; count : int }

let build_index d ~bin_bp =
  let table : (string * int, int * int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i r ->
      touch d i;
      charge d 12 (* bin arithmetic + hash *);
      if Record.is_mapped r then begin
        let bin = r.Record.pos / bin_bp in
        match Hashtbl.find_opt table (r.Record.rname, bin) with
        | None -> Hashtbl.replace table (r.Record.rname, bin) (i, 1)
        | Some (first, count) -> Hashtbl.replace table (r.Record.rname, bin) (first, count + 1)
      end)
    d.records;
  Hashtbl.fold
    (fun (bin_rname, bin_id) (first, count) acc -> { bin_rname; bin_id; first; count } :: acc)
    table []
  |> List.sort (fun a b -> compare (a.bin_rname, a.bin_id) (b.bin_rname, b.bin_id))

type pileup = { p_rname : string; covered : int; max_depth : int; mean_depth : float }

let pileup d ~rname ~ref_length ~read_len =
  let depth = Array.make ref_length 0 in
  Array.iteri
    (fun i (r : Record.t) ->
      touch d i;
      charge d 8;
      if
        Record.is_mapped r && r.Record.rname = rname
        && r.Record.flag land Record.flag_secondary = 0
      then begin
        let lo = max 0 (r.Record.pos - 1) in
        let hi = min ref_length (lo + read_len) in
        charge d (2 * (hi - lo)) (* depth-array increments *);
        for p = lo to hi - 1 do
          depth.(p) <- depth.(p) + 1
        done
      end)
    d.records;
  let covered = ref 0 and max_depth = ref 0 and total = ref 0 in
  Array.iter
    (fun dp ->
      if dp > 0 then begin
        incr covered;
        total := !total + dp
      end;
      if dp > !max_depth then max_depth := dp)
    depth;
  {
    p_rname = rname;
    covered = !covered;
    max_depth = !max_depth;
    mean_depth =
      (if !covered = 0 then 0.0 else float_of_int !total /. float_of_int !covered);
  }

let is_coordinate_sorted d =
  let ok = ref true in
  for i = 0 to Array.length d.records - 2 do
    if Record.compare_coordinate d.records.(i) d.records.(i + 1) > 0 then ok := false
  done;
  !ok
