(** BAM-like binary alignment format.

    Faithful to BAM's architecture: records are binary-encoded (varint
    fields, 4-bit packed bases) and the stream is wrapped in an
    independently-compressed block container. The container is our
    {!Sj_compress.Block_lz} rather than BGZF/deflate (offline
    substitution — see DESIGN.md); block-granular random access, the
    property BAM indexes rely on, is preserved. *)

val encode_record : Buffer.t -> Record.t -> unit
val decode_record : bytes -> pos:int -> Record.t * int
val encode : Record.reference list -> Record.t array -> bytes
(** Binary-encode then compress. *)

val encode_indexed : Record.reference list -> Record.t array -> bytes * int array
(** Like {!encode}, also returning each record's *virtual offset* — its
    byte position in the uncompressed stream (BGZF-style). The array has
    one extra trailing entry: the stream's raw end. Virtual offsets let
    a reader decompress only the blocks containing wanted records. *)

val records_between : bytes -> offsets:int array -> first:int -> count:int -> Record.t array
(** Decode records [first, first+count) from an {!encode_indexed}
    stream, decompressing only the blocks they occupy. *)

val blocks_touched : offsets:int array -> first:int -> count:int -> int
(** How many 64 KiB blocks {!records_between} would decompress (for
    cost accounting: charge
    [Block_lz.decompress_cycles ~uncompressed:(blocks * block_size)]). *)

val decode : bytes -> (Record.t array, string) result
(** Decompress then decode. *)

val encode_cycles : raw_bytes:int -> int
(** Binary packing cost (before compression, which charges separately
    via {!Sj_compress.Block_lz.compress_cycles}). *)

val decode_cycles : raw_bytes:int -> int
