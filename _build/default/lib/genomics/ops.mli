(** The four SAMTools operations Fig. 11/12 measure: flagstat, name
    sort, coordinate sort, index.

    Operations run over a {!dataset}: the records plus, optionally, the
    simulated addresses where each record lives and the core doing the
    work — in which case every record visit performs charged memory
    accesses (this is how the in-memory variants' costs arise). *)

type dataset = {
  records : Record.t array;
  addrs : int array option;  (** simulated VA of each record *)
  core : Sj_machine.Machine.Core.core option;
}

val host_only : Record.t array -> dataset
val in_memory : Record.t array -> addrs:int array -> core:Sj_machine.Machine.Core.core -> dataset

type flagstat = {
  total : int;
  mapped : int;
  paired : int;
  proper_pair : int;
  duplicates : int;
  secondary : int;
  read1 : int;
  read2 : int;
}

val flagstat : dataset -> flagstat

val sort_permutation : dataset -> by:[ `Qname | `Coordinate ] -> int array
(** Indices of records in sorted order (records themselves untouched;
    callers persist the permutation or a reordered copy). *)

val apply_permutation : Record.t array -> int array -> Record.t array

type index_entry = { bin_rname : string; bin_id : int; first : int; count : int }

val build_index : dataset -> bin_bp:int -> index_entry list
(** BAI-style binning over a coordinate-sorted dataset: one entry per
    (reference, [bin_bp]-sized genomic window) giving the first record
    index and the number of records starting in the window. *)

val is_coordinate_sorted : dataset -> bool

(** {2 Pileup}

    §5.4 lists "collecting statics and pileup data" among SAMTools'
    operations: per-position coverage depth over a reference. *)

type pileup = {
  p_rname : string;
  covered : int;  (** positions with depth >= 1 *)
  max_depth : int;
  mean_depth : float;  (** over covered positions *)
}

val pileup : dataset -> rname:string -> ref_length:int -> read_len:int -> pileup
(** Depth profile of the mapped, non-secondary reads on one reference.
    Each read contributes [read_len] positions from its start. *)
