module Varint = Sj_compress.Varint

let add_string buf s =
  Varint.write buf (String.length s);
  Buffer.add_string buf s

let base_code = function
  | 'A' -> 1
  | 'C' -> 2
  | 'G' -> 4
  | 'T' -> 8
  | _ -> 15

let base_char = function 1 -> 'A' | 2 -> 'C' | 4 -> 'G' | 8 -> 'T' | _ -> 'N'

(* 4-bit packed bases, BAM-style. *)
let add_seq buf s =
  Varint.write buf (String.length s);
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let hi = base_code s.[!i] in
    let lo = if !i + 1 < n then base_code s.[!i + 1] else 0 in
    Buffer.add_char buf (Char.chr ((hi lsl 4) lor lo));
    i := !i + 2
  done

let read_string b pos =
  let len, pos = Varint.read b ~pos in
  (Bytes.sub_string b pos len, pos + len)

let read_seq b pos =
  let len, pos = Varint.read b ~pos in
  let s =
    String.init len (fun i ->
        let byte = Char.code (Bytes.get b (pos + (i / 2))) in
        base_char (if i mod 2 = 0 then byte lsr 4 else byte land 0xf))
  in
  (s, pos + ((len + 1) / 2))

let encode_record buf (r : Record.t) =
  add_string buf r.qname;
  Varint.write buf r.flag;
  add_string buf r.rname;
  Varint.write buf r.pos;
  Varint.write buf r.mapq;
  add_string buf r.cigar;
  add_string buf r.rnext;
  Varint.write buf r.pnext;
  Varint.write_signed buf r.tlen;
  add_seq buf r.seq;
  add_string buf r.qual

let decode_record b ~pos =
  let qname, pos = read_string b pos in
  let flag, pos = Varint.read b ~pos in
  let rname, pos = read_string b pos in
  let pos_field, pos = Varint.read b ~pos in
  let mapq, pos = Varint.read b ~pos in
  let cigar, pos = read_string b pos in
  let rnext, pos = read_string b pos in
  let pnext, pos = Varint.read b ~pos in
  let tlen, pos = Varint.read_signed b ~pos in
  let seq, pos = read_seq b pos in
  let qual, pos = read_string b pos in
  ({ Record.qname; flag; rname; pos = pos_field; mapq; cigar; rnext; pnext; tlen; seq; qual },
   pos)

let magic = "SJB1"

let encode_raw refs records =
  let buf = Buffer.create (Array.length records * 128) in
  Buffer.add_string buf magic;
  Varint.write buf (List.length refs);
  List.iter
    (fun (r : Record.reference) ->
      add_string buf r.ref_name;
      Varint.write buf r.length)
    refs;
  Varint.write buf (Array.length records);
  let offsets = Array.make (Array.length records + 1) 0 in
  Array.iteri
    (fun i r ->
      offsets.(i) <- Buffer.length buf;
      encode_record buf r)
    records;
  offsets.(Array.length records) <- Buffer.length buf;
  (Buffer.to_bytes buf, offsets)

let encode refs records =
  let raw, _ = encode_raw refs records in
  Sj_compress.Block_lz.compress raw

let encode_indexed refs records =
  let raw, offsets = encode_raw refs records in
  (Sj_compress.Block_lz.compress raw, offsets)

let block_span ~offsets ~first ~count =
  if count <= 0 then (0, 0)
  else begin
    let bs = Sj_compress.Block_lz.block_size in
    let raw_start = offsets.(first) in
    let raw_end = offsets.(first + count) in
    let b0 = raw_start / bs in
    let b1 = (raw_end - 1) / bs in
    (b0, b1 - b0 + 1)
  end

let blocks_touched ~offsets ~first ~count = snd (block_span ~offsets ~first ~count)

let records_between data ~offsets ~first ~count =
  (* [offsets] has one entry per record plus the raw-end sentinel. *)
  if first < 0 || count < 0 || first + count > Array.length offsets - 1 then
    invalid_arg "Bam.records_between: record range";
  if count = 0 then [||]
  else begin
    let bs = Sj_compress.Block_lz.block_size in
    let b0, nblocks = block_span ~offsets ~first ~count in
    let slice = Sj_compress.Block_lz.decompress_blocks data ~first_block:b0 ~count:nblocks in
    let base = b0 * bs in
    Array.init count (fun i ->
        let r, _ = decode_record slice ~pos:(offsets.(first + i) - base) in
        r)
  end

let decode data =
  match Sj_compress.Block_lz.decompress data with
  | exception Invalid_argument e -> Error e
  | raw -> (
    try
      if Bytes.length raw < 4 || Bytes.sub_string raw 0 4 <> magic then Error "bad magic"
      else begin
        let nrefs, pos = Varint.read raw ~pos:4 in
        let pos = ref pos in
        for _ = 1 to nrefs do
          let _, p = read_string raw !pos in
          let _, p = Varint.read raw ~pos:p in
          pos := p
        done;
        let count, p = Varint.read raw ~pos:!pos in
        pos := p;
        Ok
          (Array.init count (fun _ ->
               let r, p = decode_record raw ~pos:!pos in
               pos := p;
               r))
      end
    with Invalid_argument e -> Error e)

(* Binary packing is cheaper than text: ~5 cycles/raw byte to encode,
   ~4 to decode (field extraction, string building). *)
let encode_cycles ~raw_bytes = raw_bytes * 5
let decode_cycles ~raw_bytes = raw_bytes * 4
