module Core = Sj_machine.Machine.Core
module Block_lz = Sj_compress.Block_lz

let bin_bp = 16384

type t = {
  data : bytes;
  offsets : int array;
  index : Ops.index_entry list;
}

let of_parts ~data ~offsets ~index = { data; offsets; index }

let build ?charge_to refs records =
  let ds = Ops.host_only records in
  let sorted =
    if Ops.is_coordinate_sorted ds then records
    else Ops.apply_permutation records (Ops.sort_permutation ds ~by:`Coordinate)
  in
  let data, offsets = Bam.encode_indexed refs sorted in
  (match charge_to with
  | Some core ->
    let raw = offsets.(Array.length offsets - 1) in
    Core.charge core (Bam.encode_cycles ~raw_bytes:raw);
    Core.charge core (Block_lz.compress_cycles ~uncompressed:raw)
  | None -> ());
  let index = Ops.build_index (Ops.host_only sorted) ~bin_bp in
  { data; offsets; index }

(* Candidate record range for [lo, hi) on [rname], from the bins that
   overlap the window. Records are coordinate-sorted, so the candidates
   form one contiguous run. *)
let candidate_range t ~rname ~lo ~hi =
  let bin_lo = lo / bin_bp and bin_hi = (max lo (hi - 1)) / bin_bp in
  let first = ref max_int and stop = ref 0 in
  List.iter
    (fun (e : Ops.index_entry) ->
      if e.bin_rname = rname && e.bin_id >= bin_lo && e.bin_id <= bin_hi then begin
        if e.first < !first then first := e.first;
        if e.first + e.count > !stop then stop := e.first + e.count
      end)
    t.index;
  if !first = max_int then None else Some (!first, !stop - !first)

let blocks_for t ~rname ~lo ~hi =
  let total = Block_lz.compressed_blocks t.data in
  match candidate_range t ~rname ~lo ~hi with
  | None -> (0, total)
  | Some (first, count) -> (Bam.blocks_touched ~offsets:t.offsets ~first ~count, total)

let query ?charge_to t ~rname ~lo ~hi =
  if hi <= lo then []
  else
    match candidate_range t ~rname ~lo ~hi with
    | None -> []
    | Some (first, count) ->
      (match charge_to with
      | Some core ->
        let blocks = Bam.blocks_touched ~offsets:t.offsets ~first ~count in
        Core.charge core
          (Block_lz.decompress_cycles ~uncompressed:(blocks * Block_lz.block_size));
        (* Decoding the candidate records. *)
        Core.charge core
          (Bam.decode_cycles ~raw_bytes:(t.offsets.(first + count) - t.offsets.(first)))
      | None -> ());
      let candidates = Bam.records_between t.data ~offsets:t.offsets ~first ~count in
      Array.to_list candidates
      |> List.filter (fun (r : Record.t) ->
             Record.is_mapped r && r.Record.rname = rname && r.Record.pos >= lo
             && r.Record.pos < hi)
