lib/machine/platform.mli: Cost_model Format Sj_tlb
