lib/machine/platform.ml: Cost_model Format Size Sj_tlb Sj_util
