lib/machine/cache.mli: Format
