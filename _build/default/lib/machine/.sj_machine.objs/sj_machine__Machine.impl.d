lib/machine/machine.ml: Addr Array Bytes Cache Cost_model Int64 Platform Size Sj_mem Sj_paging Sj_tlb Sj_util
