lib/machine/machine.mli: Cost_model Platform Sj_mem Sj_paging Sj_tlb
