lib/machine/cache.ml: Array Format Size Sj_util
