open Sj_util

type level = L1 | LLC | Memory

type t = {
  sets : int;
  ways : int;
  line : int;
  line_shift : int;
  tags : int array array; (* [set].[way]; -1 = invalid *)
  lru : int array array;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~size ~ways ~line =
  if not (Size.is_power_of_two line) then invalid_arg "Cache.create: line size";
  let lines = size / line in
  if lines mod ways <> 0 then invalid_arg "Cache.create: size/ways mismatch";
  let sets = lines / ways in
  if sets <= 0 then invalid_arg "Cache.create: set count";
  {
    sets;
    ways;
    line;
    line_shift = Size.log2 line;
    tags = Array.init sets (fun _ -> Array.make ways (-1));
    lru = Array.init sets (fun _ -> Array.make ways 0);
    clock = 0;
    hits = 0;
    misses = 0;
  }

let line_addr t pa = pa lsr t.line_shift

(* Power-of-two set counts index by mask; LLCs with non-power-of-two
   associativity products (e.g. 25 MiB / 20-way) index by modulo. *)
let set_of t la = if t.sets land (t.sets - 1) = 0 then la land (t.sets - 1) else la mod t.sets

let find t la =
  let s = set_of t la in
  let tags = t.tags.(s) in
  let rec go i = if i >= t.ways then None else if tags.(i) = la then Some i else go (i + 1) in
  go 0

let touch t s w =
  t.clock <- t.clock + 1;
  t.lru.(s).(w) <- t.clock

let access t ~pa =
  let la = line_addr t pa in
  let s = set_of t la in
  match find t la with
  | Some w ->
    touch t s w;
    t.hits <- t.hits + 1;
    true
  | None ->
    t.misses <- t.misses + 1;
    (* Fill, evicting LRU. *)
    let tags = t.tags.(s) and lru = t.lru.(s) in
    let victim = ref 0 in
    (try
       for i = 0 to t.ways - 1 do
         if tags.(i) = -1 then begin
           victim := i;
           raise Exit
         end;
         if lru.(i) < lru.(!victim) then victim := i
       done
     with Exit -> ());
    tags.(!victim) <- la;
    touch t s !victim;
    false

let probe t ~pa =
  let la = line_addr t pa in
  match find t la with
  | Some w ->
    touch t (set_of t la) w;
    true
  | None -> false

let invalidate_line t ~pa =
  let la = line_addr t pa in
  match find t la with
  | Some w -> t.tags.(set_of t la).(w) <- -1
  | None -> ()

let clear t =
  Array.iter (fun tags -> Array.fill tags 0 t.ways (-1)) t.tags

let hits t = t.hits
let misses t = t.misses
let line_size t = t.line

let pp_level fmt = function
  | L1 -> Format.pp_print_string fmt "L1"
  | LLC -> Format.pp_print_string fmt "LLC"
  | Memory -> Format.pp_print_string fmt "DRAM"
