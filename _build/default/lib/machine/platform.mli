(** Hardware platform descriptions (paper Table 1). *)

type t = {
  name : string;
  description : string;
  mem_size : int;  (** installed performance-tier memory, bytes *)
  capacity_size : int;  (** capacity-tier (NVM-class) memory, bytes; 0 = none *)
  sockets : int;
  cores_per_socket : int;
  cost : Cost_model.t;
  tlb : Sj_tlb.Tlb.config;
  l1_size : int;
  l1_ways : int;
  llc_size : int;  (** per socket *)
  llc_ways : int;
  line : int;
}

val m1 : t
(** 92 GiB, 2x12c Xeon X5650, 2.66 GHz. *)

val m2 : t
(** 256 GiB, 2x10c Xeon E5-2670v2, 2.50 GHz. *)

val m3 : t
(** 512 GiB, 2x18c Xeon E5-2699v3, 2.30 GHz. *)

val total_cores : t -> int

val with_capacity_tier : t -> size:int -> t
(** The same platform plus a capacity tier (sec 7 heterogeneous
    memory). *)

val pp : Format.formatter -> t -> unit
