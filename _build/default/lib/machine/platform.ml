open Sj_util

type t = {
  name : string;
  description : string;
  mem_size : int;
  capacity_size : int;
  sockets : int;
  cores_per_socket : int;
  cost : Cost_model.t;
  tlb : Sj_tlb.Tlb.config;
  l1_size : int;
  l1_ways : int;
  llc_size : int;
  llc_ways : int;
  line : int;
}

let xeon_tlb = Sj_tlb.Tlb.default_config

(* Simulated memories are scaled to 1/16 of the physical machines so
   that host memory stays modest; every experiment sizes its working
   sets in absolute bytes, far below even the scaled capacity. *)
let m1 =
  {
    name = "M1";
    description = "92 GiB, 2x12c Xeon X5650, 2.66 GHz";
    mem_size = Size.gib 6;
    capacity_size = 0;
    sockets = 2;
    cores_per_socket = 12;
    cost = Cost_model.m1;
    tlb = xeon_tlb;
    l1_size = Size.kib 32;
    l1_ways = 8;
    llc_size = Size.mib 12;
    llc_ways = 16;
    line = 64;
  }

let m2 =
  {
    name = "M2";
    description = "256 GiB, 2x10c Xeon E5-2670v2, 2.50 GHz";
    mem_size = Size.gib 16;
    capacity_size = 0;
    sockets = 2;
    cores_per_socket = 10;
    cost = Cost_model.m2;
    tlb = xeon_tlb;
    l1_size = Size.kib 32;
    l1_ways = 8;
    llc_size = Size.mib 25;
    llc_ways = 20;
    line = 64;
  }

let m3 =
  {
    name = "M3";
    description = "512 GiB, 2x18c Xeon E5-2699v3, 2.30 GHz";
    mem_size = Size.gib 32;
    capacity_size = 0;
    sockets = 2;
    cores_per_socket = 18;
    cost = Cost_model.m3;
    tlb = xeon_tlb;
    l1_size = Size.kib 32;
    l1_ways = 8;
    llc_size = Size.mib 45;
    llc_ways = 20;
    line = 64;
  }

let total_cores t = t.sockets * t.cores_per_socket
let with_capacity_tier t ~size = { t with capacity_size = size }

let pp fmt t =
  Format.fprintf fmt "%s: %s (simulated %a)" t.name t.description Size.pp t.mem_size
