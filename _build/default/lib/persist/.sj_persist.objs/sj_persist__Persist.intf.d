lib/persist/persist.mli: Sj_core
