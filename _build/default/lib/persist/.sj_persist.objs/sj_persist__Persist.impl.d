lib/persist/persist.ml: Addr Buffer Bytes List Printf Size Sj_alloc Sj_compress Sj_core Sj_kernel Sj_machine Sj_mem Sj_paging Sj_util String
