(** VAS persistence across reboots (paper sec 7).

    With segment memory on NVM, address spaces would survive power
    cycles by construction; on our simulated DRAM machine we provide the
    equivalent systems feature explicitly: {!save} serializes every
    registered segment (metadata, allocator state, and compressed
    contents) and every VAS (segment list, protections, tags) into a
    self-contained image; {!restore} rebuilds them — at the same virtual
    addresses, so persisted pointers remain valid — inside a freshly
    booted system.

    Not persisted: processes and their attachments (they are, by
    design, the transient part of the model), segment locks (released
    by a reboot), and translation caches (rebuilt on demand).
    Copy-on-write sharing is materialized: each snapshot segment is
    saved with its full logical contents and restored as an independent
    segment. *)

val save : Sj_core.Api.system -> bytes
(** Serialize all registered segments and VASes. Deterministic. *)

val restore : Sj_core.Api.system -> bytes -> unit
(** Rebuild the image's segments and VASes inside [system] (normally a
    freshly booted one). Raises [Errors.Name_exists] if names collide
    with already-registered objects, [Invalid_argument] on a corrupt
    image. *)

val image_info : bytes -> string
(** One-line human summary of an image (for [sjctl]). *)

val describe : bytes -> string
(** Multi-line listing of an image: every segment (base, size, prot,
    page size, heap usage) and every VAS (tag, attached segments). *)
