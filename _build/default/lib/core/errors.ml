exception Permission_denied of string
exception Would_block of string
exception Name_exists of string
exception Unknown_name of string
exception Stale_handle of string
exception Address_conflict of string
