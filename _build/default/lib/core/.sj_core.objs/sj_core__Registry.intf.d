lib/core/registry.mli: Segment Sj_alloc Sj_kernel Sj_machine Vas
