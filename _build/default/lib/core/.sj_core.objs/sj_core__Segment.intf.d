lib/core/segment.mli: Sj_kernel Sj_machine Sj_paging
