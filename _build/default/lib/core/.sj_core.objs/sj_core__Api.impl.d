lib/core/api.ml: Addr Array Errors List Logs Option Registry Segment Size Sj_alloc Sj_kernel Sj_machine Sj_mem Sj_paging Sj_tlb Sj_util Vas
