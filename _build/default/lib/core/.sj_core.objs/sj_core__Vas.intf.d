lib/core/vas.mli: Segment Sj_kernel Sj_paging
