lib/core/registry.ml: Buffer Errors Hashtbl List Printf Segment Sj_alloc Sj_kernel Sj_machine Sj_paging Sj_util String Vas
