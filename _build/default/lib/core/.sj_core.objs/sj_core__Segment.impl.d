lib/core/segment.ml: Addr Array Printf Size Sj_kernel Sj_machine Sj_mem Sj_paging Sj_util
