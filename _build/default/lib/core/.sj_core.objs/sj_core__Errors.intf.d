lib/core/errors.mli:
