lib/core/vas.ml: Addr Errors List Printf Segment Sj_kernel Sj_paging Sj_util
