lib/core/errors.ml:
