lib/core/api.mli: Registry Segment Sj_kernel Sj_machine Sj_paging Vas
