(** Errors raised by the SpaceJMP API. *)

exception Permission_denied of string
(** The caller's credentials fail the ACL / capability check. *)

exception Would_block of string
(** A lockable segment's lock could not be acquired; the caller may
    retry (single-timeline clients) or wait (discrete-event clients). *)

exception Name_exists of string
(** A VAS or segment with that name already exists. *)

exception Unknown_name of string
(** [vas_find] / [seg_find] target does not exist. *)

exception Stale_handle of string
(** Use of a detached VAS handle or destroyed object. *)

exception Address_conflict of string
(** Segment placement collides with an existing mapping (§4.1
    "Inadvertent address collisions"). *)
