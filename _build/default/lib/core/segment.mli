(** Lockable segments (§3.1).

    A segment is a single contiguous area of virtual memory with a
    *fixed* virtual start address and size, together with its backing
    physical frames and access metadata. Fixing the virtual address is
    what lets pointer-rich data structures remain valid across processes
    and process lifetimes without swizzling.

    Lockable segments carry a reader/writer lock. The lock is acquired
    as part of [vas_switch]: shared if the switching attachment maps the
    segment read-only, exclusive if it maps it writable — so at most one
    client at a time can be *inside* an address space with the segment
    writable, while read-only attachments admit many concurrent readers. *)

type t

type lock_state = Unlocked | Shared of int  (** reader count *) | Exclusive

val create :
  ?lockable:bool ->
  ?acl:Sj_kernel.Acl.t ->
  ?node:int ->
  ?huge:bool ->
  charge_to:Sj_machine.Machine.Core.core option ->
  machine:Sj_machine.Machine.t ->
  name:string ->
  base:int ->
  size:int ->
  prot:Sj_paging.Prot.t ->
  unit ->
  t
(** Reserve physical memory for a segment at fixed virtual base [base].
    [prot] is the *maximum* protection; attachments may map it more
    restrictively. Default ACL: owner root, mode 0o600; default
    [lockable] is true. [huge] backs the segment with physically
    contiguous memory mapped as 2 MiB pages. *)

val create_with_object :
  ?lockable:bool ->
  ?acl:Sj_kernel.Acl.t ->
  machine:Sj_machine.Machine.t ->
  name:string ->
  base:int ->
  prot:Sj_paging.Prot.t ->
  Sj_kernel.Vm_object.t ->
  t
(** Wrap an existing VM object (no allocation) — used by copy-on-write
    snapshots, whose object shares the original's frames. *)

val sid : t -> int
val name : t -> string
val base : t -> int
val size : t -> int
(** Reserved size in bytes (page multiple). *)

val pages : t -> int
val prot_max : t -> Sj_paging.Prot.t
val vm_object : t -> Sj_kernel.Vm_object.t
val acl : t -> Sj_kernel.Acl.t
val set_acl : t -> Sj_kernel.Acl.t -> unit
val lockable : t -> bool
val is_destroyed : t -> bool

val is_cow : t -> bool
(** True once the segment participates in copy-on-write sharing (it was
    snapshotted, or it is a snapshot); attachments then install shared
    pages read-only and rely on the fault handler to split them. *)

val mark_cow : t -> unit

val page_size : t -> Sj_paging.Page_table.page_size
(** Mapping granularity attachments must use (2 MiB for huge
    segments). *)

(** {2 Locking} *)

val lock_state : t -> lock_state

val try_lock : t -> mode:[ `Shared | `Exclusive ] -> bool
(** Non-blocking acquire; false when the request conflicts with the
    current holder(s). Non-lockable segments always succeed. *)

val unlock : t -> mode:[ `Shared | `Exclusive ] -> unit
(** Release; raises [Invalid_argument] if not held in that mode. *)

val lock_conflicts : t -> int
(** Number of failed [try_lock] attempts (contention metric). *)

(** {2 Cached translations (§4.1, §4.4)}

    A segment aligned to — and padded out to — 1 GiB boundaries can
    pre-build its page-table subtrees once and share them with every
    attaching address space; attaching then writes one PDPT entry per
    GiB instead of one PTE per page. *)

val translation_cache : t -> Sj_paging.Page_table.subtree array option
(** The cached per-GiB subtrees, if built. *)

val build_translation_cache :
  t -> charge_to:Sj_machine.Machine.Core.core option -> unit
(** Build (idempotent). Raises [Invalid_argument] if the segment's base
    is not 1 GiB aligned. Charged like a normal full mapping — the point
    is to pay once instead of per attach. *)

val grow : t -> by:int -> charge_to:Sj_machine.Machine.Core.core option -> int
(** Extend the segment's reservation by at least [by] bytes (rounded to
    pages); returns the actual growth. Refused ([Invalid_argument]) for
    segments with cached translations, COW participants, and huge-page
    segments. Attachments observe the new range after their next switch
    — the coordination-free shared-region growth §2.3 asks for. *)

val destroy : t -> unit
(** Release backing frames and cached translations. The registry is
    responsible for ensuring no VAS still references the segment. *)
