open Sj_paging

type cred = { uid : int; gids : int list }

let root = { uid = 0; gids = [ 0 ] }
let cred ~uid ~gids = { uid; gids }

type t = { owner : int; group : int; mode : int; entries : (int * Prot.t) list }

let create ~owner ~group ~mode = { owner; group; mode; entries = [] }
let add_entry t ~uid prot = { t with entries = (uid, prot) :: t.entries }

let triplet_allows bits access =
  match access with `Read -> bits land 4 <> 0 | `Write -> bits land 2 <> 0 | `Exec -> bits land 1 <> 0

let check t cred access =
  if cred.uid = 0 then true
  else if cred.uid = t.owner then triplet_allows ((t.mode lsr 6) land 7) access
  else if
    List.exists (fun (uid, prot) -> uid = cred.uid && Prot.allows prot access) t.entries
  then true
  else if List.mem t.group cred.gids then triplet_allows ((t.mode lsr 3) land 7) access
  else triplet_allows (t.mode land 7) access

let owner t = t.owner
let mode t = t.mode
let chmod t ~mode = { t with mode }
let chown t ~owner ~group = { t with owner; group }

let pp fmt t =
  Format.fprintf fmt "uid=%d gid=%d mode=%03o acl=[%a]" t.owner t.group t.mode
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f "; ")
       (fun f (uid, p) -> Format.fprintf f "%d:%a" uid Prot.pp p))
    t.entries
