(** Mach-style VM objects (§4.1): reservations of physical frames that
    back mappings. A SpaceJMP segment wraps one VM object.

    Frames are reserved eagerly at creation and are not swappable,
    matching the paper's DragonFly implementation ("Physical pages are
    reserved at the time a segment is created, and are not swappable"). *)

type t

val create :
  ?name:string -> ?node:int -> ?contiguous:bool -> Sj_machine.Machine.t -> size:int ->
  charge_to:Sj_machine.Machine.Core.core option -> t
(** Reserve [size] bytes (rounded up to whole pages) of zeroed physical
    memory, charging page-zeroing cost to [charge_to] when given. *)

val id : t -> int
val name : t -> string option
val size : t -> int
(** Reserved size in bytes (page multiple). *)

val pages : t -> int

val is_contiguous : t -> bool
(** True iff the frames form one physical run (eligible for huge-page
    mapping). *)

val frames : t -> Sj_mem.Phys_mem.frame array
val frame_at : t -> page:int -> Sj_mem.Phys_mem.frame

val grow :
  ?node:int -> Sj_machine.Machine.t -> t -> by_pages:int ->
  charge_to:Sj_machine.Machine.Core.core option -> unit
(** Reserve additional frames at the end of the object. *)

val destroy : Sj_machine.Machine.t -> t -> unit
(** Release the reserved frames (shared COW frames are freed when their
    last owner is destroyed). The caller must ensure no mapping still
    references them. *)

val is_destroyed : t -> bool

(** {2 Copy-on-write (paper sec 7: snapshotting / versioning)} *)

val cow_clone : ?name:string -> t -> t
(** A logical copy sharing every physical page with the original. Both
    objects' shared pages must be mapped read-only until split. *)

val page_shared : t -> page:int -> bool
(** True while the page's frame is owned by more than one object. *)

val resolve_cow_write :
  t -> page:int -> Sj_machine.Machine.t ->
  charge_to:Sj_machine.Machine.Core.core option ->
  Sj_mem.Phys_mem.frame
(** Make [page] exclusively owned and writable: if shared, allocate a
    fresh frame, copy the contents (charged as a page copy), and point
    this object at it; the other owners keep the original frame.
    Returns the (possibly new) frame to map. *)
