(** DragonFly-style access control: owner/group/mode bits plus access
    control list entries. SpaceJMP's DragonFly backend reuses the OS
    security model for segments and address spaces (§3.2). *)

type cred = { uid : int; gids : int list }
(** A process's credentials. *)

val root : cred
(** Superuser credential: uid 0, passes every check. *)

val cred : uid:int -> gids:int list -> cred

type t

val create : owner:int -> group:int -> mode:int -> t
(** [mode] is a Unix-style octal triple, e.g. [0o640]. *)

val add_entry : t -> uid:int -> Sj_paging.Prot.t -> t
(** Extend with a per-user ACL entry (grants are unioned). *)

val check : t -> cred -> [ `Read | `Write | `Exec ] -> bool
val owner : t -> int
val mode : t -> int
val chmod : t -> mode:int -> t
val chown : t -> owner:int -> group:int -> t
val pp : Format.formatter -> t -> unit
