lib/kernel/acl.mli: Format Sj_paging
