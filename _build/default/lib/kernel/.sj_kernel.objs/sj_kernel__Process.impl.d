lib/kernel/process.ml: Acl Addr Cap Layout List Printf Size Sj_machine Sj_paging Sj_util Vm_object Vmspace
