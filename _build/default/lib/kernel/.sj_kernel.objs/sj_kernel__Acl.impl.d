lib/kernel/acl.ml: Format List Prot Sj_paging
