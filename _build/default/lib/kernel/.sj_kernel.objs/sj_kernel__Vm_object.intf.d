lib/kernel/vm_object.mli: Sj_machine Sj_mem
