lib/kernel/process.mli: Acl Cap Sj_machine Vm_object Vmspace
