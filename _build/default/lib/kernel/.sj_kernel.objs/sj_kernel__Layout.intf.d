lib/kernel/layout.mli:
