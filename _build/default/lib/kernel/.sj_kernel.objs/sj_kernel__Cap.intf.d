lib/kernel/cap.mli: Sj_paging
