lib/kernel/layout.ml: Addr Size Sj_util
