lib/kernel/cap.ml: Hashtbl List Prot Sj_paging
