lib/kernel/vmspace.mli: Sj_machine Sj_mem Sj_paging Vm_object
