lib/kernel/vm_object.ml: Addr Array Sj_machine Sj_mem Sj_util
