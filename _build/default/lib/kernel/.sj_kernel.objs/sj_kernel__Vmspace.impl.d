lib/kernel/vmspace.ml: Addr List Printf Size Sj_machine Sj_mem Sj_paging Sj_util Vm_object
