open Sj_util

let text_base = 0x40_0000
let data_base = 0x60_0000
let stack_top = 0x7f_ffff_f000
let stack_gap = Size.mib 1
let private_limit = Size.tib 1
let global_base = private_limit
let is_private va = va >= 0 && va < private_limit
let is_global va = va >= global_base && va < Addr.va_limit

let global_cursor = ref global_base

let next_global_base ~size =
  let base = !global_cursor in
  let span = Size.round_up size ~align:(Size.gib 1) in
  global_cursor := base + span;
  if !global_cursor >= Addr.va_limit then failwith "Layout: global address range exhausted";
  base

let reset_global_allocator () = global_cursor := global_base

let reserve_global ~base ~size =
  let top = Size.round_up (base + size) ~align:(Size.gib 1) in
  if top > !global_cursor then global_cursor := top
