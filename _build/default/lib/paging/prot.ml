type t = { read : bool; write : bool; exec : bool }

let none = { read = false; write = false; exec = false }
let r = { read = true; write = false; exec = false }
let rw = { read = true; write = true; exec = false }
let rx = { read = true; write = false; exec = true }
let rwx = { read = true; write = true; exec = true }

let subsumes a b =
  (b.read <= a.read) && (b.write <= a.write) && (b.exec <= a.exec)

let allows t = function
  | `Read -> t.read
  | `Write -> t.write
  | `Exec -> t.exec

let pp fmt t =
  Format.fprintf fmt "%c%c%c"
    (if t.read then 'r' else '-')
    (if t.write then 'w' else '-')
    (if t.exec then 'x' else '-')

let to_string t = Format.asprintf "%a" pp t

let of_mode_bits bits =
  { read = bits land 4 <> 0; write = bits land 2 <> 0; exec = bits land 1 <> 0 }
