(** Access protections on mappings and segments. *)

type t = { read : bool; write : bool; exec : bool }

val none : t
val r : t
val rw : t
val rx : t
val rwx : t

val subsumes : t -> t -> bool
(** [subsumes a b] is true iff every access [b] allows, [a] also
    allows (i.e. [b] is no more permissive than [a]). *)

val allows : t -> [ `Read | `Write | `Exec ] -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_mode_bits : int -> t
(** Interpret a Unix-style 3-bit rwx triplet (e.g. [0o6] -> rw). *)
