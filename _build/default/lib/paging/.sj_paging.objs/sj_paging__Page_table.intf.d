lib/paging/page_table.mli: Prot Sj_mem
