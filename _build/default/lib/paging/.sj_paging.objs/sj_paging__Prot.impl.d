lib/paging/prot.ml: Format
