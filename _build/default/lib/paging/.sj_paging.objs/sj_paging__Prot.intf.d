lib/paging/prot.mli: Format
