lib/paging/page_table.ml: Addr Array Printf Prot Size Sj_mem Sj_util
