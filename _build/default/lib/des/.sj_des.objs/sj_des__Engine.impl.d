lib/des/engine.ml:
