lib/des/resource.ml: Engine Queue
