lib/des/resource.mli: Engine
