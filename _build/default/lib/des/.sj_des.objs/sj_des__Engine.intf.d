lib/des/engine.mli:
