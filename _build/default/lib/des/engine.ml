type event = { time : int; seq : int; action : unit -> unit }

(* Pairing-heap keyed by (time, seq): O(1) insert, amortized O(log n)
   delete-min, no rebalancing bookkeeping. *)
type heap = Empty | Node of event * heap list

let heap_le a b = a.time < b.time || (a.time = b.time && a.seq <= b.seq)

let merge h1 h2 =
  match (h1, h2) with
  | Empty, h | h, Empty -> h
  | Node (e1, c1), Node (e2, c2) ->
    if heap_le e1 e2 then Node (e1, h2 :: c1) else Node (e2, h1 :: c2)

let insert h e = merge h (Node (e, []))

let rec merge_pairs = function
  | [] -> Empty
  | [ h ] -> h
  | h1 :: h2 :: rest -> merge (merge h1 h2) (merge_pairs rest)

let pop = function
  | Empty -> None
  | Node (e, children) -> Some (e, merge_pairs children)

type t = { mutable now : int; mutable heap : heap; mutable seq : int; mutable count : int }

let create () = { now = 0; heap = Empty; seq = 0; count = 0 }
let now t = t.now

let schedule t ~at action =
  if at < t.now then invalid_arg "Engine.schedule: event in the past";
  t.heap <- insert t.heap { time = at; seq = t.seq; action };
  t.seq <- t.seq + 1;
  t.count <- t.count + 1

let schedule_after t ~delay action =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(t.now + delay) action

let run ?until t =
  let continue () =
    match pop t.heap with
    | None -> false
    | Some (e, rest) -> (
      match until with
      | Some limit when e.time > limit -> false
      | _ ->
        t.heap <- rest;
        t.count <- t.count - 1;
        t.now <- e.time;
        e.action ();
        true)
  in
  while continue () do
    ()
  done;
  match until with Some limit when t.now < limit -> t.now <- limit | _ -> ()

let pending t = t.count
