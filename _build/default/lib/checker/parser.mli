(** Textual syntax for the safety IR, so programs can be written in
    files and checked with [sjctl check].

    Grammar (one construct per line; [#] starts a comment):
    {v
    func main():            ; first function is the entry point
    entry:                  ; first block of a function is its entry
      switch v1
      p = malloc
      x = 42
      *p = x
      y = *p
      q = vcast p v2
      z = phi [a: x] [b: y]
      r = call f(x, y)      ; or: call f(x)
      br x, then_block, else_block
      jmp next
      ret y                 ; or: ret
    v}
    Registers and labels are [[A-Za-z_][A-Za-z0-9_']*]; VAS names
    likewise. [alloca], [global], [malloc] take no operands. *)

val parse : string -> (Ir.program, string) result
(** Parse a whole program; the error string carries a line number. *)

val parse_file_contents : string -> (Ir.program, string) result
(** Alias of {!parse} (reads the string as file contents). *)
