(** The check-inserting transformation (§4.3).

    Inserts [Check_deref] before loads/stores whose target pointer
    cannot be proven to live in the current VAS, and [Check_store]
    before stores that may write a pointer into a foreign region. Safe
    sites are left untouched — the analysis exists precisely to elide
    the trivial tag-every-pointer solution's checks. *)

type report = {
  checks_inserted : int;
  memory_ops : int;
  elided : int;  (** memory_ops - sites needing checks *)
}

val instrument : Ir.program -> Ir.program * report
(** Returns the instrumented program (the input is not mutated). *)

val optimize : Ir.program -> Ir.program * int
(** Remove provably redundant checks (the "more involved analysis"
    §4.4 leaves to future work): within a basic block, a check of the
    same pointer is redundant after an identical earlier check as long
    as no [switch] or [call] (which may switch) intervenes — in SSA the
    pointer's validity set is fixed, so only the current VAS can
    change. A [check_store p q] also subsumes a later [check_deref p].
    Returns the slimmed program and how many checks were removed. *)

val instrument_optimized : Ir.program -> Ir.program * report
(** {!instrument} followed by {!optimize}; the report counts the checks
    that remain. *)
