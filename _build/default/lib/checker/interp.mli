(** Dynamic semantics for the safety IR.

    The interpreter executes programs against tagged memory: every
    pointer carries the space it belongs to ([Common] or a named VAS),
    mirroring the runtime tagging §4.3 describes (unused pointer bits /
    shadow memory). It distinguishes three outcomes:

    - [Finished]: the program ran to completion;
    - [Trapped]: an inserted [Check_deref]/[Check_store] caught an
      unsafe operation *before* it executed (the desired behavior of
      instrumented programs);
    - [Faulted]: a raw load/store actually violated the §3.3 rules —
      which instrumented programs must never do. The cross-validation
      property in the test suite is exactly
      "instrument p => running p never Faults";
    - [Type_fault]: a plain memory-safety error (dereferencing an
      integer, e.g. a wild pointer loaded from zeroed memory). The
      paper's analysis guards address-space safety, not type safety, so
      these are outside its contract and excluded from the properties. *)

type space = Common_region | In_vas of string

type value = Int of int | Ptr of { space : space; addr : int }

type outcome =
  | Finished of value option
  | Trapped of { site : string; what : string }
  | Faulted of { site : string; what : string }
  | Type_fault of { site : string; what : string }
  | Out_of_fuel

val run : ?fuel:int -> Ir.program -> outcome
(** Execute [main] with no arguments, starting in the primary address
    space. [fuel] bounds executed instructions (default 100_000). *)

val run_function :
  ?fuel:int -> Ir.program -> name:string -> args:value list -> outcome
