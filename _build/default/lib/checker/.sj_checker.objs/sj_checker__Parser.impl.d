lib/checker/parser.ml: Ir List Printf String
