lib/checker/parser.mli: Ir
