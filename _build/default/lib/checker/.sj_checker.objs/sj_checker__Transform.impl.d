lib/checker/transform.ml: Analysis Hashtbl Ir List
