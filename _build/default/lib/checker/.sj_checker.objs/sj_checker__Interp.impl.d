lib/checker/interp.ml: Analysis Hashtbl Ir List Option Printf
