lib/checker/ir.ml: Format Hashtbl List Option Printf Result String
