lib/checker/analysis.mli: Format Ir Set
