lib/checker/interp.mli: Ir
