lib/checker/ir.mli: Format
