lib/checker/transform.mli: Ir
