lib/checker/analysis.ml: Format Hashtbl Ir List Option Set
