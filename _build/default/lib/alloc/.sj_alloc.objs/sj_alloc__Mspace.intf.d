lib/alloc/mspace.mli:
