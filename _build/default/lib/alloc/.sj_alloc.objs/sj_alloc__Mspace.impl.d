lib/alloc/mspace.ml: Array Hashtbl List Printf Sj_util
