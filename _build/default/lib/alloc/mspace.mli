(** dlmalloc-style memory space ("mspace").

    The SpaceJMP runtime library builds its [malloc]/[free] on Doug
    Lea's allocator, instantiating one *mspace* per segment so that
    allocation state lives with the segment and is valid in whichever
    address space the segment is attached (§4.1). This module is that
    allocator: a boundary-tag, binned free-list allocator managing a
    contiguous range of virtual addresses.

    Metadata is kept host-side (the simulated memory holds only user
    payloads), so books survive even if a buggy workload scribbles over
    its heap — convenient for failure-injection tests. *)

type t

val create : base:int -> size:int -> t
(** Manage [ [base, base+size) ]. [base] must be 16-byte aligned and
    [size] a positive multiple of 16. *)

val base : t -> int
val size : t -> int

val malloc : t -> int -> int option
(** Allocate at least the requested bytes (16-byte aligned); [None] when
    no free chunk fits. Zero-size requests allocate the minimum chunk. *)

val free : t -> int -> unit
(** Release an allocation by its base address. Raises
    [Invalid_argument] on double-free or foreign pointers. *)

val usable_size : t -> int -> int
(** Actual capacity of an allocation (>= requested). *)

val is_allocated : t -> int -> bool
(** True iff the address is the base of a live allocation. *)

val owns : t -> int -> bool
(** True iff the address falls anywhere inside this mspace's range. *)

val used_bytes : t -> int
val free_bytes : t -> int
val largest_free : t -> int
val allocations : t -> int
(** Number of live allocations. *)

val extend : t -> by:int -> unit
(** Grow the managed range by [by] bytes (multiple of 16): the new
    space becomes a free chunk, coalesced with a trailing free chunk if
    present. Supports growable segments. *)

(** {2 Snapshot / restore}

    Used by copy-on-write segment snapshots (the clone starts with the
    original's allocator state) and by VAS persistence. *)

type chunk_state = { chunk_base : int; chunk_size : int; chunk_free : bool }

val snapshot : t -> chunk_state list
(** The full chunk layout in address order. *)

val of_snapshot : base:int -> size:int -> chunk_state list -> t
(** Rebuild an mspace with exactly this layout. Raises
    [Invalid_argument] if the chunks do not tile [ [base, base+size) ]. *)

val check_invariants : t -> unit
(** Raise [Failure] if internal invariants are violated: chunks must
    tile the range exactly, no two adjacent free chunks, free lists
    consistent with chunk states. Used by the property-test suite. *)
