(** Classic single-threaded Redis server over UNIX domain sockets.

    One process, one core, one private heap. Clients marshal RESP
    commands through a per-client socket; the server's event loop
    drains sockets, parses, executes, and replies. Costs per request:
    two socket hops (syscall + copy each side), RESP parsing, the
    store's memory accesses, and a fixed event-loop overhead. *)

type t
type client

val create :
  Sj_machine.Machine.t -> core:Sj_machine.Machine.Core.core -> heap_size:int -> t
(** Boot a server instance pinned to [core]. *)

val core : t -> Sj_machine.Machine.Core.core
val store : t -> Store.t

val connect : t -> core:Sj_machine.Machine.Core.core -> client
(** Open a client connection from the given core. *)

val request : client -> Resp.command -> Resp.reply
(** Synchronous request/response, charging client and server cores. *)

val loop_overhead : int
(** Per-request server event-loop cost (epoll, fd bookkeeping). *)

val client_overhead : int
(** Per-request client-side benchmark overhead. *)
