type entry = {
  key : string;
  entry_va : int; (* the entry header (hash, pointers) in store memory *)
  key_va : int; (* where the key bytes live in store memory *)
  mutable val_va : int;
  mutable val_len : int;
  hash : int;
}

type table = {
  mutable buckets : entry list array;
  mutable used : int;
  mutable buckets_va : int; (* the bucket-pointer array in store memory; 0 until laid out *)
}

type t = {
  mutable mem : Kv_mem.t;
  mutable ht0 : table;
  mutable ht1 : table option; (* present while rehashing *)
  mutable rehash_idx : int;
  mutable rehash_allowed : bool;
  mutable want_resize : bool;
}

let initial_size = 16
let hash_key key = Hashtbl.hash key land max_int

let make_table n = { buckets = Array.make n []; used = 0; buckets_va = 0 }

let create mem =
  {
    mem;
    ht0 = make_table initial_size;
    ht1 = None;
    rehash_idx = 0;
    rehash_allowed = true;
    want_resize = false;
  }

let set_mem t mem = t.mem <- mem
let is_rehashing t = t.ht1 <> None
let set_rehash_allowed t b = t.rehash_allowed <- b
let rehash_pending t = t.want_resize || is_rehashing t
let length t = t.ht0.used + match t.ht1 with Some h -> h.used | None -> 0

(* Lay out a table's bucket array in store memory (lazily: the dict is
   created before any real memory backend is attached). *)
let ensure_layout t tbl =
  if tbl.buckets_va = 0 then tbl.buckets_va <- t.mem.alloc (8 * Array.length tbl.buckets)

(* Touch the bucket head pointer for [hash] in [tbl]: the first hop of
   every dict operation's pointer chase. *)
let touch_bucket t tbl hash =
  if tbl.buckets_va <> 0 then
    t.mem.touch ~va:(tbl.buckets_va + (8 * (hash land (Array.length tbl.buckets - 1))))

(* Move one bucket from ht0 to ht1. *)
let migrate_bucket t =
  match t.ht1 with
  | None -> ()
  | Some ht1 ->
    let n0 = Array.length t.ht0.buckets in
    (* Find the next non-empty bucket. *)
    while t.rehash_idx < n0 && t.ht0.buckets.(t.rehash_idx) = [] do
      t.rehash_idx <- t.rehash_idx + 1
    done;
    if t.rehash_idx >= n0 then begin
      (* Done: ht1 becomes ht0. *)
      t.ht0 <- ht1;
      t.ht1 <- None;
      t.rehash_idx <- 0
    end
    else begin
      let moved = t.ht0.buckets.(t.rehash_idx) in
      t.ht0.buckets.(t.rehash_idx) <- [];
      List.iter
        (fun e ->
          (* Touching the entry models the pointer chase. *)
          t.mem.touch ~va:e.entry_va;
          t.mem.touch ~va:e.key_va;
          let b = e.hash land (Array.length ht1.buckets - 1) in
          ht1.buckets.(b) <- e :: ht1.buckets.(b);
          ht1.used <- ht1.used + 1;
          t.ht0.used <- t.ht0.used - 1)
        moved;
      t.rehash_idx <- t.rehash_idx + 1
    end

let start_rehash t =
  match t.ht1 with
  | Some _ -> ()
  | None ->
    let new_size = Array.length t.ht0.buckets * 2 in
    let tbl = make_table new_size in
    ensure_layout t tbl;
    t.ht1 <- Some tbl;
    t.rehash_idx <- 0;
    t.want_resize <- false

(* Redis performs one step of incremental rehashing on every access. *)
let step t =
  if t.rehash_allowed then begin
    if t.want_resize && not (is_rehashing t) then start_rehash t;
    if is_rehashing t then migrate_bucket t
  end

let force_rehash_step t n =
  if t.want_resize && not (is_rehashing t) then start_rehash t;
  for _ = 1 to n do
    migrate_bucket t
  done

let maybe_schedule_resize t =
  if (not (is_rehashing t)) && (not t.want_resize)
     && t.ht0.used > Array.length t.ht0.buckets
  then t.want_resize <- true

let bucket_of tbl hash = hash land (Array.length tbl.buckets - 1)

let find_entry t key =
  let h = hash_key key in
  let probe tbl =
    touch_bucket t tbl h;
    let rec go = function
      | [] -> None
      | e :: rest ->
        (* Walk the chain: read the entry header (hash check) and, on a
           hash match, the key bytes for the comparison. *)
        t.mem.touch ~va:e.entry_va;
        if e.hash = h then begin
          t.mem.touch ~va:e.key_va;
          if e.key = key then Some e else go rest
        end
        else go rest
    in
    go tbl.buckets.(bucket_of tbl h)
  in
  match probe t.ht0 with
  | Some e -> Some e
  | None -> ( match t.ht1 with Some ht1 -> probe ht1 | None -> None)

let set t ~key value =
  step t;
  match find_entry t key with
  | Some e ->
    (* In-place overwrite: free + alloc + write. *)
    t.mem.free e.val_va;
    let val_va = t.mem.alloc (max 1 (Bytes.length value)) in
    t.mem.write ~va:val_va value;
    e.val_va <- val_va;
    e.val_len <- Bytes.length value
  | None ->
    let h = hash_key key in
    ensure_layout t t.ht0;
    let entry_va = t.mem.alloc 48 in
    let key_va = t.mem.alloc (max 1 (String.length key)) in
    t.mem.write ~va:key_va (Bytes.of_string key);
    let val_va = t.mem.alloc (max 1 (Bytes.length value)) in
    t.mem.write ~va:val_va value;
    t.mem.touch ~va:entry_va;
    let e = { key; entry_va; key_va; val_va; val_len = Bytes.length value; hash = h } in
    let target = match t.ht1 with Some ht1 -> ht1 | None -> t.ht0 in
    ensure_layout t target;
    touch_bucket t target h;
    let b = bucket_of target h in
    target.buckets.(b) <- e :: target.buckets.(b);
    target.used <- target.used + 1;
    maybe_schedule_resize t

let get t ~key =
  step t;
  match find_entry t key with
  | Some e -> Some (t.mem.read ~va:e.val_va ~len:e.val_len)
  | None -> None

let mem t ~key =
  step t;
  find_entry t key <> None

let delete t ~key =
  step t;
  let h = hash_key key in
  let remove tbl =
    let b = bucket_of tbl h in
    let before = List.length tbl.buckets.(b) in
    let removed = ref None in
    tbl.buckets.(b) <-
      List.filter
        (fun e ->
          if e.hash = h && e.key = key then begin
            removed := Some e;
            false
          end
          else true)
        tbl.buckets.(b);
    if List.length tbl.buckets.(b) < before then begin
      tbl.used <- tbl.used - 1;
      (match !removed with
      | Some e ->
        t.mem.free e.entry_va;
        t.mem.free e.key_va;
        t.mem.free e.val_va
      | None -> ());
      true
    end
    else false
  in
  remove t.ht0 || (match t.ht1 with Some ht1 -> remove ht1 | None -> false)

let iter t f =
  let each tbl = Array.iter (List.iter (fun e -> f e.key (t.mem.read ~va:e.val_va ~len:e.val_len))) tbl.buckets in
  each t.ht0;
  match t.ht1 with Some ht1 -> each ht1 | None -> ()

let check_invariants t =
  let count tbl = Array.fold_left (fun acc l -> acc + List.length l) 0 tbl.buckets in
  if count t.ht0 <> t.ht0.used then failwith "Dict: ht0 used-count drift";
  (match t.ht1 with
  | Some ht1 -> if count ht1 <> ht1.used then failwith "Dict: ht1 used-count drift"
  | None -> ());
  (* Every entry is findable in the bucket its hash selects. *)
  let check tbl =
    Array.iteri
      (fun i l ->
        List.iter
          (fun e ->
            if bucket_of tbl e.hash <> i then failwith "Dict: entry in wrong bucket")
          l)
      tbl.buckets
  in
  check t.ht0;
  match t.ht1 with Some ht1 -> check ht1 | None -> ()
