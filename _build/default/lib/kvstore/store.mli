(** The key-value engine shared by classic Redis and RedisJMP: command
    execution over the incremental-rehash dict. *)

type t

val create : Kv_mem.t -> t
val dict : t -> Dict.t

val execute : t -> Resp.command -> Resp.reply
(** Run one command against the store. *)

val size : t -> int

type stats = { mutable gets : int; mutable sets : int; mutable hits : int }

val stats : t -> stats
