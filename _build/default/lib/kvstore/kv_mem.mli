(** Memory backends for the key-value store.

    The store engine is agnostic to where its bytes live. Classic Redis
    keeps them in the server process's private heap; RedisJMP keeps
    them in a shared lockable segment, allocated by the SpaceJMP
    runtime's per-segment mspace (§5.3). Both backends charge the
    simulated memory costs of every access to the acting core. *)

type t = {
  alloc : int -> int;  (** returns a VA; raises on exhaustion *)
  free : int -> unit;
  read : va:int -> len:int -> bytes;
  write : va:int -> bytes -> unit;
  touch : va:int -> unit;  (** charge one access without data movement *)
}

val private_heap :
  Sj_machine.Machine.t ->
  Sj_kernel.Process.t ->
  Sj_machine.Machine.Core.core ->
  size:int ->
  t
(** Map an anonymous region into the process's primary address space
    and serve allocations from an mspace over it (a classic [malloc]
    heap). *)

val segment_heap :
  Sj_core.Api.ctx -> Sj_core.Segment.t -> t
(** The SpaceJMP runtime heap of a segment: allocations via
    [Api.malloc]/[Api.free] against the segment's shared mspace;
    accesses through the context's core. Valid only while the context
    is switched into a VAS containing the segment. *)
