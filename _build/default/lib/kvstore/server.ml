module Machine = Sj_machine.Machine
module Core = Machine.Core
module Dsock = Sj_ipc.Dsock

type t = { machine : Machine.t; core : Core.core; store : Store.t }
type client = { server : t; sock : Dsock.t; ccore : Core.core }

(* Event-loop costs calibrated against Fig. 10a's M1 measurements:
   a lone client sees ~60K GET/s (client and server costs in series);
   a saturated single instance plateaus near ~120K GET/s (server-bound).
   The costs cover epoll wakeup, fd dispatch and timer bookkeeping. *)
let loop_overhead = 19_000
let client_overhead = 17_000

let create machine ~core ~heap_size =
  let proc = Sj_kernel.Process.create ~name:"redis-server" machine in
  Core.set_page_table core
    (Some (Sj_kernel.Vmspace.page_table (Sj_kernel.Process.primary_vmspace proc)));
  let mem = Kv_mem.private_heap machine proc core ~size:heap_size in
  { machine; core; store = Store.create mem }

let core t = t.core
let store t = t.store
let connect t ~core = { server = t; sock = Dsock.create t.machine (); ccore = core }

let request c cmd =
  let t = c.server in
  (* Client: marshal and send. *)
  let payload = Resp.encode_command cmd in
  Core.charge c.ccore (client_overhead + Resp.parse_cycles ~len:(Bytes.length payload));
  Dsock.send c.sock ~from:c.ccore ~dir:`To_server payload;
  (* Server: wake, read, parse, execute, reply. *)
  Core.charge t.core loop_overhead;
  let reply =
    match Dsock.recv c.sock ~at:t.core ~dir:`To_server with
    | None -> Resp.Err "lost request"
    | Some raw -> (
      Core.charge t.core (Resp.parse_cycles ~len:(Bytes.length raw));
      match Resp.decode_command raw with
      | Error e -> Resp.Err e
      | Ok cmd -> Store.execute t.store cmd)
  in
  Dsock.send c.sock ~from:t.core ~dir:`To_client (Resp.encode_reply reply);
  (* Client: receive and decode. *)
  match Dsock.recv c.sock ~at:c.ccore ~dir:`To_client with
  | None -> Resp.Err "lost reply"
  | Some raw -> (
    Core.charge c.ccore (Resp.parse_cycles ~len:(Bytes.length raw));
    match Resp.decode_reply raw with Ok r -> r | Error e -> Resp.Err e)
