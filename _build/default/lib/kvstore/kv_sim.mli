(** Multi-client throughput harness for Figure 10.

    Clients are discrete-event state machines contending for cores, the
    lockable segment's reader/writer lock (RedisJMP) or server instances
    (classic Redis). Per-request *service times* are not constants: each
    simulated request executes the real store code on a simulated core
    (switches, TLB, caches, dict walks) and the measured cycles feed the
    event engine. Throughput therefore reflects both the machine model
    and queueing effects.

    The lock manager is a serialization point: acquiring or releasing
    the kernel reader/writer lock performs a short critical section on
    the lock's cache line, which is what ultimately caps RedisJMP's read
    scalability ("synchronization overhead limits scalability", §5.3). *)

type mode =
  | Redisjmp of { tags : bool }
  | Redis of { instances : int }

type config = {
  platform : Sj_machine.Platform.t;
  clients : int;
  set_fraction : float;  (** 0.0 = pure GET, 1.0 = pure SET *)
  value_size : int;  (** payload bytes (paper: 4) *)
  keyspace : int;  (** number of distinct keys *)
  duration_cycles : int;  (** simulated time window *)
  cores : int;  (** schedulable cores (paper treats M1 as 12) *)
  force_exclusive : bool;
      (** ablation: take the segment lock exclusively even for reads
          (what a plain mutex would do) *)
  mode : mode;
  seed : int;
}

val default_config : config
(** M1, 12 cores, 4-byte values, 1000 keys, 50M-cycle window, pure GET,
    RedisJMP untagged. *)

type result = {
  requests : int;
  gets : int;
  sets : int;
  seconds : float;
  throughput : float;  (** requests per second *)
  lock_wait_cycles : int;  (** total simulated wait on the segment lock *)
  switches : int;  (** VAS switches performed (RedisJMP) *)
  tlb_misses : int;
}

val run : config -> result
