(** Redis-style hash table with incremental rehashing.

    Two bucket tables coexist: while rehashing, each operation migrates
    one bucket from the old table to the new, so resizes never stall a
    single request for long. RedisJMP requires a further twist (§5.3):
    rehashing races with lock-free readers in other address spaces, so
    migration must be *deferred* until the caller holds the exclusive
    segment lock — the [rehash_allowed] switch.

    Keys and values live in store memory ({!Kv_mem.t}); lookups charge
    the accesses a pointer-chasing hash table would perform. *)

type t

val create : Kv_mem.t -> t
(** Initial size 16 buckets. *)

val set_mem : t -> Kv_mem.t -> unit
(** Swap the memory backend. The dict state is conceptually *inside*
    the shared segment; each RedisJMP client accesses it through its
    own core, so the acting client installs its backend (which charges
    its core) before operating. *)

val set : t -> key:string -> bytes -> unit
(** Insert or overwrite. *)

val get : t -> key:string -> bytes option
val mem : t -> key:string -> bool
val delete : t -> key:string -> bool
(** True if the key existed. *)

val length : t -> int
val is_rehashing : t -> bool

val set_rehash_allowed : t -> bool -> unit
(** When false, pending resizes are deferred (RedisJMP read paths). *)

val rehash_pending : t -> bool
(** A resize has been deemed necessary but migration is incomplete. *)

val force_rehash_step : t -> int -> unit
(** Migrate up to N buckets now (called under the exclusive lock). *)

val iter : t -> (string -> bytes -> unit) -> unit
val check_invariants : t -> unit
(** Every key findable, counts consistent; raises [Failure] if not. *)
