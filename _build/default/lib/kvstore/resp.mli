(** Minimal RESP (REdis Serialization Protocol) codec.

    Classic clients marshal commands into RESP arrays of bulk strings
    and servers answer with simple strings, bulk strings, integers or
    errors — exactly enough of the protocol for the §5.3 workload. *)

type command =
  | Set of string * bytes
  | Get of string
  | Del of string
  | Exists of string
  | Incr of string
  | Append of string * bytes
  | Strlen of string
  | Setnx of string * bytes  (** set only if absent; replies 1/0 *)
  | Getset of string * bytes  (** set, replying with the old value *)
  | Mget of string list
  | Dbsize
  | Flushall
  | Ping

type reply =
  | Ok_simple
  | Bulk of bytes
  | Nil
  | Int of int
  | Err of string
  | Multi of reply list  (** array reply (MGET) *)
  | Pong

val encode_command : command -> bytes
val decode_command : bytes -> (command, string) result
val encode_reply : reply -> bytes
val decode_reply : bytes -> (reply, string) result

val parse_cycles : len:int -> int
(** CPU cost of scanning/parsing a RESP payload of [len] bytes (charged
    by server and client code). *)
