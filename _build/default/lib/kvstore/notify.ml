module Machine = Sj_machine.Machine
module Core = Machine.Core

type subscriber = {
  id : int;
  channel : string;
  sub_core : Core.core;
  queue : bytes Queue.t;
  service : t;
}

and t = {
  machine : Machine.t;
  core : Core.core;
  subs : (string, subscriber list ref) Hashtbl.t;
  mutable next_id : int;
}

(* Service-side bookkeeping per operation. *)
let register_cost = 900
let fanout_cost_per_sub = 350

let hop machine ~len =
  let c = Machine.cost machine in
  let line = (Machine.platform machine).line in
  c.syscall_generic + (((len + line - 1) / line) * c.l1_hit * 2)

let create machine ~core = { machine; core; subs = Hashtbl.create 8; next_id = 0 }

let subscribe t ~channel ~core =
  Core.charge core (hop t.machine ~len:(String.length channel));
  Core.charge t.core register_cost;
  t.next_id <- t.next_id + 1;
  let sub = { id = t.next_id; channel; sub_core = core; queue = Queue.create (); service = t } in
  (match Hashtbl.find_opt t.subs channel with
  | Some l -> l := sub :: !l
  | None -> Hashtbl.replace t.subs channel (ref [ sub ]));
  sub

let unsubscribe t sub =
  match Hashtbl.find_opt t.subs sub.channel with
  | Some l -> l := List.filter (fun s -> s.id <> sub.id) !l
  | None -> ()

let publish t ~from ~channel payload =
  Core.charge from (hop t.machine ~len:(Bytes.length payload + String.length channel));
  match Hashtbl.find_opt t.subs channel with
  | None -> 0
  | Some l ->
    let receivers = !l in
    Core.charge t.core (List.length receivers * fanout_cost_per_sub);
    List.iter (fun s -> Queue.push (Bytes.copy payload) s.queue) receivers;
    List.length receivers

let poll sub =
  match Queue.take_opt sub.queue with
  | None -> None
  | Some payload ->
    Core.charge sub.sub_core (hop sub.service.machine ~len:(Bytes.length payload));
    Some payload

let pending sub = Queue.length sub.queue

let channels t =
  Hashtbl.fold (fun k l acc -> if !l <> [] then k :: acc else acc) t.subs []
  |> List.sort compare
