lib/kvstore/server.ml: Bytes Kv_mem Resp Sj_ipc Sj_kernel Sj_machine Store
