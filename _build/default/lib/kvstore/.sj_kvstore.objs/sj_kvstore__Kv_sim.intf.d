lib/kvstore/kv_sim.mli: Sj_machine
