lib/kvstore/resp.ml: Buffer Bytes List Printf Result String
