lib/kvstore/store.ml: Bytes Dict List Resp
