lib/kvstore/kv_mem.mli: Sj_core Sj_kernel Sj_machine
