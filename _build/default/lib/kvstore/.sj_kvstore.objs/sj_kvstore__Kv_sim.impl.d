lib/kvstore/kv_sim.ml: Array Bytes Fun Printf Redisjmp Resp Rng Server Size Sj_core Sj_des Sj_kernel Sj_machine Sj_tlb Sj_util
