lib/kvstore/resp.mli:
