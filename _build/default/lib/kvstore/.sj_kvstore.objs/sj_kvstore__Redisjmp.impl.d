lib/kvstore/redisjmp.ml: Bytes Dict Hashtbl Kv_mem Notify Option Printf Resp Size Sj_alloc Sj_core Sj_kernel Sj_machine Sj_mem Sj_paging Sj_util Store
