lib/kvstore/kv_mem.ml: Sj_alloc Sj_core Sj_kernel Sj_machine Sj_mem Sj_paging
