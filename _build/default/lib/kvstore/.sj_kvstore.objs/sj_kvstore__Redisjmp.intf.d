lib/kvstore/redisjmp.mli: Notify Resp Sj_core Store
