lib/kvstore/notify.mli: Sj_machine
