lib/kvstore/dict.mli: Kv_mem
