lib/kvstore/notify.ml: Bytes Hashtbl List Queue Sj_machine String
