lib/kvstore/dict.ml: Array Bytes Hashtbl Kv_mem List String
