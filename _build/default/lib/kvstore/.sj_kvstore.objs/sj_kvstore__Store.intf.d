lib/kvstore/store.mli: Dict Kv_mem Resp
