lib/kvstore/server.mli: Resp Sj_machine Store
