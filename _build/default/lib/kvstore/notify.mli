(** Dedicated notification service.

    §5.3 notes that publish–subscribe "could be implemented in a
    dedicated notification service" — RedisJMP deliberately has no
    server process to deliver pushes from, so notification fan-out
    moves to a small standalone service. Publishers send one message to
    the service (socket hop); the service enqueues per subscriber;
    subscribers poll their queues (socket hop each). Channel state
    lives host-side in the service, as kernel/service state would. *)

type t
(** The service instance (conceptually its own process, pinned to a
    core whose cycles absorb the fan-out work). *)

type subscriber

val create : Sj_machine.Machine.t -> core:Sj_machine.Machine.Core.core -> t
val subscribe : t -> channel:string -> core:Sj_machine.Machine.Core.core -> subscriber
(** Register interest; [core] is charged for the registration RPC. *)

val unsubscribe : t -> subscriber -> unit

val publish : t -> from:Sj_machine.Machine.Core.core -> channel:string -> bytes -> int
(** Deliver to every current subscriber of [channel]; returns the
    receiver count. The publisher pays one send; the service core pays
    the per-subscriber fan-out. *)

val poll : subscriber -> bytes option
(** Dequeue the subscriber's next pending message ([None] when idle),
    charging its receive cost. Messages from one publisher arrive in
    publication order. *)

val pending : subscriber -> int
val channels : t -> string list
