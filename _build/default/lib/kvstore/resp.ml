type command =
  | Set of string * bytes
  | Get of string
  | Del of string
  | Exists of string
  | Incr of string
  | Append of string * bytes
  | Strlen of string
  | Setnx of string * bytes
  | Getset of string * bytes
  | Mget of string list
  | Dbsize
  | Flushall
  | Ping

type reply = Ok_simple | Bulk of bytes | Nil | Int of int | Err of string | Multi of reply list | Pong

let bulk buf s =
  Buffer.add_string buf (Printf.sprintf "$%d\r\n" (String.length s));
  Buffer.add_string buf s;
  Buffer.add_string buf "\r\n"

let array_of_strings parts =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "*%d\r\n" (List.length parts));
  List.iter (bulk buf) parts;
  Buffer.to_bytes buf

let encode_command = function
  | Set (k, v) -> array_of_strings [ "SET"; k; Bytes.to_string v ]
  | Get k -> array_of_strings [ "GET"; k ]
  | Del k -> array_of_strings [ "DEL"; k ]
  | Exists k -> array_of_strings [ "EXISTS"; k ]
  | Incr k -> array_of_strings [ "INCR"; k ]
  | Append (k, v) -> array_of_strings [ "APPEND"; k; Bytes.to_string v ]
  | Strlen k -> array_of_strings [ "STRLEN"; k ]
  | Setnx (k, v) -> array_of_strings [ "SETNX"; k; Bytes.to_string v ]
  | Getset (k, v) -> array_of_strings [ "GETSET"; k; Bytes.to_string v ]
  | Mget ks -> array_of_strings ("MGET" :: ks)
  | Dbsize -> array_of_strings [ "DBSIZE" ]
  | Flushall -> array_of_strings [ "FLUSHALL" ]
  | Ping -> array_of_strings [ "PING" ]

(* --- decoding --- *)

let find_crlf b pos =
  let n = Bytes.length b in
  let rec go i =
    if i + 1 >= n then None
    else if Bytes.get b i = '\r' && Bytes.get b (i + 1) = '\n' then Some i
    else go (i + 1)
  in
  go pos

let parse_int_line b pos =
  match find_crlf b pos with
  | None -> Error "truncated integer line"
  | Some stop -> (
    let s = Bytes.sub_string b pos (stop - pos) in
    match int_of_string_opt s with
    | Some n -> Ok (n, stop + 2)
    | None -> Error ("bad integer: " ^ s))

let parse_bulk b pos =
  if pos >= Bytes.length b || Bytes.get b pos <> '$' then Error "expected bulk string"
  else
    Result.bind (parse_int_line b (pos + 1)) (fun (len, pos) ->
        if len < 0 then Ok (None, pos)
        else if pos + len + 2 > Bytes.length b then Error "truncated bulk string"
        else Ok (Some (Bytes.sub_string b pos len), pos + len + 2))

let decode_command b =
  let ( let* ) = Result.bind in
  if Bytes.length b = 0 || Bytes.get b 0 <> '*' then Error "expected array"
  else
    let* count, pos = parse_int_line b 1 in
    let rec parts pos acc = function
      | 0 -> Ok (List.rev acc)
      | n ->
        let* part, pos = parse_bulk b pos in
        (match part with
        | Some s -> parts pos (s :: acc) (n - 1)
        | None -> Error "nil command part")
    in
    let* parts = parts pos [] count in
    match
      match parts with [] -> [] | cmd :: rest -> String.uppercase_ascii cmd :: rest
    with
    | [ "SET"; k; v ] -> Ok (Set (k, Bytes.of_string v))
    | [ "GET"; k ] -> Ok (Get k)
    | [ "DEL"; k ] -> Ok (Del k)
    | [ "EXISTS"; k ] -> Ok (Exists k)
    | [ "INCR"; k ] -> Ok (Incr k)
    | [ "APPEND"; k; v ] -> Ok (Append (k, Bytes.of_string v))
    | [ "STRLEN"; k ] -> Ok (Strlen k)
    | [ "SETNX"; k; v ] -> Ok (Setnx (k, Bytes.of_string v))
    | [ "GETSET"; k; v ] -> Ok (Getset (k, Bytes.of_string v))
    | "MGET" :: (_ :: _ as ks) -> Ok (Mget ks)
    | [ "DBSIZE" ] -> Ok Dbsize
    | [ "FLUSHALL" ] -> Ok Flushall
    | [ "PING" ] -> Ok Ping
    | cmd :: _ -> Error ("unknown command " ^ cmd)
    | [] -> Error "empty command"

let rec encode_reply = function
  | Ok_simple -> Bytes.of_string "+OK\r\n"
  | Pong -> Bytes.of_string "+PONG\r\n"
  | Bulk v ->
    let buf = Buffer.create (Bytes.length v + 16) in
    bulk buf (Bytes.to_string v);
    Buffer.to_bytes buf
  | Nil -> Bytes.of_string "$-1\r\n"
  | Int n -> Bytes.of_string (Printf.sprintf ":%d\r\n" n)
  | Err e -> Bytes.of_string (Printf.sprintf "-%s\r\n" e)
  | Multi rs ->
    let buf = Buffer.create 64 in
    Buffer.add_string buf (Printf.sprintf "*%d\r\n" (List.length rs));
    List.iter (fun r -> Buffer.add_bytes buf (encode_reply r)) rs;
    Buffer.to_bytes buf

let rec decode_reply_at b pos =
  let ( let* ) = Result.bind in
  if pos >= Bytes.length b then Error "empty reply"
  else
    match Bytes.get b pos with
    | '+' -> (
      match find_crlf b (pos + 1) with
      | Some stop -> (
        match Bytes.sub_string b (pos + 1) (stop - pos - 1) with
        | "OK" -> Ok (Ok_simple, stop + 2)
        | "PONG" -> Ok (Pong, stop + 2)
        | s -> Error ("unexpected simple string " ^ s))
      | None -> Error "truncated simple string")
    | ':' ->
      let* n, p = parse_int_line b (pos + 1) in
      Ok (Int n, p)
    | '$' -> (
      let* part, p = parse_bulk b pos in
      match part with
      | Some s -> Ok (Bulk (Bytes.of_string s), p)
      | None -> Ok (Nil, p))
    | '-' -> (
      match find_crlf b (pos + 1) with
      | Some stop -> Ok (Err (Bytes.sub_string b (pos + 1) (stop - pos - 1)), stop + 2)
      | None -> Error "truncated error")
    | '*' ->
      let* count, p = parse_int_line b (pos + 1) in
      let rec go p acc = function
        | 0 -> Ok (Multi (List.rev acc), p)
        | n ->
          let* r, p = decode_reply_at b p in
          go p (r :: acc) (n - 1)
      in
      go p [] count
    | c -> Error (Printf.sprintf "bad reply tag %c" c)

let decode_reply b = Result.map fst (decode_reply_at b 0)

let _legacy_decode_reply b =
  let ( let* ) = Result.bind in
  if Bytes.length b = 0 then Error "empty reply"
  else
    match Bytes.get b 0 with
    | '+' -> (
      match find_crlf b 1 with
      | Some stop -> (
        match Bytes.sub_string b 1 (stop - 1) with
        | "OK" -> Ok Ok_simple
        | "PONG" -> Ok Pong
        | s -> Error ("unexpected simple string " ^ s))
      | None -> Error "truncated simple string")
    | ':' ->
      let* n, _ = parse_int_line b 1 in
      Ok (Int n)
    | '$' -> (
      let* part, _ = parse_bulk b 0 in
      match part with Some s -> Ok (Bulk (Bytes.of_string s)) | None -> Ok Nil)
    | '-' -> (
      match find_crlf b 1 with
      | Some stop -> Ok (Err (Bytes.sub_string b 1 (stop - 1)))
      | None -> Error "truncated error")
    | c -> Error (Printf.sprintf "bad reply tag %c" c)

(* ~2 cycles/byte scanning plus fixed dispatch cost. *)
let parse_cycles ~len = 60 + (2 * len)
