module Machine = Sj_machine.Machine
module Core = Machine.Core
module Mspace = Sj_alloc.Mspace
module Api = Sj_core.Api

type t = {
  alloc : int -> int;
  free : int -> unit;
  read : va:int -> len:int -> bytes;
  write : va:int -> bytes -> unit;
  touch : va:int -> unit;
}

let private_heap machine proc core ~size =
  let base = 0x5000_0000 in
  let obj = Sj_kernel.Vm_object.create ~name:"kv.heap" machine ~size ~charge_to:None in
  Sj_kernel.Vmspace.map_object
    (Sj_kernel.Process.primary_vmspace proc)
    ~charge_to:None ~base ~prot:Sj_paging.Prot.rw obj;
  let heap = Mspace.create ~base ~size in
  {
    alloc =
      (fun n ->
        match Mspace.malloc heap n with
        | Some va -> va
        | None -> raise Sj_mem.Phys_mem.Out_of_memory);
    free = Mspace.free heap;
    read = (fun ~va ~len -> Core.load_bytes core ~va ~len);
    write = (fun ~va data -> Core.store_bytes core ~va data);
    touch = (fun ~va -> Core.touch core ~va ~access:Machine.Read);
  }

let segment_heap ctx seg =
  let core = Api.core ctx in
  {
    alloc = (fun n -> Api.malloc ctx ~seg n);
    free = (fun va -> Api.free ctx va);
    read = (fun ~va ~len -> Core.load_bytes core ~va ~len);
    write = (fun ~va data -> Core.store_bytes core ~va data);
    touch = (fun ~va -> Core.touch core ~va ~access:Machine.Read);
  }
