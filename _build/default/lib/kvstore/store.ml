type stats = { mutable gets : int; mutable sets : int; mutable hits : int }
type t = { dict : Dict.t; stats : stats }

let create mem = { dict = Dict.create mem; stats = { gets = 0; sets = 0; hits = 0 } }
let dict t = t.dict
let size t = Dict.length t.dict
let stats t = t.stats

let execute t (cmd : Resp.command) : Resp.reply =
  match cmd with
  | Set (k, v) ->
    t.stats.sets <- t.stats.sets + 1;
    Dict.set t.dict ~key:k v;
    Ok_simple
  | Get k -> (
    t.stats.gets <- t.stats.gets + 1;
    match Dict.get t.dict ~key:k with
    | Some v ->
      t.stats.hits <- t.stats.hits + 1;
      Bulk v
    | None -> Nil)
  | Del k -> Int (if Dict.delete t.dict ~key:k then 1 else 0)
  | Exists k -> Int (if Dict.mem t.dict ~key:k then 1 else 0)
  | Incr k -> (
    let current =
      match Dict.get t.dict ~key:k with
      | None -> Some 0
      | Some v -> int_of_string_opt (Bytes.to_string v)
    in
    match current with
    | None -> Err "value is not an integer"
    | Some n ->
      let v = Bytes.of_string (string_of_int (n + 1)) in
      Dict.set t.dict ~key:k v;
      Int (n + 1))
  | Append (k, v) ->
    let merged =
      match Dict.get t.dict ~key:k with
      | Some old -> Bytes.cat old v
      | None -> v
    in
    Dict.set t.dict ~key:k merged;
    Int (Bytes.length merged)
  | Strlen k -> (
    match Dict.get t.dict ~key:k with
    | Some v -> Int (Bytes.length v)
    | None -> Int 0)
  | Setnx (k, v) ->
    if Dict.mem t.dict ~key:k then Int 0
    else begin
      t.stats.sets <- t.stats.sets + 1;
      Dict.set t.dict ~key:k v;
      Int 1
    end
  | Getset (k, v) ->
    let old = Dict.get t.dict ~key:k in
    t.stats.sets <- t.stats.sets + 1;
    Dict.set t.dict ~key:k v;
    (match old with Some o -> Bulk o | None -> Nil)
  | Mget ks ->
    t.stats.gets <- t.stats.gets + List.length ks;
    Multi
      (List.map
         (fun k : Resp.reply ->
           match Dict.get t.dict ~key:k with
           | Some v ->
             t.stats.hits <- t.stats.hits + 1;
             Resp.Bulk v
           | None -> Resp.Nil)
         ks)
  | Dbsize -> Int (Dict.length t.dict)
  | Flushall ->
    (* Delete all keys (frees their store memory). *)
    let keys = ref [] in
    Dict.iter t.dict (fun k _ -> keys := k :: !keys);
    List.iter (fun k -> ignore (Dict.delete t.dict ~key:k)) !keys;
    Ok_simple
  | Ping -> Pong
