let block_size = 65536
let min_match = 4
let max_match = 255 + min_match
let hash_bits = 14
let hash_size = 1 lsl hash_bits
let max_chain = 16

(* Token stream grammar (byte-aligned):
     0x00 len varint, <len bytes>          literal run
     0x01 len varint, dist varint          match (len >= 4, dist >= 1)
   Block framing: varint uncompressed_len, varint token_bytes, tokens.
   Stream: varint block_count, blocks. *)

let hash4 b i =
  let v =
    Char.code (Bytes.get b i)
    lor (Char.code (Bytes.get b (i + 1)) lsl 8)
    lor (Char.code (Bytes.get b (i + 2)) lsl 16)
    lor (Char.code (Bytes.get b (i + 3)) lsl 24)
  in
  (v * 2654435761) lsr (31 - hash_bits) land (hash_size - 1)

let compress_block src lo hi out =
  let head = Array.make hash_size (-1) in
  let chain = Array.make (hi - lo) (-1) in
  let tokens = Buffer.create 1024 in
  let lit_start = ref lo in
  let flush_literals upto =
    if upto > !lit_start then begin
      Buffer.add_char tokens '\000';
      Varint.write tokens (upto - !lit_start);
      Buffer.add_subbytes tokens src !lit_start (upto - !lit_start)
    end
  in
  let match_len a b limit =
    let n = ref 0 in
    while !n < limit && Bytes.get src (a + !n) = Bytes.get src (b + !n) do
      incr n
    done;
    !n
  in
  let i = ref lo in
  while !i < hi do
    if hi - !i >= min_match then begin
      let h = hash4 src !i in
      (* Walk the chain for the longest match. *)
      let best_len = ref 0 and best_pos = ref (-1) in
      let cand = ref head.(h) and depth = ref 0 in
      while !cand >= 0 && !depth < max_chain do
        let limit = min (hi - !i) max_match in
        let len = match_len !cand !i limit in
        if len > !best_len then begin
          best_len := len;
          best_pos := !cand
        end;
        cand := chain.(!cand - lo);
        incr depth
      done;
      if !best_len >= min_match then begin
        flush_literals !i;
        Buffer.add_char tokens '\001';
        Varint.write tokens (!best_len - min_match);
        Varint.write tokens (!i - !best_pos);
        (* Insert the positions the match covers into the dictionary. *)
        let last = min (!i + !best_len) (hi - min_match) in
        let j = ref !i in
        while !j < last do
          let hj = hash4 src !j in
          chain.(!j - lo) <- head.(hj);
          head.(hj) <- !j;
          incr j
        done;
        i := !i + !best_len;
        lit_start := !i
      end
      else begin
        chain.(!i - lo) <- head.(h);
        head.(h) <- !i;
        incr i
      end
    end
    else incr i
  done;
  flush_literals hi;
  Varint.write out (hi - lo);
  Varint.write out (Buffer.length tokens);
  Buffer.add_buffer out tokens

let compress src =
  let n = Bytes.length src in
  let blocks = if n = 0 then 0 else (n + block_size - 1) / block_size in
  let out = Buffer.create (n / 2) in
  Varint.write out blocks;
  for b = 0 to blocks - 1 do
    let lo = b * block_size in
    let hi = min n (lo + block_size) in
    compress_block src lo hi out
  done;
  Buffer.to_bytes out

let decompress_block src pos out =
  let ulen, pos = Varint.read src ~pos in
  let tlen, pos = Varint.read src ~pos in
  let block_start = Buffer.length out in
  let stop = pos + tlen in
  let pos = ref pos in
  while !pos < stop do
    match Char.code (Bytes.get src !pos) with
    | 0 ->
      let len, p = Varint.read src ~pos:(!pos + 1) in
      if p + len > Bytes.length src then invalid_arg "Block_lz: truncated literal run";
      Buffer.add_subbytes out src p len;
      pos := p + len
    | 1 ->
      let len, p = Varint.read src ~pos:(!pos + 1) in
      let dist, p = Varint.read src ~pos:p in
      let len = len + min_match in
      let from = Buffer.length out - dist in
      if dist <= 0 || from < block_start then invalid_arg "Block_lz: bad match distance";
      (* Overlapping copies are legal (RLE-style); copy byte-wise. *)
      for k = 0 to len - 1 do
        Buffer.add_char out (Buffer.nth out (from + k))
      done;
      pos := p
    | tag -> invalid_arg (Printf.sprintf "Block_lz: bad token tag %d" tag)
  done;
  if Buffer.length out - block_start <> ulen then
    invalid_arg "Block_lz: block length mismatch";
  stop

let decompress src =
  let blocks, pos = Varint.read src ~pos:0 in
  let out = Buffer.create (blocks * block_size) in
  let pos = ref pos in
  for _ = 1 to blocks do
    pos := decompress_block src !pos out
  done;
  Buffer.to_bytes out

let compressed_blocks src = fst (Varint.read src ~pos:0)

let decompress_blocks src ~first_block ~count =
  let blocks, pos = Varint.read src ~pos:0 in
  if first_block < 0 || count < 0 || first_block + count > blocks then
    invalid_arg "Block_lz.decompress_blocks: block range out of stream";
  (* Skip over earlier blocks by reading their headers only. *)
  let pos = ref pos in
  for _ = 1 to first_block do
    let _ulen, p = Varint.read src ~pos:!pos in
    let tlen, p = Varint.read src ~pos:p in
    pos := p + tlen
  done;
  let out = Buffer.create (count * block_size) in
  for _ = 1 to count do
    pos := decompress_block src !pos out
  done;
  Buffer.to_bytes out

(* BGZF-class throughput on the paper's Xeons (fast deflate levels):
   ~170 MB/s compress, ~320 MB/s decompress at ~2.5 GHz, i.e. ~15 and
   ~8 cycles/byte. *)
let compress_cycles ~uncompressed = uncompressed * 15
let decompress_cycles ~uncompressed = uncompressed * 8
