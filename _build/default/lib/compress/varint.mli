(** LEB128 variable-length integer coding, used by the block compressor
    and the BAM-like binary record format. *)

val write : Buffer.t -> int -> unit
(** Append a non-negative integer. *)

val read : bytes -> pos:int -> int * int
(** [read b ~pos] is [(value, next_pos)]. Raises [Invalid_argument] on
    truncated input. *)

val write_signed : Buffer.t -> int -> unit
(** Zigzag-encoded signed integer. *)

val read_signed : bytes -> pos:int -> int * int
