lib/compress/block_lz.ml: Array Buffer Bytes Char Printf Varint
