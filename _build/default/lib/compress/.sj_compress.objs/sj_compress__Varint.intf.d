lib/compress/varint.mli: Buffer
