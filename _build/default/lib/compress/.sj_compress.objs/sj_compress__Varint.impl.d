lib/compress/varint.ml: Buffer Bytes Char
