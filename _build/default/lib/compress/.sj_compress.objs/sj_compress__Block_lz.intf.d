lib/compress/block_lz.mli:
