let write buf n =
  if n < 0 then invalid_arg "Varint.write: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let read b ~pos =
  let len = Bytes.length b in
  let rec go pos shift acc =
    if pos >= len then invalid_arg "Varint.read: truncated";
    let byte = Char.code (Bytes.get b pos) in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 = 0 then (acc, pos + 1) else go (pos + 1) (shift + 7) acc
  in
  go pos 0 0

let write_signed buf n =
  let zigzag = if n >= 0 then n lsl 1 else (lnot n lsl 1) lor 1 in
  write buf zigzag

let read_signed b ~pos =
  let z, next = read b ~pos in
  let v = if z land 1 = 0 then z lsr 1 else lnot (z lsr 1) in
  (v, next)
