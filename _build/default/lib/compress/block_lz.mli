(** Block-based LZ77 compressor — the stand-in for BGZF/deflate.

    The paper's SAMTools workload reads and writes BGZF-compressed BAM
    files; this container is unavailable offline, so we substitute a
    self-implemented block compressor with the same *architecture*:
    input is cut into independently compressed 64 KiB blocks (enabling
    the same block-granular random access BAM indexes rely on), each
    block holding an LZ77 token stream (greedy hash-chain matcher,
    byte-aligned output). Compression ratios on genomic text are
    comparable in spirit (2-4x), which is what the serialization-cost
    comparison needs. *)

val block_size : int
(** Uncompressed bytes per block (64 KiB). *)

val compress : bytes -> bytes
val decompress : bytes -> bytes
(** Raises [Invalid_argument] on corrupt input. *)

val compressed_blocks : bytes -> int
(** Number of blocks in a compressed stream (header inspection only). *)

val decompress_blocks : bytes -> first_block:int -> count:int -> bytes
(** Decompress only blocks [first_block, first_block+count), skipping
    the rest by header inspection — the block-granular random access
    BAM-style indexes rely on. The result is the concatenation of those
    blocks' contents. *)

(** {2 Cost model}

    CPU cycles to (de)compress, charged by the genomics pipelines:
    dominated by per-byte match-search / copy work. *)

val compress_cycles : uncompressed:int -> int
val decompress_cycles : uncompressed:int -> int
