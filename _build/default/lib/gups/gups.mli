(** GUPS (giga-updates-per-second) — the HPCC RandomAccess derivative
    the paper uses to compare designs for addressing large physical
    memories (§5.2, Figures 8 and 9).

    One large logical table of 64-bit integers is partitioned into
    *windows*. The benchmark loop picks a random window, applies a set
    of random XOR updates inside it, then moves to another window.
    Three designs provide the windows:

    - [Spacejmp]: one VAS per window; changing windows is a
      [vas_switch].
    - [Map]: a single address space; changing windows means
      [munmap]+[mmap] — page-table modification on the critical path.
    - [Mp]: one slave process per window owning that window's memory;
      the master RPCs update batches to slaves (OpenMPI-style) and
      blocks for completion. Slaves busy-wait, so oversubscribing
      cores (more processes than cores) adds scheduling penalties.

    Scale note: the paper uses 1 GiB windows on 512 GiB machines; the
    simulator scales windows to a configurable size (default 64 MiB) so
    host memory stays modest. All three designs scale identically, so
    who-wins and where the cliffs are survive the scaling; see
    EXPERIMENTS.md. A memory-level-parallelism factor models the
    multiple outstanding misses real GUPS kernels sustain (the
    simulator's accesses are otherwise serial). *)

type design = Spacejmp | Map | Mp

type config = {
  platform : Sj_machine.Platform.t;
  windows : int;
  window_size : int;  (** bytes per window *)
  updates_per_set : int;  (** paper plots 16 and 64 *)
  window_visits : int;  (** benchmark length: how many windows are visited *)
  tags : bool;  (** assign TLB tags to the window VASes *)
  mlp : int;  (** memory-level-parallelism divisor for update streams *)
  seed : int;
}

val default_config : config
(** M3, 8 windows of 64 MiB, update set 64, 200 visits, tags off,
    mlp 8, seed 7. *)

type result = {
  design : design;
  updates : int;
  cycles : int;
  mups : float;  (** million updates per second (per process) *)
  switches_per_sec : float;  (** VAS switch rate (Fig. 9, SpaceJMP only) *)
  tlb_misses_per_sec : float;  (** Fig. 9 *)
  seconds : float;
}

val run : config -> design:design -> result
val pp_design : Format.formatter -> design -> unit
val design_name : design -> string
