lib/gups/gups.ml: Array Format Hashtbl Int64 Printf Rng Size Sj_core Sj_kernel Sj_machine Sj_paging Sj_tlb Sj_util
