lib/gups/gups.mli: Format Sj_machine
