open Sj_util
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Pm = Sj_mem.Phys_mem
module Vm_object = Sj_kernel.Vm_object

type file = { mutable obj : Vm_object.t; mutable size : int }
type t = { machine : Machine.t; files : (string, file) Hashtbl.t }
type fd = { fs : t; file : file; mutable pos : int }

let create machine = { machine; files = Hashtbl.create 16 }
let machine t = t.machine

let charge t charge_to cycles =
  ignore t;
  match charge_to with Some core -> Core.charge core cycles | None -> ()

let copy_cost t ~len =
  let c = Machine.cost t.machine in
  let line = (Machine.platform t.machine).line in
  ((len + line - 1) / line) * c.l1_hit * 2

let create_file t ~path =
  (match Hashtbl.find_opt t.files path with
  | Some old -> Vm_object.destroy t.machine old.obj
  | None -> ());
  let file =
    { obj = Vm_object.create ~name:path t.machine ~size:Addr.page_size ~charge_to:None; size = 0 }
  in
  Hashtbl.replace t.files path file;
  { fs = t; file; pos = 0 }

let open_file t ~path =
  match Hashtbl.find_opt t.files path with
  | Some file -> { fs = t; file; pos = 0 }
  | None -> raise Not_found

let exists t ~path = Hashtbl.mem t.files path

let delete t ~path =
  match Hashtbl.find_opt t.files path with
  | Some file ->
    Vm_object.destroy t.machine file.obj;
    Hashtbl.remove t.files path
  | None -> raise Not_found

let list_files t = Hashtbl.fold (fun k _ acc -> k :: acc) t.files [] |> List.sort compare

let file_size t ~path =
  match Hashtbl.find_opt t.files path with Some f -> f.size | None -> raise Not_found

let ensure_capacity fd needed =
  let have = Vm_object.size fd.file.obj in
  if needed > have then begin
    (* Grow geometrically to keep appends O(1) amortized. *)
    let want = max needed (have * 2) in
    let by_pages = (Size.round_up want ~align:Addr.page_size - have) / Addr.page_size in
    Vm_object.grow fd.fs.machine fd.file.obj ~by_pages ~charge_to:None
  end

(* Frame-spanning copy between host bytes and the file's object. *)
let blit_to_file fd ~at src =
  let mem = Machine.mem fd.fs.machine in
  let len = Bytes.length src in
  let pos = ref 0 in
  while !pos < len do
    let off = at + !pos in
    let page = off / Addr.page_size and inpage = off mod Addr.page_size in
    let chunk = min (len - !pos) (Addr.page_size - inpage) in
    let pa = Pm.base_of_frame (Vm_object.frame_at fd.file.obj ~page) + inpage in
    Pm.write_bytes mem ~pa (Bytes.sub src !pos chunk);
    pos := !pos + chunk
  done

let blit_from_file fd ~at ~len =
  let mem = Machine.mem fd.fs.machine in
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let off = at + !pos in
    let page = off / Addr.page_size and inpage = off mod Addr.page_size in
    let chunk = min (len - !pos) (Addr.page_size - inpage) in
    let pa = Pm.base_of_frame (Vm_object.frame_at fd.file.obj ~page) + inpage in
    Bytes.blit (Pm.read_bytes mem ~pa ~len:chunk) 0 out !pos chunk;
    pos := !pos + chunk
  done;
  out

let write fd ~charge_to data =
  let len = Bytes.length data in
  let c = Machine.cost fd.fs.machine in
  charge fd.fs charge_to (c.syscall_generic + copy_cost fd.fs ~len);
  ensure_capacity fd (fd.pos + len);
  blit_to_file fd ~at:fd.pos data;
  fd.pos <- fd.pos + len;
  if fd.pos > fd.file.size then fd.file.size <- fd.pos

let read fd ~charge_to ~len =
  let len = max 0 (min len (fd.file.size - fd.pos)) in
  let c = Machine.cost fd.fs.machine in
  charge fd.fs charge_to (c.syscall_generic + copy_cost fd.fs ~len);
  let out = blit_from_file fd ~at:fd.pos ~len in
  fd.pos <- fd.pos + len;
  out

let read_all fd ~charge_to =
  fd.pos <- 0;
  read fd ~charge_to ~len:fd.file.size

let seek fd pos =
  if pos < 0 then invalid_arg "Memfs.seek: negative";
  fd.pos <- pos

let offset fd = fd.pos

let vm_object t ~path =
  match Hashtbl.find_opt t.files path with Some f -> f.obj | None -> raise Not_found
