lib/memfs/memfs.ml: Addr Bytes Hashtbl List Size Sj_kernel Sj_machine Sj_mem Sj_util
