lib/memfs/memfs.mli: Sj_kernel Sj_machine
