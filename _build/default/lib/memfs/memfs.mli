(** In-memory file system (tmpfs substitute).

    The paper stores SAM/BAM inputs on an in-memory file system to
    factor disk out of the comparison (§5.4); we do the same. Files are
    extents of simulated physical frames (VM objects), so they can be
    accessed through the file API — paying syscall + copy costs — or
    mapped into an address space like any mmap'd file, paying page-table
    construction costs instead. That duality is exactly what Fig. 12
    (mmap vs SpaceJMP) exercises. *)

type t
type fd

val create : Sj_machine.Machine.t -> t
val machine : t -> Sj_machine.Machine.t

val create_file : t -> path:string -> fd
(** Create empty (truncates existing). *)

val open_file : t -> path:string -> fd
(** Raises [Not_found] for missing paths. The offset starts at 0. *)

val exists : t -> path:string -> bool
val delete : t -> path:string -> unit
val list_files : t -> string list
val file_size : t -> path:string -> int

val write : fd -> charge_to:Sj_machine.Machine.Core.core option -> bytes -> unit
(** Append-style write at the current offset; grows the file. Charges a
    syscall plus line-granular copy costs. *)

val read : fd -> charge_to:Sj_machine.Machine.Core.core option -> len:int -> bytes
(** Read up to [len] bytes at the current offset (short at EOF). *)

val read_all : fd -> charge_to:Sj_machine.Machine.Core.core option -> bytes
val seek : fd -> int -> unit
val offset : fd -> int

val vm_object : t -> path:string -> Sj_kernel.Vm_object.t
(** The file's backing object, for mmap-style mapping. The file's
    logical size may be smaller than the object (page rounding). *)
