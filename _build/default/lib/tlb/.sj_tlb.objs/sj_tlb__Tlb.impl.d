lib/tlb/tlb.ml: Addr Array Page_table Prot Size Sj_paging Sj_util
