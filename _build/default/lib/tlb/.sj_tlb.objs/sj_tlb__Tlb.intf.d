lib/tlb/tlb.mli: Sj_paging
