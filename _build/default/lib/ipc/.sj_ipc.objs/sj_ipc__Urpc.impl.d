lib/ipc/urpc.ml: Bytes Queue Sj_machine
