lib/ipc/dsock.mli: Sj_machine
