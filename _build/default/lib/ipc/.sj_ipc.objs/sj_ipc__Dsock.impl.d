lib/ipc/dsock.ml: Bytes Queue Sj_machine
