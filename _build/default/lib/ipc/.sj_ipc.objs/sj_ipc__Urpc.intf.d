lib/ipc/urpc.mli: Sj_machine
