lib/ipc/msg_channel.mli: Sj_machine
