lib/ipc/msg_channel.ml: Bytes Sj_machine Urpc
