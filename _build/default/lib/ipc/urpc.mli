(** FastForward-style user-level RPC over shared memory (§5.1, Fig. 7).

    Client and server busy-wait poll circular buffers of cache-line
    sized slots. The dominant cost is cache-line ping-pong: every line
    the producer writes must migrate to the consumer's cache, at
    intra-socket or cross-socket latency depending on core placement —
    the "URPC L" vs "URPC X" distinction in Figure 7.

    The implementation is a real ring (messages are queued bytes, FIFO,
    bounded); latencies are charged to the participating cores. *)

type t

val create :
  Sj_machine.Machine.t ->
  a:Sj_machine.Machine.Core.core ->
  b:Sj_machine.Machine.Core.core ->
  ?slots:int ->
  unit ->
  t
(** A bidirectional channel between two cores ([?slots] cache-line
    messages per direction, default 64). *)

val cross_socket : t -> bool

val send : t -> from:Sj_machine.Machine.Core.core -> bytes -> unit
(** Enqueue toward the peer, charging the sender's write-side costs.
    Raises [Failure] when the ring is full (callers size slots to the
    experiment). *)

val recv : t -> at:Sj_machine.Machine.Core.core -> bytes
(** Dequeue the next message, charging the receiver's line-transfer
    costs (+ one poll iteration). Raises [Failure] when empty — these
    benchmarks are request/response, never speculative. *)

val roundtrip :
  t ->
  client:Sj_machine.Machine.Core.core ->
  server:Sj_machine.Machine.Core.core ->
  request:bytes ->
  reply_len:int ->
  bytes
(** One RPC exchange: request over, reply back; charges both sides and
    returns the (zero-filled) reply payload. *)
