(** UNIX domain sockets (kernel-mediated byte streams), the transport
    classic Redis clients use (§5.3).

    Every send and receive pays a syscall plus a copy through kernel
    buffers; message boundaries are preserved (SOCK_SEQPACKET-style)
    since the Redis protocol exchange is request/response. *)

type t

val create : Sj_machine.Machine.t -> unit -> t
(** A connected socket pair. *)

val send : t -> from:Sj_machine.Machine.Core.core -> dir:[ `To_server | `To_client ] -> bytes -> unit
val recv : t -> at:Sj_machine.Machine.Core.core -> dir:[ `To_server | `To_client ] -> bytes option
(** [None] when no message is pending. *)

val request_cycles : Sj_machine.Machine.t -> len:int -> int
(** Closed-form cost of one message hop (syscall + 2 copies) — used by
    the discrete-event Redis harness to price client/server work without
    materializing cores. *)
