module Machine = Sj_machine.Machine
module Core = Machine.Core

type t = {
  urpc : Urpc.t;
  master : Core.core;
  slave : Core.core;
  oversubscribed : bool;
  machine : Sj_machine.Machine.t;
}

(* Software costs measured for shared-memory MPI stacks: envelope
   matching + request bookkeeping per message. *)
let sw_overhead = 450
let context_switch = 2600

let create machine ~master ~slave ?(oversubscribed = false) () =
  { urpc = Urpc.create machine ~a:master ~b:slave (); master; slave; oversubscribed; machine }

let send t ~from payload =
  Core.charge from sw_overhead;
  Urpc.send t.urpc ~from payload

let recv t ~at =
  Core.charge at sw_overhead;
  if t.oversubscribed then Core.charge at context_switch;
  Urpc.recv t.urpc ~at

let rpc t ~request ~reply_len =
  send t ~from:t.master request;
  let _ = recv t ~at:t.slave in
  send t ~from:t.slave (Bytes.create reply_len);
  (* The master busy-waits while the slave processes; charge it the
     cycles the slave spent beyond the master's own clock. *)
  let lag = Core.cycles t.slave - Core.cycles t.master in
  if lag > 0 then Core.charge t.master lag;
  recv t ~at:t.master
