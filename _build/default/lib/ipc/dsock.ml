module Machine = Sj_machine.Machine
module Core = Machine.Core

type t = { machine : Machine.t; to_server : bytes Queue.t; to_client : bytes Queue.t }

let create machine () = { machine; to_server = Queue.create (); to_client = Queue.create () }

(* One hop costs a syscall on each side plus a copy user->kernel and
   kernel->user; copies are line-granular. *)
let copy_cost machine ~len =
  let c = Machine.cost machine in
  let line = (Machine.platform machine).line in
  ((len + line - 1) / line) * (c.l1_hit * 2)

let request_cycles machine ~len =
  let c = Machine.cost machine in
  (2 * c.syscall_generic) + (2 * copy_cost machine ~len) + c.cacheline_intra

let queue_of t = function `To_server -> t.to_server | `To_client -> t.to_client

let send t ~from ~dir payload =
  let c = Machine.cost t.machine in
  Core.charge from (c.syscall_generic + copy_cost t.machine ~len:(Bytes.length payload));
  Queue.push (Bytes.copy payload) (queue_of t dir)

let recv t ~at ~dir =
  match Queue.take_opt (queue_of t dir) with
  | None -> None
  | Some payload ->
    let c = Machine.cost t.machine in
    Core.charge at (c.syscall_generic + copy_cost t.machine ~len:(Bytes.length payload));
    Some payload
