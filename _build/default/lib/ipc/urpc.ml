module Machine = Sj_machine.Machine
module Core = Machine.Core

type t = {
  machine : Machine.t;
  core_a : int;
  socket_a : int;
  socket_b : int;
  slots : int;
  line : int;
  q_ab : bytes Queue.t; (* messages travelling a -> b *)
  q_ba : bytes Queue.t;
}

let create machine ~a ~b ?(slots = 64) () =
  {
    machine;
    core_a = Core.id a;
    socket_a = Core.socket a;
    socket_b = Core.socket b;
    slots;
    line = (Machine.platform machine).line;
    q_ab = Queue.create ();
    q_ba = Queue.create ();
  }

let cross_socket t = t.socket_a <> t.socket_b

let lines_of t len =
  (* One header line carries size + sequence; payload fills the rest. *)
  1 + ((len + t.line - 1) / t.line)

let xfer_cost t =
  let c = Machine.cost t.machine in
  if cross_socket t then c.cacheline_cross else c.cacheline_intra

let poll_cost = 20 (* one spin iteration on an already-hot line *)

let dir_of t core = if Core.id core = t.core_a then `AB else `BA

let send t ~from payload =
  let q = match dir_of t from with `AB -> t.q_ab | `BA -> t.q_ba in
  if Queue.length q >= t.slots then failwith "Urpc.send: ring full";
  (* The producer writes lines into its own cache: L1-priced stores. *)
  let c = Machine.cost t.machine in
  Core.charge from (lines_of t (Bytes.length payload) * c.l1_hit);
  Queue.push (Bytes.copy payload) q

let recv t ~at =
  let q = match dir_of t at with `AB -> t.q_ba | `BA -> t.q_ab in
  match Queue.take_opt q with
  | None -> failwith "Urpc.recv: empty ring"
  | Some payload ->
    (* Consumer pulls each line across the interconnect. The first line
       costs a full transfer; later lines stream behind it (producer and
       consumer pipeline on the ring), at roughly 3/8 of the ping-pong
       latency. *)
    let lines = lines_of t (Bytes.length payload) in
    let xfer = xfer_cost t in
    Core.charge at (poll_cost + xfer + ((lines - 1) * (xfer * 3 / 8)));
    payload

let roundtrip t ~client ~server ~request ~reply_len =
  send t ~from:client request;
  let _req = recv t ~at:server in
  let reply = Bytes.create reply_len in
  send t ~from:server reply;
  recv t ~at:client
