(** OpenMPI-style message passing used by the GUPS multi-process
    baseline (§5.2 "MP").

    Compared to raw URPC this adds the software overheads of a
    messaging stack — marshalling, envelope matching, progress-engine
    polling — and models the busy-wait behavior the paper observes:
    slave processes spin on their channels, so when processes outnumber
    cores the spinning steals cycles and throughput collapses (the >36
    cores drop on M3 in Fig. 8). *)

type t

val create :
  Sj_machine.Machine.t ->
  master:Sj_machine.Machine.Core.core ->
  slave:Sj_machine.Machine.Core.core ->
  ?oversubscribed:bool ->
  unit ->
  t
(** [oversubscribed] adds a scheduler context-switch penalty to every
    receive, modelling more runnable busy-waiting processes than cores. *)

val send : t -> from:Sj_machine.Machine.Core.core -> bytes -> unit
val recv : t -> at:Sj_machine.Machine.Core.core -> bytes

val rpc :
  t -> request:bytes -> reply_len:int -> bytes
(** Master sends [request], blocks for the slave's reply: both sides'
    costs are charged in program order (master also pays the blocked
    wait as cycles, since it busy-waits on the completion). *)
