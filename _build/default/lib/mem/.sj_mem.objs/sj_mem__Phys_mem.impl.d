lib/mem/phys_mem.ml: Addr Array Bytes Char Fun Hashtbl Int64 List Printf Sj_util
