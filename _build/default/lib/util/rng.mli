(** Deterministic pseudo-random number generation.

    Every experiment in the benchmark harness is seeded so results are
    reproducible bit-for-bit. The generator is splitmix64 (for seeding)
    feeding xoshiro256**, the same family GUPS-style benchmarks use. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** Create a generator from a 63-bit seed. Equal seeds yield equal
    streams. *)

val split : t -> t
(** Derive an independent generator from [t]'s stream (advances [t]). *)

val copy : t -> t
(** Duplicate the current state; both copies then produce the same
    stream. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in [lo, hi] inclusive; requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool
val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val geometric : t -> p:float -> int
(** Number of failures before first success, [p] in (0,1]. *)

val zipf : t -> n:int -> s:float -> int
(** Zipf-distributed rank in [1, n] with exponent [s] (used by key-value
    store workloads). *)
