lib/util/table.mli:
