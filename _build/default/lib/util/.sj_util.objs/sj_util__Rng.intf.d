lib/util/rng.mli:
