lib/util/addr.ml: Format
