lib/util/size.ml: Float Format
