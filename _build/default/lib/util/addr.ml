let page_shift = 12
let page_size = 1 lsl page_shift
let va_bits = 48
let va_limit = 1 lsl va_bits
let is_page_aligned a = a land (page_size - 1) = 0
let page_of va = va lsr page_shift
let base_of_page pn = pn lsl page_shift
let offset_in_page va = va land (page_size - 1)
let pml4_index va = (va lsr 39) land 0x1ff
let pdpt_index va = (va lsr 30) land 0x1ff
let pd_index va = (va lsr 21) land 0x1ff
let pt_index va = (va lsr 12) land 0x1ff
let pp fmt a = Format.fprintf fmt "0x%012x" a
let to_string a = Format.asprintf "%a" pp a

let range_overlaps ~base1 ~size1 ~base2 ~size2 =
  base1 < base2 + size2 && base2 < base1 + size1

let range_contains ~base ~size a = a >= base && a < base + size
