(** Virtual and physical addresses.

    Addresses are plain non-negative [int]s. Virtual addresses occupy the
    canonical lower 48-bit range of x86-64; physical addresses occupy at
    most 46 bits (Table 1 platforms). Page-index arithmetic for the
    4-level x86-64 radix tree lives here so that paging, TLB, and segment
    code all agree on the split. *)

val page_shift : int
(** Base page shift: 12 (4 KiB pages). *)

val page_size : int
(** 4096. *)

val va_bits : int
(** Virtual-address width: 48 bits, i.e. 256 TiB (paper §2.1). *)

val va_limit : int
(** First invalid virtual address, [2^va_bits]. *)

val is_page_aligned : int -> bool
val page_of : int -> int
(** [page_of va] is the virtual page number, [va lsr page_shift]. *)

val base_of_page : int -> int
val offset_in_page : int -> int

val pml4_index : int -> int
(** Index into the level-4 (root) table: bits 47..39. *)

val pdpt_index : int -> int
(** Index into the level-3 table: bits 38..30. *)

val pd_index : int -> int
(** Index into the level-2 table: bits 29..21. *)

val pt_index : int -> int
(** Index into the level-1 table: bits 20..12. *)

val pp : Format.formatter -> int -> unit
(** Hexadecimal address, e.g. [0x0000c0de0000]. *)

val to_string : int -> string

val range_overlaps : base1:int -> size1:int -> base2:int -> size2:int -> bool
(** True iff [ [base1, base1+size1) ] intersects [ [base2, base2+size2) ]. *)

val range_contains : base:int -> size:int -> int -> bool
(** [range_contains ~base ~size a] is true iff [base <= a < base + size]. *)
