(** Plain-text table rendering for the benchmark harness.

    Every figure/table reproduction prints its series through this module
    so the output of [bench/main.exe] lines up in fixed columns. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : ?title:string -> (string * align) list -> t
(** [create cols] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; must have as many cells as there are columns. *)

val add_rule : t -> unit
(** Append a horizontal rule. *)

val render : t -> string
val print : t -> unit
(** Render to stdout followed by a newline. *)

val cell_float : ?decimals:int -> float -> string
(** Format a float cell; adaptive scientific notation for very small or
    large magnitudes. *)

val cell_int : int -> string
(** Format an int with thousands separators, e.g. ["1,127"]. *)
