type align = Left | Right
type row = Cells of string list | Rule

type t = {
  title : string option;
  cols : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ?title cols = { title; cols; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.cols then
    invalid_arg "Table.add_row: wrong arity";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let headers = List.map fst t.cols in
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i (h, _) ->
        let cell_width = function
          | Cells cells -> String.length (List.nth cells i)
          | Rule -> 0
        in
        List.fold_left (fun w r -> max w (cell_width r)) (String.length h) rows)
      t.cols
  in
  let buf = Buffer.create 256 in
  (match t.title with
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n'
  | None -> ());
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let emit_cells cells =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        let width = List.nth widths i in
        let _, align = List.nth t.cols i in
        Buffer.add_string buf (pad align width cell))
      cells;
    Buffer.add_char buf '\n'
  in
  emit_cells headers;
  let total =
    List.fold_left ( + ) 0 widths + (2 * (List.length widths - 1))
  in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter
    (function
      | Cells cells -> emit_cells cells
      | Rule ->
        Buffer.add_string buf (String.make total '-');
        Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_float ?(decimals = 2) v =
  let a = Float.abs v in
  if a <> 0.0 && (a < 0.001 || a >= 1e7) then Printf.sprintf "%.2e" v
  else Printf.sprintf "%.*f" decimals v

let cell_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
