(** Small statistics helpers for benchmark reporting. *)

val mean : float array -> float
(** Arithmetic mean; 0 for the empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0 for arrays shorter than 2. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [0,100], by linear interpolation on the
    sorted copy. Raises [Invalid_argument] on empty input. *)

val median : float array -> float
val min : float array -> float
val max : float array -> float
val geomean : float array -> float
(** Geometric mean of positive values. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  max : float;
}

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit
