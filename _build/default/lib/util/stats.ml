let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (acc /. float_of_int n)

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = percentile xs 50.0
let min xs = Array.fold_left Float.min infinity xs
let max xs = Array.fold_left Float.max neg_infinity xs

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else
    let acc = Array.fold_left (fun a x -> a +. Float.log x) 0.0 xs in
    Float.exp (acc /. float_of_int n)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  max : float;
}

let summarize xs =
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = min xs;
    p50 = percentile xs 50.0;
    p95 = percentile xs 95.0;
    max = max xs;
  }

let pp_summary fmt s =
  Format.fprintf fmt "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p95=%.2f max=%.2f"
    s.n s.mean s.stddev s.min s.p50 s.p95 s.max
