let kib n = n * 1024
let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024
let tib n = n * 1024 * 1024 * 1024 * 1024

let pp fmt n =
  let f = float_of_int n in
  let units = [ "B"; "KiB"; "MiB"; "GiB"; "TiB"; "PiB" ] in
  let rec pick f = function
    | [ last ] -> (f, last)
    | u :: rest -> if f < 1024.0 then (f, u) else pick (f /. 1024.0) rest
    | [] -> assert false
  in
  let v, u = pick f units in
  if Float.is_integer v then Format.fprintf fmt "%.0f%s" v u
  else Format.fprintf fmt "%.1f%s" v u

let to_string n = Format.asprintf "%a" pp n
let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  assert (n > 0);
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let round_up n ~align =
  assert (is_power_of_two align);
  (n + align - 1) land lnot (align - 1)

let round_down n ~align =
  assert (is_power_of_two align);
  n land lnot (align - 1)
