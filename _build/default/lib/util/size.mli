(** Byte-size constants and formatting.

    All sizes in SpaceJMP are plain [int] byte counts; OCaml's 63-bit
    native integers hold any 48-bit virtual or 46-bit physical quantity
    without boxing. *)

val kib : int -> int
(** [kib n] is [n] kibibytes. *)

val mib : int -> int
(** [mib n] is [n] mebibytes. *)

val gib : int -> int
(** [gib n] is [n] gibibytes. *)

val tib : int -> int
(** [tib n] is [n] tebibytes. *)

val pp : Format.formatter -> int -> unit
(** Human-readable size, e.g. [pp fmt 1536] prints ["1.5KiB"]. *)

val to_string : int -> string
(** [to_string n] is [Format.asprintf "%a" pp n]. *)

val is_power_of_two : int -> bool
(** [is_power_of_two n] is true iff [n] is a positive power of two. *)

val log2 : int -> int
(** [log2 n] for positive [n] is the floor of the base-2 logarithm. *)

val round_up : int -> align:int -> int
(** [round_up n ~align] rounds [n] up to a multiple of [align]
    (a power of two). *)

val round_down : int -> align:int -> int
(** [round_down n ~align] rounds [n] down to a multiple of [align]
    (a power of two). *)
