(* Shared key-value store without a server (the sec 5.3 motif).

   Three client processes share one RedisJMP store: there is no server
   process at all — each client switches into the store's address space
   and runs the store code itself. Readers share the segment lock;
   writers take it exclusively.

   Run with: dune exec examples/shared_kv.exe *)

open Sj_kvstore
module Machine = Sj_machine.Machine
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Api = Sj_core.Api

let () =
  let machine = Machine.create Platform.m1 in
  let sys = Api.boot machine in

  (* First client lazily initializes the store (sec 5.3: "the server
     data is initialized lazily by its first client"). *)
  let p0 = Process.create ~name:"client0" machine in
  let ctx0 = Api.context sys p0 (Machine.core machine 0) in
  let store = Redisjmp.init ctx0 ~name:"cache" ~size:(Sj_util.Size.mib 32) in
  let c0 = Redisjmp.connect store ctx0 () in
  Format.printf "client0 initialized store 'cache' (no server process exists)@.";

  Redisjmp.set c0 "motd" (Bytes.of_string "jump, don't copy");
  ignore (Redisjmp.execute c0 (Resp.Incr "visits"));

  (* Two more clients in their own processes, on other cores. *)
  let clients =
    List.map
      (fun i ->
        let p = Process.create ~name:(Printf.sprintf "client%d" i) machine in
        let ctx = Api.context sys p (Machine.core machine i) in
        Redisjmp.connect (Redisjmp.find ctx ~name:"cache") ctx ())
      [ 1; 2 ]
  in
  List.iteri
    (fun i c ->
      ignore (Redisjmp.execute c (Resp.Incr "visits"));
      match Redisjmp.get c "motd" with
      | Some v -> Format.printf "client%d sees motd = %S@." (i + 1) (Bytes.to_string v)
      | None -> assert false)
    clients;

  (match Redisjmp.execute c0 (Resp.Get "visits") with
  | Resp.Bulk v -> Format.printf "visits = %s (every client counted)@." (Bytes.to_string v)
  | _ -> assert false);

  (* The store's hash table rehashes only under the exclusive lock:
     hammer it with writes and verify integrity. *)
  List.iteri
    (fun i c ->
      for k = 0 to 199 do
        Redisjmp.set c (Printf.sprintf "key-%d-%d" i k) (Bytes.of_string (string_of_int k))
      done)
    (c0 :: clients);
  (match Redisjmp.execute c0 Resp.Dbsize with
  | Resp.Int n -> Format.printf "store holds %d keys after concurrent-style writes@." n
  | _ -> assert false);
  Format.printf "total VAS switches: %d (two per request)@."
    (Sj_core.Registry.switch_count (Api.registry sys))
