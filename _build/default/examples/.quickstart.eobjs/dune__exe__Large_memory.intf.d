examples/large_memory.mli:
