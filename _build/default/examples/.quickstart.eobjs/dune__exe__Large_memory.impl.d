examples/large_memory.ml: Api Array Format Hashtbl Printf Registry Segment Sj_core Sj_kernel Sj_machine Sj_paging Sj_util
