examples/versioned_store.mli:
