examples/hetero_memory.mli:
