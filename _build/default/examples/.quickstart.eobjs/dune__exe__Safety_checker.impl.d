examples/safety_checker.ml: Analysis Format Interp Ir List Printf Sj_checker Transform
