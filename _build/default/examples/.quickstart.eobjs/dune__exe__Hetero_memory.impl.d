examples/hetero_memory.ml: Api Format Segment Sj_core Sj_kernel Sj_machine Sj_mem Sj_paging Sj_util
