examples/quickstart.ml: Api Format Registry Sj_core Sj_kernel Sj_machine Sj_paging Sj_util
