examples/quickstart.mli:
