examples/shared_kv.mli:
