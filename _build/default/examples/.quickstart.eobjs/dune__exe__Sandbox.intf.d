examples/sandbox.mli:
