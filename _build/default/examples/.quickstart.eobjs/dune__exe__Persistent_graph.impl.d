examples/persistent_graph.ml: Api Format Int64 Segment Sj_core Sj_kernel Sj_machine Sj_paging Sj_util
