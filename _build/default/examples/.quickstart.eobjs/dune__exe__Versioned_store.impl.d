examples/versioned_store.ml: Api Format Hashtbl Int64 List Option Printf Segment Sj_core Sj_kernel Sj_machine Sj_mem Sj_paging Sj_util
