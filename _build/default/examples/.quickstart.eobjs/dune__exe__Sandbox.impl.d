examples/sandbox.ml: Api Bytes Errors Format Segment Sj_core Sj_kernel Sj_machine Sj_paging Sj_util
