examples/shared_kv.ml: Bytes Format List Printf Redisjmp Resp Sj_core Sj_kernel Sj_kvstore Sj_machine Sj_util
