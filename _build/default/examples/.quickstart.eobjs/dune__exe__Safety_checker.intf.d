examples/safety_checker.mli:
