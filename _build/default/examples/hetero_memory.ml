(* Heterogeneous memory, tied together with address spaces (sec 7:
   "SpaceJMP can be the basis for tying together a complex heterogeneous
   memory system").

   The machine has a DRAM performance tier and an NVM-class capacity
   tier. A dataset starts in the capacity tier; the application measures
   it, then *promotes* it: clone the segment into DRAM (same virtual
   base!), publish a VAS holding the promoted copy, and switch. No
   pointer in the dataset changes — consumers just jump into the
   fast-tier address space.

   Run with: dune exec examples/hetero_memory.exe *)

open Sj_core
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Pm = Sj_mem.Phys_mem
module Prot = Sj_paging.Prot

let () =
  let platform = Platform.with_capacity_tier Platform.m3 ~size:(Sj_util.Size.gib 4) in
  let machine = Machine.create platform in
  let sys = Api.boot machine in
  let proc = Process.create ~name:"app" machine in
  let ctx = Api.context sys proc (Machine.core machine 0) in

  (* The dataset lands in the big, slow tier first. *)
  let cold_vas = Api.vas_create ctx ~name:"dataset@capacity" ~mode:0o666 in
  let cold =
    Api.seg_alloc_anywhere ~tier:`Capacity ctx ~name:"dataset" ~size:(Sj_util.Size.mib 8)
      ~mode:0o666
  in
  Api.seg_attach ctx cold_vas cold ~prot:Prot.rw;
  let vh_cold = Api.vas_attach ctx cold_vas in
  Api.vas_switch ctx vh_cold;
  let rng = Sj_util.Rng.create ~seed:12 in
  for i = 0 to 999 do
    Api.store64 ctx ~va:(Segment.base cold + (i * 8)) (Sj_util.Rng.bits64 rng)
  done;
  let node seg =
    Pm.node_of_frame (Machine.mem machine)
      (Sj_kernel.Vm_object.frame_at (Segment.vm_object seg) ~page:0)
  in
  Format.printf "dataset resides on node %d (%s tier)@." (node cold)
    (match Pm.node_kind (Machine.mem machine) (node cold) with
    | Pm.Capacity -> "capacity"
    | Pm.Performance -> "performance");

  let scan () =
    let core = Api.core ctx in
    Machine.cool_caches machine;
    let c0 = Core.cycles core in
    for _ = 1 to 5000 do
      ignore (Api.load64 ctx ~va:(Segment.base cold + (Sj_util.Rng.int rng 1000 * 8)))
    done;
    Core.cycles core - c0
  in
  let slow = scan () in
  Format.printf "random scan in the capacity tier: %d cycles@." slow;
  Api.switch_home ctx;

  (* Promote: clone into DRAM (seg_clone allocates from the performance
     tier by default) — the clone keeps the same virtual base, so every
     pointer into the dataset stays valid. *)
  let hot = Api.seg_clone ctx cold ~name:"dataset@dram" in
  Format.printf "promoted to node %d (%s tier); same virtual base %s@." (node hot)
    (match Pm.node_kind (Machine.mem machine) (node hot) with
    | Pm.Capacity -> "capacity"
    | Pm.Performance -> "performance")
    (Sj_util.Addr.to_string (Segment.base hot));
  let hot_vas = Api.vas_create ctx ~name:"dataset@performance" ~mode:0o666 in
  Api.seg_attach ctx hot_vas hot ~prot:Prot.rw;
  let vh_hot = Api.vas_attach ctx hot_vas in
  Api.vas_switch ctx vh_hot;
  let fast = scan () in
  Format.printf "random scan after promotion:    %d cycles (%.1fx faster)@." fast
    (float_of_int slow /. float_of_int fast);
  assert (fast < slow);

  (* Integrity: the promoted copy carries the same bytes. *)
  let sample = Api.load64 ctx ~va:(Segment.base hot + 512) in
  Api.switch_home ctx;
  Api.vas_switch ctx vh_cold;
  assert (Api.load64 ctx ~va:(Segment.base cold + 512) = sample);
  Format.printf "data identical in both tiers; consumers pick a tier by picking a VAS@."
