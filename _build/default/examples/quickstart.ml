(* Quickstart: the paper's Fig. 4 example, end to end.

   Creates a VAS and a segment, attaches, switches in, allocates from
   the segment heap and stores the answer; then demonstrates that the
   address space outlives its creator: a second process finds the VAS
   by name and reads the value back at the same virtual address.

   Run with: dune exec examples/quickstart.exe *)

open Sj_core
module Machine = Sj_machine.Machine
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Prot = Sj_paging.Prot

let () =
  (* Boot a simulated M2 with the DragonFly-style backend. *)
  let machine = Machine.create Platform.m2 in
  let sys = Api.boot machine in
  Format.printf "booted: %a@." Platform.pp Platform.m2;

  (* --- the paper's Fig. 4, almost verbatim ---------------------- *)
  let proc = Process.create ~name:"fig4" machine in
  let ctx = Api.context sys proc (Machine.core machine 0) in

  (* vid = vas_create("v0", 660); *)
  let vid = Api.vas_create ctx ~name:"v0" ~mode:0o660 in
  (* sid = seg_alloc("s0", va, 1<<25, 660);  (32 MiB here) *)
  let sid = Api.seg_alloc_anywhere ctx ~name:"s0" ~size:(Sj_util.Size.mib 32) ~mode:0o660 in
  (* seg_attach(vid, sid); *)
  Api.seg_attach ctx vid sid ~prot:Prot.rw;
  (* vid = vas_find("v0"); vh = vas_attach(vid); vas_switch(vh); *)
  let vid = Api.vas_find ctx ~name:"v0" in
  let vh = Api.vas_attach ctx vid in
  Api.vas_switch ctx vh;
  (* t = malloc(...); *t = 42; *)
  let t = Api.malloc ctx 8 in
  Api.store64 ctx ~va:t 42L;
  Format.printf "process %d stored 42 at %s inside VAS 'v0'@." (Process.pid proc)
    (Sj_util.Addr.to_string t);
  Api.switch_home ctx;
  Process.exit proc;
  Format.printf "creator exited; the VAS lives on@.";

  (* --- a different process, later ------------------------------- *)
  let reader = Process.create ~name:"reader" machine in
  let ctx2 = Api.context sys reader (Machine.core machine 1) in
  let vh2 = Api.vas_attach ctx2 (Api.vas_find ctx2 ~name:"v0") in
  Api.vas_switch ctx2 vh2;
  let v = Api.load64 ctx2 ~va:t in
  Format.printf "process %d read back %Ld from the same address@." (Process.pid reader) v;
  assert (v = 42L);
  Format.printf "switches so far: %d@." (Registry.switch_count (Api.registry sys))
