(* Addressing more memory than one address space can map (sec 5.2).

   A single process works over many windows of a large logical table by
   keeping one VAS per window and jumping between them — no remapping on
   the critical path, no helper processes. This is the GUPS pattern in
   miniature, with a correctness check (we verify the updates landed).

   Run with: dune exec examples/large_memory.exe *)

open Sj_core
module Machine = Sj_machine.Machine
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Core = Machine.Core
module Prot = Sj_paging.Prot

let windows = 8
let window_size = Sj_util.Size.mib 8

let () =
  let machine = Machine.create Platform.m3 in
  let sys = Api.boot machine in
  let proc = Process.create ~name:"bigmem" machine in
  let ctx = Api.context sys proc (Machine.core machine 0) in

  (* One VAS per window; cached translations make attach cheap. *)
  let handles =
    Array.init windows (fun w ->
        let vas = Api.vas_create ctx ~name:(Printf.sprintf "win%d" w) ~mode:0o600 in
        Api.vas_ctl ctx (`Request_tag vas);
        let seg =
          Api.seg_alloc_anywhere ctx ~name:(Printf.sprintf "table%d" w) ~size:window_size
            ~mode:0o600
        in
        Api.seg_ctl ctx (`Cache_translations seg);
        Api.seg_attach ctx vas seg ~prot:Prot.rw;
        (Api.vas_attach ctx vas, Segment.base seg))
  in
  Format.printf "one process, %d x %s of table across %d address spaces@." windows
    (Sj_util.Size.to_string window_size) windows;

  (* Scatter writes across all windows, then verify with a second pass. *)
  let rng = Sj_util.Rng.create ~seed:2026 in
  let expected = Hashtbl.create 64 in
  let core = Api.core ctx in
  let t0 = Core.cycles core in
  for _ = 1 to 2000 do
    let w = Sj_util.Rng.int rng windows in
    let vh, base = handles.(w) in
    Api.vas_switch ctx vh;
    let slot = Sj_util.Rng.int rng (window_size / 8) in
    let va = base + (slot * 8) in
    let v = Sj_util.Rng.bits64 rng in
    Api.store64 ctx ~va v;
    Hashtbl.replace expected (w, slot) v
  done;
  let cycles = Core.cycles core - t0 in
  Format.printf "2000 scattered updates in %d simulated cycles (%.2f us)@." cycles
    (Sj_machine.Cost_model.cycles_to_us (Machine.cost machine) cycles);

  let ok = ref 0 in
  Hashtbl.iter
    (fun (w, slot) v ->
      let vh, base = handles.(w) in
      Api.vas_switch ctx vh;
      if Api.load64 ctx ~va:(base + (slot * 8)) = v then incr ok)
    expected;
  Format.printf "verified %d/%d surviving values across windows@." !ok
    (Hashtbl.length expected);
  assert (!ok = Hashtbl.length expected);
  Format.printf "VAS switches: %d, TLB misses on core 0: %d@."
    (Registry.switch_count (Api.registry sys))
    (Core.tlb_misses core)
