(* Versioning a dataset with copy-on-write snapshots (sec 7:
   "copy-on-write, snapshotting, and versioning").

   A writer keeps mutating a table inside a VAS, taking an O(PTE)
   snapshot after each batch. Every snapshot is a frozen, mountable
   version sharing untouched pages with the head — writes split pages
   on demand via the page-fault handler.

   Run with: dune exec examples/versioned_store.exe *)

open Sj_core
module Machine = Sj_machine.Machine
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Pm = Sj_mem.Phys_mem
module Prot = Sj_paging.Prot

let slots = 1024

let () =
  let machine = Machine.create Platform.m2 in
  let sys = Api.boot machine in
  let proc = Process.create ~name:"writer" machine in
  let ctx = Api.context sys proc (Machine.core machine 0) in

  let vas = Api.vas_create ctx ~name:"head" ~mode:0o666 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"table" ~size:(Sj_util.Size.mib 8) ~mode:0o666 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  let base = Segment.base seg in

  let rng = Sj_util.Rng.create ~seed:1 in
  let mutate generation =
    Api.vas_switch ctx vh;
    (* Touch ~32 random slots per batch. *)
    for _ = 1 to 32 do
      let slot = Sj_util.Rng.int rng slots in
      Api.store64 ctx ~va:(base + (slot * 8)) (Int64.of_int generation)
    done;
    Api.switch_home ctx
  in

  let versions = ref [] in
  mutate 1;
  for v = 1 to 3 do
    let before = Pm.frames_allocated (Machine.mem machine) in
    let snap = Api.seg_snapshot ctx seg ~name:(Printf.sprintf "table@v%d" v) in
    let after = Pm.frames_allocated (Machine.mem machine) in
    Format.printf "snapshot v%d taken: %d data frames copied (of %d pages)@." v
      (after - before) (Segment.pages seg);
    versions := (v, snap) :: !versions;
    mutate (v + 1)
  done;

  (* Mount each version and count how many slots still hold each
     generation — every version must be frozen at its snapshot point. *)
  let census name s =
    let v = Api.vas_create ctx ~name ~mode:0o666 in
    Api.seg_attach ctx v s ~prot:Prot.r;
    let mvh = Api.vas_attach ctx v in
    Api.vas_switch ctx mvh;
    let counts = Hashtbl.create 8 in
    for slot = 0 to slots - 1 do
      let g = Int64.to_int (Api.load64 ctx ~va:(base + (slot * 8))) in
      Hashtbl.replace counts g (1 + Option.value (Hashtbl.find_opt counts g) ~default:0)
    done;
    Api.switch_home ctx;
    counts
  in
  List.iter
    (fun (v, snap) ->
      let counts = census (Printf.sprintf "mount-v%d" v) snap in
      let max_gen = Hashtbl.fold (fun g _ acc -> max g acc) counts 0 in
      Format.printf "version v%d: newest generation it contains is %d (<= %d as required)@."
        v max_gen v;
      assert (max_gen <= v))
    (List.rev !versions);
  let head = census "mount-head" seg in
  Format.printf "head contains generations up to %d@."
    (Hashtbl.fold (fun g _ acc -> max g acc) head 0);
  Format.printf "frames in use: %d (versions share untouched pages)@."
    (Pm.frames_allocated (Machine.mem machine))
