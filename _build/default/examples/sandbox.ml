(* Sandboxing with address spaces (sec 7: "using different address
   spaces to limit access only to trusted code").

   A host process prepares a VAS exposing exactly one read-only segment
   to an untrusted plugin. The plugin process can read its input, but:
   - writing the input faults (protection),
   - touching the host's private segment faults (not mapped),
   - attaching the private VAS is denied (ACL),
   and everything it computes goes into its own scratch segment.

   Run with: dune exec examples/sandbox.exe *)

open Sj_core
module Machine = Sj_machine.Machine
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Acl = Sj_kernel.Acl
module Prot = Sj_paging.Prot

let () =
  let machine = Machine.create Platform.m2 in
  let sys = Api.boot machine in

  (* Host: private state plus a deliberately exposed input. *)
  let host = Process.create ~name:"host" machine in
  let hctx = Api.context sys host (Machine.core machine 0) in
  let private_vas = Api.vas_create hctx ~name:"host-private" ~mode:0o600 in
  let secret = Api.seg_alloc_anywhere hctx ~name:"secrets" ~size:(Sj_util.Size.mib 1) ~mode:0o600 in
  Api.seg_attach hctx private_vas secret ~prot:Prot.rw;
  let hvh = Api.vas_attach hctx private_vas in
  Api.vas_switch hctx hvh;
  Api.store_bytes hctx ~va:(Segment.base secret) (Bytes.of_string "launch codes");
  Api.switch_home hctx;

  let sandbox_vas = Api.vas_create hctx ~name:"sandbox" ~mode:0o644 in
  let input = Api.seg_alloc_anywhere hctx ~name:"plugin-input" ~size:(Sj_util.Size.mib 1) ~mode:0o644 in
  Api.seg_attach hctx sandbox_vas input ~prot:Prot.r;
  (* Fill the input while we still can (the host owns it). *)
  let fill_vas = Api.vas_create hctx ~name:"host-fill" ~mode:0o600 in
  Api.seg_attach hctx fill_vas input ~prot:Prot.rw;
  let fvh = Api.vas_attach hctx fill_vas in
  Api.vas_switch hctx fvh;
  Api.store_bytes hctx ~va:(Segment.base input) (Bytes.of_string "untrusted input: 6 x 7");
  Api.switch_home hctx;
  print_endline "host prepared: private VAS (0600) + sandbox VAS (0644, read-only input)";

  (* Plugin: unprivileged uid. *)
  let plugin = Process.create ~name:"plugin" ~cred:(Acl.cred ~uid:1001 ~gids:[ 1001 ]) machine in
  let pctx = Api.context sys plugin (Machine.core machine 1) in
  let pvh = Api.vas_attach pctx (Api.vas_find pctx ~name:"sandbox") in
  (* The plugin's own scratch space, attached process-locally. *)
  let scratch = Api.seg_alloc_anywhere pctx ~name:"plugin-scratch" ~size:(Sj_util.Size.mib 1) ~mode:0o600 in
  Api.seg_attach_local pctx pvh scratch ~prot:Prot.rw;
  Api.vas_switch pctx pvh;
  let data = Api.load_bytes pctx ~va:(Segment.base input) ~len:22 in
  Format.printf "plugin read its input: %S@." (Bytes.to_string data);
  let out = Api.malloc pctx ~seg:scratch 16 in
  Api.store64 pctx ~va:out 42L;
  Format.printf "plugin computed 42 into its scratch segment@.";

  (* Escape attempt 1: write the read-only input. *)
  (try
     Api.store64 pctx ~va:(Segment.base input) 0L;
     print_endline "BUG: write to read-only input succeeded"
   with Machine.Protection_fault _ ->
     print_endline "write to the input -> Protection_fault (as it should)");

  (* Escape attempt 2: read the host's secret address. *)
  (try
     ignore (Api.load64 pctx ~va:(Segment.base secret));
     print_endline "BUG: secret readable"
   with Machine.Page_fault _ ->
     print_endline "read of the host's secret -> Page_fault (not mapped here)");

  (* Escape attempt 3: attach the host's private VAS. *)
  (try
     ignore (Api.vas_attach pctx (Api.vas_find pctx ~name:"host-private"));
     print_endline "BUG: private VAS attached"
   with Errors.Permission_denied _ ->
     print_endline "attach of host-private -> Permission_denied (ACL)");

  (* The host can still read the plugin's published result. *)
  Api.switch_home pctx;
  Segment.set_acl scratch (Acl.chmod (Segment.acl scratch) ~mode:0o644);
  let rvas = Api.vas_create hctx ~name:"host-read-result" ~mode:0o600 in
  Api.seg_attach hctx rvas scratch ~prot:Prot.r;
  let rvh = Api.vas_attach hctx rvas in
  Api.vas_switch hctx rvh;
  Format.printf "host collected the plugin's result: %Ld@." (Api.load64 hctx ~va:out)
