(* Pointer-rich data beyond process lifetimes (the sec 5.4 motif).

   A builder process constructs a linked graph — real pointers stored
   in simulated memory — inside a VAS, then exits. An analyst process
   later attaches the same VAS and chases those pointers directly: no
   serialization, no pointer swizzling, because segments have fixed
   virtual addresses.

   Graph layout per node (32 bytes in segment memory):
     +0  value (int64)
     +8  left  child pointer (int64 VA, 0 = none)
     +16 right child pointer

   Run with: dune exec examples/persistent_graph.exe *)

open Sj_core
module Machine = Sj_machine.Machine
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Prot = Sj_paging.Prot

let node_value = 0
let node_left = 8
let node_right = 16

(* Build a binary tree of the given depth; returns the node's VA. *)
let rec build ctx depth counter =
  let node = Api.malloc ctx 32 in
  incr counter;
  Api.store64 ctx ~va:(node + node_value) (Int64.of_int !counter);
  if depth > 0 then begin
    let l = build ctx (depth - 1) counter in
    let r = build ctx (depth - 1) counter in
    Api.store64 ctx ~va:(node + node_left) (Int64.of_int l);
    Api.store64 ctx ~va:(node + node_right) (Int64.of_int r)
  end;
  node

(* Sum the values by chasing the stored pointers. *)
let rec sum ctx node =
  if node = 0 then 0L
  else
    let v = Api.load64 ctx ~va:(node + node_value) in
    let l = Int64.to_int (Api.load64 ctx ~va:(node + node_left)) in
    let r = Int64.to_int (Api.load64 ctx ~va:(node + node_right)) in
    Int64.add v (Int64.add (sum ctx l) (sum ctx r))

let () =
  let machine = Machine.create Platform.m2 in
  let sys = Api.boot machine in

  (* Builder process. *)
  let builder = Process.create ~name:"builder" machine in
  let ctx = Api.context sys builder (Machine.core machine 0) in
  let vas = Api.vas_create ctx ~name:"graph" ~mode:0o666 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"graph.nodes" ~size:(Sj_util.Size.mib 16) ~mode:0o666 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  (* Allocate the region header first: the allocator is deterministic,
     so it lands at the segment base where the analyst will look. *)
  let header = Api.malloc ctx 16 in
  assert (header = Segment.base seg);
  let counter = ref 0 in
  let root = build ctx 9 counter in
  Api.store64 ctx ~va:header (Int64.of_int root);
  Api.switch_home ctx;
  Format.printf "builder made %d nodes rooted at %s, then exited@." !counter
    (Sj_util.Addr.to_string root);
  Process.exit builder;

  (* Analyst process: attach, read the root, chase pointers. *)
  let analyst = Process.create ~name:"analyst" machine in
  let ctx2 = Api.context sys analyst (Machine.core machine 1) in
  let vh2 = Api.vas_attach ctx2 (Api.vas_find ctx2 ~name:"graph") in
  Api.vas_switch ctx2 vh2;
  let seg2 = Api.seg_find ctx2 ~name:"graph.nodes" in
  let root2 = Int64.to_int (Api.load64 ctx2 ~va:(Segment.base seg2)) in
  let total = sum ctx2 root2 in
  let n = !counter in
  let expected = Int64.of_int (n * (n + 1) / 2) in
  Format.printf "analyst summed node values: %Ld (expected %Ld) — pointers survived verbatim@."
    total expected;
  assert (total = expected)
