(* Shared helpers for the benchmark harness. *)
open Sj_util
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Platform = Sj_machine.Platform
module Cost_model = Sj_machine.Cost_model

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n" s) fmt

(* A fresh machine + booted system + one process context on core 0. *)
let fresh_system ?(platform = Platform.m2) ?(backend = Sj_core.Api.Dragonfly) () =
  Sj_kernel.Layout.reset_global_allocator ();
  let machine = Machine.create platform in
  let sys = Sj_core.Api.boot ~backend machine in
  let proc = Sj_kernel.Process.create ~name:"bench" machine in
  let ctx = Sj_core.Api.context sys proc (Machine.core machine 0) in
  (machine, sys, ctx)

let ms_of_cycles platform cycles =
  Cost_model.cycles_to_ms (platform : Platform.t).cost cycles

let pow2_label bytes = Printf.sprintf "2^%d" (Size.log2 bytes)
