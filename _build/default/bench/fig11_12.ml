(* Figures 11 and 12: SAMTools workloads (flagstat, qname sort,
   coordinate sort, index) across storage designs.

   Fig. 11: SAM file vs BAM file vs SpaceJMP, normalized to the slowest.
   Fig. 12: mmap vs SpaceJMP, normalized to mmap, absolute seconds shown.

   Paper shapes: SpaceJMP is a small fraction of the file designs
   (serialization dominates them); SpaceJMP is comparable to mmap,
   winning clearly only on the shortest operation (flagstat), where
   mapping overhead is a visible fraction. *)

open Sj_util
open Bench_common
module P = Sj_genomics.Pipelines
module Record = Sj_genomics.Record
module Api = Sj_core.Api

let reads = 20_000

let dataset () =
  Record.generate ~seed:42 ~references:Record.default_references ~reads ~read_len:100

let seconds platform cycles = ms_of_cycles platform cycles /. 1e3

let run () =
  let platform = Sj_machine.Platform.m1 in
  let records = dataset () in
  section "Figures 11/12: SAMTools designs (M1, synthetic alignments)";
  note "%d records; SAM %s, BAM %s (block-LZ substitute for BGZF)" reads
    (Size.to_string (Bytes.length (Sj_genomics.Sam.encode Record.default_references records)))
    (Size.to_string (Bytes.length (Sj_genomics.Bam.encode Record.default_references records)));

  (* One machine hosting all four designs. *)
  let machine, _sys, ctx = fresh_system ~platform () in
  let fs = Sj_memfs.Memfs.create machine in
  let env = P.make_env machine fs (Machine.core machine 1) in
  P.write_input_file env ~format:`Sam ~path:"in.sam" records;
  P.write_input_file env ~format:`Bam ~path:"in.bam" records;
  let mmap_store = P.prepare_mmap env ~path:"region.dat" records in
  let sj_store = P.prepare_spacejmp ctx ~name:"samtools" records in

  let results =
    List.map
      (fun op ->
        let sam = P.run_file env ~format:`Sam op ~in_path:"in.sam" ~out_path:"out.sam" in
        let bam = P.run_file env ~format:`Bam op ~in_path:"in.bam" ~out_path:"out.bam" in
        let mm = P.run_mmap mmap_store op in
        let sj = P.run_spacejmp sj_store op in
        (op, sam, bam, mm, sj))
      P.all_ops
  in

  section "Figure 11: file designs vs SpaceJMP (time normalized to SAM)";
  note "Paper shape: SpaceJMP a small fraction; SAM slowest; BAM between.";
  let t =
    Table.create
      [
        ("operation", Table.Left);
        ("SAM", Table.Right);
        ("BAM", Table.Right);
        ("SpaceJMP", Table.Right);
      ]
  in
  List.iter
    (fun (op, sam, bam, _, sj) ->
      let norm v = Table.cell_float (float_of_int v /. float_of_int sam) in
      Table.add_row t [ P.op_name op; norm sam; norm bam; norm sj ])
    results;
  Table.print t;

  section "Figure 12: mmap vs SpaceJMP (normalized to mmap; absolute seconds)";
  note "Paper shape: comparable overall; SpaceJMP clearly ahead on flagstat";
  note "(mapping overhead is a visible share of the shortest run).";
  let t =
    Table.create
      [
        ("operation", Table.Left);
        ("mmap", Table.Right);
        ("SpaceJMP", Table.Right);
        ("mmap [s]", Table.Right);
        ("SpaceJMP [s]", Table.Right);
      ]
  in
  List.iter
    (fun (op, _, _, mm, sj) ->
      Table.add_row t
        [
          P.op_name op;
          Table.cell_float (float_of_int mm /. float_of_int mm);
          Table.cell_float (float_of_int sj /. float_of_int mm);
          Table.cell_float ~decimals:4 (seconds platform mm);
          Table.cell_float ~decimals:4 (seconds platform sj);
        ])
    results;
  Table.print t
