(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (sec 5), plus the ablations DESIGN.md calls out and a
   bechamel micro section.

   Usage:
     main.exe                 run everything
     main.exe fig1 fig10 ...  run selected experiments
   Experiments: table1 fig1 table2 fig6 fig7 fig8 fig10 fig11 ablations checker micro
   (fig8 includes fig9; fig11 includes fig12). *)

let table1 () =
  Bench_common.section "Table 1: large-memory platforms (simulated)";
  List.iter
    (fun p -> Format.printf "  %a@." Sj_machine.Platform.pp p)
    [ Sj_machine.Platform.m1; Sj_machine.Platform.m2; Sj_machine.Platform.m3 ]

let experiments =
  [
    ("table1", table1);
    ("fig1", Fig1.run);
    ("table2", Table2.run);
    ("fig6", Fig6.run);
    ("fig7", Fig7.run);
    ("fig8", Fig8_9.run);
    ("fig10", Fig10.run);
    ("fig11", Fig11_12.run);
    ("ablations", Ablations.run);
    ("checker", Checker_eval.run);
    ("micro", Micro.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: [] -> List.map fst experiments
    | _ :: names -> names
    | [] -> []
  in
  print_endline "SpaceJMP reproduction benchmarks (simulated cycles unless noted)";
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown experiment %S; known: %s\n" name
          (String.concat " " (List.map fst experiments));
        exit 1)
    requested
