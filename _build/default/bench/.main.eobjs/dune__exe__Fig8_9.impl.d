bench/fig8_9.ml: Bench_common List Size Sj_gups Sj_util Table
