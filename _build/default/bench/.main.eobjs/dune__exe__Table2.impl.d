bench/table2.ml: Bench_common Core Size Sj_core Sj_kernel Sj_machine Sj_paging Sj_util Table
