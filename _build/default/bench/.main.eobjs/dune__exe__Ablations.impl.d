bench/ablations.ml: Addr Array Bench_common Bytes Core Int64 List Machine Printf Size Sj_compress Sj_core Sj_genomics Sj_gups Sj_kernel Sj_kvstore Sj_machine Sj_mem Sj_paging Sj_util Table
