bench/bench_common.ml: Printf Size Sj_core Sj_kernel Sj_machine Sj_util String
