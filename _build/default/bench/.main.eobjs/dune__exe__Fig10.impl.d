bench/fig10.ml: Bench_common List Sj_kvstore Sj_util Table
