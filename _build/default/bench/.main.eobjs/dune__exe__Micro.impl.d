bench/micro.ml: Analyze Bechamel Bench_common Benchmark Hashtbl Instance List Measure Size Sj_alloc Sj_core Sj_kernel Sj_machine Sj_mem Sj_paging Sj_tlb Sj_util Staged Table Test Time Toolkit
