bench/main.ml: Ablations Array Bench_common Checker_eval Fig1 Fig10 Fig11_12 Fig6 Fig7 Fig8_9 Format List Micro Printf Sj_machine String Sys Table2
