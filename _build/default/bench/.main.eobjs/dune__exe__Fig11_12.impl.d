bench/fig11_12.ml: Bench_common Bytes List Machine Size Sj_core Sj_genomics Sj_machine Sj_memfs Sj_util Table
