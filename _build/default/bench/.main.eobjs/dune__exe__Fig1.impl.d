bench/fig1.ml: Bench_common Core List Machine Printf Size Sj_kernel Sj_machine Sj_paging Sj_util Table
