bench/fig7.ml: Bench_common Bytes Core List Machine Size Sj_core Sj_ipc Sj_kernel Sj_machine Sj_paging Sj_util Table
