bench/main.mli:
