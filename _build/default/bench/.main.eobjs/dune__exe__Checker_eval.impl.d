bench/checker_eval.ml: Bench_common Interp Ir List Printf Rng Sj_checker Sj_util Table Transform
