bench/fig6.ml: Addr Bench_common Core List Machine Rng Size Sj_kernel Sj_machine Sj_paging Sj_util Table
