(* sjctl — command-line driver for the SpaceJMP simulator.

   Subcommands:
     platforms          list the simulated hardware platforms (Table 1)
     gups               run one GUPS design and print its metrics
     demo               run a scripted end-to-end SpaceJMP session
*)

open Cmdliner
module Platform = Sj_machine.Platform

let platforms_cmd =
  let run () =
    List.iter
      (fun p -> Format.printf "%a@." Platform.pp p)
      [ Platform.m1; Platform.m2; Platform.m3 ]
  in
  Cmd.v (Cmd.info "platforms" ~doc:"List simulated hardware platforms (paper Table 1)")
    Term.(const run $ const ())

let design_conv =
  let parse = function
    | "spacejmp" -> Ok Sj_gups.Gups.Spacejmp
    | "map" -> Ok Sj_gups.Gups.Map
    | "mp" -> Ok Sj_gups.Gups.Mp
    | s -> Error (`Msg (Printf.sprintf "unknown design %S (spacejmp|map|mp)" s))
  in
  Arg.conv (parse, fun fmt d -> Sj_gups.Gups.pp_design fmt d)

let gups_cmd =
  let design =
    Arg.(value & opt design_conv Sj_gups.Gups.Spacejmp & info [ "design"; "d" ] ~doc:"Design: spacejmp, map or mp")
  in
  let windows = Arg.(value & opt int 8 & info [ "windows"; "w" ] ~doc:"Number of windows") in
  let updates = Arg.(value & opt int 64 & info [ "updates"; "u" ] ~doc:"Updates per set") in
  let visits = Arg.(value & opt int 200 & info [ "visits" ] ~doc:"Window visits") in
  let window_mib = Arg.(value & opt int 64 & info [ "window-mib" ] ~doc:"Window size in MiB") in
  let tags = Arg.(value & flag & info [ "tags" ] ~doc:"Enable TLB tags (SpaceJMP design)") in
  let run design windows updates visits window_mib tags =
    let cfg =
      {
        Sj_gups.Gups.default_config with
        windows;
        updates_per_set = updates;
        window_visits = visits;
        window_size = Sj_util.Size.mib window_mib;
        tags;
      }
    in
    let r = Sj_gups.Gups.run cfg ~design in
    Format.printf "design=%s windows=%d updates/set=%d@." (Sj_gups.Gups.design_name design)
      windows updates;
    Format.printf "  MUPS            %.2f@." r.mups;
    Format.printf "  cycles          %d@." r.cycles;
    Format.printf "  switches/sec    %.0f@." r.switches_per_sec;
    Format.printf "  TLB misses/sec  %.0f@." r.tlb_misses_per_sec
  in
  Cmd.v (Cmd.info "gups" ~doc:"Run the GUPS benchmark (paper sec 5.2)")
    Term.(const run $ design $ windows $ updates $ visits $ window_mib $ tags)

let demo_cmd =
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log SpaceJMP API events") in
  let counters =
    Arg.(value & flag & info [ "counters" ] ~doc:"Print the per-syscall ABI counters at the end")
  in
  let run verbose counters =
    if verbose then begin
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level ~all:true (Some Logs.Debug)
    end;
    let open Sj_core in
    let module Machine = Sj_machine.Machine in
    let module Process = Sj_kernel.Process in
    let module Prot = Sj_paging.Prot in
    let machine = Machine.create Platform.m2 in
    let sys = Api.boot machine in
    let producer = Process.create ~name:"producer" machine in
    let ctx = Api.context sys producer (Machine.core machine 0) in
    Format.printf "booted %s (DragonFly backend)@." (Platform.m2).name;
    let vas = Api.vas_create ctx ~name:"demo" ~mode:0o666 in
    let seg = Api.seg_alloc_anywhere ctx ~name:"demo-heap" ~size:(Sj_util.Size.mib 8) ~mode:0o666 in
    Api.seg_attach ctx vas seg ~prot:Prot.rw;
    Format.printf "created VAS 'demo' with an 8 MiB segment at 0x%x@." (Segment.base seg);
    let vh = Api.vas_attach ctx vas in
    Api.vas_switch ctx vh;
    let p = Api.malloc ctx 64 in
    Api.store_bytes ctx ~va:p (Bytes.of_string "hello from the producer");
    Api.switch_home ctx;
    Format.printf "producer wrote a string at 0x%x and exited the VAS@." p;
    let consumer = Process.create ~name:"consumer" machine in
    let ctx2 = Api.context sys consumer (Machine.core machine 1) in
    let vh2 = Api.vas_attach ctx2 (Api.vas_find ctx2 ~name:"demo") in
    Api.vas_switch ctx2 vh2;
    let s = Api.load_bytes ctx2 ~va:p ~len:23 in
    Format.printf "consumer read back: %S@." (Bytes.to_string s);
    Format.printf "switches performed: %d@.@." (Registry.switch_count (Api.registry sys));
    print_string (Registry.describe (Api.registry sys));
    if counters then begin
      Format.printf "@.syscall counters:@.";
      print_string (Sj_abi.Sys.describe (Api.syscalls sys))
    end
  in
  Cmd.v (Cmd.info "demo" ~doc:"Scripted end-to-end SpaceJMP session")
    Term.(const run $ verbose $ counters)

let redis_cmd =
  let clients = Arg.(value & opt int 1 & info [ "clients"; "c" ] ~doc:"Number of clients") in
  let sets = Arg.(value & opt float 0.0 & info [ "set-fraction" ] ~doc:"Fraction of SET requests") in
  let mode =
    Arg.(value & opt string "redisjmp" & info [ "mode"; "m" ] ~doc:"redisjmp | redisjmp-tags | redis | redis6x")
  in
  let run clients set_fraction mode =
    let mode =
      match mode with
      | "redisjmp" -> Sj_kvstore.Kv_sim.Redisjmp { tags = false }
      | "redisjmp-tags" -> Sj_kvstore.Kv_sim.Redisjmp { tags = true }
      | "redis" -> Sj_kvstore.Kv_sim.Redis { instances = 1 }
      | "redis6x" -> Sj_kvstore.Kv_sim.Redis { instances = 6 }
      | m -> Sj_abi.Error.fail Invalid ~op:"redis" ("unknown mode " ^ m)
    in
    let cfg = { Sj_kvstore.Kv_sim.default_config with clients; set_fraction; mode } in
    let r = Sj_kvstore.Kv_sim.run cfg in
    Format.printf "clients=%d setf=%.2f requests=%d throughput=%.0f req/s switches=%d tlb_misses=%d lock_wait=%d@."
      clients set_fraction r.requests r.throughput r.switches r.tlb_misses r.lock_wait_cycles
  in
  Cmd.v (Cmd.info "redis" ~doc:"Run the Redis/RedisJMP throughput simulation (sec 5.3)")
    Term.(const run $ clients $ sets $ mode)

let faults_cmd =
  let clients =
    Arg.(value & opt int 4 & info [ "clients"; "c" ] ~doc:"Surviving reader clients")
  in
  let requests =
    Arg.(value & opt int 32 & info [ "requests"; "n" ] ~doc:"Requests per client per phase")
  in
  let attempts =
    Arg.(value & opt int 4 & info [ "attempts" ] ~doc:"switch_retry budget per request")
  in
  let backend =
    Arg.(value & opt string "dragonfly" & info [ "backend"; "b" ] ~doc:"dragonfly | barrelfish")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Injector seed") in
  let run clients requests attempts backend seed =
    let module Kv_avail = Sj_kvstore.Kv_avail in
    let backend =
      match backend with
      | "dragonfly" -> Sj_core.Api.Dragonfly
      | "barrelfish" -> Sj_core.Api.Barrelfish
      | b -> Sj_abi.Error.fail Invalid ~op:"faults" ("unknown backend " ^ b)
    in
    let cfg =
      {
        Kv_avail.default_config with
        clients;
        requests_per_client = requests;
        retry_attempts = attempts;
        backend;
        seed;
      }
    in
    let r = Kv_avail.run cfg in
    let ms c = Sj_machine.Cost_model.cycles_to_ms (cfg.platform : Platform.t).cost c in
    Format.printf "healthy:   %d requests served@." r.served_before;
    Format.printf
      "outage:    lock wedged %d cycles (%.3f ms); %d requests exhausted their retry \
       budget, %d survivor cycles lost@."
      r.outage_cycles (ms r.outage_cycles) r.stalled_requests r.stall_cycles;
    Format.printf "recovery:  crash teardown %d cycles (%.3f ms); %d lock(s) reclaimed, %d crash(es)@."
      r.recovery_cycles (ms r.recovery_cycles) r.lock_reclaims r.crashes;
    Format.printf "recovered: %d requests served@." r.served_after;
    Format.printf "survivors_ok=%b lock_free=%b orphan_served=%b@." r.survivors_ok
      r.lock_free r.orphan_served;
    if not (r.survivors_ok && r.lock_free && r.orphan_served) then exit 1
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Kill a RedisJMP lock holder under fault injection; report availability")
    Term.(const run $ clients $ requests $ attempts $ backend $ seed)

let check_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"IR source file") in
  let no_run = Arg.(value & flag & info [ "no-run" ] ~doc:"Analyze only; do not execute") in
  let run file no_run =
    let ic = open_in file in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    match Sj_checker.Parser.parse src with
    | Error e ->
      Format.printf "parse error: %s@." e;
      exit 1
    | Ok prog ->
      let info = Sj_checker.Analysis.analyze prog in
      let violations = Sj_checker.Analysis.violations info in
      Format.printf "%d unsafe site(s):@." (List.length violations);
      List.iter (fun v -> Format.printf "  %a@." Sj_checker.Analysis.pp_violation v) violations;
      let instrumented, report = Sj_checker.Transform.instrument_optimized prog in
      Format.printf "%d check(s) inserted (%d of %d memory ops proven safe)@."
        report.Sj_checker.Transform.checks_inserted report.Sj_checker.Transform.elided
        report.Sj_checker.Transform.memory_ops;
      if not no_run then begin
        Format.printf "--- instrumented program ---@.%a" Sj_checker.Ir.pp_program instrumented;
        match Sj_checker.Interp.run instrumented with
        | Sj_checker.Interp.Finished (Some (Sj_checker.Interp.Int n)) ->
          Format.printf "execution: finished with %d@." n
        | Sj_checker.Interp.Finished _ -> Format.printf "execution: finished@."
        | Sj_checker.Interp.Trapped { site; what } ->
          Format.printf "execution: TRAPPED at %s (%s)@." site what
        | Sj_checker.Interp.Faulted { site; what } ->
          Format.printf "execution: FAULTED at %s (%s)@." site what
        | Sj_checker.Interp.Type_fault { site; what } ->
          Format.printf "execution: type fault at %s (%s)@." site what
        | Sj_checker.Interp.Out_of_fuel -> Format.printf "execution: out of fuel@."
      end
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Run the sec 4.3 safety analysis on an IR source file")
    Term.(const run $ file $ no_run)

let persist_cmd =
  let image = Arg.(value & opt string "/tmp/spacejmp.img" & info [ "image" ] ~doc:"Image path") in
  let run image_path =
    let module Api = Sj_core.Api in
    let module Segment = Sj_core.Segment in
    let module Machine = Sj_machine.Machine in
    let module Process = Sj_kernel.Process in
    let module Prot = Sj_paging.Prot in
    (* Life before the reboot. *)
    let m1 = Machine.create Platform.m2 in
    let sys1 = Api.boot m1 in
    let p1 = Process.create ~name:"before" m1 in
    let ctx1 = Api.context sys1 p1 (Machine.core m1 0) in
    let vas = Api.vas_create ctx1 ~name:"durable" ~mode:0o666 in
    let seg = Api.seg_alloc_anywhere ctx1 ~name:"durable.data" ~size:(Sj_util.Size.mib 4) ~mode:0o666 in
    Api.seg_attach ctx1 vas seg ~prot:Prot.rw;
    let vh = Api.vas_attach ctx1 vas in
    Api.vas_switch ctx1 vh;
    let p = Api.malloc ctx1 64 in
    Api.store_bytes ctx1 ~va:p (Bytes.of_string "survived the reboot");
    Api.switch_home ctx1;
    let image = Sj_persist.Persist.save sys1 in
    let oc = open_out_bin image_path in
    output_bytes oc image;
    close_out oc;
    Format.printf "saved %s to %s@." (Sj_persist.Persist.image_info image) image_path;
    (* "Reboot": a brand new machine, restore from the file. *)
    let m2 = Machine.create Platform.m2 in
    let sys2 = Api.boot m2 in
    let p2 = Process.create ~name:"after" m2 in
    let ctx2 = Api.context sys2 p2 (Machine.core m2 0) in
    let ic = open_in_bin image_path in
    let image = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sj_persist.Persist.restore sys2 (Bytes.of_string image);
    let vh2 = Api.vas_attach ctx2 (Api.vas_find ctx2 ~name:"durable") in
    Api.vas_switch ctx2 vh2;
    Format.printf "after reboot, address %s reads: %S@." (Sj_util.Addr.to_string p)
      (Bytes.to_string (Api.load_bytes ctx2 ~va:p ~len:19))
  in
  Cmd.v
    (Cmd.info "persist-demo" ~doc:"Save a VAS image, 'reboot' onto a new machine, restore it")
    Term.(const run $ image)

let inspect_cmd =
  let image = Arg.(required & pos 0 (some file) None & info [] ~docv:"IMAGE" ~doc:"Image file") in
  let run path =
    let ic = open_in_bin path in
    let data = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let image = Bytes.of_string data in
    print_endline (Sj_persist.Persist.image_info image);
    print_string (Sj_persist.Persist.describe image)
  in
  Cmd.v (Cmd.info "inspect" ~doc:"List the segments and VASes inside a persistence image")
    Term.(const run $ image)

let samtools_cmd =
  let op =
    Arg.(value & opt string "flagstat"
         & info [ "op" ] ~doc:"flagstat | qname-sort | coord-sort | index | view")
  in
  let region =
    Arg.(value & opt string "chr1:50000-52000"
         & info [ "region" ] ~doc:"For --op view: rname:lo-hi")
  in
  let design =
    Arg.(value & opt string "spacejmp" & info [ "design"; "d" ] ~doc:"sam | bam | mmap | spacejmp")
  in
  let reads = Arg.(value & opt int 20_000 & info [ "reads" ] ~doc:"Synthetic read count") in
  let run op design reads region =
    let module P = Sj_genomics.Pipelines in
    let module Record = Sj_genomics.Record in
    let module Machine = Sj_machine.Machine in
    if op = "view" then begin
      (* Region query through the indexed, compressed stream. *)
      let rname, lo, hi =
        match String.split_on_char ':' region with
        | [ rname; span ] -> (
          match String.split_on_char '-' span with
          | [ lo; hi ] -> (rname, int_of_string lo, int_of_string hi)
          | _ -> Sj_abi.Error.fail Invalid ~op:"samtools" "bad region (rname:lo-hi)")
        | _ -> Sj_abi.Error.fail Invalid ~op:"samtools" "bad region (rname:lo-hi)"
      in
      let records =
        Record.generate ~seed:42 ~references:Record.default_references ~reads ~read_len:100
      in
      let machine = Machine.create Platform.m1 in
      let core = Machine.core machine 0 in
      let v = Sj_genomics.View.build Record.default_references records in
      let touched, total = Sj_genomics.View.blocks_for v ~rname ~lo ~hi in
      let c0 = Machine.Core.cycles core in
      let hits = Sj_genomics.View.query ~charge_to:core v ~rname ~lo ~hi in
      let cycles = Machine.Core.cycles core - c0 in
      Format.printf "view %s:%d-%d over %d records: %d hit(s), %d of %d blocks touched, %d cycles@."
        rname lo hi reads (List.length hits) touched total cycles;
      List.iteri
        (fun i (r : Record.t) ->
          if i < 5 then Format.printf "  %s %s:%d mapq=%d@." r.qname r.rname r.pos r.mapq)
        hits;
      if List.length hits > 5 then Format.printf "  ... (%d more)@." (List.length hits - 5);
      exit 0
    end;
    let op =
      match op with
      | "flagstat" -> P.Flagstat
      | "qname-sort" -> P.Qname_sort
      | "coord-sort" -> P.Coord_sort
      | "index" -> P.Index
      | o -> Sj_abi.Error.fail Invalid ~op:"samtools" ("unknown op " ^ o)
    in
    let platform = Platform.m1 in
    let machine = Machine.create platform in
    let sys = Sj_core.Api.boot machine in
    let proc = Sj_kernel.Process.create ~name:"samtools" machine in
    let ctx = Sj_core.Api.context sys proc (Machine.core machine 0) in
    let fs = Sj_memfs.Memfs.create machine in
    let env = P.make_env machine fs (Machine.core machine 1) in
    let records =
      Record.generate ~seed:42 ~references:Record.default_references ~reads ~read_len:100
    in
    let cycles, flagstat =
      match design with
      | "sam" ->
        P.write_input_file env ~format:`Sam ~path:"in.sam" records;
        let c = P.run_file env ~format:`Sam op ~in_path:"in.sam" ~out_path:"out.sam" in
        (c, P.flagstat_result env)
      | "bam" ->
        P.write_input_file env ~format:`Bam ~path:"in.bam" records;
        let c = P.run_file env ~format:`Bam op ~in_path:"in.bam" ~out_path:"out.bam" in
        (c, P.flagstat_result env)
      | "mmap" ->
        let store = P.prepare_mmap env ~path:"region" records in
        let c = P.run_mmap store op in
        (c, P.flagstat_result env)
      | "spacejmp" ->
        let store = P.prepare_spacejmp ctx ~name:"samtools" records in
        let c = P.run_spacejmp store op in
        (c, P.spacejmp_flagstat store)
      | d -> Sj_abi.Error.fail Invalid ~op:"samtools" ("unknown design " ^ d)
    in
    Format.printf "%s / %s over %d records: %d cycles (%.3f ms on %s)@." design
      (P.op_name op) reads cycles
      (Sj_machine.Cost_model.cycles_to_ms platform.cost cycles)
      platform.name;
    match (op, flagstat) with
    | P.Flagstat, Some f ->
      Format.printf "%d total, %d mapped, %d paired, %d proper, %d dup, %d secondary@."
        f.Sj_genomics.Ops.total f.Sj_genomics.Ops.mapped f.Sj_genomics.Ops.paired
        f.Sj_genomics.Ops.proper_pair f.Sj_genomics.Ops.duplicates
        f.Sj_genomics.Ops.secondary
    | _ -> ()
  in
  Cmd.v (Cmd.info "samtools" ~doc:"Run one SAMTools operation under a storage design (sec 5.4)")
    Term.(const run $ op $ design $ reads $ region)

(* A scripted session that exercises every event family the obs layer
   records: tagged VAS switches, a tag request, segment lock
   acquisitions including a genuine conflict, a snapshot (machine-wide
   TLB shootdown), a resolved COW write fault, and attachment teardown.
   Returns the machine whose recorder holds the trace. *)
let traced_session ~capacity =
  let open Sj_core in
  let module Machine = Sj_machine.Machine in
  let module Process = Sj_kernel.Process in
  let module Prot = Sj_paging.Prot in
  Sj_obs.Recorder.with_tracing ~capacity true (fun () ->
      let machine = Machine.create Platform.m2 in
      let sys = Api.boot machine in
      let producer = Process.create ~name:"producer" machine in
      let ctx = Api.context sys producer (Machine.core machine 0) in
      let vas = Api.vas_create ctx ~name:"traced" ~mode:0o666 in
      let seg =
        Api.seg_alloc_anywhere ctx ~name:"traced-heap" ~size:(Sj_util.Size.mib 8)
          ~mode:0o666
      in
      Api.seg_attach ctx vas seg ~prot:Prot.rw;
      Api.vas_ctl ctx (`Request_tag vas);
      let vh = Api.vas_attach ctx vas in
      Api.vas_switch ctx vh;
      let p = Api.malloc ctx 256 in
      Api.store_bytes ctx ~va:p (Bytes.of_string "traced payload");
      (* Compartments: tag the heap with a key, cross into it (recorded
         pkey switches, zero flushes), then cross into a key that does
         NOT own the heap and touch it — a recorded Key_violation the
         session survives. *)
      let key = Api.pkey_alloc ctx vas in
      Api.pkey_assign ctx vas seg ~key;
      Api.pkey_switch ctx ~key;
      ignore (Api.load_bytes ctx ~va:p ~len:14);
      let stranger = Api.pkey_alloc ctx vas in
      Api.pkey_switch ctx ~key:stranger;
      (try ignore (Api.load_bytes ctx ~va:p ~len:1)
       with Sj_abi.Error.Fault f when f.code = Sj_abi.Error.Key_violation -> ());
      Api.pkey_switch ctx ~key:0;
      (* A second process knocking on the exclusively locked segment:
         its switch fails with Would_block — a recorded lock conflict. *)
      let consumer = Process.create ~name:"consumer" machine in
      let ctx2 = Api.context sys consumer (Machine.core machine 1) in
      let vh2 = Api.vas_attach ctx2 (Api.vas_find ctx2 ~name:"traced") in
      (try Api.vas_switch ctx2 vh2 with Errors.Would_block _ -> ());
      (* Snapshot while mapped: write-protects the original everywhere
         (machine-wide TLB shootdown), so the next store COW-faults. *)
      ignore (Api.seg_snapshot ctx seg ~name:"traced-snap");
      Api.store_bytes ctx ~va:p (Bytes.of_string "traced payload v2");
      Api.switch_home ctx;
      (* The lock is free now; the consumer gets in and reads. *)
      Api.vas_switch ctx2 vh2;
      ignore (Api.load_bytes ctx2 ~va:p ~len:17);
      Api.switch_home ctx2;
      (* Teardown: each detach destroys a vmspace (charged PTE clears). *)
      Api.vas_detach ctx vh;
      Api.vas_detach ctx2 vh2;
      machine)

let session_recorder machine =
  match Sj_obs.Recorder.of_ctx (Sj_machine.Machine.sim_ctx machine) with
  | Some r -> r
  | None ->
    prerr_endline "sjctl: no recorder attached (tracing was off?)";
    exit 2

let capacity_arg =
  Arg.(
    value
    & opt int Sj_obs.Recorder.default_capacity
    & info [ "capacity" ] ~docv:"N"
        ~doc:"Event ring-buffer capacity (oldest events drop beyond this)")

let trace_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Write the trace to $(docv) instead of stdout")
  in
  let text =
    Arg.(
      value & flag
      & info [ "text" ]
          ~doc:"One event per line (seq, cycles, core, name, args) instead of \
                Chrome trace JSON")
  in
  let run out text capacity =
    let machine = traced_session ~capacity in
    let r = session_recorder machine in
    let events = Sj_obs.Recorder.events r in
    let dropped = Sj_obs.Recorder.dropped r in
    if dropped > 0 then
      Printf.eprintf "sjctl trace: ring wrapped, %d oldest event(s) dropped\n"
        dropped;
    let doc =
      if text then Sj_obs.Trace.to_text events
      else Sj_obs.Trace.to_chrome_json events
    in
    match out with
    | None -> print_string doc
    | Some path ->
      let oc = open_out path in
      output_string oc doc;
      close_out oc;
      Format.printf "wrote %d event(s) to %s%s@." (List.length events) path
        (if text then "" else " (load in chrome://tracing or Perfetto)")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a scripted session with tracing on and export the event trace \
          (Chrome trace-event JSON for chrome://tracing / Perfetto)")
    Term.(const run $ out $ text $ capacity_arg)

let stats_cmd =
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON instead of text") in
  let run json capacity =
    let machine = traced_session ~capacity in
    let r = session_recorder machine in
    let m = Sj_obs.Recorder.metrics r in
    print_string
      (if json then Sj_obs.Metrics.to_json m else Sj_obs.Metrics.describe m)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a scripted session with tracing on and print the aggregated \
          metrics (per-syscall cycle histograms, TLB/lock/fault counters)")
    Term.(const run $ json $ capacity_arg)

let bench_cmd =
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Small problem sizes (seconds, not minutes)") in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Write the JSON report (schema spacejmp-bench/4) to $(docv)")
  in
  let jobs =
    Arg.(
      value
      & opt int (Sj_util.Par.default_size ())
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Domain-pool size for the parallel phase (default: host cores)")
  in
  let run quick out jobs =
    if jobs < 1 then begin
      prerr_endline "bench: --jobs must be >= 1";
      exit 2
    end;
    let module Suite = Sj_bench.Suite in
    let module Report = Sj_bench.Report in
    let benches = Suite.suite ~quick in
    let serial_slow = Suite.run_serial ~fast:false benches in
    let serial_fast = Suite.run_serial ~fast:true benches in
    let (par_slow, _), (par_fast, placement, par_wall) =
      Sj_util.Par.with_pool ~size:jobs (fun pool ->
          ( Suite.run_parallel pool ~fast:false benches,
            Suite.run_parallel_placed pool ~fast:true benches ))
    in
    (* Same refusal discipline as bench/harness.exe: no numbers unless
       every strategy simulated the same world. *)
    if
      not
        (List.for_all2 (fun s f -> s.Suite.fp = f.Suite.fp) serial_slow serial_fast
        && Suite.fingerprints_equal serial_slow par_slow
        && Suite.fingerprints_equal serial_fast par_fast)
    then begin
      prerr_endline "bench: fingerprints diverge between execution strategies";
      exit 2
    end;
    List.iter2
      (fun s f ->
        Format.printf "%-12s slow %7.3fs  fast %7.3fs  speedup %5.2fx@." s.Suite.tname
          s.Suite.wall f.Suite.wall
          (s.Suite.wall /. f.Suite.wall))
      serial_slow serial_fast;
    let wall_serial = List.fold_left (fun a t -> a +. t.Suite.wall) 0. serial_fast in
    Format.printf "parallel -j %d: batch %.3fs vs serial %.3fs (%.2fx); fingerprints equal@."
      jobs par_wall wall_serial (wall_serial /. par_wall);
    match out with
    | None -> ()
    | Some path ->
      let report =
        {
          Report.quick;
          jobs;
          cores = Domain.recommended_domain_count ();
          detected_cores = Report.detected_cores ();
          ocaml_version = Sys.ocaml_version;
          benches =
            List.map2
              (fun (b, s) (f, pf) ->
                {
                  Report.name = s.Suite.tname;
                  shards = Array.length b.Suite.shards;
                  placement =
                    (try List.assoc s.Suite.tname placement
                     with Not_found -> [||]);
                  (* Proven above, or we exited 2. *)
                  equal_between_modes = true;
                  equal_serial_parallel = true;
                  wall_slow = s.Suite.wall;
                  wall_fast = f.Suite.wall;
                  wall_parallel = pf.Suite.wall;
                  minor_words = f.Suite.minor_words;
                  major_words = f.Suite.major_words;
                  simulated = f.Suite.fp;
                })
              (List.combine benches serial_slow)
              (List.combine serial_fast par_fast);
          wall_serial;
          wall_parallel = par_wall;
        }
      in
      let oc = open_out path in
      output_string oc (Report.to_json report);
      close_out oc;
      Format.printf "wrote %s@." path
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Run the wall-clock bench suite (fast path + domain parallelism)")
    Term.(const run $ quick $ out $ jobs)

let cluster_cmd =
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"CI problem sizes (seconds, not minutes)")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_cluster.json"
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Write the JSON report (schema spacejmp-bench/4-cluster) to $(docv)")
  in
  let jobs =
    Arg.(
      value
      & opt int (Sj_util.Par.default_size ())
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Fan sweep-grid points across $(docv) domains (wall clock only)")
  in
  let run quick out jobs =
    if jobs < 1 then begin
      prerr_endline "cluster: --jobs must be >= 1";
      exit 2
    end;
    let module Cluster = Sj_cluster.Cluster in
    let module Driver = Sj_cluster.Driver in
    let module Creport = Sj_cluster.Cluster_report in
    let { Driver.report; divergences } =
      Driver.run ~quick ~jobs
        ~progress:(fun s -> Format.printf "-- %s@." s)
        ()
    in
    let row label (p : Creport.point) =
      let c = p.Creport.cfg and r = p.Creport.res in
      Format.printf
        "%-10s K=%-3d batch=%-3d pipe=%-2d %-10s %10.0f rps  p50 %d p99 %d p999 %d@."
        label c.Cluster.shards c.Cluster.batch c.Cluster.pipeline
        (Creport.backend_name c.Cluster.backend)
        r.Cluster.throughput r.Cluster.p50 r.Cluster.p99 r.Cluster.p999
    in
    row "single-op" report.Creport.baseline;
    row "batched" report.Creport.batched;
    Format.printf "speedup %.2fx@."
      (report.Creport.batched.Creport.res.Cluster.throughput
      /. report.Creport.baseline.Creport.res.Cluster.throughput);
    List.iter (row "grid") report.Creport.grid;
    (match report.Creport.fault with
    | Some { Creport.res = { Cluster.outage = Some o; _ }; _ } ->
      Format.printf "fault: crashed %d recovered %d (outage %d cycles)@."
        o.Cluster.crashed_at o.Cluster.recovered_at o.Cluster.outage_cycles
    | _ -> ());
    (* Same refusal discipline as `sjctl bench`: no report unless every
       audit simulated the same world. *)
    (match divergences with
    | [] -> ()
    | ds ->
      Format.eprintf "cluster: determinism audit divergence (%s)@."
        (String.concat ", " ds);
      exit 2);
    let oc = open_out out in
    output_string oc (Creport.to_json report);
    close_out oc;
    (match Creport.check_file out with
    | Ok () -> ()
    | Error es ->
      List.iter (Format.eprintf "cluster: invalid report: %s@.") es;
      exit 2);
    Format.printf "wrote %s@." out
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Run the sharded multi-machine KV cluster bench (batched, pipelined \
          request path; sweep + fault availability + determinism audits)")
    Term.(const run $ quick $ out $ jobs)

let compartments_cmd =
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"CI problem sizes (sub-second)")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_compartments.json"
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Write the JSON report (schema spacejmp-bench/5-compartments) to \
             $(docv)")
  in
  let jobs =
    Arg.(
      value
      & opt int (Sj_util.Par.default_size ())
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Fan sweep-grid points across $(docv) domains (wall clock only)")
  in
  let run quick out jobs =
    if jobs < 1 then begin
      prerr_endline "compartments: --jobs must be >= 1";
      exit 2
    end;
    let module Compart = Sj_compart.Compart in
    let module Driver = Sj_compart.Driver in
    let module Creport = Sj_compart.Compart_report in
    let { Driver.report; divergences; failed_claims } =
      Driver.run ~quick ~jobs
        ~progress:(fun s -> Format.printf "-- %s@." s)
        ()
    in
    let row label (p : Creport.point) =
      let c = p.Creport.cfg and r = p.Creport.res in
      Format.printf
        "%-10s %-11s comps=%-2d loads=%-3d %8.2f cycles/crossing  flushes=%d \
         violations=%d@."
        label
        (Compart.mechanism_name c.Compart.mechanism)
        c.Compart.compartments c.Compart.loads_per_crossing
        r.Compart.per_crossing r.Compart.flushes r.Compart.violations
    in
    List.iter (row "headline") report.Creport.headline;
    List.iter (row "grid") report.Creport.grid;
    (* Same refusal discipline as `sjctl cluster`, with the acceptance
       claims fatal too: no report unless pkey crossings were strictly
       cheapest, flush-free, and the hostile probes were contained. *)
    (match failed_claims with
    | [] -> ()
    | cs ->
      List.iter (Format.eprintf "compartments: claim failed: %s@.") cs;
      exit 2);
    (match divergences with
    | [] -> ()
    | ds ->
      Format.eprintf "compartments: determinism audit divergence (%s)@."
        (String.concat ", " ds);
      exit 2);
    let oc = open_out out in
    output_string oc (Creport.to_json report);
    close_out oc;
    (match Creport.check_file out with
    | Ok () -> ()
    | Error es ->
      List.iter (Format.eprintf "compartments: invalid report: %s@.") es;
      exit 2);
    Format.printf "wrote %s@." out
  in
  Cmd.v
    (Cmd.info "compartments"
       ~doc:
         "Run the compartment-crossing bench (vas_switch vs capability \
          invoke vs protection-key switch; sweep + claims + determinism \
          audits)")
    Term.(const run $ quick $ out $ jobs)

let fork_cmd =
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"CI problem sizes (a few seconds)")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_fork.json"
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Write the JSON report (schema spacejmp-bench/7-fork) to $(docv)")
  in
  let jobs =
    Arg.(
      value
      & opt int (Sj_util.Par.default_size ())
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Fan sweep-grid points across $(docv) domains (wall clock only)")
  in
  let run quick out jobs =
    if jobs < 1 then begin
      prerr_endline "fork: --jobs must be >= 1";
      exit 2
    end;
    let module Kv_fork = Sj_kvstore.Kv_fork in
    let module Driver = Sj_fork.Driver in
    let module Freport = Sj_fork.Fork_report in
    let { Driver.report; divergences; failed_claims } =
      Driver.run ~quick ~jobs
        ~progress:(fun s -> Format.printf "-- %s@." s)
        ()
    in
    let row label (p : Freport.point) =
      let c = p.Freport.cfg and r = p.Freport.res in
      Format.printf
        "%-10s %-13s conns=%-3d sets=%.2f %10.0f rps  p50=%.0f p99=%.0f \
         forks=%d cow_faults=%d share=%d/%d@."
        label
        (Kv_fork.mode_name c.Kv_fork.mode)
        c.Kv_fork.connections c.Kv_fork.set_fraction r.Kv_fork.throughput
        r.Kv_fork.p50 r.Kv_fork.p99 r.Kv_fork.forks r.Kv_fork.cow_faults
        r.Kv_fork.share_shared r.Kv_fork.share_total
    in
    List.iter (row "headline") report.Freport.headline;
    List.iter (row "grid") report.Freport.grid;
    (* Same refusal discipline as `sjctl compartments`, with the
       acceptance claims fatal too: no report unless the fault storm
       was measured, the prefork pool stayed fault-free in steady
       state, the parent's store was unwritten, every family shared
       >90% of its page-table nodes, and the refcount audit was
       leak-free. *)
    (match failed_claims with
    | [] -> ()
    | cs ->
      List.iter (Format.eprintf "fork: claim failed: %s@.") cs;
      exit 2);
    (match divergences with
    | [] -> ()
    | ds ->
      Format.eprintf "fork: determinism audit divergence (%s)@."
        (String.concat ", " ds);
      exit 2);
    let oc = open_out out in
    output_string oc (Freport.to_json report);
    close_out oc;
    (match Freport.check_file out with
    | Ok () -> ()
    | Error es ->
      List.iter (Format.eprintf "fork: invalid report: %s@.") es;
      exit 2);
    Format.printf "wrote %s@." out
  in
  Cmd.v
    (Cmd.info "fork"
       ~doc:
         "Run the fork-serving KV bench (prefork worker pool vs \
          fork-per-connection snapshots; CoW fault storms + claims + \
          determinism audits)")
    Term.(const run $ quick $ out $ jobs)

let explore_cmd =
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"CI sweep size (~150 configs, seconds)")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_explore.json"
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Write the JSON report (schema spacejmp-bench/6-explore) to \
             $(docv)")
  in
  let jobs =
    Arg.(
      value
      & opt int (Sj_util.Par.default_size ())
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Fan sweep configs across $(docv) domains (wall clock only)")
  in
  let run quick out jobs =
    if jobs < 1 then begin
      prerr_endline "explore: --jobs must be >= 1";
      exit 2
    end;
    let module Driver = Sj_explore.Driver in
    let module Ereport = Sj_explore.Explore_report in
    let { Driver.report; divergences; failed_claims } =
      Driver.run ~quick ~jobs
        ~progress:(fun s -> Format.printf "-- %s@." s)
        ()
    in
    Format.printf "sweep: %d configs (%d distinct, %d fuzzed); backends: %s; kinds: %s@."
      report.Ereport.configs_run report.Ereport.distinct_configs
      report.Ereport.fuzz_configs
      (String.concat "," report.Ereport.backends)
      (String.concat "," report.Ereport.plan_kinds);
    Format.printf "invariants: %s@."
      (String.concat ", " (List.map fst report.Ereport.invariants));
    List.iter
      (fun (d : Ereport.detail) ->
        Format.printf "violation [%s] %s seed=%d plan=[%s]%s@.  %s@."
          d.Ereport.invariant d.Ereport.backend d.Ereport.seed d.Ereport.plan
          (if d.Ereport.reproduced then "" else " (NOT REPRODUCED)")
          d.Ereport.message)
      report.Ereport.details;
    Format.printf "violations: %d@." report.Ereport.violations;
    (* Same refusal discipline as the other benches, and an unreproduced
       violation counts as a divergence: every violation must replay
       byte-identically from its (backend, seed, plan) key. *)
    (match failed_claims with
    | [] -> ()
    | cs ->
      List.iter (Format.eprintf "explore: claim failed: %s@.") cs;
      exit 2);
    (match divergences with
    | [] -> ()
    | ds ->
      Format.eprintf "explore: divergence or unreproduced violation (%s)@."
        (String.concat ", " ds);
      exit 2);
    let oc = open_out out in
    output_string oc (Ereport.to_json report);
    close_out oc;
    (match Ereport.check_file out with
    | Ok () -> ()
    | Error es ->
      List.iter (Format.eprintf "explore: invalid report: %s@.") es;
      exit 2);
    Format.printf "wrote %s@." out
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Run the invariant-exploration harness (fault plan x schedule x \
          backend sweep; global invariants after every run; violations \
          replayed from their (backend, seed, plan) keys)")
    Term.(const run $ quick $ out $ jobs)

let () =
  let info = Cmd.info "sjctl" ~doc:"SpaceJMP simulator control tool" in
  let group =
    Cmd.group info
      [
        platforms_cmd; gups_cmd; demo_cmd; redis_cmd; faults_cmd; check_cmd; persist_cmd;
        inspect_cmd; samtools_cmd; bench_cmd; cluster_cmd; compartments_cmd; fork_cmd; explore_cmd; trace_cmd; stats_cmd;
      ]
  in
  (* Typed ABI faults (and their legacy exception spellings) become a
     one-line message plus a per-code exit status (10 + errno); anything
     else is a crash and keeps its backtrace. *)
  try exit (Cmd.eval ~catch:false group)
  with e -> (
    match Sj_core.Errors.fault_of_exn e with
    | Some f ->
      prerr_endline ("sjctl: " ^ Sj_abi.Error.to_string f);
      exit (Sj_abi.Error.exit_code f.code)
    | None -> raise e)
