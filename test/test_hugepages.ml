(* Tests for huge-page (2 MiB) segments — the Barrelfish-style
   user-space page-size policy (sec 4.2). *)
open Sj_util
open Sj_core
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Layout = Sj_kernel.Layout
module Pm = Sj_mem.Phys_mem
module Prot = Sj_paging.Prot
module Page_table = Sj_paging.Page_table

let tiny : Platform.t =
  { Platform.m2 with name = "tiny"; mem_size = Size.mib 512; sockets = 2; cores_per_socket = 2 }

let setup () =
  let m = Machine.create tiny in
  let sys = Api.boot m in
  let p = Process.create ~name:"p0" m in
  let ctx = Api.context sys p (Machine.core m 0) in
  (m, sys, ctx)

let test_contiguous_allocation () =
  let m = Pm.create ~size:(Size.mib 16) ~numa_nodes:2 in
  let run = Pm.alloc_frames_contiguous m ~n:16 in
  Array.iteri
    (fun i f ->
      Alcotest.(check int) "sequential" (Pm.base_of_frame run.(0) + (i * Addr.page_size))
        (Pm.base_of_frame f))
    run;
  (* Exhausting a node's run falls to the other node. *)
  let m2 = Pm.create ~size:(Size.kib 32) ~numa_nodes:2 in
  let a = Pm.alloc_frames_contiguous m2 ~n:4 in
  let b = Pm.alloc_frames_contiguous m2 ~n:4 in
  Alcotest.(check bool) "second run on other node" true
    (Pm.node_of_frame m2 b.(0) <> Pm.node_of_frame m2 a.(0));
  Alcotest.check_raises "no run left" Pm.Out_of_memory (fun () ->
      ignore (Pm.alloc_frames_contiguous m2 ~n:4))

let test_huge_segment_fewer_ptes () =
  let m, _, ctx = setup () in
  ignore m;
  let vas4k = Api.vas_create ctx ~name:"v4k" ~mode:0o600 in
  let vas2m = Api.vas_create ctx ~name:"v2m" ~mode:0o600 in
  let small = Api.seg_alloc_anywhere ctx ~name:"small-pages" ~size:(Size.mib 32) ~mode:0o600 in
  let huge = Api.seg_alloc_anywhere ~huge:true ctx ~name:"huge-pages" ~size:(Size.mib 32) ~mode:0o600 in
  Api.seg_attach ctx vas4k small ~prot:Prot.rw;
  Api.seg_attach ctx vas2m huge ~prot:Prot.rw;
  let core = Api.core ctx in
  let c0 = Core.cycles core in
  let _vh1 = Api.vas_attach ctx vas4k in
  let cost_4k = Core.cycles core - c0 in
  let c1 = Core.cycles core in
  let _vh2 = Api.vas_attach ctx vas2m in
  let cost_2m = Core.cycles core - c1 in
  Alcotest.(check bool)
    (Printf.sprintf "huge attach cheaper (%d vs %d)" cost_2m cost_4k)
    true
    (cost_2m * 2 < cost_4k)

let test_huge_segment_data_access () =
  let _, _, ctx = setup () in
  let vas = Api.vas_create ctx ~name:"v" ~mode:0o600 in
  let seg = Api.seg_alloc_anywhere ~huge:true ctx ~name:"h" ~size:(Size.mib 8) ~mode:0o600 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  (* Read/write across the segment, including 2 MiB-boundary straddles. *)
  let base = Segment.base seg in
  Api.store64 ctx ~va:(base + Size.mib 2 - 4) 0x1122334455667788L;
  Alcotest.(check int64) "straddle 2M boundary" 0x1122334455667788L
    (Api.load64 ctx ~va:(base + Size.mib 2 - 4));
  Api.store_bytes ctx ~va:(base + Size.mib 7) (Bytes.of_string "huge pages!");
  Alcotest.(check string) "tail write" "huge pages!"
    (Bytes.to_string (Api.load_bytes ctx ~va:(base + Size.mib 7) ~len:11));
  (* The walk resolves in 3 levels and the TLB uses its 2 MiB array. *)
  match
    Page_table.walk
      (Sj_kernel.Vmspace.page_table (Api.vmspace_of_vh vh))
      ~va:(base + Size.mib 3)
  with
  | Some mapping ->
    Alcotest.(check bool) "2M leaf" true (mapping.size = Page_table.P2M);
    Alcotest.(check int) "3-level walk" 3 mapping.levels
  | None -> Alcotest.fail "unmapped"

let test_huge_tlb_coverage () =
  (* A working set larger than the 4 KiB TLB footprint but within the
     2 MiB entries' reach: huge pages avoid capacity misses. *)
  let measure ~huge =
    let _, _, ctx = setup () in
    let vas = Api.vas_create ctx ~name:"v" ~mode:0o600 in
    let seg = Api.seg_alloc_anywhere ~huge ctx ~name:"s" ~size:(Size.mib 16) ~mode:0o600 in
    Api.seg_attach ctx vas seg ~prot:Prot.rw;
    let vh = Api.vas_attach ctx vas in
    Api.vas_switch ctx vh;
    let core = Api.core ctx in
    let rng = Rng.create ~seed:3 in
    (* Warm. *)
    for _ = 1 to 2000 do
      ignore (Api.load64 ctx ~va:(Segment.base seg + (Rng.int rng (Size.mib 16 / 8) * 8)))
    done;
    Sj_tlb.Tlb.reset_stats (Core.tlb core);
    for _ = 1 to 2000 do
      ignore (Api.load64 ctx ~va:(Segment.base seg + (Rng.int rng (Size.mib 16 / 8) * 8)))
    done;
    (Sj_tlb.Tlb.stats (Core.tlb core)).misses
  in
  let misses_4k = measure ~huge:false in
  let misses_2m = measure ~huge:true in
  Alcotest.(check bool)
    (Printf.sprintf "huge pages kill TLB misses (%d vs %d)" misses_2m misses_4k)
    true
    (misses_2m * 10 < misses_4k)

let test_huge_translation_cache () =
  let _, _, ctx = setup () in
  let vas = Api.vas_create ctx ~name:"v" ~mode:0o600 in
  let seg = Api.seg_alloc_anywhere ~huge:true ctx ~name:"s" ~size:(Size.mib 4) ~mode:0o600 in
  Api.seg_ctl ctx (`Cache_translations seg);
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  Api.store64 ctx ~va:(Segment.base seg) 5L;
  Alcotest.(check int64) "grafted huge mapping works" 5L (Api.load64 ctx ~va:(Segment.base seg))

let test_unaligned_huge_rejected () =
  let _, _, ctx = setup () in
  Alcotest.(check bool) "odd size rounded or rejected" true
    (let seg = Api.seg_alloc_anywhere ~huge:true ctx ~name:"odd" ~size:(Size.mib 3) ~mode:0o600 in
     Segment.size seg = Size.mib 4)

let test_huge_persists () =
  (* Huge segments survive save/restore (restored as huge). *)
  let _, sys, ctx = setup () in
  let vas = Api.vas_create ctx ~name:"v" ~mode:0o600 in
  let seg = Api.seg_alloc_anywhere ~huge:true ctx ~name:"h" ~size:(Size.mib 4) ~mode:0o600 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  Api.store64 ctx ~va:(Segment.base seg) 77L;
  Api.switch_home ctx;
  let image = Sj_persist.Persist.save sys in
  let m2 = Machine.create tiny in
  let sys2 = Api.boot m2 in
  let p2 = Process.create ~name:"p" m2 in
  let ctx2 = Api.context sys2 p2 (Machine.core m2 0) in
  Sj_persist.Persist.restore sys2 image;
  let vh2 = Api.vas_attach ctx2 (Api.vas_find ctx2 ~name:"v") in
  Api.vas_switch ctx2 vh2;
  Alcotest.(check int64) "data back" 77L (Api.load64 ctx2 ~va:(Segment.base seg))

let suite =
  [
    Alcotest.test_case "contiguous frame allocation" `Quick test_contiguous_allocation;
    Alcotest.test_case "huge attach writes fewer PTEs" `Quick test_huge_segment_fewer_ptes;
    Alcotest.test_case "huge data access" `Quick test_huge_segment_data_access;
    Alcotest.test_case "huge TLB coverage" `Quick test_huge_tlb_coverage;
    Alcotest.test_case "huge translation cache" `Quick test_huge_translation_cache;
    Alcotest.test_case "size rounding" `Quick test_unaligned_huge_rejected;
    Alcotest.test_case "huge segment persists" `Quick test_huge_persists;
  ]
