#!/bin/sh
# Fork-coverage lint, run on every `dune runtest`.
#
# The μFork subsystem (lib/fork + the kernel CoW machinery) makes two
# accounting promises that would rot silently if a refactor dropped a
# call site:
#
#   1. every fork syscall is COUNTED: vas_fork and proc_fork are real
#      ABI entries (numbered and named in lib/abi/sys.ml) and both API
#      entry points funnel through the counted dispatch helper, so the
#      syscall table and the event stream both see them (the explore
#      syscall-balance invariant then checks they agree);
#   2. every new observability event is EMITTED and ACCUMULATED: the
#      Fork and Cow_fault events exist, have stable wire names, are
#      emitted by the API/fault paths, and feed the forks / cow_faults
#      / cow_copies metrics the fork bench claims are measured.
set -u

sys=lib/abi/sys.ml
api=lib/core/api.ml
event=lib/obs/event.ml
metrics=lib/obs/metrics.ml

for f in $sys $api $event $metrics; do
  [ -f "$f" ] || {
    echo "lint_fork: $f not found (run from the repo root)" >&2
    exit 1
  }
done

fail() {
  echo "lint_fork: $1" >&2
  echo "See the Fork & CoW section of HACKING.md." >&2
  exit 1
}

# -- 1: the fork syscalls are counted ---------------------------------

for nr in Vas_fork Proc_fork; do
  grep -qE "\| $nr -> [0-9]+" "$sys" \
    || fail "$nr has no number in the ABI dispatch table ($sys)"
  grep -qE "\| $nr -> \"" "$sys" \
    || fail "$nr has no name in the ABI dispatch table ($sys)"
  # The API entry must go through the counted dispatch (`call ctx <nr>`),
  # which charges the syscall table and brackets enter/exit events.
  grep -qE "call ctx $nr" "$api" \
    || fail "$nr's API entry no longer funnels through the counted dispatch in $api"
done

# -- 2: the fork events are emitted and accumulated -------------------

for ev in Fork Cow_fault; do
  grep -qE "\| $ev (of|\{)" "$event" \
    || fail "event constructor $ev missing from $event"
  grep -qE "Event\.$ev" "$api" \
    || fail "event $ev is never emitted by $api"
done

# Stable wire names (trace files and jq recipes depend on them).
for name in proc_fork vas_fork cow_fault; do
  grep -q "\"$name\"" "$event" \
    || fail "event wire name \"$name\" missing from $event"
done

# The metrics accumulator consumes both events...
grep -qE "\| Fork _" "$metrics" \
  || fail "Metrics no longer accumulates Fork events ($metrics)"
grep -qE "\| Cow_fault" "$metrics" \
  || fail "Metrics no longer accumulates Cow_fault events ($metrics)"

# ...and the consumers the bench claims depend on still read them.
for m in forks cow_faults cow_copies; do
  grep -qE "Metrics\.$m" lib/kvstore/kv_fork.ml \
    || fail "the fork workload no longer reads Metrics.$m (lib/kvstore/kv_fork.ml)"
done
grep -qE "cow_faults" lib/fork/driver.ml \
  || fail "the fork driver no longer evaluates the CoW fault-storm claim (lib/fork/driver.ml)"

# The explorer sweeps the fork entries (kill plans at the fork syscalls).
for nr in Vas_fork Proc_fork; do
  grep -qE "Sys\.$nr" lib/explore/explore.ml \
    || fail "the explore sweep no longer targets Sys.$nr (lib/explore/explore.ml)"
done

echo "lint_fork: OK (fork syscalls counted; Fork/Cow_fault emitted, accumulated and consumed)"
