(* Tests for the key-value store: RESP codec, dict, store engine,
   classic server, RedisJMP, and the DES throughput harness. *)
open Sj_util
module Machine = Sj_machine.Machine
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Api = Sj_core.Api
open Sj_kvstore

let tiny : Platform.t =
  { Platform.m1 with name = "tiny"; mem_size = Size.mib 512; sockets = 2; cores_per_socket = 3 }

(* ---------- RESP ---------- *)

let test_resp_command_roundtrip () =
  List.iter
    (fun cmd ->
      match Resp.decode_command (Resp.encode_command cmd) with
      | Ok cmd' -> Alcotest.(check bool) "equal" true (cmd = cmd')
      | Error e -> Alcotest.fail e)
    [
      Resp.Set ("key", Bytes.of_string "value with spaces");
      Resp.Get "k";
      Resp.Del "k";
      Resp.Exists "k";
      Resp.Incr "counter";
      Resp.Append ("k", Bytes.of_string "tail");
      Resp.Strlen "k";
      Resp.Setnx ("k", Bytes.of_string "v");
      Resp.Getset ("k", Bytes.of_string "v2");
      Resp.Mget [ "a"; "b"; "c" ];
      Resp.Dbsize;
      Resp.Flushall;
      Resp.Ping;
    ]

let test_resp_reply_roundtrip () =
  List.iter
    (fun r ->
      match Resp.decode_reply (Resp.encode_reply r) with
      | Ok r' -> Alcotest.(check bool) "equal" true (r = r')
      | Error e -> Alcotest.fail e)
    [
      Resp.Ok_simple;
      Resp.Bulk (Bytes.of_string "x\r\ny");
      Resp.Nil;
      Resp.Int (-3);
      Resp.Err "oops";
      Resp.Multi [ Resp.Bulk (Bytes.of_string "a"); Resp.Nil; Resp.Int 2 ];
      Resp.Pong;
    ]

let test_resp_garbage () =
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Resp.decode_command (Bytes.of_string "hello")));
  Alcotest.(check bool) "truncated rejected" true
    (Result.is_error (Resp.decode_command (Bytes.of_string "*2\r\n$3\r\nGET\r\n$10\r\nsho")))

(* ---------- Dict ---------- *)

let host_mem () =
  (* Pure host-side backend for dict unit tests. *)
  let store : (int, bytes) Hashtbl.t = Hashtbl.create 64 in
  let next = ref 16 in
  {
    Kv_mem.alloc =
      (fun n ->
        let va = !next in
        next := !next + max 16 n;
        Hashtbl.replace store va (Bytes.create n);
        va);
    free = (fun va -> Hashtbl.remove store va);
    read =
      (fun ~va ~len ->
        match Hashtbl.find_opt store va with
        | Some b -> Bytes.sub b 0 (min len (Bytes.length b))
        | None -> Bytes.create len);
    write =
      (fun ~va data ->
        Hashtbl.replace store va (Bytes.copy data));
    touch = (fun ~va:_ -> ());
  }

let test_dict_basic () =
  let d = Dict.create (host_mem ()) in
  Dict.set d ~key:"a" (Bytes.of_string "1");
  Dict.set d ~key:"b" (Bytes.of_string "2");
  Alcotest.(check int) "length" 2 (Dict.length d);
  Alcotest.(check (option string)) "get a" (Some "1")
    (Option.map Bytes.to_string (Dict.get d ~key:"a"));
  Alcotest.(check (option string)) "missing" None
    (Option.map Bytes.to_string (Dict.get d ~key:"zz"));
  Dict.set d ~key:"a" (Bytes.of_string "updated");
  Alcotest.(check (option string)) "overwrite" (Some "updated")
    (Option.map Bytes.to_string (Dict.get d ~key:"a"));
  Alcotest.(check bool) "delete" true (Dict.delete d ~key:"a");
  Alcotest.(check bool) "delete again" false (Dict.delete d ~key:"a");
  Alcotest.(check int) "length after" 1 (Dict.length d)

let test_dict_rehash_growth () =
  let d = Dict.create (host_mem ()) in
  for i = 0 to 199 do
    Dict.set d ~key:(Printf.sprintf "k%d" i) (Bytes.of_string (string_of_int i))
  done;
  (* Drive any in-flight incremental rehash to completion. *)
  Dict.force_rehash_step d 1000;
  Dict.check_invariants d;
  Alcotest.(check int) "all present" 200 (Dict.length d);
  for i = 0 to 199 do
    Alcotest.(check (option string))
      (Printf.sprintf "k%d" i)
      (Some (string_of_int i))
      (Option.map Bytes.to_string (Dict.get d ~key:(Printf.sprintf "k%d" i)))
  done

let test_dict_deferred_rehash () =
  let d = Dict.create (host_mem ()) in
  Dict.set_rehash_allowed d false;
  for i = 0 to 99 do
    Dict.set d ~key:(string_of_int i) (Bytes.of_string "v")
  done;
  (* Resize wanted but deferred; reads still correct. *)
  Alcotest.(check bool) "pending" true (Dict.rehash_pending d);
  Alcotest.(check bool) "not started" false (Dict.is_rehashing d);
  Alcotest.(check (option string)) "read during defer" (Some "v")
    (Option.map Bytes.to_string (Dict.get d ~key:"42"));
  (* Exclusive-lock holder catches up. *)
  Dict.set_rehash_allowed d true;
  Dict.force_rehash_step d 1000;
  Alcotest.(check bool) "done" false (Dict.rehash_pending d);
  Dict.check_invariants d

let prop_dict_model =
  QCheck.Test.make ~name:"dict agrees with Hashtbl model" ~count:100
    QCheck.(
      list_of_size Gen.(int_range 1 300)
        (triple (int_bound 2) (int_bound 40) (string_of_size Gen.(int_range 0 12))))
    (fun ops ->
      let d = Dict.create (host_mem ()) in
      let model : (string, string) Hashtbl.t = Hashtbl.create 64 in
      List.for_all
        (fun (op, k, v) ->
          let key = "key" ^ string_of_int k in
          match op with
          | 0 ->
            Dict.set d ~key (Bytes.of_string v);
            Hashtbl.replace model key v;
            true
          | 1 ->
            let a = Dict.delete d ~key in
            let b = Hashtbl.mem model key in
            Hashtbl.remove model key;
            a = b
          | _ ->
            let a = Option.map Bytes.to_string (Dict.get d ~key) in
            let b = Hashtbl.find_opt model key in
            a = b)
        ops)

(* ---------- Store engine ---------- *)

let test_store_commands () =
  let s = Store.create (host_mem ()) in
  Alcotest.(check bool) "set" true (Store.execute s (Resp.Set ("k", Bytes.of_string "v")) = Resp.Ok_simple);
  Alcotest.(check bool) "get" true (Store.execute s (Resp.Get "k") = Resp.Bulk (Bytes.of_string "v"));
  Alcotest.(check bool) "nil" true (Store.execute s (Resp.Get "none") = Resp.Nil);
  Alcotest.(check bool) "exists" true (Store.execute s (Resp.Exists "k") = Resp.Int 1);
  Alcotest.(check bool) "strlen" true (Store.execute s (Resp.Strlen "k") = Resp.Int 1);
  Alcotest.(check bool) "append" true (Store.execute s (Resp.Append ("k", Bytes.of_string "w")) = Resp.Int 2);
  Alcotest.(check bool) "incr fresh" true (Store.execute s (Resp.Incr "n") = Resp.Int 1);
  Alcotest.(check bool) "incr again" true (Store.execute s (Resp.Incr "n") = Resp.Int 2);
  Alcotest.(check bool) "incr non-num" true
    (match Store.execute s (Resp.Incr "k") with Resp.Err _ -> true | _ -> false);
  Alcotest.(check bool) "dbsize" true (Store.execute s Resp.Dbsize = Resp.Int 2);
  Alcotest.(check bool) "flushall" true (Store.execute s Resp.Flushall = Resp.Ok_simple);
  Alcotest.(check bool) "empty after flush" true (Store.execute s Resp.Dbsize = Resp.Int 0);
  Alcotest.(check bool) "ping" true (Store.execute s Resp.Ping = Resp.Pong)

let test_store_extended_commands () =
  let s = Store.create (host_mem ()) in
  Alcotest.(check bool) "setnx fresh" true
    (Store.execute s (Resp.Setnx ("k", Bytes.of_string "v1")) = Resp.Int 1);
  Alcotest.(check bool) "setnx existing" true
    (Store.execute s (Resp.Setnx ("k", Bytes.of_string "v2")) = Resp.Int 0);
  Alcotest.(check bool) "setnx kept original" true
    (Store.execute s (Resp.Get "k") = Resp.Bulk (Bytes.of_string "v1"));
  Alcotest.(check bool) "getset returns old" true
    (Store.execute s (Resp.Getset ("k", Bytes.of_string "v3")) = Resp.Bulk (Bytes.of_string "v1"));
  Alcotest.(check bool) "getset on fresh returns nil" true
    (Store.execute s (Resp.Getset ("fresh", Bytes.of_string "x")) = Resp.Nil);
  Alcotest.(check bool) "mget mixes hits and misses" true
    (Store.execute s (Resp.Mget [ "k"; "nope"; "fresh" ])
    = Resp.Multi [ Resp.Bulk (Bytes.of_string "v3"); Resp.Nil; Resp.Bulk (Bytes.of_string "x") ])

(* ---------- Classic server ---------- *)

let test_server_roundtrip () =
  let m = Machine.create tiny in
  let server = Server.create m ~core:(Machine.core m 0) ~heap_size:(Size.mib 8) in
  let client = Server.connect server ~core:(Machine.core m 1) in
  Alcotest.(check bool) "set" true (Server.request client (Resp.Set ("x", Bytes.of_string "7")) = Resp.Ok_simple);
  Alcotest.(check bool) "get" true (Server.request client (Resp.Get "x") = Resp.Bulk (Bytes.of_string "7"));
  (* Both sides paid cycles. *)
  Alcotest.(check bool) "server busy" true (Machine.Core.cycles (Server.core server) > 0)

(* ---------- RedisJMP ---------- *)

let redisjmp_setup () =
  let m = Machine.create tiny in
  let sys = Api.boot m in
  let p1 = Process.create ~name:"c1" m in
  let ctx1 = Api.context sys p1 (Machine.core m 0) in
  let t = Redisjmp.init ctx1 ~name:"kv" ~size:(Size.mib 16) in
  (m, sys, t, ctx1)

let test_redisjmp_basic () =
  let _, _, t, ctx = redisjmp_setup () in
  let c = Redisjmp.connect t ctx () in
  Redisjmp.set c "greeting" (Bytes.of_string "hi");
  Alcotest.(check (option string)) "get back" (Some "hi")
    (Option.map Bytes.to_string (Redisjmp.get c "greeting"));
  Alcotest.(check (option string)) "missing" None
    (Option.map Bytes.to_string (Redisjmp.get c "none"))

let test_redisjmp_shared_across_clients () =
  let m, sys, t, ctx1 = redisjmp_setup () in
  let c1 = Redisjmp.connect t ctx1 () in
  Redisjmp.set c1 "shared" (Bytes.of_string "data");
  let p2 = Process.create ~name:"c2" m in
  let ctx2 = Api.context sys p2 (Machine.core m 1) in
  let c2 = Redisjmp.connect (Redisjmp.find ctx2 ~name:"kv") ctx2 () in
  Alcotest.(check (option string)) "visible to second client" (Some "data")
    (Option.map Bytes.to_string (Redisjmp.get c2 "shared"));
  Redisjmp.set c2 "back" (Bytes.of_string "atcha");
  Alcotest.(check (option string)) "and back" (Some "atcha")
    (Option.map Bytes.to_string (Redisjmp.get c1 "back"))

let test_redisjmp_semantics_match_server () =
  (* Same random command stream against both implementations must give
     identical replies. *)
  let _, _, t, ctx = redisjmp_setup () in
  let cj = Redisjmp.connect t ctx () in
  let m2 = Machine.create tiny in
  let server = Server.create m2 ~core:(Machine.core m2 0) ~heap_size:(Size.mib 8) in
  let cs = Server.connect server ~core:(Machine.core m2 1) in
  let rng = Rng.create ~seed:77 in
  for _ = 1 to 300 do
    let key = Printf.sprintf "k%d" (Rng.int rng 20) in
    let cmd =
      match Rng.int rng 9 with
      | 0 -> Resp.Set (key, Bytes.of_string (string_of_int (Rng.int rng 100)))
      | 1 -> Resp.Get key
      | 2 -> Resp.Del key
      | 3 -> Resp.Exists key
      | 4 -> Resp.Incr ("n" ^ string_of_int (Rng.int rng 3))
      | 5 -> Resp.Setnx (key, Bytes.of_string "nx")
      | 6 -> Resp.Getset (key, Bytes.of_string (string_of_int (Rng.int rng 50)))
      | 7 -> Resp.Mget [ key; "k" ^ string_of_int (Rng.int rng 20) ]
      | _ -> Resp.Strlen key
    in
    let a = Redisjmp.execute cj cmd in
    let b = Server.request cs cmd in
    Alcotest.(check bool) "same reply" true (a = b)
  done

let test_redisjmp_rehash_under_lock_only () =
  let _, _, t, ctx = redisjmp_setup () in
  let c = Redisjmp.connect t ctx () in
  (* Enough inserts to trigger resizes. *)
  for i = 0 to 300 do
    Redisjmp.set c (Printf.sprintf "k%06d" i) (Bytes.of_string "x")
  done;
  for i = 0 to 300 do
    Alcotest.(check bool) (Printf.sprintf "k%d readable" i) true
      (Redisjmp.get c (Printf.sprintf "k%06d" i) <> None)
  done;
  Dict.check_invariants (Store.dict (Redisjmp.store t))

let test_redisjmp_grows_under_load () =
  let m = Machine.create tiny in
  let sys = Api.boot m in
  let p1 = Process.create ~name:"w" m in
  let ctx1 = Api.context sys p1 (Machine.core m 0) in
  (* A deliberately tiny store: the workload outgrows it several times. *)
  let t = Redisjmp.init ctx1 ~name:"small" ~size:(Size.kib 64) in
  let c1 = Redisjmp.connect t ctx1 () in
  let payload = Bytes.make 256 'x' in
  for i = 0 to 999 do
    Redisjmp.set c1 (Printf.sprintf "big%04d" i) payload
  done;
  Alcotest.(check bool) "segment grew" true
    (Sj_core.Segment.size (Redisjmp.data_segment t) > Size.kib 64);
  Alcotest.(check bool) "all keys live" true
    (Redisjmp.execute c1 Resp.Dbsize = Resp.Int 1000);
  (* A client that attached before the growth reads fine after it. *)
  let p2 = Process.create ~name:"r" m in
  let ctx2 = Api.context sys p2 (Machine.core m 1) in
  let c2 = Redisjmp.connect (Redisjmp.find ctx2 ~name:"small") ctx2 () in
  Alcotest.(check (option string)) "reader sees grown data" (Some (Bytes.to_string payload))
    (Option.map Bytes.to_string (Redisjmp.get c2 "big0999"));
  Dict.check_invariants (Store.dict (Redisjmp.store t))

let test_redisjmp_counts_switches () =
  let _, sys, t, ctx = redisjmp_setup () in
  let c = Redisjmp.connect t ctx () in
  Sj_core.Registry.reset_stats (Api.registry sys);
  for _ = 1 to 10 do
    ignore (Redisjmp.get c "k")
  done;
  Alcotest.(check int) "2 switches per request" 20
    (Sj_core.Registry.switch_count (Api.registry sys))

(* ---------- DES harness ---------- *)

let sim_cfg ~clients ~set_fraction mode =
  {
    Kv_sim.default_config with
    platform = tiny;
    clients;
    set_fraction;
    duration_cycles = 5_000_000;
    keyspace = 50;
    mode;
  }

let test_sim_redisjmp_scales_reads () =
  let t1 = (Kv_sim.run (sim_cfg ~clients:1 ~set_fraction:0.0 (Kv_sim.Redisjmp { tags = false }))).Kv_sim.throughput in
  let t4 = (Kv_sim.run (sim_cfg ~clients:4 ~set_fraction:0.0 (Kv_sim.Redisjmp { tags = false }))).Kv_sim.throughput in
  Alcotest.(check bool) "4 clients >= 2.5x one" true (t4 >= 2.5 *. t1)

let test_sim_writes_serialize () =
  let r1 = Kv_sim.run (sim_cfg ~clients:1 ~set_fraction:1.0 (Kv_sim.Redisjmp { tags = false })) in
  let r4 = Kv_sim.run (sim_cfg ~clients:4 ~set_fraction:1.0 (Kv_sim.Redisjmp { tags = false })) in
  Alcotest.(check bool) "writers do not scale" true
    (r4.Kv_sim.throughput < r1.Kv_sim.throughput *. 1.6);
  Alcotest.(check bool) "writers waited on the lock" true (r4.Kv_sim.lock_wait_cycles > 0)

let test_sim_redis_modes () =
  let r = Kv_sim.run (sim_cfg ~clients:2 ~set_fraction:0.5 (Kv_sim.Redis { instances = 1 })) in
  Alcotest.(check bool) "some requests" true (r.Kv_sim.requests > 0);
  Alcotest.(check bool) "mixed" true (r.Kv_sim.gets > 0 && r.Kv_sim.sets > 0)

let suite =
  [
    Alcotest.test_case "RESP command roundtrip" `Quick test_resp_command_roundtrip;
    Alcotest.test_case "RESP reply roundtrip" `Quick test_resp_reply_roundtrip;
    Alcotest.test_case "RESP garbage rejected" `Quick test_resp_garbage;
    Alcotest.test_case "dict basics" `Quick test_dict_basic;
    Alcotest.test_case "dict rehash growth" `Quick test_dict_rehash_growth;
    Alcotest.test_case "dict deferred rehash" `Quick test_dict_deferred_rehash;
    QCheck_alcotest.to_alcotest prop_dict_model;
    Alcotest.test_case "store commands" `Quick test_store_commands;
    Alcotest.test_case "store extended commands" `Quick test_store_extended_commands;
    Alcotest.test_case "server roundtrip" `Quick test_server_roundtrip;
    Alcotest.test_case "redisjmp basics" `Quick test_redisjmp_basic;
    Alcotest.test_case "redisjmp shared across clients" `Quick test_redisjmp_shared_across_clients;
    Alcotest.test_case "redisjmp matches server semantics" `Quick test_redisjmp_semantics_match_server;
    Alcotest.test_case "redisjmp rehash under lock" `Quick test_redisjmp_rehash_under_lock_only;
    Alcotest.test_case "redisjmp grows under load" `Quick test_redisjmp_grows_under_load;
    Alcotest.test_case "redisjmp counts switches" `Quick test_redisjmp_counts_switches;
    Alcotest.test_case "sim: reads scale" `Quick test_sim_redisjmp_scales_reads;
    Alcotest.test_case "sim: writes serialize" `Quick test_sim_writes_serialize;
    Alcotest.test_case "sim: classic redis modes" `Quick test_sim_redis_modes;
  ]
