(* Domain-parallelism tests: world state is per-simulation (no
   process-global counters), the Par work pool behaves as specified,
   and the bench suite is bit-identical serial vs domain-parallel. *)

open Sj_util
module Machine = Sj_machine.Machine
module Api = Sj_core.Api
module Vas = Sj_core.Vas
module Segment = Sj_core.Segment
module Suite = Sj_bench.Suite

(* Two machines built in sequence (or anywhere else) must hand out
   identical ids and addresses — every counter hangs off the machine's
   Sim_ctx. Before the scoping refactor this failed: the second machine
   continued the first one's vid/sid/pid/layout sequences. *)
let test_two_machines_identical () =
  let build () =
    let machine = Machine.create Sj_machine.Platform.m2 in
    let sys = Api.boot machine in
    let proc = Sj_kernel.Process.create ~name:"det" machine in
    let proc2 = Sj_kernel.Process.create ~name:"det2" machine in
    let ctx = Api.context sys proc (Machine.core machine 0) in
    let vas1 = Api.vas_create ctx ~name:"a" ~mode:0o600 in
    let vas2 = Api.vas_create ctx ~name:"b" ~mode:0o600 in
    let seg1 = Api.seg_alloc_anywhere ctx ~name:"s1" ~size:(Size.mib 2) ~mode:0o600 in
    let seg2 = Api.seg_alloc_anywhere ctx ~name:"s2" ~size:(Size.mib 4) ~mode:0o600 in
    ( Sj_kernel.Process.pid proc,
      Sj_kernel.Process.pid proc2,
      Vas.vid vas1,
      Vas.vid vas2,
      Segment.sid seg1,
      Segment.sid seg2,
      Segment.base seg1,
      Segment.base seg2 )
  in
  let a = build () in
  let b = build () in
  Alcotest.(check bool) "second machine replays the first's ids/addresses" true (a = b)

let test_par_ordering () =
  Par.with_pool ~size:4 (fun pool ->
      let xs = List.init 25 (fun i -> i) in
      let ys = Par.map_list pool (fun x -> x * x) xs in
      Alcotest.(check (list int)) "results in task order" (List.map (fun x -> x * x) xs) ys)

let test_par_inline_when_size_one () =
  let caller = Domain.self () in
  Par.with_pool ~size:1 (fun pool ->
      Alcotest.(check int) "size" 1 (Par.size pool);
      let doms = Par.map pool (fun _ -> Domain.self ()) [| 0; 1; 2 |] in
      Array.iter
        (fun d ->
          Alcotest.(check bool) "size-1 pool runs on the calling domain" true (d = caller))
        doms)

(* map_sharded is a chunked map_list: same results in the same order,
   whatever the chunk count — including degenerate ones (more shards
   than elements, one shard, empty input). *)
let test_par_map_sharded () =
  Par.with_pool ~size:4 (fun pool ->
      let xs = List.init 57 (fun i -> i) in
      let expect = List.map (fun x -> (3 * x) + 1) xs in
      List.iter
        (fun shards ->
          let ys = Par.map_sharded pool ~shards (fun x -> (3 * x) + 1) xs in
          Alcotest.(check (list int))
            (Printf.sprintf "map_sharded ~shards:%d = List.map" shards)
            expect ys)
        [ 1; 2; 7; 16; 57; 100 ];
      Alcotest.(check (list int))
        "map_sharded on []" []
        (Par.map_sharded pool ~shards:8 (fun x -> x) []))

(* A multi-shard bench's fingerprint is the elementwise sum of its
   shards' fingerprints, with the shards' key order preserved. *)
let test_shard_merge () =
  let mk k () = [ ("a", 10 * k); ("b", k) ] in
  let b = { Suite.bname = "merged"; shards = [| mk 1; mk 2; mk 4 |] } in
  let r = Suite.run_one ~fast:true b in
  Alcotest.(check (list (pair string int)))
    "merged fingerprint sums shards"
    [ ("a", 70); ("b", 7) ]
    r.Suite.fp

let test_par_error_lowest_index () =
  let got =
    try
      Par.with_pool ~size:3 (fun pool ->
          ignore
            (Par.run pool
               (Array.init 8 (fun i () ->
                    if i = 2 || i = 5 then failwith "boom" else i)));
          -1)
    with Par.Task_error (i, Failure _) -> i
  in
  Alcotest.(check int) "lowest failing index reported" 2 got

(* The bench suite must fingerprint identically run serially and fanned
   across 4 domains, in both host fast-path modes (the ISSUE's
   parallel-determinism criterion, at unit-test problem sizes). *)
let test_parallel_determinism () =
  let benches = Suite.tiny_suite () in
  List.iter
    (fun fast ->
      let serial = Suite.run_serial ~fast benches in
      let par, _wall =
        Par.with_pool ~size:4 (fun pool -> Suite.run_parallel pool ~fast benches)
      in
      Alcotest.(check bool)
        (Printf.sprintf "serial vs -j 4 bit-identical (fast_path=%b)" fast)
        true
        (Suite.fingerprints_equal serial par))
    [ false; true ]

(* And across modes: the same suite simulates the same world whether
   the host uses the slow or fast path. *)
let test_mode_determinism () =
  let benches = Suite.tiny_suite () in
  let slow = Suite.run_serial ~fast:false benches in
  let fast = Suite.run_serial ~fast:true benches in
  Alcotest.(check bool) "slow vs fast path bit-identical" true
    (Suite.fingerprints_equal slow fast)

let suite =
  [
    Alcotest.test_case "two machines identical" `Quick test_two_machines_identical;
    Alcotest.test_case "par ordering" `Quick test_par_ordering;
    Alcotest.test_case "par size-1 inline" `Quick test_par_inline_when_size_one;
    Alcotest.test_case "par error lowest index" `Quick test_par_error_lowest_index;
    Alcotest.test_case "par map_sharded" `Quick test_par_map_sharded;
    Alcotest.test_case "shard merge" `Quick test_shard_merge;
    Alcotest.test_case "parallel determinism" `Quick test_parallel_determinism;
    Alcotest.test_case "mode determinism" `Quick test_mode_determinism;
  ]
