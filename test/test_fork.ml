(* Fork & copy-on-write semantics: vas_fork / proc_fork share page-table
   subtrees instead of copying, first writes trap exactly once per page,
   the decided refusals are precise typed faults, and teardown of any
   family member leaves the others' mappings, locks and refcounts
   intact. The refcount ledger is re-derived from first principles with
   [Page_table.audit] after every scenario. *)

open Sj_util
open Sj_core
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Layout = Sj_kernel.Layout
module Vmspace = Sj_kernel.Vmspace
module Prot = Sj_paging.Prot
module Page_table = Sj_paging.Page_table
module Pkey = Sj_paging.Pkey
module Error = Sj_abi.Error
module Recorder = Sj_obs.Recorder
module Metrics = Sj_obs.Metrics

(* Enough RAM for the page-table-sharing census segments. *)
let roomy : Platform.t =
  { Platform.m2 with name = "forky"; mem_size = Size.gib 1; sockets = 2; cores_per_socket = 2 }

let setup ?backend () =
  let m = Machine.create roomy in
  let sys = Api.boot ?backend m in
  let p = Process.create ~name:"p0" m in
  let ctx = Api.context sys p (Machine.core m 0) in
  (m, sys, ctx)

let check_audit m what =
  let a = Page_table.audit (Machine.mem m) in
  Alcotest.(check int) (what ^ ": no leaked page-table nodes") 0 a.Page_table.a_leaked;
  Alcotest.(check int)
    (what ^ ": refcounts balance")
    0
    (List.length a.Page_table.a_imbalanced)

let metrics m =
  match Recorder.of_ctx (Machine.sim_ctx m) with
  | Some r -> Recorder.metrics r
  | None -> Alcotest.fail "recorder not attached"

(* vas_fork of a large VAS shares >90% of the fork's page-table nodes
   and isolates writes in both directions, each first write faulting
   exactly once per page. *)
let test_vas_fork_sharing_and_isolation () =
  Recorder.with_tracing true (fun () ->
      let m, _, ctx = setup () in
      let vas = Api.vas_create ctx ~name:"store" ~mode:0o600 in
      let seg = Api.seg_alloc_anywhere ctx ~name:"data" ~size:(Size.mib 256) ~mode:0o600 in
      Api.seg_attach ctx vas seg ~prot:Prot.rw;
      let vh = Api.vas_attach ctx vas in
      Api.vas_switch ctx vh;
      let base = Segment.base seg in
      Api.store64 ctx ~va:base 1L;
      Api.store64 ctx ~va:(base + Addr.page_size) 2L;
      Api.switch_home ctx;
      let fork = Api.vas_fork ctx vh ~name:"store-fork" in
      (* The fork shares the source's subtrees: >90% of its nodes. *)
      let total, shared = Page_table.count_nodes (Vmspace.page_table (Api.vmspace_of_vh fork)) in
      Alcotest.(check bool)
        (Printf.sprintf "fork shares >90%% of page-table nodes (%d/%d)" shared total)
        true
        (float_of_int shared > 0.9 *. float_of_int total);
      Alcotest.(check bool) "fork is a distinct VAS" true
        (Vas.vid (Api.vas_of_vh fork) <> Vas.vid vas);
      let before = Metrics.cow_faults (metrics m) in
      Api.vas_switch ctx fork;
      Alcotest.(check int64) "fork reads parent's pre-fork data" 1L (Api.load64 ctx ~va:base);
      Api.store64 ctx ~va:base 100L;
      Api.store64 ctx ~va:base 101L;
      (* Two stores to one page: exactly one CoW fault. *)
      Alcotest.(check int) "one CoW fault per page" (before + 1)
        (Metrics.cow_faults (metrics m));
      Alcotest.(check int64) "fork sees its own write" 101L (Api.load64 ctx ~va:base);
      Alcotest.(check int64) "untouched page still shared-visible" 2L
        (Api.load64 ctx ~va:(base + Addr.page_size));
      Api.switch_home ctx;
      (* Parent's view is untouched by the fork's write, and the
         parent's own first write faults once too. *)
      Api.vas_switch ctx vh;
      Alcotest.(check int64) "parent unaffected by fork write" 1L (Api.load64 ctx ~va:base);
      let before = Metrics.cow_faults (metrics m) in
      Api.store64 ctx ~va:(base + Addr.page_size) 200L;
      Alcotest.(check int) "parent write faults once" (before + 1)
        (Metrics.cow_faults (metrics m));
      Api.switch_home ctx;
      Api.vas_switch ctx fork;
      Alcotest.(check int64) "fork unaffected by parent write" 2L
        (Api.load64 ctx ~va:(base + Addr.page_size));
      Api.switch_home ctx;
      check_audit m "vas_fork")

(* Forking while holding a segment lock: the parent keeps its lock, the
   fork's attachment holds nothing, and the fork's shadow segment is
   separately lockable while the source stays contended. *)
let test_fork_while_holding_lock () =
  let m, sys, ctx = setup () in
  let vas = Api.vas_create ctx ~name:"locked" ~mode:0o666 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"ls" ~size:(Size.mib 1) ~mode:0o666 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  (* Switched in writable => exclusive lock held. *)
  Alcotest.(check bool) "parent holds the lock" true
    (Segment.lock_state seg = Segment.Exclusive);
  let fork = Api.vas_fork ctx vh ~name:"locked-fork" in
  Alcotest.(check bool) "parent still holds the lock" true
    (Segment.lock_state seg = Segment.Exclusive);
  (* A second process can enter the fork while the parent still holds
     the source's lock: the shadow has its own lock. *)
  let p2 = Process.create ~name:"p2" m in
  let ctx2 = Api.context sys p2 (Machine.core m 1) in
  let vh2 = Api.vas_attach ctx2 (Api.vas_of_vh fork) in
  Api.vas_switch ctx2 vh2;
  Api.store64 ctx2 ~va:(Segment.base seg) 7L;
  Api.switch_home ctx2;
  (* But not the source VAS itself: its lock is taken. *)
  let vh3 = Api.vas_attach ctx2 vas in
  (match Api.Checked.vas_switch ctx2 vh3 with
  | Error f ->
    Alcotest.(check bool) "source lock contended" true
      (Error.equal_code f.code Error.Would_block)
  | Ok () -> Alcotest.fail "switch into locked source VAS must block");
  Api.switch_home ctx;
  check_audit m "fork under lock"

(* Key-tagged leaves survive a fork: the shared subtrees carry the tag,
   and the child of a proc_fork owns fresh keys (never the parent's),
   with a scrubbed register. *)
let test_fork_with_pkey_tags () =
  let m, _, ctx = setup () in
  let vas = Api.vas_create ctx ~name:"kv" ~mode:0o600 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"tagged" ~size:(Size.mib 1) ~mode:0o600 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let key = Api.pkey_alloc ctx vas in
  Api.pkey_assign ctx vas seg ~key;
  let vh = Api.vas_attach ctx vas in
  (* Touch the VAS so the tagged leaves exist before the fork. *)
  Api.vas_switch ctx vh;
  Api.store64 ctx ~va:(Segment.base seg) 3L;
  Api.switch_home ctx;
  let fork = Api.vas_fork ctx vh ~name:"kv-fork" in
  (* The fork's (shared) leaves still carry the tag. *)
  (match
     Page_table.walk (Vmspace.page_table (Api.vmspace_of_vh fork)) ~va:(Segment.base seg)
   with
  | Some mapping ->
    Alcotest.(check int) "key tag survives the fork" key mapping.Page_table.key;
    Alcotest.(check bool) "and the leaf is CoW" true mapping.Page_table.cow
  | None -> Alcotest.fail "fork lost the mapping");
  (* proc_fork: fresh keys for the child, same count, disjoint numbers. *)
  let child = Api.proc_fork ctx ~core:(Machine.core m 1) in
  let child_pid = Process.pid (Api.process child) in
  let owned pid =
    List.filter_map
      (fun (k, owner) -> if owner = pid then Some k else None)
      (Vas.key_allocations vas)
  in
  let parent_keys = owned (Process.pid (Api.process ctx)) in
  let child_keys = owned child_pid in
  Alcotest.(check int) "child key count mirrors parent" (List.length parent_keys)
    (List.length child_keys);
  Alcotest.(check bool) "child keys are fresh" true
    (List.for_all (fun k -> not (List.mem k parent_keys)) child_keys);
  Alcotest.(check bool) "child key register scrubbed" true
    (Core.pkru (Api.core child) = Pkey.default);
  Api.crash_process child;
  check_audit m "pkey fork"

(* The decided 2 MiB refusal: a write landing on a CoW-tagged huge leaf
   is a precise typed [Invalid] fault on either side of the fork. *)
let test_huge_cow_fault_refused () =
  let m, _, ctx = setup () in
  let vas = Api.vas_create ctx ~name:"hv" ~mode:0o600 in
  let seg = Api.seg_alloc_anywhere ~huge:true ctx ~name:"huge" ~size:(Size.mib 4) ~mode:0o600 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  Api.store64 ctx ~va:(Segment.base seg) 5L;
  Api.switch_home ctx;
  let fork = Api.vas_fork ctx vh ~name:"hv-fork" in
  let check_refused side f =
    match f () with
    | () -> Alcotest.failf "%s: huge CoW write must be refused" side
    | exception Error.Fault fault ->
      Alcotest.(check bool) (side ^ ": typed Invalid") true
        (Error.equal_code fault.code Error.Invalid)
  in
  Api.vas_switch ctx fork;
  Alcotest.(check int64) "fork reads through the shared huge leaf" 5L
    (Api.load64 ctx ~va:(Segment.base seg));
  check_refused "fork side" (fun () -> Api.store64 ctx ~va:(Segment.base seg) 6L);
  Api.switch_home ctx;
  Api.vas_switch ctx vh;
  check_refused "parent side" (fun () -> Api.store64 ctx ~va:(Segment.base seg) 6L);
  Api.switch_home ctx;
  check_audit m "huge refusal"

(* Double-fork chains: grandchild forks isolate all three generations,
   and tearing the fork family down leaves balanced refcounts and the
   original data intact. *)
let test_double_fork_chain () =
  let m, _, ctx = setup () in
  let vas = Api.vas_create ctx ~name:"gen0" ~mode:0o600 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"g" ~size:(Size.mib 8) ~mode:0o600 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  let base = Segment.base seg in
  Api.vas_switch ctx vh;
  Api.store64 ctx ~va:base 0L;
  Api.switch_home ctx;
  let f1 = Api.vas_fork ctx vh ~name:"gen1" in
  let f2 = Api.vas_fork ctx f1 ~name:"gen2" in
  (* Each generation writes its own value to the same page. *)
  Api.vas_switch ctx f2;
  Api.store64 ctx ~va:base 2L;
  Api.switch_home ctx;
  Api.vas_switch ctx f1;
  Alcotest.(check int64) "gen1 unaffected by gen2" 0L (Api.load64 ctx ~va:base);
  Api.store64 ctx ~va:base 1L;
  Api.switch_home ctx;
  Api.vas_switch ctx vh;
  Alcotest.(check int64) "gen0 unaffected by gen1/gen2" 0L (Api.load64 ctx ~va:base);
  Api.switch_home ctx;
  Api.vas_switch ctx f2;
  Alcotest.(check int64) "gen2 keeps its write" 2L (Api.load64 ctx ~va:base);
  Api.switch_home ctx;
  check_audit m "double fork";
  (* Tear the forks down; the original VAS survives with its data. *)
  Api.vas_detach ctx f2;
  Api.vas_ctl ctx (`Destroy (Api.vas_of_vh f2));
  Api.vas_detach ctx f1;
  Api.vas_ctl ctx (`Destroy (Api.vas_of_vh f1));
  Api.vas_switch ctx vh;
  Alcotest.(check int64) "gen0 intact after fork teardown" 0L (Api.load64 ctx ~va:base);
  Api.switch_home ctx;
  check_audit m "after fork teardown"

(* proc_fork: CoW primary space, re-created attachments hold no locks,
   and a crash of the child leaves the parent's mappings, data, locks
   and page-table refcounts fully intact. *)
let test_proc_fork_crash_isolation () =
  let m, _, ctx = setup () in
  let vas = Api.vas_create ctx ~name:"pv" ~mode:0o600 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"ps" ~size:(Size.mib 2) ~mode:0o600 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  (* Parent data in its primary space. *)
  Api.store64 ctx ~va:(Layout.data_base + 64) 11L;
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  Api.store64 ctx ~va:(Segment.base seg) 12L;
  (* Fork while the parent is switched in and holding the lock. *)
  let child = Api.proc_fork ctx ~core:(Machine.core m 1) in
  Alcotest.(check bool) "child starts in its home space" true (Api.current child = None);
  (* Child's writes to its primary space are invisible to the parent. *)
  Api.store64 child ~va:(Layout.data_base + 64) 99L;
  Alcotest.(check int64) "child sees its write" 99L
    (Api.load64 child ~va:(Layout.data_base + 64));
  (* The child did not inherit the parent's segment lock: switching into
     the shared VAS still contends on the parent's exclusive hold. *)
  let vh_c = Api.vas_attach child vas in
  (match Api.Checked.vas_switch child vh_c with
  | Error f ->
    Alcotest.(check bool) "lock not inherited" true
      (Error.equal_code f.code Error.Would_block)
  | Ok () -> Alcotest.fail "child must contend on the parent's lock");
  (* Child dies violently; parent must be untouched. *)
  Api.crash_process child;
  Alcotest.(check int64) "parent data survives child crash" 11L
    (Api.load64 ctx ~va:(Layout.data_base + 64));
  Alcotest.(check bool) "parent still holds its lock" true
    (Segment.lock_state seg = Segment.Exclusive);
  Alcotest.(check int64) "parent's segment data intact" 12L
    (Api.load64 ctx ~va:(Segment.base seg));
  Api.switch_home ctx;
  check_audit m "proc_fork crash"

(* A deterministic fork workload must be byte-identical serially and
   under a domain pool (-j 1 vs -j N): all simulated state hangs off the
   machine's Sim_ctx, never off globals. *)
let fork_workload_fingerprint () =
  Recorder.with_tracing true (fun () ->
      let m, _, ctx = setup () in
      let vas = Api.vas_create ctx ~name:"par" ~mode:0o600 in
      let seg = Api.seg_alloc_anywhere ctx ~name:"pseg" ~size:(Size.mib 4) ~mode:0o600 in
      Api.seg_attach ctx vas seg ~prot:Prot.rw;
      let vh = Api.vas_attach ctx vas in
      Api.vas_switch ctx vh;
      for i = 0 to 15 do
        Api.store64 ctx ~va:(Segment.base seg + (i * Addr.page_size)) (Int64.of_int i)
      done;
      Api.switch_home ctx;
      let fork = Api.vas_fork ctx vh ~name:"par-fork" in
      Api.vas_switch ctx fork;
      for i = 0 to 7 do
        Api.store64 ctx
          ~va:(Segment.base seg + (i * Addr.page_size))
          (Int64.of_int (100 + i))
      done;
      Api.switch_home ctx;
      let child = Api.proc_fork ctx ~core:(Machine.core m 1) in
      Api.store64 child ~va:(Layout.data_base + 128) 5L;
      Api.crash_process child;
      let mets = metrics m in
      let a = Page_table.audit (Machine.mem m) in
      Printf.sprintf "forks=%d cow=%d copies=%d cycles=%d leaked=%d imb=%d"
        (Metrics.forks mets) (Metrics.cow_faults mets) (Metrics.cow_copies mets)
        (Core.cycles (Api.core ctx))
        a.Page_table.a_leaked
        (List.length a.Page_table.a_imbalanced))

(* Empty-fork identity: a repo that never calls vas_fork/proc_fork must
   behave exactly as it did before the subsystem existed. The baselines
   below are the metric-level fingerprints of the existing benches,
   captured from the predecessor commit (e083ae4, the PR 9 tip) by
   building this probe there — the CoW machinery (refcounted page-table
   nodes, the CoW PTE bit, the fault-path branch) must be invisible
   until the first fork. *)
let identity_baselines =
  [
    ( "fastpath load_bytes",
      "cycles=128824;tlb_hits=596;tlb_misses=4;tlb_insertions=4;checksum=12256" );
    ("fastpath memcpy", "cycles=67556;tlb_hits=1199;tlb_misses=4;tlb_insertions=4;checksum=32640");
    ( "fastpath memset",
      "cycles=257176;tlb_hits=1196;tlb_misses=4;tlb_insertions=4;checksum=543768" );
    ("fastpath gups", "cycles=119116;updates=2560");
    ( "fastpath switch_storm",
      "cycles=521272;tlb_hits=150;tlb_misses=150;tlb_insertions=150;checksum=11175;switches=300" );
    ( "fastpath kvstore",
      "requests=48;gets=43;sets=5;lock_wait_cycles=466790;switches=98;tlb_misses=121" );
    ( "fastpath kvstore_mt",
      "requests=97;gets=85;sets=12;lock_wait_cycles=1096232;switches=218;tlb_misses=266" );
    ( "cluster tiny",
      "requests=1200;sets=118;cycles=918386;p50=524287;p99=1048575;p999=1048575;switches=112;\
       batches=56;stalls=9;shard_mix=2889025326272483695;timeline_mix=3901586226468881749;\
       crashes=0" );
    ( "compart vas_reload",
      "crossings=400;total_cycles=351920;crossing_cycles=338800;flushes=0;page_invalidations=0;\
       pkey_switches=0;vas_switches=400;violations=0;checksum=3972203113068932433;\
       final_cycles=957004" );
    ( "compart cap_invoke",
      "crossings=400;total_cycles=213920;crossing_cycles=200800;flushes=0;page_invalidations=0;\
       pkey_switches=0;vas_switches=400;violations=0;checksum=3972203113068932433;\
       final_cycles=828850" );
    ( "compart pkey_switch",
      "crossings=400;total_cycles=36800;crossing_cycles=24000;flushes=0;page_invalidations=0;\
       pkey_switches=400;vas_switches=0;violations=2;checksum=3972203113068932433;\
       final_cycles=324801" );
  ]

let fpl fp = String.concat ";" (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) fp)

let test_empty_fork_identity () =
  let check label got =
    match List.assoc_opt label identity_baselines with
    | Some expected -> Alcotest.(check string) (label ^ " matches the PR 9 baseline") expected got
    | None -> Alcotest.failf "no stored baseline for %s" label
  in
  (* The fastpath suite, both host modes (each must match the same
     stored line — slow/fast identity is part of the contract). *)
  List.iter
    (fun fast ->
      List.iter
        (fun t -> check ("fastpath " ^ t.Sj_bench.Suite.tname) (fpl t.Sj_bench.Suite.fp))
        (Sj_bench.Suite.run_serial ~fast (Sj_bench.Suite.tiny_suite ())))
    [ false; true ];
  let tiny =
    {
      Sj_cluster.Cluster.default with
      machines = 3;
      shards = 4;
      clients = 400;
      requests_per_client = 3;
      batch = 8;
      pipeline = 2;
      keys_per_shard = 64;
      store_size = Size.mib 4;
      window_cycles = 2_000_000;
    }
  in
  check "cluster tiny" (fpl (Sj_cluster.Cluster.run tiny).Sj_cluster.Cluster.fingerprint);
  List.iter
    (fun mech ->
      let cfg = { Sj_compart.Compart.default with Sj_compart.Compart.mechanism = mech } in
      check
        ("compart " ^ Sj_compart.Compart.mechanism_name mech)
        (fpl (Sj_compart.Compart.run cfg).Sj_compart.Compart.fingerprint))
    [ Sj_compart.Compart.Vas_reload; Sj_compart.Compart.Cap_invoke; Sj_compart.Compart.Pkey ]

let test_parallel_byte_identity () =
  let serial = fork_workload_fingerprint () in
  let results =
    Par.with_pool ~size:4 (fun pool ->
        Par.map_list pool (fun () -> fork_workload_fingerprint ()) [ (); (); () ])
  in
  List.iteri
    (fun i r -> Alcotest.(check string) (Printf.sprintf "domain run %d identical" i) serial r)
    results

let suite =
  [
    Alcotest.test_case "vas_fork shares >90% and isolates writes" `Quick
      test_vas_fork_sharing_and_isolation;
    Alcotest.test_case "fork while holding a segment lock" `Quick test_fork_while_holding_lock;
    Alcotest.test_case "fork of key-tagged leaves; fresh child keys" `Quick
      test_fork_with_pkey_tags;
    Alcotest.test_case "2 MiB CoW write is a typed refusal" `Quick test_huge_cow_fault_refused;
    Alcotest.test_case "double-fork chains isolate and balance" `Quick test_double_fork_chain;
    Alcotest.test_case "proc_fork: child crash leaves parent intact" `Quick
      test_proc_fork_crash_isolation;
    Alcotest.test_case "-j1 vs -jN byte identity" `Quick test_parallel_byte_identity;
    Alcotest.test_case "empty-fork identity: PR 9 bench baselines" `Quick
      test_empty_fork_identity;
  ]
