(* Tests for lib/obs: ring-buffer behavior, recorder wiring through
   Machine.create, Chrome-trace export, metrics aggregation, and the two
   headline properties — event streams are byte-identical across -j 1
   and -j 4, and disabled tracing leaves fingerprints bit-identical. *)

open Sj_util
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Prot = Sj_paging.Prot
module Api = Sj_core.Api
module Errors = Sj_core.Errors
module Event = Sj_obs.Event
module Ring = Sj_obs.Ring
module Recorder = Sj_obs.Recorder
module Metrics = Sj_obs.Metrics
module Trace = Sj_obs.Trace
module Suite = Sj_bench.Suite

let tiny : Platform.t =
  { Platform.m2 with name = "tiny"; mem_size = Size.mib 128; sockets = 2; cores_per_socket = 2 }

let mk_event seq =
  { Event.seq; core = 0; cycles = seq * 10; kind = Event.Tag_recycle { tag = seq } }

let seqs evs = List.map (fun (e : Event.t) -> e.seq) evs
let kind_is p (e : Event.t) = p e.kind

(* --- ring buffer --- *)

let test_ring_wrap () =
  let r = Ring.create 4 in
  Alcotest.(check int) "capacity" 4 (Ring.capacity r);
  for i = 0 to 9 do
    Ring.push r (mk_event i)
  done;
  Alcotest.(check int) "length clamped to capacity" 4 (Ring.length r);
  Alcotest.(check int) "overwrites counted" 6 (Ring.dropped r);
  Alcotest.(check (list int)) "most recent retained, oldest first" [ 6; 7; 8; 9 ]
    (seqs (Ring.to_list r));
  Ring.clear r;
  Alcotest.(check int) "cleared" 0 (Ring.length r)

let test_ring_partial () =
  let r = Ring.create 8 in
  for i = 0 to 2 do
    Ring.push r (mk_event i)
  done;
  Alcotest.(check int) "length" 3 (Ring.length r);
  Alcotest.(check int) "nothing dropped" 0 (Ring.dropped r);
  Alcotest.(check (list int)) "insertion order" [ 0; 1; 2 ] (seqs (Ring.to_list r))

(* --- a deterministic traced session touching every event family --- *)

(* Syscalls, a tag assignment, switches, a lock conflict, a snapshot
   write-protect plus the COW fault it provokes, TLB flushes, and a
   vmspace teardown. *)
let session () =
  let m = Machine.create tiny in
  let sys = Api.boot m in
  let p = Process.create ~name:"p0" m in
  let ctx = Api.context sys p (Machine.core m 0) in
  let vas = Api.vas_create ctx ~name:"v" ~mode:0o666 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"s" ~size:(Size.mib 4) ~mode:0o666 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  Api.vas_ctl ctx (`Request_tag vas);
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  let a = Api.malloc ctx 64 in
  Api.store64 ctx ~va:a 42L;
  (* A second process conflicts on the exclusive segment lock. *)
  let p2 = Process.create ~name:"p1" m in
  let ctx2 = Api.context sys p2 (Machine.core m 1) in
  let vh2 = Api.vas_attach ctx2 vas in
  (try Api.vas_switch ctx2 vh2 with Errors.Would_block _ -> ());
  (* Snapshot write-protects the segment; the next store COW-faults. *)
  let _snap = Api.seg_snapshot ctx seg ~name:"snap" in
  Api.store64 ctx ~va:a 43L;
  Api.switch_home ctx;
  Api.vas_detach ctx vh;
  m

let traced_session ?capacity () =
  Recorder.with_tracing ?capacity true (fun () ->
      let m = session () in
      match Recorder.of_ctx (Machine.sim_ctx m) with
      | Some r -> r
      | None -> Alcotest.fail "machine booted without a recorder under with_tracing")

(* --- recorder wiring --- *)

let test_disabled_attaches_nothing () =
  let m = Machine.create tiny in
  Alcotest.(check bool) "no recorder outside with_tracing" true
    (Option.is_none (Recorder.of_ctx (Machine.sim_ctx m)));
  Recorder.with_tracing false (fun () ->
      let m2 = Machine.create tiny in
      Alcotest.(check bool) "with_tracing false attaches nothing" true
        (Option.is_none (Recorder.of_ctx (Machine.sim_ctx m2))))

let test_session_event_families () =
  let r = traced_session () in
  let evs = Recorder.events r in
  let has p = List.exists (kind_is p) evs in
  Alcotest.(check bool) "tag assigned" true
    (has (function Event.Tag_assign _ -> true | _ -> false));
  Alcotest.(check bool) "vas switch recorded with its tag" true
    (has (function Event.Vas_switch { vid; tag } -> vid > 0 && tag > 0 | _ -> false));
  Alcotest.(check bool) "switch home recorded untagged" true
    (has (function Event.Vas_switch { vid = 0; tag = 0 } -> true | _ -> false));
  Alcotest.(check bool) "lock conflict recorded" true
    (has (function Event.Seg_lock { acquired = false; _ } -> true | _ -> false));
  Alcotest.(check bool) "lock release recorded" true
    (has (function Event.Seg_unlock _ -> true | _ -> false));
  Alcotest.(check bool) "COW fault resolved" true
    (has (function Event.Page_fault { write = true; resolved = true; _ } -> true | _ -> false));
  Alcotest.(check bool) "TLB flush recorded" true
    (has (function Event.Tlb_flush _ -> true | _ -> false));
  Alcotest.(check bool) "teardown recorded with its PTE clears" true
    (has (function Event.Pt_teardown { pte_clears } -> pte_clears > 0 | _ -> false));
  (* Sequence numbers are the emission order, gap-free. *)
  Alcotest.(check (list int)) "gap-free sequence"
    (List.init (List.length evs) (fun i -> i))
    (seqs evs)

let test_capacity_drops_oldest () =
  let r = traced_session ~capacity:16 () in
  let evs = Recorder.events r in
  Alcotest.(check int) "ring holds capacity" 16 (List.length evs);
  Alcotest.(check bool) "older events dropped" true (Recorder.dropped r > 0);
  (* The retained window is the tail of the sequence. *)
  Alcotest.(check (list int)) "tail window"
    (List.init 16 (fun i -> Recorder.dropped r + i))
    (seqs evs)

(* --- metrics --- *)

let test_metrics_aggregate () =
  let r = traced_session () in
  let evs = Recorder.events r in
  let count p = List.length (List.filter (kind_is p) evs) in
  let enters = count (function Event.Syscall_enter _ -> true | _ -> false) in
  let exits = count (function Event.Syscall_exit _ -> true | _ -> false) in
  Alcotest.(check bool) "syscalls bracketed" true (enters > 0);
  Alcotest.(check int) "enter/exit balanced" enters exits;
  let rows = Metrics.syscall_rows (Recorder.metrics r) in
  let calls = List.fold_left (fun acc (_, _, c, _, _, _) -> acc + c) 0 rows in
  Alcotest.(check int) "metrics count every completed call" exits calls;
  List.iter
    (fun (_, _, calls, _, cycles, hist) ->
      Alcotest.(check bool) "histogram samples match calls" true
        (Sj_obs.Hist.count hist = calls && cycles >= 0))
    rows;
  (* The failed vas_switch (lock conflict) shows up as a fault. *)
  let faults = List.fold_left (fun acc (_, _, _, f, _, _) -> acc + f) 0 rows in
  Alcotest.(check bool) "faulting syscall counted" true (faults >= 1);
  Alcotest.(check bool) "text summary renders" true
    (String.length (Metrics.describe (Recorder.metrics r)) > 0)

(* Retry backoffs (Checked.switch_retry under a Would_block storm) are
   charged to the core *and* surfaced: counted, totalled, and present
   in the stats text/JSON — the fix for backoff cycles that used to be
   spent invisibly. *)
let test_metrics_switch_retries () =
  Recorder.with_tracing true (fun () ->
      let m = Machine.create tiny in
      let sys = Api.boot m in
      let p = Process.create ~name:"victim" m in
      let ctx = Api.context sys p (Machine.core m 0) in
      let vas = Api.vas_create ctx ~name:"s" ~mode:0o666 in
      let seg =
        Api.seg_alloc_anywhere ctx ~name:"s.d" ~size:(Size.mib 1) ~mode:0o666
      in
      Api.seg_attach ctx vas seg ~prot:Prot.rw;
      let vh = Api.vas_attach ctx vas in
      Sj_fault.Injector.attach (Machine.sim_ctx m)
        (Sj_fault.Injector.create
           [
             Sj_fault.Plan.would_block_storm ~pid:(Process.pid p)
               ~nr:Sj_abi.Sys.(number Vas_switch) ~count:3;
           ]);
      Alcotest.(check bool) "retry rides out the storm" true
        (Api.Checked.switch_retry ~attempts:5 ~backoff_cycles:1_000 ctx vh
        = Ok ());
      Api.switch_home ctx;
      match Recorder.of_ctx (Machine.sim_ctx m) with
      | None -> Alcotest.fail "recorder not attached"
      | Some r ->
        let mx = Recorder.metrics r in
        Alcotest.(check int) "three backoffs counted" 3
          (Metrics.switch_retries mx);
        (* Linear backoff: 1k + 2k + 3k. *)
        Alcotest.(check int) "backoff cycles totalled" 6_000
          (Metrics.switch_retry_cycles mx);
        let contains hay needle =
          let n = String.length hay and m = String.length needle in
          let rec go i =
            i + m <= n && (String.sub hay i m = needle || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) "retries visible in describe" true
          (contains (Metrics.describe mx) "retr");
        Alcotest.(check bool) "retries visible in JSON" true
          (contains (Metrics.to_json mx) "switch_retries"))

(* --- export --- *)

let test_chrome_json_shape () =
  let r = traced_session () in
  let doc = Trace.to_chrome_json (Recorder.events r) in
  (match Trace.check_string doc with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("trace JSON rejected: " ^ e));
  (match Trace.check_string (Metrics.to_json (Recorder.metrics r) |> fun j ->
       "{\"traceEvents\":[]," ^ String.sub j 1 (String.length j - 1))
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("stats JSON rejected: " ^ e));
  (* The checker is a real parser, not a happy-path stub. *)
  let rejects s = Alcotest.(check bool) ("rejects " ^ s) true
      (Result.is_error (Trace.check_string s))
  in
  Alcotest.(check bool) "minimal document accepted" true
    (Trace.check_string "{\"traceEvents\":[]}" = Ok ());
  rejects "[]";
  rejects "{}";
  rejects "{\"traceEvents\":[}";
  rejects "{\"traceEvents\":[]} trailing";
  rejects "{\"traceEvents\":[{\"ph\":\"B\",}]}"

(* --- determinism --- *)

(* The satellite criterion: the event stream of a traced simulation is
   byte-identical whether trials run serially or fanned across 4
   domains (timestamps are simulated cycles, never host wall clock). *)
let test_stream_determinism_parallel () =
  let trial _ =
    Recorder.with_tracing true (fun () ->
        let m = session () in
        match Recorder.of_ctx (Machine.sim_ctx m) with
        | Some r -> Trace.to_text (Recorder.events r)
        | None -> Alcotest.fail "no recorder attached")
  in
  let inputs = [ 0; 1; 2; 3 ] in
  let serial = List.map trial inputs in
  let par = Par.with_pool ~size:4 (fun pool -> Par.map_list pool trial inputs) in
  List.iteri
    (fun i s ->
      Alcotest.(check bool)
        (Printf.sprintf "-j 1 vs -j 4 byte-identical (trial %d)" i)
        true
        (s = List.nth par i))
    serial;
  (match serial with
  | first :: rest ->
    Alcotest.(check bool) "stream non-empty" true (String.length first > 0);
    List.iter
      (fun s -> Alcotest.(check bool) "replays byte-identical" true (s = first))
      rest
  | [] -> assert false)

(* Tracing must be observation only: the tiny bench suite fingerprints
   bit-identically with the recorder on and off, in both host modes. *)
let test_disabled_fingerprint_identity () =
  let benches = Suite.tiny_suite () in
  List.iter
    (fun fast ->
      let off = Suite.run_serial ~trace:false ~fast benches in
      let on = Suite.run_serial ~trace:true ~fast benches in
      Alcotest.(check bool)
        (Printf.sprintf "trace on/off bit-identical (fast_path=%b)" fast)
        true
        (Suite.fingerprints_equal off on))
    [ false; true ]

let suite =
  [
    Alcotest.test_case "ring wraps, keeps newest" `Quick test_ring_wrap;
    Alcotest.test_case "ring below capacity" `Quick test_ring_partial;
    Alcotest.test_case "disabled attaches nothing" `Quick test_disabled_attaches_nothing;
    Alcotest.test_case "session emits every family" `Quick test_session_event_families;
    Alcotest.test_case "capacity drops oldest" `Quick test_capacity_drops_oldest;
    Alcotest.test_case "metrics aggregate the stream" `Quick test_metrics_aggregate;
    Alcotest.test_case "metrics count switch retries" `Quick test_metrics_switch_retries;
    Alcotest.test_case "Chrome trace JSON shape" `Quick test_chrome_json_shape;
    Alcotest.test_case "event streams -j1 vs -j4" `Quick test_stream_determinism_parallel;
    Alcotest.test_case "disabled-mode fingerprint identity" `Quick test_disabled_fingerprint_identity;
  ]
