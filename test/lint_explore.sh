#!/bin/sh
# Exploration-coverage lint, run on every `dune runtest`.
#
# The invariant explorer (lib/explore) claims to sweep every injectable
# fault kind and to check a fixed roster of global invariants after
# every run. Those claims rot silently: a new Plan constructor that the
# enumeration never emits, or an invariant dropped from Invariant.all,
# would shrink coverage without failing a single test. This lint parses
# the actual sources and keeps the roster honest.
#
# 1. Every Plan.fault constructor's builder must appear in the
#    explorer's enumeration (lib/explore/explore.ml).
# 2. Every documented invariant name must be defined in
#    lib/explore/invariant.ml AND exercised against a broken world by
#    test/test_explore.ml.
set -u

# -- 1: plan-kind coverage in the enumeration -------------------------

builders=$(grep -oE '^val [a-z_]+ :' lib/fault/plan.mli | awk '{print $2}' \
  | grep -vE '^(fault_to_string|to_string)$')

nbuilders=$(printf '%s\n' $builders | wc -l)
if [ "$nbuilders" -lt 5 ]; then
  echo "lint_explore: parsed only $nbuilders plan builders from lib/fault/plan.mli (expected >= 5); fix the parse" >&2
  exit 1
fi

missing=
for b in $builders; do
  grep -q "Plan\.$b" lib/explore/explore.ml || missing="$missing $b"
done
if [ -n "$missing" ]; then
  echo "lint_explore: Plan builder(s) never used by the explorer's enumeration:$missing" >&2
  echo "Every injectable fault kind must appear in Sj_explore.Explore.enumerate; see the Exploration section of HACKING.md." >&2
  exit 1
fi

# -- 2: invariant roster --------------------------------------------

invariants="lock-balance tag-unique tag-reclaim pkey-owners pkru-hygiene refcount-balance cow-isolation journal-commit syscall-balance modal-agreement"

for i in $invariants; do
  grep -q "\"$i\"" lib/explore/invariant.ml || {
    echo "lint_explore: invariant \"$i\" missing from lib/explore/invariant.ml" >&2
    echo "The roster in this lint, Invariant.all and HACKING.md must stay in sync." >&2
    exit 1
  }
  grep -q "$i" test/test_explore.ml || {
    echo "lint_explore: invariant \"$i\" has no broken-world test in test/test_explore.ml" >&2
    echo "Every invariant checker must be shown to flag a deliberately broken World.t; see HACKING.md." >&2
    exit 1
  }
done

ninv=$(printf '%s\n' $invariants | wc -w)
if [ "$ninv" -lt 6 ]; then
  echo "lint_explore: only $ninv invariants in the roster (acceptance floor is 6)" >&2
  exit 1
fi

echo "lint_explore: OK (all $nbuilders fault kinds enumerated; all $ninv invariants defined and tested)"
