(* Fault injection and crash recovery (lib/fault).

   Covers every injectable fault kind in Plan, the kernel's
   crash-teardown path (lock reclamation, orphaned VASes, ASID reuse),
   the bounded retry loop, and the subsystem's two contracts: zero cost
   when no plan is installed, and bit-reproducibility of an injected
   run across domains. *)
open Sj_util
open Sj_core
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Prot = Sj_paging.Prot
module Sys = Sj_abi.Sys
module Error = Sj_abi.Error
module Plan = Sj_fault.Plan
module Injector = Sj_fault.Injector
module Recorder = Sj_obs.Recorder
module Metrics = Sj_obs.Metrics
module Trace = Sj_obs.Trace
module Persist = Sj_persist.Persist

let tiny : Platform.t =
  { Platform.m2 with name = "tiny"; mem_size = Size.mib 256; sockets = 2; cores_per_socket = 2 }

let boot ?(backend = Api.Dragonfly) () =
  let m = Machine.create tiny in
  let sys = Api.boot ~backend m in
  let p = Process.create ~name:"victim" m in
  let ctx = Api.context sys p (Machine.core m 0) in
  (m, sys, ctx)

let arm m plan = Injector.attach (Machine.sim_ctx m) (Injector.create plan)

let make_locked_world ctx =
  let vas = Api.vas_create ctx ~name:"shared" ~mode:0o666 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"shared.data" ~size:(Size.mib 1) ~mode:0o666 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  (vas, seg)

(* ---- Kill_at_syscall ---- *)

let test_kill_at_syscall () =
  let m, sys, ctx = boot () in
  let pid = Process.pid (Api.process ctx) in
  arm m [ Plan.kill_at_syscall ~pid ~nr:(Sys.number Seg_find) ~occurrence:3 () ];
  let _ = Api.seg_alloc_anywhere ctx ~name:"a" ~size:(Size.kib 64) ~mode:0o600 in
  (* Two lookups pass; the third fires. *)
  ignore (Api.seg_find ctx ~name:"a");
  ignore (Api.seg_find ctx ~name:"a");
  Alcotest.(check bool) "third call kills" true
    (try
       ignore (Api.seg_find ctx ~name:"a");
       false
     with Injector.Killed k -> k.pid = pid);
  Alcotest.(check bool) "process is dead" false (Process.is_live (Api.process ctx));
  (* The rest of the system is untouched: a new process still works. *)
  let p2 = Process.create ~name:"other" m in
  let ctx2 = Api.context sys p2 (Machine.core m 1) in
  ignore (Api.seg_find ctx2 ~name:"a")

(* ---- Kill_holding_lock: crash inside the critical section ---- *)

let kill_holding_lock backend () =
  let m, sys, ctx = boot ~backend () in
  let rec_ = Recorder.create () in
  Recorder.attach (Machine.sim_ctx m) rec_;
  let vas, seg = make_locked_world ctx in
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  Api.store64 ctx ~va:(Segment.base seg) 7L;
  Alcotest.(check bool) "lock held exclusively" true
    (Segment.lock_state seg = Segment.Exclusive);
  arm m [ Plan.kill_holding_lock ~pid:(Process.pid (Api.process ctx)) ~sid:(Segment.sid seg) ];
  (* A second process cannot get in while the doomed holder lives. *)
  let p2 = Process.create ~name:"second" m in
  let ctx2 = Api.context sys p2 (Machine.core m 1) in
  let vh2 = Api.vas_attach ctx2 vas in
  Alcotest.(check bool) "switch blocked by wedged lock" true
    (match Api.Checked.vas_switch ctx2 vh2 with
    | Error f -> f.code = Error.Would_block
    | Ok () -> false);
  (* The victim's next syscall, issued while holding the lock, kills it. *)
  Alcotest.(check bool) "killed at next syscall" true
    (try
       Api.switch_home ctx;
       false
     with Injector.Killed _ -> true);
  Alcotest.(check bool) "lock reclaimed" true (Segment.lock_state seg = Segment.Unlocked);
  Alcotest.(check bool) "victim dead" false (Process.is_live (Api.process ctx));
  (* The orphaned VAS survives its creator: the second process attaches
     and sees the data written before the crash. *)
  Api.vas_switch ctx2 vh2;
  Alcotest.(check int64) "orphan data survives" 7L (Api.load64 ctx2 ~va:(Segment.base seg));
  Api.switch_home ctx2;
  let met = Recorder.metrics rec_ in
  Alcotest.(check int) "one crash recorded" 1 (Metrics.crashes met);
  Alcotest.(check bool) "lock reclaim recorded" true (Metrics.lock_reclaims met >= 1)

(* ---- Crash during vas_switch itself ---- *)

let crash_during_switch backend () =
  let m, _, ctx = boot ~backend () in
  let vas, seg = make_locked_world ctx in
  let vh = Api.vas_attach ctx vas in
  arm m
    [ Plan.kill_at_syscall ~pid:(Process.pid (Api.process ctx)) ~nr:(Sys.number Vas_switch) () ];
  Alcotest.(check bool) "killed entering the switch" true
    (try
       Api.vas_switch ctx vh;
       false
     with Injector.Killed _ -> true);
  (* Died before acquiring anything: nothing to reclaim, nothing held. *)
  Alcotest.(check bool) "lock never taken" true (Segment.lock_state seg = Segment.Unlocked);
  Alcotest.(check bool) "victim dead" false (Process.is_live (Api.process ctx))

(* ---- A surviving thread of the same attachment keeps the locks ---- *)

let test_surviving_thread_keeps_locks () =
  let m = Machine.create tiny in
  let sys = Api.boot m in
  let p = Process.create ~name:"mt" m in
  let t1 = Api.context sys p (Machine.core m 0) in
  let _thread = Process.spawn_thread p in
  let t2 = Api.context sys p (Machine.core m 1) in
  let vas, seg = make_locked_world t1 in
  let vh = Api.vas_attach t1 vas in
  Api.vas_switch t1 vh;
  Api.vas_switch t2 vh;
  Api.store64 t1 ~va:(Segment.base seg) 9L;
  (* Thread 2 dies. Thread 1 is still inside the attachment, so the
     locks must NOT be reclaimed out from under it. *)
  Api.crash_thread t2;
  Alcotest.(check bool) "lock still held by survivor" true
    (Segment.lock_state seg = Segment.Exclusive);
  Alcotest.(check int64) "survivor still reads its data" 9L
    (Api.load64 t1 ~va:(Segment.base seg));
  Alcotest.(check bool) "process still live" true (Process.is_live p);
  (* Last thread out releases as usual. *)
  Api.switch_home t1;
  Alcotest.(check bool) "released on last exit" true
    (Segment.lock_state seg = Segment.Unlocked)

(* ---- Would_block storms and the bounded retry loop ---- *)

let test_storm_and_retry () =
  let m, _, ctx = boot () in
  let vas, _ = make_locked_world ctx in
  let vh = Api.vas_attach ctx vas in
  arm m
    [
      Plan.would_block_storm ~pid:(Process.pid (Api.process ctx)) ~nr:(Sys.number Vas_switch)
        ~count:3;
    ];
  let before = Core.cycles (Api.core ctx) in
  Alcotest.(check bool) "retry rides out the storm" true
    (Api.Checked.switch_retry ~attempts:5 ~backoff_cycles:1_000 ctx vh = Ok ());
  (* Three failed attempts charged linear backoff: 1k + 2k + 3k. *)
  Alcotest.(check bool) "backoff charged" true (Core.cycles (Api.core ctx) - before >= 6_000);
  Api.switch_home ctx

let test_storm_exhausts_budget () =
  let m, _, ctx = boot () in
  let vas, _ = make_locked_world ctx in
  let vh = Api.vas_attach ctx vas in
  arm m
    [
      Plan.would_block_storm ~pid:(Process.pid (Api.process ctx)) ~nr:(Sys.number Vas_switch)
        ~count:5;
    ];
  Alcotest.(check bool) "budget of 2 is not enough for a storm of 5" true
    (match Api.Checked.switch_retry ~attempts:2 ctx vh with
    | Error f -> f.code = Error.Would_block
    | Ok () -> false);
  Alcotest.(check bool) "victim survives a transient fault" true
    (Process.is_live (Api.process ctx))

(* ---- Grow_fail ---- *)

let test_grow_fail () =
  let m, _, ctx = boot () in
  let seg = Api.seg_alloc_anywhere ctx ~name:"g" ~size:(Size.kib 256) ~mode:0o600 in
  arm m [ Plan.grow_fail ~nth:1 ];
  Alcotest.(check bool) "first grow fails with Capacity" true
    (match Api.Checked.seg_ctl ctx (`Grow (seg, Size.kib 256)) with
    | Error f -> f.code = Error.Capacity
    | Ok () -> false);
  Alcotest.(check int) "size unchanged" (Size.kib 256) (Segment.size seg);
  (* The plan is spent: the second grow succeeds. *)
  Api.seg_ctl ctx (`Grow (seg, Size.kib 256));
  Alcotest.(check int) "second grow lands" (Size.kib 512) (Segment.size seg)

(* ---- Torn writes, CRC, and journal recovery ---- *)

let build_persist_world () =
  let m, sys, ctx = boot () in
  let vas, seg = make_locked_world ctx in
  ignore vas;
  let vh = Api.vas_attach ctx (Api.vas_find ctx ~name:"shared") in
  Api.vas_switch ctx vh;
  Api.store64 ctx ~va:(Segment.base seg) 123L;
  Api.switch_home ctx;
  (m, sys, ctx)

let test_torn_write_detected () =
  let m, sys, _ = build_persist_world () in
  let inj = Injector.create [ Plan.torn_write ~save:1 () ] in
  Injector.attach (Machine.sim_ctx m) inj;
  let good = ref Bytes.empty in
  (* First save is torn; note the plan only affects save #1. *)
  let torn = Persist.save sys in
  good := Persist.save sys;
  Alcotest.(check bool) "torn image is shorter" true
    (Bytes.length torn < Bytes.length !good);
  Alcotest.(check bool) "torn image is not committed" false (Persist.committed torn);
  Alcotest.(check bool) "good image is committed" true (Persist.committed !good);
  Alcotest.(check bool) "restore of a torn image faults with Invalid" true
    (let _, sys2, _ = boot () in
     try
       Persist.restore sys2 torn;
       false
     with Error.Fault f -> f.code = Error.Invalid);
  (* The resolved offset is recorded for replay. *)
  Alcotest.(check bool) "fired plan records the resolved offset" true
    (match Injector.fired inj with
    | [ Plan.Torn_write { at_byte; _ } ] -> at_byte >= 0 && at_byte < Bytes.length !good
    | _ -> false)

let test_bitflip_detected () =
  let _, sys, _ = build_persist_world () in
  let image = Persist.save sys in
  let evil = Bytes.copy image in
  let at = Bytes.length evil / 2 in
  Bytes.set evil at (Char.chr (Char.code (Bytes.get evil at) lxor 0x40));
  Alcotest.(check bool) "flipped image is not committed" false (Persist.committed evil);
  Alcotest.(check bool) "restore of a flipped image faults with Invalid" true
    (let _, sys2, _ = boot () in
     try
       Persist.restore sys2 evil;
       false
     with Error.Fault f -> f.code = Error.Invalid);
  (* The pristine image still restores. *)
  let _, sys3, ctx3 = boot () in
  Persist.restore sys3 image;
  let vh = Api.vas_attach ctx3 (Api.vas_find ctx3 ~name:"shared") in
  Api.vas_switch ctx3 vh;
  let seg = Api.seg_find ctx3 ~name:"shared.data" in
  Alcotest.(check int64) "data back" 123L (Api.load64 ctx3 ~va:(Segment.base seg))

let test_journal_recovers_last_committed () =
  let m, sys, _ = build_persist_world () in
  let img1 = Persist.save sys in
  Injector.attach (Machine.sim_ctx m) (Injector.create [ Plan.torn_write ~save:1 () ]);
  let torn = Persist.save sys in
  let j = Persist.Journal.append (Persist.Journal.append Persist.Journal.empty img1) torn in
  Alcotest.(check int) "both entries structurally present" 2 (Persist.Journal.entries j);
  Alcotest.(check bool) "recovery skips the torn entry" true
    (Persist.Journal.recover j = Some img1);
  (* A torn journal tail (writer died mid-append) is also survivable. *)
  let j2 = Bytes.sub j 0 (Bytes.length j - 7) in
  Alcotest.(check bool) "torn tail ignored" true (Persist.Journal.recover j2 = Some img1);
  Alcotest.(check bool) "empty journal has nothing to offer" true
    (Persist.Journal.recover Persist.Journal.empty = None)

(* ---- ASID recycling through the registry free-list ---- *)

let test_asid_recycled_after_destroy () =
  let _, _, ctx = boot () in
  let vas = Api.vas_create ctx ~name:"tagged" ~mode:0o600 in
  Api.vas_ctl ctx (`Request_tag vas);
  let tag = Option.get (Vas.tag vas) in
  Api.vas_ctl ctx (`Destroy vas);
  let vas2 = Api.vas_create ctx ~name:"tagged2" ~mode:0o600 in
  Api.vas_ctl ctx (`Request_tag vas2);
  Alcotest.(check (option int)) "released tag is reused" (Some tag) (Vas.tag vas2)

(* ---- Zero-cost and determinism contracts ---- *)

(* One small deterministic workload; returns the full text trace plus
   the final core cycle counter. [plan] is built once the process
   exists, so it can name the real pid. *)
let workload ~plan () =
  let m = Machine.create tiny in
  let rec_ = Recorder.create () in
  Recorder.attach (Machine.sim_ctx m) rec_;
  let sys = Api.boot m in
  let p = Process.create ~name:"w" m in
  let ctx = Api.context sys p (Machine.core m 0) in
  (match plan with
  | Some (mk, seed) ->
    Injector.attach (Machine.sim_ctx m) (Injector.create ~seed (mk ~pid:(Process.pid p)))
  | None -> ());
  let vas, seg = make_locked_world ctx in
  let vh = Api.vas_attach ctx vas in
  (match Api.Checked.switch_retry ~attempts:6 ~backoff_cycles:500 ctx vh with
  | Ok () -> ()
  | Error f -> raise (Error.Fault f));
  Api.store64 ctx ~va:(Segment.base seg) 55L;
  Api.switch_home ctx;
  ignore (Api.seg_find ctx ~name:"shared.data");
  Printf.sprintf "%s\ncycles=%d" (Trace.to_text (Recorder.events rec_))
    (Core.cycles (Api.core ctx))

let test_empty_plan_is_free () =
  (* The injector hooks charge nothing and emit nothing unless a fault
     actually fires: an installed-but-empty plan leaves the trace and
     the cycle counters byte-identical to no injector at all. *)
  Alcotest.(check string) "empty plan = no plan" (workload ~plan:None ())
    (workload ~plan:(Some ((fun ~pid:_ -> []), 1)) ())

let test_injected_run_is_reproducible () =
  (* Same plan + same seed => byte-identical trace, serially and across
     domains (-j 1 vs -j 4). The storm makes the injector actually fire
     on the measured path. *)
  let mk ~pid = [ Plan.would_block_storm ~pid ~nr:(Sys.number Vas_switch) ~count:3 ] in
  let serial = workload ~plan:(Some (mk, 7)) () in
  let pool = Par.create ~size:4 () in
  let results = Par.map_list pool (fun () -> workload ~plan:(Some (mk, 7)) ()) [ (); (); (); () ] in
  List.iteri
    (fun i r -> Alcotest.(check string) (Printf.sprintf "domain %d matches serial" i) serial r)
    results

(* ---- Composed-plan replay fidelity (Injector.fired) ---- *)

(* A storm, a torn write and a kill all firing in one run.
   [Injector.fired] must capture the whole crop in firing order with
   resolved values, and replaying that fired plan under the same seed
   must be byte-identical to the original run — the contract the
   exploration harness's violation keys stand on. *)
let composed_workload ~plan ~seed () =
  let m = Machine.create tiny in
  let rec_ = Recorder.create () in
  Recorder.attach (Machine.sim_ctx m) rec_;
  let sys = Api.boot m in
  let p = Process.create ~name:"w" m in
  let ctx = Api.context sys p (Machine.core m 0) in
  let inj = Injector.create ~seed (plan ~pid:(Process.pid p)) in
  Injector.attach (Machine.sim_ctx m) inj;
  let _vas, seg = make_locked_world ctx in
  let vh = Api.vas_attach ctx (Api.vas_find ctx ~name:"shared") in
  (match Api.Checked.switch_retry ~attempts:6 ~backoff_cycles:500 ctx vh with
  | Ok () ->
    Api.store64 ctx ~va:(Segment.base seg) 55L;
    Api.switch_home ctx
  | Error _ -> ());
  let image = Persist.save sys in
  (try ignore (Api.seg_find ctx ~name:"shared.data") with Injector.Killed _ -> ());
  let text =
    Printf.sprintf "%s\nimage=%d committed=%b cycles=%d"
      (Trace.to_text (Recorder.events rec_))
      (Bytes.length image) (Persist.committed image)
      (Core.cycles (Api.core ctx))
  in
  (text, Injector.fired inj)

let test_composed_plan_replay () =
  let plan ~pid =
    [
      Plan.would_block_storm ~pid ~nr:(Sys.number Vas_switch) ~count:2;
      Plan.torn_write ~save:1 ();
      Plan.kill_at_syscall ~pid ~nr:(Sys.number Seg_find) ~occurrence:1 ();
    ]
  in
  let t1, fired = composed_workload ~plan ~seed:11 () in
  Alcotest.(check int) "all three composed faults fired" 3 (List.length fired);
  Alcotest.(check bool) "storm recorded once with its full count" true
    (List.exists
       (function Plan.Would_block_storm { count; _ } -> count = 2 | _ -> false)
       fired);
  Alcotest.(check bool) "torn write recorded with a resolved offset" true
    (List.exists (function Plan.Torn_write { at_byte; _ } -> at_byte >= 0 | _ -> false) fired);
  let t2, fired2 = composed_workload ~plan:(fun ~pid:_ -> fired) ~seed:11 () in
  Alcotest.(check string) "replaying the fired plan is byte-identical" t1 t2;
  Alcotest.(check string) "the fired crop is a fixed point under replay"
    (Plan.to_string fired) (Plan.to_string fired2)

let suite =
  [
    Alcotest.test_case "kill at nth syscall" `Quick test_kill_at_syscall;
    Alcotest.test_case "kill holding lock (dragonfly)" `Quick (kill_holding_lock Api.Dragonfly);
    Alcotest.test_case "kill holding lock (barrelfish)" `Quick (kill_holding_lock Api.Barrelfish);
    Alcotest.test_case "crash during vas_switch (dragonfly)" `Quick
      (crash_during_switch Api.Dragonfly);
    Alcotest.test_case "crash during vas_switch (barrelfish)" `Quick
      (crash_during_switch Api.Barrelfish);
    Alcotest.test_case "surviving thread keeps locks" `Quick test_surviving_thread_keeps_locks;
    Alcotest.test_case "storm ridden out by switch_retry" `Quick test_storm_and_retry;
    Alcotest.test_case "storm outlasting the retry budget" `Quick test_storm_exhausts_budget;
    Alcotest.test_case "injected grow failure" `Quick test_grow_fail;
    Alcotest.test_case "torn write detected by commit record" `Quick test_torn_write_detected;
    Alcotest.test_case "single bit flip detected by CRC" `Quick test_bitflip_detected;
    Alcotest.test_case "journal falls back to last committed" `Quick
      test_journal_recovers_last_committed;
    Alcotest.test_case "ASID recycled after vas destroy" `Quick test_asid_recycled_after_destroy;
    Alcotest.test_case "empty plan is zero-cost" `Quick test_empty_plan_is_free;
    Alcotest.test_case "composed plan replays byte-identically from fired" `Quick
      test_composed_plan_replay;
    Alcotest.test_case "injected run reproducible across domains" `Quick
      test_injected_run_is_reproducible;
  ]
