(* Barrelfish-backend specifics (sec 4.2): pure user-space SpaceJMP —
   API via service RPCs, switching via capability invocation, page
   tables built from user-retyped memory, reclamation via revocation. *)
open Sj_util
open Sj_core
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Cap = Sj_kernel.Cap
module Layout = Sj_kernel.Layout
module Prot = Sj_paging.Prot

let tiny : Platform.t =
  { Platform.m2 with name = "tiny"; mem_size = Size.mib 256; sockets = 2; cores_per_socket = 2 }

let setup () =
  let m = Machine.create tiny in
  let sys = Api.boot ~backend:Api.Barrelfish m in
  let p = Process.create ~name:"bf" m in
  let ctx = Api.context sys p (Machine.core m 0) in
  (m, sys, p, ctx)

let with_vas ctx =
  let vas = Api.vas_create ctx ~name:"v" ~mode:0o600 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"s" ~size:(Size.mib 1) ~mode:0o600 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  (vas, seg)

let count_vnodes cspace =
  List.length
    (List.filter
       (fun (_, c) -> match Cap.captype c with Cap.Vnode _ -> true | _ -> false)
       (Cap.Cspace.slots cspace))

let test_attach_builds_user_page_tables () =
  let _, _, p, ctx = setup () in
  let vas, _ = with_vas ctx in
  let before = count_vnodes (Process.cspace p) in
  let _vh = Api.vas_attach ctx vas in
  let vnodes = count_vnodes (Process.cspace p) - before in
  (* Root + PDPT/PD/PT chains for common region + the segment: several
     tables, each backed by a user-retyped capability. *)
  Alcotest.(check bool) (Printf.sprintf "%d vnode caps created" vnodes) true (vnodes >= 4)

let test_vas_ref_capability_minted () =
  let _, _, p, ctx = setup () in
  let vas, _ = with_vas ctx in
  let _vh = Api.vas_attach ctx vas in
  let vas_refs =
    List.filter
      (fun (_, c) -> match Cap.captype c with Cap.Vas_ref _ -> true | _ -> false)
      (Cap.Cspace.slots (Process.cspace p))
  in
  Alcotest.(check int) "one VAS capability" 1 (List.length vas_refs);
  (* The minted child is a descendant of the service's root: revoking
     the root revokes it. *)
  let _, child = List.hd vas_refs in
  Alcotest.(check bool) "live before revoke" false (Cap.is_revoked child);
  Api.vas_ctl ctx (`Revoke vas);
  Alcotest.(check bool) "dead after revoke" true (Cap.is_revoked child)

let test_switch_cheaper_than_dragonfly () =
  (* Same workload, both backends: Barrelfish's switch path must be the
     cheaper one (Table 2: 664 vs 1127). *)
  let measure backend =
    let m = Machine.create tiny in
    let sys = Api.boot ~backend m in
    let p = Process.create ~name:"x" m in
    let ctx = Api.context sys p (Machine.core m 0) in
    let vas, _ = with_vas ctx in
    let vh = Api.vas_attach ctx vas in
    Api.vas_switch ctx vh;
    Api.switch_home ctx;
    let core = Api.core ctx in
    let c0 = Core.cycles core in
    Api.vas_switch ctx vh;
    Core.cycles core - c0
  in
  let bf = measure Api.Barrelfish and df = measure Api.Dragonfly in
  Alcotest.(check bool) (Printf.sprintf "bf %d < df %d" bf df) true (bf < df)

let test_retype_discipline () =
  (* The capability system refuses aliasing: the RAM behind a page
     table cannot be retyped twice. *)
  let ram = Cap.create_ram (Sim_ctx.create ()) ~size:4096 in
  let _ = Cap.retype ram ~into:(Cap.Vnode 1) in
  Alcotest.(check bool) "second retype refused" true
    (try
       ignore (Cap.retype ram ~into:Cap.Frame);
       false
     with Sj_abi.Error.Fault f -> f.code = Sj_abi.Error.Invalid)

let suite =
  [
    Alcotest.test_case "attach retypes user memory into page tables" `Quick
      test_attach_builds_user_page_tables;
    Alcotest.test_case "VAS capability minted per attachment" `Quick
      test_vas_ref_capability_minted;
    Alcotest.test_case "switch cheaper than DragonFly" `Quick test_switch_cheaper_than_dragonfly;
    Alcotest.test_case "retype discipline" `Quick test_retype_discipline;
  ]
