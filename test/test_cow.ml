(* Tests for copy-on-write segment snapshots (paper sec 7:
   "copy-on-write, snapshotting, and versioning"). *)
open Sj_util
open Sj_core
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Layout = Sj_kernel.Layout
module Pm = Sj_mem.Phys_mem
module Prot = Sj_paging.Prot

let tiny : Platform.t =
  { Platform.m2 with name = "tiny"; mem_size = Size.mib 256; sockets = 2; cores_per_socket = 2 }

let setup () =
  let m = Machine.create tiny in
  let sys = Api.boot m in
  let p = Process.create ~name:"p0" m in
  let ctx = Api.context sys p (Machine.core m 0) in
  (m, sys, ctx)

(* A VAS with one 1 MiB data segment, switched in, with some content. *)
let with_data ctx =
  let vas = Api.vas_create ctx ~name:"v" ~mode:0o666 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"data" ~size:(Size.mib 1) ~mode:0o666 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  Api.store64 ctx ~va:(Segment.base seg) 111L;
  Api.store64 ctx ~va:(Segment.base seg + Size.kib 512) 222L;
  (vas, seg, vh)

let test_snapshot_shares_frames () =
  let m, _, ctx = setup () in
  let _, seg, _ = with_data ctx in
  let before = Pm.frames_allocated (Machine.mem m) in
  let snap = Api.seg_snapshot ctx seg ~name:"data@1" in
  (* A 1 MiB snapshot allocates no data frames. *)
  Alcotest.(check int) "no frames copied" before (Pm.frames_allocated (Machine.mem m));
  Alcotest.(check int) "same base" (Segment.base seg) (Segment.base snap);
  Alcotest.(check bool) "both marked cow" true (Segment.is_cow seg && Segment.is_cow snap)

let test_snapshot_reads_original_data () =
  let _, _, ctx = setup () in
  let vas, seg, vh = with_data ctx in
  ignore vas;
  let snap = Api.seg_snapshot ctx seg ~name:"data@1" in
  Api.switch_home ctx;
  (* Mount the snapshot in its own VAS. *)
  let vas2 = Api.vas_create ctx ~name:"v@1" ~mode:0o666 in
  Api.seg_attach ctx vas2 snap ~prot:Prot.rw;
  let vh2 = Api.vas_attach ctx vas2 in
  Api.vas_switch ctx vh2;
  Alcotest.(check int64) "snapshot sees original data" 111L
    (Api.load64 ctx ~va:(Segment.base seg));
  Api.switch_home ctx;
  ignore vh

let test_write_isolation () =
  let m, _, ctx = setup () in
  let _, seg, vh = with_data ctx in
  let snap = Api.seg_snapshot ctx seg ~name:"data@1" in
  let vas2 = Api.vas_create ctx ~name:"v@1" ~mode:0o666 in
  Api.seg_attach ctx vas2 snap ~prot:Prot.rw;
  let vh2 = Api.vas_attach ctx vas2 in
  let base = Segment.base seg in
  (* Write through the ORIGINAL: faults, splits, succeeds. *)
  let frames_before = Pm.frames_allocated (Machine.mem m) in
  Api.vas_switch ctx vh;
  Api.store64 ctx ~va:base 999L;
  Alcotest.(check int) "one page split" (frames_before + 1)
    (Pm.frames_allocated (Machine.mem m));
  Alcotest.(check int64) "original sees new value" 999L (Api.load64 ctx ~va:base);
  (* The snapshot still sees the old value. *)
  Api.switch_home ctx;
  Api.vas_switch ctx vh2;
  Alcotest.(check int64) "snapshot unchanged" 111L (Api.load64 ctx ~va:base);
  (* Untouched pages still shared: reading costs no split. *)
  Alcotest.(check int64) "other page intact" 222L (Api.load64 ctx ~va:(base + Size.kib 512));
  (* Write through the SNAPSHOT to the already-split page: it is now the
     sole owner of the original frame — upgrade without copying. *)
  let frames_mid = Pm.frames_allocated (Machine.mem m) in
  Api.store64 ctx ~va:base 333L;
  Alcotest.(check int) "no second copy needed" frames_mid (Pm.frames_allocated (Machine.mem m));
  Alcotest.(check int64) "snapshot write lands" 333L (Api.load64 ctx ~va:base);
  Api.switch_home ctx;
  (* And the original still has its own value. *)
  Api.vas_switch ctx vh;
  Alcotest.(check int64) "original still 999" 999L (Api.load64 ctx ~va:base)

let test_multiple_snapshots () =
  let _, _, ctx = setup () in
  let _, seg, vh = with_data ctx in
  let base = Segment.base seg in
  (* Version 1. *)
  let s1 = Api.seg_snapshot ctx seg ~name:"v1" in
  Api.vas_switch ctx vh;
  Api.store64 ctx ~va:base 2L;
  Api.switch_home ctx;
  (* Version 2. *)
  let s2 = Api.seg_snapshot ctx seg ~name:"v2" in
  Api.vas_switch ctx vh;
  Api.store64 ctx ~va:base 3L;
  Api.switch_home ctx;
  let mount name s =
    let v = Api.vas_create ctx ~name ~mode:0o666 in
    Api.seg_attach ctx v s ~prot:Prot.rw;
    Api.vas_attach ctx v
  in
  let vh1 = mount "m1" s1 and vh2 = mount "m2" s2 in
  Api.vas_switch ctx vh1;
  Alcotest.(check int64) "v1 frozen at 111" 111L (Api.load64 ctx ~va:base);
  Api.switch_home ctx;
  Api.vas_switch ctx vh2;
  Alcotest.(check int64) "v2 frozen at 2" 2L (Api.load64 ctx ~va:base);
  Api.switch_home ctx;
  Api.vas_switch ctx vh;
  Alcotest.(check int64) "head at 3" 3L (Api.load64 ctx ~va:base)

let test_snapshot_heap_state () =
  let _, _, ctx = setup () in
  let vas = Api.vas_create ctx ~name:"v" ~mode:0o666 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"heap" ~size:(Size.mib 1) ~mode:0o666 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  let a = Api.malloc ctx 64 in
  Api.store64 ctx ~va:a 7L;
  Api.switch_home ctx;
  let snap = Api.seg_snapshot ctx seg ~name:"heap@1" in
  (* Allocating in the snapshot must not reuse the original's live
     allocation (the allocator state was copied, not reset). *)
  let vas2 = Api.vas_create ctx ~name:"v2" ~mode:0o666 in
  Api.seg_attach ctx vas2 snap ~prot:Prot.rw;
  let vh2 = Api.vas_attach ctx vas2 in
  Api.vas_switch ctx vh2;
  let b = Api.malloc ctx 64 in
  Alcotest.(check bool) "fresh address" true (b <> a);
  Alcotest.(check int64) "old allocation's data visible in snapshot" 7L (Api.load64 ctx ~va:a);
  (* Freeing the inherited allocation in the snapshot works. *)
  Api.free ctx a;
  Api.switch_home ctx

let test_fault_costs_charged () =
  let _, _, ctx = setup () in
  let _, seg, vh = with_data ctx in
  let _ = Api.seg_snapshot ctx seg ~name:"s" in
  Api.vas_switch ctx vh;
  let core = Api.core ctx in
  let c0 = Core.cycles core in
  Api.store64 ctx ~va:(Segment.base seg) 5L;
  let cow_write = Core.cycles core - c0 in
  let c1 = Core.cycles core in
  Api.store64 ctx ~va:(Segment.base seg + 8) 5L;
  let plain_write = Core.cycles core - c1 in
  Alcotest.(check bool) "COW fault markedly dearer than a plain store" true
    (cow_write > plain_write + 1000)

let test_reads_never_split () =
  let m, _, ctx = setup () in
  let _, seg, vh = with_data ctx in
  let _ = Api.seg_snapshot ctx seg ~name:"s" in
  Api.vas_switch ctx vh;
  let frames = Pm.frames_allocated (Machine.mem m) in
  for i = 0 to 63 do
    ignore (Api.load64 ctx ~va:(Segment.base seg + (i * Addr.page_size)))
  done;
  Alcotest.(check int) "reads shared pages freely" frames (Pm.frames_allocated (Machine.mem m))

let test_snapshot_of_cached_segment_rejected () =
  let _, _, ctx = setup () in
  let vas = Api.vas_create ctx ~name:"v" ~mode:0o666 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"cached" ~size:(Size.mib 1) ~mode:0o666 in
  Api.seg_ctl ctx (`Cache_translations seg);
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Api.seg_snapshot ctx seg ~name:"nope");
       false
     with Sj_abi.Error.Fault f -> f.code = Sj_abi.Error.Invalid)

let test_destroy_order_frees_everything () =
  let m, _, ctx = setup () in
  let _, seg, vh = with_data ctx in
  let snap = Api.seg_snapshot ctx seg ~name:"s" in
  (* Split one page so ownership is mixed, then destroy both. *)
  Api.vas_switch ctx vh;
  Api.store64 ctx ~va:(Segment.base seg) 1L;
  Api.switch_home ctx;
  Api.vas_detach ctx vh;
  Api.seg_ctl ctx (`Destroy snap);
  (* Destroying the snapshot first must not free frames the original
     still owns: the original remains fully readable. *)
  let vas2 = Api.vas_create ctx ~name:"check" ~mode:0o666 in
  Api.seg_attach ctx vas2 seg ~prot:Prot.r;
  let vh2 = Api.vas_attach ctx vas2 in
  Api.vas_switch ctx vh2;
  Alcotest.(check int64) "original intact after snapshot destroy" 1L
    (Api.load64 ctx ~va:(Segment.base seg));
  Api.switch_home ctx;
  Api.vas_detach ctx vh2;
  let before_final = Pm.frames_allocated (Machine.mem m) in
  Api.seg_ctl ctx (`Destroy seg);
  Alcotest.(check bool) "original's frames released" true
    (Pm.frames_allocated (Machine.mem m) < before_final)

let test_cross_core_shootdown () =
  (* A second process on another core has warm, writable TLB entries for
     the segment. Taking a snapshot must shoot those entries down so the
     next write on that core faults into the COW path instead of
     silently writing the shared frame. *)
  let m, sys, ctx_a = setup () in
  let _, seg, vh_a = with_data ctx_a in
  Api.switch_home ctx_a;
  let p2 = Process.create ~name:"other" m in
  let ctx_b = Api.context sys p2 (Machine.core m 1) in
  let vh_b = Api.vas_attach ctx_b (Api.vas_find ctx_b ~name:"v") in
  Api.vas_switch ctx_b vh_b;
  (* Warm core 1's TLB with a writable translation. *)
  Api.store64 ctx_b ~va:(Segment.base seg) 111L;
  Api.switch_home ctx_b;
  ignore vh_a;
  (* Snapshot from core 0. *)
  let snap = Api.seg_snapshot ctx_a seg ~name:"shot" in
  (* Core 1 writes again: must split, leaving the snapshot intact. *)
  Api.vas_switch ctx_b vh_b;
  Api.store64 ctx_b ~va:(Segment.base seg) 555L;
  Api.switch_home ctx_b;
  let vas2 = Api.vas_create ctx_a ~name:"mount" ~mode:0o666 in
  Api.seg_attach ctx_a vas2 snap ~prot:Prot.r;
  let vh_s = Api.vas_attach ctx_a vas2 in
  Api.vas_switch ctx_a vh_s;
  Alcotest.(check int64) "snapshot preserved despite warm remote TLB" 111L
    (Api.load64 ctx_a ~va:(Segment.base seg))

let suite =
  [
    Alcotest.test_case "snapshot shares frames" `Quick test_snapshot_shares_frames;
    Alcotest.test_case "snapshot reads original data" `Quick test_snapshot_reads_original_data;
    Alcotest.test_case "write isolation via COW" `Quick test_write_isolation;
    Alcotest.test_case "multiple versions" `Quick test_multiple_snapshots;
    Alcotest.test_case "heap state inherited" `Quick test_snapshot_heap_state;
    Alcotest.test_case "fault costs charged" `Quick test_fault_costs_charged;
    Alcotest.test_case "reads never split" `Quick test_reads_never_split;
    Alcotest.test_case "cached segments rejected" `Quick test_snapshot_of_cached_segment_rejected;
    Alcotest.test_case "destroy order safe" `Quick test_destroy_order_frees_everything;
    Alcotest.test_case "cross-core TLB shootdown" `Quick test_cross_core_shootdown;
  ]
