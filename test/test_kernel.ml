(* Tests for the kernel substrate: ACLs, capabilities, VM objects,
   vmspaces, processes. *)
open Sj_util
open Sj_kernel
module Machine = Sj_machine.Machine
module Pm = Sj_mem.Phys_mem
module Prot = Sj_paging.Prot
module Page_table = Sj_paging.Page_table
module Error = Sj_abi.Error

(* [true] iff running [f] faults with [code]. *)
let faults code f =
  try
    ignore (f ());
    false
  with Error.Fault e -> Error.equal_code e.code code

let tiny : Sj_machine.Platform.t =
  { Sj_machine.Platform.m2 with name = "tiny"; mem_size = Size.mib 128; sockets = 2; cores_per_socket = 2 }

(* --- ACL --- *)

let test_acl_owner () =
  let acl = Acl.create ~owner:100 ~group:10 ~mode:0o640 in
  let u = Acl.cred ~uid:100 ~gids:[ 10 ] in
  Alcotest.(check bool) "owner read" true (Acl.check acl u `Read);
  Alcotest.(check bool) "owner write" true (Acl.check acl u `Write);
  Alcotest.(check bool) "owner no exec" false (Acl.check acl u `Exec)

let test_acl_group_other () =
  let acl = Acl.create ~owner:100 ~group:10 ~mode:0o640 in
  let g = Acl.cred ~uid:200 ~gids:[ 10 ] in
  let o = Acl.cred ~uid:300 ~gids:[ 30 ] in
  Alcotest.(check bool) "group read" true (Acl.check acl g `Read);
  Alcotest.(check bool) "group no write" false (Acl.check acl g `Write);
  Alcotest.(check bool) "other no read" false (Acl.check acl o `Read)

let test_acl_root_and_entries () =
  let acl = Acl.create ~owner:100 ~group:10 ~mode:0o600 in
  Alcotest.(check bool) "root always" true (Acl.check acl Acl.root `Write);
  let acl = Acl.add_entry acl ~uid:555 Prot.r in
  let entry_user = Acl.cred ~uid:555 ~gids:[ 99 ] in
  Alcotest.(check bool) "ACL entry read" true (Acl.check acl entry_user `Read);
  Alcotest.(check bool) "ACL entry no write" false (Acl.check acl entry_user `Write)

let test_acl_chmod () =
  let acl = Acl.create ~owner:1 ~group:1 ~mode:0o600 in
  let other = Acl.cred ~uid:2 ~gids:[ 2 ] in
  Alcotest.(check bool) "before" false (Acl.check acl other `Read);
  let acl = Acl.chmod acl ~mode:0o604 in
  Alcotest.(check bool) "after" true (Acl.check acl other `Read)

(* --- Capabilities --- *)

let test_cap_retype () =
  let ram = Cap.create_ram (Sim_ctx.create ()) ~size:4096 in
  let frame = Cap.retype ram ~into:Cap.Frame in
  Alcotest.(check bool) "frame type" true (Cap.captype frame = Cap.Frame);
  Alcotest.(check bool) "second retype rejected" true
    (faults Error.Invalid (fun () -> Cap.retype ram ~into:(Cap.Vnode 1)))

let test_cap_mint_diminish () =
  let c = Cap.create_vas_ref (Sim_ctx.create ()) ~vas:1 ~rights:Prot.rw in
  let ro = Cap.mint c ~rights:Prot.r in
  Alcotest.(check bool) "diminished" true (Cap.rights ro = Prot.r);
  Alcotest.(check bool) "amplification rejected" true
    (faults Error.Permission_denied (fun () -> Cap.mint ro ~rights:Prot.rw))

let test_cap_revoke_recursive () =
  let root = Cap.create_vas_ref (Sim_ctx.create ()) ~vas:1 ~rights:Prot.rwx in
  let child = Cap.mint root ~rights:Prot.rw in
  let grandchild = Cap.mint child ~rights:Prot.r in
  Cap.revoke root;
  Alcotest.(check bool) "all revoked" true
    (Cap.is_revoked root && Cap.is_revoked child && Cap.is_revoked grandchild)

let test_cspace_invoke () =
  let cs = Cap.Cspace.create () in
  let c = Cap.create_vas_ref (Sim_ctx.create ()) ~vas:1 ~rights:Prot.r in
  let slot = Cap.Cspace.insert cs c in
  Alcotest.(check bool) "read invoke ok" true (Cap.Cspace.invoke cs ~slot ~access:`Read == c);
  Alcotest.(check bool) "write invoke rejected" true
    (faults Error.Permission_denied (fun () -> Cap.Cspace.invoke cs ~slot ~access:`Write));
  Cap.revoke c;
  Alcotest.(check bool) "revoked invoke rejected" true
    (faults Error.Stale_handle (fun () -> Cap.Cspace.invoke cs ~slot ~access:`Read))

(* --- VM objects & vmspace --- *)

let test_vm_object_reserves () =
  let m = Machine.create tiny in
  let before = Pm.frames_allocated (Machine.mem m) in
  let obj = Vm_object.create m ~size:(Size.kib 64) ~charge_to:None in
  Alcotest.(check int) "16 pages reserved" (before + 16) (Pm.frames_allocated (Machine.mem m));
  Alcotest.(check int) "pages" 16 (Vm_object.pages obj);
  Vm_object.destroy m obj;
  Alcotest.(check int) "released" before (Pm.frames_allocated (Machine.mem m))

let test_vm_object_grow () =
  let m = Machine.create tiny in
  let obj = Vm_object.create m ~size:(Size.kib 16) ~charge_to:None in
  Vm_object.grow m obj ~by_pages:4 ~charge_to:None;
  Alcotest.(check int) "grown" 8 (Vm_object.pages obj)

let test_vmspace_map_unmap () =
  let m = Machine.create tiny in
  let vms = Vmspace.create m ~charge_to:None in
  let obj = Vm_object.create m ~size:(Size.kib 32) ~charge_to:None in
  Vmspace.map_object vms ~charge_to:None ~base:0x100000 ~prot:Prot.rw obj;
  (match Vmspace.find_region vms ~va:0x104000 with
  | Some r -> Alcotest.(check int) "region found" 0x100000 r.base
  | None -> Alcotest.fail "region missing");
  (match Page_table.walk (Vmspace.page_table vms) ~va:0x101000 with
  | Some mapping ->
    Alcotest.(check int) "mapped to object frame"
      (Pm.base_of_frame (Vm_object.frame_at obj ~page:1))
      mapping.pa
  | None -> Alcotest.fail "translation missing");
  Vmspace.unmap_region vms ~charge_to:None ~base:0x100000;
  Alcotest.(check bool) "unmapped" true
    (Page_table.walk (Vmspace.page_table vms) ~va:0x101000 = None);
  Alcotest.(check (list reject)) "no regions" [] (Vmspace.regions vms |> List.map ignore)

let test_vmspace_overlap_rejected () =
  let m = Machine.create tiny in
  let vms = Vmspace.create m ~charge_to:None in
  let obj = Vm_object.create m ~size:(Size.kib 32) ~charge_to:None in
  let obj2 = Vm_object.create m ~size:(Size.kib 32) ~charge_to:None in
  Vmspace.map_object vms ~charge_to:None ~base:0x100000 ~prot:Prot.rw obj;
  Alcotest.(check bool) "overlap raises" true
    (faults Error.Address_conflict (fun () ->
         Vmspace.map_object vms ~charge_to:None ~base:0x104000 ~prot:Prot.rw obj2))

let test_vmspace_charges_costs () =
  let m = Machine.create tiny in
  let core = Machine.core m 0 in
  let vms = Vmspace.create m ~charge_to:(Some core) in
  let obj = Vm_object.create m ~size:(Size.mib 1) ~charge_to:None in
  let c0 = Machine.Core.cycles core in
  Vmspace.map_object vms ~charge_to:(Some core) ~base:0x200000 ~prot:Prot.rw obj;
  let mapped_cost = Machine.Core.cycles core - c0 in
  (* 256 PTEs at 42 cycles each is the floor. *)
  Alcotest.(check bool) "mapping charged" true (mapped_cost >= 256 * 42)

(* Regression: Vmspace.destroy used to free the translation tree
   without charging the PTE clears to anyone — a detach looked ~free
   while map paid full price. Teardown now charges the delta like every
   other page-table mutation. *)
let test_vmspace_destroy_charges () =
  let m = Machine.create tiny in
  let core = Machine.core m 0 in
  let vms = Vmspace.create m ~charge_to:None in
  let obj = Vm_object.create m ~size:(Size.mib 1) ~charge_to:None in
  Vmspace.map_object vms ~charge_to:None ~base:0x200000 ~prot:Prot.rw obj;
  let c0 = Machine.Core.cycles core in
  Vmspace.destroy vms ~charge_to:(Some core);
  let cost = Machine.Core.cycles core - c0 in
  (* 256 leaf PTEs at the pte_clear rate (30 cycles) is the floor; the
     table spine comes on top. *)
  Alcotest.(check bool)
    (Printf.sprintf "teardown charged (%d cycles)" cost)
    true
    (cost >= 256 * 30)

(* Regression: remap_page blindly rewrote a 4 KiB PTE even when the VA
   lay inside a 2 MiB region, corrupting the huge mapping. It now
   raises a typed Invalid fault for 2 MiB regions and keeps working for
   4 KiB ones. *)
let test_remap_page_granularity () =
  let m = Machine.create tiny in
  let vms = Vmspace.create m ~charge_to:None in
  let huge = Vm_object.create ~contiguous:true m ~size:(Size.mib 2) ~charge_to:None in
  Vmspace.map_object vms ~charge_to:None ~base:(Size.mib 4) ~page:Page_table.P2M
    ~prot:Prot.rw huge;
  let frame = (Pm.alloc_frames (Machine.mem m) ~n:1).(0) in
  Alcotest.(check bool) "remap inside 2 MiB region faults Invalid" true
    (faults Error.Invalid (fun () ->
         Vmspace.remap_page vms ~charge_to:None ~va:(Size.mib 4 + Size.kib 4) ~frame
           ~prot:Prot.rw));
  (* The 2 MiB translation is untouched. *)
  (match Page_table.walk (Vmspace.page_table vms) ~va:(Size.mib 4 + Size.kib 4) with
  | Some mapping ->
    Alcotest.(check bool) "huge mapping intact" true (mapping.size = Page_table.P2M)
  | None -> Alcotest.fail "huge mapping lost");
  (* The 4 KiB path still repairs translations. *)
  let small = Vm_object.create m ~size:(Size.kib 16) ~charge_to:None in
  Vmspace.map_object vms ~charge_to:None ~base:0x100000 ~prot:Prot.rw small;
  Vmspace.remap_page vms ~charge_to:None ~va:0x101000 ~frame ~prot:Prot.r;
  match Page_table.walk (Vmspace.page_table vms) ~va:0x101000 with
  | Some mapping ->
    Alcotest.(check int) "retargeted frame" (Pm.base_of_frame frame) mapping.pa
  | None -> Alcotest.fail "4 KiB translation missing"

(* --- Process --- *)

let test_process_layout () =
  let m = Machine.create tiny in
  let p = Process.create ~name:"init" m in
  let regions = Process.private_regions p in
  Alcotest.(check int) "text+data+stack" 3 (List.length regions);
  let names = List.filter_map (fun (r : Vmspace.region) -> r.region_name) regions in
  Alcotest.(check (list string)) "names" [ "text"; "data"; "stack0" ] names;
  let th = Process.main_thread p in
  Alcotest.(check bool) "stack below limit" true (th.stack_base < Layout.private_limit)

let test_process_threads () =
  let m = Machine.create tiny in
  let p = Process.create ~name:"worker" m in
  let t1 = Process.spawn_thread p in
  let t2 = Process.spawn_thread p in
  Alcotest.(check int) "three threads" 3 (List.length (Process.threads p));
  Alcotest.(check bool) "stacks descend" true
    (t2.stack_base < t1.stack_base && t1.stack_base < (Process.main_thread p).stack_base)

let test_process_exit_releases () =
  let m = Machine.create tiny in
  let before = Pm.frames_allocated (Machine.mem m) in
  let p = Process.create ~name:"short" m in
  Process.exit p;
  Alcotest.(check int) "all memory released" before (Pm.frames_allocated (Machine.mem m));
  Alcotest.(check bool) "not live" false (Process.is_live p)

let test_layout_disjoint () =
  let ctx = Sim_ctx.create () in
  let b1 = Layout.next_global_base ctx ~size:(Size.mib 4) in
  let b2 = Layout.next_global_base ctx ~size:(Size.gib 2) in
  let b3 = Layout.next_global_base ctx ~size:(Size.mib 1) in
  Alcotest.(check bool) "global range" true (Layout.is_global b1 && Layout.is_global b2);
  Alcotest.(check bool) "1 GiB aligned" true
    (b1 mod Size.gib 1 = 0 && b2 mod Size.gib 1 = 0 && b3 mod Size.gib 1 = 0);
  Alcotest.(check bool) "disjoint" true (b2 >= b1 + Size.gib 1 && b3 >= b2 + Size.gib 2);
  Alcotest.(check bool) "private vs global disjoint" true
    (not (Layout.is_global Layout.text_base) && not (Layout.is_private b1))

let suite =
  [
    Alcotest.test_case "ACL owner bits" `Quick test_acl_owner;
    Alcotest.test_case "ACL group/other" `Quick test_acl_group_other;
    Alcotest.test_case "ACL root + entries" `Quick test_acl_root_and_entries;
    Alcotest.test_case "ACL chmod" `Quick test_acl_chmod;
    Alcotest.test_case "cap retype" `Quick test_cap_retype;
    Alcotest.test_case "cap mint diminishes" `Quick test_cap_mint_diminish;
    Alcotest.test_case "cap revoke recursive" `Quick test_cap_revoke_recursive;
    Alcotest.test_case "cspace invoke" `Quick test_cspace_invoke;
    Alcotest.test_case "vm_object reserves frames" `Quick test_vm_object_reserves;
    Alcotest.test_case "vm_object grow" `Quick test_vm_object_grow;
    Alcotest.test_case "vmspace map/unmap" `Quick test_vmspace_map_unmap;
    Alcotest.test_case "vmspace overlap rejected" `Quick test_vmspace_overlap_rejected;
    Alcotest.test_case "vmspace charges costs" `Quick test_vmspace_charges_costs;
    Alcotest.test_case "vmspace destroy charges teardown" `Quick test_vmspace_destroy_charges;
    Alcotest.test_case "remap_page is 4 KiB-granular" `Quick test_remap_page_granularity;
    Alcotest.test_case "process layout" `Quick test_process_layout;
    Alcotest.test_case "process threads" `Quick test_process_threads;
    Alcotest.test_case "process exit releases memory" `Quick test_process_exit_releases;
    Alcotest.test_case "layout: disjoint global bases" `Quick test_layout_disjoint;
  ]
