(* Fast-path equivalence oracle.

   The machine's host-side fast path (per-core MRU translation cache,
   software page-walk cache, batched bulk accesses) must be *bit-identical*
   to the slow path: same data, same simulated cycles, same TLB and
   page-table statistics. These tests drive two machines -- one created
   with ~fast:true, one with ~fast:false -- through identical random
   programs of map / unmap / protect / switch / access / flush operations
   and fail on the first divergence. *)
open Sj_util
open Sj_machine
module Core = Machine.Core
module Pm = Sj_mem.Phys_mem
module Page_table = Sj_paging.Page_table
module Prot = Sj_paging.Prot
module Pkey = Sj_paging.Pkey
module Tlb = Sj_tlb.Tlb

let tiny : Platform.t =
  {
    Platform.m2 with
    name = "tiny";
    mem_size = Size.mib 64;
    sockets = 2;
    cores_per_socket = 2;
  }

(* The VA pool: [n_slots] regions of 4 pages each, plus one 2 MiB slot. *)
let n_slots = 6
let slot_pages = 4
let slot_bytes = slot_pages * Addr.page_size
let slot_base s = 0x4000_0000 + (s * 0x10000)
let huge_base = 0x8000_0000

type op =
  | Map of int * bool * bool (* slot, writable, global *)
  | Unmap of int
  | Protect of int * bool (* slot, writable *)
  | Switch of int (* TLB tag 0..3 *)
  | Load8 of int * int (* slot, offset *)
  | Store8 of int * int * int
  | Load64 of int * int
  | Load_bytes of int * int * int (* slot, offset, len *)
  | Store_bytes of int * int * int
  | Memset of int * int * int * int (* slot, offset, len, byte *)
  | Memcpy of int * int * int * int * int (* dst slot/off, src slot/off, len *)
  | Touch of int * int * bool (* slot, offset, write *)
  | Huge_map
  | Huge_load of int (* offset within the 2 MiB page *)
  | Inval_page of int * int (* slot, page *)
  | Flush_nonglobal
  | Flush_tag of int
  | Set_key of int * int (* slot, protection key (with shootdown) *)
  | Pkru of int (* 0 = unrestricted; k = compartment holding only k *)

let op_to_string = function
  | Map (s, w, g) -> Printf.sprintf "Map(%d,w=%b,g=%b)" s w g
  | Unmap s -> Printf.sprintf "Unmap(%d)" s
  | Protect (s, w) -> Printf.sprintf "Protect(%d,w=%b)" s w
  | Switch t -> Printf.sprintf "Switch(%d)" t
  | Load8 (s, o) -> Printf.sprintf "Load8(%d,%d)" s o
  | Store8 (s, o, v) -> Printf.sprintf "Store8(%d,%d,%d)" s o v
  | Load64 (s, o) -> Printf.sprintf "Load64(%d,%d)" s o
  | Load_bytes (s, o, l) -> Printf.sprintf "Load_bytes(%d,%d,%d)" s o l
  | Store_bytes (s, o, l) -> Printf.sprintf "Store_bytes(%d,%d,%d)" s o l
  | Memset (s, o, l, b) -> Printf.sprintf "Memset(%d,%d,%d,%d)" s o l b
  | Memcpy (d, dof, s, sof, l) -> Printf.sprintf "Memcpy(%d.%d<-%d.%d,%d)" d dof s sof l
  | Touch (s, o, w) -> Printf.sprintf "Touch(%d,%d,w=%b)" s o w
  | Huge_map -> "Huge_map"
  | Huge_load o -> Printf.sprintf "Huge_load(%d)" o
  | Inval_page (s, p) -> Printf.sprintf "Inval_page(%d,%d)" s p
  | Flush_nonglobal -> "Flush_nonglobal"
  | Flush_tag t -> Printf.sprintf "Flush_tag(%d)" t
  | Set_key (s, k) -> Printf.sprintf "Set_key(%d,%d)" s k
  | Pkru k -> Printf.sprintf "Pkru(%d)" k

type outcome =
  | R_unit
  | R_int of int
  | R_i64 of int64
  | R_bytes of string
  | R_fault of string

type state = {
  m : Machine.t;
  core : Core.core;
  pt : Page_table.t;
  mapped : bool array; (* shadow: which slots hold a mapping *)
  mutable huge_mapped : bool;
}

let make_state ~fast =
  let m = Machine.create ~fast tiny in
  let pt = Page_table.create (Machine.mem m) in
  let core = Machine.core m 0 in
  Core.set_page_table core ~tag:1 (Some pt);
  { m; core; pt; mapped = Array.make n_slots false; huge_mapped = false }

(* Run one op, catching faults as comparable outcomes. Ops that would
   corrupt the shadow (double map, unmap of unmapped) are skipped
   deterministically, so both machines always see the same sequence. *)
let exec st op =
  try
    match op with
    | Map (s, w, g) ->
      if st.mapped.(s) then R_unit
      else begin
        let frames = Pm.alloc_frames (Machine.mem st.m) ~n:slot_pages in
        let prot = if w then Prot.rw else Prot.r in
        Array.iteri
          (fun i f ->
            Page_table.map ~global:g st.pt
              ~va:(slot_base s + (i * Addr.page_size))
              ~pa:(Pm.base_of_frame f) ~prot ~size:Page_table.P4K)
          frames;
        st.mapped.(s) <- true;
        R_unit
      end
    | Unmap s ->
      if not st.mapped.(s) then R_unit
      else begin
        Page_table.unmap_range st.pt ~va:(slot_base s) ~pages:slot_pages;
        (* Shootdown so stale entries cannot reach freed frames; frames
           are intentionally leaked to keep allocation order in
           lockstep across both machines. *)
        for i = 0 to slot_pages - 1 do
          Tlb.invalidate_page (Core.tlb st.core) ~va:(slot_base s + (i * Addr.page_size))
        done;
        st.mapped.(s) <- false;
        R_unit
      end
    | Protect (s, w) ->
      if not st.mapped.(s) then R_unit
      else begin
        let prot = if w then Prot.rw else Prot.r in
        for i = 0 to slot_pages - 1 do
          Page_table.protect st.pt
            ~va:(slot_base s + (i * Addr.page_size))
            ~size:Page_table.P4K ~prot
        done;
        (* No TLB shootdown: stale protections must diverge identically
           (or not at all) on both paths. *)
        R_unit
      end
    | Switch tag ->
      Core.set_page_table st.core ~tag (Some st.pt);
      R_unit
    | Load8 (s, o) -> R_int (Core.load8 st.core ~va:(slot_base s + o))
    | Store8 (s, o, v) ->
      Core.store8 st.core ~va:(slot_base s + o) v;
      R_unit
    | Load64 (s, o) -> R_i64 (Core.load64 st.core ~va:(slot_base s + min o (slot_bytes - 8)))
    | Load_bytes (s, o, l) ->
      let l = max 1 (min l (slot_bytes - o)) in
      R_bytes (Bytes.to_string (Core.load_bytes st.core ~va:(slot_base s + o) ~len:l))
    | Store_bytes (s, o, l) ->
      let l = max 1 (min l (slot_bytes - o)) in
      let data = Bytes.init l (fun i -> Char.chr ((i * 31) + o land 0xff)) in
      Core.store_bytes st.core ~va:(slot_base s + o) data;
      R_unit
    | Memset (s, o, l, b) ->
      let l = max 1 (min l (slot_bytes - o)) in
      Core.memset st.core ~va:(slot_base s + o) ~len:l (Char.chr b);
      R_unit
    | Memcpy (d, dof, s, sof, l) ->
      let l = max 1 (min l (min (slot_bytes - dof) (slot_bytes - sof))) in
      Core.memcpy st.core ~dst:(slot_base d + dof) ~src:(slot_base s + sof) ~len:l;
      R_unit
    | Touch (s, o, w) ->
      Core.touch st.core ~va:(slot_base s + o)
        ~access:(if w then Machine.Write else Machine.Read);
      R_unit
    | Huge_map ->
      if st.huge_mapped then R_unit
      else begin
        let frames =
          Pm.alloc_frames_contiguous ~align:512 (Machine.mem st.m) ~n:512
        in
        Page_table.map st.pt ~va:huge_base
          ~pa:(Pm.base_of_frame frames.(0))
          ~prot:Prot.rw ~size:Page_table.P2M;
        st.huge_mapped <- true;
        R_unit
      end
    | Huge_load o -> R_int (Core.load8 st.core ~va:(huge_base + o))
    | Inval_page (s, p) ->
      Tlb.invalidate_page (Core.tlb st.core) ~va:(slot_base s + (p * Addr.page_size));
      R_unit
    | Flush_nonglobal ->
      Tlb.flush_nonglobal (Core.tlb st.core);
      R_unit
    | Flush_tag tag ->
      Tlb.flush_tag (Core.tlb st.core) ~tag;
      R_unit
    | Set_key (s, k) ->
      if not st.mapped.(s) then R_unit
      else begin
        (* Retag with shootdown, as pkey_assign does: the *tag* is
           cached with translations, so changing it must invalidate. *)
        for i = 0 to slot_pages - 1 do
          let va = slot_base s + (i * Addr.page_size) in
          Page_table.set_key st.pt ~va ~size:Page_table.P4K ~key:k;
          Tlb.invalidate_page (Core.tlb st.core) ~va
        done;
        R_unit
      end
    | Pkru k ->
      (* Key-register writes never flush anything: rights changes must
         take effect on cached translations via the hit-time check. *)
      let reg =
        if k = 0 then Pkey.default
        else
          List.fold_left
            (fun reg j -> if j = k then reg else Pkey.set reg ~key:j Pkey.Denied)
            Pkey.default
            (List.init Pkey.max_key (fun i -> i + 1))
      in
      Core.set_pkru st.core reg;
      R_unit
  with
  | Machine.Key_fault { va; access } ->
    R_fault
      (Printf.sprintf "key:%x:%s" va
         (match access with Machine.Read -> "r" | Machine.Write -> "w"))
  | Machine.Page_fault { va; access } ->
    R_fault
      (Printf.sprintf "page:%x:%s" va
         (match access with Machine.Read -> "r" | Machine.Write -> "w"))
  | Machine.Protection_fault { va; access } ->
    R_fault
      (Printf.sprintf "prot:%x:%s" va
         (match access with Machine.Read -> "r" | Machine.Write -> "w"))
  | Invalid_argument msg -> R_fault ("invalid:" ^ msg)

let check_tlb_stats ctx (a : Tlb.stats) (b : Tlb.stats) =
  if
    a.hits <> b.hits || a.misses <> b.misses || a.insertions <> b.insertions
    || a.evictions <> b.evictions || a.flushes <> b.flushes
    || a.flushed_entries <> b.flushed_entries
  then
    QCheck.Test.fail_reportf
      "%s: TLB stats diverge: fast h=%d m=%d i=%d e=%d f=%d fe=%d / slow h=%d m=%d i=%d e=%d f=%d fe=%d"
      ctx a.hits a.misses a.insertions a.evictions a.flushes a.flushed_entries b.hits
      b.misses b.insertions b.evictions b.flushes b.flushed_entries

let check_pt_stats ctx (a : Page_table.stats) (b : Page_table.stats) =
  if
    a.tables_allocated <> b.tables_allocated || a.tables_freed <> b.tables_freed
    || a.pte_writes <> b.pte_writes || a.pte_clears <> b.pte_clears
  then QCheck.Test.fail_reportf "%s: page-table stats diverge" ctx

(* Run [ops] on a fast and a slow machine in lockstep, comparing the
   outcome and cycle clock after every step and all stats at the end. *)
let run_both ops =
  let fast = make_state ~fast:true in
  let slow = make_state ~fast:false in
  List.iteri
    (fun i op ->
      let a = exec fast op in
      let b = exec slow op in
      if a <> b then
        QCheck.Test.fail_reportf "op %d (%s): outcomes diverge" i (op_to_string op);
      let ca = Core.cycles fast.core and cb = Core.cycles slow.core in
      if ca <> cb then
        QCheck.Test.fail_reportf "op %d (%s): cycles diverge fast=%d slow=%d" i
          (op_to_string op) ca cb)
    ops;
  check_tlb_stats "end" (Tlb.stats (Core.tlb fast.core)) (Tlb.stats (Core.tlb slow.core));
  check_pt_stats "end" (Page_table.stats fast.pt) (Page_table.stats slow.pt);
  true

let gen_op =
  let open QCheck.Gen in
  let slot = int_bound (n_slots - 1) in
  let off = int_bound (slot_bytes - 1) in
  let len = int_bound 9000 in
  frequency
    [
      (4, map3 (fun s w g -> Map (s, w, g)) slot bool bool);
      (2, map (fun s -> Unmap s) slot);
      (2, map2 (fun s w -> Protect (s, w)) slot bool);
      (2, map (fun t -> Switch t) (int_bound 3));
      (4, map2 (fun s o -> Load8 (s, o)) slot off);
      (4, map3 (fun s o v -> Store8 (s, o, v)) slot off (int_bound 255));
      (2, map2 (fun s o -> Load64 (s, o)) slot off);
      (4, map3 (fun s o l -> Load_bytes (s, o, l)) slot off len);
      (4, map3 (fun s o l -> Store_bytes (s, o, l)) slot off len);
      ( 3,
        map3
          (fun s (o, l) b -> Memset (s, o, l, b))
          slot (pair off len) (int_bound 255) );
      ( 3,
        map3
          (fun (d, dof) (s, sof) l -> Memcpy (d, dof, s, sof, l))
          (pair slot off) (pair slot off) len );
      (2, map3 (fun s o w -> Touch (s, o, w)) slot off bool);
      (1, return Huge_map);
      (2, map (fun o -> Huge_load o) (int_bound ((Size.mib 2) - 1)));
      (1, map2 (fun s p -> Inval_page (s, p)) slot (int_bound (slot_pages - 1)));
      (1, return Flush_nonglobal);
      (1, map (fun t -> Flush_tag t) (int_bound 3));
      (2, map2 (fun s k -> Set_key (s, k)) slot (int_bound 3));
      (2, map (fun k -> Pkru k) (int_bound 3));
    ]

let arb_program =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map op_to_string ops))
    QCheck.Gen.(list_size (int_range 20 80) gen_op)

let prop_fast_slow_equivalent =
  QCheck.Test.make ~name:"fast and slow paths are bit-identical" ~count:40 arb_program
    run_both

(* Deterministic regressions for the trickiest corners. *)

let test_page_crossing_bulk () =
  Alcotest.(check bool) "bulk ops crossing pages" true
    (run_both
       [
         Map (0, true, false);
         Store_bytes (0, Addr.page_size - 100, 300);
         Load_bytes (0, Addr.page_size - 100, 300);
         Memset (0, Addr.page_size - 7, 20, 0xAB);
         Load_bytes (0, 0, slot_bytes);
         Load64 (0, Addr.page_size - 4);
       ])

let test_overlapping_memcpy () =
  Alcotest.(check bool) "overlapping memcpy" true
    (run_both
       [
         Map (1, true, false);
         Store_bytes (1, 0, 9000);
         Memcpy (1, 100, 1, 0, 8192); (* forward overlap across chunks *)
         Load_bytes (1, 0, slot_bytes);
         Memcpy (1, 0, 1, 50, 5000); (* backward overlap *)
         Load_bytes (1, 0, slot_bytes);
       ])

let test_protection_change_equivalent () =
  Alcotest.(check bool) "stale-TLB protection behaviour identical" true
    (run_both
       [
         Map (2, true, false);
         Store8 (2, 10, 42);
         Protect (2, false);
         Store8 (2, 10, 43); (* stale writable TLB entry or prot fault -- same on both *)
         Flush_nonglobal;
         Store8 (2, 10, 44); (* now must fault on both *)
         Load8 (2, 10);
       ])

let test_huge_page_equivalent () =
  Alcotest.(check bool) "2 MiB mappings identical" true
    (run_both
       [
         Huge_map;
         Huge_load 0;
         Huge_load 123456;
         Huge_load ((Size.mib 2) - 1);
         Map (3, true, false);
         Load8 (3, 0);
         Huge_load 77;
       ])

(* The compartment corner: warm the TLB (and the fast path's MRU cache)
   inside a compartment, then narrow the key register. The next access
   hits a *cached* translation whose key tag now loses the hit-time
   rights check — it must fault exactly like the slow path's walk, with
   zero flushes anywhere (Pkru never invalidates; run_both already
   fails on any TLB-stat divergence). *)
let test_pkey_switch_cached_hit_equivalent () =
  Alcotest.(check bool) "cached hit after pkey_switch faults identically" true
    (run_both
       [
         Map (2, true, false);
         Set_key (2, 1);
         Store8 (2, 10, 42); (* walk + insert: entry carries key tag 1 *)
         Load8 (2, 10); (* warm hit under the unrestricted register *)
         Pkru 2; (* narrow to key 2 — no flush, entry stays cached *)
         Load8 (2, 10); (* cached hit must key-fault on both paths *)
         Store8 (2, 10, 43); (* and the write denial too *)
         Pkru 1; (* compartment that owns the tag: access returns *)
         Load8 (2, 10);
         Pkru 0;
         Store8 (2, 10, 44);
       ])

let test_unmapped_faults_equivalent () =
  Alcotest.(check bool) "page faults identical" true
    (run_both
       [ Load8 (4, 0); Map (4, false, false); Load8 (4, 0); Store8 (4, 0, 1); Unmap 4; Load8 (4, 0) ])

let suite =
  [
    QCheck_alcotest.to_alcotest prop_fast_slow_equivalent;
    Alcotest.test_case "page-crossing bulk ops" `Quick test_page_crossing_bulk;
    Alcotest.test_case "overlapping memcpy" `Quick test_overlapping_memcpy;
    Alcotest.test_case "protection changes" `Quick test_protection_change_equivalent;
    Alcotest.test_case "2 MiB pages" `Quick test_huge_page_equivalent;
    Alcotest.test_case "pkey switch on cached hits" `Quick
      test_pkey_switch_cached_hit_equivalent;
    Alcotest.test_case "unmapped faults" `Quick test_unmapped_faults_equivalent;
  ]
