(* Tests for the discrete-event engine and resources. *)
open Sj_des

let test_event_order () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.schedule eng ~at:30 (fun () -> log := 3 :: !log);
  Engine.schedule eng ~at:10 (fun () -> log := 1 :: !log);
  Engine.schedule eng ~at:20 (fun () -> log := 2 :: !log);
  Engine.run eng;
  Alcotest.(check (list int)) "timestamp order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int) "time at end" 30 (Engine.now eng)

let test_fifo_at_same_time () =
  let eng = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule eng ~at:10 (fun () -> log := i :: !log)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "FIFO among equal stamps" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_nested_scheduling () =
  let eng = Engine.create () in
  let count = ref 0 in
  let rec step n = if n > 0 then Engine.schedule_after eng ~delay:5 (fun () ->
      incr count;
      step (n - 1))
  in
  step 10;
  Engine.run eng;
  Alcotest.(check int) "all steps ran" 10 !count;
  Alcotest.(check int) "time advanced" 50 (Engine.now eng)

let test_run_until () =
  let eng = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Engine.schedule eng ~at:(i * 10) (fun () -> incr count)
  done;
  Engine.run ~until:55 eng;
  Alcotest.(check int) "only first five" 5 !count;
  Alcotest.(check int) "clock clamped" 55 (Engine.now eng);
  Alcotest.(check int) "rest pending" 5 (Engine.pending eng)

let test_past_event_rejected () =
  let eng = Engine.create () in
  Engine.schedule eng ~at:10 (fun () -> ());
  Engine.run eng;
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule: event in the past")
    (fun () -> Engine.schedule eng ~at:5 (fun () -> ()))

let test_cores_serialize () =
  let eng = Engine.create () in
  let cores = Resource.Cores.create eng ~n:1 in
  let finish = ref [] in
  for i = 1 to 3 do
    Resource.Cores.exec cores ~cycles:10 (fun () -> finish := (i, Engine.now eng) :: !finish)
  done;
  Engine.run eng;
  Alcotest.(check (list (pair int int)))
    "single core serializes"
    [ (1, 10); (2, 20); (3, 30) ]
    (List.rev !finish);
  (* Requests 2 and 3 queued; the backlog was 2 deep at its worst. *)
  Alcotest.(check int) "queued execs" 2 (Resource.Cores.queued_execs cores);
  Alcotest.(check int) "backlog peak" 2 (Resource.Cores.queued_peak cores)

let test_cores_parallel () =
  let eng = Engine.create () in
  let cores = Resource.Cores.create eng ~n:3 in
  let finish = ref [] in
  for i = 1 to 3 do
    Resource.Cores.exec cores ~cycles:10 (fun () -> finish := (i, Engine.now eng) :: !finish)
  done;
  Engine.run eng;
  List.iter (fun (_, t) -> Alcotest.(check int) "all finish at 10" 10 t) !finish;
  Alcotest.(check int) "busy cycles" 30 (Resource.Cores.busy_cycles cores);
  Alcotest.(check int) "no backlog with enough cores" 0
    (Resource.Cores.queued_peak cores)

let test_rwlock_readers_share () =
  let eng = Engine.create () in
  let lock = Resource.Rwlock.create eng in
  let active = ref 0 and peak = ref 0 in
  for _ = 1 to 4 do
    Resource.Rwlock.acquire lock ~write:false (fun () ->
        incr active;
        peak := max !peak !active;
        Engine.schedule_after eng ~delay:10 (fun () ->
            decr active;
            Resource.Rwlock.release lock ~write:false))
  done;
  Engine.run eng;
  Alcotest.(check int) "readers overlapped" 4 !peak

let test_rwlock_writer_excludes () =
  let eng = Engine.create () in
  let lock = Resource.Rwlock.create eng in
  let log = ref [] in
  let writer id =
    Resource.Rwlock.acquire lock ~write:true (fun () ->
        log := (id, Engine.now eng) :: !log;
        Engine.schedule_after eng ~delay:10 (fun () -> Resource.Rwlock.release lock ~write:true))
  in
  writer 1;
  writer 2;
  Engine.run eng;
  match List.rev !log with
  | [ (1, t1); (2, t2) ] ->
    Alcotest.(check int) "first at 0" 0 t1;
    Alcotest.(check bool) "second waits" true (t2 >= 10)
  | _ -> Alcotest.fail "expected two grants"

let test_rwlock_writer_blocks_later_readers () =
  let eng = Engine.create () in
  let lock = Resource.Rwlock.create eng in
  let order = ref [] in
  (* Reader holds; writer queues; a later reader must not overtake the
     queued writer (FIFO fairness). *)
  Resource.Rwlock.acquire lock ~write:false (fun () ->
      order := `R1 :: !order;
      Engine.schedule_after eng ~delay:20 (fun () -> Resource.Rwlock.release lock ~write:false));
  Engine.schedule_after eng ~delay:1 (fun () ->
      Resource.Rwlock.acquire lock ~write:true (fun () ->
          order := `W :: !order;
          Engine.schedule_after eng ~delay:5 (fun () ->
              Resource.Rwlock.release lock ~write:true)));
  Engine.schedule_after eng ~delay:2 (fun () ->
      Resource.Rwlock.acquire lock ~write:false (fun () ->
          order := `R2 :: !order;
          Resource.Rwlock.release lock ~write:false));
  Engine.run eng;
  Alcotest.(check bool) "writer before late reader" true (List.rev !order = [ `R1; `W; `R2 ]);
  Alcotest.(check int) "two contended" 2 (Resource.Rwlock.contended_acquires lock)

let prop_heap_order =
  QCheck.Test.make ~name:"events always fire in timestamp order" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 100) (int_bound 10_000))
    (fun stamps ->
      let eng = Engine.create () in
      let fired = ref [] in
      List.iter (fun at -> Engine.schedule eng ~at (fun () -> fired := at :: !fired)) stamps;
      Engine.run eng;
      let fired = List.rev !fired in
      fired = List.stable_sort compare stamps)

(* FIFO among equal timestamps must survive any interleaving of
   schedules, including re-schedules from inside running events: tag
   every event with its submission index and check the fired order
   equals a stable sort by timestamp. *)
let prop_fifo_among_equals =
  QCheck.Test.make ~name:"FIFO among equal timestamps (property)" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 200) (int_bound 20))
    (fun stamps ->
      let eng = Engine.create () in
      let fired = ref [] in
      List.iteri
        (fun i at -> Engine.schedule eng ~at (fun () -> fired := (at, i) :: !fired))
        stamps;
      Engine.run eng;
      let expected = List.stable_sort compare (List.mapi (fun i at -> (at, i)) stamps) in
      List.rev !fired = expected)

(* run ~until clamping: events at t <= until fire, the rest stay
   queued, and [now] lands exactly on [until]; draining the remainder
   afterwards fires them in order. *)
let prop_until_clamp =
  QCheck.Test.make ~name:"run ~until clamps and preserves the tail" ~count:200
    QCheck.(pair (int_bound 1_000) (list_of_size Gen.(int_range 0 100) (int_bound 1_000)))
    (fun (until, stamps) ->
      let eng = Engine.create () in
      let fired = ref [] in
      List.iteri
        (fun i at -> Engine.schedule eng ~at (fun () -> fired := (at, i) :: !fired))
        stamps;
      Engine.run ~until eng;
      let early, late = List.partition (fun (at, _) -> at <= until)
          (List.mapi (fun i at -> (at, i)) stamps) in
      Engine.now eng = until
      && List.rev !fired = List.stable_sort compare early
      && Engine.pending eng = List.length late
      && begin
        Engine.run eng;
        List.length !fired = List.length stamps
      end)

(* The tentpole invariant: once the heap's arrays have grown to cover
   the live set, schedule/run allocates nothing per event. The handler
   is preallocated and the engine recycles its slots, so the only
   allocation [Gc.minor_words] may see is the measurement itself. *)
let test_zero_alloc_steady_state () =
  let eng = Engine.create () in
  let count = ref 0 in
  let rec step () =
    incr count;
    if !count < 20_000 then Engine.schedule_after eng ~delay:3 step
  in
  (* Warm-up: force any capacity growth and minor-heap settling with a
     burst of 2_000 in-flight events, then drain. *)
  for i = 1 to 2_000 do
    Engine.schedule eng ~at:i step
  done;
  Engine.run eng;
  count := 0;
  (* Steady state: one self-rescheduling chain plus a standing burst. *)
  for i = 1 to 1_000 do
    Engine.schedule_after eng ~delay:i step
  done;
  let before = Gc.minor_words () in
  Engine.run eng;
  let allocated = Gc.minor_words () -. before in
  let events = !count in
  Alcotest.(check bool)
    (Printf.sprintf "steady state allocated %.0f minor words over %d events" allocated events)
    true
    (events > 10_000 && allocated < 256.)

let suite =
  [
    Alcotest.test_case "event ordering" `Quick test_event_order;
    Alcotest.test_case "FIFO at equal timestamps" `Quick test_fifo_at_same_time;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "run ~until" `Quick test_run_until;
    Alcotest.test_case "past events rejected" `Quick test_past_event_rejected;
    Alcotest.test_case "cores serialize" `Quick test_cores_serialize;
    Alcotest.test_case "cores run in parallel" `Quick test_cores_parallel;
    Alcotest.test_case "rwlock readers share" `Quick test_rwlock_readers_share;
    Alcotest.test_case "rwlock writer excludes" `Quick test_rwlock_writer_excludes;
    Alcotest.test_case "rwlock FIFO fairness" `Quick test_rwlock_writer_blocks_later_readers;
    Alcotest.test_case "zero-allocation steady state" `Quick test_zero_alloc_steady_state;
    QCheck_alcotest.to_alcotest prop_heap_order;
    QCheck_alcotest.to_alcotest prop_fifo_among_equals;
    QCheck_alcotest.to_alcotest prop_until_clamp;
  ]
