(* Tests for the invariant-exploration harness (lib/explore).

   Three layers:
   1. the invariant checkers themselves, each fed a deliberately broken
      World.t built by plain record construction (no simulator hooks) —
      a checker that cannot flag its own target invariant is dead code;
   2. regression tests for the bug crop the explorer surfaced (each
      verified failing before its fix), named by the invariant that
      caught it;
   3. a slice of the real sweep: sampled configs run clean and
      deterministically, and the enumeration covers the advertised
      dimensions. *)
open Sj_core
module W = Sj_explore.World
module Invariant = Sj_explore.Invariant
module Explore = Sj_explore.Explore
module Machine = Sj_machine.Machine
module Platform = Sj_machine.Platform
module Pkey = Sj_paging.Pkey
module Prot = Sj_paging.Prot
module Process = Sj_kernel.Process
module Error = Sj_abi.Error
module Plan = Sj_fault.Plan
module Persist = Sj_persist.Persist
module Size = Sj_util.Size

(* ---- fabricated worlds for the checker tests ---- *)

let seg ?(lock = W.Unlocked) sid name = { W.seg_name = name; sid; lock }

let vas ?vtag ?(keys = []) ?(seg_keys = []) vid name =
  { W.vas_name = name; vid; vtag; keys; seg_keys }

let core ?(live = true) ?cur_vid ?(pkru = Pkey.default) core_id pid =
  { W.core_id; pid; live; cur_vid; pkru }

let sys ?(id = "main") ?(segs = []) ?(vases = []) ?(free_tags = []) ?(cores = [])
    ?(live_pids = []) () =
  { W.sys_id = id; segs; vases; free_tags; cores; live_pids }

let counters ?(lock_acquires = 0) ?(lock_releases = 0) ?(lock_reclaims = 0) ?(crashes = 0)
    ?(tag_assigns = 0) ?(tag_recycles = 0) ?(forks = 0) ?(cow_faults = 0) ?(cow_copies = 0)
    ?(rows = []) () =
  {
    W.lock_acquires;
    lock_releases;
    lock_reclaims;
    crashes;
    tag_assigns;
    tag_recycles;
    forks;
    cow_faults;
    cow_copies;
    rows;
  }

let world ?(snapshots = []) ?(cnt = counters ()) ?journal ?(pt = W.no_pt_audit)
    ?(cow_probes = []) ?(teardown_complete = false) () =
  { W.snapshots; counters = cnt; journal; pt; cow_probes; teardown_complete }

(* A small world every invariant accepts: one busy phase, then a fully
   drained final phase with the issued tag back on the free list. *)
let clean_world =
  (* A restricted register whose only allowed key (1) is allocated in
     the VAS the core is switched into — hygienic. *)
  let compartment_pkru =
    Pkey.set
      (List.fold_left
         (fun r k -> Pkey.set r ~key:k Pkey.Denied)
         Pkey.default
         (List.init Pkey.max_key (fun i -> i + 1)))
      ~key:1 Pkey.Rw
  in
  let busy =
    sys
      ~segs:[ seg 1 "w.data" ]
      ~vases:[ vas ~vtag:1 ~keys:[ (1, 1) ] ~seg_keys:[ (1, 1) ] 1 "w" ]
      ~cores:[ core ~cur_vid:1 ~pkru:compartment_pkru 0 1 ]
      ~live_pids:[ 1 ] ()
  in
  let final = sys ~free_tags:[ 1 ] ~cores:[ core ~live:false 0 1 ] () in
  world
    ~snapshots:
      [ { W.phase = "main"; systems = [ busy ] }; { W.phase = "final"; systems = [ final ] } ]
    ~cnt:(counters ~lock_acquires:2 ~lock_releases:1 ~lock_reclaims:1 ~crashes:1 ~tag_assigns:1 ())
    ~journal:{ W.total_appends = 2; committed_appends = 1; recovered = Some true }
    ~teardown_complete:true ()

let violations_of name w =
  List.filter_map
    (fun (n, msg) -> if n = name then Some msg else None)
    (Invariant.check_all w)

let check_flags name w =
  Alcotest.(check bool)
    (Printf.sprintf "%s flags its broken world" name)
    true
    (violations_of name w <> [])

let test_clean_world_accepted () =
  Alcotest.(check (list (pair string string))) "no violations on the clean world" []
    (Invariant.check_all clean_world)

let test_lock_balance_flags () =
  (* An exclusively-held segment with no live holder left. *)
  check_flags "lock-balance"
    (world
       ~snapshots:
         [ { W.phase = "final"; systems = [ sys ~segs:[ seg ~lock:W.Exclusive 1 "s" ] () ] } ]
       ());
  (* Counter imbalance after a completed teardown. *)
  check_flags "lock-balance"
    (world ~cnt:(counters ~lock_acquires:3 ~lock_releases:1 ~lock_reclaims:1 ())
       ~teardown_complete:true ())

let test_tag_unique_flags () =
  (* The same TLB tag live in two VASes at once. *)
  check_flags "tag-unique"
    (world
       ~snapshots:
         [
           {
             W.phase = "main";
             systems = [ sys ~vases:[ vas ~vtag:7 1 "a"; vas ~vtag:7 2 "b" ] () ];
           };
         ]
       ());
  (* A live tag sitting on the free list. *)
  check_flags "tag-unique"
    (world
       ~snapshots:
         [ { W.phase = "main"; systems = [ sys ~vases:[ vas ~vtag:7 1 "a" ] ~free_tags:[ 7 ] () ] } ]
       ());
  (* Duplicates on the free list itself. *)
  check_flags "tag-unique"
    (world ~snapshots:[ { W.phase = "final"; systems = [ sys ~free_tags:[ 3; 3 ] () ] } ] ())

let test_tag_reclaim_flags () =
  (* Tag 2 was issued during the run but is neither live nor free after
     a teardown that claims to be complete. *)
  check_flags "tag-reclaim"
    (world
       ~snapshots:
         [
           { W.phase = "main"; systems = [ sys ~vases:[ vas ~vtag:2 1 "a" ] () ] };
           { W.phase = "final"; systems = [ sys () ] };
         ]
       ~teardown_complete:true ())

let test_pkey_owners_flags () =
  (* Key out of the 1..15 hardware range. *)
  check_flags "pkey-owners"
    (world
       ~snapshots:
         [ { W.phase = "main"; systems = [ sys ~vases:[ vas ~keys:[ (20, 1) ] 1 "a" ] ~live_pids:[ 1 ] () ] } ]
       ());
  (* Owner is not a live process. *)
  check_flags "pkey-owners"
    (world
       ~snapshots:
         [ { W.phase = "main"; systems = [ sys ~vases:[ vas ~keys:[ (1, 9) ] 1 "a" ] ~live_pids:[ 1 ] () ] } ]
       ());
  (* A tagged segment referencing a key nobody allocated. *)
  check_flags "pkey-owners"
    (world
       ~snapshots:
         [ { W.phase = "main"; systems = [ sys ~vases:[ vas ~seg_keys:[ (1, 2) ] 1 "a" ] () ] } ]
       ())

let test_pkru_hygiene_flags () =
  (* A compartment-style register: everything denied except key 3 (the
     default register is allow-all, which the invariant exempts). *)
  let armed =
    let deny_all =
      List.fold_left
        (fun r k -> Pkey.set r ~key:k Pkey.Denied)
        Pkey.default
        (List.init Pkey.max_key (fun i -> i + 1))
    in
    Pkey.set deny_all ~key:3 Pkey.Rw
  in
  (* Rights retained while switched into no VAS at all. *)
  check_flags "pkru-hygiene"
    (world
       ~snapshots:
         [ { W.phase = "main"; systems = [ sys ~cores:[ core ~pkru:armed 0 1 ] ~live_pids:[ 1 ] () ] } ]
       ());
  (* Rights to a key the current VAS never allocated (the reclaim bug's
     exact shape). *)
  check_flags "pkru-hygiene"
    (world
       ~snapshots:
         [
           {
             W.phase = "main";
             systems =
               [
                 sys ~vases:[ vas 1 "a" ]
                   ~cores:[ core ~cur_vid:1 ~pkru:armed 0 1 ]
                   ~live_pids:[ 1 ] ();
               ];
           };
         ]
       ())

let test_refcount_balance_flags () =
  (* A node whose refcount disagrees with its recomputed indegree. *)
  check_flags "refcount-balance"
    (world ~pt:{ W.no_pt_audit with W.pt_nodes = 4; pt_imbalanced = 1 } ());
  (* A live node no root or handle can reach. *)
  check_flags "refcount-balance"
    (world ~pt:{ W.no_pt_audit with W.pt_nodes = 4; pt_leaked = 2 } ());
  (* Balanced, reachable — but still live after a complete teardown. *)
  check_flags "refcount-balance"
    (world ~pt:{ W.no_pt_audit with W.pt_nodes = 3 } ~teardown_complete:true ());
  (* Residual nodes with teardown incomplete are fine (the run died). *)
  Alcotest.(check (list string)) "incomplete teardown tolerates residual nodes" []
    (violations_of "refcount-balance"
       (world ~pt:{ W.no_pt_audit with W.pt_nodes = 3 } ()))

let test_cow_isolation_flags () =
  (* A probe that saw a value cross the fork. *)
  check_flags "cow-isolation"
    (world ~cow_probes:[ ("kid-own-home", 0x6B1DL, 0xA11CEL) ] ());
  (* Agreeing probes are accepted. *)
  Alcotest.(check (list string)) "agreeing probes accepted" []
    (violations_of "cow-isolation" (world ~cow_probes:[ ("kid-own-home", 1L, 1L) ] ()))

let test_journal_commit_flags () =
  (* Recovery returned an uncommitted image. *)
  check_flags "journal-commit"
    (world ~journal:{ W.total_appends = 2; committed_appends = 1; recovered = Some false } ());
  (* Committed entries existed but recovery found nothing. *)
  check_flags "journal-commit"
    (world ~journal:{ W.total_appends = 2; committed_appends = 2; recovered = None } ())

let test_syscall_balance_flags () =
  let row nr obs tab =
    { W.nr; nr_name = Printf.sprintf "nr%d" nr; obs_calls = obs; obs_cycles = 100;
      tab_calls = tab; tab_cycles = 100 }
  in
  (* Event stream and table disagree on an ordinary entry. *)
  check_flags "syscall-balance" (world ~cnt:(counters ~rows:[ row 5 3 4 ] ()) ());
  (* Cycle disagreement is flagged even on count-only entries. *)
  check_flags "syscall-balance"
    (world
       ~cnt:
         (counters
            ~rows:
              [ { W.nr = 24; nr_name = "persist_save"; obs_calls = 0; obs_cycles = 7;
                  tab_calls = 1; tab_cycles = 9 } ]
            ())
       ())

let test_modal_agreement_flags () =
  Alcotest.(check (list string)) "correct probes agree" []
    (Invariant.check_modal ~clean:Invariant.modal_probe_clean
       ~broken:Invariant.modal_probe_broken);
  (* A "clean" probe that is actually broken must be flagged... *)
  Alcotest.(check bool) "broken clean probe flagged" true
    (Invariant.check_modal ~clean:Invariant.modal_probe_broken
       ~broken:Invariant.modal_probe_broken
    <> []);
  (* ...and so must a "broken" probe both legs accept. *)
  Alcotest.(check bool) "clean broken probe flagged" true
    (Invariant.check_modal ~clean:Invariant.modal_probe_clean
       ~broken:Invariant.modal_probe_clean
    <> [])

(* ---- regression tests for the explorer's bug crop ---- *)

let tiny : Platform.t =
  { Platform.m2 with name = "tiny"; mem_size = Size.mib 256; sockets = 2; cores_per_socket = 2 }

let boot () =
  let m = Machine.create tiny in
  let sys = Api.boot m in
  (m, sys)

(* Bug A (caught by pkru-hygiene): reclaim_pkeys freed a dead process's
   protection keys but left surviving cores' PKRU rights to them
   standing. The exact sweep config that surfaced it must run clean. *)
let test_bug_pkru_scrubbed_on_owner_death () =
  let cfg =
    {
      Explore.backend = Api.Dragonfly;
      seed = 50;
      plan = [ Plan.kill_at_syscall ~pid:1 ~nr:10 ~occurrence:1 () ];
      fork = false;
    }
  in
  let r = Explore.run cfg in
  Alcotest.(check (list (pair string string)))
    "key-owner death leaves no stale PKRU rights" [] r.Explore.violations

(* Bug B (caught by tag-unique): Persist.restore installed saved TLB
   tags without telling the registry, so the next Request_tag on the
   restored system issued a tag already live in a restored VAS. *)
let test_bug_restored_tag_not_reissued () =
  let _, sys1 = boot () in
  let m1 = Api.machine sys1 in
  let p1 = Process.create ~name:"a" m1 in
  let ctx1 = Api.context sys1 p1 (Machine.core m1 0) in
  let v = Api.vas_create ctx1 ~name:"saved" ~mode:0o666 in
  Api.vas_ctl ctx1 (`Request_tag v);
  let saved_tag = Option.get (Vas.tag v) in
  let img = Persist.save sys1 in
  let _, sys2 = boot () in
  let m2 = Api.machine sys2 in
  let p2 = Process.create ~name:"b" m2 in
  let ctx2 = Api.context sys2 p2 (Machine.core m2 0) in
  Persist.restore sys2 img;
  let restored = Api.vas_find ctx2 ~name:"saved" in
  Alcotest.(check (option int)) "restored VAS keeps its saved tag" (Some saved_tag)
    (Vas.tag restored);
  let probe = Api.vas_create ctx2 ~name:"probe" ~mode:0o666 in
  Api.vas_ctl ctx2 (`Request_tag probe);
  Alcotest.(check bool) "fresh tag differs from the restored one" true
    (Vas.tag probe <> Some saved_tag)

(* Bug C (unit probe riding the same fix): after the 4095-tag space
   wraps, alloc_tag must skip tags still held by live VASes instead of
   double-issuing them. *)
let test_bug_tag_wrap_skips_live () =
  let _, sys = boot () in
  let m = Api.machine sys in
  let p = Process.create ~name:"keeper" m in
  let ctx = Api.context sys p (Machine.core m 0) in
  let keeper = Api.vas_create ctx ~name:"keeper" ~mode:0o666 in
  Api.vas_ctl ctx (`Request_tag keeper);
  let held = Option.get (Vas.tag keeper) in
  let reg = Api.registry sys in
  (* Burn the rest of the tag space; these tags belong to no VAS, so
     only [held] is live when the allocator wraps. *)
  for _ = 1 to 4094 do
    ignore (Registry.alloc_tag reg)
  done;
  let post_wrap = Registry.alloc_tag reg in
  Alcotest.(check bool) "post-wrap tag skips the live keeper" true (post_wrap <> held);
  Alcotest.(check bool) "keeper still holds its tag" true (Registry.tag_in_use reg held)

(* Bug D (unit probe): vas_detach destroyed the attachment while a
   sibling thread was still switched into it, leaving that thread on a
   dead vmspace. Detach must refuse with Would_block until the sibling
   leaves, and exit_process must force its own siblings out first. *)
let test_bug_detach_refused_while_sibling_entered () =
  let _, sys = boot () in
  let m = Api.machine sys in
  let p = Process.create ~name:"t" m in
  let ctx1 = Api.context sys p (Machine.core m 0) in
  ignore (Process.spawn_thread p);
  let ctx2 = Api.context sys p (Machine.core m 1) in
  let v = Api.vas_create ctx1 ~name:"shared" ~mode:0o666 in
  let s = Api.seg_alloc_anywhere ctx1 ~name:"shared.d" ~size:(Size.kib 64) ~mode:0o666 in
  Api.seg_attach ctx1 v s ~prot:Prot.rw;
  let vh = Api.vas_attach ctx1 v in
  Api.vas_switch ctx2 vh;
  Alcotest.(check bool) "detach refused while a sibling is entered" true
    (match Api.Checked.vas_detach ctx1 vh with
    | Error f -> f.Error.code = Error.Would_block
    | Ok () -> false);
  Api.switch_home ctx2;
  Alcotest.(check bool) "detach succeeds once the sibling left" true
    (match Api.Checked.vas_detach ctx1 vh with Ok () -> true | Error _ -> false)

let test_bug_exit_forces_siblings_out () =
  let _, sys = boot () in
  let m = Api.machine sys in
  let p = Process.create ~name:"t" m in
  let ctx1 = Api.context sys p (Machine.core m 0) in
  ignore (Process.spawn_thread p);
  let ctx2 = Api.context sys p (Machine.core m 1) in
  let v = Api.vas_create ctx1 ~name:"shared" ~mode:0o666 in
  let vh = Api.vas_attach ctx1 v in
  Api.vas_switch ctx2 vh;
  (* Exit with the sibling still inside: must not raise, must leave the
     process dead and the VAS free of stragglers (destroyable). *)
  Api.exit_process ctx1;
  Alcotest.(check bool) "process is dead" false (Process.is_live p);
  let reaper = Process.create ~name:"r" m in
  let ctxr = Api.context sys reaper (Machine.core m 2) in
  Alcotest.(check bool) "VAS destroyable after the forced exit" true
    (match Api.Checked.vas_ctl ctxr (`Destroy v) with Ok () -> true | Error _ -> false)

(* The μFork phase end to end: a fork-bearing baseline runs clean on
   both mechanism parities, actually records its isolation probes, and
   counts both Fork events (proc_fork + vas_fork). *)
let test_fork_phase_runs_clean () =
  List.iter
    (fun seed ->
      let cfg = { Explore.backend = Api.Dragonfly; seed; plan = []; fork = true } in
      let r = Explore.run cfg in
      Alcotest.(check (list (pair string string)))
        (Explore.key cfg ^ " runs clean") [] r.Explore.violations;
      Alcotest.(check bool) "isolation probes recorded" true
        (List.length r.Explore.world.W.cow_probes >= 6);
      Alcotest.(check int) "both fork flavours counted" 2 r.Explore.world.W.counters.W.forks;
      Alcotest.(check bool) "the child's writes broke CoW pages" true
        (r.Explore.world.W.counters.W.cow_faults > 0))
    [ 300; 301 ]

(* ---- the sweep itself ---- *)

let test_enumeration_covers_dimensions () =
  let cfgs = Explore.enumerate ~quick:true in
  let keys = List.sort_uniq compare (List.map Explore.key cfgs) in
  Alcotest.(check bool) "at least 100 distinct configs" true (List.length keys >= 100);
  Alcotest.(check int) "no duplicate configs" (List.length cfgs) (List.length keys);
  let kinds =
    List.sort_uniq compare
      (List.concat_map (fun c -> List.map Sj_explore.Driver.kind_of_fault c.Explore.plan) cfgs)
  in
  Alcotest.(check (list string)) "all five plan kinds swept"
    (List.sort compare Sj_explore.Driver.all_kinds) kinds;
  Alcotest.(check int) "both backends swept" 2
    (List.length
       (List.sort_uniq compare (List.map (fun c -> Explore.backend_name c.Explore.backend) cfgs)));
  Alcotest.(check int) "all three mechanisms swept" 3
    (List.length (List.sort_uniq compare (List.map Explore.mechanism_name cfgs)))

let test_sampled_sweep_clean_and_deterministic () =
  (* A spread sample of the quick sweep: every 23rd config. Each must
     run violation-free and replay byte-identically from its key. *)
  let cfgs = Explore.enumerate ~quick:true in
  let sample = List.filteri (fun i _ -> i mod 23 = 0) cfgs in
  List.iter
    (fun cfg ->
      let r = Explore.run cfg in
      Alcotest.(check (list (pair string string)))
        (Explore.key cfg ^ " runs clean") [] r.Explore.violations;
      Alcotest.(check bool) (Explore.key cfg ^ " replays identically") true
        (Explore.equal_result r (Explore.run cfg)))
    sample

let suite =
  [
    Alcotest.test_case "clean world accepted by every invariant" `Quick test_clean_world_accepted;
    Alcotest.test_case "lock-balance flags orphan locks and imbalance" `Quick
      test_lock_balance_flags;
    Alcotest.test_case "tag-unique flags double-issued and free-listed tags" `Quick
      test_tag_unique_flags;
    Alcotest.test_case "tag-reclaim flags leaked tags" `Quick test_tag_reclaim_flags;
    Alcotest.test_case "pkey-owners flags range/owner/reference breaks" `Quick
      test_pkey_owners_flags;
    Alcotest.test_case "pkru-hygiene flags stale key rights" `Quick test_pkru_hygiene_flags;
    Alcotest.test_case "refcount-balance flags imbalance, leaks and residue" `Quick
      test_refcount_balance_flags;
    Alcotest.test_case "cow-isolation flags writes that cross a fork" `Quick
      test_cow_isolation_flags;
    Alcotest.test_case "journal-commit flags bad recovery" `Quick test_journal_commit_flags;
    Alcotest.test_case "syscall-balance flags stream/table disagreement" `Quick
      test_syscall_balance_flags;
    Alcotest.test_case "modal-agreement flags probe disagreement" `Quick
      test_modal_agreement_flags;
    Alcotest.test_case "bug A: PKRU scrubbed when key owner dies" `Quick
      test_bug_pkru_scrubbed_on_owner_death;
    Alcotest.test_case "bug B: restored tags never re-issued" `Quick
      test_bug_restored_tag_not_reissued;
    Alcotest.test_case "bug C: tag wraparound skips live tags" `Quick
      test_bug_tag_wrap_skips_live;
    Alcotest.test_case "bug D: detach refused while sibling entered" `Quick
      test_bug_detach_refused_while_sibling_entered;
    Alcotest.test_case "bug D: exit forces siblings out of the VAS" `Quick
      test_bug_exit_forces_siblings_out;
    Alcotest.test_case "fork phase runs clean on both mechanisms" `Quick
      test_fork_phase_runs_clean;
    Alcotest.test_case "enumeration covers the advertised dimensions" `Quick
      test_enumeration_covers_dimensions;
    Alcotest.test_case "sampled sweep clean and deterministic" `Slow
      test_sampled_sweep_clean_and_deterministic;
  ]
