(* Sharded multi-machine cluster (lib/cluster).

   Topology routing, end-to-end storm completion, the batching win
   over the single-op baseline, crash/recovery of one shard with the
   rest of the cluster unaffected, and the determinism contracts:
   byte-identical fingerprints serially vs across domains, trace
   on/off, and with an attached empty fault plan. Cluster runs here
   are deliberately small — the full million-client storm lives in
   `bench cluster`. *)
module Topology = Sj_cluster.Topology
module Cluster = Sj_cluster.Cluster
module Api = Sj_core.Api
module Par = Sj_util.Par
module Recorder = Sj_obs.Recorder
module Injector = Sj_fault.Injector

let tiny =
  {
    Cluster.default with
    machines = 3;
    shards = 4;
    clients = 400;
    requests_per_client = 3;
    batch = 8;
    pipeline = 2;
    keys_per_shard = 64;
    store_size = Sj_util.Size.mib 4;
    window_cycles = 2_000_000;
  }

let fp_string r =
  String.concat ";"
    (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) r.Cluster.fingerprint)

(* ---------------- topology ---------------- *)

let test_topology_placement () =
  let t = Topology.make ~machines:3 ~shards:8 in
  Alcotest.(check (list int)) "m0 shards" [ 0; 3; 6 ] (Topology.shards_on t 0);
  Alcotest.(check (list int)) "m1 shards" [ 1; 4; 7 ] (Topology.shards_on t 1);
  Alcotest.(check (list int)) "m2 shards" [ 2; 5 ] (Topology.shards_on t 2);
  Alcotest.(check int) "client home" 2 (Topology.machine_of_client t 5)

let test_topology_balance () =
  (* FNV-1a spreads uniform key strings evenly enough that no shard
     gets more than twice its fair share. *)
  let t = Topology.make ~machines:3 ~shards:8 in
  let counts = Array.make 8 0 in
  for i = 0 to 4095 do
    let s = Topology.shard_of_key t (Printf.sprintf "key:%08d" i) in
    counts.(s) <- counts.(s) + 1
  done;
  Array.iteri
    (fun s c ->
      if c < 256 || c > 1024 then
        Alcotest.failf "shard %d got %d of 4096 keys" s c)
    counts

(* ---------------- end-to-end storm ---------------- *)

let test_storm_completes () =
  let r = Cluster.run tiny in
  let total = tiny.clients * tiny.requests_per_client in
  Alcotest.(check int) "all requests served" total r.requests;
  Alcotest.(check int) "sets + gets" total (r.sets + r.gets);
  Alcotest.(check int) "shards sum" total (Array.fold_left ( + ) 0 r.shard_served);
  let tl_sum =
    Array.fold_left (fun a row -> Array.fold_left ( + ) a row) 0 r.timeline
  in
  Alcotest.(check int) "timeline sums to served" total tl_sum;
  Alcotest.(check bool) "no crash" false r.crashed;
  Alcotest.(check bool) "made progress in time" true (r.duration_cycles > 0);
  Alcotest.(check bool) "latency ordered" true (r.p50 <= r.p99 && r.p99 <= r.p999);
  Alcotest.(check bool) "switched address spaces" true (r.switches > 0)

let test_single_op_baseline_completes () =
  let r = Cluster.run { tiny with batch = 1; pipeline = 1; clients = 200 } in
  Alcotest.(check int) "all requests served" (200 * tiny.requests_per_client)
    r.requests

let test_batching_amortizes_switches () =
  (* One switch per burst instead of one per request: the batched run
     must switch far less and finish far sooner. *)
  let base = { tiny with clients = 300 } in
  let batched = Cluster.run base in
  let single = Cluster.run { base with batch = 1; pipeline = 1 } in
  Alcotest.(check bool) "fewer switches" true (batched.switches * 2 < single.switches);
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.0f >= 2x %.0f" batched.throughput single.throughput)
    true
    (batched.throughput >= 2.0 *. single.throughput)

let test_backends_differ () =
  let df = Cluster.run { tiny with backend = Api.Dragonfly } in
  let bf = Cluster.run { tiny with backend = Api.Barrelfish } in
  Alcotest.(check int) "same work" df.requests bf.requests;
  Alcotest.(check bool) "different switch price, different timeline" true
    (df.duration_cycles <> bf.duration_cycles)

(* ---------------- determinism contracts ---------------- *)

let test_deterministic () =
  let a = Cluster.run tiny and b = Cluster.run tiny in
  Alcotest.(check string) "fingerprints identical" (fp_string a) (fp_string b)

let test_trace_identity () =
  let quiet = Cluster.run tiny in
  let traced = Recorder.with_tracing true (fun () -> Cluster.run tiny) in
  Alcotest.(check string) "trace on/off identical" (fp_string quiet)
    (fp_string traced)

let test_empty_plan_identity () =
  let bare = Cluster.run tiny in
  let planned = Injector.with_plan [] (fun () -> Cluster.run tiny) in
  Alcotest.(check string) "empty fault plan identical" (fp_string bare)
    (fp_string planned)

let test_domains_identity () =
  let serial = fp_string (Cluster.run tiny) in
  Par.with_pool ~size:4 (fun pool ->
      let results =
        Par.map_list pool (fun () -> fp_string (Cluster.run tiny)) [ (); (); (); () ]
      in
      List.iteri
        (fun i r ->
          Alcotest.(check string) (Printf.sprintf "domain %d" i) serial r)
        results)

(* ---------------- faults ---------------- *)

(* The 600-client storm runs ~2.4M cycles; kill early enough to land
   mid-storm and hold the victim down for a stretch of windows. *)
let fault_cfg =
  {
    tiny with
    clients = 600;
    window_cycles = 400_000;
    fault =
      Some { Cluster.kill_at = 400_000; victim_shard = 1; respawn_delay = 1_500_000 };
  }

let test_fault_recovers () =
  let r = Cluster.run fault_cfg in
  let total = fault_cfg.clients * fault_cfg.requests_per_client in
  Alcotest.(check bool) "crashed" true r.crashed;
  Alcotest.(check int) "every request still served" total r.requests;
  let o = match r.outage with Some o -> o | None -> Alcotest.fail "no outage" in
  Alcotest.(check bool) "outage spans the respawn delay" true
    (o.outage_cycles >= 1_500_000);
  Alcotest.(check bool) "recovered after crash" true (o.recovered_at > o.crashed_at)

let test_fault_leaves_other_shards_alone () =
  (* During the victim's outage windows, every other shard keeps
     completing requests. *)
  let r = Cluster.run fault_cfg in
  let o = match r.outage with Some o -> o | None -> Alcotest.fail "no outage" in
  let w0 = o.crashed_at / fault_cfg.window_cycles
  and w1 = min (o.recovered_at / fault_cfg.window_cycles) (Array.length r.timeline - 1) in
  let victim_outage = ref 0 and others_outage = ref 0 in
  for w = w0 to w1 do
    Array.iteri
      (fun s c ->
        if s = 1 then victim_outage := !victim_outage + c
        else others_outage := !others_outage + c)
      r.timeline.(w)
  done;
  Alcotest.(check bool) "other shards served during outage" true (!others_outage > 0)

let test_fault_deterministic () =
  let a = Cluster.run fault_cfg and b = Cluster.run fault_cfg in
  Alcotest.(check string) "fault run reproducible" (fp_string a) (fp_string b)

let suite =
  [
    Alcotest.test_case "topology placement" `Quick test_topology_placement;
    Alcotest.test_case "topology key balance" `Quick test_topology_balance;
    Alcotest.test_case "storm runs to completion" `Quick test_storm_completes;
    Alcotest.test_case "single-op baseline completes" `Quick
      test_single_op_baseline_completes;
    Alcotest.test_case "batching amortizes switches (>=2x)" `Quick
      test_batching_amortizes_switches;
    Alcotest.test_case "backends shift the timeline" `Quick test_backends_differ;
    Alcotest.test_case "deterministic rerun" `Quick test_deterministic;
    Alcotest.test_case "trace on/off identity" `Quick test_trace_identity;
    Alcotest.test_case "empty fault plan identity" `Quick test_empty_plan_identity;
    Alcotest.test_case "identical across domains" `Quick test_domains_identity;
    Alcotest.test_case "shard crash recovers, nothing lost" `Quick test_fault_recovers;
    Alcotest.test_case "other shards unaffected during outage" `Quick
      test_fault_leaves_other_shards_alone;
    Alcotest.test_case "fault run reproducible" `Quick test_fault_deterministic;
  ]
