(* Tests for the tagged TLB. *)
open Sj_util
open Sj_paging
module Tlb = Sj_tlb.Tlb

let small_cfg = { Tlb.sets_4k = 4; ways_4k = 2; entries_2m = 2; tag_bits = 12 }

let insert t ~tag ~va ~pa =
  Tlb.insert t ~tag ~va ~pa ~prot:Prot.rw ~size:Page_table.P4K ~global:false

let test_hit_miss () =
  let t = Tlb.create Tlb.default_config in
  Alcotest.(check bool) "cold miss" true (Tlb.lookup t ~tag:0 ~va:0x1000 = None);
  insert t ~tag:0 ~va:0x1000 ~pa:0x20000;
  (match Tlb.lookup t ~tag:0 ~va:0x1234 with
  | Some hit -> Alcotest.(check int) "offset preserved" 0x20234 hit.pa
  | None -> Alcotest.fail "expected hit");
  let st = Tlb.stats t in
  Alcotest.(check int) "1 miss" 1 st.misses;
  Alcotest.(check int) "1 hit" 1 st.hits

let test_tag_isolation () =
  let t = Tlb.create Tlb.default_config in
  insert t ~tag:1 ~va:0x1000 ~pa:0x20000;
  Alcotest.(check bool) "other tag misses" true (Tlb.lookup t ~tag:2 ~va:0x1000 = None);
  Alcotest.(check bool) "same tag hits" true (Tlb.lookup t ~tag:1 ~va:0x1000 <> None)

let test_global_entries () =
  let t = Tlb.create Tlb.default_config in
  Tlb.insert t ~tag:1 ~va:0x5000 ~pa:0x30000 ~prot:Prot.r ~size:Page_table.P4K ~global:true;
  Alcotest.(check bool) "hits under any tag" true (Tlb.lookup t ~tag:7 ~va:0x5000 <> None);
  Tlb.flush_nonglobal t;
  Alcotest.(check bool) "survives untagged flush" true (Tlb.lookup t ~tag:0 ~va:0x5000 <> None);
  Tlb.flush_all t;
  Alcotest.(check bool) "full flush removes" true (Tlb.lookup t ~tag:0 ~va:0x5000 = None)

let test_flush_tag () =
  let t = Tlb.create Tlb.default_config in
  insert t ~tag:1 ~va:0x1000 ~pa:0x10000;
  insert t ~tag:2 ~va:0x2000 ~pa:0x20000;
  Tlb.flush_tag t ~tag:1;
  Alcotest.(check bool) "tag 1 flushed" true (Tlb.lookup t ~tag:1 ~va:0x1000 = None);
  Alcotest.(check bool) "tag 2 kept" true (Tlb.lookup t ~tag:2 ~va:0x2000 <> None)

let test_invalidate_page () =
  let t = Tlb.create Tlb.default_config in
  insert t ~tag:1 ~va:0x1000 ~pa:0x10000;
  insert t ~tag:2 ~va:0x1000 ~pa:0x90000;
  Tlb.invalidate_page t ~va:0x1000;
  Alcotest.(check bool) "all tags invalidated" true
    (Tlb.lookup t ~tag:1 ~va:0x1000 = None && Tlb.lookup t ~tag:2 ~va:0x1000 = None)

let test_capacity_eviction () =
  let t = Tlb.create small_cfg in
  (* 4 sets x 2 ways = 8 entries; same set: pages whose vpn mod 4 equal. *)
  let vas = List.init 3 (fun i -> (i * 4) * Addr.page_size) in
  List.iter (fun va -> insert t ~tag:0 ~va ~pa:(va + Size.mib 1)) vas;
  (* First entry of the set evicted (LRU): only 2 ways. *)
  let resident = List.filter (fun va -> Tlb.lookup t ~tag:0 ~va <> None) vas in
  Alcotest.(check int) "two resident in 2-way set" 2 (List.length resident);
  Alcotest.(check int) "one eviction" 1 (Tlb.stats t).evictions

let test_2m_entries () =
  let t = Tlb.create Tlb.default_config in
  Tlb.insert t ~tag:0 ~va:(Size.mib 2) ~pa:(Size.mib 32) ~prot:Prot.rw ~size:Page_table.P2M
    ~global:false;
  match Tlb.lookup t ~tag:0 ~va:(Size.mib 2 + 0x1234) with
  | Some hit ->
    Alcotest.(check int) "2M offset preserved" (Size.mib 32 + 0x1234) hit.pa;
    Alcotest.(check bool) "size" true (hit.size = Page_table.P2M)
  | None -> Alcotest.fail "expected 2M hit"

let test_occupancy () =
  let t = Tlb.create small_cfg in
  Alcotest.(check int) "empty" 0 (Tlb.occupancy t);
  insert t ~tag:0 ~va:0x1000 ~pa:0x10000;
  insert t ~tag:0 ~va:0x2000 ~pa:0x20000;
  Alcotest.(check int) "two" 2 (Tlb.occupancy t);
  Tlb.flush_all t;
  Alcotest.(check int) "flushed" 0 (Tlb.occupancy t)

let test_refresh_in_place () =
  let t = Tlb.create small_cfg in
  insert t ~tag:0 ~va:0x1000 ~pa:0x10000;
  insert t ~tag:0 ~va:0x1000 ~pa:0x90000;
  Alcotest.(check int) "no duplicate entries" 1 (Tlb.occupancy t);
  match Tlb.lookup t ~tag:0 ~va:0x1000 with
  | Some hit -> Alcotest.(check int) "latest translation" 0x90000 hit.pa
  | None -> Alcotest.fail "expected hit"

(* Regression: the insert refresh path used to probe by (tag, vbase)
   only, so a non-global insert at a VA where a global entry lived
   clobbered the global entry in place — losing the global bit and
   letting flush_nonglobal kill a common-region translation. The probe
   is now exact on (tag, global). *)
let test_global_not_clobbered_by_refresh () =
  let t = Tlb.create Tlb.default_config in
  Tlb.insert t ~tag:1 ~va:0x7000 ~pa:0x40000 ~prot:Prot.r ~size:Page_table.P4K ~global:true;
  insert t ~tag:1 ~va:0x7000 ~pa:0x50000;
  Alcotest.(check int) "distinct entries" 2 (Tlb.occupancy t);
  Tlb.flush_nonglobal t;
  (match Tlb.lookup t ~tag:1 ~va:0x7000 with
  | Some hit -> Alcotest.(check int) "global translation intact" 0x40000 hit.pa
  | None -> Alcotest.fail "global entry clobbered by non-global insert");
  (* Re-inserting with matching globality still refreshes in place. *)
  Tlb.insert t ~tag:1 ~va:0x7000 ~pa:0x60000 ~prot:Prot.r ~size:Page_table.P4K ~global:true;
  Alcotest.(check int) "no duplicate" 1 (Tlb.occupancy t);
  match Tlb.lookup t ~tag:1 ~va:0x7000 with
  | Some hit -> Alcotest.(check int) "refreshed translation" 0x60000 hit.pa
  | None -> Alcotest.fail "expected hit"

(* Model-based property: a TLB with random insert/flush/lookup agrees
   with a shadow association list. *)
let prop_tlb_coherent =
  let open QCheck in
  Test.make ~name:"TLB agrees with shadow map (no-eviction config)" ~count:100
    (list_of_size Gen.(int_range 1 60)
       (triple (int_bound 3) (int_bound 30) (int_bound 2)))
    (fun ops ->
      (* Big enough that nothing is ever evicted. *)
      let t = Tlb.create { Tlb.sets_4k = 64; ways_4k = 8; entries_2m = 8; tag_bits = 12 } in
      let shadow = Hashtbl.create 16 in
      List.for_all
        (fun (op, page, tag) ->
          let va = page * Addr.page_size in
          match op with
          | 0 ->
            let pa = (page + 1000) * Addr.page_size in
            Tlb.insert t ~tag ~va ~pa ~prot:Prot.rw ~size:Page_table.P4K ~global:false;
            Hashtbl.replace shadow (tag, page) pa;
            true
          | 1 ->
            Tlb.flush_tag t ~tag;
            Hashtbl.iter (fun (tg, pg) _ -> if tg = tag then Hashtbl.remove shadow (tg, pg))
              (Hashtbl.copy shadow);
            true
          | 2 ->
            Tlb.flush_nonglobal t;
            Hashtbl.reset shadow;
            true
          | _ ->
            let expect = Hashtbl.find_opt shadow (tag, page) in
            let got =
              match Tlb.lookup t ~tag ~va with Some h -> Some h.pa | None -> None
            in
            expect = got)
        ops)

let suite =
  [
    Alcotest.test_case "hit/miss" `Quick test_hit_miss;
    Alcotest.test_case "tag isolation" `Quick test_tag_isolation;
    Alcotest.test_case "global entries" `Quick test_global_entries;
    Alcotest.test_case "flush by tag" `Quick test_flush_tag;
    Alcotest.test_case "invalidate page" `Quick test_invalidate_page;
    Alcotest.test_case "capacity eviction" `Quick test_capacity_eviction;
    Alcotest.test_case "2 MiB entries" `Quick test_2m_entries;
    Alcotest.test_case "occupancy" `Quick test_occupancy;
    Alcotest.test_case "refresh in place" `Quick test_refresh_in_place;
    Alcotest.test_case "global not clobbered by refresh" `Quick test_global_not_clobbered_by_refresh;
    QCheck_alcotest.to_alcotest prop_tlb_coherent;
  ]
