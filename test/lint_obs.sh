#!/bin/sh
# Observability lint, run on every `dune runtest`.
#
# Invariant (see the Observability section of HACKING.md): every ABI
# dispatch entry brackets itself with Syscall_enter/Syscall_exit
# events. All entries funnel through Sys.charge_entry or Sys.invoke in
# lib/abi/sys.ml, so the invariant reduces to two greppable facts:
#
#   1. every constructor of `type nr` appears in the `number` and
#      `name` dispatch tables — no entry can exist outside the
#      numbered, named (and therefore bracketed) table; and
#   2. both dispatch helpers (charge_entry and invoke) call the
#      emit_enter and emit_exit guards.
set -u

sys=lib/abi/sys.ml

if [ ! -f "$sys" ]; then
  echo "lint_obs: $sys not found (run from the repo root)" >&2
  exit 1
fi

# 1. Enumerate the `nr` constructors from the type definition.
ctors=$(sed -n '/^type nr =/,/^let all/p' "$sys" \
  | grep -oE '\| *[A-Z][A-Za-z_0-9]*' | sed 's/| *//')

if [ -z "$ctors" ]; then
  echo "lint_obs: could not extract nr constructors from $sys" >&2
  exit 1
fi

missing=
for c in $ctors; do
  grep -qE "\| $c -> [0-9]+" "$sys" || missing="$missing $c(number)"
  grep -qE "\| $c -> \"" "$sys" || missing="$missing $c(name)"
done
if [ -n "$missing" ]; then
  echo "lint_obs: ABI entries missing from the dispatch tables:$missing" >&2
  echo "Every nr constructor must have a number and a name so enter/exit events cover it." >&2
  exit 1
fi

# 2. Both dispatch helpers emit the bracketing events.
for pat in emit_enter emit_exit; do
  n=$(grep -cE "^[[:space:]]+$pat core nr" "$sys" || true)
  if [ "$n" -lt 2 ]; then
    echo "lint_obs: expected charge_entry AND invoke to call $pat (found $n call sites in $sys)" >&2
    exit 1
  fi
done

grep -q 'Syscall_enter' "$sys" && grep -q 'Syscall_exit' "$sys" || {
  echo "lint_obs: $sys no longer constructs Syscall_enter/Syscall_exit events" >&2
  exit 1
}

count=$(printf '%s\n' "$ctors" | wc -l | tr -d ' ')
echo "lint_obs: OK ($count ABI entries covered by enter/exit bracketing)"
