#!/bin/sh
# Fault-coverage lint, run on every `dune runtest`.
#
# Invariant (see the Fault injection section of HACKING.md): every
# injectable fault kind declared in lib/fault/plan.ml has at least one
# regression test. Each Plan constructor has a lowercase builder of the
# same name, so the check reduces to: for every constructor of
# `type fault`, some test/*.ml calls its builder.
set -u

plan=lib/fault/plan.ml

if [ ! -f "$plan" ]; then
  echo "lint_faults: $plan not found (run from the repo root)" >&2
  exit 1
fi

ctors=$(sed -n '/^type fault =/,/^type t/p' "$plan" \
  | grep -oE '\| *[A-Z][A-Za-z_0-9]*' | sed 's/| *//')

if [ -z "$ctors" ]; then
  echo "lint_faults: could not extract fault constructors from $plan" >&2
  exit 1
fi

missing=
for c in $ctors; do
  builder=$(printf '%s' "$c" | tr 'A-Z' 'a-z')
  grep -q "Plan\.$builder" test/*.ml || missing="$missing $c"
done

if [ -n "$missing" ]; then
  echo "lint_faults: injectable fault kinds with no regression test:$missing" >&2
  echo "Every Plan fault constructor needs at least one test/*.ml calling Plan.<builder>." >&2
  exit 1
fi

count=$(printf '%s\n' "$ctors" | wc -l | tr -d ' ')
echo "lint_faults: OK ($count fault kinds covered by regression tests)"
