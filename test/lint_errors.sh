#!/bin/sh
# Typed-fault lint, run on every `dune runtest`.
#
# The kernel ABI (lib/abi) makes every failure that can cross the API
# boundary a typed Sj_abi.Error.Fault. lib/core and lib/kernel sit
# behind that boundary, so they may not raise raw Failure /
# Invalid_argument: every `failwith`/`invalid_arg` there must instead
# be an Error.fail/failf with the right code. This grep keeps new ones
# from creeping in.
#
# Allowlist: empty. Lower-level mechanism libraries (lib/paging,
# lib/mem, lib/alloc, ...) keep their precondition checks — their
# callers in core/kernel translate at the boundary.
set -u

hits=$(grep -rnE '\b(failwith|invalid_arg)\b' lib/core lib/kernel --include='*.ml' || true)

if [ -n "$hits" ]; then
  echo "lint_errors: raw failwith/invalid_arg in lib/core or lib/kernel (use Sj_abi.Error.fail):" >&2
  printf '%s\n' "$hits" >&2
  echo "Raise a typed fault (Sj_abi.Error.fail <code> ~op:... ...) instead; see HACKING.md." >&2
  exit 1
fi

# Coverage: every constructor of Sj_abi.Error.code must be exercised by
# test/test_errors.ml (the "all codes via API" worlds run under both
# backends). Parsing the mli keeps this honest when a new code lands —
# adding the 10th (Key_violation) without a test would fail here.
codes=$(sed -n '/^type code =/,/^type t /p' lib/abi/error.mli \
  | grep -oE '^  \| [A-Z][A-Za-z_]+' | awk '{print $2}')

ncodes=$(printf '%s\n' $codes | wc -l)
if [ "$ncodes" -lt 10 ]; then
  echo "lint_errors: parsed only $ncodes codes from lib/abi/error.mli (expected >= 10); fix the parse" >&2
  exit 1
fi

missing=
for c in $codes; do
  grep -q "$c" test/test_errors.ml || missing="$missing $c"
done
if [ -n "$missing" ]; then
  echo "lint_errors: fault code(s) not exercised by test/test_errors.ml:$missing" >&2
  echo "Every Sj_abi.Error.code constructor must be reachable through the public API and tested; see HACKING.md." >&2
  exit 1
fi

echo "lint_errors: OK (no raw failwith/invalid_arg in lib/core or lib/kernel; all $ncodes fault codes tested)"
