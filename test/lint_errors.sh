#!/bin/sh
# Typed-fault lint, run on every `dune runtest`.
#
# The kernel ABI (lib/abi) makes every failure that can cross the API
# boundary a typed Sj_abi.Error.Fault. lib/core and lib/kernel sit
# behind that boundary, so they may not raise raw Failure /
# Invalid_argument: every `failwith`/`invalid_arg` there must instead
# be an Error.fail/failf with the right code. This grep keeps new ones
# from creeping in.
#
# Allowlist: empty. Lower-level mechanism libraries (lib/paging,
# lib/mem, lib/alloc, ...) keep their precondition checks — their
# callers in core/kernel translate at the boundary.
set -u

hits=$(grep -rnE '\b(failwith|invalid_arg)\b' lib/core lib/kernel --include='*.ml' || true)

if [ -n "$hits" ]; then
  echo "lint_errors: raw failwith/invalid_arg in lib/core or lib/kernel (use Sj_abi.Error.fail):" >&2
  printf '%s\n' "$hits" >&2
  echo "Raise a typed fault (Sj_abi.Error.fail <code> ~op:... ...) instead; see HACKING.md." >&2
  exit 1
fi

echo "lint_errors: OK (no raw failwith/invalid_arg in lib/core or lib/kernel)"
