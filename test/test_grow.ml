(* Growable shared segments (sec 2.3: traditional shared memory makes
   "growing the shared region" a coordination problem; SpaceJMP grows
   the segment once and attachments pick it up at their next switch). *)
open Sj_util
open Sj_core
module Machine = Sj_machine.Machine
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Layout = Sj_kernel.Layout
module Mspace = Sj_alloc.Mspace
module Prot = Sj_paging.Prot

let tiny : Platform.t =
  { Platform.m2 with name = "tiny"; mem_size = Size.mib 256; sockets = 2; cores_per_socket = 2 }

let setup () =
  let m = Machine.create tiny in
  let sys = Api.boot m in
  let p = Process.create ~name:"p" m in
  let ctx = Api.context sys p (Machine.core m 0) in
  (m, sys, ctx)

(* --- Mspace.extend unit behaviour --- *)

let test_mspace_extend () =
  let h = Mspace.create ~base:0 ~size:1024 in
  (* Fill completely. *)
  let a = Option.get (Mspace.malloc h 1024) in
  Alcotest.(check bool) "full" true (Mspace.malloc h 16 = None);
  Mspace.extend h ~by:512;
  Alcotest.(check int) "size grew" 1536 (Mspace.size h);
  let b = Option.get (Mspace.malloc h 256) in
  Alcotest.(check bool) "new space usable" true (b >= 1024);
  Mspace.check_invariants h;
  (* Extension coalesces with a trailing free chunk. *)
  Mspace.free h b;
  Mspace.extend h ~by:512;
  Alcotest.(check int) "coalesced tail" 1024 (Mspace.largest_free h);
  Mspace.check_invariants h;
  Mspace.free h a;
  Mspace.check_invariants h

let test_mspace_extend_bad_args () =
  let h = Mspace.create ~base:0 ~size:1024 in
  Alcotest.(check bool) "unaligned rejected" true
    (try
       Mspace.extend h ~by:10;
       false
     with Invalid_argument _ -> true)

(* --- segment growth through the API --- *)

let test_grow_propagates_to_attachments () =
  let m, sys, ctx1 = setup () in
  let vas = Api.vas_create ctx1 ~name:"v" ~mode:0o666 in
  let seg = Api.seg_alloc_anywhere ctx1 ~name:"shared" ~size:(Size.kib 64) ~mode:0o666 in
  Api.seg_attach ctx1 vas seg ~prot:Prot.rw;
  let vh1 = Api.vas_attach ctx1 vas in
  (* A second process is already attached before the growth. *)
  let p2 = Process.create ~name:"peer" m in
  let ctx2 = Api.context sys p2 (Machine.core m 1) in
  let vh2 = Api.vas_attach ctx2 (Api.vas_find ctx2 ~name:"v") in
  Api.vas_switch ctx2 vh2;
  Api.switch_home ctx2;
  let beyond = Segment.base seg + Size.kib 64 in
  (* Before growth: past-the-end faults everywhere. *)
  Api.vas_switch ctx1 vh1;
  Alcotest.(check bool) "beyond end faults before growth" true
    (try
       ignore (Api.load64 ctx1 ~va:beyond);
       false
     with Machine.Page_fault _ -> true);
  Api.switch_home ctx1;
  (* One client grows the segment; nobody else does anything. *)
  Api.seg_ctl ctx1 (`Grow (seg, Size.kib 64));
  Alcotest.(check int) "segment doubled" (Size.kib 128) (Segment.size seg);
  (* Both attachments see the new range at their next switch. *)
  Api.vas_switch ctx1 vh1;
  Api.store64 ctx1 ~va:beyond 77L;
  Alcotest.(check int64) "grower writes the new range" 77L (Api.load64 ctx1 ~va:beyond);
  Api.switch_home ctx1;
  Api.vas_switch ctx2 vh2;
  Alcotest.(check int64) "peer sees it after its next switch" 77L
    (Api.load64 ctx2 ~va:beyond);
  Api.switch_home ctx2

let test_grow_extends_heap () =
  let _, _, ctx = setup () in
  let vas = Api.vas_create ctx ~name:"v" ~mode:0o600 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"heap" ~size:(Size.kib 64) ~mode:0o600 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  (* Exhaust the heap. *)
  let a = Api.malloc ctx (Size.kib 60) in
  Alcotest.(check bool) "heap exhausted" true
    (try
       ignore (Api.malloc ctx (Size.kib 16));
       false
     with Api.Out_of_memory -> true);
  Api.switch_home ctx;
  Api.seg_ctl ctx (`Grow (seg, Size.kib 64));
  Api.vas_switch ctx vh;
  let b = Api.malloc ctx (Size.kib 16) in
  Api.store64 ctx ~va:b 5L;
  Alcotest.(check int64) "allocation in grown space works" 5L (Api.load64 ctx ~va:b);
  Api.free ctx a;
  Api.free ctx b

let test_grow_refused_for_special_segments () =
  let _, _, ctx = setup () in
  let cached = Api.seg_alloc_anywhere ctx ~name:"cached" ~size:(Size.mib 1) ~mode:0o600 in
  Api.seg_ctl ctx (`Cache_translations cached);
  Alcotest.(check bool) "cached refused" true
    (try
       Api.seg_ctl ctx (`Grow (cached, Size.kib 64));
       false
     with Sj_abi.Error.Fault f -> f.code = Sj_abi.Error.Invalid);
  let huge = Api.seg_alloc_anywhere ~huge:true ctx ~name:"huge" ~size:(Size.mib 2) ~mode:0o600 in
  Alcotest.(check bool) "huge refused" true
    (try
       Api.seg_ctl ctx (`Grow (huge, Size.mib 2));
       false
     with Sj_abi.Error.Fault f -> f.code = Sj_abi.Error.Invalid);
  let snapped = Api.seg_alloc_anywhere ctx ~name:"snapped" ~size:(Size.mib 1) ~mode:0o600 in
  let _ = Api.seg_snapshot ctx snapped ~name:"frozen" in
  Alcotest.(check bool) "cow refused" true
    (try
       Api.seg_ctl ctx (`Grow (snapped, Size.kib 64));
       false
     with Sj_abi.Error.Fault f -> f.code = Sj_abi.Error.Invalid)

let test_grown_segment_persists () =
  let _, sys, ctx = setup () in
  let vas = Api.vas_create ctx ~name:"v" ~mode:0o600 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"g" ~size:(Size.kib 64) ~mode:0o600 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  Api.seg_ctl ctx (`Grow (seg, Size.kib 64));
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  Api.store64 ctx ~va:(Segment.base seg + Size.kib 100) 9L;
  Api.switch_home ctx;
  let image = Sj_persist.Persist.save sys in
  let m2 = Machine.create tiny in
  let sys2 = Api.boot m2 in
  let p2 = Process.create ~name:"p" m2 in
  let ctx2 = Api.context sys2 p2 (Machine.core m2 0) in
  Sj_persist.Persist.restore sys2 image;
  let vh2 = Api.vas_attach ctx2 (Api.vas_find ctx2 ~name:"v") in
  Api.vas_switch ctx2 vh2;
  Alcotest.(check int64) "grown range survives reboot" 9L
    (Api.load64 ctx2 ~va:(Segment.base seg + Size.kib 100))

let suite =
  [
    Alcotest.test_case "mspace extend" `Quick test_mspace_extend;
    Alcotest.test_case "mspace extend arg checks" `Quick test_mspace_extend_bad_args;
    Alcotest.test_case "growth propagates to attachments" `Quick
      test_grow_propagates_to_attachments;
    Alcotest.test_case "growth extends the shared heap" `Quick test_grow_extends_heap;
    Alcotest.test_case "growth refused for special segments" `Quick
      test_grow_refused_for_special_segments;
    Alcotest.test_case "grown segment persists" `Quick test_grown_segment_persists;
  ]
