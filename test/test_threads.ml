(* Multi-threaded processes: the paper's switching unit is the thread —
   "threads of that process can switch between these VASes in a
   lightweight manner" (sec 1), with per-thread stacks in the common
   region (Fig. 2). *)
open Sj_util
open Sj_core
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Layout = Sj_kernel.Layout
module Prot = Sj_paging.Prot

let tiny : Platform.t =
  { Platform.m2 with name = "tiny"; mem_size = Size.mib 256; sockets = 2; cores_per_socket = 2 }

let setup () =
  let m = Machine.create tiny in
  let sys = Api.boot m in
  let p = Process.create ~name:"mt" m in
  (m, sys, p)

let make_vas ctx name =
  let vas = Api.vas_create ctx ~name ~mode:0o600 in
  let seg = Api.seg_alloc_anywhere ctx ~name:(name ^ ".data") ~size:(Size.mib 1) ~mode:0o600 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  (vas, seg)

let test_threads_in_different_vases () =
  (* Two threads of ONE process sit in two different VASes at once. *)
  let m, sys, p = setup () in
  let t1 = Api.context sys p (Machine.core m 0) in
  let _thread = Process.spawn_thread p in
  let t2 = Api.context sys p (Machine.core m 1) in
  let _, seg_a = make_vas t1 "A" in
  let _, seg_b = make_vas t1 "B" in
  let vh_a = Api.vas_attach t1 (Api.vas_find t1 ~name:"A") in
  let vh_b = Api.vas_attach t2 (Api.vas_find t2 ~name:"B") in
  Api.vas_switch t1 vh_a;
  Api.vas_switch t2 vh_b;
  Api.store64 t1 ~va:(Segment.base seg_a) 1L;
  Api.store64 t2 ~va:(Segment.base seg_b) 2L;
  (* Each thread sees only its own VAS's segment. *)
  Alcotest.(check int64) "t1 reads A" 1L (Api.load64 t1 ~va:(Segment.base seg_a));
  Alcotest.(check int64) "t2 reads B" 2L (Api.load64 t2 ~va:(Segment.base seg_b));
  Alcotest.(check bool) "t1 cannot see B" true
    (try
       ignore (Api.load64 t1 ~va:(Segment.base seg_b));
       false
     with Machine.Page_fault _ -> true);
  Alcotest.(check bool) "t2 cannot see A" true
    (try
       ignore (Api.load64 t2 ~va:(Segment.base seg_a));
       false
     with Machine.Page_fault _ -> true)

let test_late_thread_stack_visible () =
  (* A thread spawned AFTER an attachment exists: its stack must become
     usable inside that attachment (runtime bookkeeping, sec 4.1). *)
  let m, sys, p = setup () in
  let t1 = Api.context sys p (Machine.core m 0) in
  let vas, _seg = make_vas t1 "A" in
  let vh = Api.vas_attach t1 vas in
  (* Spawn the thread after the attach. *)
  let th = Process.spawn_thread p in
  let t2 = Api.context sys p (Machine.core m 1) in
  Api.vas_switch t2 vh;
  (* The new thread writes to its own stack while inside the VAS. *)
  let sp = th.stack_base + th.stack_size - 128 in
  Api.store64 t2 ~va:sp 0xABCDL;
  Alcotest.(check int64) "stack usable inside VAS" 0xABCDL (Api.load64 t2 ~va:sp);
  Api.switch_home t2;
  Alcotest.(check int64) "stack consistent at home" 0xABCDL (Api.load64 t2 ~va:sp)

let test_threads_share_heap_state () =
  (* Two threads switched into the same VAS allocate from the same
     mspace: no overlap, both allocations usable. *)
  let m, sys, p = setup () in
  let t1 = Api.context sys p (Machine.core m 0) in
  let _thread = Process.spawn_thread p in
  let t2 = Api.context sys p (Machine.core m 1) in
  let vas, _ = make_vas t1 "shared" in
  (* One attachment per process; both threads switch into it (the
     exclusive lock belongs to the attaching process). *)
  let vh = Api.vas_attach t1 vas in
  Api.vas_switch t1 vh;
  Api.vas_switch t2 vh;
  let a = Api.malloc t1 256 in
  let b = Api.malloc t2 256 in
  Alcotest.(check bool) "disjoint allocations" true (abs (a - b) >= 256);
  Api.store64 t1 ~va:a 10L;
  Api.store64 t2 ~va:b 20L;
  Alcotest.(check int64) "t2 sees t1's write" 10L (Api.load64 t2 ~va:a);
  Api.free t2 a;
  Api.free t1 b

let test_lock_modes_across_threads () =
  (* Two read-only attachments from two threads share the lock; a
     writer thread is excluded while they are inside. *)
  let m, sys, p = setup () in
  let t1 = Api.context sys p (Machine.core m 0) in
  let _th = Process.spawn_thread p in
  let t2 = Api.context sys p (Machine.core m 1) in
  let seg = Api.seg_alloc_anywhere t1 ~name:"locked" ~size:(Size.mib 1) ~mode:0o600 in
  let vas_ro = Api.vas_create t1 ~name:"ro" ~mode:0o600 in
  Api.seg_attach t1 vas_ro seg ~prot:Prot.r;
  let vas_rw = Api.vas_create t1 ~name:"rw" ~mode:0o600 in
  Api.seg_attach t1 vas_rw seg ~prot:Prot.rw;
  let r1 = Api.vas_attach t1 vas_ro in
  let r2 = Api.vas_attach t2 vas_ro in
  let w = Api.vas_attach t1 vas_rw in
  Api.vas_switch t1 r1;
  Api.vas_switch t2 r2;
  Alcotest.(check bool) "two reader threads inside" true
    (Segment.lock_state seg = Segment.Shared 2);
  Api.switch_home t1;
  Alcotest.(check bool) "writer blocked by the other thread" true
    (try
       Api.vas_switch t1 w;
       false
     with Errors.Would_block _ -> true);
  Api.switch_home t2;
  Api.vas_switch t1 w;
  Alcotest.(check bool) "writer enters when readers leave" true
    (Segment.lock_state seg = Segment.Exclusive)

let test_exit_frees_thread_stacks () =
  let m, sys, p = setup () in
  let before = Sj_mem.Phys_mem.frames_allocated (Machine.mem m) in
  ignore before;
  let _t1 = Api.context sys p (Machine.core m 0) in
  let _ = Process.spawn_thread p in
  let _ = Process.spawn_thread p in
  Alcotest.(check int) "three threads" 3 (List.length (Process.threads p));
  ignore sys

let suite =
  [
    Alcotest.test_case "threads in different VASes" `Quick test_threads_in_different_vases;
    Alcotest.test_case "late thread stack visible in attachment" `Quick
      test_late_thread_stack_visible;
    Alcotest.test_case "threads share heap state" `Quick test_threads_share_heap_state;
    Alcotest.test_case "lock modes across threads" `Quick test_lock_modes_across_threads;
    Alcotest.test_case "thread accounting" `Quick test_exit_frees_thread_stacks;
  ]
