(* The typed fault model and the numbered dispatch table (kernel ABI).

   Every error code must be constructible through the public API, under
   both OS personalities; the per-syscall counters must track calls and
   simulated cycles; the numbering and exit-code mappings are part of
   the ABI and must stay stable. *)
open Sj_util
open Sj_core
module Machine = Sj_machine.Machine
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Layout = Sj_kernel.Layout
module Acl = Sj_kernel.Acl
module Prot = Sj_paging.Prot
module Error = Sj_abi.Error
module Sys = Sj_abi.Sys
module C = Api.Checked

let tiny : Platform.t =
  { Platform.m2 with name = "tiny"; mem_size = Size.mib 256; sockets = 2; cores_per_socket = 2 }

let boot backend =
  let m = Machine.create tiny in
  let sys = Api.boot ~backend m in
  let p = Process.create ~name:"errs" m in
  let ctx = Api.context sys p (Machine.core m 0) in
  (m, sys, ctx)

let code = Alcotest.testable Error.pp_code Error.equal_code

let check_code name expect = function
  | Ok _ -> Alcotest.failf "%s: expected %s but the call succeeded" name (Error.code_name expect)
  | Error (f : Error.t) -> Alcotest.check code name expect f.code

(* One world per backend that visits all ten codes. *)
let exercise_all_codes backend () =
  let m, sys, ctx = boot backend in
  let vas = Api.vas_create ctx ~name:"v" ~mode:0o666 in
  check_code "Name_exists" Error.Name_exists (C.vas_create ctx ~name:"v" ~mode:0o666);
  check_code "Unknown_name" Error.Unknown_name (C.vas_find ctx ~name:"nope");
  (* A foreign credential fails the ACL check. *)
  let priv = Api.vas_create ctx ~name:"priv" ~mode:0o600 in
  let mallory = Process.create ~name:"mallory" ~cred:(Acl.cred ~uid:666 ~gids:[ 666 ]) m in
  let ctx_m = Api.context sys mallory (Machine.core m 1) in
  check_code "Permission_denied" Error.Permission_denied (C.vas_attach ctx_m priv);
  let seg = Api.seg_alloc_anywhere ctx ~name:"s" ~size:(Size.mib 1) ~mode:0o666 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  check_code "Address_conflict" Error.Address_conflict (C.seg_attach ctx vas seg ~prot:Prot.rw);
  (* Writer inside the VAS holds the segment lock exclusively. *)
  let ro = Api.vas_create ctx ~name:"ro" ~mode:0o666 in
  Api.seg_attach ctx ro seg ~prot:Prot.r;
  let vh_w = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh_w;
  let reader = Process.create ~name:"reader" m in
  let ctx_r = Api.context sys reader (Machine.core m 2) in
  let vh_r = Api.vas_attach ctx_r (Api.vas_find ctx_r ~name:"ro") in
  check_code "Would_block" Error.Would_block (C.vas_switch ctx_r vh_r);
  (* Heap faults while switched in: exhaustion and a bad free. *)
  let a = Api.malloc ctx (Size.kib 16) in
  check_code "Capacity" Error.Capacity (C.malloc ctx (Size.mib 2));
  check_code "Invalid" Error.Invalid (C.free ctx (a + 8));
  (* The tenth code: tag the segment with one key, then cross into a
     compartment that does not hold it — the data access is denied by
     the key register, identically under both backends. *)
  let key = Api.pkey_alloc ctx vas in
  Api.pkey_assign ctx vas seg ~key;
  let stranger = Api.pkey_alloc ctx vas in
  Api.pkey_switch ctx ~key:stranger;
  check_code "Key_violation" Error.Key_violation
    (try
       ignore (Api.load64 ctx ~va:(Segment.base seg));
       Ok ()
     with Error.Fault f -> Error f);
  Api.pkey_switch ctx ~key:0;
  Api.switch_home ctx;
  let dead = Api.vas_create ctx ~name:"dead" ~mode:0o666 in
  Api.vas_ctl ctx (`Destroy dead);
  check_code "Stale_handle" Error.Stale_handle (C.seg_attach ctx dead seg ~prot:Prot.r);
  (* Burn the rest of the global range, then ask for more. *)
  Layout.reserve_global (Machine.sim_ctx m) ~base:(Addr.va_limit - Size.gib 1)
    ~size:(Size.gib 1);
  check_code "Layout_exhausted" Error.Layout_exhausted
    (C.seg_alloc_anywhere ctx ~name:"none" ~size:(Size.mib 1) ~mode:0o600)

let test_counters_track_calls_and_cycles () =
  let measure backend =
    let _, sys, ctx = boot backend in
    let tab = Api.syscalls sys in
    let calls0, cycles0 = Sys.counters tab Sys.Vas_create in
    Alcotest.(check (pair int int)) "fresh table" (0, 0) (calls0, cycles0);
    ignore (Api.vas_create ctx ~name:"v" ~mode:0o600);
    let calls, cycles = Sys.counters tab Sys.Vas_create in
    Alcotest.(check int) "one call" 1 calls;
    Alcotest.(check bool) "cycles accounted" true (cycles > 0);
    cycles
  in
  let df = measure Sj_abi.Sys.Dragonfly in
  let bf = measure Sj_abi.Sys.Barrelfish in
  (* Same body, different boundary crossing: one syscall trap vs an RPC
     round trip to the user-space service (Table 2). *)
  Alcotest.(check bool) (Printf.sprintf "trap cost differs (df %d, bf %d)" df bf) true (df <> bf)

let test_failed_calls_still_counted () =
  let _, sys, ctx = boot Sj_abi.Sys.Dragonfly in
  let tab = Api.syscalls sys in
  ignore (Api.vas_create ctx ~name:"v" ~mode:0o600);
  check_code "duplicate" Error.Name_exists (C.vas_create ctx ~name:"v" ~mode:0o600);
  let calls, _ = Sys.counters tab Sys.Vas_create in
  Alcotest.(check int) "both attempts counted" 2 calls

let test_numbering_roundtrip () =
  Alcotest.(check int) "table size" (Array.length Sys.all) Sys.nr_count;
  Array.iteri
    (fun i nr ->
      Alcotest.(check int) (Sys.name nr) i (Sys.number nr);
      Alcotest.(check bool) "of_number inverts" true (Sys.of_number i = Some nr))
    Sys.all;
  Alcotest.(check bool) "out of range" true (Sys.of_number Sys.nr_count = None);
  Alcotest.(check bool) "negative" true (Sys.of_number (-1) = None)

(* The tenth code's ABI numbers are frozen: EKEY is errno 10, so sjctl
   maps a key violation to exit 20. *)
let test_key_violation_numbering () =
  Alcotest.(check int) "ten codes" 10 (List.length Error.all_codes);
  Alcotest.(check int) "EKEY errno" 10 (Error.errno Error.Key_violation);
  Alcotest.(check int) "EKEY exit code" 20 (Error.exit_code Error.Key_violation);
  Alcotest.(check string) "EKEY name" "EKEY" (Error.code_name Error.Key_violation)

let test_exit_codes_distinct () =
  let exits = List.map Error.exit_code Error.all_codes in
  Alcotest.(check int) "all distinct" (List.length Error.all_codes)
    (List.length (List.sort_uniq compare exits));
  List.iter
    (fun c ->
      Alcotest.(check bool) "leaves 0..10 to the tool and stays a valid status" true
        (c > 10 && c < 128))
    exits

let suite =
  [
    Alcotest.test_case "all codes via API (DragonFly)" `Quick
      (exercise_all_codes Sj_abi.Sys.Dragonfly);
    Alcotest.test_case "all codes via API (Barrelfish)" `Quick
      (exercise_all_codes Sj_abi.Sys.Barrelfish);
    Alcotest.test_case "counters track calls and cycles" `Quick
      test_counters_track_calls_and_cycles;
    Alcotest.test_case "failed calls still counted" `Quick test_failed_calls_still_counted;
    Alcotest.test_case "ABI numbering roundtrip" `Quick test_numbering_roundtrip;
    Alcotest.test_case "Key_violation numbering frozen" `Quick
      test_key_violation_numbering;
    Alcotest.test_case "exit codes distinct" `Quick test_exit_codes_distinct;
  ]
