(* Tests for the genomics workload: record generation, SAM/BAM codecs,
   operations, and cross-design pipeline equivalence. *)
open Sj_util
open Sj_genomics
module Machine = Sj_machine.Machine
module Platform = Sj_machine.Platform
module Api = Sj_core.Api

let tiny : Platform.t =
  { Platform.m1 with name = "tiny"; mem_size = Size.mib 512; sockets = 2; cores_per_socket = 2 }

let small_dataset ?(reads = 500) () =
  Record.generate ~seed:7 ~references:Record.default_references ~reads ~read_len:50

let test_generate_deterministic () =
  let a = small_dataset () and b = small_dataset () in
  Alcotest.(check bool) "equal datasets" true (a = b);
  Alcotest.(check int) "count" 500 (Array.length a)

let test_generate_flags_sane () =
  let d = small_dataset ~reads:2000 () in
  let mapped = Array.to_list d |> List.filter Record.is_mapped |> List.length in
  Alcotest.(check bool) "mostly mapped" true (mapped > 1800);
  Array.iter
    (fun (r : Record.t) ->
      Alcotest.(check bool) "paired" true (r.flag land Record.flag_paired <> 0);
      if not (Record.is_mapped r) then begin
        Alcotest.(check int) "unmapped pos 0" 0 r.pos;
        Alcotest.(check string) "unmapped rname *" "*" r.rname
      end
      else Alcotest.(check bool) "mapped pos positive" true (r.pos > 0))
    d

let test_sam_roundtrip () =
  let d = small_dataset () in
  match Sam.decode (Sam.encode Record.default_references d) with
  | Ok d' -> Alcotest.(check bool) "equal" true (d = d')
  | Error e -> Alcotest.fail e

let test_sam_rejects_garbage () =
  Alcotest.(check bool) "bad line" true
    (Result.is_error (Sam.of_line "only\tthree\tfields"));
  Alcotest.(check bool) "bad number" true
    (Result.is_error (Sam.of_line "q\tNaN\tchr1\t1\t60\t50M\t=\t1\t100\tACGT\tqqqq"))

let test_bam_roundtrip () =
  let d = small_dataset () in
  match Bam.decode (Bam.encode Record.default_references d) with
  | Ok d' -> Alcotest.(check bool) "equal" true (d = d')
  | Error e -> Alcotest.fail e

let test_bam_smaller_than_sam () =
  let d = Record.generate ~seed:3 ~references:Record.default_references ~reads:3000 ~read_len:100 in
  let sam = Bytes.length (Sam.encode Record.default_references d) in
  let bam = Bytes.length (Bam.encode Record.default_references d) in
  Alcotest.(check bool)
    (Printf.sprintf "bam %d < sam %d (>=1.7x)" bam sam)
    true
    (bam * 17 < sam * 10)

let test_bam_bad_magic () =
  let data = Sj_compress.Block_lz.compress (Bytes.of_string "NOPE....") in
  Alcotest.(check bool) "rejected" true (Result.is_error (Bam.decode data))

let test_flagstat () =
  let d = small_dataset ~reads:1000 () in
  let fs = Ops.flagstat (Ops.host_only d) in
  Alcotest.(check int) "total" 1000 fs.Ops.total;
  Alcotest.(check int) "paired = total" 1000 fs.Ops.paired;
  Alcotest.(check int) "read1+read2 = total" 1000 (fs.Ops.read1 + fs.Ops.read2);
  Alcotest.(check bool) "mapped <= total" true (fs.Ops.mapped <= fs.Ops.total);
  let manual = Array.to_list d |> List.filter Record.is_mapped |> List.length in
  Alcotest.(check int) "mapped count" manual fs.Ops.mapped

let test_sorts () =
  let d = small_dataset ~reads:1000 () in
  let ds = Ops.host_only d in
  let by_name = Ops.apply_permutation d (Ops.sort_permutation ds ~by:`Qname) in
  let sorted_names = Array.map (fun (r : Record.t) -> r.qname) by_name in
  let expected = Array.copy sorted_names in
  Array.sort compare expected;
  Alcotest.(check bool) "qname order" true (sorted_names = expected);
  let by_coord = Ops.apply_permutation d (Ops.sort_permutation ds ~by:`Coordinate) in
  Alcotest.(check bool) "coordinate order" true
    (Ops.is_coordinate_sorted (Ops.host_only by_coord));
  (* Sorting is a permutation. *)
  let key (r : Record.t) = (r.qname, r.flag, r.rname, r.pos) in
  let sort_keys a = List.sort compare (Array.to_list (Array.map key a)) in
  Alcotest.(check bool) "permutation" true (sort_keys d = sort_keys by_coord)

let test_index () =
  let d = small_dataset ~reads:1000 () in
  let sorted =
    Ops.apply_permutation d (Ops.sort_permutation (Ops.host_only d) ~by:`Coordinate)
  in
  let idx = Ops.build_index (Ops.host_only sorted) ~bin_bp:16384 in
  Alcotest.(check bool) "non-empty" true (List.length idx > 0);
  (* Bin record counts sum to the mapped read count. *)
  let total = List.fold_left (fun acc (e : Ops.index_entry) -> acc + e.count) 0 idx in
  let mapped = Array.to_list sorted |> List.filter Record.is_mapped |> List.length in
  Alcotest.(check int) "counts sum to mapped" mapped total;
  (* Every entry's first record really starts in that bin. *)
  List.iter
    (fun (e : Ops.index_entry) ->
      let r = sorted.(e.first) in
      Alcotest.(check string) "rname" e.bin_rname r.Record.rname;
      Alcotest.(check int) "bin" e.bin_id (r.Record.pos / 16384))
    idx

let test_pileup () =
  let d = small_dataset ~reads:2000 () in
  let refs = Record.default_references in
  let r0 = List.hd refs in
  let p = Ops.pileup (Ops.host_only d) ~rname:r0.Record.ref_name ~ref_length:r0.Record.length ~read_len:50 in
  Alcotest.(check string) "rname" r0.Record.ref_name p.Ops.p_rname;
  Alcotest.(check bool) "coverage positive" true (p.Ops.covered > 0);
  Alcotest.(check bool) "max >= mean" true (float_of_int p.Ops.max_depth >= p.Ops.mean_depth);
  (* Conservation: total depth mass = contributing reads x read_len
     (clipped at the reference end). *)
  let contributing =
    Array.to_list d
    |> List.filter (fun (r : Record.t) ->
           Record.is_mapped r
           && r.Record.rname = r0.Record.ref_name
           && r.Record.flag land Record.flag_secondary = 0)
    |> List.length
  in
  let mass = p.Ops.mean_depth *. float_of_int p.Ops.covered in
  Alcotest.(check bool) "depth mass bounded by reads x len" true
    (mass <= float_of_int (contributing * 50) +. 0.5);
  (* An empty reference has no coverage. *)
  let empty = Ops.pileup (Ops.host_only [||]) ~rname:"chrX" ~ref_length:1000 ~read_len:50 in
  Alcotest.(check int) "empty" 0 empty.Ops.covered

(* --- region queries (samtools view) --- *)

let test_view_equivalence () =
  let records =
    Record.generate ~seed:9 ~references:Record.default_references ~reads:5000 ~read_len:80
  in
  let v = View.build Record.default_references records in
  let sorted =
    Ops.apply_permutation records (Ops.sort_permutation (Ops.host_only records) ~by:`Coordinate)
  in
  let naive rname lo hi =
    Array.to_list sorted
    |> List.filter (fun (r : Record.t) ->
           Record.is_mapped r && r.Record.rname = rname && r.Record.pos >= lo && r.Record.pos < hi)
  in
  let rng = Rng.create ~seed:31 in
  for _ = 1 to 40 do
    let refs = Array.of_list Record.default_references in
    let re = refs.(Rng.int rng (Array.length refs)) in
    let lo = Rng.int rng re.Record.length in
    let hi = min re.Record.length (lo + 1 + Rng.int rng 30_000) in
    let got = View.query v ~rname:re.Record.ref_name ~lo ~hi in
    let want = naive re.Record.ref_name lo hi in
    Alcotest.(check int)
      (Printf.sprintf "%s:%d-%d count" re.Record.ref_name lo hi)
      (List.length want) (List.length got);
    Alcotest.(check bool) "same records in order" true (got = want)
  done;
  (* Degenerate windows. *)
  Alcotest.(check (list reject)) "empty window" []
    (View.query v ~rname:"chr1" ~lo:5 ~hi:5 |> List.map ignore);
  Alcotest.(check (list reject)) "unknown reference" []
    (View.query v ~rname:"chrMT" ~lo:0 ~hi:1000 |> List.map ignore)

let test_view_touches_few_blocks () =
  let records =
    Record.generate ~seed:9 ~references:Record.default_references ~reads:20_000 ~read_len:80
  in
  let v = View.build Record.default_references records in
  let touched, total = View.blocks_for v ~rname:"chr1" ~lo:50_000 ~hi:52_000 in
  Alcotest.(check bool)
    (Printf.sprintf "small window touches %d of %d blocks" touched total)
    true
    (total >= 10 && touched * 4 < total);
  (* And the cost accounting reflects it: a narrow query charges far
     less than decoding the whole file. *)
  let m = Machine.create tiny in
  let core = Machine.core m 0 in
  let c0 = Machine.Core.cycles core in
  ignore (View.query ~charge_to:core v ~rname:"chr1" ~lo:50_000 ~hi:52_000);
  let narrow = Machine.Core.cycles core - c0 in
  let full_cost =
    Sj_compress.Block_lz.decompress_cycles
      ~uncompressed:(total * Sj_compress.Block_lz.block_size)
  in
  Alcotest.(check bool)
    (Printf.sprintf "narrow query %d << full decompress %d" narrow full_cost)
    true
    (narrow * 3 < full_cost)

let test_records_between_exactness () =
  let records =
    Record.generate ~seed:2 ~references:Record.default_references ~reads:3000 ~read_len:60
  in
  let data, offsets = Bam.encode_indexed Record.default_references records in
  (* Arbitrary interior slices decode to exactly the right records. *)
  let rng = Rng.create ~seed:77 in
  for _ = 1 to 25 do
    let first = Rng.int rng 2900 in
    let count = 1 + Rng.int rng 99 in
    let got = Bam.records_between data ~offsets ~first ~count in
    Alcotest.(check bool) "slice matches" true
      (got = Array.sub records first count)
  done;
  Alcotest.(check int) "empty slice" 0
    (Array.length (Bam.records_between data ~offsets ~first:10 ~count:0));
  Alcotest.(check bool) "out of range rejected" true
    (try
       ignore (Bam.records_between data ~offsets ~first:2999 ~count:10);
       false
     with Invalid_argument _ -> true)

let make_world () =
  let machine = Machine.create tiny in
  let sys = Api.boot machine in
  let proc = Sj_kernel.Process.create ~name:"geno" machine in
  let ctx = Api.context sys proc (Machine.core machine 0) in
  let fs = Sj_memfs.Memfs.create machine in
  let env = Pipelines.make_env machine fs (Machine.core machine 1) in
  (machine, ctx, env)

let test_pipelines_agree () =
  (* The three storage designs must compute identical results. *)
  let records = small_dataset ~reads:400 () in
  let _, ctx, env = make_world () in
  Pipelines.write_input_file env ~format:`Sam ~path:"in.sam" records;
  Pipelines.write_input_file env ~format:`Bam ~path:"in.bam" records;
  let mm = Pipelines.prepare_mmap env ~path:"region" records in
  let sj = Pipelines.prepare_spacejmp ctx ~name:"geno" records in
  (* The SpaceJMP store really holds the bytes: decode a few records
     straight out of segment memory (original layout order). *)
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "record %d intact in memory" i)
        true
        (Pipelines.spacejmp_record_at sj i = records.(i)))
    [ 0; 17; Array.length records - 1 ];
  (* flagstat equivalence *)
  let run_flagstat f result =
    ignore (f Pipelines.Flagstat);
    Option.get (result ())
  in
  let env_result () = Pipelines.flagstat_result env in
  let f_sam =
    run_flagstat
      (fun op -> Pipelines.run_file env ~format:`Sam op ~in_path:"in.sam" ~out_path:"o")
      env_result
  in
  let f_bam =
    run_flagstat
      (fun op -> Pipelines.run_file env ~format:`Bam op ~in_path:"in.bam" ~out_path:"o")
      env_result
  in
  let f_mm = run_flagstat (fun op -> Pipelines.run_mmap mm op) env_result in
  let f_sj =
    run_flagstat (fun op -> Pipelines.run_spacejmp sj op) (fun () -> Pipelines.spacejmp_flagstat sj)
  in
  Alcotest.(check bool) "flagstat equal" true (f_sam = f_bam && f_bam = f_mm && f_mm = f_sj);
  (* coordinate-sort equivalence: both in-memory designs end up sorted *)
  ignore (Pipelines.run_mmap mm Pipelines.Coord_sort);
  ignore (Pipelines.run_spacejmp sj Pipelines.Coord_sort);
  Alcotest.(check bool) "mmap sorted" true
    (Ops.is_coordinate_sorted (Ops.host_only (Pipelines.mmap_records mm)));
  Alcotest.(check bool) "spacejmp sorted" true
    (Ops.is_coordinate_sorted (Ops.host_only (Pipelines.spacejmp_records sj)));
  Alcotest.(check bool) "same order" true
    (Pipelines.mmap_records mm = Pipelines.spacejmp_records sj)

let test_file_pipeline_writes_output () =
  let records = small_dataset ~reads:200 () in
  let _, _, env = make_world () in
  Pipelines.write_input_file env ~format:`Sam ~path:"in.sam" records;
  let _ = Pipelines.run_file env ~format:`Sam Pipelines.Coord_sort ~in_path:"in.sam" ~out_path:"out.sam" in
  let out = Pipelines.file_records env ~format:`Sam ~path:"out.sam" in
  Alcotest.(check int) "record count preserved" 200 (Array.length out);
  Alcotest.(check bool) "output sorted" true (Ops.is_coordinate_sorted (Ops.host_only out))

let test_spacejmp_cheaper_than_files () =
  let records = small_dataset ~reads:400 () in
  let _, ctx, env = make_world () in
  Pipelines.write_input_file env ~format:`Sam ~path:"in.sam" records;
  let sj = Pipelines.prepare_spacejmp ctx ~name:"geno2" records in
  let sam = Pipelines.run_file env ~format:`Sam Pipelines.Flagstat ~in_path:"in.sam" ~out_path:"o" in
  let sjc = Pipelines.run_spacejmp sj Pipelines.Flagstat in
  Alcotest.(check bool) "spacejmp at least 3x cheaper" true (sjc * 3 < sam)

let prop_sam_line_roundtrip =
  QCheck.Test.make ~name:"SAM line roundtrip on generated records" ~count:200
    QCheck.(int_bound 10_000)
    (fun seed ->
      let d = Record.generate ~seed ~references:Record.default_references ~reads:2 ~read_len:20 in
      Array.for_all (fun r -> Sam.of_line (Sam.to_line r) = Ok r) d)

let prop_bam_record_roundtrip =
  QCheck.Test.make ~name:"BAM record roundtrip" ~count:200
    QCheck.(int_bound 10_000)
    (fun seed ->
      let d = Record.generate ~seed ~references:Record.default_references ~reads:2 ~read_len:33 in
      Array.for_all
        (fun r ->
          let buf = Buffer.create 64 in
          Bam.encode_record buf r;
          let r', _ = Bam.decode_record (Buffer.to_bytes buf) ~pos:0 in
          r = r')
        d)

let suite =
  [
    Alcotest.test_case "generation deterministic" `Quick test_generate_deterministic;
    Alcotest.test_case "generated flags sane" `Quick test_generate_flags_sane;
    Alcotest.test_case "SAM roundtrip" `Quick test_sam_roundtrip;
    Alcotest.test_case "SAM rejects garbage" `Quick test_sam_rejects_garbage;
    Alcotest.test_case "BAM roundtrip" `Quick test_bam_roundtrip;
    Alcotest.test_case "BAM smaller than SAM" `Quick test_bam_smaller_than_sam;
    Alcotest.test_case "BAM bad magic" `Quick test_bam_bad_magic;
    Alcotest.test_case "flagstat" `Quick test_flagstat;
    Alcotest.test_case "sorts" `Quick test_sorts;
    Alcotest.test_case "index" `Quick test_index;
    Alcotest.test_case "pileup" `Quick test_pileup;
    Alcotest.test_case "view: equivalence with naive filter" `Quick test_view_equivalence;
    Alcotest.test_case "view: block-granular access" `Quick test_view_touches_few_blocks;
    Alcotest.test_case "records_between exactness" `Quick test_records_between_exactness;
    Alcotest.test_case "pipelines agree" `Quick test_pipelines_agree;
    Alcotest.test_case "file pipeline writes output" `Quick test_file_pipeline_writes_output;
    Alcotest.test_case "spacejmp cheaper than files" `Quick test_spacejmp_cheaper_than_files;
    QCheck_alcotest.to_alcotest prop_sam_line_roundtrip;
    QCheck_alcotest.to_alcotest prop_bam_record_roundtrip;
  ]
