(* Model-based fuzzing of the SpaceJMP API.

   Random sequences of Fig. 3 calls run against the real system and a
   tiny reference model of what should be visible where:
   - a segment's cells are readable/writable exactly when the current
     attachment's *synced* segment list contains the segment (VAS-global
     attach/detach propagates lazily, at the next switch — the model
     tracks per-attachment synced sets just like the kernel does);
   - values stored through any attachment are seen by every later
     reader of that segment (single physical backing);
   - outside any VAS, segment addresses fault.

   Each discrepancy — wrong value, unexpected success, unexpected
   fault — fails the property. *)

open Sj_util
open Sj_core
module Machine = Sj_machine.Machine
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Layout = Sj_kernel.Layout
module Prot = Sj_paging.Prot

let tiny : Platform.t =
  { Platform.m2 with name = "tiny"; mem_size = Size.mib 256; sockets = 2; cores_per_socket = 2 }

let n_vases = 3
let n_segs = 3
let cells_per_seg = 4

type model = {
  mutable vas_segs : int list array; (* vas -> attached seg indices (current, global) *)
  mutable attachments : (int * int list ref) list; (* vh id -> (vas, synced segs) *)
  mutable current : int option; (* vh id *)
  cells : int64 option array array; (* seg -> cell -> last value *)
}

type world = {
  ctx : Api.ctx;
  vases : Vas.t array;
  segs : Segment.t array;
  mutable vhs : (int * Api.vh) list;
  mutable next_vh : int;
  model : model;
}

let build_world () =
  let m = Machine.create tiny in
  let sys = Api.boot m in
  let p = Process.create ~name:"fuzz" m in
  let ctx = Api.context sys p (Machine.core m 0) in
  let vases =
    Array.init n_vases (fun i -> Api.vas_create ctx ~name:(Printf.sprintf "v%d" i) ~mode:0o600)
  in
  let segs =
    Array.init n_segs (fun i ->
        Api.seg_alloc_anywhere ctx ~name:(Printf.sprintf "s%d" i) ~size:(Size.kib 64) ~mode:0o600)
  in
  {
    ctx;
    vases;
    segs;
    vhs = [];
    next_vh = 0;
    model =
      {
        vas_segs = Array.make n_vases [];
        attachments = [];
        current = None;
        cells = Array.make_matrix n_segs cells_per_seg None;
      };
  }

let cell_va w seg cell = Segment.base w.segs.(seg) + (cell * 64)

(* The typed-fault ABI guarantees no raw [Failure]/[Invalid_argument]
   leaks out of the API — errors surface as [Sj_abi.Error.Fault] or the
   legacy [Errors] exceptions. Every API call in the fuzz goes through
   this guard; the model's own [failwith] diagnostics stay outside it,
   so a raw escape is distinguishable from a model discrepancy. *)
let api f =
  try f () with
  | Failure m -> Alcotest.failf "raw Failure escaped the API: %s" m
  | Invalid_argument m -> Alcotest.failf "raw Invalid_argument escaped the API: %s" m

(* Can the current model state see [seg]? *)
let visible w seg =
  match w.model.current with
  | None -> false
  | Some vh -> (
    match List.assoc_opt vh w.model.attachments with
    | Some synced -> List.mem seg !synced
    | None -> false)

(* Which VAS each attachment id belongs to (model side-table). *)
let vh_vas : (int, int) Hashtbl.t = Hashtbl.create 16

type op =
  | Attach_seg of int * int (* seg, vas *)
  | Detach_seg of int * int
  | Vas_attach of int
  | Switch of int (* index into live vhs, modulo *)
  | Switch_home
  | Detach_vh of int
  | Store of int * int * int (* seg, cell, value *)
  | Load of int * int

let apply w op =
  let ctx = w.ctx in
  match op with
  | Attach_seg (seg, vas) ->
    let already = List.mem seg w.model.vas_segs.(vas) in
    (try
       api (fun () -> Api.seg_attach ctx w.vases.(vas) w.segs.(seg) ~prot:Prot.rw);
       if already then failwith "model: double attach should conflict";
       w.model.vas_segs.(vas) <- seg :: w.model.vas_segs.(vas)
     with Errors.Address_conflict _ ->
       if not already then failwith "model: attach unexpectedly conflicted")
  | Detach_seg (seg, vas) ->
    let present = List.mem seg w.model.vas_segs.(vas) in
    (try
       api (fun () -> Api.seg_detach ctx w.vases.(vas) w.segs.(seg));
       if not present then failwith "model: detach of absent segment succeeded";
       w.model.vas_segs.(vas) <- List.filter (fun s -> s <> seg) w.model.vas_segs.(vas)
     with Errors.Unknown_name _ ->
       if present then failwith "model: detach unexpectedly failed")
  | Vas_attach vas ->
    let vh = api (fun () -> Api.vas_attach ctx w.vases.(vas)) in
    let id = w.next_vh in
    w.next_vh <- id + 1;
    w.vhs <- (id, vh) :: w.vhs;
    (* Attach syncs immediately. *)
    w.model.attachments <- (id, ref w.model.vas_segs.(vas)) :: w.model.attachments;
    Hashtbl.replace vh_vas id vas
  | Switch k -> (
    match w.vhs with
    | [] -> ()
    | vhs ->
      let id, vh = List.nth vhs (k mod List.length vhs) in
      api (fun () -> Api.vas_switch ctx vh);
      (* Switching re-syncs the attachment to the VAS's current list. *)
      let vas = Hashtbl.find vh_vas id in
      (match List.assoc_opt id w.model.attachments with
      | Some synced -> synced := w.model.vas_segs.(vas)
      | None -> failwith "model: switch into untracked attachment");
      w.model.current <- Some id)
  | Switch_home ->
    api (fun () -> Api.switch_home ctx);
    w.model.current <- None
  | Detach_vh k -> (
    match w.vhs with
    | [] -> ()
    | vhs ->
      let id, vh = List.nth vhs (k mod List.length vhs) in
      api (fun () -> Api.vas_detach ctx vh);
      w.vhs <- List.filter (fun (i, _) -> i <> id) w.vhs;
      w.model.attachments <- List.remove_assoc id w.model.attachments;
      if w.model.current = Some id then w.model.current <- None)
  | Store (seg, cell, v) -> (
    let va = cell_va w seg cell in
    let expect = visible w seg in
    match api (fun () -> Api.store64 ctx ~va (Int64.of_int v)) with
    | () ->
      if not expect then failwith "model: store succeeded while segment invisible";
      w.model.cells.(seg).(cell) <- Some (Int64.of_int v)
    | exception Machine.Page_fault _ ->
      if expect then failwith "model: store faulted while segment visible")
  | Load (seg, cell) -> (
    let va = cell_va w seg cell in
    let expect = visible w seg in
    match api (fun () -> Api.load64 ctx ~va) with
    | got ->
      if not expect then failwith "model: load succeeded while segment invisible";
      (match w.model.cells.(seg).(cell) with
      | Some v when v <> got -> failwith "model: read wrong value"
      | Some _ -> ()
      | None -> if got <> 0L then failwith "model: fresh cell not zero")
    | exception Machine.Page_fault _ ->
      if expect then failwith "model: load faulted while segment visible")

let op_of_ints (a, b, c) =
  match a mod 8 with
  | 0 -> Attach_seg (b mod n_segs, c mod n_vases)
  | 1 -> Detach_seg (b mod n_segs, c mod n_vases)
  | 2 -> Vas_attach (b mod n_vases)
  | 3 -> Switch b
  | 4 -> Switch_home
  | 5 -> Detach_vh b
  | 6 -> Store (b mod n_segs, c mod cells_per_seg, (b * 31) + c + 1)
  | _ -> Load (b mod n_segs, c mod cells_per_seg)

let prop_api_matches_model =
  QCheck.Test.make ~name:"API agrees with the visibility model" ~count:60
    QCheck.(
      list_of_size Gen.(int_range 5 120)
        (triple (int_bound 1000) (int_bound 1000) (int_bound 1000)))
    (fun raw_ops ->
      Hashtbl.reset vh_vas;
      let w = build_world () in
      List.iter (fun triple -> apply w (op_of_ints triple)) raw_ops;
      true)

(* A directed regression covering the lazy-propagation corner the model
   encodes: detach globally, old attachment still sees the segment
   until its next switch. *)
let test_lazy_detach_visibility () =
  Hashtbl.reset vh_vas;
  let w = build_world () in
  apply w (Attach_seg (0, 0));
  apply w (Vas_attach 0);
  apply w (Switch 0);
  apply w (Store (0, 0, 7));
  (* Global detach while switched in: the mapping stays until re-switch
     (the kernel propagates at the next switch). The model mirrors this:
     visibility comes from the attachment's synced list. *)
  apply w (Detach_seg (0, 0));
  apply w (Load (0, 0));
  (* Re-switch: now it must fault. *)
  apply w (Switch 0);
  apply w (Load (0, 0));
  ()

let suite =
  [
    QCheck_alcotest.to_alcotest prop_api_matches_model;
    Alcotest.test_case "lazy detach visibility (directed)" `Quick test_lazy_detach_visibility;
  ]
