#!/bin/sh
# Domain-safety lint, run on every `dune runtest`.
#
# Simulations must be runnable concurrently on separate OCaml domains
# with bit-identical results, so lib/ may not create process-global
# mutable state: every mutable container must hang off a Sim_ctx,
# machine, or env that the caller owns. This grep catches top-level
# bindings to the stdlib's mutable-container constructors.
#
# Deliberately NOT flagged: top-level `Mutex.create` and
# `Domain.DLS.new_key` — those are the domain-safety tools themselves.
# lib/obs is covered like everything else: recorders hang off a
# Sim_ctx and the only ambient state is the Domain.DLS tracing default
# (mirroring Machine.with_fast_path). No allowlist entries for it.
#
# Allowlist (keep it at <= 2 entries; see HACKING.md before adding):
#   lib/util/rng.ml        zipf_tables — memo cache of harmonic tables;
#                          mutex-guarded, deterministic content.
#   lib/genomics/record.ml genomes — memo cache of synthetic reference
#                          sequences; mutex-guarded, deterministic.
set -u

hits=$(grep -rnE \
  '^let [a-zA-Z_0-9]+( *: *[^=]*)? *= *(ref |Hashtbl\.create|Buffer\.create|Queue\.create|Stack\.create|Array\.make|Bytes\.create|Atomic\.make)' \
  lib --include='*.ml' || true)

bad=$(printf '%s\n' "$hits" \
  | grep -vE '^lib/util/rng\.ml:[0-9]+:let zipf_tables ' \
  | grep -vE '^lib/genomics/record\.ml:[0-9]+:let genomes ' \
  | grep -v '^$' || true)

if [ -n "$bad" ]; then
  echo "lint_globals: top-level mutable state in lib/ (breaks domain parallelism):" >&2
  printf '%s\n' "$bad" >&2
  echo "Scope it in a Sim_ctx/machine/env, or (rarely) extend the allowlist in test/lint_globals.sh." >&2
  exit 1
fi

echo "lint_globals: OK (no process-global mutable state in lib/)"
