(* Heterogeneous memory tiers (sec 7): a performance tier plus an
   NVM-class capacity tier, with segment placement policy. *)
open Sj_util
open Sj_core
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Layout = Sj_kernel.Layout
module Pm = Sj_mem.Phys_mem
module Prot = Sj_paging.Prot

let tiny : Platform.t =
  Platform.with_capacity_tier
    { Platform.m2 with name = "tiny"; mem_size = Size.mib 64; sockets = 2; cores_per_socket = 2 }
    ~size:(Size.mib 256)

let setup () =
  let m = Machine.create tiny in
  let sys = Api.boot m in
  let p = Process.create ~name:"p" m in
  let ctx = Api.context sys p (Machine.core m 0) in
  (m, sys, ctx)

let test_topology () =
  let m, _, _ = setup () in
  let mem = Machine.mem m in
  Alcotest.(check int) "three nodes" 3 (Pm.node_count mem);
  Alcotest.(check bool) "node kinds" true
    (Pm.node_kind mem 0 = Pm.Performance
    && Pm.node_kind mem 1 = Pm.Performance
    && Pm.node_kind mem 2 = Pm.Capacity);
  Alcotest.(check (option int)) "capacity node" (Some 2) (Machine.capacity_node m);
  Alcotest.(check (option int)) "no tier on stock platforms" None
    (Machine.capacity_node (Machine.create Platform.m2))

let test_default_allocations_avoid_capacity () =
  let m, _, _ = setup () in
  let mem = Machine.mem m in
  let f = Pm.alloc_frame mem in
  Alcotest.(check bool) "performance tier preferred" true
    (Pm.node_kind mem (Pm.node_of_frame mem f) = Pm.Performance)

let test_spill_into_capacity_when_dram_full () =
  let m, _, _ = setup () in
  let mem = Machine.mem m in
  (* Exhaust the 64 MiB performance tier. *)
  let dram_frames = Size.mib 64 / Addr.page_size in
  let _ = Pm.alloc_frames mem ~n:dram_frames in
  let f = Pm.alloc_frame mem in
  Alcotest.(check bool) "spilled to capacity" true
    (Pm.node_kind mem (Pm.node_of_frame mem f) = Pm.Capacity)

let test_placement_policy () =
  let m, _, ctx = setup () in
  let mem = Machine.mem m in
  let fast = Api.seg_alloc_anywhere ctx ~name:"hot" ~size:(Size.mib 1) ~mode:0o600 in
  let slow = Api.seg_alloc_anywhere ~tier:`Capacity ctx ~name:"cold" ~size:(Size.mib 1) ~mode:0o600 in
  let node_of seg =
    Pm.node_of_frame mem (Sj_kernel.Vm_object.frame_at (Segment.vm_object seg) ~page:0)
  in
  Alcotest.(check bool) "hot in DRAM" true (Pm.node_kind mem (node_of fast) = Pm.Performance);
  Alcotest.(check bool) "cold in capacity tier" true
    (Pm.node_kind mem (node_of slow) = Pm.Capacity)

let test_capacity_tier_slower () =
  let _, _, ctx = setup () in
  let vas = Api.vas_create ctx ~name:"v" ~mode:0o600 in
  let fast = Api.seg_alloc_anywhere ctx ~name:"hot" ~size:(Size.mib 1) ~mode:0o600 in
  let slow = Api.seg_alloc_anywhere ~tier:`Capacity ctx ~name:"cold" ~size:(Size.mib 1) ~mode:0o600 in
  Api.seg_attach ctx vas fast ~prot:Prot.rw;
  Api.seg_attach ctx vas slow ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  let core = Api.core ctx in
  let measure base =
    (* Random single-line touches: cold TLB+caches dominate. *)
    let rng = Rng.create ~seed:4 in
    let c0 = Core.cycles core in
    for _ = 1 to 500 do
      ignore (Api.load64 ctx ~va:(base + (Rng.int rng (Size.mib 1 / 8) * 8)))
    done;
    Core.cycles core - c0
  in
  let hot = measure (Segment.base fast) in
  let cold = measure (Segment.base slow) in
  Alcotest.(check bool)
    (Printf.sprintf "capacity tier dearer (%d vs %d)" cold hot)
    true
    (cold > hot * 2)

let test_no_tier_requested_on_stock_platform () =
  let m = Machine.create Platform.m2 in
  let sys = Api.boot m in
  let p = Process.create ~name:"p" m in
  let ctx = Api.context sys p (Machine.core m 0) in
  Alcotest.(check bool) "refused" true
    (try
       ignore (Api.seg_alloc_anywhere ~tier:`Capacity ctx ~name:"x" ~size:(Size.mib 1) ~mode:0o600);
       false
     with Sj_abi.Error.Fault f -> f.code = Sj_abi.Error.Invalid)

let test_data_integrity_across_tiers () =
  let _, _, ctx = setup () in
  let vas = Api.vas_create ctx ~name:"v" ~mode:0o600 in
  let slow = Api.seg_alloc_anywhere ~tier:`Capacity ctx ~name:"cold" ~size:(Size.mib 1) ~mode:0o600 in
  Api.seg_attach ctx vas slow ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  Api.store_bytes ctx ~va:(Segment.base slow) (Bytes.of_string "nvm-resident data");
  Alcotest.(check string) "roundtrip" "nvm-resident data"
    (Bytes.to_string (Api.load_bytes ctx ~va:(Segment.base slow) ~len:17))

let suite =
  [
    Alcotest.test_case "tier topology" `Quick test_topology;
    Alcotest.test_case "default allocations avoid capacity" `Quick
      test_default_allocations_avoid_capacity;
    Alcotest.test_case "spill into capacity when DRAM full" `Quick
      test_spill_into_capacity_when_dram_full;
    Alcotest.test_case "segment placement policy" `Quick test_placement_policy;
    Alcotest.test_case "capacity tier slower" `Quick test_capacity_tier_slower;
    Alcotest.test_case "tier refused without hardware" `Quick
      test_no_tier_requested_on_stock_platform;
    Alcotest.test_case "data integrity across tiers" `Quick test_data_integrity_across_tiers;
  ]
