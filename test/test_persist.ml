(* Tests for VAS persistence across "reboots" (sec 7). *)
open Sj_util
open Sj_core
module Machine = Sj_machine.Machine
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Layout = Sj_kernel.Layout
module Prot = Sj_paging.Prot
module Persist = Sj_persist.Persist

let tiny : Platform.t =
  { Platform.m2 with name = "tiny"; mem_size = Size.mib 256; sockets = 2; cores_per_socket = 2 }

let boot () =
  let m = Machine.create tiny in
  let sys = Api.boot m in
  let p = Process.create ~name:"init" m in
  let ctx = Api.context sys p (Machine.core m 0) in
  (m, sys, ctx)

(* Build a world: one VAS, a data segment with heap allocations and a
   raw-data segment; return the image plus facts to check later. *)
let build_world () =
  let _, sys, ctx = boot () in
  let vas = Api.vas_create ctx ~name:"world" ~mode:0o640 in
  Api.vas_ctl ctx (`Request_tag vas);
  let heap_seg = Api.seg_alloc_anywhere ctx ~name:"heap" ~size:(Size.mib 2) ~mode:0o666 in
  let raw_seg = Api.seg_alloc_anywhere ctx ~name:"raw" ~size:(Size.mib 1) ~mode:0o600 in
  Api.seg_attach ctx vas heap_seg ~prot:Prot.rw;
  Api.seg_attach ctx vas raw_seg ~prot:Prot.r;
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  let a = Api.malloc ctx 64 in
  let b = Api.malloc ctx 128 in
  Api.store_bytes ctx ~va:a (Bytes.of_string "persisted heap data");
  Api.store64 ctx ~va:b 424242L;
  Api.free ctx b;
  Api.switch_home ctx;
  (sys, ctx, a, b)

let reboot () =
  (* A new machine entirely: nothing survives but the image. *)
  boot ()

let test_roundtrip_data () =
  let sys, _, a, _ = build_world () in
  let image = Persist.save sys in
  let _, sys2, ctx2 = reboot () in
  Persist.restore sys2 image;
  let vas = Api.vas_find ctx2 ~name:"world" in
  let vh = Api.vas_attach ctx2 vas in
  Api.vas_switch ctx2 vh;
  Alcotest.(check string) "heap data survives at the same VA" "persisted heap data"
    (Bytes.to_string (Api.load_bytes ctx2 ~va:a ~len:19))

let test_allocator_state_survives () =
  let sys, _, a, b = build_world () in
  let image = Persist.save sys in
  let _, sys2, ctx2 = reboot () in
  Persist.restore sys2 image;
  let vh = Api.vas_attach ctx2 (Api.vas_find ctx2 ~name:"world") in
  Api.vas_switch ctx2 vh;
  (* [a] is still allocated: a new malloc must not reuse it. [b] was
     freed: its space is available again. *)
  let c = Api.malloc ctx2 128 in
  Alcotest.(check bool) "no clobber of live allocation" true (c <> a);
  Alcotest.(check int) "freed chunk reused" b c;
  (* Double-free of a freed-and-reallocated chunk is caught. *)
  Api.free ctx2 c;
  Alcotest.(check bool) "free bookkeeping restored" true
    (try
       Api.free ctx2 c;
       false
     with Sj_abi.Error.Fault f -> f.code = Sj_abi.Error.Invalid)

let test_metadata_survives () =
  let sys, _, _, _ = build_world () in
  let image = Persist.save sys in
  let _, sys2, ctx2 = reboot () in
  Persist.restore sys2 image;
  let vas = Api.vas_find ctx2 ~name:"world" in
  Alcotest.(check bool) "tag restored" true (Vas.tag vas <> None);
  Alcotest.(check int) "two segments" 2 (List.length (Vas.segments vas));
  let raw = Api.seg_find ctx2 ~name:"raw" in
  (match Vas.find_segment_by_sid vas (Segment.sid raw) with
  | Some (_, prot) -> Alcotest.(check bool) "raw is read-only in VAS" false prot.write
  | None -> Alcotest.fail "raw not attached");
  Alcotest.(check int) "acl mode" 0o640 (Sj_kernel.Acl.mode (Vas.acl vas))

let test_image_deterministic () =
  let sys, _, _, _ = build_world () in
  let i1 = Persist.save sys in
  let i2 = Persist.save sys in
  Alcotest.(check bool) "same bytes" true (Bytes.equal i1 i2)

let test_image_compresses () =
  let sys, _, _, _ = build_world () in
  let image = Persist.save sys in
  (* 3 MiB of segments, mostly zero: the image must be far smaller. *)
  Alcotest.(check bool) "compressed" true (Bytes.length image < Size.mib 1)

let test_corrupt_image_rejected () =
  let _, sys2, _ = reboot () in
  Alcotest.(check bool) "bad magic" true
    (try
       Persist.restore sys2 (Bytes.of_string "not an image");
       false
     with Sj_abi.Error.Fault f -> f.code = Sj_abi.Error.Invalid)

let test_name_collision_rejected () =
  let sys, _, _, _ = build_world () in
  let image = Persist.save sys in
  (* Restoring into the same (still-populated) system collides. *)
  Alcotest.(check bool) "collision" true
    (try
       Persist.restore sys image;
       false
     with Errors.Name_exists _ -> true)

let test_image_info () =
  let sys, _, _, _ = build_world () in
  let info = Persist.image_info (Persist.save sys) in
  Alcotest.(check bool) "summarizes" true
    (String.length info > 10 && String.sub info 0 9 = "2 segment")

(* Property: arbitrary store/free/malloc traffic, then save+restore on a
   fresh machine, then every live cell must read back identically. *)
let prop_persist_roundtrip =
  QCheck.Test.make ~name:"persist roundtrip preserves arbitrary data" ~count:25
    QCheck.(list_of_size Gen.(int_range 1 60) (pair (int_bound 3) (int_bound 100_000)))
    (fun ops ->
      let _, sys, ctx = boot () in
      let vas = Api.vas_create ctx ~name:"w" ~mode:0o600 in
      let seg = Api.seg_alloc_anywhere ctx ~name:"s" ~size:(Size.mib 1) ~mode:0o600 in
      Api.seg_attach ctx vas seg ~prot:Prot.rw;
      let vh = Api.vas_attach ctx vas in
      Api.vas_switch ctx vh;
      let live = ref [] in
      List.iter
        (fun (op, v) ->
          match op with
          | 0 | 1 ->
            let va = Api.malloc ctx 32 in
            Api.store64 ctx ~va (Int64.of_int v);
            live := (va, Int64.of_int v) :: !live
          | 2 -> (
            match !live with
            | (va, _) :: rest ->
              Api.free ctx va;
              live := rest
            | [] -> ())
          | _ -> (
            match !live with
            | (va, _) :: rest ->
              Api.store64 ctx ~va (Int64.of_int v);
              live := (va, Int64.of_int v) :: rest
            | [] -> ()))
        ops;
      Api.switch_home ctx;
      let image = Persist.save sys in
      let _, sys2, ctx2 = boot () in
      Persist.restore sys2 image;
      let vh2 = Api.vas_attach ctx2 (Api.vas_find ctx2 ~name:"w") in
      Api.vas_switch ctx2 vh2;
      List.for_all (fun (va, v) -> Api.load64 ctx2 ~va = v) !live)

let suite =
  [
    Alcotest.test_case "data roundtrip across reboot" `Quick test_roundtrip_data;
    Alcotest.test_case "allocator state survives" `Quick test_allocator_state_survives;
    Alcotest.test_case "metadata survives" `Quick test_metadata_survives;
    Alcotest.test_case "image deterministic" `Quick test_image_deterministic;
    Alcotest.test_case "image compresses" `Quick test_image_compresses;
    Alcotest.test_case "corrupt image rejected" `Quick test_corrupt_image_rejected;
    Alcotest.test_case "name collision rejected" `Quick test_name_collision_rejected;
    Alcotest.test_case "image info" `Quick test_image_info;
    QCheck_alcotest.to_alcotest prop_persist_roundtrip;
  ]
