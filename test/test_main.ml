let () =
  Alcotest.run "spacejmp"
    [
      ("util", Test_util.suite);
      ("des", Test_des.suite);
      ("mem", Test_mem.suite);
      ("paging", Test_paging.suite);
      ("tlb", Test_tlb.suite);
      ("machine", Test_machine.suite);
      ("fastpath", Test_fastpath.suite);
      ("kernel", Test_kernel.suite);
      ("alloc", Test_alloc.suite);
      ("core", Test_core.suite);
      ("errors", Test_errors.suite);
      ("pkey", Test_pkey.suite);
      ("cow", Test_cow.suite);
      ("threads", Test_threads.suite);
      ("api-fuzz", Test_api_fuzz.suite);
      ("barrelfish", Test_barrelfish.suite);
      ("persist", Test_persist.suite);
      ("hugepages", Test_hugepages.suite);
      ("tiers", Test_tiers.suite);
      ("grow", Test_grow.suite);
      ("ipc", Test_ipc.suite);
      ("compress", Test_compress.suite);
      ("memfs", Test_memfs.suite);
      ("checker", Test_checker.suite);
      ("checker-parser", Test_checker_parser.suite);
      ("gups", Test_gups.suite);
      ("kvstore", Test_kvstore.suite);
      ("notify", Test_notify.suite);
      ("genomics", Test_genomics.suite);
      ("parallel", Test_parallel.suite);
      ("obs", Test_obs.suite);
      ("fault", Test_fault.suite);
      ("cluster", Test_cluster.suite);
      ("explore", Test_explore.suite);
    ]
