(* Integration tests for the SpaceJMP core API (Fig. 3 semantics). *)
open Sj_util
open Sj_core
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Acl = Sj_kernel.Acl
module Layout = Sj_kernel.Layout
module Prot = Sj_paging.Prot
module Error = Sj_abi.Error

let tiny : Platform.t =
  { Platform.m2 with name = "tiny"; mem_size = Size.mib 256; sockets = 2; cores_per_socket = 2 }

let setup ?backend () =
  let m = Machine.create tiny in
  let sys = Api.boot ?backend m in
  let p = Process.create ~name:"p0" m in
  let ctx = Api.context sys p (Machine.core m 0) in
  (m, sys, ctx)

let test_fig4_usage () =
  (* The paper's Fig. 4 example: create a VAS, a segment, attach,
     switch, malloc, store 42. *)
  let _, _, ctx = setup () in
  let vid = Api.vas_create ctx ~name:"v0" ~mode:0o660 in
  let sid = Api.seg_alloc_anywhere ctx ~name:"s0" ~size:(Size.mib 32) ~mode:0o660 in
  Api.seg_attach ctx vid sid ~prot:Prot.rw;
  let vid' = Api.vas_find ctx ~name:"v0" in
  Alcotest.(check int) "find returns same VAS" (Vas.vid vid) (Vas.vid vid');
  let vh = Api.vas_attach ctx vid' in
  Api.vas_switch ctx vh;
  let t = Api.malloc ctx 8 in
  Api.store64 ctx ~va:t 42L;
  Alcotest.(check int64) "The Answer" 42L (Api.load64 ctx ~va:t)

let test_malloc_requires_attachment () =
  let _, _, ctx = setup () in
  Alcotest.(check bool) "malloc outside VAS rejected" true
    (try
       ignore (Api.malloc ctx 8);
       false
     with Error.Fault f -> Error.equal_code f.code Error.Invalid)

let test_data_persists_across_processes () =
  (* Process A writes a value; exits; process B switches into the same
     VAS and reads it back — no serialization (§5.4 motivation). *)
  let m, sys, ctx_a = setup () in
  let vas = Api.vas_create ctx_a ~name:"shared" ~mode:0o666 in
  let seg = Api.seg_alloc_anywhere ctx_a ~name:"data" ~size:(Size.mib 4) ~mode:0o666 in
  Api.seg_attach ctx_a vas seg ~prot:Prot.rw;
  let vh_a = Api.vas_attach ctx_a vas in
  Api.vas_switch ctx_a vh_a;
  let p = Api.malloc ctx_a 64 in
  Api.store_bytes ctx_a ~va:p (Bytes.of_string "persistent!");
  Api.switch_home ctx_a;
  Process.exit (Api.process ctx_a);
  (* New process, new core. *)
  let pb = Process.create ~name:"pB" m in
  let ctx_b = Api.context sys pb (Machine.core m 1) in
  let vas' = Api.vas_find ctx_b ~name:"shared" in
  let vh_b = Api.vas_attach ctx_b vas' in
  Api.vas_switch ctx_b vh_b;
  Alcotest.(check string) "data visible in process B" "persistent!"
    (Bytes.to_string (Api.load_bytes ctx_b ~va:p ~len:11))

let test_common_region_valid_after_switch () =
  (* Stacks/globals (private segments) must stay accessible inside any
     attached VAS (Fig. 2). *)
  let _, _, ctx = setup () in
  let vas = Api.vas_create ctx ~name:"v" ~mode:0o600 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"s" ~size:(Size.mib 1) ~mode:0o600 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let th = Process.main_thread (Api.process ctx) in
  let stack_va = th.stack_base + th.stack_size - 64 in
  Api.store64 ctx ~va:stack_va 0xBEEFL;
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  Alcotest.(check int64) "stack readable inside VAS" 0xBEEFL (Api.load64 ctx ~va:stack_va);
  Api.store64 ctx ~va:(Layout.data_base + 128) 7L;
  Api.switch_home ctx;
  Alcotest.(check int64) "globals written inside VAS visible at home" 7L
    (Api.load64 ctx ~va:(Layout.data_base + 128))

let test_lock_modes () =
  (* Writable attachment takes the exclusive lock; read-only attachments
     share. *)
  let m, sys, ctx_w = setup () in
  let vas_rw = Api.vas_create ctx_w ~name:"rw" ~mode:0o666 in
  let seg = Api.seg_alloc_anywhere ctx_w ~name:"locked" ~size:(Size.mib 1) ~mode:0o666 in
  Api.seg_attach ctx_w vas_rw seg ~prot:Prot.rw;
  let vas_ro = Api.vas_create ctx_w ~name:"ro" ~mode:0o666 in
  Api.seg_attach ctx_w vas_ro seg ~prot:Prot.r;
  let vh_w = Api.vas_attach ctx_w vas_rw in
  Api.vas_switch ctx_w vh_w;
  Alcotest.(check bool) "exclusive held" true (Segment.lock_state seg = Segment.Exclusive);
  (* A second process trying to enter read-only blocks. *)
  let p2 = Process.create ~name:"reader" m in
  let ctx_r = Api.context sys p2 (Machine.core m 1) in
  let vh_r = Api.vas_attach ctx_r (Api.vas_find ctx_r ~name:"ro") in
  Alcotest.(check bool) "reader blocks while writer inside" true
    (try
       Api.vas_switch ctx_r vh_r;
       false
     with Errors.Would_block _ -> true);
  (* Writer leaves; reader can now enter; second reader shares. *)
  Api.switch_home ctx_w;
  Api.vas_switch ctx_r vh_r;
  Alcotest.(check bool) "shared by one reader" true (Segment.lock_state seg = Segment.Shared 1);
  let p3 = Process.create ~name:"reader2" m in
  let ctx_r2 = Api.context sys p3 (Machine.core m 2) in
  let vh_r2 = Api.vas_attach ctx_r2 (Api.vas_find ctx_r2 ~name:"ro") in
  Api.vas_switch ctx_r2 vh_r2;
  Alcotest.(check bool) "two readers" true (Segment.lock_state seg = Segment.Shared 2);
  (* Writer cannot re-enter while readers inside. *)
  Alcotest.(check bool) "writer blocks on readers" true
    (try
       Api.vas_switch ctx_w vh_w;
       false
     with Errors.Would_block _ -> true)

let test_acl_enforcement () =
  let m, sys, ctx_root = setup () in
  let vas = Api.vas_create ctx_root ~name:"private" ~mode:0o600 in
  let seg = Api.seg_alloc_anywhere ctx_root ~name:"secret" ~size:(Size.mib 1) ~mode:0o600 in
  Api.seg_attach ctx_root vas seg ~prot:Prot.rw;
  let mallory = Process.create ~name:"mallory" ~cred:(Acl.cred ~uid:666 ~gids:[ 666 ]) m in
  let ctx_m = Api.context sys mallory (Machine.core m 1) in
  Alcotest.(check bool) "attach denied" true
    (try
       ignore (Api.vas_attach ctx_m (Api.vas_find ctx_m ~name:"private"));
       false
     with Errors.Permission_denied _ -> true);
  (* vas_ctl chmod opens it up. *)
  Api.vas_ctl ctx_root (`Chmod (vas, 0o604));
  Segment.set_acl seg (Acl.chmod (Segment.acl seg) ~mode:0o604);
  let vh = Api.vas_attach ctx_m (Api.vas_find ctx_m ~name:"private") in
  Api.vas_switch ctx_m vh;
  Api.switch_home ctx_m

let test_vas_clone () =
  let _, _, ctx = setup () in
  let vas = Api.vas_create ctx ~name:"orig" ~mode:0o600 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"segc" ~size:(Size.mib 1) ~mode:0o600 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let clone = Api.vas_clone ctx vas ~name:"copy" in
  Alcotest.(check int) "segment list copied" 1 (List.length (Vas.segments clone));
  Alcotest.(check bool) "distinct identity" true (Vas.vid clone <> Vas.vid vas)

let test_seg_clone_copies_contents () =
  let _, _, ctx = setup () in
  let vas = Api.vas_create ctx ~name:"v" ~mode:0o600 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"src" ~size:(Size.mib 1) ~mode:0o600 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  Api.store64 ctx ~va:(Segment.base seg + 512) 99L;
  Api.switch_home ctx;
  let clone = Api.seg_clone ctx seg ~name:"copy" in
  Alcotest.(check int) "same base (alias window)" (Segment.base seg) (Segment.base clone);
  (* Attach the clone to a fresh VAS and read through it. *)
  let vas2 = Api.vas_create ctx ~name:"v2" ~mode:0o600 in
  Api.seg_attach ctx vas2 clone ~prot:Prot.rw;
  let vh2 = Api.vas_attach ctx vas2 in
  Api.vas_switch ctx vh2;
  Alcotest.(check int64) "contents copied" 99L (Api.load64 ctx ~va:(Segment.base seg + 512));
  (* Writes to the clone do not affect the original. *)
  Api.store64 ctx ~va:(Segment.base seg + 512) 1L;
  Api.switch_home ctx;
  Api.vas_switch ctx vh;
  Alcotest.(check int64) "original untouched" 99L (Api.load64 ctx ~va:(Segment.base seg + 512))

(* seg_clone copies into a plain 4 KiB-backed segment, so sources whose
   backing it cannot reproduce are refused with typed Invalid faults
   instead of silently cloning wrong: pre-built (cached) page tables
   and 2 MiB-backed segments. COW sources are supported by
   break-and-copy on the read side: the clone reads the shared frames
   (reads never split a CoW page) into fresh frames of its own, so the
   source keeps sharing with its snapshot and the clone is private. *)
let test_seg_clone_refusals () =
  let _, _, ctx = setup () in
  let check_refused what r =
    match r with
    | Ok _ -> Alcotest.failf "%s: clone succeeded but must be refused" what
    | Error (f : Sj_abi.Error.t) ->
      Alcotest.(check bool) (what ^ ": Invalid") true (f.code = Sj_abi.Error.Invalid)
  in
  let cached =
    Api.seg_alloc_anywhere ctx ~name:"cached" ~size:(Size.mib 1) ~mode:0o600
  in
  Api.seg_ctl ctx (`Cache_translations cached);
  check_refused "cached source" (Api.Checked.seg_clone ctx cached ~name:"cached-copy");
  let huge =
    Api.seg_alloc_anywhere ~huge:true ctx ~name:"huge" ~size:(Size.mib 2) ~mode:0o600
  in
  check_refused "huge source" (Api.Checked.seg_clone ctx huge ~name:"huge-copy");
  (* COW source: clone succeeds, reads current bytes, leaves the source
     still COW (its sharing with the snapshot is untouched). *)
  let cow = Api.seg_alloc_anywhere ctx ~name:"cow" ~size:(Size.mib 1) ~mode:0o600 in
  let vas = Api.vas_create ctx ~name:"cowv" ~mode:0o600 in
  Api.seg_attach ctx vas cow ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  Api.store64 ctx ~va:(Segment.base cow + 64) 42L;
  Api.switch_home ctx;
  ignore (Api.seg_snapshot ctx cow ~name:"cow-snap");
  let copy = Api.seg_clone ctx cow ~name:"cow-copy" in
  Alcotest.(check bool) "source still COW" true (Segment.is_cow cow);
  Alcotest.(check bool) "clone not COW" false (Segment.is_cow copy);
  let vas2 = Api.vas_create ctx ~name:"cowv2" ~mode:0o600 in
  Api.seg_attach ctx vas2 copy ~prot:Prot.rw;
  let vh2 = Api.vas_attach ctx vas2 in
  Api.vas_switch ctx vh2;
  Alcotest.(check int64) "clone carries contents" 42L
    (Api.load64 ctx ~va:(Segment.base cow + 64));
  Api.switch_home ctx

let test_seg_attach_propagates () =
  (* Attaching a segment VAS-globally becomes visible to existing
     attachments at their next switch (DragonFly propagation). *)
  let _, _, ctx = setup () in
  let vas = Api.vas_create ctx ~name:"v" ~mode:0o600 in
  let s1 = Api.seg_alloc_anywhere ctx ~name:"s1" ~size:(Size.mib 1) ~mode:0o600 in
  Api.seg_attach ctx vas s1 ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  Api.switch_home ctx;
  let s2 = Api.seg_alloc_anywhere ctx ~name:"s2" ~size:(Size.mib 1) ~mode:0o600 in
  Api.seg_attach ctx vas s2 ~prot:Prot.rw;
  Api.vas_switch ctx vh;
  Api.store64 ctx ~va:(Segment.base s2) 5L;
  Alcotest.(check int64) "new segment usable" 5L (Api.load64 ctx ~va:(Segment.base s2));
  (* Detach: gone after next switch. *)
  Api.switch_home ctx;
  Api.seg_detach ctx vas s2;
  Api.vas_switch ctx vh;
  Alcotest.(check bool) "detached segment faults" true
    (try
       ignore (Api.load64 ctx ~va:(Segment.base s2));
       false
     with Machine.Page_fault _ -> true)

let test_local_scratch_segment () =
  (* §5.3: per-client scratch heaps attached process-locally. *)
  let m, sys, ctx1 = setup () in
  let vas = Api.vas_create ctx1 ~name:"v" ~mode:0o666 in
  let shared = Api.seg_alloc_anywhere ctx1 ~name:"shared" ~size:(Size.mib 1) ~mode:0o666 in
  Api.seg_attach ctx1 vas shared ~prot:Prot.r;
  let scratch1 = Api.seg_alloc_anywhere ctx1 ~name:"scratch1" ~size:(Size.mib 1) ~mode:0o600 in
  let vh1 = Api.vas_attach ctx1 vas in
  Api.seg_attach_local ctx1 vh1 scratch1 ~prot:Prot.rw;
  Api.vas_switch ctx1 vh1;
  let x = Api.malloc ctx1 ~seg:scratch1 32 in
  Api.store64 ctx1 ~va:x 11L;
  Alcotest.(check int64) "scratch usable" 11L (Api.load64 ctx1 ~va:x);
  (* Another process attaching the same VAS does NOT see the scratch. *)
  let p2 = Process.create ~name:"c2" m in
  let ctx2 = Api.context sys p2 (Machine.core m 1) in
  let vh2 = Api.vas_attach ctx2 (Api.vas_find ctx2 ~name:"v") in
  Api.vas_switch ctx2 vh2;
  Alcotest.(check bool) "scratch private to client 1" true
    (try
       ignore (Api.load64 ctx2 ~va:x);
       false
     with Machine.Page_fault _ -> true)

let test_address_conflict_detected () =
  let m, _, ctx = setup () in
  let vas = Api.vas_create ctx ~name:"v" ~mode:0o600 in
  let base = Sj_kernel.Layout.next_global_base (Machine.sim_ctx m) ~size:(Size.mib 2) in
  let s1 = Api.seg_alloc ctx ~name:"a" ~base ~size:(Size.mib 2) ~mode:0o600 in
  let s2 = Api.seg_alloc ctx ~name:"b" ~base:(base + Size.mib 1) ~size:(Size.mib 2) ~mode:0o600 in
  Api.seg_attach ctx vas s1 ~prot:Prot.rw;
  Alcotest.(check bool) "overlap rejected" true
    (try
       Api.seg_attach ctx vas s2 ~prot:Prot.rw;
       false
     with Errors.Address_conflict _ -> true)

let test_switch_costs_by_backend () =
  (* Table 2: switching costs differ by OS and tagging. The segment is
     non-lockable so the measured path is exactly syscall+CR3+bookkeeping. *)
  let measure ~backend ~tagged =
    let m = Machine.create tiny in
    let sys = Api.boot ~backend m in
    let p = Process.create ~name:"bench" m in
    let ctx = Api.context sys p (Machine.core m 0) in
    let vas = Api.vas_create ctx ~name:"v" ~mode:0o600 in
    if tagged then Api.vas_ctl ctx (`Request_tag vas);
    let seg =
      Segment.create ~lockable:false ~charge_to:None ~machine:m ~name:"s"
        ~base:(Layout.next_global_base (Machine.sim_ctx m) ~size:(Size.mib 1))
        ~size:(Size.mib 1) ~prot:Prot.rw ()
    in
    Registry.register_seg (Api.registry sys) seg;
    Api.seg_attach ctx vas seg ~prot:Prot.rw;
    let vh = Api.vas_attach ctx vas in
    Api.vas_switch ctx vh;
    Api.switch_home ctx;
    (* Steady-state switch cost. *)
    let core = Api.core ctx in
    let c0 = Core.cycles core in
    Api.vas_switch ctx vh;
    Core.cycles core - c0
  in
  Alcotest.(check int) "DragonFly untagged" 1127 (measure ~backend:Api.Dragonfly ~tagged:false);
  Alcotest.(check int) "DragonFly tagged" 807 (measure ~backend:Api.Dragonfly ~tagged:true);
  Alcotest.(check int) "Barrelfish untagged" 664 (measure ~backend:Api.Barrelfish ~tagged:false);
  Alcotest.(check int) "Barrelfish tagged" 462 (measure ~backend:Api.Barrelfish ~tagged:true)

let test_barrelfish_revocation () =
  let _, _, ctx = setup ~backend:Api.Barrelfish () in
  let vas = Api.vas_create ctx ~name:"v" ~mode:0o600 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"s" ~size:(Size.mib 1) ~mode:0o600 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  Api.switch_home ctx;
  Api.vas_ctl ctx (`Revoke vas);
  Alcotest.(check bool) "switch after revoke denied" true
    (try
       Api.vas_switch ctx vh;
       false
     with Errors.Permission_denied _ -> true)

let test_detach_invalidates_handle () =
  let _, _, ctx = setup () in
  let vas = Api.vas_create ctx ~name:"v" ~mode:0o600 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"s" ~size:(Size.mib 1) ~mode:0o600 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  Api.vas_detach ctx vh;
  Alcotest.(check bool) "back home after detach" true (Api.current ctx = None);
  Alcotest.(check bool) "stale handle rejected" true
    (try
       Api.vas_switch ctx vh;
       false
     with Errors.Stale_handle _ -> true)

let test_translation_cache_speeds_attach () =
  let _, _, ctx = setup () in
  let vas1 = Api.vas_create ctx ~name:"v1" ~mode:0o600 in
  let vas2 = Api.vas_create ctx ~name:"v2" ~mode:0o600 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"big" ~size:(Size.mib 64) ~mode:0o600 in
  Api.seg_attach ctx vas1 seg ~prot:Prot.rw;
  Api.seg_attach ctx vas2 seg ~prot:Prot.rw;
  let core = Api.core ctx in
  let c0 = Core.cycles core in
  let vh1 = Api.vas_attach ctx vas1 in
  let uncached_cost = Core.cycles core - c0 in
  Api.seg_ctl ctx (`Cache_translations seg);
  let c1 = Core.cycles core in
  let vh2 = Api.vas_attach ctx vas2 in
  let cached_cost = Core.cycles core - c1 in
  Alcotest.(check bool) "cached attach at least 5x cheaper" true
    (cached_cost * 5 < uncached_cost);
  (* Both attachments translate correctly. *)
  Api.vas_switch ctx vh2;
  Api.store64 ctx ~va:(Segment.base seg + Size.mib 63) 3L;
  Api.switch_home ctx;
  Api.vas_switch ctx vh1;
  Alcotest.(check int64) "same physical data" 3L (Api.load64 ctx ~va:(Segment.base seg + Size.mib 63))

let test_heap_shared_across_processes () =
  (* The mspace state is keyed to the segment: allocations made by one
     process are visible (and freeable) by another. *)
  let m, sys, ctx1 = setup () in
  let vas = Api.vas_create ctx1 ~name:"v" ~mode:0o666 in
  let seg = Api.seg_alloc_anywhere ctx1 ~name:"heap" ~size:(Size.mib 4) ~mode:0o666 in
  Api.seg_attach ctx1 vas seg ~prot:Prot.rw;
  let vh1 = Api.vas_attach ctx1 vas in
  Api.vas_switch ctx1 vh1;
  let a = Api.malloc ctx1 128 in
  Api.switch_home ctx1;
  let p2 = Process.create ~name:"p2" m in
  let ctx2 = Api.context sys p2 (Machine.core m 1) in
  let vh2 = Api.vas_attach ctx2 (Api.vas_find ctx2 ~name:"v") in
  Api.vas_switch ctx2 vh2;
  let b = Api.malloc ctx2 128 in
  Alcotest.(check bool) "no overlap across processes" true (b <> a);
  Api.free ctx2 a;
  Api.switch_home ctx2

let test_switch_counting () =
  let _, sys, ctx = setup () in
  Registry.reset_stats (Api.registry sys);
  let vas = Api.vas_create ctx ~name:"v" ~mode:0o600 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"s" ~size:(Size.mib 1) ~mode:0o600 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  for _ = 1 to 5 do
    Api.vas_switch ctx vh;
    Api.switch_home ctx
  done;
  Alcotest.(check int) "10 switches counted" 10 (Registry.switch_count (Api.registry sys))

let test_vas_destroy_lifecycle () =
  let _, _sys, ctx = setup () in
  let vas = Api.vas_create ctx ~name:"doomed" ~mode:0o600 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"s" ~size:(Size.mib 1) ~mode:0o600 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  Api.store64 ctx ~va:(Segment.base seg) 1L;
  Api.switch_home ctx;
  Api.vas_ctl ctx (`Destroy vas);
  (* Gone from the namespace... *)
  Alcotest.(check bool) "find fails" true
    (try
       ignore (Api.vas_find ctx ~name:"doomed");
       false
     with Errors.Unknown_name _ -> true);
  (* ...new attaches are refused... *)
  Alcotest.(check bool) "attach refused" true
    (try
       ignore (Api.vas_attach ctx vas);
       false
     with Errors.Stale_handle _ -> true);
  (* ...but existing attachments keep working (unlink semantics). *)
  Api.vas_switch ctx vh;
  Alcotest.(check int64) "existing attachment still works" 1L
    (Api.load64 ctx ~va:(Segment.base seg));
  Api.switch_home ctx;
  Api.vas_detach ctx vh

let test_seg_destroy_lifecycle () =
  let m, sys, ctx = setup () in
  ignore sys;
  let before = Sj_mem.Phys_mem.frames_allocated (Machine.mem m) in
  let seg = Api.seg_alloc_anywhere ctx ~name:"temp" ~size:(Size.mib 1) ~mode:0o600 in
  Api.seg_ctl ctx (`Destroy seg);
  Alcotest.(check int) "frames reclaimed" before
    (Sj_mem.Phys_mem.frames_allocated (Machine.mem m));
  Alcotest.(check bool) "name free for reuse" true
    (let seg2 = Api.seg_alloc_anywhere ctx ~name:"temp" ~size:(Size.mib 1) ~mode:0o600 in
     Segment.sid seg2 <> Segment.sid seg)

let test_exit_process_reclaims () =
  let m, sys, _ = setup () in
  let baseline = Sj_mem.Phys_mem.frames_allocated (Machine.mem m) in
  (* One persistent segment created by a bootstrap context so its frames
     are expected to survive. *)
  let boot = Process.create ~name:"boot" m in
  let bctx = Api.context sys boot (Machine.core m 1) in
  let vas = Api.vas_create bctx ~name:"durable" ~mode:0o666 in
  let seg = Api.seg_alloc_anywhere bctx ~name:"data" ~size:(Size.mib 1) ~mode:0o666 in
  Api.seg_attach bctx vas seg ~prot:Prot.rw;
  let with_seg = Sj_mem.Phys_mem.frames_allocated (Machine.mem m) in
  (* A short-lived process attaches, works, and exits. *)
  let p = Process.create ~name:"worker" m in
  let ctx = Api.context sys p (Machine.core m 0) in
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  let a = Api.malloc ctx 64 in
  Api.store64 ctx ~va:a 99L;
  Api.exit_process ctx;
  (* Everything process-private is back: only boot's footprint remains. *)
  Alcotest.(check int) "worker memory fully reclaimed" with_seg
    (Sj_mem.Phys_mem.frames_allocated (Machine.mem m));
  Alcotest.(check bool) "segment lock released" true
    (Segment.lock_state seg = Segment.Unlocked);
  Alcotest.(check int) "no stale mapping records" 0
    (List.length (Registry.mappings (Api.registry sys) ~sid:(Segment.sid seg)));
  (* The data outlives its writer. *)
  let p2 = Process.create ~name:"reader" m in
  let ctx2 = Api.context sys p2 (Machine.core m 0) in
  let vh2 = Api.vas_attach ctx2 (Api.vas_find ctx2 ~name:"durable") in
  Api.vas_switch ctx2 vh2;
  Alcotest.(check int64) "data survives its writer" 99L (Api.load64 ctx2 ~va:a);
  ignore baseline

(* Regression: once the 12-bit tag space wrapped, alloc_tag handed the
   same ASID to a new VAS without flushing the previous owner's
   translations — a switch into the new VAS could hit stale entries and
   silently read the wrong address space. A recycled tag is now flushed
   from every core's TLB before reuse. *)
let test_tag_recycle_flushes_stale () =
  let m, sys, _ctx = setup () in
  let reg = Api.registry sys in
  let tlb = Core.tlb (Machine.core m 0) in
  (* Occupy a tag with a translation, as its first owner would. *)
  let first = Registry.alloc_tag reg in
  Sj_tlb.Tlb.insert tlb ~tag:first ~va:0x9000 ~pa:0x70000 ~prot:Prot.rw
    ~size:Sj_paging.Page_table.P4K ~global:false;
  (* Fresh (never-recycled) allocations must not flush anyone. *)
  ignore (Registry.alloc_tag reg);
  Alcotest.(check bool) "fresh tags don't flush" true
    (Sj_tlb.Tlb.lookup tlb ~tag:first ~va:0x9000 <> None);
  (* Exhaust the 4095-tag space until [first] is handed out again. *)
  let reissued = ref (Registry.alloc_tag reg) in
  let guard = ref 0 in
  while !reissued <> first && !guard < 8192 do
    incr guard;
    reissued := Registry.alloc_tag reg
  done;
  Alcotest.(check int) "tag space wrapped back around" first !reissued;
  Alcotest.(check bool) "stale translation flushed on recycle" true
    (Sj_tlb.Tlb.lookup tlb ~tag:first ~va:0x9000 = None)

(* Lock state machine: random try_lock/unlock sequences agree with a
   reader-count model and never corrupt state. *)
let prop_segment_lock_model =
  QCheck.Test.make ~name:"segment lock agrees with reader/writer model" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 100) (int_bound 3))
    (fun ops ->
      let m = Machine.create tiny in
      let seg =
        Segment.create ~charge_to:None ~machine:m ~name:"lk"
          ~base:(Layout.next_global_base (Machine.sim_ctx m) ~size:Size.(kib 4))
          ~size:(Size.kib 4) ~prot:Prot.rw ()
      in
      let readers = ref 0 and writer = ref false in
      List.for_all
        (fun op ->
          match op with
          | 0 ->
            let got = Segment.try_lock seg ~mode:`Shared in
            let expect = not !writer in
            if got then incr readers;
            got = expect
          | 1 ->
            let got = Segment.try_lock seg ~mode:`Exclusive in
            let expect = (not !writer) && !readers = 0 in
            if got then writer := true;
            got = expect
          | 2 ->
            if !readers > 0 then begin
              Segment.unlock seg ~mode:`Shared;
              decr readers;
              true
            end
            else ( (* unlocking what we don't hold must be rejected *)
              try
                Segment.unlock seg ~mode:`Shared;
                false
              with Error.Fault f -> Error.equal_code f.code Error.Invalid)
          | _ ->
            if !writer then begin
              Segment.unlock seg ~mode:`Exclusive;
              writer := false;
              true
            end
            else (
              try
                Segment.unlock seg ~mode:`Exclusive;
                false
              with Error.Fault f -> Error.equal_code f.code Error.Invalid))
        ops
      && Segment.lock_state seg
         = (if !writer then Segment.Exclusive
            else if !readers = 0 then Segment.Unlocked
            else Segment.Shared !readers))

let suite =
  [
    Alcotest.test_case "Fig. 4 canonical usage" `Quick test_fig4_usage;
    Alcotest.test_case "malloc requires attachment" `Quick test_malloc_requires_attachment;
    Alcotest.test_case "data persists across processes" `Quick test_data_persists_across_processes;
    Alcotest.test_case "common region valid after switch" `Quick test_common_region_valid_after_switch;
    Alcotest.test_case "lock modes (shared/exclusive)" `Quick test_lock_modes;
    Alcotest.test_case "ACL enforcement" `Quick test_acl_enforcement;
    Alcotest.test_case "vas_clone" `Quick test_vas_clone;
    Alcotest.test_case "seg_clone copies contents" `Quick test_seg_clone_copies_contents;
    Alcotest.test_case "seg_clone refusals (cached/COW/huge)" `Quick
      test_seg_clone_refusals;
    Alcotest.test_case "seg_attach propagates to attachments" `Quick test_seg_attach_propagates;
    Alcotest.test_case "process-local scratch segments" `Quick test_local_scratch_segment;
    Alcotest.test_case "address conflicts detected" `Quick test_address_conflict_detected;
    Alcotest.test_case "Table 2 switch costs via API" `Quick test_switch_costs_by_backend;
    Alcotest.test_case "Barrelfish capability revocation" `Quick test_barrelfish_revocation;
    Alcotest.test_case "detach invalidates handle" `Quick test_detach_invalidates_handle;
    Alcotest.test_case "translation cache speeds attach" `Quick test_translation_cache_speeds_attach;
    Alcotest.test_case "heap shared across processes" `Quick test_heap_shared_across_processes;
    Alcotest.test_case "switch counting" `Quick test_switch_counting;
    Alcotest.test_case "vas destroy lifecycle" `Quick test_vas_destroy_lifecycle;
    Alcotest.test_case "segment destroy lifecycle" `Quick test_seg_destroy_lifecycle;
    Alcotest.test_case "exit_process reclaims everything" `Quick test_exit_process_reclaims;
    Alcotest.test_case "tag recycle flushes stale entries" `Quick test_tag_recycle_flushes_stale;
    QCheck_alcotest.to_alcotest prop_segment_lock_model;
  ]
