(* Tests for the IPC substrate: URPC rings, MPI-like channels, domain
   sockets. *)
open Sj_util
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Urpc = Sj_ipc.Urpc
module Msg_channel = Sj_ipc.Msg_channel
module Dsock = Sj_ipc.Dsock
module Par = Sj_util.Par

let tiny : Sj_machine.Platform.t =
  { Sj_machine.Platform.m2 with name = "tiny"; mem_size = Size.mib 64; sockets = 2; cores_per_socket = 2 }

let setup () =
  let m = Machine.create tiny in
  (m, Machine.core m 0, Machine.core m 1, Machine.core m 2)

let test_urpc_fifo () =
  let m, a, b, _ = setup () in
  let ch = Urpc.create m ~a ~b () in
  Urpc.send ch ~from:a (Bytes.of_string "first");
  Urpc.send ch ~from:a (Bytes.of_string "second");
  Alcotest.(check string) "fifo 1" "first" (Bytes.to_string (Urpc.recv ch ~at:b));
  Alcotest.(check string) "fifo 2" "second" (Bytes.to_string (Urpc.recv ch ~at:b))

let test_urpc_bidirectional () =
  let m, a, b, _ = setup () in
  let ch = Urpc.create m ~a ~b () in
  Urpc.send ch ~from:a (Bytes.of_string "ping");
  Urpc.send ch ~from:b (Bytes.of_string "pong");
  Alcotest.(check string) "a->b" "ping" (Bytes.to_string (Urpc.recv ch ~at:b));
  Alcotest.(check string) "b->a" "pong" (Bytes.to_string (Urpc.recv ch ~at:a))

let test_urpc_ring_bounded () =
  let m, a, b, _ = setup () in
  let ch = Urpc.create m ~a ~b ~slots:2 () in
  Urpc.send ch ~from:a (Bytes.create 8);
  Urpc.send ch ~from:a (Bytes.create 8);
  Alcotest.(check bool) "full ring fails" true
    (try
       Urpc.send ch ~from:a (Bytes.create 8);
       false
     with Failure _ -> true)

let test_urpc_cross_socket_dearer () =
  let m, a, b, _ = setup () in
  let x = Machine.core m 2 (* socket 1 *) in
  Alcotest.(check bool) "placement" true (Core.socket x <> Core.socket a);
  let intra = Urpc.create m ~a ~b () in
  let cross = Urpc.create m ~a ~b:x () in
  Alcotest.(check bool) "detects cross" true (Urpc.cross_socket cross);
  let cost core ch peer =
    let c0 = Core.cycles peer in
    Urpc.send ch ~from:core (Bytes.create 1024);
    ignore (Urpc.recv ch ~at:peer);
    Core.cycles peer - c0
  in
  let c_intra = cost a intra b in
  let c_cross = cost a cross x in
  Alcotest.(check bool) "cross socket costlier" true (c_cross > 2 * c_intra)

let test_msg_channel_rpc () =
  let m, a, b, _ = setup () in
  let ch = Msg_channel.create m ~master:a ~slave:b () in
  let reply = Msg_channel.rpc ch ~request:(Bytes.of_string "work") ~reply_len:16 in
  Alcotest.(check int) "reply size" 16 (Bytes.length reply)

let test_msg_channel_oversubscribed_dearer () =
  let cost ~oversubscribed =
    let m, a, b, _ = setup () in
    let ch = Msg_channel.create m ~master:a ~slave:b ~oversubscribed () in
    let c0 = Core.cycles b in
    Msg_channel.send ch ~from:a (Bytes.create 64);
    ignore (Msg_channel.recv ch ~at:b);
    Core.cycles b - c0
  in
  Alcotest.(check bool) "scheduling penalty" true
    (cost ~oversubscribed:true > cost ~oversubscribed:false)

let test_dsock_roundtrip () =
  let m, client, server, _ = setup () in
  let s = Dsock.create m () in
  Dsock.send s ~from:client ~dir:`To_server (Bytes.of_string "GET k");
  (match Dsock.recv s ~at:server ~dir:`To_server with
  | Some req -> Alcotest.(check string) "request" "GET k" (Bytes.to_string req)
  | None -> Alcotest.fail "no request");
  Dsock.send s ~from:server ~dir:`To_client (Bytes.of_string "42");
  match Dsock.recv s ~at:client ~dir:`To_client with
  | Some rep -> Alcotest.(check string) "reply" "42" (Bytes.to_string rep)
  | None -> Alcotest.fail "no reply"

let test_dsock_empty () =
  let m, _, server, _ = setup () in
  let s = Dsock.create m () in
  Alcotest.(check bool) "empty" true (Dsock.recv s ~at:server ~dir:`To_server = None)

let test_dsock_charges_syscalls () =
  let m, client, _, _ = setup () in
  let s = Dsock.create m () in
  let c0 = Core.cycles client in
  Dsock.send s ~from:client ~dir:`To_server (Bytes.create 64);
  Alcotest.(check bool) "syscall priced" true
    (Core.cycles client - c0 >= (Machine.cost m).syscall_generic)

(* ---- burst send + drain: the cluster's batched request path ---- *)

let test_urpc_burst_fifo_drain () =
  let m, a, b, _ = setup () in
  let ch = Urpc.create m ~a ~b ~slots:16 () in
  let payloads =
    List.init 10 (fun i -> Bytes.of_string (Printf.sprintf "m%02d" i))
  in
  Alcotest.(check int) "all accepted" 10 (Urpc.send_burst ch ~from:a payloads);
  Alcotest.(check (list string)) "drain preserves FIFO order"
    (List.map Bytes.to_string payloads)
    (List.map Bytes.to_string (Urpc.drain ch ~at:b ()))

let test_urpc_burst_backpressure () =
  let m, a, b, _ = setup () in
  let ch = Urpc.create m ~a ~b ~slots:4 () in
  let payloads =
    List.init 7 (fun i -> Bytes.of_string (Printf.sprintf "m%02d" i))
  in
  Alcotest.(check int) "longest prefix that fits" 4
    (Urpc.send_burst ch ~from:a payloads);
  Alcotest.(check int) "ring holds exactly the prefix" 4 (Urpc.pending ch ~at:b);
  (* A burst against the full ring accepts nothing and costs the
     producer exactly one poll (it saw the head line still owned). *)
  let c0 = Core.cycles a in
  Alcotest.(check int) "full ring accepts none" 0
    (Urpc.send_burst ch ~from:a payloads);
  let refusal = Core.cycles a - c0 in
  Alcotest.(check bool) "refusal priced as one poll" true
    (refusal > 0 && refusal < 100);
  Alcotest.(check (list string)) "accepted prefix intact"
    [ "m00"; "m01"; "m02"; "m03" ]
    (List.map Bytes.to_string (Urpc.drain ch ~at:b ()));
  Alcotest.(check int) "drained ring accepts again" 3
    (Urpc.send_burst ch ~from:a
       [ Bytes.of_string "m04"; Bytes.of_string "m05"; Bytes.of_string "m06" ])

let test_urpc_burst_one_doorbell () =
  (* Across machines a burst rings the NIC doorbell once; n singleton
     sends ring it n times. Line-transfer costs are identical, so the
     gap is exactly (n-1) * net_setup. *)
  let mk () =
    let m1 = Machine.create tiny and m2 = Machine.create tiny in
    let a = Machine.core m1 0 and b = Machine.core m2 0 in
    (Urpc.create_cross ~a:(m1, a) ~b:(m2, b) ~slots:64 (), a, m1)
  in
  let payloads = List.init 8 (fun _ -> Bytes.create 64) in
  let burst_ch, burst_core, m1 = mk () in
  Alcotest.(check bool) "cross-machine" true (Urpc.cross_machine burst_ch);
  let c0 = Core.cycles burst_core in
  Alcotest.(check int) "burst accepted" 8
    (Urpc.send_burst burst_ch ~from:burst_core payloads);
  let burst_cost = Core.cycles burst_core - c0 in
  let solo_ch, solo_core, _ = mk () in
  let c0 = Core.cycles solo_core in
  List.iter (fun p -> Urpc.send solo_ch ~from:solo_core p) payloads;
  let solo_cost = Core.cycles solo_core - c0 in
  Alcotest.(check int) "one doorbell per burst, not per message"
    (7 * (Machine.cost m1).net_setup)
    (solo_cost - burst_cost)

(* Msg_channel across machines: the whole burst exchange is a pure
   function of the configuration, so running copies of the scenario
   inside a domain pool must be byte-identical to running them
   serially (cycle counters included). *)
let msg_scenario () =
  let m1 = Machine.create tiny and m2 = Machine.create tiny in
  let master = Machine.core m1 0 and slave = Machine.core m2 0 in
  let ch =
    Msg_channel.create_cross ~master:(m1, master) ~slave:(m2, slave) ~slots:32 ()
  in
  let sum = ref 0 in
  for round = 0 to 9 do
    let batch =
      List.init
        (1 + (round mod 5))
        (fun i -> Bytes.make 64 (Char.chr (65 + ((round + i) mod 26))))
    in
    let n = Msg_channel.send_burst ch ~from:master batch in
    let got = Msg_channel.drain ch ~at:slave () in
    sum := !sum + (n * List.length got);
    List.iter (fun p -> sum := !sum + Char.code (Bytes.get p 0)) got;
    ignore
      (Msg_channel.send_burst ch ~from:slave
         (List.map (fun _ -> Bytes.create 64) got));
    List.iter
      (fun p -> sum := !sum + Bytes.length p)
      (Msg_channel.drain ch ~at:master ())
  done;
  [ ("sum", !sum); ("master", Core.cycles master); ("slave", Core.cycles slave) ]

let test_msg_channel_domain_identity () =
  let serial = List.init 4 (fun _ -> msg_scenario ()) in
  let parallel =
    Par.with_pool ~size:4 (fun p ->
        Par.map_list p (fun () -> msg_scenario ()) (List.init 4 (fun _ -> ())))
  in
  Alcotest.(check bool) "msg_channel bursts byte-identical -j1 vs -j4" true
    (serial = parallel)

let prop_urpc_payload_integrity =
  QCheck.Test.make ~name:"URPC preserves payloads in order" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 30) (string_of_size Gen.(int_range 0 300)))
    (fun msgs ->
      let m, a, b, _ = setup () in
      let ch = Urpc.create m ~a ~b ~slots:64 () in
      List.iter (fun s -> Urpc.send ch ~from:a (Bytes.of_string s)) msgs;
      List.for_all (fun s -> Bytes.to_string (Urpc.recv ch ~at:b) = s) msgs)

let suite =
  [
    Alcotest.test_case "urpc FIFO" `Quick test_urpc_fifo;
    Alcotest.test_case "urpc bidirectional" `Quick test_urpc_bidirectional;
    Alcotest.test_case "urpc ring bounded" `Quick test_urpc_ring_bounded;
    Alcotest.test_case "urpc cross-socket dearer" `Quick test_urpc_cross_socket_dearer;
    Alcotest.test_case "msg_channel rpc" `Quick test_msg_channel_rpc;
    Alcotest.test_case "msg_channel oversubscription" `Quick test_msg_channel_oversubscribed_dearer;
    Alcotest.test_case "dsock roundtrip" `Quick test_dsock_roundtrip;
    Alcotest.test_case "dsock empty" `Quick test_dsock_empty;
    Alcotest.test_case "dsock charges syscalls" `Quick test_dsock_charges_syscalls;
    Alcotest.test_case "urpc burst FIFO via drain" `Quick test_urpc_burst_fifo_drain;
    Alcotest.test_case "urpc burst backpressure" `Quick test_urpc_burst_backpressure;
    Alcotest.test_case "urpc burst one doorbell" `Quick test_urpc_burst_one_doorbell;
    Alcotest.test_case "msg_channel -j identity" `Quick test_msg_channel_domain_identity;
    QCheck_alcotest.to_alcotest prop_urpc_payload_integrity;
  ]
