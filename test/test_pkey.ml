(* Protection-key compartments: the third isolation mechanism.

   Key allocation/assignment/switching semantics, the zero-flush
   property of pkey_switch (rights are re-evaluated at every cached
   hit, so changing them never invalidates), register reset on
   address-space switches, crash-teardown key reclaim, the sandboxed
   RedisJMP plugin workload, and the compartment bench's determinism. *)
open Sj_util
open Sj_core
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Prot = Sj_paging.Prot
module Pkey = Sj_paging.Pkey
module Error = Sj_abi.Error
module Recorder = Sj_obs.Recorder
module Metrics = Sj_obs.Metrics
module C = Api.Checked

let tiny : Platform.t =
  { Platform.m2 with name = "tiny"; mem_size = Size.mib 256; sockets = 2; cores_per_socket = 2 }

let setup ?backend () =
  let m = Machine.create tiny in
  let rec_ = Recorder.create () in
  Recorder.attach (Machine.sim_ctx m) rec_;
  let sys = Api.boot ?backend m in
  let p = Process.create ~name:"p0" m in
  let ctx = Api.context sys p (Machine.core m 0) in
  (m, sys, ctx, rec_)

(* A VAS with one rw segment, attached and switched into. *)
let compartment_world ctx =
  let vas = Api.vas_create ctx ~name:"v" ~mode:0o666 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"s" ~size:(Size.mib 1) ~mode:0o666 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  (vas, seg, vh)

let code_of = function
  | Ok _ -> None
  | Error (f : Error.t) -> Some f.code

let code_testable = Alcotest.testable Error.pp_code Error.equal_code

let test_alloc_keys_distinct_until_full () =
  let _, _, ctx, _ = setup () in
  let vas = Api.vas_create ctx ~name:"v" ~mode:0o600 in
  let keys = List.init Pkey.max_key (fun _ -> Api.pkey_alloc ctx vas) in
  Alcotest.(check (list int)) "keys 1..15 in order"
    (List.init Pkey.max_key (fun i -> i + 1))
    keys;
  Alcotest.(check (option code_testable)) "16th allocation: Capacity"
    (Some Error.Capacity)
    (code_of (C.pkey_alloc ctx vas))

let test_assign_validation () =
  let _, _, ctx, _ = setup () in
  let vas, seg, _ = compartment_world ctx in
  Api.switch_home ctx;
  let check name expect r =
    Alcotest.(check (option code_testable)) name (Some expect) (code_of r)
  in
  check "key out of range" Error.Invalid (C.pkey_assign ctx vas seg ~key:16);
  check "unallocated key" Error.Unknown_name (C.pkey_assign ctx vas seg ~key:3);
  let stray = Api.seg_alloc_anywhere ctx ~name:"stray" ~size:(Size.mib 1) ~mode:0o600 in
  let key = Api.pkey_alloc ctx vas in
  check "segment not attached" Error.Unknown_name (C.pkey_assign ctx vas stray ~key);
  (* Cached translations pin the PTEs shared across attachments; the
     key field lives in those PTEs, so retagging is refused. *)
  let cached = Api.seg_alloc_anywhere ctx ~name:"cached" ~size:(Size.mib 1) ~mode:0o600 in
  Api.seg_ctl ctx (`Cache_translations cached);
  Api.seg_attach ctx vas cached ~prot:Prot.rw;
  check "cached segment" Error.Invalid (C.pkey_assign ctx vas cached ~key);
  (* And the good path sticks: assign, then clear with key 0. *)
  Api.pkey_assign ctx vas seg ~key;
  Alcotest.(check int) "tagged" key (Vas.key_of vas ~sid:(Segment.sid seg));
  Api.pkey_assign ctx vas seg ~key:0;
  Alcotest.(check int) "cleared" 0 (Vas.key_of vas ~sid:(Segment.sid seg))

let test_switch_denies_and_allows () =
  let _, _, ctx, _ = setup () in
  let vas, seg, _ = compartment_world ctx in
  let base = Segment.base seg in
  Api.store64 ctx ~va:base 7L;
  let mine = Api.pkey_alloc ctx vas in
  let other = Api.pkey_alloc ctx vas in
  Api.pkey_assign ctx vas seg ~key:mine;
  Api.pkey_switch ctx ~key:mine;
  Alcotest.(check int64) "own compartment reads" 7L (Api.load64 ctx ~va:base);
  Api.store64 ctx ~va:base 8L;
  Api.pkey_switch ctx ~key:other;
  Alcotest.(check (option code_testable)) "foreign read denied"
    (Some Error.Key_violation)
    (code_of (try Ok (Api.load64 ctx ~va:base) with Error.Fault f -> Error f));
  Alcotest.(check (option code_testable)) "foreign write denied"
    (Some Error.Key_violation)
    (code_of (try Ok (Api.store64 ctx ~va:base 9L) with Error.Fault f -> Error f));
  Api.pkey_switch ctx ~key:0;
  Alcotest.(check int64) "unrestricted again (denial changed nothing)" 8L
    (Api.load64 ctx ~va:base)

let test_switch_requires_space_and_key () =
  let _, _, ctx, _ = setup () in
  let vas, _, _ = compartment_world ctx in
  let key = Api.pkey_alloc ctx vas in
  Api.switch_home ctx;
  Alcotest.(check (option code_testable)) "no current VAS" (Some Error.Invalid)
    (code_of (C.pkey_switch ctx ~key));
  Alcotest.(check (option code_testable)) "key 0 is always fine" None
    (code_of (C.pkey_switch ctx ~key:0))

let test_vas_switch_resets_register () =
  (* Key meanings are per-VAS, so crossing spaces resets the register:
     coming back, the thread is unrestricted again. *)
  let _, _, ctx, _ = setup () in
  let vas, seg, vh = compartment_world ctx in
  let base = Segment.base seg in
  Api.store64 ctx ~va:base 7L;
  let mine = Api.pkey_alloc ctx vas in
  let other = Api.pkey_alloc ctx vas in
  Api.pkey_assign ctx vas seg ~key:mine;
  Api.pkey_switch ctx ~key:other;
  Api.switch_home ctx;
  Api.vas_switch ctx vh;
  Alcotest.(check int64) "register reset on re-entry" 7L (Api.load64 ctx ~va:base)

let test_pkey_switch_never_flushes () =
  let _, _, ctx, rec_ = setup () in
  let vas, seg, _ = compartment_world ctx in
  let base = Segment.base seg in
  let key = Api.pkey_alloc ctx vas in
  Api.pkey_assign ctx vas seg ~key;
  (* Warm the TLB inside the compartment, then cross repeatedly. *)
  Api.pkey_switch ctx ~key;
  Api.store64 ctx ~va:base 1L;
  let m = Recorder.metrics rec_ in
  let flushes0 = Metrics.tlb_flushes m and inval0 = Metrics.page_invalidations m in
  for _ = 1 to 50 do
    Api.pkey_switch ctx ~key:0;
    Api.pkey_switch ctx ~key
  done;
  Alcotest.(check int) "zero flushes across 100 crossings" 0
    (Metrics.tlb_flushes m - flushes0);
  Alcotest.(check int) "zero page invalidations" 0
    (Metrics.page_invalidations m - inval0);
  Alcotest.(check int64) "warm entry still serves" 1L (Api.load64 ctx ~va:base)

let test_crash_reclaims_keys () =
  let m, sys, ctx, _ = setup () in
  let vas, seg, _ = compartment_world ctx in
  Api.switch_home ctx;
  (* A second process allocates a key, tags the segment, then dies. *)
  let plug = Process.create ~name:"plug" m in
  let ctx_p = Api.context sys plug (Machine.core m 1) in
  let key = Api.pkey_alloc ctx_p vas in
  Api.pkey_assign ctx_p vas seg ~key;
  Alcotest.(check (option int)) "owned by the plugin" (Some (Process.pid plug))
    (Vas.key_owner vas ~key);
  Api.crash_process ctx_p;
  Alcotest.(check (option int)) "key freed by crash teardown" None
    (Vas.key_owner vas ~key);
  Alcotest.(check int) "segment untagged" 0 (Vas.key_of vas ~sid:(Segment.sid seg));
  (* The freed key is allocatable again, and the surviving process can
     read the now-untagged segment from any compartment register. *)
  Alcotest.(check int) "key recycled" key (Api.pkey_alloc ctx vas)

let test_sandboxed_plugin () =
  let m, sys, ctx, _ = setup () in
  let store = Sj_kvstore.Redisjmp.init ctx ~name:"redis" ~size:(Size.mib 8) in
  let host = Sj_kvstore.Redisjmp.connect store ctx () in
  Sj_kvstore.Redisjmp.set host "k" (Bytes.of_string "v1");
  let sandbox = Sj_kvstore.Kv_sandbox.install ctx store in
  let plug_proc = Process.create ~name:"plug" m in
  let ctx_p = Api.context sys plug_proc (Machine.core m 1) in
  let plugin = Sj_kvstore.Kv_sandbox.connect sandbox ctx_p () in
  (* Benign handler: compute + scratch reads/writes inside its own
     compartment. *)
  let open Sj_kvstore.Kv_sandbox in
  (match run plugin ~program:[ Compute 500; Write (0, 42L); Read 0 ] with
  | Done v -> Alcotest.(check int64) "benign handler result" 42L v
  | Violation _ | Killed _ -> Alcotest.fail "benign handler must complete");
  (* Hostile handler: pokes the store's data segment. The key register
     denies it, the host survives, the store is intact. *)
  (match run plugin ~program:[ Write (8, 1L); Poke_store (0, 0xDEADL) ] with
  | Violation f ->
    Alcotest.(check bool) "typed key violation" true (f.code = Error.Key_violation)
  | Done _ -> Alcotest.fail "hostile poke must be denied"
  | Killed _ -> Alcotest.fail "no kill was injected");
  Alcotest.(check (option string)) "store intact after the attack" (Some "v1")
    (Option.map Bytes.to_string (Sj_kvstore.Redisjmp.get host "k"));
  (* And the host keeps full access: sandbox install did not lock the
     owner out. *)
  Sj_kvstore.Redisjmp.set host "k" (Bytes.of_string "v2");
  Alcotest.(check (option string)) "host still writes" (Some "v2")
    (Option.map Bytes.to_string (Sj_kvstore.Redisjmp.get host "k"))

let test_compart_bench_deterministic () =
  let cfg =
    { Sj_compart.Compart.default with compartments = 3; crossings = 60; loads_per_crossing = 4 }
  in
  let a = Sj_compart.Compart.run cfg in
  let b = Sj_compart.Compart.run cfg in
  Alcotest.(check bool) "rerun fingerprints equal" true
    (a.Sj_compart.Compart.fingerprint = b.Sj_compart.Compart.fingerprint);
  Alcotest.(check int) "zero flushes in the pkey loop" 0 a.Sj_compart.Compart.flushes;
  Alcotest.(check int) "both probes denied" 2 a.Sj_compart.Compart.violations;
  let vas = Sj_compart.Compart.run { cfg with mechanism = Sj_compart.Compart.Vas_reload } in
  let cap = Sj_compart.Compart.run { cfg with mechanism = Sj_compart.Compart.Cap_invoke } in
  Alcotest.(check bool) "pkey crossing strictly cheapest" true
    (a.Sj_compart.Compart.per_crossing < vas.Sj_compart.Compart.per_crossing
    && a.Sj_compart.Compart.per_crossing < cap.Sj_compart.Compart.per_crossing)

let both_backends name f =
  [
    Alcotest.test_case (name ^ " (DragonFly)") `Quick (fun () ->
        f (setup ~backend:Sj_abi.Sys.Dragonfly ()));
    Alcotest.test_case (name ^ " (Barrelfish)") `Quick (fun () ->
        f (setup ~backend:Sj_abi.Sys.Barrelfish ()));
  ]

(* The violation path must be identical under both OS personalities —
   the key check sits below the backend split. *)
let backend_violation (_, _, ctx, _) =
  let vas, seg, _ = compartment_world ctx in
  let key = Api.pkey_alloc ctx vas in
  Api.pkey_assign ctx vas seg ~key;
  let stranger = Api.pkey_alloc ctx vas in
  Api.pkey_switch ctx ~key:stranger;
  Alcotest.(check (option code_testable)) "denied" (Some Error.Key_violation)
    (code_of
       (try Ok (Api.load64 ctx ~va:(Segment.base seg)) with Error.Fault f -> Error f))

let suite =
  [
    Alcotest.test_case "alloc: distinct keys until Capacity" `Quick
      test_alloc_keys_distinct_until_full;
    Alcotest.test_case "assign: validation and clearing" `Quick test_assign_validation;
    Alcotest.test_case "switch: denies foreign, allows own" `Quick
      test_switch_denies_and_allows;
    Alcotest.test_case "switch: needs a space and an allocated key" `Quick
      test_switch_requires_space_and_key;
    Alcotest.test_case "vas_switch resets the register" `Quick
      test_vas_switch_resets_register;
    Alcotest.test_case "pkey_switch never flushes" `Quick test_pkey_switch_never_flushes;
    Alcotest.test_case "crash teardown reclaims keys" `Quick test_crash_reclaims_keys;
    Alcotest.test_case "sandboxed RedisJMP plugin" `Quick test_sandboxed_plugin;
    Alcotest.test_case "compartment bench deterministic" `Quick
      test_compart_bench_deterministic;
  ]
  @ both_backends "violation" backend_violation
