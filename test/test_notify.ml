(* Tests for the notification service and RedisJMP keyspace events. *)
open Sj_util
open Sj_kvstore
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Api = Sj_core.Api

let tiny : Platform.t =
  { Platform.m1 with name = "tiny"; mem_size = Size.mib 256; sockets = 2; cores_per_socket = 2 }

let setup () =
  let m = Machine.create tiny in
  (m, Notify.create m ~core:(Machine.core m 3))

let test_pub_sub_basics () =
  let m, svc = setup () in
  let alice = Notify.subscribe svc ~channel:"news" ~core:(Machine.core m 0) in
  let receivers = Notify.publish svc ~from:(Machine.core m 1) ~channel:"news" (Bytes.of_string "hello") in
  Alcotest.(check int) "one receiver" 1 receivers;
  Alcotest.(check int) "pending" 1 (Notify.pending alice);
  (match Notify.poll alice with
  | Some msg -> Alcotest.(check string) "payload" "hello" (Bytes.to_string msg)
  | None -> Alcotest.fail "no message");
  Alcotest.(check bool) "drained" true (Notify.poll alice = None)

let test_fanout_and_isolation () =
  let m, svc = setup () in
  let a = Notify.subscribe svc ~channel:"c1" ~core:(Machine.core m 0) in
  let b = Notify.subscribe svc ~channel:"c1" ~core:(Machine.core m 1) in
  let other = Notify.subscribe svc ~channel:"c2" ~core:(Machine.core m 2) in
  Alcotest.(check int) "both receive" 2
    (Notify.publish svc ~from:(Machine.core m 2) ~channel:"c1" (Bytes.of_string "x"));
  Alcotest.(check int) "a" 1 (Notify.pending a);
  Alcotest.(check int) "b" 1 (Notify.pending b);
  Alcotest.(check int) "other channel untouched" 0 (Notify.pending other);
  Alcotest.(check (list string)) "channels" [ "c1"; "c2" ] (Notify.channels svc)

let test_ordering () =
  let m, svc = setup () in
  let s = Notify.subscribe svc ~channel:"seq" ~core:(Machine.core m 0) in
  for i = 1 to 5 do
    ignore (Notify.publish svc ~from:(Machine.core m 1) ~channel:"seq" (Bytes.of_string (string_of_int i)))
  done;
  for i = 1 to 5 do
    match Notify.poll s with
    | Some msg -> Alcotest.(check string) "in order" (string_of_int i) (Bytes.to_string msg)
    | None -> Alcotest.fail "missing message"
  done

let test_unsubscribe () =
  let m, svc = setup () in
  let s = Notify.subscribe svc ~channel:"c" ~core:(Machine.core m 0) in
  Notify.unsubscribe svc s;
  Alcotest.(check int) "no receivers" 0
    (Notify.publish svc ~from:(Machine.core m 1) ~channel:"c" (Bytes.of_string "x"))

let test_costs_charged () =
  let m, svc = setup () in
  let pub_core = Machine.core m 1 in
  let svc_core = Machine.core m 3 in
  let _ = Notify.subscribe svc ~channel:"c" ~core:(Machine.core m 0) in
  let _ = Notify.subscribe svc ~channel:"c" ~core:(Machine.core m 0) in
  let p0 = Core.cycles pub_core and s0 = Core.cycles svc_core in
  ignore (Notify.publish svc ~from:pub_core ~channel:"c" (Bytes.create 64));
  Alcotest.(check bool) "publisher pays a hop" true (Core.cycles pub_core > p0);
  Alcotest.(check bool) "service pays fan-out" true (Core.cycles svc_core > s0)

let test_redisjmp_keyspace_events () =
  let m = Machine.create tiny in
  let sys = Api.boot m in
  let p1 = Process.create ~name:"writer" m in
  let ctx1 = Api.context sys p1 (Machine.core m 0) in
  let store = Redisjmp.init ctx1 ~name:"kv" ~size:(Size.mib 8) in
  let writer = Redisjmp.connect store ctx1 () in
  let svc = Notify.create m ~core:(Machine.core m 3) in
  Redisjmp.enable_notifications writer svc;
  (* A watcher subscribes to one key's channel. *)
  let watcher =
    Notify.subscribe svc ~channel:(Redisjmp.keyspace_channel "watched") ~core:(Machine.core m 1)
  in
  Redisjmp.set writer "watched" (Bytes.of_string "v1");
  Redisjmp.set writer "other" (Bytes.of_string "x");
  ignore (Redisjmp.execute writer (Resp.Del "watched"));
  ignore (Redisjmp.get writer "watched");
  (* set + del observed; writes to other keys and reads are not. *)
  Alcotest.(check int) "two events" 2 (Notify.pending watcher);
  (match Notify.poll watcher with
  | Some e -> Alcotest.(check string) "set first" "set" (Bytes.to_string e)
  | None -> Alcotest.fail "no event");
  match Notify.poll watcher with
  | Some e -> Alcotest.(check string) "then del" "del" (Bytes.to_string e)
  | None -> Alcotest.fail "no second event"

let suite =
  [
    Alcotest.test_case "pub/sub basics" `Quick test_pub_sub_basics;
    Alcotest.test_case "fan-out and channel isolation" `Quick test_fanout_and_isolation;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "unsubscribe" `Quick test_unsubscribe;
    Alcotest.test_case "costs charged" `Quick test_costs_charged;
    Alcotest.test_case "redisjmp keyspace events" `Quick test_redisjmp_keyspace_events;
  ]
