(** One compartment-crossing trial: the same visit-and-work loop driven
    through each of the three isolation mechanisms — Dragonfly
    vas_switch (CR3 reload), Barrelfish capability invoke, and
    protection-key switch (register write, zero flushes) — so their
    crossing costs are directly comparable. {!Driver} sweeps the grid
    and audits determinism; this module is one deterministic point. *)

type mechanism =
  | Vas_reload  (** Dragonfly: one VAS per compartment, switch = CR3 *)
  | Cap_invoke  (** Barrelfish: same topology, switch invokes the cap *)
  | Pkey  (** one shared VAS, key-tagged segments, switch = WRPKRU *)

val mechanism_name : mechanism -> string
val backend_of : mechanism -> Sj_core.Api.backend

type config = {
  mechanism : mechanism;
  compartments : int;  (** 1..15 — each needs its own protection key *)
  crossings : int;  (** measured compartment entries *)
  loads_per_crossing : int;
      (** work per visit — the crossing-frequency axis: 1 is
          crossing-dominated, large values work-dominated *)
  seg_size : int;
  tags : bool;  (** give the spaces TLB tags *)
  seed : int;
}

val default : config

type result = {
  crossings : int;
  total_cycles : int;  (** whole measured loop, work included *)
  crossing_cycles : int;  (** the mechanism operations alone *)
  per_crossing : float;
  flushes : int;
      (** TLB flushes observed during the measured loop — must be zero
          for the pkey mechanism (the zero-flush claim) *)
  page_invalidations : int;
  pkey_switches : int;
  vas_switches : int;
  violations : int;
      (** hostile-probe accesses denied as typed [Key_violation] faults
          (2 for pkey runs with >= 2 compartments, else 0) *)
  checksum : int;  (** folds every loaded value — the work is real *)
  fingerprint : (string * int) list;
      (** simulated-only integers; byte-identical across host
          conditions (reruns, -j N, tracing, fault plans) *)
}

val run : config -> result
(** Build a fresh machine, lay out the compartments for
    [config.mechanism], run the measured crossing loop, then (pkey
    only) probe a foreign compartment and count the typed denials.
    Deterministic: a pure function of [config]. *)
