(* One compartment-crossing trial: the same workload shape driven
   through each of the three isolation mechanisms so their crossing
   costs are directly comparable.

   The workload is N compartments, each holding one data segment, and a
   client that repeatedly jumps to the next compartment and does a burst
   of loads there (loads_per_crossing is the crossing-frequency axis:
   small bursts = crossing-dominated, large bursts = work-dominated).

   - [Vas_reload]    N VASes, one segment each; every crossing is a
                     Dragonfly vas_switch (CR3 reload, Table 2 row 1).
   - [Cap_invoke]    the same topology on the Barrelfish backend; every
                     crossing invokes the target space's capability.
   - [Pkey]          ONE VAS holding all N segments, each tagged with
                     its own protection key; one vas_switch at setup,
                     then every crossing is a pkey_switch — a register
                     write, no CR3 reload, no flush, warm TLB.

   Every trial builds its own machine and attaches its own recorder
   (enabled regardless of ambient tracing, so the trace-on audit cannot
   change behaviour), and reads metric deltas around the measured loop:
   the pkey rows must show zero TLB flushes there, and the per-crossing
   mechanism cycles feed the strictly-cheaper claim in the report. The
   hostile probe then enters compartment 0 and pokes compartment 1's
   segment — under keys that lands as the typed [Key_violation] fault
   (counted, survived); under the VAS mechanisms the segment is simply
   not mapped, so no probe is made. *)

open Sj_util
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Platform = Sj_machine.Platform
module Api = Sj_core.Api
module Segment = Sj_core.Segment
module Error = Sj_abi.Error
module Prot = Sj_paging.Prot
module Recorder = Sj_obs.Recorder
module Metrics = Sj_obs.Metrics

type mechanism = Vas_reload | Cap_invoke | Pkey

let mechanism_name = function
  | Vas_reload -> "vas_reload"
  | Cap_invoke -> "cap_invoke"
  | Pkey -> "pkey_switch"

let backend_of = function
  | Cap_invoke -> Api.Barrelfish
  | Vas_reload | Pkey -> Api.Dragonfly

type config = {
  mechanism : mechanism;
  compartments : int;  (* 1..15: each needs its own protection key *)
  crossings : int;  (* measured compartment entries *)
  loads_per_crossing : int;  (* work per visit — the frequency axis *)
  seg_size : int;
  tags : bool;  (* give spaces TLB tags (vas mechanisms) *)
  seed : int;
}

let default =
  {
    mechanism = Pkey;
    compartments = 4;
    crossings = 400;
    loads_per_crossing = 8;
    seg_size = Size.kib 64;
    tags = true;
    seed = 0x5EED;
  }

type result = {
  crossings : int;
  total_cycles : int;  (* whole measured loop, work included *)
  crossing_cycles : int;  (* the mechanism operations alone *)
  per_crossing : float;  (* crossing_cycles / crossings *)
  flushes : int;  (* TLB flushes during the measured loop *)
  page_invalidations : int;
  pkey_switches : int;  (* during the measured loop *)
  vas_switches : int;
  violations : int;  (* hostile-probe denials (pkey only) *)
  checksum : int;  (* folds every loaded value: the work is real *)
  fingerprint : (string * int) list;
}

(* Deterministic seed data: every segment word is a mix of (seed,
   compartment, word), so the loop checksum proves loads really hit the
   per-compartment data — and differs whenever addressing slips. *)
let word_value ~seed ~comp ~word =
  let x = (seed * 0x9E3779B1) lxor (comp * 0x85EBCA77) lxor (word * 0xC2B2AE35) in
  Int64.of_int (x land 0xFFFF_FFFF)

let run cfg =
  if cfg.compartments < 1 || cfg.compartments > 15 then
    invalid_arg "Compart.run: compartments must be 1..15";
  let n = cfg.compartments in
  let machine = Machine.create Platform.m2 in
  let rec_ = Recorder.create () in
  Recorder.attach (Machine.sim_ctx machine) rec_;
  let sys = Api.boot ~backend:(backend_of cfg.mechanism) machine in
  let proc = Sj_kernel.Process.create ~name:"compart" machine in
  let ctx = Api.context sys proc (Machine.core machine 0) in
  let core = Api.core ctx in
  let words = max 1 (min (cfg.seg_size / 8) 512) in
  let seed_segment ~comp seg =
    let base = Segment.base seg in
    for w = 0 to words - 1 do
      Api.store64 ctx ~va:(base + (8 * w)) (word_value ~seed:cfg.seed ~comp ~word:w)
    done
  in
  (* Build the compartments; returns the per-crossing jump and the
     segment array, leaving the context wherever the measured loop
     expects to start. *)
  let segs, cross, leave =
    match cfg.mechanism with
    | Pkey ->
      let vas = Api.vas_create ctx ~name:"comp" ~mode:0o600 in
      if cfg.tags then Api.vas_ctl ctx (`Request_tag vas);
      let segs =
        Array.init n (fun i ->
            let seg =
              Api.seg_alloc_anywhere ctx
                ~name:(Printf.sprintf "comp.seg%d" i)
                ~size:cfg.seg_size ~mode:0o600
            in
            Api.seg_attach ctx vas seg ~prot:Prot.rw;
            seg)
      in
      let keys =
        Array.map
          (fun seg ->
            let key = Api.pkey_alloc ctx vas in
            Api.pkey_assign ctx vas seg ~key;
            key)
          segs
      in
      let vh = Api.vas_attach ctx vas in
      Api.vas_switch ctx vh;
      (* Unrestricted view (key register at default): seed the data. *)
      Array.iteri (fun i seg -> seed_segment ~comp:i seg) segs;
      ( segs,
        (fun c -> Api.pkey_switch ctx ~key:keys.(c)),
        fun () ->
          Api.pkey_switch ctx ~key:0;
          Api.switch_home ctx )
    | Vas_reload | Cap_invoke ->
      let vhs =
        Array.init n (fun i ->
            let vas =
              Api.vas_create ctx ~name:(Printf.sprintf "comp%d" i) ~mode:0o600
            in
            if cfg.tags then Api.vas_ctl ctx (`Request_tag vas);
            let seg =
              Api.seg_alloc_anywhere ctx
                ~name:(Printf.sprintf "comp%d.seg" i)
                ~size:cfg.seg_size ~mode:0o600
            in
            Api.seg_attach ctx vas seg ~prot:Prot.rw;
            Api.vas_attach ctx vas)
      in
      let segs =
        Array.mapi
          (fun i vh ->
            let seg = Api.seg_find ctx ~name:(Printf.sprintf "comp%d.seg" i) in
            Api.vas_switch ctx vh;
            seed_segment ~comp:i seg;
            seg)
          vhs
      in
      Api.switch_home ctx;
      (segs, (fun c -> Api.vas_switch ctx vhs.(c)), fun () -> Api.switch_home ctx)
  in
  (* Measured loop, bracketed by metric snapshots. *)
  let m = Recorder.metrics rec_ in
  let flushes0 = Metrics.tlb_flushes m
  and inval0 = Metrics.page_invalidations m
  and pkey0 = Metrics.pkey_switches m
  and vswitch0 = Metrics.vas_switches m in
  let t0 = Core.cycles core in
  let crossing_cycles = ref 0 in
  let checksum = ref 17 in
  for j = 0 to cfg.crossings - 1 do
    let c = j mod n in
    let c0 = Core.cycles core in
    cross c;
    crossing_cycles := !crossing_cycles + (Core.cycles core - c0);
    let base = Segment.base segs.(c) in
    for l = 0 to cfg.loads_per_crossing - 1 do
      let w = ((j * 7) + (l * 13) + cfg.seed) mod words in
      let v = Api.load64 ctx ~va:(base + (8 * w)) in
      checksum := ((!checksum * 1_000_003) + Int64.to_int v) land max_int
    done
  done;
  let total_cycles = Core.cycles core - t0 in
  let flushes = Metrics.tlb_flushes m - flushes0
  and page_invalidations = Metrics.page_invalidations m - inval0
  and pkey_switches = Metrics.pkey_switches m - pkey0
  and vas_switches = Metrics.vas_switches m - vswitch0 in
  (* Hostile probe (pkey only): from inside compartment 0, touch
     compartment 1's segment. Both accesses must land as the typed
     fault; compartment 0's own data must stay readable after. *)
  let violations = ref 0 in
  (match cfg.mechanism with
  | Pkey when n >= 2 ->
    cross 0;
    let foreign = Segment.base segs.(1) in
    (try ignore (Api.load64 ctx ~va:foreign)
     with Error.Fault f when f.code = Error.Key_violation -> incr violations);
    (try Api.store64 ctx ~va:foreign 0xBADL
     with Error.Fault f when f.code = Error.Key_violation -> incr violations);
    ignore (Api.load64 ctx ~va:(Segment.base segs.(0)))
  | Pkey | Vas_reload | Cap_invoke -> ());
  leave ();
  let fingerprint =
    [
      ("crossings", cfg.crossings);
      ("total_cycles", total_cycles);
      ("crossing_cycles", !crossing_cycles);
      ("flushes", flushes);
      ("page_invalidations", page_invalidations);
      ("pkey_switches", pkey_switches);
      ("vas_switches", vas_switches);
      ("violations", !violations);
      ("checksum", !checksum);
      ("final_cycles", Core.cycles core);
    ]
  in
  {
    crossings = cfg.crossings;
    total_cycles;
    crossing_cycles = !crossing_cycles;
    per_crossing = float_of_int !crossing_cycles /. float_of_int (max 1 cfg.crossings);
    flushes;
    page_invalidations;
    pkey_switches;
    vas_switches;
    violations = !violations;
    checksum = !checksum;
    fingerprint;
  }
