(* BENCH_compartments.json, schema "spacejmp-bench/5-compartments".

   Extends the spacejmp-bench report family to the compartment bench:
   the same host block and determinism discipline as the cluster report
   (a report recording a divergence is refused by the checker; the
   harness exits 2 before writing one), plus the mechanism comparison —
   a headline trio (one run per mechanism at the same shape), the sweep
   grid over mechanism x compartments x crossing frequency, and the
   three claims the ISSUE's acceptance criteria name: pkey crossings
   strictly cheaper than both alternatives at every sweep shape, zero
   TLB flushes during pkey crossing loops, and hostile probes contained
   as typed faults. A report with any claim false is refused too. *)

type point = { cfg : Compart.config; res : Compart.result }

type t = {
  quick : bool;
  jobs : int;
  cores : int;
  ocaml_version : string;
  headline : point list;  (* one per mechanism, same shape *)
  grid : point list;
  pkey_cheapest : bool;
  zero_flush : bool;
  violations_contained : bool;
  determinism_ok : bool;
  audits : string list;
}

let schema = "spacejmp-bench/5-compartments"

let add_point b ~indent ~label p =
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let pad = String.make indent ' ' in
  let c = p.cfg and r = p.res in
  add "%s\"%s\": {\n" pad label;
  add "%s  \"mechanism\": \"%s\",\n" pad (Compart.mechanism_name c.Compart.mechanism);
  add "%s  \"compartments\": %d,\n" pad c.compartments;
  add "%s  \"crossings\": %d,\n" pad c.crossings;
  add "%s  \"loads_per_crossing\": %d,\n" pad c.loads_per_crossing;
  add "%s  \"tags\": %b,\n" pad c.tags;
  add "%s  \"total_cycles\": %d,\n" pad r.Compart.total_cycles;
  add "%s  \"crossing_cycles\": %d,\n" pad r.crossing_cycles;
  add "%s  \"per_crossing_cycles\": %.2f,\n" pad r.per_crossing;
  add "%s  \"flushes\": %d,\n" pad r.flushes;
  add "%s  \"page_invalidations\": %d,\n" pad r.page_invalidations;
  add "%s  \"pkey_switches\": %d,\n" pad r.pkey_switches;
  add "%s  \"vas_switches\": %d,\n" pad r.vas_switches;
  add "%s  \"violations\": %d,\n" pad r.violations;
  add "%s  \"simulated\": {" pad;
  List.iteri
    (fun j (k, v) ->
      if j > 0 then add ", ";
      add "\"%s\": %d" k v)
    r.fingerprint;
  add "}\n";
  add "%s}" pad

let to_json r =
  let b = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"schema\": \"%s\",\n" schema;
  add "  \"mode\": \"%s\",\n" (if r.quick then "quick" else "full");
  add "  \"host\": {\n";
  add "    \"cores\": %d,\n" r.cores;
  add "    \"ocaml_version\": \"%s\",\n" r.ocaml_version;
  add "    \"jobs\": %d\n" r.jobs;
  add "  },\n";
  add "  \"headline\": {\n";
  List.iteri
    (fun i p ->
      if i > 0 then add ",\n";
      add_point b ~indent:4
        ~label:(Compart.mechanism_name p.cfg.Compart.mechanism)
        p)
    r.headline;
  add "\n  },\n";
  add "  \"grid\": [\n";
  List.iteri
    (fun i p ->
      add "    {\n";
      add_point b ~indent:6 ~label:"point" p;
      add "\n    }%s\n" (if i = List.length r.grid - 1 then "" else ","))
    r.grid;
  add "  ],\n";
  add "  \"claims\": {\n";
  add "    \"pkey_strictly_cheapest\": %b,\n" r.pkey_cheapest;
  add "    \"zero_flush_pkey_crossings\": %b,\n" r.zero_flush;
  add "    \"violations_contained\": %b\n" r.violations_contained;
  add "  },\n";
  add "  \"determinism\": {\n";
  add "    \"audits\": [%s],\n"
    (String.concat ", " (List.map (Printf.sprintf "\"%s\"") r.audits));
  add "    \"equal\": %b\n" r.determinism_ok;
  add "  }\n}\n";
  Buffer.contents b

(* Same validation discipline as {!Cluster_report.check_string}: no
   JSON library in the tree, so check nesting balance outside strings,
   required keys, and refuse any recorded divergence or failed claim. *)
let check_string s =
  let depth = ref 0 and in_str = ref false and ok = ref true in
  String.iteri
    (fun i ch ->
      if !in_str then begin
        if ch = '"' && (i = 0 || s.[i - 1] <> '\\') then in_str := false
      end
      else
        match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
          decr depth;
          if !depth < 0 then ok := false
        | _ -> ())
    s;
  if !depth <> 0 || !in_str then ok := false;
  let required =
    [
      Printf.sprintf "\"schema\": \"%s\"" schema;
      "\"host\"";
      "\"cores\"";
      "\"ocaml_version\"";
      "\"jobs\"";
      "\"headline\"";
      "\"vas_reload\"";
      "\"cap_invoke\"";
      "\"pkey_switch\"";
      "\"grid\"";
      "\"per_crossing_cycles\"";
      "\"flushes\"";
      "\"violations\"";
      "\"simulated\"";
      "\"claims\"";
      "\"pkey_strictly_cheapest\"";
      "\"zero_flush_pkey_crossings\"";
      "\"violations_contained\"";
      "\"determinism\"";
    ]
  in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let errors = ref [] in
  List.iter
    (fun key ->
      if not (contains key) then
        errors := Printf.sprintf "missing key %s" key :: !errors)
    required;
  if contains "\"equal\": false" then
    errors := "report records a determinism divergence" :: !errors;
  if contains "\"pkey_strictly_cheapest\": false" then
    errors := "pkey crossing not strictly cheapest" :: !errors;
  if contains "\"zero_flush_pkey_crossings\": false" then
    errors := "TLB flush recorded during a pkey crossing loop" :: !errors;
  if contains "\"violations_contained\": false" then
    errors := "hostile probe not contained as typed faults" :: !errors;
  if not !ok then errors := "unbalanced JSON nesting" :: !errors;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let check_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  check_string s
