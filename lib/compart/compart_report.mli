(** BENCH_compartments.json — schema ["spacejmp-bench/5-compartments"].

    The mechanism-comparison report: a headline trio (one run per
    crossing mechanism at the same shape), the sweep grid over
    mechanism x compartments x crossing frequency, the three acceptance
    claims, and the determinism audit record. {!check_string} refuses a
    report that records a divergence or a failed claim, so a published
    file is evidence the claims held. *)

type point = { cfg : Compart.config; res : Compart.result }

type t = {
  quick : bool;
  jobs : int;
  cores : int;
  ocaml_version : string;
  headline : point list;  (** one per mechanism, same shape *)
  grid : point list;
  pkey_cheapest : bool;
      (** pkey per-crossing strictly below both alternatives at every
          sweep shape *)
  zero_flush : bool;
      (** no TLB flush observed during any pkey crossing loop *)
  violations_contained : bool;
      (** every hostile probe landed as a typed [Key_violation] *)
  determinism_ok : bool;
  audits : string list;
}

val schema : string
val to_json : t -> string

val check_string : string -> (unit, string list) result
(** Validate report text: JSON nesting balance outside strings, required
    keys, and refusal of ["equal": false] or any failed claim. *)

val check_file : string -> (unit, string list) result
