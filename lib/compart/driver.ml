(* The `bench compartments` / `sjctl compartments` driver: runs the
   headline trio (one run per mechanism at the same shape), the sweep
   grid over mechanism x compartments x crossing frequency, evaluates
   the acceptance claims, and runs the same determinism audits as the
   cluster driver. Shared by bench/compartbench.ml and bin/sjctl.ml so
   the two front-ends cannot drift.

   Two failure channels, both fatal to the front-ends (exit 2, no
   report written):
   - [divergences]: a fingerprint changed under a host-side condition
     that must not leak into simulated results (rerun, tracing on,
     empty fault plan installed, inside a domain pool);
   - [failed_claims]: a sweep shape where the pkey crossing was not
     strictly cheaper than both alternatives, a TLB flush during a pkey
     crossing loop, or a hostile probe that was not contained. *)

module Par = Sj_util.Par
module Size = Sj_util.Size

type outcome = {
  report : Compart_report.t;
  divergences : string list;  (* empty iff report.determinism_ok *)
  failed_claims : string list;
}

let mechanisms = [ Compart.Vas_reload; Compart.Cap_invoke; Compart.Pkey ]

(* Headline shape: enough crossings that the per-crossing mean is
   stable, at the default 4-compartment / 8-loads shape. *)
let headline_cfg ~quick =
  if quick then { Compart.default with crossings = 400 }
  else { Compart.default with crossings = 4_000; seg_size = Size.kib 256 }

(* The sweep is about the *shape* of the surface: where the crossing
   mechanism stops dominating (loads_per_crossing), and whether the
   pkey advantage survives at every compartment count up to the full
   15-key register. *)
let grid_cfg ~quick =
  if quick then { Compart.default with crossings = 200 }
  else { Compart.default with crossings = 2_000 }

let grid_axes ~quick =
  if quick then ([ 2; 8 ], [ 1; 16 ]) else ([ 2; 4; 8; 15 ], [ 1; 8; 64 ])

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let fp_equal (a : Compart.result) (b : Compart.result) =
  a.Compart.fingerprint = b.Compart.fingerprint

(* The acceptance claims, evaluated over the sweep (headline included —
   it is just another shape). *)
let evaluate points =
  let failed = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failed := s :: !failed) fmt in
  let shape (p : Compart_report.point) =
    (p.cfg.Compart.compartments, p.cfg.Compart.loads_per_crossing, p.cfg.Compart.crossings)
  in
  let per_crossing mech p0 =
    List.find_opt
      (fun (p : Compart_report.point) ->
        p.cfg.Compart.mechanism = mech && shape p = shape p0)
      points
    |> Option.map (fun (p : Compart_report.point) -> p.res.Compart.per_crossing)
  in
  List.iter
    (fun (p : Compart_report.point) ->
      match p.cfg.Compart.mechanism with
      | Compart.Pkey ->
        let comps, loads, _ = shape p in
        let pk = p.res.Compart.per_crossing in
        List.iter
          (fun mech ->
            match per_crossing mech p with
            | Some other when pk < other -> ()
            | Some other ->
              fail "pkey-not-cheapest(compartments=%d,loads=%d): %.2f >= %.2f vs %s"
                comps loads pk other (Compart.mechanism_name mech)
            | None -> fail "missing-%s-run(compartments=%d,loads=%d)"
                (Compart.mechanism_name mech) comps loads)
          [ Compart.Vas_reload; Compart.Cap_invoke ];
        if p.res.Compart.flushes <> 0 || p.res.Compart.page_invalidations <> 0 then
          fail "pkey-flushed(compartments=%d,loads=%d): %d flushes, %d invalidations"
            comps loads p.res.Compart.flushes p.res.Compart.page_invalidations;
        if p.res.Compart.pkey_switches <> p.res.Compart.crossings then
          fail "pkey-switch-count(compartments=%d,loads=%d): %d of %d crossings"
            comps loads p.res.Compart.pkey_switches p.res.Compart.crossings;
        if comps >= 2 && p.res.Compart.violations <> 2 then
          fail "probe-not-contained(compartments=%d,loads=%d): %d of 2 denials"
            comps loads p.res.Compart.violations
      | Compart.Vas_reload | Compart.Cap_invoke ->
        if p.res.Compart.violations <> 0 then
          fail "unexpected-violations(%s)" (Compart.mechanism_name p.cfg.Compart.mechanism))
    points;
  List.rev !failed

let run ~quick ~jobs ?(progress = fun _ -> ()) () =
  let point cfg = { Compart_report.cfg; res = Compart.run cfg } in
  let hcfg = headline_cfg ~quick in
  progress "headline: one run per crossing mechanism, same shape";
  let headline =
    List.map (fun mechanism -> point { hcfg with Compart.mechanism }) mechanisms
  in
  let gcfg = grid_cfg ~quick in
  let comps_l, loads_l = grid_axes ~quick in
  let cfgs =
    List.concat_map
      (fun mechanism ->
        List.concat_map
          (fun compartments ->
            List.map
              (fun loads_per_crossing ->
                { gcfg with Compart.mechanism; compartments; loads_per_crossing })
              loads_l)
          comps_l)
      mechanisms
  in
  progress
    (Printf.sprintf "grid: %d points (mechanism x compartments x crossing frequency)"
       (List.length cfgs));
  (* Each point simulates its own machine, so fanning points across
     domains changes only the wall clock; results are assembled in
     config order either way. *)
  let grid =
    if jobs <= 1 then List.map point cfgs
    else
      Par.with_pool ~size:jobs (fun pool ->
          List.map2
            (fun cfg res -> { Compart_report.cfg; res })
            cfgs
            (Par.map_list pool Compart.run cfgs))
  in
  progress "claims: pkey strictly cheapest, zero flushes, probes contained";
  let failed_claims = evaluate (headline @ grid) in
  progress "determinism audits";
  (* Audit the pkey path (the novel one) under every host condition,
     plus a plain rerun of a CR3-reload config. *)
  let acfg = { gcfg with Compart.mechanism = Compart.Pkey } in
  let reference = Compart.run acfg in
  let divergences = ref [] in
  let audit name r =
    if not (fp_equal reference r) then divergences := name :: !divergences
  in
  audit "rerun" (Compart.run acfg);
  audit "trace-on" (Sj_obs.Recorder.with_tracing true (fun () -> Compart.run acfg));
  audit "empty-fault-plan"
    (Sj_fault.Injector.with_plan [] (fun () -> Compart.run acfg));
  Par.with_pool ~size:(max 2 jobs) (fun pool ->
      List.iter
        (fun r -> audit "domains" r)
        (Par.map_list pool Compart.run [ acfg; acfg ]));
  let vcfg = { gcfg with Compart.mechanism = Compart.Vas_reload } in
  let vref = Compart.run vcfg in
  if not (fp_equal vref (Compart.run vcfg)) then
    divergences := "rerun-vas" :: !divergences;
  let report =
    {
      Compart_report.quick;
      jobs;
      cores = Domain.recommended_domain_count ();
      ocaml_version = Sys.ocaml_version;
      headline;
      grid;
      pkey_cheapest = not (List.exists (has_prefix "pkey-not-cheapest") failed_claims
                           || List.exists (has_prefix "missing-") failed_claims);
      zero_flush = not (List.exists (has_prefix "pkey-flushed") failed_claims
                        || List.exists (has_prefix "pkey-switch-count") failed_claims);
      violations_contained =
        not (List.exists (has_prefix "probe-not-contained") failed_claims
             || List.exists (has_prefix "unexpected-violations") failed_claims);
      determinism_ok = !divergences = [];
      audits = [ "rerun"; "trace-on"; "empty-fault-plan"; "domains"; "rerun-vas" ];
    }
  in
  { report; divergences = List.rev !divergences; failed_claims }
