(** The shared [bench compartments] / [sjctl compartments] driver:
    headline trio, sweep grid, acceptance claims, determinism audits.
    Front-ends differ only in argument parsing and printing; both exit
    2 without writing a report when [divergences] or [failed_claims] is
    non-empty. *)

type outcome = {
  report : Compart_report.t;
  divergences : string list;
      (** fingerprint mismatches under host-side conditions (rerun,
          tracing, fault plan, domain pool); empty iff
          [report.determinism_ok] *)
  failed_claims : string list;
      (** acceptance-claim failures: a sweep shape where pkey was not
          strictly cheapest, a flush during a pkey crossing loop, or an
          uncontained hostile probe *)
}

val headline_cfg : quick:bool -> Compart.config
val grid_cfg : quick:bool -> Compart.config

val run :
  quick:bool -> jobs:int -> ?progress:(string -> unit) -> unit -> outcome
