(** x86-64-style 4-level radix page tables.

    Tables are genuine radix-tree nodes whose backing frames are
    allocated from the simulated physical memory, so page-table
    construction consumes (simulated) physical memory and its cost is
    proportional to the number of PTEs written and tables allocated —
    the mechanism behind the paper's Figure 1.

    Interior subtrees may be *shared* between several roots
    (reference-counted). This supports both the Barrelfish design where
    all non-root tables of a VAS are shared among attaching processes
    (§4.2) and the translation-caching optimization for segments
    (§4.1, §4.4).

    A second, distinct sharing mode backs fork: {!clone_cow} marks the
    shared subtrees *copy-on-write*. Walks report such mappings with
    [cow = true] (the machine layer inserts them read-only so the first
    write traps), and every structural mutator takes private ownership
    of CoW-shared tables before touching them, so a mutation on one
    side of a fork is never visible on the other. *)

type t
(** One address space's translation tree (one root table). *)

type page_size = P4K | P2M
(** Mapping granularity: 4 KiB leaf PTEs or 2 MiB leaf PDEs. *)

val bytes_of_page_size : page_size -> int

type mapping = {
  pa : int;  (** physical byte address of the mapped page's base *)
  prot : Prot.t;
  key : int;
      (** protection-key tag ({!Pkey}); 0 = default. The tag only — key
          *rights* live in the per-core register, never in the entry. *)
  size : page_size;
  global : bool;  (** x86 G bit: TLB entry survives untagged CR3 loads *)
  levels : int;  (** tables touched by a walk resolving this mapping *)
  cow : bool;
      (** copy-on-write: the walk crossed a fork-shared table or the
          leaf carries the CoW bit. Hardware-level writes must trap
          (insert the TLB entry read-only) until {!break_cow} repoints
          the page at a private frame. *)
}

type stats = {
  mutable tables_allocated : int;
  mutable tables_freed : int;
  mutable pte_writes : int;
  mutable pte_clears : int;
}
(** Cumulative construction/destruction work, read by the machine layer
    to charge cycles. *)

val create : Sj_mem.Phys_mem.t -> t
(** Allocate a root table. *)

val destroy : t -> unit
(** Release the root and every exclusively-owned interior table (shared
    subtrees survive until their last owner is destroyed). Leaf data
    frames are never freed — they belong to VM objects. Each live PTE in
    a freed table is counted in [stats.pte_clears], modelling the
    teardown walk that zeroes entries before returning the frame, so
    callers can charge teardown like any other page-table mutation. *)

val root_frame : t -> Sj_mem.Phys_mem.frame
(** The root table's frame (the value a CR3 write installs). *)

val stats : t -> stats
val reset_stats : t -> unit

val map :
  ?global:bool -> ?key:int ->
  t -> va:int -> pa:int -> prot:Prot.t -> size:page_size -> unit
(** Install one mapping. [va]/[pa] must be aligned to [size]. [key]
    (default 0) tags the entry with a protection key. Raises
    [Invalid_argument] if the slot is already mapped (mmap-over-mapping
    must be an explicit unmap+map, unlike Linux's silent clobber the
    paper criticizes in §2.4). *)

val map_run :
  ?global:bool -> ?key:int ->
  t -> va:int -> n:int -> frames:Sj_mem.Phys_mem.frame array -> off:int -> prot:Prot.t -> unit
(** Install [n] consecutive 4 KiB mappings starting at [va], page [i]
    backed by [frames.(off + i)]. Observably identical to [n] {!map}
    calls (same PTEs, stats, and failure behaviour) but locates each
    leaf table once per 2 MiB run instead of once per page — the
    segment attach path for large objects. *)

val unmap : t -> va:int -> size:page_size -> unit
(** Remove one mapping; raises [Invalid_argument] if absent. Empty
    interior tables are freed eagerly. *)

val walk : t -> va:int -> mapping option
(** Software page walk. [None] = page fault. *)

(** {2 Page-walk caching}

    A host-side analogue of the paging-structure caches real MMUs keep:
    pointers to the interior tables translating the most recent
    512 GiB / 1 GiB / 2 MiB spans, validated against a global
    structural-change epoch (any [map]/[unmap]/[protect]/graft/prune/
    [destroy] on any table invalidates every cache, which keeps shared
    subtrees sound). Results are bit-identical to {!walk}. *)

type walk_cache

val walk_cache_create : unit -> walk_cache
val walk_cache_reset : walk_cache -> unit

val walk_cached : t -> walk_cache -> va:int -> mapping option
(** Same result as [walk t ~va] (including [mapping.levels], which
    counts the tables a full walk would touch), but descends from the
    deepest still-valid cached node — 1-2 levels instead of 4 on
    locality-heavy access patterns. *)

val protect : t -> va:int -> size:page_size -> prot:Prot.t -> unit
(** Change the protections of an existing mapping (key tag preserved). *)

val set_key : t -> va:int -> size:page_size -> key:int -> unit
(** Retag an existing mapping with a protection key (protections
    preserved); counts one PTE write, like {!protect}. *)

val map_range :
  ?global:bool -> ?key:int ->
  t -> va:int -> frames:Sj_mem.Phys_mem.frame array -> prot:Prot.t -> unit
(** Map a contiguous virtual range of 4 KiB pages onto the given frames. *)

val unmap_range : t -> va:int -> pages:int -> unit
(** Unmap [pages] consecutive 4 KiB-page mappings starting at [va]. *)

(** {2 Subtree sharing} *)

type subtree
(** A detached, shareable interior subtree covering one naturally
    aligned region: 512 GiB (a PML4 slot), 1 GiB (a PDPT slot) or
    2 MiB (a PD slot). *)

val subtree_level : subtree -> int
(** Level of the shared table: 3 = PDPT (512 GiB span), 2 = PD (1 GiB),
    1 = PT (2 MiB). *)

val extract_subtree : t -> va:int -> level:int -> subtree option
(** Detach-and-share the interior table that translates the aligned
    region containing [va] at [level] (see {!subtree_level}). Returns
    [None] if nothing is mapped there. The table remains linked in [t]
    and becomes shared. *)

val graft_subtree : t -> va:int -> subtree -> unit
(** Link a shared subtree into [t] at the aligned slot containing [va].
    Counts as a single PTE write regardless of how many translations the
    subtree carries — this is the attach-acceleration the paper's
    cached-translation segments exploit. Raises [Invalid_argument] if
    the slot is occupied. *)

val prune_subtree : t -> va:int -> level:int -> unit
(** Unlink a previously grafted subtree (drops one reference). *)

val release_subtree : t -> subtree -> unit
(** Drop the extra reference held by the [subtree] handle itself,
    freeing the subtree's frames once no root links remain. Pass the
    table whose memory pool should reclaim the frames. *)

val entries_mapped : t -> int
(** Number of leaf mappings reachable from this root (counts shared
    subtrees' leaves too). *)

(** {2 Copy-on-write cloning (fork)} *)

val clone_cow : ?share:(int -> bool) -> t -> t
(** A fresh root whose accepted top-level slots *share* [t]'s subtrees
    copy-on-write instead of deep-copying them: each shared child is
    increffed once and linked CoW-tagged from both roots, so subsequent
    walks on either side report [cow = true] and the first structural
    mutation (or write fault) takes a private copy one level at a time.
    [share] (default: everything) filters by PML4 slot index, letting
    fork share attachment spans while handling process-private spans
    separately. Charges one PTE write per slot linked or retagged —
    cloning cost is O(top-level slots), not O(mappings), which is the
    entire point of fork-by-CoW. *)

val break_cow : t -> va:int -> pa:int -> unit
(** Break copy-on-write for the page containing [va]: take private
    ownership of every shared table on the walk, then repoint the leaf
    at [pa] (the caller's freshly copied frame) with the CoW bit
    cleared. Protections, key tag, page size and the global bit are
    preserved. The caller owns frame allocation and the byte copy; this
    charges only the PTE writes the ownership walk performs. Raises
    [Invalid_argument] if [va] is not mapped. *)

val count_nodes : t -> int * int
(** [(total, shared)] interior tables reachable from this root, where
    [shared] counts tables sitting at or below a CoW-shared link —
    the evidence for "a forked family shares > 90 % of its page-table
    nodes before the first write". *)

(** {2 Refcount audit} *)

type audit = {
  a_nodes : int;  (** live nodes in the arena (alloc - free) *)
  a_shared : int;  (** reachable nodes with refcount > 1 *)
  a_leaked : int;  (** live nodes unreachable from any root/handle *)
  a_imbalanced : (int * int * int) list;
      (** (node, refcount, expected) for every node whose refcount does
          not equal its recomputed indegree; sorted, deterministic *)
}

val audit : Sj_mem.Phys_mem.t -> audit
(** Recompute, from first principles, every live page-table node's
    expected refcount over all tables built on [mem]: indegree from
    reachable interior entries plus registered roots and
    extracted-subtree handles. A non-empty [a_imbalanced] or non-zero
    [a_leaked] is an incref/decref bug. Backs the explore
    refcount-balance invariant and the fork bench's leak claim. *)
