(** Memory protection keys (MPK/POE-style compartments).

    Each leaf PTE carries a 4-bit key tag alongside its protection
    bits; a per-core permission register with two bits per key
    (access-disable, write-disable) is consulted at translation time
    after the paging permission check. Rewriting the register changes
    effective rights for every page of a key with no CR3 write and no
    TLB flush — the third, cheapest switch mechanism.

    Key 0 tags every ordinary mapping and is never restrictable, so
    the all-permitted register is [0] ({!default}) and key-free
    simulations are bit-identical to a build without keys. *)

type reg = int
(** The permission-register image (PKRU). [0] permits everything. *)

val count : int
(** Keys per address space: 16. *)

val max_key : int
(** Largest valid key: 15. *)

val default : reg
(** All keys readable and writable. *)

type perm = Rw | Ro | Denied

val allows : reg -> key:int -> write:bool -> bool
(** Does the register admit this access to a page tagged [key]?
    Constant-time bit test — the translation hot path. *)

val set : reg -> key:int -> perm -> reg
(** Functional update of one key's two bits. Raises [Invalid_argument]
    for out-of-range keys and for any attempt to restrict key 0. *)

val get : reg -> key:int -> perm
val perm_name : perm -> string

val to_string : reg -> string
(** Compact "key:perm" list of the restricted keys; ["all-rw"] for
    {!default}. *)
