open Sj_util
module Phys_mem = Sj_mem.Phys_mem

type page_size = P4K | P2M

let bytes_of_page_size = function P4K -> Size.kib 4 | P2M -> Size.mib 2

type mapping = { pa : int; prot : Prot.t; size : page_size; global : bool; levels : int }

type stats = {
  mutable tables_allocated : int;
  mutable tables_freed : int;
  mutable pte_writes : int;
  mutable pte_clears : int;
}

type node = {
  level : int; (* 4 = PML4 (root), 3 = PDPT, 2 = PD, 1 = PT *)
  frame : Phys_mem.frame;
  entries : entry array; (* 512 slots *)
  mutable live : int; (* non-empty entries *)
  mutable refs : int; (* owners: parent links + subtree handles *)
}

and entry =
  | Empty
  | Table of node
  | Leaf of { pa : int; prot : Prot.t; size : page_size; global : bool }

type t = { mem : Phys_mem.t; root : node; stats : stats }
type subtree = node

let fresh_stats () = { tables_allocated = 0; tables_freed = 0; pte_writes = 0; pte_clears = 0 }

(* Structural-change epoch, kept per *physical memory*: interior
   subtrees may be shared between roots (grafting), so a mutation
   through one root can be visible in walks of another — but only among
   tables over the same [Phys_mem.t]. Walk caches self-invalidate
   whenever any table over that memory changed, which is trivially
   sound, costs nothing on the mutation-free hot loops the caches
   target, and keeps independent simulations (each with its own
   physical memory) from invalidating each other's caches. *)
let dirty t = Phys_mem.bump_pt_epoch t.mem

let alloc_node t ~level =
  t.stats.tables_allocated <- t.stats.tables_allocated + 1;
  { level; frame = Phys_mem.alloc_frame t.mem; entries = Array.make 512 Empty; live = 0; refs = 1 }

let create mem =
  let stats = fresh_stats () in
  let root =
    { level = 4; frame = Phys_mem.alloc_frame mem; entries = Array.make 512 Empty; live = 0; refs = 1 }
  in
  stats.tables_allocated <- stats.tables_allocated + 1;
  { mem; root; stats }

let root_frame t = t.root.frame
let stats t = t.stats

let reset_stats t =
  t.stats.tables_allocated <- 0;
  t.stats.tables_freed <- 0;
  t.stats.pte_writes <- 0;
  t.stats.pte_clears <- 0

let index_at ~level va =
  match level with
  | 4 -> Addr.pml4_index va
  | 3 -> Addr.pdpt_index va
  | 2 -> Addr.pd_index va
  | 1 -> Addr.pt_index va
  | _ -> invalid_arg "Page_table.index_at: bad level"

(* Level at which a leaf for the given page size lives. *)
let leaf_level = function P4K -> 1 | P2M -> 2

(* [count_clears] makes freeing a table charge one [pte_clears] per
   live (non-Empty) slot, modelling the teardown walk that zeroes each
   PTE before the frame is returned. Incremental unmap/prune paths keep
   the default [false]: they already account for the single slot they
   clear, and the tables they release are empty by construction. *)
let rec decref ?(count_clears = false) t node =
  node.refs <- node.refs - 1;
  if node.refs = 0 then begin
    Array.iter
      (function
        | Table child ->
          if count_clears then t.stats.pte_clears <- t.stats.pte_clears + 1;
          decref ~count_clears t child
        | Leaf _ ->
          if count_clears then t.stats.pte_clears <- t.stats.pte_clears + 1
        | Empty -> ())
      node.entries;
    Phys_mem.free_frame t.mem node.frame;
    t.stats.tables_freed <- t.stats.tables_freed + 1
  end

let destroy t =
  dirty t;
  decref ~count_clears:true t t.root

let check_aligned va size name =
  if va land (bytes_of_page_size size - 1) <> 0 then
    invalid_arg (Printf.sprintf "Page_table.%s: address %s not %s-aligned" name
                   (Addr.to_string va) (Size.to_string (bytes_of_page_size size)))

(* Descend to the table holding the slot for [va] at [target_level],
   creating intermediate tables when [create_missing]. *)
let rec descend t node ~va ~target_level ~create_missing =
  if node.level = target_level then Some node
  else
    let i = index_at ~level:node.level va in
    match node.entries.(i) with
    | Table child -> descend t child ~va ~target_level ~create_missing
    | Leaf _ ->
      invalid_arg
        (Printf.sprintf "Page_table: %s already covered by a larger mapping" (Addr.to_string va))
    | Empty ->
      if not create_missing then None
      else begin
        let child = alloc_node t ~level:(node.level - 1) in
        node.entries.(i) <- Table child;
        node.live <- node.live + 1;
        t.stats.pte_writes <- t.stats.pte_writes + 1;
        descend t child ~va ~target_level ~create_missing
      end

let map ?(global = false) t ~va ~pa ~prot ~size =
  dirty t;
  check_aligned va size "map";
  check_aligned pa size "map";
  if va < 0 || va >= Addr.va_limit then invalid_arg "Page_table.map: VA out of range";
  let level = leaf_level size in
  match descend t t.root ~va ~target_level:level ~create_missing:true with
  | None -> assert false
  | Some node ->
    let i = index_at ~level va in
    (match node.entries.(i) with
    | Empty ->
      node.entries.(i) <- Leaf { pa; prot; size; global };
      node.live <- node.live + 1;
      t.stats.pte_writes <- t.stats.pte_writes + 1
    | Leaf _ | Table _ ->
      invalid_arg (Printf.sprintf "Page_table.map: %s already mapped" (Addr.to_string va)))

(* Remove a leaf and prune now-empty exclusively-owned interior tables. *)
let unmap t ~va ~size =
  dirty t;
  check_aligned va size "unmap";
  let level = leaf_level size in
  let rec go node =
    if node.level = level then begin
      let i = index_at ~level va in
      match node.entries.(i) with
      | Leaf _ ->
        node.entries.(i) <- Empty;
        node.live <- node.live - 1;
        t.stats.pte_clears <- t.stats.pte_clears + 1
      | Empty | Table _ ->
        invalid_arg (Printf.sprintf "Page_table.unmap: %s not mapped" (Addr.to_string va))
    end
    else begin
      let i = index_at ~level:node.level va in
      match node.entries.(i) with
      | Table child ->
        go child;
        if child.live = 0 && child.refs = 1 then begin
          node.entries.(i) <- Empty;
          node.live <- node.live - 1;
          t.stats.pte_clears <- t.stats.pte_clears + 1;
          decref t child
        end
      | Empty | Leaf _ ->
        invalid_arg (Printf.sprintf "Page_table.unmap: %s not mapped" (Addr.to_string va))
    end
  in
  go t.root

let walk t ~va =
  if va < 0 || va >= Addr.va_limit then None
  else
    let rec go node levels =
      let i = index_at ~level:node.level va in
      match node.entries.(i) with
      | Empty -> None
      | Table child -> go child (levels + 1)
      | Leaf { pa; prot; size; global } -> Some { pa; prot; size; global; levels }
    in
    go t.root 1

(* ---- Software page-walk cache (a per-core paging-structure cache) ----

   Caches pointers to the interior tables (PDPT / PD / PT) that
   translate the most recent 512 GiB / 1 GiB / 2 MiB span, so a walk
   with spatial locality descends 1-2 levels instead of 4. Entries are
   validated against [global_gen]; the returned [mapping] (including
   [levels], which counts the tables the *full* walk would touch) is
   identical to {!walk}'s because with no structural change the full
   walk would reach the very same nodes. *)

type walk_cache = {
  mutable owner : t option; (* physical identity of the cached tree *)
  mutable wgen : int;
  mutable base_l1 : int; (* 2 MiB span base; -1 = empty *)
  mutable node_l1 : node option;
  mutable base_l2 : int; (* 1 GiB span base *)
  mutable node_l2 : node option;
  mutable base_l3 : int; (* 512 GiB span base *)
  mutable node_l3 : node option;
}

let span_l1 = 1 lsl 21
let span_l2 = 1 lsl 30
let span_l3 = 1 lsl 39

let walk_cache_create () =
  {
    owner = None;
    wgen = -1;
    base_l1 = -1;
    node_l1 = None;
    base_l2 = -1;
    node_l2 = None;
    base_l3 = -1;
    node_l3 = None;
  }

let walk_cache_reset wc =
  wc.owner <- None;
  wc.wgen <- -1;
  wc.base_l1 <- -1;
  wc.node_l1 <- None;
  wc.base_l2 <- -1;
  wc.node_l2 <- None;
  wc.base_l3 <- -1;
  wc.node_l3 <- None

let rec descend_cached wc node levels ~va =
  (* Record the interior nodes we pass so the next walk can resume
     deeper. Skip the store when the span is already recorded (same
     epoch => it is necessarily the same node). *)
  (match node.level with
  | 3 ->
    let b = va land lnot (span_l3 - 1) in
    if wc.base_l3 <> b then begin
      wc.base_l3 <- b;
      wc.node_l3 <- Some node
    end
  | 2 ->
    let b = va land lnot (span_l2 - 1) in
    if wc.base_l2 <> b then begin
      wc.base_l2 <- b;
      wc.node_l2 <- Some node
    end
  | 1 ->
    let b = va land lnot (span_l1 - 1) in
    if wc.base_l1 <> b then begin
      wc.base_l1 <- b;
      wc.node_l1 <- Some node
    end
  | _ -> ());
  let i = index_at ~level:node.level va in
  match node.entries.(i) with
  | Empty -> None
  | Table child -> descend_cached wc child (levels + 1) ~va
  | Leaf { pa; prot; size; global } -> Some { pa; prot; size; global; levels }

let walk_cached t wc ~va =
  if va < 0 || va >= Addr.va_limit then None
  else begin
    (match wc.owner with
    | Some o when o == t && wc.wgen = Phys_mem.pt_epoch t.mem -> ()
    | _ ->
      walk_cache_reset wc;
      wc.owner <- Some t;
      wc.wgen <- Phys_mem.pt_epoch t.mem);
    (* Resume from the deepest cached node covering [va]; a node at
       level L is reached by the full walk with [levels] = 5 - L. *)
    match wc.node_l1 with
    | Some n when wc.base_l1 = va land lnot (span_l1 - 1) -> descend_cached wc n 4 ~va
    | _ -> (
      match wc.node_l2 with
      | Some n when wc.base_l2 = va land lnot (span_l2 - 1) -> descend_cached wc n 3 ~va
      | _ -> (
        match wc.node_l3 with
        | Some n when wc.base_l3 = va land lnot (span_l3 - 1) -> descend_cached wc n 2 ~va
        | _ -> descend_cached wc t.root 1 ~va))
  end

let protect t ~va ~size ~prot =
  dirty t;
  check_aligned va size "protect";
  let level = leaf_level size in
  match descend t t.root ~va ~target_level:level ~create_missing:false with
  | None -> invalid_arg "Page_table.protect: not mapped"
  | Some node ->
    let i = index_at ~level va in
    (match node.entries.(i) with
    | Leaf { pa; size; global; _ } ->
      node.entries.(i) <- Leaf { pa; prot; size; global };
      t.stats.pte_writes <- t.stats.pte_writes + 1
    | Empty | Table _ -> invalid_arg "Page_table.protect: not mapped")

let map_range ?(global = false) t ~va ~frames ~prot =
  Array.iteri
    (fun i frame ->
      map ~global t
        ~va:(va + (i * Addr.page_size))
        ~pa:(Phys_mem.base_of_frame frame)
        ~prot ~size:P4K)
    frames

let unmap_range t ~va ~pages =
  for i = 0 to pages - 1 do
    unmap t ~va:(va + (i * Addr.page_size)) ~size:P4K
  done

let subtree_level (n : subtree) = n.level

let span_of_level = function
  | 3 -> 1 lsl 39 (* a PML4 slot: 512 GiB *)
  | 2 -> 1 lsl 30 (* a PDPT slot: 1 GiB *)
  | 1 -> 1 lsl 21 (* a PD slot: 2 MiB *)
  | _ -> invalid_arg "Page_table: shareable levels are 1, 2, 3"

let extract_subtree t ~va ~level =
  let span = span_of_level level in
  let base = Size.round_down va ~align:span in
  match descend t t.root ~va:base ~target_level:(level + 1) ~create_missing:false with
  | None -> None
  | Some parent -> (
    let i = index_at ~level:(level + 1) base in
    match parent.entries.(i) with
    | Table child ->
      child.refs <- child.refs + 1;
      Some child
    | Empty -> None
    | Leaf _ -> invalid_arg "Page_table.extract_subtree: slot holds a large-page leaf")

let graft_subtree t ~va (sub : subtree) =
  dirty t;
  let span = span_of_level sub.level in
  if va land (span - 1) <> 0 then
    invalid_arg "Page_table.graft_subtree: address not aligned to subtree span";
  match descend t t.root ~va ~target_level:(sub.level + 1) ~create_missing:true with
  | None -> assert false
  | Some parent -> (
    let i = index_at ~level:(sub.level + 1) va in
    match parent.entries.(i) with
    | Empty ->
      sub.refs <- sub.refs + 1;
      parent.entries.(i) <- Table sub;
      parent.live <- parent.live + 1;
      t.stats.pte_writes <- t.stats.pte_writes + 1
    | Table _ | Leaf _ -> invalid_arg "Page_table.graft_subtree: slot occupied")

let prune_subtree t ~va ~level =
  dirty t;
  let span = span_of_level level in
  let base = Size.round_down va ~align:span in
  match descend t t.root ~va:base ~target_level:(level + 1) ~create_missing:false with
  | None -> invalid_arg "Page_table.prune_subtree: not present"
  | Some parent -> (
    let i = index_at ~level:(level + 1) base in
    match parent.entries.(i) with
    | Table child ->
      parent.entries.(i) <- Empty;
      parent.live <- parent.live - 1;
      t.stats.pte_clears <- t.stats.pte_clears + 1;
      decref t child
    | Empty | Leaf _ -> invalid_arg "Page_table.prune_subtree: not present")

let release_subtree t (sub : subtree) = decref t sub

let rec count_leaves node =
  Array.fold_left
    (fun acc -> function
      | Empty -> acc
      | Leaf _ -> acc + 1
      | Table child -> acc + count_leaves child)
    0 node.entries

let entries_mapped t = count_leaves t.root
