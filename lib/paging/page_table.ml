open Sj_util
module Phys_mem = Sj_mem.Phys_mem
module Pt_store = Sj_mem.Pt_store

type page_size = P4K | P2M

let bytes_of_page_size = function P4K -> Size.kib 4 | P2M -> Size.mib 2

type mapping = {
  pa : int;
  prot : Prot.t;
  key : int;
  size : page_size;
  global : bool;
  levels : int;
  cow : bool;
}

type stats = {
  mutable tables_allocated : int;
  mutable tables_freed : int;
  mutable pte_writes : int;
  mutable pte_clears : int;
}

(* Nodes live in the flat arena owned by the physical memory
   (Phys_mem.pt_store); a "node" here is an int index into it and an
   entry is one packed int, so a walk is index arithmetic over two big
   arrays instead of a chase through per-node records:

     entry = 0                                     empty
     entry land 3 = 1: (child_index lsl 2) lor 1   interior table
     entry land 3 = 3: (child_index lsl 2) lor 3   CoW-shared interior
     entry land 3 = 2: leaf —
       bits 12..   page-aligned physical base (pa's low 12 bits are 0)
       bit 11      copy-on-write (first write must trap and break)
       bits 7..10  protection key (0 = default; key rights live in the
                   per-core register, never in the entry)
       bits 4..6   protection (read=1 / write=2 / exec=4)
       bit 3       page size (1 = 2 MiB)
       bit 2       global
       bits 0..1   tag 2

   A mapping is copy-on-write iff the walk that reached it crossed a
   tag-3 entry *or* the leaf carries bit 11. Tag 3 marks the sharing
   point a fork created: everything below it belongs to several tables
   at once, so mutators must take private ownership of the child
   ([own_child]) before descending, pushing the CoW marking one level
   down as they go. Tag-1 sharing (grafted translation caches) is
   intentionally mutable in place and stays tag 1.

   Protections decode through an 8-entry intern table, so unpacking
   allocates nothing and yields structurally equal Prot values. *)
type t = {
  mem : Phys_mem.t;
  store : Pt_store.t;
  root : int;
  stats : stats;
  (* Host-side memo of the last level-1 table written by a 4 KiB [map]:
     sequential attach loops install 512 leaves per table, and the memo
     turns 511 of those root-down descents into one array read. Valid
     while (a) the store has freed no node since it was recorded — node
     indices are only recycled through [Pt_store.free], so an unchanged
     count proves the index still names the same table — and (b) no
     [prune_subtree] detached part of *this* tree without freeing it
     (a shared subtree survives with refs > 0). Descending an existing
     chain touches no stats, so a memo hit is observably identical to
     the walk it skips. *)
  mutable memo_block : int; (* va lsr 21; -1 = empty *)
  mutable memo_node : int;
  mutable memo_frees : int;
}

type subtree = { s_idx : int; s_level : int }

let fresh_stats () = { tables_allocated = 0; tables_freed = 0; pte_writes = 0; pte_clears = 0 }

(* Structural-change epoch, kept per *physical memory*: interior
   subtrees may be shared between roots (grafting), so a mutation
   through one root can be visible in walks of another — but only among
   tables over the same [Phys_mem.t]. Walk caches self-invalidate
   whenever any table over that memory changed, which is trivially
   sound, costs nothing on the mutation-free hot loops the caches
   target, and keeps independent simulations (each with its own
   physical memory) from invalidating each other's caches. The epoch
   also covers node-index reuse: indices are only allocated or freed
   under a [dirty], so a cache can never see a recycled index as the
   node it once cached. *)
let dirty t = Phys_mem.bump_pt_epoch t.mem

let prot_index (p : Prot.t) =
  (if p.read then 1 else 0) lor (if p.write then 2 else 0) lor (if p.exec then 4 else 0)

let prots =
  Array.init 8 (fun i ->
      { Prot.read = i land 1 <> 0; write = i land 2 <> 0; exec = i land 4 <> 0 })

let e_table idx = (idx lsl 2) lor 1
let e_cow_table idx = (idx lsl 2) lor 3
let cow_bit = 2048 (* bit 11 of a leaf *)

let e_leaf ?(key = 0) ?(cow = false) ~pa ~prot ~size ~global () =
  pa
  lor (if cow then cow_bit else 0)
  lor (key lsl 7)
  lor (prot_index prot lsl 4)
  lor (match size with P2M -> 8 | P4K -> 0)
  lor (if global then 4 else 0)
  lor 2

let leaf_pa e = e land lnot 4095
let leaf_prot e = Array.unsafe_get prots ((e lsr 4) land 7)
let leaf_key e = (e lsr 7) land 15
let leaf_size e = if e land 8 <> 0 then P2M else P4K
let leaf_global e = e land 4 <> 0
let leaf_cow e = e land cow_bit <> 0

let check_key key name =
  if key < 0 || key > Pkey.max_key then
    invalid_arg (Printf.sprintf "Page_table.%s: key %d out of range" name key)

let alloc_node t ~level =
  t.stats.tables_allocated <- t.stats.tables_allocated + 1;
  let frame = Phys_mem.alloc_frame t.mem in
  Pt_store.alloc t.store ~level ~frame:(frame :> int)

let create mem =
  let stats = fresh_stats () in
  let store = Phys_mem.pt_store mem in
  let frame = Phys_mem.alloc_frame mem in
  let root = Pt_store.alloc store ~level:4 ~frame:(frame :> int) in
  stats.tables_allocated <- stats.tables_allocated + 1;
  Phys_mem.pt_register_root mem root;
  { mem; store; root; stats; memo_block = -1; memo_node = -1; memo_frees = 0 }

let frame_of_node t idx =
  Phys_mem.frame_of_addr (Pt_store.frame t.store idx * Addr.page_size)

let root_frame t = frame_of_node t t.root
let stats t = t.stats

let reset_stats t =
  t.stats.tables_allocated <- 0;
  t.stats.tables_freed <- 0;
  t.stats.pte_writes <- 0;
  t.stats.pte_clears <- 0

let index_at ~level va =
  match level with
  | 4 -> Addr.pml4_index va
  | 3 -> Addr.pdpt_index va
  | 2 -> Addr.pd_index va
  | 1 -> Addr.pt_index va
  | _ -> invalid_arg "Page_table.index_at: bad level"

(* Level at which a leaf for the given page size lives. *)
let leaf_level = function P4K -> 1 | P2M -> 2

(* [count_clears] makes freeing a table charge one [pte_clears] per
   live (non-Empty) slot, modelling the teardown walk that zeroes each
   PTE before the frame is returned. Incremental unmap/prune paths keep
   the default [false]: they already account for the single slot they
   clear, and the tables they release are empty by construction. *)
let rec decref ?(count_clears = false) t node =
  let store = t.store in
  Pt_store.set_refs store node (Pt_store.refs store node - 1);
  if Pt_store.refs store node = 0 then begin
    for i = 0 to Pt_store.slots - 1 do
      let e = Pt_store.get store node i in
      match e land 3 with
      | 1 | 3 ->
        if count_clears then t.stats.pte_clears <- t.stats.pte_clears + 1;
        decref ~count_clears t (e lsr 2)
      | 2 -> if count_clears then t.stats.pte_clears <- t.stats.pte_clears + 1
      | _ -> ()
    done;
    Phys_mem.free_frame t.mem (frame_of_node t node);
    Pt_store.free store node;
    t.stats.tables_freed <- t.stats.tables_freed + 1
  end

let destroy t =
  dirty t;
  Phys_mem.pt_unregister_root t.mem t.root;
  decref ~count_clears:true t t.root

let check_aligned va size name =
  if va land (bytes_of_page_size size - 1) <> 0 then
    invalid_arg (Printf.sprintf "Page_table.%s: address %s not %s-aligned" name
                   (Addr.to_string va) (Size.to_string (bytes_of_page_size size)))

(* Descend to the table holding the slot for [va] at [target_level],
   creating intermediate tables when [create_missing]; -1 = absent.
   Read-only callers only: a tag-3 (CoW-shared) crossing is followed in
   place, so the returned node may belong to several tables at once. *)
let rec descend t node ~va ~target_level ~create_missing =
  let level = Pt_store.level t.store node in
  if level = target_level then node
  else
    let i = index_at ~level va in
    let e = Pt_store.get t.store node i in
    match e land 3 with
    | 1 | 3 -> descend t (e lsr 2) ~va ~target_level ~create_missing
    | 2 ->
      invalid_arg
        (Printf.sprintf "Page_table: %s already covered by a larger mapping" (Addr.to_string va))
    | _ ->
      if not create_missing then -1
      else begin
        let child = alloc_node t ~level:(level - 1) in
        Pt_store.set t.store node i (e_table child);
        Pt_store.set_live t.store node (Pt_store.live t.store node + 1);
        t.stats.pte_writes <- t.stats.pte_writes + 1;
        descend t child ~va ~target_level ~create_missing
      end

(* Take private ownership of the CoW-shared child behind slot [i] of
   [node] (the entry must be tag 3). Returns the now-privately-owned
   child index, with the parent slot retagged to 1.

   Sole owner (refs = 1, the other family members are gone): adopt the
   node in place, but push the CoW marking one level down first — every
   interior entry becomes tag 3 and every leaf gains bit 11. A plain
   retag would be wrong: the *frames* under those leaves may still be
   shared through CoW-cloned objects, so first writes must keep
   trapping.

   Shared (refs > 1): allocate a private copy whose interior entries
   are tag-3 references to the original's children (each increffed) and
   whose leaves carry bit 11, then drop one reference on the original.
   Either way the charge is one PTE write per entry actually written,
   plus one for the parent slot — exactly the work a kernel would do. *)
let own_child t node i =
  let store = t.store in
  let e = Pt_store.get store node i in
  let child = e lsr 2 in
  if Pt_store.refs store child = 1 then begin
    Pt_store.set store node i (e_table child);
    t.stats.pte_writes <- t.stats.pte_writes + 1;
    for j = 0 to Pt_store.slots - 1 do
      let ej = Pt_store.get store child j in
      match ej land 3 with
      | 1 ->
        Pt_store.set store child j (ej lor 2);
        t.stats.pte_writes <- t.stats.pte_writes + 1
      | 2 when ej land cow_bit = 0 ->
        Pt_store.set store child j (ej lor cow_bit);
        t.stats.pte_writes <- t.stats.pte_writes + 1
      | _ -> ()
    done;
    child
  end
  else begin
    let copy = alloc_node t ~level:(Pt_store.level store child) in
    let live = ref 0 in
    for j = 0 to Pt_store.slots - 1 do
      let ej = Pt_store.get store child j in
      match ej land 3 with
      | 1 | 3 ->
        let g = ej lsr 2 in
        Pt_store.set_refs store g (Pt_store.refs store g + 1);
        Pt_store.set store copy j (e_cow_table g);
        incr live;
        t.stats.pte_writes <- t.stats.pte_writes + 1
      | 2 ->
        Pt_store.set store copy j (ej lor cow_bit);
        incr live;
        t.stats.pte_writes <- t.stats.pte_writes + 1
      | _ -> ()
    done;
    Pt_store.set_live store copy !live;
    Pt_store.set store node i (e_table copy);
    t.stats.pte_writes <- t.stats.pte_writes + 1;
    decref t child;
    copy
  end

(* [descend] for mutators: a tag-3 crossing takes private ownership of
   the child first, so structural changes never reach a shared node.
   Callers have already [dirty]'d the tree. *)
let rec descend_owned t node ~va ~target_level ~create_missing =
  let level = Pt_store.level t.store node in
  if level = target_level then node
  else
    let i = index_at ~level va in
    let e = Pt_store.get t.store node i in
    match e land 3 with
    | 1 -> descend_owned t (e lsr 2) ~va ~target_level ~create_missing
    | 3 -> descend_owned t (own_child t node i) ~va ~target_level ~create_missing
    | 2 ->
      invalid_arg
        (Printf.sprintf "Page_table: %s already covered by a larger mapping" (Addr.to_string va))
    | _ ->
      if not create_missing then -1
      else begin
        let child = alloc_node t ~level:(level - 1) in
        Pt_store.set t.store node i (e_table child);
        Pt_store.set_live t.store node (Pt_store.live t.store node + 1);
        t.stats.pte_writes <- t.stats.pte_writes + 1;
        descend_owned t child ~va ~target_level ~create_missing
      end

let map ?(global = false) ?(key = 0) t ~va ~pa ~prot ~size =
  dirty t;
  check_aligned va size "map";
  check_aligned pa size "map";
  check_key key "map";
  if va < 0 || va >= Addr.va_limit then invalid_arg "Page_table.map: VA out of range";
  let level = leaf_level size in
  let node =
    let block = va lsr 21 in
    if level = 1 && t.memo_block = block
       && t.memo_frees = Pt_store.free_count t.store
    then t.memo_node
    else begin
      let n = descend_owned t t.root ~va ~target_level:level ~create_missing:true in
      assert (n >= 0);
      if level = 1 then begin
        t.memo_block <- block;
        t.memo_node <- n;
        t.memo_frees <- Pt_store.free_count t.store
      end;
      n
    end
  in
  let i = index_at ~level va in
  if Pt_store.get t.store node i = 0 then begin
    Pt_store.set t.store node i (e_leaf ~key ~pa ~prot ~size ~global ());
    Pt_store.set_live t.store node (Pt_store.live t.store node + 1);
    t.stats.pte_writes <- t.stats.pte_writes + 1
  end
  else invalid_arg (Printf.sprintf "Page_table.map: %s already mapped" (Addr.to_string va))

(* Map [n] consecutive 4 KiB pages starting at [va], page [i] backed by
   [frames.(off + i)]. Observably identical to [n] single [map] calls —
   same PTEs, same stats and live counts, the same error text on a
   mid-run occupied slot — but each 2 MiB leaf table is located once
   for its whole 512-page run instead of once per page. Segment attach
   loops live on this path. *)
let map_run ?(global = false) ?(key = 0) t ~va ~n ~frames ~off ~prot =
  if n > 0 then begin
    dirty t;
    check_aligned va P4K "map";
    check_key key "map";
    if va < 0 || va + ((n - 1) * Addr.page_size) >= Addr.va_limit then
      invalid_arg "Page_table.map: VA out of range";
    if off < 0 || off + n > Array.length frames then
      invalid_arg "Page_table.map: frame range";
    let store = t.store in
    let bits =
      (key lsl 7) lor (prot_index prot lsl 4) lor (if global then 4 else 0) lor 2
    in
    let i = ref 0 in
    while !i < n do
      let va_i = va + (!i * Addr.page_size) in
      let block = va_i lsr 21 in
      let node =
        if t.memo_block = block && t.memo_frees = Pt_store.free_count store
        then t.memo_node
        else begin
          let nd = descend_owned t t.root ~va:va_i ~target_level:1 ~create_missing:true in
          assert (nd >= 0);
          t.memo_block <- block;
          t.memo_node <- nd;
          t.memo_frees <- Pt_store.free_count store;
          nd
        end
      in
      let slot0 = index_at ~level:1 va_i in
      let run = min (n - !i) (Pt_store.slots - slot0) in
      (* Pages before a failure are all written (the loop stops at the
         first occupied slot), so accounting for [j] pages after the
         loop — before raising — leaves exactly the state a loop of
         single [map] calls would. *)
      let j = ref 0 in
      let fail = ref false in
      while (not !fail) && !j < run do
        let slot = slot0 + !j in
        if Pt_store.get store node slot = 0 then begin
          Pt_store.set store node slot
            (Phys_mem.base_of_frame (Array.unsafe_get frames (off + !i + !j)) lor bits);
          incr j
        end
        else fail := true
      done;
      Pt_store.set_live store node (Pt_store.live store node + !j);
      t.stats.pte_writes <- t.stats.pte_writes + !j;
      if !fail then
        invalid_arg
          (Printf.sprintf "Page_table.map: %s already mapped"
             (Addr.to_string (va + ((!i + !j) * Addr.page_size))));
      i := !i + run
    done
  end

(* Remove a leaf and prune now-empty exclusively-owned interior tables. *)
let unmap t ~va ~size =
  dirty t;
  check_aligned va size "unmap";
  let level = leaf_level size in
  let store = t.store in
  let rec go node =
    if Pt_store.level store node = level then begin
      let i = index_at ~level va in
      if Pt_store.get store node i land 3 = 2 then begin
        Pt_store.set store node i 0;
        Pt_store.set_live store node (Pt_store.live store node - 1);
        t.stats.pte_clears <- t.stats.pte_clears + 1
      end
      else invalid_arg (Printf.sprintf "Page_table.unmap: %s not mapped" (Addr.to_string va))
    end
    else begin
      let i = index_at ~level:(Pt_store.level store node) va in
      let e = Pt_store.get store node i in
      if e land 3 = 1 || e land 3 = 3 then begin
        (* Unmapping through a CoW-shared subtree first takes private
           ownership: the siblings sharing it must keep the mapping. *)
        let child = if e land 3 = 3 then own_child t node i else e lsr 2 in
        go child;
        if Pt_store.live store child = 0 && Pt_store.refs store child = 1 then begin
          Pt_store.set store node i 0;
          Pt_store.set_live store node (Pt_store.live store node - 1);
          t.stats.pte_clears <- t.stats.pte_clears + 1;
          decref t child
        end
      end
      else invalid_arg (Printf.sprintf "Page_table.unmap: %s not mapped" (Addr.to_string va))
    end
  in
  go t.root

let mapping_of_leaf e ~levels ~cow =
  {
    pa = leaf_pa e;
    prot = leaf_prot e;
    key = leaf_key e;
    size = leaf_size e;
    global = leaf_global e;
    levels;
    cow = cow || leaf_cow e;
  }

let walk t ~va =
  if va < 0 || va >= Addr.va_limit then None
  else begin
    let store = t.store in
    let rec go node level levels cow =
      let e = Pt_store.get store node (index_at ~level va) in
      match e land 3 with
      | 1 -> go (e lsr 2) (level - 1) (levels + 1) cow
      | 3 -> go (e lsr 2) (level - 1) (levels + 1) true
      | 2 -> Some (mapping_of_leaf e ~levels ~cow)
      | _ -> None
    in
    go t.root 4 1 false
  end

(* ---- Software page-walk cache (a per-core paging-structure cache) ----

   Caches indices of the interior tables (PDPT / PD / PT) that
   translate the most recent 512 GiB / 1 GiB / 2 MiB span, so a walk
   with spatial locality descends 1-2 levels instead of 4. Entries are
   validated against the owning memory's structural epoch; the returned
   [mapping] (including [levels], which counts the tables the *full*
   walk would touch) is identical to {!walk}'s because with no
   structural change the full walk would reach the very same nodes. *)

type walk_cache = {
  mutable owner : t option; (* physical identity of the cached tree *)
  mutable wgen : int;
  mutable base_l1 : int; (* 2 MiB span base; -1 = empty *)
  mutable node_l1 : int; (* node index; -1 = none *)
  mutable cow_l1 : bool; (* walk to node crossed a tag-3 entry *)
  mutable base_l2 : int; (* 1 GiB span base *)
  mutable node_l2 : int;
  mutable cow_l2 : bool;
  mutable base_l3 : int; (* 512 GiB span base *)
  mutable node_l3 : int;
  mutable cow_l3 : bool;
}

let span_l1 = 1 lsl 21
let span_l2 = 1 lsl 30
let span_l3 = 1 lsl 39

let walk_cache_create () =
  {
    owner = None;
    wgen = -1;
    base_l1 = -1;
    node_l1 = -1;
    cow_l1 = false;
    base_l2 = -1;
    node_l2 = -1;
    cow_l2 = false;
    base_l3 = -1;
    node_l3 = -1;
    cow_l3 = false;
  }

let walk_cache_reset wc =
  wc.owner <- None;
  wc.wgen <- -1;
  wc.base_l1 <- -1;
  wc.node_l1 <- -1;
  wc.cow_l1 <- false;
  wc.base_l2 <- -1;
  wc.node_l2 <- -1;
  wc.cow_l2 <- false;
  wc.base_l3 <- -1;
  wc.node_l3 <- -1;
  wc.cow_l3 <- false

let rec descend_cached t wc node level levels cow ~va =
  (* Record the interior nodes we pass — and whether the walk down to
     them crossed a CoW-shared entry — so the next walk can resume
     deeper without forgetting cow-ness. Skip the store when the span
     is already recorded (same epoch => it is necessarily the same
     node, reached the same way). *)
  (match level with
  | 3 ->
    let b = va land lnot (span_l3 - 1) in
    if wc.base_l3 <> b then begin
      wc.base_l3 <- b;
      wc.node_l3 <- node;
      wc.cow_l3 <- cow
    end
  | 2 ->
    let b = va land lnot (span_l2 - 1) in
    if wc.base_l2 <> b then begin
      wc.base_l2 <- b;
      wc.node_l2 <- node;
      wc.cow_l2 <- cow
    end
  | 1 ->
    let b = va land lnot (span_l1 - 1) in
    if wc.base_l1 <> b then begin
      wc.base_l1 <- b;
      wc.node_l1 <- node;
      wc.cow_l1 <- cow
    end
  | _ -> ());
  let e = Pt_store.get t.store node (index_at ~level va) in
  match e land 3 with
  | 1 -> descend_cached t wc (e lsr 2) (level - 1) (levels + 1) cow ~va
  | 3 -> descend_cached t wc (e lsr 2) (level - 1) (levels + 1) true ~va
  | 2 -> Some (mapping_of_leaf e ~levels ~cow)
  | _ -> None

let walk_cached t wc ~va =
  if va < 0 || va >= Addr.va_limit then None
  else begin
    (match wc.owner with
    | Some o when o == t && wc.wgen = Phys_mem.pt_epoch t.mem -> ()
    | _ ->
      walk_cache_reset wc;
      wc.owner <- Some t;
      wc.wgen <- Phys_mem.pt_epoch t.mem);
    (* Resume from the deepest cached node covering [va]; a node at
       level L is reached by the full walk with [levels] = 5 - L. *)
    if wc.node_l1 >= 0 && wc.base_l1 = va land lnot (span_l1 - 1) then
      descend_cached t wc wc.node_l1 1 4 wc.cow_l1 ~va
    else if wc.node_l2 >= 0 && wc.base_l2 = va land lnot (span_l2 - 1) then
      descend_cached t wc wc.node_l2 2 3 wc.cow_l2 ~va
    else if wc.node_l3 >= 0 && wc.base_l3 = va land lnot (span_l3 - 1) then
      descend_cached t wc wc.node_l3 3 2 wc.cow_l3 ~va
    else descend_cached t wc t.root 4 1 false ~va
  end

let protect t ~va ~size ~prot =
  dirty t;
  check_aligned va size "protect";
  let level = leaf_level size in
  let node = descend_owned t t.root ~va ~target_level:level ~create_missing:false in
  if node < 0 then invalid_arg "Page_table.protect: not mapped"
  else begin
    let i = index_at ~level va in
    let e = Pt_store.get t.store node i in
    if e land 3 = 2 then begin
      Pt_store.set t.store node i (e land lnot (7 lsl 4) lor (prot_index prot lsl 4));
      t.stats.pte_writes <- t.stats.pte_writes + 1
    end
    else invalid_arg "Page_table.protect: not mapped"
  end

(* Retag an existing leaf. Mirrors [protect]: rewrites only the key
   bits (7..10), so protections, page size and the global bit survive —
   and, like [protect], counts one PTE write. *)
let set_key t ~va ~size ~key =
  dirty t;
  check_aligned va size "set_key";
  check_key key "set_key";
  let level = leaf_level size in
  let node = descend_owned t t.root ~va ~target_level:level ~create_missing:false in
  if node < 0 then invalid_arg "Page_table.set_key: not mapped"
  else begin
    let i = index_at ~level va in
    let e = Pt_store.get t.store node i in
    if e land 3 = 2 then begin
      Pt_store.set t.store node i (e land lnot (15 lsl 7) lor (key lsl 7));
      t.stats.pte_writes <- t.stats.pte_writes + 1
    end
    else invalid_arg "Page_table.set_key: not mapped"
  end

let map_range ?(global = false) ?(key = 0) t ~va ~frames ~prot =
  map_run ~global ~key t ~va ~n:(Array.length frames) ~frames ~off:0 ~prot

let unmap_range t ~va ~pages =
  for i = 0 to pages - 1 do
    unmap t ~va:(va + (i * Addr.page_size)) ~size:P4K
  done

let subtree_level (n : subtree) = n.s_level

let span_of_level = function
  | 3 -> 1 lsl 39 (* a PML4 slot: 512 GiB *)
  | 2 -> 1 lsl 30 (* a PDPT slot: 1 GiB *)
  | 1 -> 1 lsl 21 (* a PD slot: 2 MiB *)
  | _ -> invalid_arg "Page_table: shareable levels are 1, 2, 3"

let extract_subtree t ~va ~level =
  let span = span_of_level level in
  let base = Size.round_down va ~align:span in
  let parent = descend t t.root ~va:base ~target_level:(level + 1) ~create_missing:false in
  if parent < 0 then None
  else begin
    let i = index_at ~level:(level + 1) base in
    let e = Pt_store.get t.store parent i in
    match e land 3 with
    | 1 | 3 ->
      let child = e lsr 2 in
      Pt_store.set_refs t.store child (Pt_store.refs t.store child + 1);
      Phys_mem.pt_register_handle t.mem child;
      Some { s_idx = child; s_level = level }
    | 2 -> invalid_arg "Page_table.extract_subtree: slot holds a large-page leaf"
    | _ -> None
  end

let graft_subtree t ~va (sub : subtree) =
  dirty t;
  let span = span_of_level sub.s_level in
  if va land (span - 1) <> 0 then
    invalid_arg "Page_table.graft_subtree: address not aligned to subtree span";
  let parent = descend_owned t t.root ~va ~target_level:(sub.s_level + 1) ~create_missing:true in
  assert (parent >= 0);
  let i = index_at ~level:(sub.s_level + 1) va in
  if Pt_store.get t.store parent i = 0 then begin
    Pt_store.set_refs t.store sub.s_idx (Pt_store.refs t.store sub.s_idx + 1);
    Pt_store.set t.store parent i (e_table sub.s_idx);
    Pt_store.set_live t.store parent (Pt_store.live t.store parent + 1);
    t.stats.pte_writes <- t.stats.pte_writes + 1
  end
  else invalid_arg "Page_table.graft_subtree: slot occupied"

let prune_subtree t ~va ~level =
  dirty t;
  (* The detached subtree may survive (shared refs), so the free count
     alone cannot witness that the memoized table left this tree. *)
  t.memo_block <- -1;
  let span = span_of_level level in
  let base = Size.round_down va ~align:span in
  let parent = descend_owned t t.root ~va:base ~target_level:(level + 1) ~create_missing:false in
  if parent < 0 then invalid_arg "Page_table.prune_subtree: not present"
  else begin
    let i = index_at ~level:(level + 1) base in
    let e = Pt_store.get t.store parent i in
    if e land 3 = 1 || e land 3 = 3 then begin
      Pt_store.set t.store parent i 0;
      Pt_store.set_live t.store parent (Pt_store.live t.store parent - 1);
      t.stats.pte_clears <- t.stats.pte_clears + 1;
      decref t (e lsr 2)
    end
    else invalid_arg "Page_table.prune_subtree: not present"
  end

let release_subtree t (sub : subtree) =
  Phys_mem.pt_unregister_handle t.mem sub.s_idx;
  decref t sub.s_idx

let rec count_leaves t node =
  let acc = ref 0 in
  for i = 0 to Pt_store.slots - 1 do
    let e = Pt_store.get t.store node i in
    match e land 3 with
    | 1 | 3 -> acc := !acc + count_leaves t (e lsr 2)
    | 2 -> incr acc
    | _ -> ()
  done;
  !acc

let entries_mapped t = count_leaves t t.root

(* ---- Copy-on-write cloning (fork) ----------------------------------- *)

(* Share [t]'s top-level subtrees with a fresh table instead of
   deep-copying them. Each accepted PML4 slot is increffed once and
   installed tag-3 in the clone; the *source* slot is retagged tag-3
   too (if it was not already), so writes on either side of the fork
   take the own_child path. [share] filters by PML4 slot index —
   process-private spans and attachment spans fork differently. The
   charge is one PTE write per slot written (clone) or retagged
   (source); no table is copied, which is the whole point. *)
let clone_cow ?(share = fun _ -> true) t =
  dirty t;
  (* The memo'd level-1 table is inside a now-shared subtree: a map
     through it would mutate the whole family. Retagging frees nothing,
     so the free-count check alone would not catch this. *)
  t.memo_block <- -1;
  let clone = create t.mem in
  let store = t.store in
  for i = 0 to Pt_store.slots - 1 do
    let e = Pt_store.get store t.root i in
    match e land 3 with
    | (1 | 3) when share i ->
      let child = e lsr 2 in
      Pt_store.set_refs store child (Pt_store.refs store child + 1);
      Pt_store.set store clone.root i (e_cow_table child);
      Pt_store.set_live store clone.root (Pt_store.live store clone.root + 1);
      clone.stats.pte_writes <- clone.stats.pte_writes + 1;
      if e land 3 = 1 then begin
        Pt_store.set store t.root i (e_cow_table child);
        t.stats.pte_writes <- t.stats.pte_writes + 1
      end
    | 2 -> invalid_arg "Page_table.clone_cow: root-level leaf"
    | _ -> ()
  done;
  clone

(* Break copy-on-write for the page at [va]: repoint its leaf at the
   private frame [pa] and clear bit 11, taking ownership of every
   shared table on the walk down. The caller (the fault path) owns
   frame allocation and byte copying — this is only the PTE surgery,
   charged at one PTE write per entry touched. *)
let break_cow t ~va ~pa =
  dirty t;
  t.memo_block <- -1;
  let store = t.store in
  let rec go node =
    let level = Pt_store.level store node in
    let i = index_at ~level va in
    let e = Pt_store.get store node i in
    match e land 3 with
    | 1 -> go (e lsr 2)
    | 3 -> go (own_child t node i)
    | 2 ->
      let size = leaf_size e in
      check_aligned pa size "break_cow";
      Pt_store.set store node i
        (e_leaf ~key:(leaf_key e) ~pa ~prot:(leaf_prot e) ~size ~global:(leaf_global e) ());
      t.stats.pte_writes <- t.stats.pte_writes + 1
    | _ ->
      invalid_arg
        (Printf.sprintf "Page_table.break_cow: %s not mapped" (Addr.to_string va))
  in
  go t.root

(* Reachable interior tables, and how many of them sit under a tag-3
   crossing (sticky: a shared parent makes the whole subtree shared).
   Feeds the fork event payload and the > 90 %-shared bench claim. *)
let count_nodes t =
  let store = t.store in
  let seen = Hashtbl.create 64 in
  let total = ref 0 and shared = ref 0 in
  let rec go node ~cow =
    if not (Hashtbl.mem seen node) then begin
      Hashtbl.replace seen node ();
      incr total;
      if cow then incr shared;
      for i = 0 to Pt_store.slots - 1 do
        let e = Pt_store.get store node i in
        match e land 3 with
        | 1 -> go (e lsr 2) ~cow
        | 3 -> go (e lsr 2) ~cow:true
        | _ -> ()
      done
    end
  in
  go t.root ~cow:false;
  (!total, !shared)

(* ---- Refcount audit -------------------------------------------------- *)

type audit = {
  a_nodes : int;
  a_shared : int;
  a_leaked : int;
  a_imbalanced : (int * int * int) list;
}

(* Recompute every live node's expected refcount from first principles:
   its indegree over the entries reachable from the registered roots
   and extracted-subtree handles, plus one per appearance in either
   registry. Any mismatch means an incref/decref bug; any live node
   never reached means a leak. Per-[Phys_mem.t] on purpose — a global
   registry would race across simulation domains. *)
let audit mem =
  let store = Phys_mem.pt_store mem in
  let expected = Hashtbl.create 256 in
  let bump n =
    Hashtbl.replace expected n
      (1 + Option.value ~default:0 (Hashtbl.find_opt expected n))
  in
  let seen = Hashtbl.create 256 in
  let rec go node =
    if not (Hashtbl.mem seen node) then begin
      Hashtbl.replace seen node ();
      for i = 0 to Pt_store.slots - 1 do
        let e = Pt_store.get store node i in
        match e land 3 with
        | 1 | 3 ->
          bump (e lsr 2);
          go (e lsr 2)
        | _ -> ()
      done
    end
  in
  List.iter
    (fun r ->
      bump r;
      go r)
    (Phys_mem.pt_roots mem);
  List.iter
    (fun h ->
      bump h;
      go h)
    (Phys_mem.pt_handles mem);
  let shared = ref 0 and imbalanced = ref [] in
  Hashtbl.iter
    (fun n exp ->
      let r = Pt_store.refs store n in
      if r > 1 then incr shared;
      if r <> exp then imbalanced := (n, r, exp) :: !imbalanced)
    expected;
  {
    a_nodes = Pt_store.live_count store;
    a_shared = !shared;
    a_leaked = Pt_store.live_count store - Hashtbl.length seen;
    a_imbalanced = List.sort compare !imbalanced;
  }
