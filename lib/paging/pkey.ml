(* Memory protection keys (MPK/POE-style).

   A 4-bit key tags each leaf PTE alongside its protection bits; a
   per-core permission register (PKRU) holds two bits per key —
   access-disable and write-disable — consulted at translation time
   *after* the paging permission check. Changing the register changes
   effective rights for every page carrying the key without touching
   CR3 or the TLB, which is what makes a compartment crossing cheaper
   than either Table 2 switch mechanism.

   Key 0 is the default tag of every mapping and is never restrictable:
   the all-permitted register is the integer 0, so a simulation that
   never allocates a key computes with the same values it did before
   keys existed (the empty-key identity the bench audits). *)

type reg = int

let count = 16
let max_key = count - 1
let default = 0

type perm = Rw | Ro | Denied

let check_key ~who key =
  if key < 0 || key > max_key then
    invalid_arg (Printf.sprintf "Pkey.%s: key %d out of range [0..%d]" who key max_key)

(* Bit 2k: access-disable (AD). Bit 2k+1: write-disable (WD). *)
let allows reg ~key ~write =
  let bits = (reg lsr (2 * key)) land 3 in
  bits land 1 = 0 && not (write && bits land 2 <> 0)

let set reg ~key perm =
  check_key ~who:"set" key;
  if key = 0 && perm <> Rw then invalid_arg "Pkey.set: key 0 is not restrictable";
  let cleared = reg land lnot (3 lsl (2 * key)) in
  match perm with
  | Rw -> cleared
  | Ro -> cleared lor (2 lsl (2 * key))
  | Denied -> cleared lor (1 lsl (2 * key))

let get reg ~key =
  check_key ~who:"get" key;
  let bits = (reg lsr (2 * key)) land 3 in
  if bits land 1 <> 0 then Denied else if bits land 2 <> 0 then Ro else Rw

let perm_name = function Rw -> "rw" | Ro -> "ro" | Denied -> "none"

let to_string reg =
  let b = Buffer.create 32 in
  for key = 0 to max_key do
    match get reg ~key with
    | Rw -> ()
    | p ->
      if Buffer.length b > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "%d:%s" key (perm_name p))
  done;
  if Buffer.length b = 0 then "all-rw" else Buffer.contents b
