(* Flat arena backing page-table nodes: all 512-slot tables built over
   one physical memory live in per-chunk int arrays (plus small
   per-node header arrays), and inter-node links are indices, not
   pointers. A radix descent therefore chases no OCaml blocks — each
   step is one int read from one flat chunk — and building or tearing
   down a table allocates nothing on the OCaml heap. The store is owned
   by the Phys_mem the tables translate (interior subtrees are shared
   *across* tables over one memory, so indices must be meaningful to
   all of them). Entry encoding is the owner's business (Sj_paging);
   the store only hands out zeroed 512-int nodes and recycles them.

   Entries live in fixed-size chunks of [chunk_nodes] nodes each:
   growth appends one zeroed chunk instead of reallocating (and
   re-zeroing, and copying) one ever-larger array, so arena growth
   costs exactly the memory it adds. Node [i]'s entries are
   [chunks.(i lsr chunk_shift)], offset [(i land chunk_mask) * 512]. *)

let slots = 512
let chunk_shift = 6
let chunk_nodes = 1 lsl chunk_shift (* 64 nodes = 256 KiB per chunk *)
let chunk_mask = chunk_nodes - 1

type t = {
  mutable chunks : int array array; (* slot [c] is one chunk or [||] *)
  mutable level : int array;
  mutable frame : int array;
  mutable live : int array;
  mutable refs : int array;
  mutable cap : int; (* nodes the allocated chunks can hold *)
  mutable next : int; (* bump cursor: indices >= next never used yet *)
  mutable free : int list; (* recycled node indices *)
  mutable free_count : int; (* monotone; bumped on every [free] *)
  mutable alloc_count : int; (* monotone; bumped on every [alloc] *)
}

let initial_chunks = 8

let create () =
  let cap = chunk_nodes in
  let chunks = Array.make initial_chunks [||] in
  chunks.(0) <- Array.make (chunk_nodes * slots) 0;
  {
    chunks;
    level = Array.make cap 0;
    frame = Array.make cap 0;
    live = Array.make cap 0;
    refs = Array.make cap 0;
    cap;
    next = 0;
    free = [];
    free_count = 0;
    alloc_count = 0;
  }

let grow t =
  let c = t.cap lsr chunk_shift in
  if c >= Array.length t.chunks then begin
    (* Only the (tiny) chunk-pointer array is ever copied. *)
    let chunks' = Array.make (2 * Array.length t.chunks) [||] in
    Array.blit t.chunks 0 chunks' 0 (Array.length t.chunks);
    t.chunks <- chunks'
  end;
  t.chunks.(c) <- Array.make (chunk_nodes * slots) 0;
  let cap' = t.cap + chunk_nodes in
  let grow_arr a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 (Array.length a);
    a'
  in
  t.level <- grow_arr t.level 0;
  t.frame <- grow_arr t.frame 0;
  t.live <- grow_arr t.live 0;
  t.refs <- grow_arr t.refs 0;
  t.cap <- cap'

let alloc t ~level ~frame =
  let idx =
    match t.free with
    | i :: rest ->
      t.free <- rest;
      (* Recycled nodes carry stale entries; hand out zeroed tables. *)
      Array.fill t.chunks.(i lsr chunk_shift) ((i land chunk_mask) * slots) slots 0;
      i
    | [] ->
      if t.next >= t.cap then grow t;
      let i = t.next in
      t.next <- i + 1;
      i
  in
  t.level.(idx) <- level;
  t.frame.(idx) <- frame;
  t.live.(idx) <- 0;
  t.refs.(idx) <- 1;
  t.alloc_count <- t.alloc_count + 1;
  idx

let free t idx =
  t.free <- idx :: t.free;
  t.free_count <- t.free_count + 1

let free_count t = t.free_count
let alloc_count t = t.alloc_count
let live_count t = t.alloc_count - t.free_count
let level t idx = Array.unsafe_get t.level idx
let frame t idx = Array.unsafe_get t.frame idx
let live t idx = Array.unsafe_get t.live idx
let set_live t idx v = Array.unsafe_set t.live idx v
let refs t idx = Array.unsafe_get t.refs idx
let set_refs t idx v = Array.unsafe_set t.refs idx v

let get t idx slot =
  Array.unsafe_get
    (Array.unsafe_get t.chunks (idx lsr chunk_shift))
    (((idx land chunk_mask) * slots) + slot)

let set t idx slot v =
  Array.unsafe_set
    (Array.unsafe_get t.chunks (idx lsr chunk_shift))
    (((idx land chunk_mask) * slots) + slot)
    v
