open Sj_util

type frame = int

exception Out_of_memory

type node_kind = Performance | Capacity

type node = { first : frame; nframes : int; kind : node_kind }

type t = {
  size : int;
  frames_total : int;
  numa_nodes : int; (* performance-tier node count *)
  nodes : node array;
  (* Per-node allocation state: a bump pointer plus a free list of
     previously released frames. *)
  bump : int array;
  free_lists : frame list array;
  (* One byte per frame ('\000' free / '\001' allocated): allocation
     membership is checked on every simulated access, and setup maps
     tens of thousands of frames, so this is a flat table rather than a
     hashtable. *)
  allocated : Bytes.t;
  (* Node indices in default allocation preference order (performance
     tier first), precomputed so [alloc_frame] builds no lists. *)
  default_order : int array;
  contents : (frame, bytes) Hashtbl.t; (* lazily materialized *)
  mutable n_allocated : int;
  (* Last-frame memo for the machine's fast path: when [memo_frame]
     is non-negative it is an allocated frame whose backing bytes are
     [memo_bytes], so repeated accesses inside one frame skip both
     hashtable probes. Invalidated on free and zero. *)
  mutable memo_frame : frame;
  mutable memo_bytes : bytes;
  (* Structural-change epoch for the page tables built over this
     memory; see {!bump_pt_epoch}. *)
  mutable pt_epoch : int;
  (* Node arena for the page tables built over this memory. Lives here
     (like the epoch) because grafting shares interior nodes across
     tables, so their indices must resolve in one common store. *)
  pt_store : Pt_store.t;
  (* Roots and extracted-subtree handles of the live page tables over
     this memory, as raw node indices (registered by
     [Sj_paging.Page_table]). Per-memory — not global — so concurrent
     simulations in different domains never share the lists. The
     refcount audit walks them to compute each node's expected
     indegree. *)
  mutable pt_roots : int list;
  mutable pt_handles : int list;
}

let create_tiered ~size ~numa_nodes ~capacity_size =
  if size <= 0 || size mod Addr.page_size <> 0 then
    invalid_arg "Phys_mem.create: size must be a positive multiple of 4KiB";
  if capacity_size < 0 || capacity_size mod Addr.page_size <> 0 then
    invalid_arg "Phys_mem.create: capacity size must be a multiple of 4KiB";
  if numa_nodes <= 0 then invalid_arg "Phys_mem.create: numa_nodes";
  let perf_frames = size / Addr.page_size in
  if perf_frames mod numa_nodes <> 0 then
    invalid_arg "Phys_mem.create: size not divisible across NUMA nodes";
  let per_node = perf_frames / numa_nodes in
  let capacity_frames = capacity_size / Addr.page_size in
  let perf =
    Array.init numa_nodes (fun i ->
        { first = i * per_node; nframes = per_node; kind = Performance })
  in
  let nodes =
    if capacity_frames > 0 then
      Array.append perf [| { first = perf_frames; nframes = capacity_frames; kind = Capacity } |]
    else perf
  in
  let n = Array.length nodes in
  {
    size = size + capacity_size;
    frames_total = perf_frames + capacity_frames;
    numa_nodes;
    nodes;
    bump = Array.make n 0;
    free_lists = Array.make n [];
    allocated = Bytes.make (perf_frames + capacity_frames) '\000';
    default_order =
      Array.append
        (Array.init numa_nodes Fun.id)
        (if capacity_frames > 0 then [| numa_nodes |] else [||]);
    contents = Hashtbl.create 4096;
    n_allocated = 0;
    memo_frame = -1;
    memo_bytes = Bytes.empty;
    pt_epoch = 0;
    pt_store = Pt_store.create ();
    pt_roots = [];
    pt_handles = [];
  }

let create ~size ~numa_nodes = create_tiered ~size ~numa_nodes ~capacity_size:0
let size t = t.size
let frames_total t = t.frames_total
let frames_allocated t = t.n_allocated
let base_of_frame f = f * Addr.page_size
let frame_of_addr pa = pa / Addr.page_size
let node_count t = Array.length t.nodes
let node_kind t n = t.nodes.(n).kind

let capacity_node t =
  let n = Array.length t.nodes in
  if n > 0 && t.nodes.(n - 1).kind = Capacity then Some (n - 1) else None

let node_of_frame t f =
  let rec go i =
    if i >= Array.length t.nodes then invalid_arg "Phys_mem.node_of_frame: out of range"
    else
      let nd = t.nodes.(i) in
      if f >= nd.first && f < nd.first + nd.nframes then i else go (i + 1)
  in
  go 0

let is_allocated t f =
  f >= 0 && f < t.frames_total && Bytes.unsafe_get t.allocated f <> '\000'
let pt_epoch t = t.pt_epoch
let bump_pt_epoch t = t.pt_epoch <- t.pt_epoch + 1
let pt_store t = t.pt_store

let remove_first x l =
  let rec go acc = function
    | [] -> List.rev acc
    | y :: rest when y = x -> List.rev_append acc rest
    | y :: rest -> go (y :: acc) rest
  in
  go [] l

let pt_roots t = t.pt_roots
let pt_handles t = t.pt_handles
let pt_register_root t n = t.pt_roots <- n :: t.pt_roots
let pt_unregister_root t n = t.pt_roots <- remove_first n t.pt_roots
let pt_register_handle t n = t.pt_handles <- n :: t.pt_handles
let pt_unregister_handle t n = t.pt_handles <- remove_first n t.pt_handles

let alloc_on_node t node =
  match t.free_lists.(node) with
  | f :: rest ->
    t.free_lists.(node) <- rest;
    Some f
  | [] ->
    let nd = t.nodes.(node) in
    if t.bump.(node) < nd.nframes then begin
      let f = nd.first + t.bump.(node) in
      t.bump.(node) <- t.bump.(node) + 1;
      Some f
    end
    else None

(* Node preference: the requested node first, then the default order
   (performance tier before capacity) skipping the duplicate. *)
let alloc_frame ?node t =
  let f =
    match node with
    | Some n ->
      if n < 0 || n >= Array.length t.nodes then invalid_arg "Phys_mem.alloc_frame: bad node";
      (match alloc_on_node t n with
      | Some f -> f
      | None ->
        let rec go i =
          if i >= Array.length t.nodes then raise Out_of_memory
          else if i = n then go (i + 1)
          else match alloc_on_node t i with Some f -> f | None -> go (i + 1)
        in
        go 0)
    | None ->
      (* Unpinned allocations stay in the performance tier; the capacity
         tier is only used when explicitly requested or when DRAM is
         exhausted. *)
      let order = t.default_order in
      let rec go i =
        if i >= Array.length order then raise Out_of_memory
        else
          match alloc_on_node t order.(i) with
          | Some f -> f
          | None -> go (i + 1)
      in
      go 0
  in
  Bytes.unsafe_set t.allocated f '\001';
  t.n_allocated <- t.n_allocated + 1;
  f

let alloc_frames ?node t ~n = Array.init n (fun _ -> alloc_frame ?node t)

let alloc_frames_contiguous ?node ?(align = 1) t ~n =
  if n <= 0 then invalid_arg "Phys_mem.alloc_frames_contiguous: n";
  if align < 1 then invalid_arg "Phys_mem.alloc_frames_contiguous: align";
  let all = List.init (Array.length t.nodes) Fun.id in
  let try_nodes =
    match node with
    | Some nd ->
      if nd < 0 || nd >= Array.length t.nodes then invalid_arg "Phys_mem: bad node";
      nd :: List.filter (fun m -> m <> nd) all
    | None ->
      List.filter (fun m -> t.nodes.(m).kind = Performance) all
      @ List.filter (fun m -> t.nodes.(m).kind = Capacity) all
  in
  let rec go = function
    | [] -> raise Out_of_memory
    | nd :: rest ->
      let node_base = t.nodes.(nd).first in
      (* Round the start of the run up so the *global* frame number is
         aligned (physical address alignment). *)
      let start =
        ((node_base + t.bump.(nd) + align - 1) / align * align) - node_base
      in
      if start + n <= t.nodes.(nd).nframes then begin
        (* Frames skipped by alignment stay usable via the free list. *)
        for f = t.bump.(nd) to start - 1 do
          t.free_lists.(nd) <- (node_base + f) :: t.free_lists.(nd)
        done;
        let first = node_base + start in
        t.bump.(nd) <- start + n;
        Array.init n (fun i ->
            let f = first + i in
            Bytes.unsafe_set t.allocated f '\001';
            f)
      end
      else go rest
  in
  let frames = go try_nodes in
  t.n_allocated <- t.n_allocated + n;
  frames

let free_frame t f =
  if not (is_allocated t f) then
    invalid_arg "Phys_mem.free_frame: frame not allocated";
  Bytes.unsafe_set t.allocated f '\000';
  Hashtbl.remove t.contents f;
  if t.memo_frame = f then begin
    t.memo_frame <- -1;
    t.memo_bytes <- Bytes.empty
  end;
  t.n_allocated <- t.n_allocated - 1;
  let node = node_of_frame t f in
  t.free_lists.(node) <- f :: t.free_lists.(node)

let check_allocated t f ctx =
  if not (is_allocated t f) then
    invalid_arg (Printf.sprintf "Phys_mem.%s: access to unallocated frame %d" ctx f)

let backing t f =
  match Hashtbl.find_opt t.contents f with
  | Some b -> b
  | None ->
    let b = Bytes.make Addr.page_size '\000' in
    Hashtbl.replace t.contents f b;
    b

let read8 t ~pa =
  let f = frame_of_addr pa in
  check_allocated t f "read8";
  match Hashtbl.find_opt t.contents f with
  | None -> 0
  | Some b -> Char.code (Bytes.get b (Addr.offset_in_page pa))

let write8 t ~pa v =
  let f = frame_of_addr pa in
  check_allocated t f "write8";
  Bytes.set (backing t f) (Addr.offset_in_page pa) (Char.chr (v land 0xff))

let read64 t ~pa =
  let off = Addr.offset_in_page pa in
  if off <= Addr.page_size - 8 then begin
    let f = frame_of_addr pa in
    check_allocated t f "read64";
    match Hashtbl.find_opt t.contents f with
    | None -> 0L
    | Some b -> Bytes.get_int64_le b off
  end
  else begin
    (* Straddles a frame boundary: byte at a time. *)
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (read8 t ~pa:(pa + i)))
    done;
    !v
  end

let write64 t ~pa v =
  let off = Addr.offset_in_page pa in
  if off <= Addr.page_size - 8 then begin
    let f = frame_of_addr pa in
    check_allocated t f "write64";
    Bytes.set_int64_le (backing t f) off v
  end
  else
    for i = 0 to 7 do
      write8 t ~pa:(pa + i) (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
    done

let read_bytes t ~pa ~len =
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = pa + !pos in
    let f = frame_of_addr a in
    check_allocated t f "read_bytes";
    let off = Addr.offset_in_page a in
    let chunk = min (len - !pos) (Addr.page_size - off) in
    (match Hashtbl.find_opt t.contents f with
    | None -> Bytes.fill out !pos chunk '\000'
    | Some b -> Bytes.blit b off out !pos chunk);
    pos := !pos + chunk
  done;
  out

let write_bytes t ~pa src =
  let len = Bytes.length src in
  let pos = ref 0 in
  while !pos < len do
    let a = pa + !pos in
    let f = frame_of_addr a in
    check_allocated t f "write_bytes";
    let off = Addr.offset_in_page a in
    let chunk = min (len - !pos) (Addr.page_size - off) in
    Bytes.blit src !pos (backing t f) off chunk;
    pos := !pos + chunk
  done

let read_into t ~pa ~dst ~off ~len =
  let pos = ref 0 in
  while !pos < len do
    let a = pa + !pos in
    let f = frame_of_addr a in
    check_allocated t f "read_into";
    let foff = Addr.offset_in_page a in
    let chunk = min (len - !pos) (Addr.page_size - foff) in
    (match Hashtbl.find_opt t.contents f with
    | None -> Bytes.fill dst (off + !pos) chunk '\000'
    | Some b -> Bytes.blit b foff dst (off + !pos) chunk);
    pos := !pos + chunk
  done

let write_from t ~pa ~src ~off ~len =
  let pos = ref 0 in
  while !pos < len do
    let a = pa + !pos in
    let f = frame_of_addr a in
    check_allocated t f "write_from";
    let foff = Addr.offset_in_page a in
    let chunk = min (len - !pos) (Addr.page_size - foff) in
    Bytes.blit src (off + !pos) (backing t f) foff chunk;
    pos := !pos + chunk
  done

let fill t ~pa ~len x =
  let pos = ref 0 in
  while !pos < len do
    let a = pa + !pos in
    let f = frame_of_addr a in
    check_allocated t f "fill";
    let foff = Addr.offset_in_page a in
    let chunk = min (len - !pos) (Addr.page_size - foff) in
    (* Filling a whole never-touched frame with zero stays lazy. *)
    if x = '\000' && foff = 0 && chunk = Addr.page_size && not (Hashtbl.mem t.contents f)
    then ()
    else Bytes.fill (backing t f) foff chunk x;
    pos := !pos + chunk
  done

let zero_frame t f =
  check_allocated t f "zero_frame";
  Hashtbl.remove t.contents f;
  if t.memo_frame = f then begin
    t.memo_frame <- -1;
    t.memo_bytes <- Bytes.empty
  end

(* {2 Fast-path accessors}

   Observably identical to their plain counterparts (including read
   laziness: a never-written frame is not materialized by reads) but
   allocation-free on the hot path via the last-frame memo. *)

let read8_fast t ~pa =
  let f = frame_of_addr pa in
  if t.memo_frame = f then Char.code (Bytes.get t.memo_bytes (Addr.offset_in_page pa))
  else begin
    check_allocated t f "read8";
    match Hashtbl.find_opt t.contents f with
    | None -> 0
    | Some b ->
      t.memo_frame <- f;
      t.memo_bytes <- b;
      Char.code (Bytes.get b (Addr.offset_in_page pa))
  end

let write8_fast t ~pa v =
  let f = frame_of_addr pa in
  let b =
    if t.memo_frame = f then t.memo_bytes
    else begin
      check_allocated t f "write8";
      let b = backing t f in
      t.memo_frame <- f;
      t.memo_bytes <- b;
      b
    end
  in
  Bytes.set b (Addr.offset_in_page pa) (Char.chr (v land 0xff))

let read64_fast t ~pa =
  let off = Addr.offset_in_page pa in
  if off <= Addr.page_size - 8 then begin
    let f = frame_of_addr pa in
    if t.memo_frame = f then Bytes.get_int64_le t.memo_bytes off
    else begin
      check_allocated t f "read64";
      match Hashtbl.find_opt t.contents f with
      | None -> 0L
      | Some b ->
        t.memo_frame <- f;
        t.memo_bytes <- b;
        Bytes.get_int64_le b off
    end
  end
  else read64 t ~pa

let write64_fast t ~pa v =
  let off = Addr.offset_in_page pa in
  if off <= Addr.page_size - 8 then begin
    let f = frame_of_addr pa in
    let b =
      if t.memo_frame = f then t.memo_bytes
      else begin
        check_allocated t f "write64";
        let b = backing t f in
        t.memo_frame <- f;
        t.memo_bytes <- b;
        b
      end
    in
    Bytes.set_int64_le b off v
  end
  else write64 t ~pa v
