(** Flat index-based arena for 512-slot page-table nodes.

    One store serves every page table built over one {!Phys_mem.t}
    (interior subtrees are shared across tables, so node indices must
    be meaningful to all of them — reach it via [Phys_mem.pt_store]).
    Nodes are identified by dense int indices; entries are opaque ints
    whose encoding belongs to the paging layer. [alloc] returns a
    zeroed node with [refs = 1]; [free] recycles the index. Entries
    live in fixed-size chunks, so growth never moves an existing
    node's storage; indices are stable for the store's lifetime. *)

type t

val slots : int
(** Entries per node (512). *)

val create : unit -> t

val alloc : t -> level:int -> frame:int -> int
(** A zeroed node at [level] backed by physical frame number [frame],
    with [live = 0] and [refs = 1]. *)

val free : t -> int -> unit
(** Recycle a node index. The caller owns frame release and any
    epoch/generation bookkeeping that makes stale indices detectable. *)

val free_count : t -> int
(** Monotone count of [free] calls over this store's lifetime. A cached
    node index recorded together with the then-current count is
    guaranteed un-recycled while the count is unchanged. *)

val alloc_count : t -> int
(** Monotone count of [alloc] calls over this store's lifetime. *)

val live_count : t -> int
(** Nodes currently allocated and not yet freed
    ([alloc_count - free_count]). The paging layer's leak audit checks
    this against the nodes reachable from registered roots. *)

val level : t -> int -> int
val frame : t -> int -> int
val live : t -> int -> int
val set_live : t -> int -> int -> unit
val refs : t -> int -> int
val set_refs : t -> int -> int -> unit

val get : t -> int -> int -> int
(** [get t node slot] reads one entry; slots are [0 .. slots-1].
    Unchecked. *)

val set : t -> int -> int -> int -> unit
