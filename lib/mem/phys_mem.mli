(** Simulated physical memory.

    Physical memory is a flat array of 4 KiB frames addressed by physical
    address. Frame *contents* are materialized lazily (a frame that has
    never been written reads as zeroes and costs no host memory), which
    lets experiments declare the paper's 92-512 GiB platforms (Table 1)
    while the host only pays for pages actually touched.

    Frames are allocated and freed in page units through a free-list
    allocator; double-free and use-after-free are detected. *)

type t

type frame = private int
(** A frame number; [frame * 4096] is its physical base address. *)

exception Out_of_memory
(** Raised by {!alloc_frame} when physical memory is exhausted. *)

type node_kind = Performance | Capacity
(** Memory tiers (paper sec 7): [Performance] is socket-local DRAM;
    [Capacity] is a slower, larger tier (NVM-class). *)

val create : size:int -> numa_nodes:int -> t
(** [create ~size ~numa_nodes] builds a memory of [size] bytes (multiple
    of 4 KiB) split evenly across [numa_nodes] performance-tier latency
    domains. *)

val create_tiered : size:int -> numa_nodes:int -> capacity_size:int -> t
(** Like {!create}, plus one additional [Capacity]-tier node of
    [capacity_size] bytes (node index [numa_nodes]). *)

val node_count : t -> int
val node_kind : t -> int -> node_kind
val capacity_node : t -> int option
(** Index of the capacity-tier node, if the machine has one. *)

val size : t -> int
val frames_total : t -> int
val frames_allocated : t -> int

val alloc_frame : ?node:int -> t -> frame
(** Allocate one frame, preferring NUMA node [node] (default: any).
    Contents read as zero. *)

val alloc_frames : ?node:int -> t -> n:int -> frame array
(** Allocate [n] frames (not necessarily contiguous). *)

val alloc_frames_contiguous : ?node:int -> ?align:int -> t -> n:int -> frame array
(** Allocate [n] *physically contiguous* frames (for huge-page
    mappings), with the first frame aligned to [align] frames
    (default 1; 512 for 2 MiB pages). Served from the unfragmented tail
    of a node — skipped frames go to the free list; raises
    {!Out_of_memory} when no node has a large enough run left. *)

val free_frame : t -> frame -> unit
(** Return a frame to the allocator. Raises [Invalid_argument] if the
    frame is not currently allocated. *)

val base_of_frame : frame -> int
(** Physical byte address of the frame's first byte. *)

val frame_of_addr : int -> frame
(** Frame containing physical address (no allocation check). *)

val node_of_frame : t -> frame -> int
(** NUMA node the frame resides on. *)

val is_allocated : t -> frame -> bool

val pt_epoch : t -> int
(** Structural-change epoch of the page tables built over this memory.
    Interior page-table subtrees may be shared between roots (grafting),
    but only among tables over the *same* physical memory — so a
    per-memory epoch is exactly wide enough to invalidate software
    walk caches soundly, while keeping independent simulations (each
    with its own [Phys_mem.t]) from perturbing each other. Maintained by
    [Sj_paging.Page_table]. *)

val bump_pt_epoch : t -> unit
(** Record a structural page-table change (map/unmap/graft/...). *)

val pt_store : t -> Pt_store.t
(** Node arena for the page tables built over this memory (shared
    across tables for the same reason as {!pt_epoch}; used by
    [Sj_paging.Page_table]). *)

(** {2 Page-table root/handle registry}

    Live page-table roots and extracted-subtree handles over this
    memory, as raw node indices. Maintained by [Sj_paging.Page_table]
    ([create]/[destroy], [extract_subtree]/[release_subtree]) and read
    by its refcount audit: a node's expected refcount is its indegree
    from reachable entries plus the number of times it appears in these
    lists. Per-memory, so independent simulations never interfere. *)

val pt_roots : t -> int list
val pt_handles : t -> int list
val pt_register_root : t -> int -> unit
val pt_unregister_root : t -> int -> unit
(** Removes one occurrence; no-op if absent. *)

val pt_register_handle : t -> int -> unit
val pt_unregister_handle : t -> int -> unit
(** Removes one occurrence; no-op if absent. *)

(** {2 Contents access}

    All accessors take raw physical addresses and may cross frame
    boundaries. Reading unallocated memory raises [Invalid_argument] --
    the machine layer guarantees translations only point at allocated
    frames. *)

val read8 : t -> pa:int -> int
val write8 : t -> pa:int -> int -> unit
val read64 : t -> pa:int -> int64
(** Little-endian, may straddle frames. *)

val write64 : t -> pa:int -> int64 -> unit
val read_bytes : t -> pa:int -> len:int -> bytes
val write_bytes : t -> pa:int -> bytes -> unit

val read_into : t -> pa:int -> dst:bytes -> off:int -> len:int -> unit
(** [read_bytes] into a caller-provided buffer at [off]; allocates
    nothing (bulk fast path). *)

val write_from : t -> pa:int -> src:bytes -> off:int -> len:int -> unit
(** [write_bytes] from a slice [off, off+len) of [src]; allocates
    nothing (bulk fast path). *)

val fill : t -> pa:int -> len:int -> char -> unit
(** Set [len] bytes starting at [pa] to one value (memset fast path);
    zero-filling whole untouched frames stays lazy. *)

val zero_frame : t -> frame -> unit
(** Reset a frame's contents to zero (page-zeroing on allocation paths). *)

(** {2 Fast-path accessors}

    Observably identical to the plain accessors -- same values, same
    errors, same read laziness -- but allocation-free via a last-frame
    memo. Used by the machine's host-side fast path. *)

val read8_fast : t -> pa:int -> int
val write8_fast : t -> pa:int -> int -> unit
val read64_fast : t -> pa:int -> int64
val write64_fast : t -> pa:int -> int64 -> unit
