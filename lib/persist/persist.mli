(** VAS persistence across reboots (paper sec 7).

    With segment memory on NVM, address spaces would survive power
    cycles by construction; on our simulated DRAM machine we provide the
    equivalent systems feature explicitly: {!save} serializes every
    registered segment (metadata, allocator state, and compressed
    contents) and every VAS (segment list, protections, tags) into a
    self-contained image; {!restore} rebuilds them — at the same virtual
    addresses, so persisted pointers remain valid — inside a freshly
    booted system.

    Not persisted: processes and their attachments (they are, by
    design, the transient part of the model), segment locks (released
    by a reboot), and translation caches (rebuilt on demand).
    Copy-on-write sharing is materialized: each snapshot segment is
    saved with its full logical contents and restored as an independent
    segment. *)

val save : Sj_core.Api.system -> bytes
(** Serialize all registered segments and VASes as a two-phase image
    (SJIMG2): header, per-section CRC32 frames, commit record last.
    Deterministic. When the simulation has a fault injector attached, a
    planned [Torn_write] truncates the returned image as if the writer
    died mid-write. *)

val restore : Sj_core.Api.system -> bytes -> unit
(** Rebuild the image's segments and VASes inside [system] (normally a
    freshly booted one). The frame is verified before any state is
    touched: a bad magic, truncated section, CRC mismatch, or missing
    commit record raises the typed [Invalid] fault. Raises
    [Errors.Name_exists] if names collide with already-registered
    objects. *)

val committed : bytes -> bool
(** Whether the image verifies end to end (magic, section CRCs, commit
    record) — a torn or bit-flipped image is not committed. *)

(** Append-only journal of committed images. [save] produces one image;
    journaling its history makes recovery robust to torn writes:
    {!Journal.recover} returns the last fully committed image, skipping
    torn or corrupt entries instead of faulting mid-restore. *)
module Journal : sig
  val empty : bytes

  val append : bytes -> bytes -> bytes
  (** [append journal image] is the journal with one entry added
      (length-framed, CRC'd, commit-marked). *)

  val entries : bytes -> int
  (** Structurally complete entries (a torn tail is not counted). *)

  val recover : bytes -> bytes option
  (** The newest entry that is CRC-clean and whose image carries a valid
      commit record; [None] if no committed image survives. *)
end

val image_info : bytes -> string
(** One-line human summary of an image (for [sjctl]). *)

val describe : bytes -> string
(** Multi-line listing of an image: every segment (base, size, prot,
    page size, heap usage) and every VAS (tag, attached segments). *)
