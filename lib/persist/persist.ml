open Sj_util
module Machine = Sj_machine.Machine
module Pm = Sj_mem.Phys_mem
module Prot = Sj_paging.Prot
module Acl = Sj_kernel.Acl
module Vm_object = Sj_kernel.Vm_object
module Mspace = Sj_alloc.Mspace
module Varint = Sj_compress.Varint
module Block_lz = Sj_compress.Block_lz
module Api = Sj_core.Api
module Registry = Sj_core.Registry
module Segment = Sj_core.Segment
module Vas = Sj_core.Vas
module Errors = Sj_core.Errors
module Error = Sj_abi.Error
module Sys = Sj_abi.Sys
module Crc32 = Sj_compress.Crc32
module Injector = Sj_fault.Injector

(* Two-phase image format (SJIMG2): a header, CRC-framed sections, and
   a commit record written last. A torn write — the writer dying partway
   through — leaves either a truncated section or a missing/mismatched
   commit record, both detected before any state is rebuilt; a silent
   bit-flip trips a section CRC. SJIMG1 (no checksums) is not read. *)
let magic = "SJIMG2"
let commit_marker = "SJOK"
let sect_segs = 1
let sect_vases = 2

(* ---------- primitive writers/readers ---------- *)

let w_string buf s =
  Varint.write buf (String.length s);
  Buffer.add_string buf s

let r_string b pos =
  let len, pos = Varint.read b ~pos in
  if pos + len > Bytes.length b then Error.fail Invalid ~op:"persist_restore" "truncated string";
  (Bytes.sub_string b pos len, pos + len)

let w_bytes buf s =
  Varint.write buf (Bytes.length s);
  Buffer.add_bytes buf s

let r_bytes b pos =
  let len, pos = Varint.read b ~pos in
  if pos + len > Bytes.length b then Error.fail Invalid ~op:"persist_restore" "truncated bytes";
  (Bytes.sub b pos len, pos + len)

let prot_bits (p : Prot.t) =
  (if p.read then 4 else 0) lor (if p.write then 2 else 0) lor if p.exec then 1 else 0

let prot_of_bits = Prot.of_mode_bits

let w_acl buf acl =
  Varint.write buf (Acl.owner acl);
  Varint.write buf (Acl.mode acl)

let r_acl b pos =
  let owner, pos = Varint.read b ~pos in
  let mode, pos = Varint.read b ~pos in
  (Acl.create ~owner ~group:owner ~mode, pos)

(* ---------- segment contents ---------- *)

let read_contents machine seg =
  let mem = Machine.mem machine in
  let obj = Segment.vm_object seg in
  let out = Buffer.create (Segment.size seg) in
  for p = 0 to Segment.pages seg - 1 do
    Buffer.add_bytes out
      (Pm.read_bytes mem
         ~pa:(Pm.base_of_frame (Vm_object.frame_at obj ~page:p))
         ~len:Addr.page_size)
  done;
  Buffer.to_bytes out

let write_contents machine seg data =
  let mem = Machine.mem machine in
  let obj = Segment.vm_object seg in
  for p = 0 to Segment.pages seg - 1 do
    Pm.write_bytes mem
      ~pa:(Pm.base_of_frame (Vm_object.frame_at obj ~page:p))
      (Bytes.sub data (p * Addr.page_size) Addr.page_size)
  done

(* ---------- save ---------- *)

let segs_payload sys =
  let reg = Api.registry sys in
  let machine = Api.machine sys in
  let buf = Buffer.create 4096 in
  let segs = List.sort (fun a b -> compare (Segment.name a) (Segment.name b)) (Registry.list_segs reg) in
  Varint.write buf (List.length segs);
  List.iter
    (fun seg ->
      w_string buf (Segment.name seg);
      Varint.write buf (Segment.base seg);
      Varint.write buf (Segment.size seg);
      Varint.write buf (prot_bits (Segment.prot_max seg));
      Varint.write buf (if Segment.lockable seg then 1 else 0);
      Varint.write buf
        (match Segment.page_size seg with Sj_paging.Page_table.P4K -> 0 | P2M -> 1);
      w_acl buf (Segment.acl seg);
      (* Allocator state, if the segment has served malloc. *)
      if Registry.has_heap reg seg then begin
        let chunks = Mspace.snapshot (Registry.heap reg seg) in
        Varint.write buf (List.length chunks);
        List.iter
          (fun (c : Mspace.chunk_state) ->
            Varint.write buf c.chunk_base;
            Varint.write buf c.chunk_size;
            Varint.write buf (if c.chunk_free then 1 else 0))
          chunks
      end
      else Varint.write buf 0;
      (* Contents, compressed. *)
      w_bytes buf (Block_lz.compress (read_contents machine seg)))
    segs;
  Buffer.to_bytes buf

let vases_payload sys =
  let reg = Api.registry sys in
  let buf = Buffer.create 1024 in
  let vases = List.sort (fun a b -> compare (Vas.name a) (Vas.name b)) (Registry.list_vases reg) in
  Varint.write buf (List.length vases);
  List.iter
    (fun vas ->
      w_string buf (Vas.name vas);
      w_acl buf (Vas.acl vas);
      Varint.write buf (match Vas.tag vas with Some t -> t | None -> 0);
      let segs = Vas.segments vas in
      Varint.write buf (List.length segs);
      List.iter
        (fun (seg, prot) ->
          w_string buf (Segment.name seg);
          Varint.write buf (prot_bits prot))
        segs)
    vases;
  Buffer.to_bytes buf

let write_section buf ~kind payload =
  Varint.write buf kind;
  Varint.write buf (Bytes.length payload);
  Buffer.add_bytes buf payload;
  Varint.write buf (Crc32.bytes payload)

(* Phase one writes the sections; phase two appends the commit record (a
   marker plus a CRC over everything before it). An injected torn write
   truncates the finished image, exactly as if the writer died mid-way. *)
let save sys =
  Sys.count (Api.syscalls sys) Persist_save;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Varint.write buf 2;
  write_section buf ~kind:sect_segs (segs_payload sys);
  write_section buf ~kind:sect_vases (vases_payload sys);
  let body = Buffer.to_bytes buf in
  let tail = Buffer.create 16 in
  Buffer.add_string tail commit_marker;
  Varint.write tail (Crc32.bytes body);
  let img = Bytes.cat body (Buffer.to_bytes tail) in
  match Injector.active (Machine.sim_ctx (Api.machine sys)) with
  | Some inj -> Injector.tear_save inj img
  | None -> img

(* ---------- image verification ---------- *)

let invalid detail = Error.fail Invalid ~op:"persist_restore" detail

(* Parse and verify the two-phase frame: magic, every section's CRC,
   and the commit record written last. Returns [(kind, payload)] in
   file order. Any truncation (torn write) or checksum mismatch (bit
   flip) raises the typed [Invalid] fault before a byte of simulation
   state is touched. *)
let sections image =
  let mlen = String.length magic in
  if Bytes.length image < mlen || Bytes.sub_string image 0 mlen <> magic then
    invalid "bad image magic";
  try
    let pos = ref mlen in
    let next_varint () =
      let v, p = Varint.read image ~pos:!pos in
      pos := p;
      v
    in
    let n = next_varint () in
    let sects =
      List.init n (fun _ ->
          let kind = next_varint () in
          let len = next_varint () in
          if !pos + len > Bytes.length image then
            invalid "torn image: truncated section";
          let payload = Bytes.sub image !pos len in
          pos := !pos + len;
          let crc = next_varint () in
          if crc <> Crc32.bytes payload then invalid "section CRC mismatch";
          (kind, payload))
    in
    let body_len = !pos in
    let clen = String.length commit_marker in
    if
      body_len + clen > Bytes.length image
      || Bytes.sub_string image body_len clen <> commit_marker
    then invalid "torn image: missing commit record";
    pos := body_len + clen;
    let crc = next_varint () in
    if crc <> Crc32.update 0 image ~pos:0 ~len:body_len then
      invalid "commit record CRC mismatch";
    sects
  with Invalid_argument _ -> invalid "torn image: truncated varint"

let committed image =
  match sections image with
  | _ -> true
  | exception Error.Fault _ -> false

let find_section sects kind =
  match List.assoc_opt kind sects with
  | Some payload -> payload
  | None -> invalid "missing image section"

(* Positioned readers over one section payload. *)
let reader b =
  let pos = ref 0 in
  let next_varint () =
    let v, p = Varint.read b ~pos:!pos in
    pos := p;
    v
  in
  let next_string () =
    let v, p = r_string b !pos in
    pos := p;
    v
  in
  (pos, next_varint, next_string)

(* ---------- restore ---------- *)

(* Faults from the registry/VAS layer (e.g. a name collision with the
   live system) surface as the namesake legacy exceptions; image-format
   faults stay typed. *)
let restore sys image =
  Sys.count (Api.syscalls sys) Persist_restore;
  let sects = sections image in
  let reg = Api.registry sys in
  let machine = Api.machine sys in
  let image = find_section sects sect_segs in
  let pos, next_varint, next_string = reader image in
  let n_segs = next_varint () in
  for _ = 1 to n_segs do
    let name = next_string () in
    let base = next_varint () in
    let size = next_varint () in
    let prot = prot_of_bits (next_varint ()) in
    let lockable = next_varint () = 1 in
    let huge = next_varint () = 1 in
    let acl, p = r_acl image !pos in
    pos := p;
    let n_chunks = next_varint () in
    let chunks =
      List.init n_chunks (fun _ ->
          let chunk_base = next_varint () in
          let chunk_size = next_varint () in
          let chunk_free = next_varint () = 1 in
          { Mspace.chunk_base; chunk_size; chunk_free })
    in
    let compressed, p = r_bytes image !pos in
    pos := p;
    let seg =
      Segment.create ~lockable ~huge ~acl ~charge_to:None ~machine ~name ~base ~size ~prot ()
    in
    Sj_kernel.Layout.reserve_global (Machine.sim_ctx machine) ~base ~size;
    write_contents machine seg (Block_lz.decompress compressed);
    (try Registry.register_seg reg seg with Error.Fault f -> Errors.raise_legacy f);
    if chunks <> [] then
      Registry.set_heap reg seg (Mspace.of_snapshot ~base ~size chunks)
  done;
  let image = find_section sects sect_vases in
  let pos, next_varint, next_string = reader image in
  let n_vases = next_varint () in
  for _ = 1 to n_vases do
    let name = next_string () in
    let acl, p = r_acl image !pos in
    pos := p;
    let tag = next_varint () in
    let vas = Vas.create (Machine.sim_ctx machine) ~acl ~name () in
    (if tag <> 0 then
       (* Never double-issue the saved tag: adopt it into the target
          registry (off the free list, visible to alloc_tag's live-VAS
          scan once registered below) — unless another live VAS already
          holds it, in which case this VAS gets a fresh one. *)
       match Registry.adopt_tag reg tag with
       | () -> Vas.assign_tag vas tag
       | exception Error.Fault { code = Name_exists; _ } ->
         Vas.assign_tag vas (Registry.alloc_tag reg));
    let n = next_varint () in
    for _ = 1 to n do
      let sname = next_string () in
      let prot = prot_of_bits (next_varint ()) in
      try Vas.attach_segment vas (Registry.find_seg reg ~name:sname) ~prot
      with Error.Fault f -> Errors.raise_legacy f
    done;
    (try Registry.register_vas reg vas with Error.Fault f -> Errors.raise_legacy f)
  done

let describe image =
  let sects = sections image in
  let buf = Buffer.create 512 in
  let image = find_section sects sect_segs in
  let pos, next_varint, next_string = reader image in
  let n_segs = next_varint () in
  Buffer.add_string buf (Printf.sprintf "segments (%d):\n" n_segs);
  for _ = 1 to n_segs do
    let name = next_string () in
    let base = next_varint () in
    let size = next_varint () in
    let prot = prot_of_bits (next_varint ()) in
    let lockable = next_varint () = 1 in
    let huge = next_varint () = 1 in
    let owner = next_varint () in
    let mode = next_varint () in
    let n_chunks = next_varint () in
    let used = ref 0 and live = ref 0 in
    for _ = 1 to n_chunks do
      let _cbase = next_varint () in
      let csize = next_varint () in
      let cfree = next_varint () = 1 in
      if not cfree then begin
        used := !used + csize;
        incr live
      end
    done;
    let compressed, p = r_bytes image !pos in
    pos := p;
    Buffer.add_string buf
      (Printf.sprintf "  %-20s %s  %-8s %s%s%s  uid=%d mode=%03o  heap: %d allocs, %s  (%s on disk)\n"
         name (Addr.to_string base) (Size.to_string size) (Prot.to_string prot)
         (if lockable then " lockable" else "")
         (if huge then " 2MiB-pages" else "")
         owner mode !live (Size.to_string !used)
         (Size.to_string (Bytes.length compressed)))
  done;
  let image = find_section sects sect_vases in
  let pos, next_varint, next_string = reader image in
  ignore pos;
  let n_vases = next_varint () in
  Buffer.add_string buf (Printf.sprintf "address spaces (%d):\n" n_vases);
  for _ = 1 to n_vases do
    let name = next_string () in
    let owner = next_varint () in
    let mode = next_varint () in
    let tag = next_varint () in
    let n = next_varint () in
    let segs =
      List.init n (fun _ ->
          let sname = next_string () in
          let prot = prot_of_bits (next_varint ()) in
          Printf.sprintf "%s(%s)" sname (Prot.to_string prot))
    in
    Buffer.add_string buf
      (Printf.sprintf "  %-20s uid=%d mode=%03o%s  [%s]\n" name owner mode
         (if tag <> 0 then Printf.sprintf " tag=%d" tag else "")
         (String.concat ", " segs))
  done;
  Buffer.contents buf

let image_info image =
  let sects = sections image in
  let total_len = Bytes.length image in
  let image = find_section sects sect_segs in
  let pos, next_varint, _next_string = reader image in
  let n_segs = next_varint () in
  let total = ref 0 in
  for _ = 1 to n_segs do
    let _name, p = r_string image !pos in
    pos := p;
    let _base = next_varint () in
    let size = next_varint () in
    total := !total + size;
    let _prot = next_varint () in
    let _lockable = next_varint () in
    let _huge = next_varint () in
    let _owner = next_varint () in
    let _mode = next_varint () in
    let n_chunks = next_varint () in
    for _ = 1 to 3 * n_chunks do
      ignore (next_varint ())
    done;
    let contents, p = r_bytes image !pos in
    ignore contents;
    pos := p
  done;
  let image = find_section sects sect_vases in
  let _pos, next_varint, _next_string = reader image in
  let n_vases = next_varint () in
  Printf.sprintf "%d segment(s), %s logical, %d VAS(es), image %s" n_segs
    (Size.to_string !total) n_vases
    (Size.to_string total_len)

(* ---------- journal ---------- *)

(* An append-only sequence of committed images:
   one entry = "SJNT" + varint length + image + varint CRC32(image) + "SJCM".
   Recovery scans forward and keeps the last entry that is structurally
   complete, CRC-clean, AND whose image carries a valid commit record —
   so a torn write (whether it tore the journal tail or the image being
   appended) falls back to the previous committed image instead of
   faulting mid-restore. *)
module Journal = struct
  let entry_marker = "SJNT"
  let entry_commit = "SJCM"
  let empty = Bytes.create 0

  let append journal image =
    let buf = Buffer.create (Bytes.length journal + Bytes.length image + 32) in
    Buffer.add_bytes buf journal;
    Buffer.add_string buf entry_marker;
    Varint.write buf (Bytes.length image);
    Buffer.add_bytes buf image;
    Varint.write buf (Crc32.bytes image);
    Buffer.add_string buf entry_commit;
    Buffer.to_bytes buf

  (* One structurally complete entry at [pos], or None on a torn tail. *)
  let read_entry journal pos =
    let total = Bytes.length journal in
    let mlen = String.length entry_marker in
    if pos + mlen > total || Bytes.sub_string journal pos mlen <> entry_marker
    then None
    else
      match Varint.read journal ~pos:(pos + mlen) with
      | exception Invalid_argument _ -> None
      | len, p -> (
        if p + len > total then None
        else
          let img = Bytes.sub journal p len in
          match Varint.read journal ~pos:(p + len) with
          | exception Invalid_argument _ -> None
          | crc, p ->
            let clen = String.length entry_commit in
            if
              p + clen > total
              || Bytes.sub_string journal p clen <> entry_commit
            then None
            else Some (img, crc, p + clen))

  let fold f acc journal =
    let rec go acc pos =
      if pos >= Bytes.length journal then acc
      else
        match read_entry journal pos with
        | None -> acc (* torn tail: ignore everything from here on *)
        | Some (img, crc, next) -> go (f acc img crc) next
    in
    go acc 0

  let entries journal = fold (fun n _ _ -> n + 1) 0 journal

  let recover journal =
    fold
      (fun best img crc ->
        if crc = Crc32.bytes img && committed img then Some img else best)
      None journal
end
