open Sj_util
module Machine = Sj_machine.Machine
module Pm = Sj_mem.Phys_mem
module Prot = Sj_paging.Prot
module Acl = Sj_kernel.Acl
module Vm_object = Sj_kernel.Vm_object
module Mspace = Sj_alloc.Mspace
module Varint = Sj_compress.Varint
module Block_lz = Sj_compress.Block_lz
module Api = Sj_core.Api
module Registry = Sj_core.Registry
module Segment = Sj_core.Segment
module Vas = Sj_core.Vas
module Errors = Sj_core.Errors
module Error = Sj_abi.Error
module Sys = Sj_abi.Sys

let magic = "SJIMG1"

(* ---------- primitive writers/readers ---------- *)

let w_string buf s =
  Varint.write buf (String.length s);
  Buffer.add_string buf s

let r_string b pos =
  let len, pos = Varint.read b ~pos in
  if pos + len > Bytes.length b then Error.fail Invalid ~op:"persist_restore" "truncated string";
  (Bytes.sub_string b pos len, pos + len)

let w_bytes buf s =
  Varint.write buf (Bytes.length s);
  Buffer.add_bytes buf s

let r_bytes b pos =
  let len, pos = Varint.read b ~pos in
  if pos + len > Bytes.length b then Error.fail Invalid ~op:"persist_restore" "truncated bytes";
  (Bytes.sub b pos len, pos + len)

let prot_bits (p : Prot.t) =
  (if p.read then 4 else 0) lor (if p.write then 2 else 0) lor if p.exec then 1 else 0

let prot_of_bits = Prot.of_mode_bits

let w_acl buf acl =
  Varint.write buf (Acl.owner acl);
  Varint.write buf (Acl.mode acl)

let r_acl b pos =
  let owner, pos = Varint.read b ~pos in
  let mode, pos = Varint.read b ~pos in
  (Acl.create ~owner ~group:owner ~mode, pos)

(* ---------- segment contents ---------- *)

let read_contents machine seg =
  let mem = Machine.mem machine in
  let obj = Segment.vm_object seg in
  let out = Buffer.create (Segment.size seg) in
  for p = 0 to Segment.pages seg - 1 do
    Buffer.add_bytes out
      (Pm.read_bytes mem
         ~pa:(Pm.base_of_frame (Vm_object.frame_at obj ~page:p))
         ~len:Addr.page_size)
  done;
  Buffer.to_bytes out

let write_contents machine seg data =
  let mem = Machine.mem machine in
  let obj = Segment.vm_object seg in
  for p = 0 to Segment.pages seg - 1 do
    Pm.write_bytes mem
      ~pa:(Pm.base_of_frame (Vm_object.frame_at obj ~page:p))
      (Bytes.sub data (p * Addr.page_size) Addr.page_size)
  done

(* ---------- save ---------- *)

let save sys =
  Sys.count (Api.syscalls sys) Persist_save;
  let reg = Api.registry sys in
  let machine = Api.machine sys in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  let segs = List.sort (fun a b -> compare (Segment.name a) (Segment.name b)) (Registry.list_segs reg) in
  Varint.write buf (List.length segs);
  List.iter
    (fun seg ->
      w_string buf (Segment.name seg);
      Varint.write buf (Segment.base seg);
      Varint.write buf (Segment.size seg);
      Varint.write buf (prot_bits (Segment.prot_max seg));
      Varint.write buf (if Segment.lockable seg then 1 else 0);
      Varint.write buf
        (match Segment.page_size seg with Sj_paging.Page_table.P4K -> 0 | P2M -> 1);
      w_acl buf (Segment.acl seg);
      (* Allocator state, if the segment has served malloc. *)
      if Registry.has_heap reg seg then begin
        let chunks = Mspace.snapshot (Registry.heap reg seg) in
        Varint.write buf (List.length chunks);
        List.iter
          (fun (c : Mspace.chunk_state) ->
            Varint.write buf c.chunk_base;
            Varint.write buf c.chunk_size;
            Varint.write buf (if c.chunk_free then 1 else 0))
          chunks
      end
      else Varint.write buf 0;
      (* Contents, compressed. *)
      w_bytes buf (Block_lz.compress (read_contents machine seg)))
    segs;
  let vases = List.sort (fun a b -> compare (Vas.name a) (Vas.name b)) (Registry.list_vases reg) in
  Varint.write buf (List.length vases);
  List.iter
    (fun vas ->
      w_string buf (Vas.name vas);
      w_acl buf (Vas.acl vas);
      Varint.write buf (match Vas.tag vas with Some t -> t | None -> 0);
      let segs = Vas.segments vas in
      Varint.write buf (List.length segs);
      List.iter
        (fun (seg, prot) ->
          w_string buf (Segment.name seg);
          Varint.write buf (prot_bits prot))
        segs)
    vases;
  Buffer.to_bytes buf

(* ---------- restore ---------- *)

let check_magic b =
  if Bytes.length b < String.length magic || Bytes.sub_string b 0 (String.length magic) <> magic
  then Error.fail Invalid ~op:"persist_restore" "bad image magic"

(* Faults from the registry/VAS layer (e.g. a name collision with the
   live system) surface as the namesake legacy exceptions; image-format
   faults stay typed. *)
let restore sys image =
  Sys.count (Api.syscalls sys) Persist_restore;
  check_magic image;
  let reg = Api.registry sys in
  let machine = Api.machine sys in
  let pos = ref (String.length magic) in
  let next_varint () =
    let v, p = Varint.read image ~pos:!pos in
    pos := p;
    v
  in
  let next_string () =
    let v, p = r_string image !pos in
    pos := p;
    v
  in
  let n_segs = next_varint () in
  for _ = 1 to n_segs do
    let name = next_string () in
    let base = next_varint () in
    let size = next_varint () in
    let prot = prot_of_bits (next_varint ()) in
    let lockable = next_varint () = 1 in
    let huge = next_varint () = 1 in
    let acl, p = r_acl image !pos in
    pos := p;
    let n_chunks = next_varint () in
    let chunks =
      List.init n_chunks (fun _ ->
          let chunk_base = next_varint () in
          let chunk_size = next_varint () in
          let chunk_free = next_varint () = 1 in
          { Mspace.chunk_base; chunk_size; chunk_free })
    in
    let compressed, p = r_bytes image !pos in
    pos := p;
    let seg =
      Segment.create ~lockable ~huge ~acl ~charge_to:None ~machine ~name ~base ~size ~prot ()
    in
    Sj_kernel.Layout.reserve_global (Machine.sim_ctx machine) ~base ~size;
    write_contents machine seg (Block_lz.decompress compressed);
    (try Registry.register_seg reg seg with Error.Fault f -> Errors.raise_legacy f);
    if chunks <> [] then
      Registry.set_heap reg seg (Mspace.of_snapshot ~base ~size chunks)
  done;
  let n_vases = next_varint () in
  for _ = 1 to n_vases do
    let name = next_string () in
    let acl, p = r_acl image !pos in
    pos := p;
    let tag = next_varint () in
    let vas = Vas.create (Machine.sim_ctx machine) ~acl ~name () in
    if tag <> 0 then Vas.assign_tag vas tag;
    let n = next_varint () in
    for _ = 1 to n do
      let sname = next_string () in
      let prot = prot_of_bits (next_varint ()) in
      try Vas.attach_segment vas (Registry.find_seg reg ~name:sname) ~prot
      with Error.Fault f -> Errors.raise_legacy f
    done;
    (try Registry.register_vas reg vas with Error.Fault f -> Errors.raise_legacy f)
  done

let describe image =
  check_magic image;
  let buf = Buffer.create 512 in
  let pos = ref (String.length magic) in
  let next_varint () =
    let v, p = Varint.read image ~pos:!pos in
    pos := p;
    v
  in
  let next_string () =
    let v, p = r_string image !pos in
    pos := p;
    v
  in
  let n_segs = next_varint () in
  Buffer.add_string buf (Printf.sprintf "segments (%d):\n" n_segs);
  for _ = 1 to n_segs do
    let name = next_string () in
    let base = next_varint () in
    let size = next_varint () in
    let prot = prot_of_bits (next_varint ()) in
    let lockable = next_varint () = 1 in
    let huge = next_varint () = 1 in
    let owner = next_varint () in
    let mode = next_varint () in
    let n_chunks = next_varint () in
    let used = ref 0 and live = ref 0 in
    for _ = 1 to n_chunks do
      let _cbase = next_varint () in
      let csize = next_varint () in
      let cfree = next_varint () = 1 in
      if not cfree then begin
        used := !used + csize;
        incr live
      end
    done;
    let compressed, p = r_bytes image !pos in
    pos := p;
    Buffer.add_string buf
      (Printf.sprintf "  %-20s %s  %-8s %s%s%s  uid=%d mode=%03o  heap: %d allocs, %s  (%s on disk)\n"
         name (Addr.to_string base) (Size.to_string size) (Prot.to_string prot)
         (if lockable then " lockable" else "")
         (if huge then " 2MiB-pages" else "")
         owner mode !live (Size.to_string !used)
         (Size.to_string (Bytes.length compressed)))
  done;
  let n_vases = next_varint () in
  Buffer.add_string buf (Printf.sprintf "address spaces (%d):\n" n_vases);
  for _ = 1 to n_vases do
    let name = next_string () in
    let owner = next_varint () in
    let mode = next_varint () in
    let tag = next_varint () in
    let n = next_varint () in
    let segs =
      List.init n (fun _ ->
          let sname = next_string () in
          let prot = prot_of_bits (next_varint ()) in
          Printf.sprintf "%s(%s)" sname (Prot.to_string prot))
    in
    Buffer.add_string buf
      (Printf.sprintf "  %-20s uid=%d mode=%03o%s  [%s]\n" name owner mode
         (if tag <> 0 then Printf.sprintf " tag=%d" tag else "")
         (String.concat ", " segs))
  done;
  Buffer.contents buf

let image_info image =
  check_magic image;
  let pos = ref (String.length magic) in
  let next_varint () =
    let v, p = Varint.read image ~pos:!pos in
    pos := p;
    v
  in
  let n_segs = next_varint () in
  let total = ref 0 in
  for _ = 1 to n_segs do
    let _name, p = r_string image !pos in
    pos := p;
    let _base = next_varint () in
    let size = next_varint () in
    total := !total + size;
    let _prot = next_varint () in
    let _lockable = next_varint () in
    let _huge = next_varint () in
    let _owner = next_varint () in
    let _mode = next_varint () in
    let n_chunks = next_varint () in
    for _ = 1 to 3 * n_chunks do
      ignore (next_varint ())
    done;
    let contents, p = r_bytes image !pos in
    ignore contents;
    pos := p
  done;
  let n_vases = next_varint () in
  Printf.sprintf "%d segment(s), %s logical, %d VAS(es), image %s" n_segs
    (Size.to_string !total) n_vases
    (Size.to_string (Bytes.length image))
