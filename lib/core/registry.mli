(** System-wide SpaceJMP object registry.

    In DragonFly this state lives in the kernel; in Barrelfish it is the
    user-space SpaceJMP service processes talk to via RPC (§4.2). Either
    way it is the system's source of truth for named VASes and segments,
    their heaps (mspaces live logically *inside* segment memory and are
    therefore system-wide, not per-process), TLB tag assignment, and
    switch statistics. *)

type t

type service = ..
(** Open sum of per-system service state. A service library (e.g.
    RedisJMP) extends this with its own constructor and keeps its
    instances in the registry via {!set_service}/{!find_service}, so a
    fresh system starts with no services — nothing leaks across
    simulations or domains. *)

val create : Sj_machine.Machine.t -> t
val machine : t -> Sj_machine.Machine.t

(** {2 VASes} *)

val register_vas : t -> Vas.t -> unit
(** Raises [Errors.Name_exists] on duplicate names. *)

val find_vas : t -> name:string -> Vas.t
(** Raises [Errors.Unknown_name]. *)

val find_vas_by_id : t -> int -> Vas.t
val unregister_vas : t -> Vas.t -> unit
val list_vases : t -> Vas.t list

(** {2 Segments} *)

val register_seg : t -> Segment.t -> unit
val find_seg : t -> name:string -> Segment.t
val find_seg_by_id : t -> int -> Segment.t
val unregister_seg : t -> Segment.t -> unit
val list_segs : t -> Segment.t list

(** {2 Per-segment heaps (§4.1 runtime library)} *)

val heap : t -> Segment.t -> Sj_alloc.Mspace.t
(** The segment's mspace, created on first use over the whole segment
    range. State is keyed by segment identity, so every process attached
    to the segment sees the same allocator state — as if the mspace
    metadata lived inside the segment. *)

val has_heap : t -> Segment.t -> bool

val set_heap : t -> Segment.t -> Sj_alloc.Mspace.t -> unit
(** Install an explicit heap (snapshot clones inherit a copy of the
    original's allocator state). *)

(** {2 Live mapping tracking}

    Which vmspaces currently map each segment — consulted when a
    snapshot must write-protect a segment everywhere. *)

val note_mapping : t -> sid:int -> Sj_kernel.Vmspace.t -> unit
val forget_mapping : t -> sid:int -> Sj_kernel.Vmspace.t -> unit
val mappings : t -> sid:int -> Sj_kernel.Vmspace.t list

(** {2 TLB tags} *)

val alloc_tag : ?charge_to:Sj_machine.Machine.Core.core -> t -> int
(** Next ASID (1..4095; 0 is reserved to mean "untagged"). Once the
    12-bit space wraps, every tag handed out is a recycle: the previous
    owner's translations are flushed from every core's TLB (INVPCID
    broadcast, one IPI per core charged to [charge_to]) and a
    [Tag_recycle] event is emitted, so the new owner can never hit a
    stale entry. Tags released via {!release_tag} are reused first
    (LIFO) and always take the recycle path. A tag a registered VAS
    still holds (whether adopted from a restored image or simply not
    yet released after a wrap) is never re-issued; if all 4095 tags are
    live, raises the typed [Capacity] fault. *)

val release_tag : t -> int -> unit
(** Return an ASID to the allocator (vas_delete, crash reclamation).
    The next {!alloc_tag} prefers released tags and treats them as
    recycled — flush broadcast and [Tag_recycle] event included.
    [release_tag t 0] (untagged) is a no-op; double release is
    idempotent. *)

val free_tag_list : t -> int list
(** The explicitly released tags awaiting reuse (most recent first) —
    read-only view for the explorer's tag-lifecycle invariants. *)

val tag_in_use : t -> int -> bool
(** Is [tag] currently assigned to a registered VAS? [tag_in_use t 0]
    is [false] (0 means "untagged"). *)

val adopt_tag : t -> int -> unit
(** Claim a specific tag on behalf of a VAS that arrived with it —
    restoring a persisted image re-creates VASes whose saved tags must
    not be handed out again by {!alloc_tag}. Removes the tag from the
    free list; raises [Name_exists] if another live VAS holds it
    (callers should then {!alloc_tag} a fresh one instead).
    [adopt_tag t 0] is a no-op. *)

(** {2 Statistics} *)

val count_switch : t -> unit
val switch_count : t -> int
val reset_stats : t -> unit

val describe : t -> string
(** Multi-line listing of the live system: every registered segment and
    VAS with its attachments' state (for [sjctl] and debugging). *)

(** {2 Barrelfish capability tracking} *)

val root_cap : t -> Vas.t -> Sj_kernel.Cap.t
(** The service's root capability for a VAS (created on demand);
    attachments hold minted children, so revoking this bars every
    process from switching into the VAS. *)

(** {2 Per-system services} *)

val set_service : t -> name:string -> service -> unit
(** Raises [Errors.Name_exists] on duplicate names (namespace the name
    with the service kind, e.g. ["redisjmp:" ^ store]). *)

val find_service : t -> name:string -> service option
val remove_service : t -> name:string -> unit
