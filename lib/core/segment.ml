open Sj_util
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Page_table = Sj_paging.Page_table
module Prot = Sj_paging.Prot
module Vm_object = Sj_kernel.Vm_object
module Acl = Sj_kernel.Acl

type lock_state = Unlocked | Shared of int | Exclusive

type t = {
  sid : int;
  name : string;
  base : int;
  mutable size : int;
  prot_max : Prot.t;
  obj : Vm_object.t;
  machine : Machine.t;
  lockable : bool;
  mutable acl : Acl.t;
  mutable lock : lock_state;
  mutable conflicts : int;
  mutable cache : (Page_table.t * Page_table.subtree array) option;
      (* scratch table owning the cached subtrees, plus the subtrees *)
  mutable cow : bool;
  page : Page_table.page_size;
  mutable destroyed : bool;
}

let create ?(lockable = true) ?acl ?node ?(huge = false) ~charge_to ~machine ~name ~base
    ~size ~prot () =
  if not (Addr.is_page_aligned base) then
    Sj_abi.Error.fail Invalid ~op:"seg_alloc" "base must be page aligned";
  if size <= 0 then Sj_abi.Error.fail Invalid ~op:"seg_alloc" "size must be positive";
  let align = if huge then Size.mib 2 else Addr.page_size in
  if huge && base mod Size.mib 2 <> 0 then
    Sj_abi.Error.fail Invalid ~op:"seg_alloc" "huge segments need a 2 MiB-aligned base";
  let size = Size.round_up size ~align in
  if base + size > Addr.va_limit then
    Sj_abi.Error.fail Invalid ~op:"seg_alloc" "beyond virtual range";
  let obj = Vm_object.create ~name ?node ~contiguous:huge machine ~size ~charge_to in
  let acl = match acl with Some a -> a | None -> Acl.create ~owner:0 ~group:0 ~mode:0o600 in
  {
    sid = Sim_ctx.next_sid (Machine.sim_ctx machine);
    name;
    base;
    size;
    prot_max = prot;
    obj;
    machine;
    lockable;
    acl;
    lock = Unlocked;
    conflicts = 0;
    cache = None;
    cow = false;
    page = (if huge then Page_table.P2M else Page_table.P4K);
    destroyed = false;
  }

let create_with_object ?(lockable = true) ?acl ~machine ~name ~base ~prot obj =
  if not (Addr.is_page_aligned base) then
    Sj_abi.Error.fail Invalid ~op:"seg_alloc" "base must be page aligned";
  let acl = match acl with Some a -> a | None -> Acl.create ~owner:0 ~group:0 ~mode:0o600 in
  {
    sid = Sim_ctx.next_sid (Machine.sim_ctx machine);
    name;
    base;
    size = Vm_object.size obj;
    prot_max = prot;
    obj;
    machine;
    lockable;
    acl;
    lock = Unlocked;
    conflicts = 0;
    cache = None;
    cow = false;
    page = Page_table.P4K;
    destroyed = false;
  }

let sid t = t.sid
let name t = t.name
let base t = t.base
let size t = t.size
let pages t = t.size / Addr.page_size
let prot_max t = t.prot_max
let vm_object t = t.obj
let acl t = t.acl
let set_acl t acl = t.acl <- acl
let lockable t = t.lockable
let is_destroyed t = t.destroyed
let is_cow t = t.cow
let mark_cow t = t.cow <- true
let page_size t = t.page
let lock_state t = t.lock

let try_lock t ~mode =
  if not t.lockable then true
  else
    match (t.lock, mode) with
    | Unlocked, `Shared ->
      t.lock <- Shared 1;
      true
    | Shared n, `Shared ->
      t.lock <- Shared (n + 1);
      true
    | Unlocked, `Exclusive ->
      t.lock <- Exclusive;
      true
    | (Shared _ | Exclusive), `Exclusive | Exclusive, `Shared ->
      t.conflicts <- t.conflicts + 1;
      false

let unlock t ~mode =
  if t.lockable then
    match (t.lock, mode) with
    | Shared 1, `Shared -> t.lock <- Unlocked
    | Shared n, `Shared when n > 1 -> t.lock <- Shared (n - 1)
    | Exclusive, `Exclusive -> t.lock <- Unlocked
    | _, _ ->
      Sj_abi.Error.failf Invalid ~op:"seg_unlock" "%s: not held in that mode" t.name

let lock_conflicts t = t.conflicts

let translation_cache t =
  match t.cache with None -> None | Some (_, subtrees) -> Some subtrees

let build_translation_cache t ~charge_to =
  match t.cache with
  | Some _ -> ()
  | None ->
    let gib = Size.gib 1 in
    if t.base land (gib - 1) <> 0 then
      Sj_abi.Error.fail Invalid ~op:"seg_cache" "base must be 1 GiB aligned";
    (* Build the full mapping once in a scratch tree, then extract the
       per-GiB PD subtrees. The scratch tree stays alive as their owner. *)
    let scratch = Page_table.create (Machine.mem t.machine) in
    (match t.page with
    | Page_table.P4K ->
      for i = 0 to pages t - 1 do
        let frame = Vm_object.frame_at t.obj ~page:i in
        Page_table.map scratch
          ~va:(t.base + (i * Addr.page_size))
          ~pa:(Sj_mem.Phys_mem.base_of_frame frame)
          ~prot:t.prot_max ~size:Page_table.P4K
      done
    | Page_table.P2M ->
      let per = Size.mib 2 / Addr.page_size in
      for i = 0 to (pages t / per) - 1 do
        let frame = Vm_object.frame_at t.obj ~page:(i * per) in
        Page_table.map scratch
          ~va:(t.base + (i * Size.mib 2))
          ~pa:(Sj_mem.Phys_mem.base_of_frame frame)
          ~prot:t.prot_max ~size:Page_table.P2M
      done);
    (match charge_to with
    | Some core ->
      let st = Page_table.stats scratch in
      let cost = Machine.cost t.machine in
      Core.charge core
        ((st.tables_allocated * cost.table_alloc) + (st.pte_writes * cost.pte_write))
    | None -> ());
    let n_gib = (t.size + gib - 1) / gib in
    let subtrees =
      Array.init n_gib (fun i ->
          match Page_table.extract_subtree scratch ~va:(t.base + (i * gib)) ~level:2 with
          | Some s -> s
          | None -> Sj_abi.Error.fail Invalid ~op:"seg_cache" "subtree extraction failed")
    in
    t.cache <- Some (scratch, subtrees)

let grow t ~by ~charge_to =
  if t.destroyed then Sj_abi.Error.fail Stale_handle ~op:"seg_grow" "destroyed";
  if t.cache <> None then
    Sj_abi.Error.fail Invalid ~op:"seg_grow" "segment has cached translations";
  if t.cow then Sj_abi.Error.fail Invalid ~op:"seg_grow" "copy-on-write segments are frozen";
  if t.page <> Page_table.P4K then
    Sj_abi.Error.fail Invalid ~op:"seg_grow" "huge-page segments are fixed";
  if by <= 0 then Sj_abi.Error.fail Invalid ~op:"seg_grow" "by must be positive";
  let by_pages = (by + Addr.page_size - 1) / Addr.page_size in
  Vm_object.grow t.machine t.obj ~by_pages ~charge_to;
  let grown = by_pages * Addr.page_size in
  t.size <- t.size + grown;
  grown

let destroy t =
  if not t.destroyed then begin
    t.destroyed <- true;
    (match t.cache with
    | Some (scratch, subtrees) ->
      Array.iter (Page_table.release_subtree scratch) subtrees;
      Page_table.destroy scratch;
      t.cache <- None
    | None -> ());
    Vm_object.destroy t.machine t.obj
  end
