(** First-class virtual address spaces (§3.2).

    A VAS is an OS object independent of any process: a named set of
    non-overlapping global segments plus access metadata. Processes
    attach to a VAS — each attachment instantiates a concrete vmspace
    combining the VAS's global segments with the process's private
    common region — and switch between attachments. A VAS persists
    until explicitly destroyed, possibly beyond its creator's lifetime.

    Mutating the segment list bumps the VAS *generation*; live
    attachments compare generations to re-synchronize their vmspaces
    (the propagation the DragonFly kernel performs when a segment is
    attached VAS-globally). *)

type t

val create : Sj_util.Sim_ctx.t -> ?acl:Sj_kernel.Acl.t -> name:string -> unit -> t
(** VAS ids come from the simulation's [Sim_ctx]; callers with a
    machine pass [Machine.sim_ctx machine]. *)

val vid : t -> int
val name : t -> string
val acl : t -> Sj_kernel.Acl.t
val set_acl : t -> Sj_kernel.Acl.t -> unit
val generation : t -> int

val bump_generation : t -> unit
(** Force attachments to re-sync at their next switch (used when a
    member segment's shape changes, e.g. growth). *)

val is_destroyed : t -> bool
val destroy : t -> unit

val tag : t -> int option
(** TLB tag (ASID) assigned via [vas_ctl], if any (§4.4). *)

val assign_tag : t -> int -> unit

val segments : t -> (Segment.t * Sj_paging.Prot.t) list
(** Global segments with their per-VAS mapping protections, sorted by
    base address. *)

val attach_segment : t -> Segment.t -> prot:Sj_paging.Prot.t -> unit
(** Add a segment. Raises [Errors.Address_conflict] on range overlap
    with an existing segment, [Invalid_argument] if [prot] exceeds the
    segment's maximum protection. *)

val detach_segment : t -> Segment.t -> unit
val find_segment_by_sid : t -> int -> (Segment.t * Sj_paging.Prot.t) option
val find_segment_at : t -> va:int -> (Segment.t * Sj_paging.Prot.t) option

val lockable_segments : t -> (Segment.t * Sj_paging.Prot.t) list
(** The segments whose locks a switch must take, with mapping prots
    deciding shared vs exclusive mode. *)

(** {2 Protection-key compartments}

    Each VAS owns an allocator over keys [1..Pkey.max_key] (key 0 is
    the permanent unrestricted default) and a segment-to-key
    assignment map. Both feed the per-attachment vmspaces: a segment
    assigned key [k] has its leaf PTEs tagged [k], so translation
    checks the accessing core's key register. Assignments bump the
    generation like segment-list changes, forcing live attachments to
    re-sync. *)

val alloc_key : t -> pid:int -> int
(** Allocate the lowest free key ([1..15]) to process [pid]. Raises
    [Error.Fault Capacity] when all 15 are taken. *)

val key_owner : t -> key:int -> int option
(** The pid that allocated [key], if it is currently allocated. *)

val key_allocations : t -> (int * int) list
(** All current [(key, owner_pid)] allocations, ascending by key —
    read-only view for the explorer's pkey invariants. *)

val seg_key_assignments : t -> (int * int) list
(** All current [(sid, key)] assignments, ascending by sid. *)

val assign_seg_key : t -> sid:int -> key:int -> unit
(** Record segment [sid] as tagged with [key] ([0] clears the
    assignment). Bumps the generation; the caller rewrites live PTEs. *)

val key_of : t -> sid:int -> int
(** The key assigned to segment [sid], or [0] (untagged). *)

val release_keys_of : t -> pid:int -> int list * int list
(** Free every key allocated by [pid] (crash/exit teardown), dropping
    any segment assignments that used them. Returns [(freed_keys,
    dropped_sids)] — the caller untags the dropped segments' live
    PTEs. Bumps the generation when anything was released. *)
