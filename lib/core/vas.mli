(** First-class virtual address spaces (§3.2).

    A VAS is an OS object independent of any process: a named set of
    non-overlapping global segments plus access metadata. Processes
    attach to a VAS — each attachment instantiates a concrete vmspace
    combining the VAS's global segments with the process's private
    common region — and switch between attachments. A VAS persists
    until explicitly destroyed, possibly beyond its creator's lifetime.

    Mutating the segment list bumps the VAS *generation*; live
    attachments compare generations to re-synchronize their vmspaces
    (the propagation the DragonFly kernel performs when a segment is
    attached VAS-globally). *)

type t

val create : Sj_util.Sim_ctx.t -> ?acl:Sj_kernel.Acl.t -> name:string -> unit -> t
(** VAS ids come from the simulation's [Sim_ctx]; callers with a
    machine pass [Machine.sim_ctx machine]. *)

val vid : t -> int
val name : t -> string
val acl : t -> Sj_kernel.Acl.t
val set_acl : t -> Sj_kernel.Acl.t -> unit
val generation : t -> int

val bump_generation : t -> unit
(** Force attachments to re-sync at their next switch (used when a
    member segment's shape changes, e.g. growth). *)

val is_destroyed : t -> bool
val destroy : t -> unit

val tag : t -> int option
(** TLB tag (ASID) assigned via [vas_ctl], if any (§4.4). *)

val assign_tag : t -> int -> unit

val segments : t -> (Segment.t * Sj_paging.Prot.t) list
(** Global segments with their per-VAS mapping protections, sorted by
    base address. *)

val attach_segment : t -> Segment.t -> prot:Sj_paging.Prot.t -> unit
(** Add a segment. Raises [Errors.Address_conflict] on range overlap
    with an existing segment, [Invalid_argument] if [prot] exceeds the
    segment's maximum protection. *)

val detach_segment : t -> Segment.t -> unit
val find_segment_by_sid : t -> int -> (Segment.t * Sj_paging.Prot.t) option
val find_segment_at : t -> va:int -> (Segment.t * Sj_paging.Prot.t) option

val lockable_segments : t -> (Segment.t * Sj_paging.Prot.t) list
(** The segments whose locks a switch must take, with mapping prots
    deciding shared vs exclusive mode. *)
