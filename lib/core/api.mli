(** The SpaceJMP programming interface (paper Fig. 3).

    Two groups of calls are exposed: the VAS API for applications
    ([vas_*]) and the segment API for library developers ([seg_*]),
    plus the runtime library's heap functions (§4.1). All calls execute
    against a {!system} (a booted OS personality on a machine) within a
    {!ctx} (a thread of a process running on a core), and every one of
    them crosses the kernel ABI through the system's numbered dispatch
    table ({!Sj_abi.Sys}), which charges the simulated entry cost of
    the backing OS implementation and keeps per-call counters:

    - [`Dragonfly]: kernel-mediated — each call pays a DragonFly syscall;
      switches pay Table 2's DragonFly cost.
    - [`Barrelfish]: the API is RPC to a user-space service; switching is
      a capability invocation, cheaper than a DragonFly syscall chain
      (Table 2), and VAS access is mediated by capabilities — revoking a
      VAS's root capability bars further switches into it (§4.2).

    Failures are typed faults ({!Sj_abi.Error}): the {!Checked} module
    returns them as [result] values straight from the dispatch table;
    the top-level functions are thin wrappers that re-raise the legacy
    {!Errors} exception for the same code. *)

type backend = Sj_abi.Sys.backend = Dragonfly | Barrelfish

type system
(** A booted SpaceJMP OS instance on a simulated machine. *)

type ctx
(** An execution context: process + core + current-VAS state. One per
    simulated thread. *)

type vh
(** A VAS handle — one process's attachment to a VAS (its private
    vmspace instance combining the VAS's global segments with the
    process's common region). *)

val boot : ?backend:backend -> Sj_machine.Machine.t -> system
(** Boot (default backend: [Dragonfly]). *)

val backend : system -> backend
val registry : system -> Registry.t
val machine : system -> Sj_machine.Machine.t

val syscalls : system -> Sj_abi.Sys.t
(** The system's ABI dispatch table — query it for per-syscall call
    counts and simulated-cycle totals ({!Sj_abi.Sys.counters},
    {!Sj_abi.Sys.describe}). *)

val context : system -> Sj_kernel.Process.t -> Sj_machine.Machine.Core.core -> ctx
(** Bind a process thread to a core. Installs the process's primary
    address space on the core. *)

val process : ctx -> Sj_kernel.Process.t
val system : ctx -> system
val core : ctx -> Sj_machine.Machine.Core.core
val current : ctx -> vh option
(** The attachment the context is currently switched into; [None] when
    in the process's primary address space. *)

val contexts : system -> ctx list
(** Every live execution context (most recently bound first). Contexts
    are removed by [exit_process]/[crash_process]/[crash_thread] — the
    explorer reads this to snapshot per-core state and live pids. *)

(** {2 VAS API (Fig. 3, left column)} *)

val vas_create : ctx -> name:string -> mode:int -> Vas.t
(** Create and register a named VAS with Unix-style mode bits owned by
    the calling process's uid. *)

val vas_find : ctx -> name:string -> Vas.t
val vas_clone : ctx -> Vas.t -> name:string -> Vas.t
(** New VAS sharing the same segment list (e.g. to re-permission). *)

val vas_attach : ctx -> Vas.t -> vh
(** Instantiate a vmspace for this process: maps the process's common
    region (text/data/stacks) plus every global segment of the VAS
    (using cached translations when the segment has them). Requires
    ACL read access. *)

val vas_detach : ctx -> vh -> unit
(** Destroy the attachment's vmspace (switching home first if the
    caller is inside it). Raises [Errors.Would_block] while another
    thread of the process is still switched into the attachment —
    detaching under a live occupant would yank the address space out
    from under its loads. *)

val vas_switch : ctx -> vh -> unit
(** Switch the calling thread into the attachment's address space:
    acquires each lockable segment's lock (shared when mapped read-only,
    exclusive when writable), releases locks of the space being left,
    and installs the translation root with the VAS's TLB tag. Raises
    [Errors.Would_block] if a lock is unavailable (state is rolled
    back). Lazily re-syncs the vmspace if segments were attached or
    detached VAS-globally since the last switch. *)

val switch_home : ctx -> unit
(** Return to the process's primary address space, releasing locks. *)

val exit_process : ctx -> unit
(** Orderly process death: releases held locks, detaches every
    attachment this context created, uninstalls the core, and reclaims
    the process's private memory. VASes and segments it created live on
    (sec 3.2) — persistence beyond process lifetime is the point. *)

val crash_process : ctx -> unit
(** Involuntary process death (dispatched as the [proc_crash] ABI
    entry) — the teardown a fault-injected kill runs. The kernel
    reclaims on the dead process's behalf: every segment lock held by
    any of its attachments is force-released (one charged lock
    operation and a [Lock_reclaim] event per lock), attachments are
    destroyed (counted page-table teardown), registry mapping records
    dropped, the dead cores' tagged TLB footprints flushed, and the
    process reclaimed. VASes and segments it created survive, orphaned
    but consistent — a second process can attach (§3.2). *)

val crash_thread : ctx -> unit
(** Involuntary death of one thread. The process and its other threads
    live on; the current attachment's locks are reclaimed only if this
    thread was the last one switched into it (§3.1: locks belong to the
    attaching process, the last thread out releases). *)

val vas_ctl :
  ctx ->
  [ `Request_tag of Vas.t  (** assign a TLB tag (§4.4 tag hint) *)
  | `Chmod of Vas.t * int
  | `Revoke of Vas.t  (** Barrelfish: revoke the root capability *)
  | `Destroy of Vas.t ] ->
  unit

(** {2 Segment API (Fig. 3, right column)} *)

val seg_alloc :
  ?huge:bool ->
  ?tier:[ `Performance | `Capacity ] ->
  ctx -> name:string -> base:int -> size:int -> mode:int -> Segment.t
(** Reserve physical memory for a named lockable segment at fixed
    virtual [base]. With [~huge:true] the segment is backed by
    physically contiguous memory and mapped with 2 MiB entries — a
    Barrelfish-style user policy (sec 4.2); base and size must be
    2 MiB-aligned. [~tier:`Capacity] places the segment in the
    platform's NVM-class capacity tier (sec 7 heterogeneous memory;
    requires a platform built with [Platform.with_capacity_tier]). *)

val seg_alloc_anywhere :
  ?huge:bool ->
  ?tier:[ `Performance | `Capacity ] ->
  ctx -> name:string -> size:int -> mode:int -> Segment.t
(** Like {!seg_alloc} with a base chosen from the global range, 1 GiB
    aligned so translation caching applies. *)

val seg_find : ctx -> name:string -> Segment.t
val seg_attach : ctx -> Vas.t -> Segment.t -> prot:Sj_paging.Prot.t -> unit
(** Attach VAS-globally: every process attached to the VAS observes the
    segment (propagated at its next switch). Requires write access to
    the VAS and [prot]-compatible access to the segment. *)

val seg_attach_local : ctx -> vh -> Segment.t -> prot:Sj_paging.Prot.t -> unit
(** Attach into one process's attachment only (Fig. 3's [seg_attach]
    taking a [vh]): scratch heaps, private windows. *)

val seg_detach : ctx -> Vas.t -> Segment.t -> unit
val seg_detach_local : ctx -> vh -> Segment.t -> unit
val seg_clone : ctx -> Segment.t -> name:string -> Segment.t
(** Copy segment contents into fresh physical memory under a new name
    (same virtual base — a clone is an alternative version of the same
    window, attachable to other VASes). COW sources (snapshot or fork
    shadows) are supported by break-and-copy on the read side: the
    clone reads the shared frames — reads never split a CoW page — into
    its own fresh frames, so the source's sharing with its family is
    untouched and the clone starts fully private. Not available for
    cached or huge segments: the clone is a plain 4 KiB-backed segment,
    so each of those sources is refused with a typed [Invalid] fault
    (tested in [test_core]). *)

val seg_snapshot : ctx -> Segment.t -> name:string -> Segment.t
(** Copy-on-write snapshot (paper sec 7 "copy-on-write, snapshotting and
    versioning"): a new segment at the same base whose pages share the
    original's physical frames. Both sides' shared pages become
    read-only in hardware; the first write to a page (from either side)
    traps to the fault handler, which copies that page and upgrades the
    writer's mapping — so a snapshot costs O(pages) PTE protections, not
    a copy. Not supported for segments with cached translations. *)

val seg_ctl :
  ctx ->
  [ `Grow of Segment.t * int
    (** extend the reservation; every process attached to a containing
        VAS observes the larger segment (and heap) at its next switch —
        no client coordination, unlike traditional shared memory
        (§2.3). Not available for cached/COW/huge segments. *)
  | `Chmod of Segment.t * int
  | `Cache_translations of Segment.t  (** §4.1: pre-build page tables *)
  | `Destroy of Segment.t ] ->
  unit

(** {2 Protection-key compartments}

    A third isolation mechanism besides the full VAS switch and the
    Barrelfish capability invocation: per-segment protection keys in
    the MPK style. A VAS owns 16 keys (key 0 = the permanent untagged
    default); [pkey_assign] tags a segment's leaf PTEs with a key, and
    [pkey_switch] rewrites the calling core's key-permission register
    to enter (or leave) one compartment. Because access rights live in
    the register — checked at every TLB hit, never cached — a switch
    costs one WRPKRU-class register write: no CR3 reload, no TLB
    flush, warm caches. A denied access lands as the typed
    [Key_violation] fault. *)

val pkey_alloc : ctx -> Vas.t -> int
(** Allocate a free protection key (1..15) in the VAS to the calling
    process. Requires ACL write access; raises a typed [Capacity]
    fault when all 15 keys are taken. Keys are reclaimed by crash or
    exit teardown of the owning process. *)

val pkey_assign : ctx -> Vas.t -> Segment.t -> key:int -> unit
(** Tag every page of the segment with [key] ([0] untags). The segment
    must be attached to the VAS and the key allocated in it (or 0);
    segments with cached translations are refused with a typed
    [Invalid] fault — their shared page-table subtree would leak the
    tag into every grafting VAS. Live mappings are rewritten and stale
    cached translations shot down machine-wide (the *tag* is cached
    with translations; only the *rights* are flush-free). *)

val pkey_switch : ctx -> key:int -> unit
(** Enter compartment [key] of the current VAS ([0] = return to the
    unrestricted view): rewrites the core's key register so only keys
    0 and [key] are accessible. Charged as one register write —
    strictly cheaper than any VAS switch — with no CR3 write and no
    TLB flush. The key must be allocated in the current VAS. Switching
    address spaces resets the register (key meanings are per-VAS). *)

(** {2 Fork: copy-on-write duplication (lib/fork)}

    Two fork flavours, both built on copy-on-write shared page-table
    subtrees ({!Sj_paging.Page_table.clone_cow}): the clone's top-level
    slots point at the source's subtrees with a CoW tag instead of
    deep-copying, so a fork costs O(top-level slots), not O(pages). The
    first write to a shared page from either side traps, is charged a
    realistic frame-copy cost, and privatizes exactly that page
    (break-and-copy); read-only pages stay shared forever. A write
    landing on a 2 MiB CoW leaf is refused with a typed [Invalid]
    fault — huge leaves are never split page-by-page. *)

val vas_fork : ctx -> vh -> name:string -> vh
(** Copy-on-write duplicate of a VAS, returned as a fresh attachment of
    the calling process. A new VAS named [name] (same ACL) is created
    and populated with one {e shadow segment} per global segment of the
    source — each wrapping a CoW clone of the source's object at the
    same base — and the attachment's vmspace CoW-shares the source's
    global page-table subtrees. Both sides' writable pages become
    copy-on-write (other processes' live mappings of the source
    segments are write-protected and stale translations shot down
    machine-wide, as in {!seg_snapshot}); per-segment heap allocator
    state is frozen into the shadow. The fork holds no locks and is
    entered with an ordinary {!vas_switch}. Refused with a typed
    [Invalid] fault when a source segment has cached translations
    (those page tables are shared mutably across VASes) or when the
    attachment has process-local segments. *)

val proc_fork :
  ?name:string -> ctx -> core:Sj_machine.Machine.Core.core -> ctx
(** Copy-on-write duplicate of the calling process, returned as a new
    context bound to [core] (which must be free). The child gets a
    fresh pid, a CoW fork of the primary address space (text shared
    read-only forever; data and stacks break-and-copy on first write),
    inherited credentials and thread geometry, and an empty capability
    space. Runtime state is rebuilt, not copied: VAS attachments are
    re-created through the ordinary attach path (segments are shared,
    not CoW), segment locks are NOT inherited, the child's key register
    starts scrubbed ([Pkey.default]), and the child owns {e fresh}
    protection keys — one per key the parent holds in each VAS — never
    the parent's. The child starts in its home space ([current] =
    [None]). Crash teardown of the child (or of the parent) leaves the
    other side's mappings, locks and tags intact — CoW frames are
    reference-counted per page. [name] defaults to the parent's name
    suffixed with ["+"]. *)

(** {2 Runtime library: per-segment heaps (§4.1)} *)

exception Out_of_memory
(** The target mspace is exhausted (same exception as physical-memory
    exhaustion: [Sj_mem.Phys_mem.Out_of_memory]). *)

val malloc : ctx -> ?seg:Segment.t -> int -> int
(** Allocate from a segment's mspace. Default segment: the first
    writable lockable segment of the current VAS. Must be called while
    switched into a VAS containing the segment; raises an
    [Sj_abi.Error.Fault] with code [Invalid] otherwise (the paper's
    allocator constraint). Raises [Out_of_memory] when the mspace is
    exhausted. *)

val free : ctx -> int -> unit
(** Release a heap allocation. Valid only while inside an address space
    with the owning segment attached. *)

val vas_of_vh : vh -> Vas.t
val vmspace_of_vh : vh -> Sj_kernel.Vmspace.t

(** {2 Result-typed surface}

    The same entry points, returning the typed fault from the dispatch
    table instead of raising. Each call here IS the ABI crossing — the
    top-level exception-style functions are wrappers over these. *)

module Checked : sig
  val vas_create : ctx -> name:string -> mode:int -> (Vas.t, Sj_abi.Error.t) result
  val vas_find : ctx -> name:string -> (Vas.t, Sj_abi.Error.t) result
  val vas_clone : ctx -> Vas.t -> name:string -> (Vas.t, Sj_abi.Error.t) result
  val vas_attach : ctx -> Vas.t -> (vh, Sj_abi.Error.t) result
  val vas_detach : ctx -> vh -> (unit, Sj_abi.Error.t) result
  val vas_switch : ctx -> vh -> (unit, Sj_abi.Error.t) result
  val switch_home : ctx -> (unit, Sj_abi.Error.t) result
  val exit_process : ctx -> (unit, Sj_abi.Error.t) result
  val crash_process : ctx -> (unit, Sj_abi.Error.t) result
  val crash_thread : ctx -> (unit, Sj_abi.Error.t) result

  val switch_retry :
    ?attempts:int -> ?backoff_cycles:int -> ctx -> vh ->
    (unit, Sj_abi.Error.t) result
  (** {!vas_switch} with a bounded deterministic retry loop around
      transient [Would_block]: attempt [k] (1-based) charges
      [k * backoff_cycles] simulated cycles to the calling core before
      retrying (linear backoff, default 8 attempts of 1000 cycles).
      Purely simulated time — byte-identical at [-j 1] and [-j N]. Any
      other fault, or [Would_block] after the last attempt, is
      returned. *)

  val vas_ctl :
    ctx ->
    [ `Request_tag of Vas.t | `Chmod of Vas.t * int | `Revoke of Vas.t | `Destroy of Vas.t ] ->
    (unit, Sj_abi.Error.t) result
  (** [`Destroy] is dispatched as the [vas_delete] ABI entry; the other
      commands share [vas_ctl]. *)

  val seg_alloc :
    ?huge:bool ->
    ?tier:[ `Performance | `Capacity ] ->
    ctx -> name:string -> base:int -> size:int -> mode:int ->
    (Segment.t, Sj_abi.Error.t) result

  val seg_alloc_anywhere :
    ?huge:bool ->
    ?tier:[ `Performance | `Capacity ] ->
    ctx -> name:string -> size:int -> mode:int -> (Segment.t, Sj_abi.Error.t) result
  (** A base-range exhaustion surfaces as code [Layout_exhausted]. *)

  val seg_find : ctx -> name:string -> (Segment.t, Sj_abi.Error.t) result

  val seg_attach :
    ctx -> Vas.t -> Segment.t -> prot:Sj_paging.Prot.t -> (unit, Sj_abi.Error.t) result

  val seg_attach_local :
    ctx -> vh -> Segment.t -> prot:Sj_paging.Prot.t -> (unit, Sj_abi.Error.t) result

  val seg_detach : ctx -> Vas.t -> Segment.t -> (unit, Sj_abi.Error.t) result
  val seg_detach_local : ctx -> vh -> Segment.t -> (unit, Sj_abi.Error.t) result
  val seg_clone : ctx -> Segment.t -> name:string -> (Segment.t, Sj_abi.Error.t) result
  val seg_snapshot : ctx -> Segment.t -> name:string -> (Segment.t, Sj_abi.Error.t) result

  val seg_ctl :
    ctx ->
    [ `Grow of Segment.t * int
    | `Chmod of Segment.t * int
    | `Cache_translations of Segment.t
    | `Destroy of Segment.t ] ->
    (unit, Sj_abi.Error.t) result
  (** [`Destroy] is dispatched as the [seg_delete] ABI entry. *)

  val malloc : ctx -> ?seg:Segment.t -> int -> (int, Sj_abi.Error.t) result
  val free : ctx -> int -> (unit, Sj_abi.Error.t) result
  val pkey_alloc : ctx -> Vas.t -> (int, Sj_abi.Error.t) result
  val pkey_assign : ctx -> Vas.t -> Segment.t -> key:int -> (unit, Sj_abi.Error.t) result
  val pkey_switch : ctx -> key:int -> (unit, Sj_abi.Error.t) result
  val vas_fork : ctx -> vh -> name:string -> (vh, Sj_abi.Error.t) result
  val proc_fork :
    ?name:string -> ctx -> core:Sj_machine.Machine.Core.core -> (ctx, Sj_abi.Error.t) result
end

(** {2 Convenience data accessors (current address space)} *)

val load64 : ctx -> va:int -> int64
val store64 : ctx -> va:int -> int64 -> unit
val load_bytes : ctx -> va:int -> len:int -> bytes
val store_bytes : ctx -> va:int -> bytes -> unit
