module Error = Sj_abi.Error

exception Permission_denied of string
exception Would_block of string
exception Name_exists of string
exception Unknown_name of string
exception Stale_handle of string
exception Address_conflict of string

let raise_legacy (f : Error.t) =
  let msg = if f.op = "" then f.detail else f.op ^ ": " ^ f.detail in
  match f.code with
  | Error.Permission_denied -> raise (Permission_denied msg)
  | Error.Would_block -> raise (Would_block msg)
  | Error.Name_exists -> raise (Name_exists msg)
  | Error.Unknown_name -> raise (Unknown_name msg)
  | Error.Stale_handle -> raise (Stale_handle msg)
  | Error.Address_conflict -> raise (Address_conflict msg)
  | Error.Capacity -> raise Sj_mem.Phys_mem.Out_of_memory
  | Error.Layout_exhausted | Error.Invalid | Error.Key_violation ->
      raise (Error.Fault f)

let fault_of_exn = function
  | Error.Fault f -> Some f
  | Permission_denied m -> Some (Error.make Permission_denied ~op:"" m)
  | Would_block m -> Some (Error.make Would_block ~op:"" m)
  | Name_exists m -> Some (Error.make Name_exists ~op:"" m)
  | Unknown_name m -> Some (Error.make Unknown_name ~op:"" m)
  | Stale_handle m -> Some (Error.make Stale_handle ~op:"" m)
  | Address_conflict m -> Some (Error.make Address_conflict ~op:"" m)
  | Sj_mem.Phys_mem.Out_of_memory -> Some (Error.make Capacity ~op:"" "out of physical memory")
  | _ -> None
