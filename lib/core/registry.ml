module Machine = Sj_machine.Machine
module Mspace = Sj_alloc.Mspace
module Cap = Sj_kernel.Cap

type service = ..
(* Open sum of per-system service states (e.g. RedisJMP stores). Keeps
   service-level mutable state scoped to the registry that owns it
   instead of in process-global tables, without the registry depending
   on the service libraries above it. *)

type t = {
  machine : Machine.t;
  vases : (string, Vas.t) Hashtbl.t;
  vases_by_id : (int, Vas.t) Hashtbl.t;
  segs : (string, Segment.t) Hashtbl.t;
  segs_by_id : (int, Segment.t) Hashtbl.t;
  heaps : (int, Mspace.t) Hashtbl.t;
  caps : (int, Cap.t) Hashtbl.t; (* vid -> root capability *)
  live_maps : (int, Sj_kernel.Vmspace.t list ref) Hashtbl.t; (* sid -> vmspaces *)
  services : (string, service) Hashtbl.t;
  mutable next_tag : int;
  mutable tags_wrapped : bool; (* a wrap happened: every tag handed out
                                  from now on has had a previous owner *)
  mutable free_tags : int list; (* explicitly released tags, reused LIFO *)
  mutable switches : int;
}

let create machine =
  {
    machine;
    vases = Hashtbl.create 16;
    vases_by_id = Hashtbl.create 16;
    segs = Hashtbl.create 16;
    segs_by_id = Hashtbl.create 16;
    heaps = Hashtbl.create 16;
    caps = Hashtbl.create 16;
    live_maps = Hashtbl.create 16;
    services = Hashtbl.create 8;
    next_tag = 1;
    tags_wrapped = false;
    free_tags = [];
    switches = 0;
  }

let machine t = t.machine

let register_vas t vas =
  let name = Vas.name vas in
  if Hashtbl.mem t.vases name then Sj_abi.Error.fail Name_exists ~op:"vas_create" name;
  Hashtbl.replace t.vases name vas;
  Hashtbl.replace t.vases_by_id (Vas.vid vas) vas

let find_vas t ~name =
  match Hashtbl.find_opt t.vases name with
  | Some v -> v
  | None -> Sj_abi.Error.fail Unknown_name ~op:"vas_find" name

let find_vas_by_id t vid =
  match Hashtbl.find_opt t.vases_by_id vid with
  | Some v -> v
  | None -> Sj_abi.Error.failf Unknown_name ~op:"vas_find" "vid:%d" vid

let unregister_vas t vas =
  Hashtbl.remove t.vases (Vas.name vas);
  Hashtbl.remove t.vases_by_id (Vas.vid vas);
  Hashtbl.remove t.caps (Vas.vid vas)

let list_vases t = Hashtbl.fold (fun _ v acc -> v :: acc) t.vases []

let register_seg t seg =
  let name = Segment.name seg in
  if Hashtbl.mem t.segs name then Sj_abi.Error.fail Name_exists ~op:"seg_alloc" name;
  Hashtbl.replace t.segs name seg;
  Hashtbl.replace t.segs_by_id (Segment.sid seg) seg

let find_seg t ~name =
  match Hashtbl.find_opt t.segs name with
  | Some s -> s
  | None -> Sj_abi.Error.fail Unknown_name ~op:"seg_find" name

let find_seg_by_id t sid =
  match Hashtbl.find_opt t.segs_by_id sid with
  | Some s -> s
  | None -> Sj_abi.Error.failf Unknown_name ~op:"seg_find" "sid:%d" sid

let unregister_seg t seg =
  Hashtbl.remove t.segs (Segment.name seg);
  Hashtbl.remove t.segs_by_id (Segment.sid seg);
  Hashtbl.remove t.heaps (Segment.sid seg)

let list_segs t = Hashtbl.fold (fun _ s acc -> s :: acc) t.segs []

let heap t seg =
  let sid = Segment.sid seg in
  match Hashtbl.find_opt t.heaps sid with
  | Some h -> h
  | None ->
    let h = Mspace.create ~base:(Segment.base seg) ~size:(Segment.size seg) in
    Hashtbl.replace t.heaps sid h;
    h

let has_heap t seg = Hashtbl.mem t.heaps (Segment.sid seg)
let set_heap t seg h = Hashtbl.replace t.heaps (Segment.sid seg) h

let note_mapping t ~sid vms =
  match Hashtbl.find_opt t.live_maps sid with
  | Some l -> l := vms :: !l
  | None -> Hashtbl.replace t.live_maps sid (ref [ vms ])

let forget_mapping t ~sid vms =
  match Hashtbl.find_opt t.live_maps sid with
  | Some l -> l := List.filter (fun v -> not (v == vms)) !l
  | None -> ()

let mappings t ~sid =
  match Hashtbl.find_opt t.live_maps sid with Some l -> !l | None -> []

let tag_in_use t tag =
  tag > 0
  && Hashtbl.fold
       (fun _ vas acc -> acc || Vas.tag vas = Some tag)
       t.vases_by_id false

let alloc_tag ?charge_to t =
  (* Explicitly released tags (vas_delete, crash reclamation) are reused
     first, LIFO; each has had a previous owner, so reuse takes the
     recycle path below. Otherwise hand out the next fresh tag. Either
     way a tag a registered VAS still holds is never re-issued: the
     free list can go stale against adopted tags (image restore), and
     after the 12-bit space wraps the counter walks over tags whose
     owners are still live — both would silently alias two VASes in the
     TLB (the explorer's tag-unique invariant). *)
  let rec fresh tries =
    if tries >= 4095 then
      Sj_abi.Error.fail Capacity ~op:"alloc_tag" "all 4095 TLB tags held by live VASes"
    else begin
      let tag = t.next_tag in
      (* Read the recycle flag before updating it: the first hand-out of
         4095 is fresh; only tags issued after a wrap had a previous
         owner. 12-bit tag space; wrap rather than fail, like PCID
         reuse. *)
      let recycled = t.tags_wrapped in
      if tag >= 4095 then begin
        t.next_tag <- 1;
        t.tags_wrapped <- true
      end
      else t.next_tag <- tag + 1;
      if tag_in_use t tag then fresh (tries + 1) else (tag, recycled)
    end
  in
  let rec from_free () =
    match t.free_tags with
    | tag :: rest ->
      t.free_tags <- rest;
      if tag_in_use t tag then from_free () else (tag, true)
    | [] -> fresh 0
  in
  let tag, recycled = from_free () in
  if recycled then begin
    (* The previous owner's translations may still be resident under
       this tag in any core's TLB; without a flush the new owner would
       hit them (stale-translation hazard, §4.1). INVPCID broadcast:
       flush the tag on every core, one IPI each charged to the
       requester — same accounting as seg_snapshot's shootdown. *)
    let c = Machine.cost t.machine in
    Array.iter
      (fun core ->
        Sj_tlb.Tlb.flush_tag (Machine.Core.tlb core) ~tag;
        match charge_to with
        | Some requester -> Machine.Core.charge requester c.cacheline_cross
        | None -> ())
      (Machine.cores t.machine);
    match Sj_obs.Recorder.active (Machine.sim_ctx t.machine) with
    | Some r ->
      let core, cycles =
        match charge_to with
        | Some requester ->
          (Machine.Core.id requester, Machine.Core.cycles requester)
        | None -> (-1, 0)
      in
      Sj_obs.Recorder.emit r ~core ~cycles (Sj_obs.Event.Tag_recycle { tag })
    | None -> ()
  end;
  tag

let release_tag t tag =
  if tag > 0 && not (List.mem tag t.free_tags) then
    t.free_tags <- tag :: t.free_tags

let free_tag_list t = t.free_tags

let adopt_tag t tag =
  if tag > 0 then begin
    if tag_in_use t tag then
      Sj_abi.Error.failf Name_exists ~op:"adopt_tag" "tag %d is live" tag;
    t.free_tags <- List.filter (fun x -> x <> tag) t.free_tags
  end

let count_switch t = t.switches <- t.switches + 1
let switch_count t = t.switches
let reset_stats t = t.switches <- 0

let describe t =
  let buf = Buffer.create 512 in
  let segs = List.sort (fun a b -> compare (Segment.name a) (Segment.name b)) (list_segs t) in
  Buffer.add_string buf (Printf.sprintf "segments (%d):\n" (List.length segs));
  List.iter
    (fun seg ->
      let lock =
        match Segment.lock_state seg with
        | Segment.Unlocked -> "unlocked"
        | Segment.Shared n -> Printf.sprintf "shared x%d" n
        | Segment.Exclusive -> "EXCLUSIVE"
      in
      let heap_note =
        if has_heap t seg then
          let h = heap t seg in
          Printf.sprintf "  heap: %d allocs, %s used" (Mspace.allocations h)
            (Sj_util.Size.to_string (Mspace.used_bytes h))
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-18s %s  %-8s %s  maps=%d  %s%s%s%s\n" (Segment.name seg)
           (Sj_util.Addr.to_string (Segment.base seg))
           (Sj_util.Size.to_string (Segment.size seg))
           lock
           (List.length (mappings t ~sid:(Segment.sid seg)))
           (if Segment.is_cow seg then "cow " else "")
           (match Segment.page_size seg with Sj_paging.Page_table.P2M -> "2MiB-pages " | P4K -> "")
           (if Segment.translation_cache seg <> None then "cached-translations " else "")
           heap_note))
    segs;
  let vases = List.sort (fun a b -> compare (Vas.name a) (Vas.name b)) (list_vases t) in
  Buffer.add_string buf (Printf.sprintf "address spaces (%d):\n" (List.length vases));
  List.iter
    (fun vas ->
      Buffer.add_string buf
        (Printf.sprintf "  %-18s gen=%d%s  [%s]\n" (Vas.name vas) (Vas.generation vas)
           (match Vas.tag vas with Some tg -> Printf.sprintf " tag=%d" tg | None -> "")
           (String.concat ", "
              (List.map
                 (fun (s, p) ->
                   Printf.sprintf "%s(%s)" (Segment.name s) (Sj_paging.Prot.to_string p))
                 (Vas.segments vas)))))
    vases;
  Buffer.add_string buf (Printf.sprintf "switches so far: %d\n" t.switches);
  Buffer.contents buf

let root_cap t vas =
  let vid = Vas.vid vas in
  match Hashtbl.find_opt t.caps vid with
  | Some c -> c
  | None ->
    let c =
      Cap.create_vas_ref (Machine.sim_ctx t.machine) ~vas:vid ~rights:Sj_paging.Prot.rwx
    in
    Hashtbl.replace t.caps vid c;
    c

let set_service t ~name s =
  if Hashtbl.mem t.services name then Sj_abi.Error.fail Name_exists ~op:"service" name;
  Hashtbl.replace t.services name s

let find_service t ~name = Hashtbl.find_opt t.services name
let remove_service t ~name = Hashtbl.remove t.services name
