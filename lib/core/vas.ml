open Sj_util
module Prot = Sj_paging.Prot
module Acl = Sj_kernel.Acl

type t = {
  vid : int;
  name : string;
  mutable acl : Acl.t;
  mutable segments : (Segment.t * Prot.t) list;
  mutable tag : int option;
  mutable generation : int;
  mutable destroyed : bool;
}

let create ctx ?acl ~name () =
  let acl = match acl with Some a -> a | None -> Acl.create ~owner:0 ~group:0 ~mode:0o600 in
  {
    vid = Sim_ctx.next_vid ctx;
    name;
    acl;
    segments = [];
    tag = None;
    generation = 0;
    destroyed = false;
  }

let vid t = t.vid
let name t = t.name
let acl t = t.acl
let set_acl t acl = t.acl <- acl
let generation t = t.generation
let bump_generation t = t.generation <- t.generation + 1
let is_destroyed t = t.destroyed
let destroy t = t.destroyed <- true
let tag t = t.tag
let assign_tag t tag = t.tag <- Some tag
let segments t = t.segments

let check_live t op = if t.destroyed then Sj_abi.Error.fail Stale_handle ~op "VAS destroyed"

let attach_segment t seg ~prot =
  check_live t "seg_attach";
  if not (Prot.subsumes (Segment.prot_max seg) prot) then
    Sj_abi.Error.fail Permission_denied ~op:"seg_attach" "prot exceeds segment maximum";
  let base = Segment.base seg and size = Segment.size seg in
  List.iter
    (fun (s, _) ->
      if
        Addr.range_overlaps ~base1:base ~size1:size ~base2:(Segment.base s)
          ~size2:(Segment.size s)
      then
        Sj_abi.Error.failf Address_conflict ~op:"seg_attach" "segment %s overlaps %s in VAS %s"
          (Segment.name seg) (Segment.name s) t.name)
    t.segments;
  t.segments <-
    List.sort (fun (a, _) (b, _) -> compare (Segment.base a) (Segment.base b))
      ((seg, prot) :: t.segments);
  t.generation <- t.generation + 1

let detach_segment t seg =
  check_live t "seg_detach";
  if not (List.exists (fun (s, _) -> Segment.sid s = Segment.sid seg) t.segments) then
    Sj_abi.Error.fail Unknown_name ~op:"seg_detach" "segment not attached";
  t.segments <- List.filter (fun (s, _) -> Segment.sid s <> Segment.sid seg) t.segments;
  t.generation <- t.generation + 1

let find_segment_by_sid t sid =
  List.find_opt (fun (s, _) -> Segment.sid s = sid) t.segments

let find_segment_at t ~va =
  List.find_opt
    (fun (s, _) -> Addr.range_contains ~base:(Segment.base s) ~size:(Segment.size s) va)
    t.segments

let lockable_segments t = List.filter (fun (s, _) -> Segment.lockable s) t.segments
