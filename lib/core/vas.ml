open Sj_util
module Prot = Sj_paging.Prot
module Acl = Sj_kernel.Acl

type t = {
  vid : int;
  name : string;
  mutable acl : Acl.t;
  mutable segments : (Segment.t * Prot.t) list;
  mutable tag : int option;
  mutable generation : int;
  mutable destroyed : bool;
  (* protection-key compartments: allocator over keys 1..Pkey.max_key
     (key 0 is the permanent "no compartment" default) plus the
     segment-to-key assignments. Assoc lists sorted ascending so
     iteration order is deterministic. *)
  mutable key_owners : (int * int) list;  (* key -> owning pid *)
  mutable seg_keys : (int * int) list;  (* sid -> key *)
}

let create ctx ?acl ~name () =
  let acl = match acl with Some a -> a | None -> Acl.create ~owner:0 ~group:0 ~mode:0o600 in
  {
    vid = Sim_ctx.next_vid ctx;
    name;
    acl;
    segments = [];
    tag = None;
    generation = 0;
    destroyed = false;
    key_owners = [];
    seg_keys = [];
  }

let vid t = t.vid
let name t = t.name
let acl t = t.acl
let set_acl t acl = t.acl <- acl
let generation t = t.generation
let bump_generation t = t.generation <- t.generation + 1
let is_destroyed t = t.destroyed
let destroy t = t.destroyed <- true
let tag t = t.tag
let assign_tag t tag = t.tag <- Some tag
let segments t = t.segments

let check_live t op = if t.destroyed then Sj_abi.Error.fail Stale_handle ~op "VAS destroyed"

let attach_segment t seg ~prot =
  check_live t "seg_attach";
  if not (Prot.subsumes (Segment.prot_max seg) prot) then
    Sj_abi.Error.fail Permission_denied ~op:"seg_attach" "prot exceeds segment maximum";
  let base = Segment.base seg and size = Segment.size seg in
  List.iter
    (fun (s, _) ->
      if
        Addr.range_overlaps ~base1:base ~size1:size ~base2:(Segment.base s)
          ~size2:(Segment.size s)
      then
        Sj_abi.Error.failf Address_conflict ~op:"seg_attach" "segment %s overlaps %s in VAS %s"
          (Segment.name seg) (Segment.name s) t.name)
    t.segments;
  t.segments <-
    List.sort (fun (a, _) (b, _) -> compare (Segment.base a) (Segment.base b))
      ((seg, prot) :: t.segments);
  t.generation <- t.generation + 1

let detach_segment t seg =
  check_live t "seg_detach";
  if not (List.exists (fun (s, _) -> Segment.sid s = Segment.sid seg) t.segments) then
    Sj_abi.Error.fail Unknown_name ~op:"seg_detach" "segment not attached";
  t.segments <- List.filter (fun (s, _) -> Segment.sid s <> Segment.sid seg) t.segments;
  t.seg_keys <- List.remove_assoc (Segment.sid seg) t.seg_keys;
  t.generation <- t.generation + 1

let find_segment_by_sid t sid =
  List.find_opt (fun (s, _) -> Segment.sid s = sid) t.segments

let find_segment_at t ~va =
  List.find_opt
    (fun (s, _) -> Addr.range_contains ~base:(Segment.base s) ~size:(Segment.size s) va)
    t.segments

let lockable_segments t = List.filter (fun (s, _) -> Segment.lockable s) t.segments

(* -- protection-key compartments ------------------------------------- *)

let alloc_key t ~pid =
  check_live t "pkey_alloc";
  let rec first_free k =
    if k > Sj_paging.Pkey.max_key then
      Sj_abi.Error.failf Capacity ~op:"pkey_alloc"
        "no free protection keys in VAS %s" t.name
    else if List.mem_assoc k t.key_owners then first_free (k + 1)
    else k
  in
  let key = first_free 1 in
  t.key_owners <- List.sort compare ((key, pid) :: t.key_owners);
  key

let key_owner t ~key = List.assoc_opt key t.key_owners
let key_allocations t = t.key_owners
let seg_key_assignments t = t.seg_keys

let assign_seg_key t ~sid ~key =
  check_live t "pkey_assign";
  t.seg_keys <-
    List.sort compare
      (if key = 0 then List.remove_assoc sid t.seg_keys
       else (sid, key) :: List.remove_assoc sid t.seg_keys);
  t.generation <- t.generation + 1

let key_of t ~sid = Option.value ~default:0 (List.assoc_opt sid t.seg_keys)

let release_keys_of t ~pid =
  let dead, live = List.partition (fun (_, owner) -> owner = pid) t.key_owners in
  let dead_keys = List.map fst dead in
  if dead_keys = [] then ([], [])
  else begin
    let dropped, kept =
      List.partition (fun (_, k) -> List.mem k dead_keys) t.seg_keys
    in
    t.key_owners <- live;
    t.seg_keys <- kept;
    t.generation <- t.generation + 1;
    (dead_keys, List.map fst dropped)
  end
