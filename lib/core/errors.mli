(** Errors raised by the exception-style SpaceJMP API.

    The source of truth for error classification is the typed fault
    model in {!Sj_abi.Error}: every ABI entry reports failures as a
    fault record carrying an errno-style code. The exceptions here are
    the legacy surface that predates it, kept so existing callers (and
    tests) continue to pattern-match on specific conditions; the
    [Api] wrappers translate faults back into them via
    {!raise_legacy}. *)

exception Permission_denied of string
(** The caller's credentials fail the ACL / capability check. *)

exception Would_block of string
(** A lockable segment's lock could not be acquired; the caller may
    retry (single-timeline clients) or wait (discrete-event clients). *)

exception Name_exists of string
(** A VAS or segment with that name already exists. *)

exception Unknown_name of string
(** [vas_find] / [seg_find] target does not exist. *)

exception Stale_handle of string
(** Use of a detached VAS handle or destroyed object. *)

exception Address_conflict of string
(** Segment placement collides with an existing mapping (§4.1
    "Inadvertent address collisions"). *)

val raise_legacy : Sj_abi.Error.t -> 'a
(** Re-raise a typed fault as the matching legacy exception:
    the six codes above map to their namesake exceptions, [Capacity]
    maps to [Sj_mem.Phys_mem.Out_of_memory], and codes with no legacy
    spelling ([Layout_exhausted], [Invalid]) re-raise the
    {!Sj_abi.Error.Fault} itself. *)

val fault_of_exn : exn -> Sj_abi.Error.t option
(** Classify an exception as a typed fault if it belongs to the API
    error surface (a [Fault], one of the legacy exceptions above, or
    [Out_of_memory]); [None] for anything else. Used by [sjctl] to
    map failures to exit codes. *)
