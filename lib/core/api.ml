open Sj_util
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Cost_model = Sj_machine.Cost_model
module Prot = Sj_paging.Prot
module Page_table = Sj_paging.Page_table
module Pkey = Sj_paging.Pkey
module Acl = Sj_kernel.Acl
module Cap = Sj_kernel.Cap
module Process = Sj_kernel.Process
module Vmspace = Sj_kernel.Vmspace
module Vm_object = Sj_kernel.Vm_object
module Layout = Sj_kernel.Layout
module Mspace = Sj_alloc.Mspace
module Error = Sj_abi.Error
module Sys = Sj_abi.Sys

(* Structured logging: silent unless the embedding application installs
   a reporter and raises the level (e.g. sjctl --verbose). *)
let log_src = Logs.Src.create "spacejmp" ~doc:"SpaceJMP core API events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type backend = Sj_abi.Sys.backend = Dragonfly | Barrelfish

type system = {
  backend : backend;
  machine : Machine.t;
  reg : Registry.t;
  tab : Sys.t;
  (* Every live context on this system, so crash teardown can reach all
     threads of a dead process (their attachments hold the locks). *)
  mutable ctxs : ctx list;
}

and vh = {
  vas : Vas.t;
  owner : Process.t;
  vmspace : Vmspace.t;
  mutable synced_gen : int;
  mutable mapped : (int * Prot.t) list; (* sids of VAS-global segments mapped *)
  mutable mapped_pages : (int * int) list; (* sid -> pages mapped (growth detection) *)
  mutable local_segs : (Segment.t * Prot.t) list;
  mutable private_bases : int list; (* common-region bases replicated so far *)
  mutable cap_slot : int option; (* Barrelfish: slot of the minted VAS capability *)
  (* Lock state is per-attachment: the first thread to switch in takes
     the segment locks on the process's behalf; further threads of the
     same process share them; the last one out releases (sec 3.1's
     "client" is the attaching process). *)
  mutable entered : int;
  mutable held : (Segment.t * [ `Shared | `Exclusive ]) list;
  mutable detached : bool;
}

and ctx = {
  sys : system;
  proc : Process.t;
  core : Core.core;
  mutable cur : vh option;
  mutable attachments : vh list; (* every live vh this context created *)
}

let boot ?(backend = Dragonfly) machine =
  { backend; machine; reg = Registry.create machine; tab = Sys.create backend;
    ctxs = [] }

let backend sys = sys.backend
let registry sys = sys.reg
let machine sys = sys.machine
let syscalls sys = sys.tab

(* Kernel cost of fielding a copy-on-write fault: trap, region lookup,
   bookkeeping (the page copy and PTE work charge separately). *)
let cow_fault_overhead = 1_100

(* The simulation's event recorder, None when tracing is off. Emitters
   match on this and construct the event only inside the [Some] branch,
   so the disabled path allocates nothing (HACKING.md, "Observability"). *)
let obs ctx = Sj_obs.Recorder.active (Machine.sim_ctx ctx.sys.machine)

let emit_to r ctx kind =
  Sj_obs.Recorder.emit r ~core:(Core.id ctx.core) ~cycles:(Core.cycles ctx.core)
    kind

(* The page-fault handler: resolve copy-on-write write faults against
   the address space the context currently has installed. Two CoW
   flavours arrive here, discriminated by walking the installed tables:

   - fork-style page-table CoW (the walk crossed a CoW-shared subtree
     or hit a CoW-tagged leaf): break-and-copy in place — resolve the
     frame through the region's object, then [Vmspace.cow_break]
     rewrites the one leaf (taking private ownership of the shared
     subtree path) and clears the CoW tag, so the page faults exactly
     once;
   - object-level CoW (sec 7 snapshotting: the PTE itself was
     write-protected): resolve and remap the page writable.

   A walk that already shows a writable non-CoW leaf means the trap
   came from a stale TLB entry another thread's break left behind; the
   retry (which invalidates the page) succeeds without any repair.
   Everything else is a genuine fault. *)
let fault_handler ctx ~va ~access =
  match access with
  | Machine.Read ->
    (match obs ctx with
    | Some rec_ ->
      emit_to rec_ ctx
        (Sj_obs.Event.Page_fault { va; write = false; resolved = false })
    | None -> ());
    false
  | Machine.Write -> (
    let vms =
      match ctx.cur with
      | Some vh -> vh.vmspace
      | None -> Process.primary_vmspace ctx.proc
    in
    let emit_fault resolved =
      match obs ctx with
      | Some rec_ ->
        emit_to rec_ ctx
          (Sj_obs.Event.Page_fault { va; write = true; resolved })
      | None -> ()
    in
    match Vmspace.find_region vms ~va with
    | Some r when r.cow && r.prot.write -> (
      match Page_table.walk (Vmspace.page_table vms) ~va with
      | Some m when m.cow ->
        (* Fork-style CoW: break the page-table sharing in place. *)
        if m.size = Page_table.P2M then begin
          (* Decided refusal: a 2 MiB CoW leaf cannot be split page by
             page without tearing the huge mapping; surface a precise
             typed fault rather than silently demoting it. *)
          emit_fault false;
          Error.failf Invalid ~op:"store"
            "copy-on-write fault on a 2 MiB mapping at 0x%x: huge CoW \
             leaves are not split (remap the segment 4 KiB-backed first)"
            va
        end;
        Core.charge ctx.core cow_fault_overhead;
        let page = ((va - r.base) / Addr.page_size) + r.obj_page in
        let copied = Vm_object.page_shared r.obj ~page in
        let frame =
          Vm_object.resolve_cow_write r.obj ~page ctx.sys.machine
            ~charge_to:(Some ctx.core)
        in
        Vmspace.cow_break vms ~charge_to:(Some ctx.core) ~va ~frame;
        emit_fault true;
        (match obs ctx with
        | Some rec_ -> emit_to rec_ ctx (Sj_obs.Event.Cow_fault { va; copied })
        | None -> ());
        true
      | Some m when m.prot.write ->
        (* Stale TLB: the tables already grant write (another thread of
           this process broke the page). The retry's page invalidation
           is the whole repair. *)
        emit_fault true;
        true
      | Some _ | None ->
        (* Object-level CoW: the leaf itself was write-protected by a
           snapshot. Event-wise this path is unchanged from before fork
           existed ([Page_fault] only) — fork-free traces must stay
           byte-identical. *)
        Core.charge ctx.core cow_fault_overhead;
        let page = ((va - r.base) / Addr.page_size) + r.obj_page in
        let frame =
          Vm_object.resolve_cow_write r.obj ~page ctx.sys.machine
            ~charge_to:(Some ctx.core)
        in
        Vmspace.remap_page vms ~charge_to:(Some ctx.core) ~va ~frame ~prot:r.prot;
        emit_fault true;
        true)
    | Some _ | None ->
      emit_fault false;
      false)

let context sys proc core =
  Core.set_page_table core ~tag:0 (Some (Vmspace.page_table (Process.primary_vmspace proc)));
  let ctx = { sys; proc; core; cur = None; attachments = [] } in
  Core.set_fault_handler core (Some (fun ~va ~access -> fault_handler ctx ~va ~access));
  sys.ctxs <- ctx :: sys.ctxs;
  ctx

let process ctx = ctx.proc
let system ctx = ctx.sys
let core ctx = ctx.core
let current ctx = ctx.cur
let contexts sys = sys.ctxs
let vas_of_vh vh = vh.vas
let vmspace_of_vh vh = vh.vmspace
let cost ctx = Machine.cost ctx.sys.machine

(* -------------------- Crash teardown (§3.2) -------------------- *)

module Injector = Sj_fault.Injector

(* Segment ids the context's process currently holds locks on, across
   every thread of the process (locks belong to attachments, and an
   attachment created by one thread can be entered by another). *)
let held_sids ctx =
  let pid = Process.pid ctx.proc in
  List.concat_map
    (fun c ->
      if Process.pid c.proc = pid then
        List.concat_map
          (fun vh -> List.map (fun (s, _) -> Segment.sid s) vh.held)
          c.attachments
      else [])
    ctx.sys.ctxs

(* Force-release the locks of one attachment on behalf of a dead
   process. Unlike the orderly seg_unlock path, the dead process is not
   issuing calls: the kernel walks the lock list itself, charging one
   uncontended lock operation per reclaim to the core fielding the
   death and emitting [Lock_reclaim] so traces show who freed what. *)
let reclaim_locks ctx ~pid vh =
  let c = cost ctx in
  let n = List.length vh.held in
  List.iter
    (fun (seg, mode) ->
      Core.charge ctx.core c.lock_uncontended;
      Segment.unlock seg ~mode;
      match obs ctx with
      | Some r ->
        emit_to r ctx (Sj_obs.Event.Lock_reclaim { sid = Segment.sid seg; pid })
      | None -> ())
    vh.held;
  vh.held <- [];
  vh.entered <- 0;
  n

(* Reclaim the protection keys a dead (or exiting) process allocated:
   free them in every VAS, untag the surviving live mappings of any
   segment whose assignment died, and shoot down stale tags machine-wide
   when anything was retagged. With no keys in use this is a no-op —
   no charge, no events. *)
let reclaim_pkeys ctx ~pid =
  let freed =
    List.filter_map
      (fun vas ->
        match Vas.release_keys_of vas ~pid with
        | [], _ -> None
        | keys, sids -> Some (Vas.vid vas, keys, sids))
      (Registry.list_vases ctx.sys.reg)
  in
  let dropped_sids = List.concat_map (fun (_, _, sids) -> sids) freed in
  List.iter
    (fun sid ->
      let seg = Registry.find_seg_by_id ctx.sys.reg sid in
      List.iter
        (fun vms ->
          Vmspace.set_region_key vms ~charge_to:(Some ctx.core)
            ~base:(Segment.base seg) ~key:0)
        (Registry.mappings ctx.sys.reg ~sid))
    dropped_sids;
  (* A surviving thread switched into an affected VAS may still hold
     WRPKRU rights to the keys that just died — left alone it would
     keep compartment access after the key is reallocated to a new
     owner. Revoke the freed keys from every such core's register (one
     register rewrite charged per affected core). *)
  List.iter
    (fun cx ->
      match cx.cur with
      | Some vh when not vh.detached -> (
        match List.find_opt (fun (vid, _, _) -> vid = Vas.vid vh.vas) freed with
        | Some (_, keys, _) ->
          let pkru = Core.pkru cx.core in
          let scrubbed =
            List.fold_left (fun r key -> Pkey.set r ~key Pkey.Denied) pkru keys
          in
          if scrubbed <> pkru then begin
            Core.set_pkru cx.core scrubbed;
            Core.charge ctx.core (cost ctx).cacheline_cross
          end
        | None -> ())
      | _ -> ())
    ctx.sys.ctxs;
  if dropped_sids <> [] then begin
    let c = cost ctx in
    Array.iter
      (fun core ->
        Sj_tlb.Tlb.flush_nonglobal (Core.tlb core);
        Core.charge ctx.core c.cacheline_cross)
      (Machine.cores ctx.sys.machine)
  end

(* Involuntary death of a whole process: reclaim every segment lock its
   attachments hold, destroy the attachments' vmspaces (counted
   Page_table.destroy via Vmspace.destroy), drop the registry's mapping
   records, flush the dead process's tagged TLB footprint, uninstall its
   cores, and let the kernel reclaim the process. The VASes and segments
   it created — and the data in them — survive (§3.2); a second process
   can attach and observe consistent state. *)
let crash_teardown ctx =
  let sys = ctx.sys in
  let pid = Process.pid ctx.proc in
  let siblings = List.filter (fun c -> Process.pid c.proc = pid) sys.ctxs in
  let atts =
    List.fold_left
      (fun acc c ->
        List.fold_left
          (fun acc vh -> if List.memq vh acc then acc else vh :: acc)
          acc c.attachments)
      [] siblings
  in
  let locks = ref 0 in
  let attachments = ref 0 in
  List.iter
    (fun vh ->
      if not vh.detached then begin
        incr attachments;
        locks := !locks + reclaim_locks ctx ~pid vh;
        (match vh.cap_slot with
        | Some slot -> Cap.Cspace.delete (Process.cspace vh.owner) slot
        | None -> ());
        List.iter
          (fun (sid, _) -> Registry.forget_mapping sys.reg ~sid vh.vmspace)
          vh.mapped;
        List.iter
          (fun (seg, _) ->
            Registry.forget_mapping sys.reg ~sid:(Segment.sid seg) vh.vmspace)
          vh.local_segs;
        Vmspace.destroy vh.vmspace ~charge_to:(Some ctx.core);
        vh.detached <- true
      end)
    atts;
  (* The dead process's protection keys go back to their VASes'
     allocators; stale tags on surviving mappings are erased. *)
  reclaim_pkeys ctx ~pid;
  (* Stale-translation hygiene: whatever ASID each dead core had
     installed may still back TLB entries; flush it before the core is
     handed to anyone else (one IPI per flushed core, like the other
     shootdown paths). *)
  let c = cost ctx in
  List.iter
    (fun cx ->
      let tag = Core.current_tag cx.core in
      if tag <> 0 then begin
        Sj_tlb.Tlb.flush_tag (Core.tlb cx.core) ~tag;
        Core.charge ctx.core c.cacheline_cross
      end;
      cx.cur <- None;
      cx.attachments <- [];
      Core.set_pkru cx.core Pkey.default;
      Core.set_fault_handler cx.core None;
      Core.set_page_table cx.core None)
    siblings;
  sys.ctxs <- List.filter (fun cx -> Process.pid cx.proc <> pid) sys.ctxs;
  Process.exit ctx.proc;
  (match obs ctx with
  | Some r ->
    emit_to r ctx
      (Sj_obs.Event.Proc_crash { pid; locks = !locks; attachments = !attachments })
  | None -> ());
  Log.debug (fun m ->
      m "process %d crashed: reclaimed %d locks, %d attachments" pid !locks
        !attachments)

(* Involuntary death of a single thread. The process lives on, and so
   does the attachment lock state unless this thread was the last one
   inside its current attachment — the §3.1 contract: locks belong to
   the attaching process, the last thread out releases. *)
let crash_thread_teardown ctx =
  let sys = ctx.sys in
  let pid = Process.pid ctx.proc in
  (match ctx.cur with
  | Some vh ->
    vh.entered <- vh.entered - 1;
    if vh.entered = 0 then ignore (reclaim_locks ctx ~pid vh);
    ctx.cur <- None
  | None -> ());
  Core.set_pkru ctx.core Pkey.default;
  Core.set_fault_handler ctx.core None;
  Core.set_page_table ctx.core None;
  sys.ctxs <- List.filter (fun cx -> not (cx == ctx)) sys.ctxs

(* Every API call crosses the kernel ABI through the dispatch table:
   the table charges the entry cost of the booted backend (a DragonFly
   syscall, or a Barrelfish RPC round trip to the SpaceJMP service) and
   accounts the call against its ABI number. With a fault injector
   attached, the injector decides before the body runs whether this
   call proceeds, fails transiently, or kills the process; with no
   injector (the default) the body is passed through untouched. *)
let call ctx nr body =
  let body =
    match Injector.active (Machine.sim_ctx ctx.sys.machine) with
    | None -> body
    | Some inj ->
      fun () ->
        (match
           Injector.on_syscall inj ~pid:(Process.pid ctx.proc)
             ~nr:(Sys.number nr) ~held:(held_sids ctx)
         with
        | Injector.Pass -> ()
        | Injector.Would_block ->
          Error.fail Would_block ~op:(Sys.name nr) "injected transient failure"
        | Injector.Kill ->
          let pid = Process.pid ctx.proc in
          Sys.count ctx.sys.tab Proc_crash;
          crash_teardown ctx;
          raise (Injector.Killed { pid; op = Sys.name nr }));
        body ()
  in
  Sys.invoke ctx.sys.tab ~cost:(cost ctx) ctx.core nr body

let ok_exn = function Ok v -> v | Error f -> Errors.raise_legacy f

let check_acl ctx acl access ~op detail =
  if not (Acl.check acl (Process.cred ctx.proc) access) then
    Error.fail Permission_denied ~op detail

(* -------------------- VAS API -------------------- *)

let vas_create_c ctx ~name ~mode =
  call ctx Vas_create (fun () ->
      let cred = Process.cred ctx.proc in
      let acl =
        Acl.create ~owner:cred.uid
          ~group:(List.nth_opt cred.gids 0 |> Option.value ~default:0)
          ~mode
      in
      let vas = Vas.create (Machine.sim_ctx ctx.sys.machine) ~acl ~name () in
      Registry.register_vas ctx.sys.reg vas;
      Log.debug (fun m ->
          m "vas_create %s (vid %d) by pid %d" name (Vas.vid vas) (Process.pid ctx.proc));
      vas)

let vas_find_c ctx ~name = call ctx Vas_find (fun () -> Registry.find_vas ctx.sys.reg ~name)

let vas_clone_c ctx vas ~name =
  call ctx Vas_clone (fun () ->
      check_acl ctx (Vas.acl vas) `Read ~op:"vas_clone" "VAS not readable";
      let clone = Vas.create (Machine.sim_ctx ctx.sys.machine) ~acl:(Vas.acl vas) ~name () in
      List.iter (fun (seg, prot) -> Vas.attach_segment clone seg ~prot) (Vas.segments vas);
      Registry.register_vas ctx.sys.reg clone;
      clone)

(* Map one global segment into an attachment's vmspace, using cached
   translations when available. *)
let map_global_segment ctx vh seg prot =
  let vms = vh.vmspace in
  match Segment.translation_cache seg with
  | Some subtrees ->
    (* Grafting shares page tables, so per-attachment protection
       downgrades are not representable in the subtree itself; the
       paper's prototype has the same property (shared non-root tables,
       §4.2). Enforcement of read-only mappings then relies on the
       segment lock mode: [vh.mapped] records the requested [prot] for
       lock-mode selection. *)
    let gib = Size.gib 1 in
    Array.iteri
      (fun i sub ->
        let region : Vmspace.region =
          {
            base = Segment.base seg + (i * gib);
            size = min gib (Segment.size seg - (i * gib));
            prot;
            obj = Segment.vm_object seg;
            obj_page = i * (gib / Addr.page_size);
            global = false;
            cow = false;
            page = Page_table.P4K;
            region_name = Some (Segment.name seg);
          }
        in
        Vmspace.graft_cached vms ~charge_to:(Some ctx.core)
          ~base:(Segment.base seg + (i * gib))
          ~subtree:sub ~region)
      subtrees
  | None ->
    (* The VAS's key assignment rides in with the mapping, so
       attachments created after a pkey_assign are tagged from birth. *)
    Vmspace.map_object vms ~charge_to:(Some ctx.core) ~base:(Segment.base seg)
      ~name:(Segment.name seg) ~cow:(Segment.is_cow seg) ~page:(Segment.page_size seg)
      ~key:(Vas.key_of vh.vas ~sid:(Segment.sid seg))
      ~prot (Segment.vm_object seg)

let unmap_global_segment ctx vh seg =
  let vms = vh.vmspace in
  match Segment.translation_cache seg with
  | Some subtrees ->
    Vmspace.prune_cached vms ~charge_to:(Some ctx.core) ~base:(Segment.base seg)
      ~gib_spans:(Array.length subtrees)
  | None -> Vmspace.unmap_region vms ~charge_to:(Some ctx.core) ~base:(Segment.base seg)

(* The runtime library's bookkeeping (sec 4.1): the process's common
   region — text, globals, and *every* thread stack — must be present in
   each attachment. Threads spawned after an attach add stacks that the
   attachment has not replicated yet. *)
let sync_private_regions ctx vh =
  List.iter
    (fun (r : Vmspace.region) ->
      if not (List.mem r.base vh.private_bases) then begin
        (* [cow] rides along: after a proc_fork the process's private
           regions share frames with the other side of the fork, and a
           replica mapped writable here would bypass the fault path. *)
        Vmspace.map_object vh.vmspace ~charge_to:(Some ctx.core) ~base:r.base
          ~obj_page:r.obj_page
          ~pages:(r.size / Addr.page_size)
          ~cow:r.cow ?name:r.region_name ~prot:r.prot r.obj;
        vh.private_bases <- r.base :: vh.private_bases
      end)
    (Process.private_regions ctx.proc)

let sync_attachment ctx vh =
  sync_private_regions ctx vh;
  if vh.synced_gen <> Vas.generation vh.vas then begin
    let wanted = List.map (fun (s, p) -> (Segment.sid s, (s, p))) (Vas.segments vh.vas) in
    (* Unmap segments that were detached VAS-globally. *)
    List.iter
      (fun (sid, _prot) ->
        if not (List.mem_assoc sid wanted) then begin
          let seg = Registry.find_seg_by_id ctx.sys.reg sid in
          unmap_global_segment ctx vh seg;
          Registry.forget_mapping ctx.sys.reg ~sid vh.vmspace
        end)
      vh.mapped;
    (* Remap segments that grew since this attachment last mapped them
       (the coordination-free shared-region growth of §2.3). *)
    List.iter
      (fun (sid, (seg, prot)) ->
        if List.mem_assoc sid vh.mapped then
          match List.assoc_opt sid vh.mapped_pages with
          | Some pages when pages <> Segment.pages seg ->
            unmap_global_segment ctx vh seg;
            map_global_segment ctx vh seg prot
          | Some _ | None -> ())
      wanted;
    (* Map newly attached segments. *)
    List.iter
      (fun (sid, (seg, prot)) ->
        if not (List.mem_assoc sid vh.mapped) then begin
          map_global_segment ctx vh seg prot;
          Registry.note_mapping ctx.sys.reg ~sid vh.vmspace
        end)
      wanted;
    vh.mapped <- List.map (fun (sid, (_, p)) -> (sid, p)) wanted;
    vh.mapped_pages <- List.map (fun (sid, (s, _)) -> (sid, Segment.pages s)) wanted;
    vh.synced_gen <- Vas.generation vh.vas
  end

let vas_attach_c ctx vas =
  call ctx Vas_attach (fun () ->
      if Vas.is_destroyed vas then
        Error.fail Stale_handle ~op:"vas_attach" "destroyed VAS";
      check_acl ctx (Vas.acl vas) `Read ~op:"vas_attach" "VAS not readable";
      let vms = Vmspace.create ctx.sys.machine ~charge_to:(Some ctx.core) in
      let vh =
        {
          vas;
          owner = ctx.proc;
          vmspace = vms;
          synced_gen = -1;
          mapped = [];
          mapped_pages = [];
          local_segs = [];
          private_bases = [];
          cap_slot = None;
          entered = 0;
          held = [];
          detached = false;
        }
      in
      (* Replicates the common region (text, globals, stacks) and maps the
         VAS's global segments. *)
      sync_attachment ctx vh;
      (match ctx.sys.backend with
      | Dragonfly -> ()
      | Barrelfish ->
        (* §4.2: "a user-space process can allocate memory for its own page
           tables". Model the capability work behind the vmspace just
           built: one untyped-RAM capability retyped into a Vnode per
           page-table node, each a kernel-checked invocation. *)
        let tables =
          (Sj_paging.Page_table.stats (Vmspace.page_table vms)).tables_allocated
        in
        let cspace = Process.cspace ctx.proc in
        let c = cost ctx in
        for _ = 1 to tables do
          let ram = Cap.create_ram (Machine.sim_ctx ctx.sys.machine) ~size:Addr.page_size in
          let vnode = Cap.retype ram ~into:(Cap.Vnode 1) in
          ignore (Cap.Cspace.insert cspace vnode);
          Core.charge ctx.core c.syscall_barrelfish
        done;
        let root = Registry.root_cap ctx.sys.reg vas in
        let child = Cap.mint root ~rights:Prot.rwx in
        vh.cap_slot <- Some (Cap.Cspace.insert cspace child));
      ctx.attachments <- vh :: ctx.attachments;
      vh)

(* -------------------- Fork (lib/fork's kernel side) -------------------- *)

(* Emit the [Fork] event with the page-table sharing census of the
   freshly forked vmspace — the observable proof that the fork shared
   subtrees instead of copying them. *)
let emit_fork ctx ~parent ~child ~proc pt =
  match obs ctx with
  | Some r ->
    let nodes_total, nodes_shared = Page_table.count_nodes pt in
    emit_to r ctx
      (Sj_obs.Event.Fork { parent; child; proc; nodes_shared; nodes_total })
  | None -> ()

let vas_fork_c ctx vh ~name =
  call ctx Vas_fork (fun () ->
      if vh.detached then Error.fail Stale_handle ~op:"vas_fork" "detached handle";
      check_acl ctx (Vas.acl vh.vas) `Read ~op:"vas_fork" "VAS not readable";
      (* Precise refusals. Cached translations are shared *mutably* (the
         grafted subtree is the segment's single source of truth across
         every VAS using it) and cannot also be CoW-shared; process-local
         segments are not part of the VAS being forked. *)
      List.iter
        (fun (sid, _) ->
          let seg = Registry.find_seg_by_id ctx.sys.reg sid in
          if Segment.translation_cache seg <> None then
            Error.failf Invalid ~op:"vas_fork"
              "segment %s has cached translations: its page tables are shared \
               in place across every grafting VAS and cannot be CoW-forked"
              (Segment.name seg))
        vh.mapped;
      if vh.local_segs <> [] then
        Error.fail Invalid ~op:"vas_fork"
          "attachment has process-local segments (not part of the VAS); \
           detach them before forking";
      let vas' =
        Vas.create (Machine.sim_ctx ctx.sys.machine) ~acl:(Vas.acl vh.vas) ~name ()
      in
      Registry.register_vas ctx.sys.reg vas';
      (* CoW-fork the attachment's vmspace: the global spans (segment
         content) are shared subtree-by-subtree; the private spans are
         left empty and re-replicated below, because the common region
         belongs to the calling process, not to the VAS. *)
      let vms' =
        Vmspace.fork vh.vmspace ~charge_to:(Some ctx.core) ~share:Layout.is_global
      in
      let cred = Process.cred ctx.proc in
      let acl = Acl.create ~owner:cred.uid ~group:0 ~mode:0o600 in
      let mapped = ref [] and mapped_pages = ref [] in
      List.iter
        (fun (sid, prot) ->
          let seg = Registry.find_seg_by_id ctx.sys.reg sid in
          let r =
            match Vmspace.find_region vms' ~va:(Segment.base seg) with
            | Some r -> r
            | None ->
              Error.failf Invalid ~op:"vas_fork" "segment %s not mapped"
                (Segment.name seg)
          in
          (* The shadow segment wraps the region's CoW-cloned object, so
             the fork's frames belong to the new VAS's own segment — no
             copy until somebody writes. *)
          let shadow =
            Segment.create_with_object ~acl ~machine:ctx.sys.machine
              ~name:(Printf.sprintf "%s@%s" (Segment.name seg) name)
              ~base:(Segment.base seg) ~prot:(Segment.prot_max seg) r.obj
          in
          Segment.mark_cow seg;
          Segment.mark_cow shadow;
          Registry.register_seg ctx.sys.reg shadow;
          (* The allocator state is frozen at the fork instant, like a
             snapshot's. *)
          if Registry.has_heap ctx.sys.reg seg then begin
            let copy =
              Mspace.of_snapshot ~base:(Segment.base seg) ~size:(Segment.size seg)
                (Mspace.snapshot (Registry.heap ctx.sys.reg seg))
            in
            Registry.set_heap ctx.sys.reg shadow copy
          end;
          Vas.attach_segment vas' shadow ~prot;
          Registry.note_mapping ctx.sys.reg ~sid:(Segment.sid shadow) vms';
          mapped := (Segment.sid shadow, prot) :: !mapped;
          mapped_pages := (Segment.sid shadow, Segment.pages shadow) :: !mapped_pages;
          (* Every *other* vmspace mapping the source segment writes to
             frames the fork now shares: write-protect them (the fork
             source itself was CoW-tagged wholesale by the clone). *)
          List.iter
            (fun vms ->
              if vms != vh.vmspace && vms != vms' then
                Vmspace.write_protect_region vms ~charge_to:(Some ctx.core)
                  ~base:(Segment.base seg))
            (Registry.mappings ctx.sys.reg ~sid))
        vh.mapped;
      (* Stale writable translations of the now-CoW pages die machine-wide
         (one IPI per core), exactly like a snapshot's shootdown. *)
      let c = cost ctx in
      Array.iter
        (fun core ->
          Sj_tlb.Tlb.flush_nonglobal (Core.tlb core);
          Core.charge ctx.core c.cacheline_cross)
        (Machine.cores ctx.sys.machine);
      let vh' =
        {
          vas = vas';
          owner = ctx.proc;
          vmspace = vms';
          synced_gen = Vas.generation vas';
          mapped = List.rev !mapped;
          mapped_pages = List.rev !mapped_pages;
          local_segs = [];
          private_bases = [];
          cap_slot = None;
          entered = 0;
          held = [];
          detached = false;
        }
      in
      (* Replicate the common region (fresh tables: it is per-process
         state, and the fork is attachable by other processes too). *)
      sync_private_regions ctx vh';
      (match ctx.sys.backend with
      | Dragonfly -> ()
      | Barrelfish ->
        (* §4.2 again: user-space page-table memory is capability work —
           one retype per table the clone allocated (the CoW-shared
           subtrees cost nothing: they are the *other* VAS's vnodes). *)
        let tables =
          (Sj_paging.Page_table.stats (Vmspace.page_table vms')).tables_allocated
        in
        let cspace = Process.cspace ctx.proc in
        for _ = 1 to tables do
          let ram =
            Cap.create_ram (Machine.sim_ctx ctx.sys.machine) ~size:Addr.page_size
          in
          let vnode = Cap.retype ram ~into:(Cap.Vnode 1) in
          ignore (Cap.Cspace.insert cspace vnode);
          Core.charge ctx.core c.syscall_barrelfish
        done;
        let root = Registry.root_cap ctx.sys.reg vas' in
        let child = Cap.mint root ~rights:Prot.rwx in
        vh'.cap_slot <- Some (Cap.Cspace.insert cspace child));
      ctx.attachments <- vh' :: ctx.attachments;
      emit_fork ctx ~parent:(Vas.vid vh.vas) ~child:(Vas.vid vas') ~proc:false
        (Vmspace.page_table vms');
      Log.debug (fun m ->
          m "vas_fork %s -> %s (%d segments CoW-shared)" (Vas.name vh.vas) name
            (List.length vh'.mapped));
      vh')

let proc_fork_c ?name ctx ~core =
  call ctx Proc_fork (fun () ->
      (* The kernel half: fresh pid, CoW-forked primary vmspace, cloned
         text/data/stack objects, inherited credentials, empty cspace. *)
      let child_proc = Process.fork ?name ctx.proc ~charge_to:(Some ctx.core) in
      let child = context ctx.sys child_proc core in
      (* The child's key register starts scrubbed — compartment entry is
         never inherited across a fork. *)
      Core.set_pkru core Pkey.default;
      let child_pid = Process.pid child_proc in
      (try
         (* Protection keys: ownership is per-pid and never shared. The
            child gets *fresh* keys, one per key the parent owns in each
            VAS, so its compartment budget matches the parent's without
            granting it the parent's tags. *)
         List.iter
           (fun vas ->
             List.iter
               (fun (_, owner) ->
                 if owner = Process.pid ctx.proc then
                   ignore (Vas.alloc_key vas ~pid:child_pid))
               (Vas.key_allocations vas))
           (Registry.list_vases ctx.sys.reg);
         (* VAS attachments are rebuilt through the ordinary attach path
            (segments are MAP_SHARED state, not CoW'd by a fork), oldest
            first so attachment order matches the parent's. Segment
            locks are deliberately NOT inherited: the child starts
            outside every attachment, holding nothing. *)
         List.iter
           (fun vh ->
             if not vh.detached then
               match vas_attach_c child vh.vas with
               | Ok _ -> ()
               | Error f -> raise (Error.Fault f))
           (List.rev ctx.attachments)
       with e ->
         (* Roll the half-built child back (key-space exhaustion, or an
            injected fault in one of the child's attach calls). Crash
            teardown already ran if the child was fault-injector-killed. *)
         if Process.is_live child_proc then crash_teardown child;
         raise e);
      emit_fork ctx ~parent:(Process.pid ctx.proc) ~child:child_pid ~proc:true
        (Vmspace.page_table (Process.primary_vmspace child_proc));
      Log.debug (fun m ->
          m "proc_fork %d -> %d (%s)" (Process.pid ctx.proc) child_pid
            (Process.name child_proc));
      child)

(* Leave the attachment the context is currently in (if any): the last
   thread out releases the attachment's locks. *)
let unlock_all ctx held =
  List.iter
    (fun (seg, mode) ->
      Sys.count ctx.sys.tab Seg_unlock;
      Segment.unlock seg ~mode;
      match obs ctx with
      | Some r ->
        emit_to r ctx (Sj_obs.Event.Seg_unlock { sid = Segment.sid seg })
      | None -> ())
    held

let leave_current ctx =
  match ctx.cur with
  | None -> ()
  | Some vh ->
    vh.entered <- vh.entered - 1;
    if vh.entered = 0 then begin
      unlock_all ctx vh.held;
      vh.held <- []
    end;
    ctx.cur <- None

(* First thread into an attachment acquires its segment locks: sorted by
   sid for a canonical order; shared when the attachment maps the
   segment read-only, exclusive when writable (§3.1). Each acquisition
   is a [Seg_lock] entry on the runtime's lock path. *)
let enter ctx vh =
  if vh.entered = 0 then begin
    let lockables =
      List.sort (fun (a, _) (b, _) -> compare (Segment.sid a) (Segment.sid b))
        (Vas.lockable_segments vh.vas
        @ List.filter (fun (s, _) -> Segment.lockable s) vh.local_segs)
    in
    let taken = ref [] in
    let ok =
      List.for_all
        (fun (seg, prot) ->
          let mode = if (prot : Prot.t).write then `Exclusive else `Shared in
          Sys.charge_entry ctx.sys.tab ~cost:(cost ctx) ctx.core Seg_lock;
          let acquired = Segment.try_lock seg ~mode in
          (match obs ctx with
          | Some r ->
            emit_to r ctx
              (Sj_obs.Event.Seg_lock
                 { sid = Segment.sid seg; exclusive = mode = `Exclusive;
                   acquired })
          | None -> ());
          if acquired then begin
            taken := (seg, mode) :: !taken;
            true
          end
          else false)
        lockables
    in
    if not ok then begin
      unlock_all ctx !taken;
      Error.fail Would_block ~op:"vas_switch" "lockable segment busy"
    end;
    vh.held <- !taken
  end;
  vh.entered <- vh.entered + 1;
  ctx.cur <- Some vh

(* -------------------- The crossing abstraction -------------------- *)

(* Exactly three mechanisms move a thread's memory view: reloading the
   translation root (DragonFly vas_switch — a CR3 write, §4.1), the
   same reload authorized by a capability invocation (Barrelfish,
   §4.2), and rewriting the per-core protection-key register
   (compartment entry — WRPKRU, no CR3 write, no TLB flush). Each is a
   [Crossing.t]: [authorize] runs the mechanism's permission step
   before any state moves, and [commit] charges the mechanism's cost
   and performs its hardware step — so the per-mechanism price and the
   observability event each live in exactly one place. *)
module Crossing = struct
  type target = Attachment of vh | Home

  type t =
    | Vas_reload of target  (* kernel-mediated translation-root reload *)
    | Cap_invoke of { vh : vh; slot : int }  (* cap-authorized reload *)
    | Pkey_write of { vid : int; key : int; pkru : Pkey.reg }

  let tag_of = function
    | Vas_reload (Attachment vh) | Cap_invoke { vh; _ } -> (
      match Vas.tag vh.vas with Some t -> t | None -> 0)
    | Vas_reload Home | Pkey_write _ -> 0

  (* Simulated cycles charged at commit. [Core.set_page_table] itself
     charges the CR3 write, so the reload mechanisms charge Table 2's
     total minus the CR3 load; the pkey mechanism never touches CR3 and
     charges its full WRPKRU + bookkeeping cost here. *)
  let commit_cost ctx crossing =
    let c = cost ctx in
    match crossing with
    | Vas_reload _ | Cap_invoke _ ->
      let tagged = tag_of crossing <> 0 in
      let os =
        match ctx.sys.backend with
        | Dragonfly -> `Dragonfly
        | Barrelfish -> `Barrelfish
      in
      Cost_model.vas_switch_cost c ~os ~tagged
      - (if tagged then c.cr3_load_tagged else c.cr3_load)
    | Pkey_write _ -> Cost_model.pkey_switch_cost c

  (* The mechanism's permission step. Only the capability mechanism
     checks anything here: invocation fails when the VAS's root cap was
     revoked (§4.2). *)
  let authorize ctx = function
    | Cap_invoke { slot; _ } -> (
      try ignore (Cap.Cspace.invoke (Process.cspace ctx.proc) ~slot ~access:`Read)
      with Error.Fault f ->
        Error.failf Permission_denied ~op:"vas_switch"
          "capability invocation refused (%s)" f.detail)
    | Vas_reload _ | Pkey_write _ -> ()

  (* Charge the mechanism's cost and perform its hardware step. The
     reload mechanisms install a translation root and reset the key
     register (key meanings are per-VAS, so a compartment restriction
     must not follow the thread into another space); the pkey mechanism
     rewrites the key register only — cached translations stay warm. *)
  let commit ctx crossing =
    let cycles = commit_cost ctx crossing in
    Core.charge ctx.core cycles;
    match crossing with
    | Vas_reload Home ->
      Core.set_page_table ctx.core ~tag:0
        (Some (Vmspace.page_table (Process.primary_vmspace ctx.proc)));
      Core.set_pkru ctx.core Pkey.default;
      (match obs ctx with
      | Some r -> emit_to r ctx (Sj_obs.Event.Vas_switch { vid = 0; tag = 0 })
      | None -> ())
    | Vas_reload (Attachment vh) | Cap_invoke { vh; _ } ->
      let tag = tag_of crossing in
      Core.set_page_table ctx.core ~tag (Some (Vmspace.page_table vh.vmspace));
      Core.set_pkru ctx.core Pkey.default;
      (match obs ctx with
      | Some r ->
        emit_to r ctx (Sj_obs.Event.Vas_switch { vid = Vas.vid vh.vas; tag })
      | None -> ())
    | Pkey_write { vid; key; pkru } ->
      Core.set_pkru ctx.core pkru;
      (match obs ctx with
      | Some r -> emit_to r ctx (Sj_obs.Event.Pkey_switch { vid; key; cycles })
      | None -> ())
end

(* The crossing a vas_switch into [vh] uses on this system. *)
let crossing_into ctx vh : Crossing.t =
  match (ctx.sys.backend, vh.cap_slot) with
  | Barrelfish, Some slot -> Crossing.Cap_invoke { vh; slot }
  | Barrelfish, None -> assert false
  | Dragonfly, _ -> Crossing.Vas_reload (Attachment vh)

let vas_switch_body ctx vh =
  if vh.detached then Error.fail Stale_handle ~op:"vas_switch" "detached handle";
  if not (Process.pid vh.owner = Process.pid ctx.proc) then
    Error.fail Permission_denied ~op:"vas_switch" "handle belongs to another process";
  let crossing = crossing_into ctx vh in
  Crossing.authorize ctx crossing;
  sync_attachment ctx vh;
  let previous = ctx.cur in
  leave_current ctx;
  (try enter ctx vh
   with Error.Fault f as e when f.code = Error.Would_block ->
     (* Roll back: re-enter the space the thread was in. *)
     (match previous with Some prev -> enter ctx prev | None -> ());
     raise e);
  Crossing.commit ctx crossing;
  Log.debug (fun m ->
      m "vas_switch pid %d core %d -> %s (tag %d)" (Process.pid ctx.proc) (Core.id ctx.core)
        (Vas.name vh.vas) (Crossing.tag_of crossing));
  Registry.count_switch ctx.sys.reg

let vas_switch_c ctx vh = call ctx Vas_switch (fun () -> vas_switch_body ctx vh)

let switch_home_body ctx =
  leave_current ctx;
  Crossing.commit ctx (Crossing.Vas_reload Home);
  Registry.count_switch ctx.sys.reg

let switch_home_c ctx = call ctx Vas_switch_home (fun () -> switch_home_body ctx)
let switch_home ctx = ok_exn (switch_home_c ctx)

let vas_detach_body ctx vh =
  if vh.detached then Error.fail Stale_handle ~op:"vas_detach" "already detached";
  (match ctx.cur with
  | Some cur when cur == vh -> switch_home ctx
  | Some _ | None -> ());
  (* Another thread of the process may still be switched into this
     attachment; destroying the vmspace under it would turn its next
     load into a wild access. Transient by nature (the occupant leaves
     or dies), so refuse with Would_block rather than a hard fault. *)
  if vh.entered > 0 then
    Error.failf Would_block ~op:"vas_detach" "attachment to %s entered by %d other thread%s"
      (Vas.name vh.vas) vh.entered
      (if vh.entered = 1 then "" else "s");
  (match vh.cap_slot with
  | Some slot -> Cap.Cspace.delete (Process.cspace ctx.proc) slot
  | None -> ());
  List.iter (fun (sid, _) -> Registry.forget_mapping ctx.sys.reg ~sid vh.vmspace) vh.mapped;
  List.iter
    (fun (seg, _) -> Registry.forget_mapping ctx.sys.reg ~sid:(Segment.sid seg) vh.vmspace)
    vh.local_segs;
  Vmspace.destroy vh.vmspace ~charge_to:(Some ctx.core);
  ctx.attachments <- List.filter (fun v -> not (v == vh)) ctx.attachments;
  vh.detached <- true

let vas_detach_c ctx vh = call ctx Vas_detach (fun () -> vas_detach_body ctx vh)
let vas_detach ctx vh = ok_exn (vas_detach_c ctx vh)

let vas_ctl_c ctx cmd =
  (* [`Destroy] is its own ABI entry (vas_delete); the rest share vas_ctl. *)
  let nr : Sys.nr = match cmd with `Destroy _ -> Vas_delete | _ -> Vas_ctl in
  call ctx nr (fun () ->
      match cmd with
      | `Request_tag vas ->
        let tag = Registry.alloc_tag ~charge_to:ctx.core ctx.sys.reg in
        Vas.assign_tag vas tag;
        (match obs ctx with
        | Some r ->
          emit_to r ctx (Sj_obs.Event.Tag_assign { vid = Vas.vid vas; tag })
        | None -> ())
      | `Chmod (vas, mode) ->
        check_acl ctx (Vas.acl vas) `Write ~op:"vas_ctl" "chmod: VAS not writable";
        Vas.set_acl vas (Acl.chmod (Vas.acl vas) ~mode)
      | `Revoke vas -> Cap.revoke (Registry.root_cap ctx.sys.reg vas)
      | `Destroy vas ->
        check_acl ctx (Vas.acl vas) `Write ~op:"vas_delete" "VAS not writable";
        (* The ASID goes back to the registry's free list for reuse;
           the next owner's alloc takes the recycle-flush path. *)
        (match Vas.tag vas with
        | Some tag -> Registry.release_tag ctx.sys.reg tag
        | None -> ());
        Registry.unregister_vas ctx.sys.reg vas;
        Vas.destroy vas)

let exit_process_c ctx =
  call ctx Proc_exit (fun () ->
      (* Orderly death: leave whatever space the thread is in (releasing the
         attachment's locks if it is the last thread out), tear down every
         attachment this context created (their vmspaces and registry
         mapping records), then let the kernel reclaim the process. VASes
         and segments the process created live on (sec 3.2). The detaches
         go through the ABI table like any runtime-issued call. *)
      (match ctx.cur with Some _ -> switch_home ctx | None -> ());
      (* The whole process is exiting: force any sibling thread still
         switched into one of our attachments out first (the last
         thread out releases the attachment's locks), so the detaches
         below never destroy a vmspace under a live occupant. *)
      let pid = Process.pid ctx.proc in
      List.iter
        (fun cx ->
          if cx != ctx && Process.pid cx.proc = pid then begin
            (match cx.cur with
            | Some vh ->
              vh.entered <- vh.entered - 1;
              if vh.entered = 0 then ignore (reclaim_locks ctx ~pid vh);
              cx.cur <- None
            | None -> ());
            Core.set_pkru cx.core Pkey.default;
            Core.set_fault_handler cx.core None;
            Core.set_page_table cx.core None
          end)
        ctx.sys.ctxs;
      List.iter (fun vh -> if not vh.detached then vas_detach ctx vh) ctx.attachments;
      reclaim_pkeys ctx ~pid:(Process.pid ctx.proc);
      Core.set_pkru ctx.core Pkey.default;
      Core.set_fault_handler ctx.core None;
      Core.set_page_table ctx.core None;
      let pid = Process.pid ctx.proc in
      ctx.sys.ctxs <- List.filter (fun cx -> Process.pid cx.proc <> pid) ctx.sys.ctxs;
      Process.exit ctx.proc;
      Log.debug (fun m -> m "process %d exited" pid))

(* Explicitly crash a process / thread — the same teardown the fault
   injector runs on an injected kill, dispatched as the proc_crash ABI
   entry (the kernel fields the death; the dead process issues
   nothing). *)
let crash_process_c ctx = call ctx Proc_crash (fun () -> crash_teardown ctx)
let crash_thread_c ctx = call ctx Proc_crash (fun () -> crash_thread_teardown ctx)

(* -------------------- Protection-key compartments -------------------- *)

(* The register image for compartment [key]: every key except 0 and
   [key] denied. Key 0 — the untagged default — stays accessible so the
   common region (text, globals, stacks) keeps working inside the
   compartment. *)
let compartment_pkru key =
  if key = 0 then Pkey.default
  else begin
    let reg = ref Pkey.default in
    for k = 1 to Pkey.max_key do
      if k <> key then reg := Pkey.set !reg ~key:k Pkey.Denied
    done;
    !reg
  end

let pkey_alloc_c ctx vas =
  call ctx Pkey_alloc (fun () ->
      check_acl ctx (Vas.acl vas) `Write ~op:"pkey_alloc" "VAS not writable";
      let key = Vas.alloc_key vas ~pid:(Process.pid ctx.proc) in
      Log.debug (fun m ->
          m "pkey_alloc %d in VAS %s by pid %d" key (Vas.name vas)
            (Process.pid ctx.proc));
      key)

let pkey_assign_c ctx vas seg ~key =
  call ctx Pkey_assign (fun () ->
      check_acl ctx (Vas.acl vas) `Write ~op:"pkey_assign" "VAS not writable";
      check_acl ctx (Segment.acl seg) `Write ~op:"pkey_assign"
        "segment not writable";
      if key < 0 || key > Pkey.max_key then
        Error.failf Invalid ~op:"pkey_assign" "key %d out of range 0..%d" key
          Pkey.max_key;
      if key <> 0 && Vas.key_owner vas ~key = None then
        Error.fail Unknown_name ~op:"pkey_assign" "key not allocated in this VAS";
      if Vas.find_segment_by_sid vas (Segment.sid seg) = None then
        Error.fail Unknown_name ~op:"pkey_assign" "segment not attached to this VAS";
      if Segment.translation_cache seg <> None then
        Error.fail Invalid ~op:"pkey_assign"
          "segments with cached translations cannot be key-tagged (the shared \
           page-table subtree would leak the tag into every VAS grafting it)";
      Vas.assign_seg_key vas ~sid:(Segment.sid seg) ~key;
      (* Rewrite the key tag in every live mapping, then shoot down
         machine-wide (one IPI per core). Key *rights* changes need no
         flush — rights live in the register and are checked at every
         TLB hit — but the *tag* lives in PTEs and is cached with them,
         so retagging must invalidate. Attachments created later pick
         the tag up at map time. *)
      let c = cost ctx in
      List.iter
        (fun vms ->
          Vmspace.set_region_key vms ~charge_to:(Some ctx.core)
            ~base:(Segment.base seg) ~key)
        (Registry.mappings ctx.sys.reg ~sid:(Segment.sid seg));
      Array.iter
        (fun core ->
          Sj_tlb.Tlb.flush_nonglobal (Core.tlb core);
          Core.charge ctx.core c.cacheline_cross)
        (Machine.cores ctx.sys.machine))

let pkey_switch_body ctx ~key =
  if key < 0 || key > Pkey.max_key then
    Error.failf Invalid ~op:"pkey_switch" "key %d out of range 0..%d" key
      Pkey.max_key;
  let vid = match ctx.cur with Some vh -> Vas.vid vh.vas | None -> 0 in
  if key <> 0 then begin
    let vas =
      match ctx.cur with
      | Some vh -> vh.vas
      | None ->
        Error.fail Invalid ~op:"pkey_switch"
          "no VAS installed: compartments live inside a VAS"
    in
    if Vas.key_owner vas ~key = None then
      Error.fail Unknown_name ~op:"pkey_switch" "key not allocated in this VAS"
  end;
  Crossing.commit ctx (Crossing.Pkey_write { vid; key; pkru = compartment_pkru key })

let pkey_switch_c ctx ~key = call ctx Pkey_switch (fun () -> pkey_switch_body ctx ~key)

(* -------------------- Segment API -------------------- *)

let seg_alloc_body ?(huge = false) ?(tier = `Performance) ctx ~name ~base ~size ~mode =
  let cred = Process.cred ctx.proc in
  let acl =
    Acl.create ~owner:cred.uid
      ~group:(List.nth_opt cred.gids 0 |> Option.value ~default:0)
      ~mode
  in
  let node =
    match tier with
    | `Performance -> None
    | `Capacity -> (
      match Machine.capacity_node ctx.sys.machine with
      | Some n -> Some n
      | None -> Error.fail Invalid ~op:"seg_alloc" "this platform has no capacity tier")
  in
  let seg =
    Segment.create ~huge ?node ~acl ~charge_to:(Some ctx.core) ~machine:ctx.sys.machine ~name
      ~base ~size ~prot:Prot.rw ()
  in
  Registry.register_seg ctx.sys.reg seg;
  seg

let seg_alloc_c ?huge ?tier ctx ~name ~base ~size ~mode =
  call ctx Seg_alloc (fun () -> seg_alloc_body ?huge ?tier ctx ~name ~base ~size ~mode)

let seg_alloc_anywhere_c ?huge ?tier ctx ~name ~size ~mode =
  call ctx Seg_alloc (fun () ->
      let base = Layout.next_global_base (Machine.sim_ctx ctx.sys.machine) ~size in
      seg_alloc_body ?huge ?tier ctx ~name ~base ~size ~mode)

let seg_find_c ctx ~name = call ctx Seg_find (fun () -> Registry.find_seg ctx.sys.reg ~name)

let seg_attach_c ctx vas seg ~prot =
  call ctx Seg_attach (fun () ->
      check_acl ctx (Vas.acl vas) `Write ~op:"seg_attach" "VAS not writable";
      check_acl ctx (Segment.acl seg)
        (if (prot : Prot.t).write then `Write else `Read)
        ~op:"seg_attach" "segment access denied";
      Vas.attach_segment vas seg ~prot)

let seg_attach_local_c ctx vh seg ~prot =
  call ctx Seg_attach_local (fun () ->
      if vh.detached then Error.fail Stale_handle ~op:"seg_attach_local" "detached handle";
      check_acl ctx (Segment.acl seg)
        (if (prot : Prot.t).write then `Write else `Read)
        ~op:"seg_attach_local" "segment access denied";
      Vmspace.map_object vh.vmspace ~charge_to:(Some ctx.core) ~base:(Segment.base seg)
        ~name:(Segment.name seg) ~cow:(Segment.is_cow seg) ~prot (Segment.vm_object seg);
      Registry.note_mapping ctx.sys.reg ~sid:(Segment.sid seg) vh.vmspace;
      vh.local_segs <- (seg, prot) :: vh.local_segs)

let seg_detach_c ctx vas seg =
  call ctx Seg_detach (fun () ->
      check_acl ctx (Vas.acl vas) `Write ~op:"seg_detach" "VAS not writable";
      Vas.detach_segment vas seg)

let seg_detach_local_c ctx vh seg =
  call ctx Seg_detach_local (fun () ->
      if not (List.exists (fun (s, _) -> Segment.sid s = Segment.sid seg) vh.local_segs) then
        Error.fail Unknown_name ~op:"seg_detach_local" "not attached locally";
      Vmspace.unmap_region vh.vmspace ~charge_to:(Some ctx.core) ~base:(Segment.base seg);
      Registry.forget_mapping ctx.sys.reg ~sid:(Segment.sid seg) vh.vmspace;
      vh.local_segs <-
        List.filter (fun (s, _) -> Segment.sid s <> Segment.sid seg) vh.local_segs)

let seg_clone_c ctx seg ~name =
  call ctx Seg_clone (fun () ->
      check_acl ctx (Segment.acl seg) `Read ~op:"seg_clone" "segment not readable";
      (* The documented refusals, each a typed fault: the clone is a
         plain 4 KiB-backed segment, so sources whose identity lives in
         shared page tables (cached translations) or 2 MiB mappings
         cannot be represented faithfully. COW sources are fine — the
         clone break-and-copies: it *reads* the shared frames (reads
         never split a CoW page) into its own fresh frames, leaving the
         source's sharing with its snapshot/fork family intact. *)
      if Segment.translation_cache seg <> None then
        Error.fail Invalid ~op:"seg_clone"
          "segments with cached translations cannot be cloned (the copy cannot \
           share the pre-built page tables)";
      if Segment.page_size seg = Page_table.P2M then
        Error.fail Invalid ~op:"seg_clone"
          "huge-page segments cannot be cloned (the copy would be 4 KiB-backed \
           at the same 2 MiB-aligned base)";
      let cred = Process.cred ctx.proc in
      let acl = Acl.create ~owner:cred.uid ~group:0 ~mode:0o600 in
      let clone =
        Segment.create ~acl ~charge_to:(Some ctx.core) ~machine:ctx.sys.machine ~name
          ~base:(Segment.base seg) ~size:(Segment.size seg) ~prot:(Segment.prot_max seg) ()
      in
      (* Copy contents frame by frame, charging a copy cost per page. *)
      let mem = Machine.mem ctx.sys.machine in
      let src = Segment.vm_object seg and dst = Segment.vm_object clone in
      let c = cost ctx in
      for p = 0 to Segment.pages seg - 1 do
        let data =
          Sj_mem.Phys_mem.read_bytes mem
            ~pa:(Sj_mem.Phys_mem.base_of_frame (Vm_object.frame_at src ~page:p))
            ~len:Addr.page_size
        in
        Sj_mem.Phys_mem.write_bytes mem
          ~pa:(Sj_mem.Phys_mem.base_of_frame (Vm_object.frame_at dst ~page:p))
          data;
        Core.charge ctx.core c.page_zero
      done;
      Registry.register_seg ctx.sys.reg clone;
      clone)

let seg_snapshot_c ctx seg ~name =
  call ctx Seg_snapshot (fun () ->
      check_acl ctx (Segment.acl seg) `Read ~op:"seg_snapshot" "segment not readable";
      if Segment.translation_cache seg <> None then
        Error.fail Invalid ~op:"seg_snapshot"
          "segments with cached translations cannot be snapshotted (shared page tables \
           cannot be write-protected per attachment)";
      let cred = Process.cred ctx.proc in
      let acl = Acl.create ~owner:cred.uid ~group:0 ~mode:0o600 in
      (* Share every physical page copy-on-write. *)
      let clone_obj = Vm_object.cow_clone ~name (Segment.vm_object seg) in
      let snap =
        Segment.create_with_object ~acl ~machine:ctx.sys.machine ~name
          ~base:(Segment.base seg) ~prot:(Segment.prot_max seg) clone_obj
      in
      Segment.mark_cow seg;
      Segment.mark_cow snap;
      (* Write-protect the original wherever it is currently mapped, and
         shoot down stale writable TLB entries machine-wide (one IPI per
         core). *)
      let c = cost ctx in
      List.iter
        (fun vms ->
          Vmspace.write_protect_region vms ~charge_to:(Some ctx.core)
            ~base:(Segment.base seg))
        (Registry.mappings ctx.sys.reg ~sid:(Segment.sid seg));
      Array.iter
        (fun core ->
          Sj_tlb.Tlb.flush_nonglobal (Core.tlb core);
          Core.charge ctx.core c.cacheline_cross)
        (Machine.cores ctx.sys.machine);
      (* The snapshot inherits the allocator state frozen at this instant. *)
      if Registry.has_heap ctx.sys.reg seg then begin
        let orig = Registry.heap ctx.sys.reg seg in
        let copy =
          Mspace.of_snapshot ~base:(Segment.base seg) ~size:(Segment.size seg)
            (Mspace.snapshot orig)
        in
        Registry.set_heap ctx.sys.reg snap copy
      end;
      Registry.register_seg ctx.sys.reg snap;
      Log.info (fun m ->
          m "seg_snapshot %s -> %s (%d pages shared COW)" (Segment.name seg) name
            (Segment.pages seg));
      snap)

let seg_ctl_c ctx cmd =
  (* [`Destroy] is its own ABI entry (seg_delete); the rest share seg_ctl. *)
  let nr : Sys.nr = match cmd with `Destroy _ -> Seg_delete | _ -> Seg_ctl in
  call ctx nr (fun () ->
      match cmd with
      | `Grow (seg, by) ->
        check_acl ctx (Segment.acl seg) `Write ~op:"seg_ctl" "grow: segment not writable";
        (match Injector.active (Machine.sim_ctx ctx.sys.machine) with
        | Some inj when Injector.on_grow inj ->
          Error.fail Capacity ~op:"seg_ctl" "injected allocation failure on grow"
        | Some _ | None -> ());
        let grown = Segment.grow seg ~by ~charge_to:(Some ctx.core) in
        (* The shared heap (if any) gains the new space too. *)
        if Registry.has_heap ctx.sys.reg seg then
          Mspace.extend (Registry.heap ctx.sys.reg seg) ~by:grown;
        (* Attachments pick the growth up at their next switch. *)
        List.iter
          (fun vas ->
            if Vas.find_segment_by_sid vas (Segment.sid seg) <> None then
              Vas.bump_generation vas)
          (Registry.list_vases ctx.sys.reg);
        Log.debug (fun m -> m "seg_grow %s by %s" (Segment.name seg) (Size.to_string grown))
      | `Chmod (seg, mode) ->
        check_acl ctx (Segment.acl seg) `Write ~op:"seg_ctl" "chmod: segment not writable";
        Segment.set_acl seg (Acl.chmod (Segment.acl seg) ~mode)
      | `Cache_translations seg ->
        Segment.build_translation_cache seg ~charge_to:(Some ctx.core)
      | `Destroy seg ->
        check_acl ctx (Segment.acl seg) `Write ~op:"seg_delete" "segment not writable";
        Registry.unregister_seg ctx.sys.reg seg;
        Segment.destroy seg)

(* -------------------- Runtime heaps -------------------- *)

exception Out_of_memory = Sj_mem.Phys_mem.Out_of_memory

let segments_of_current ctx =
  match ctx.cur with
  | None -> []
  | Some vh -> List.map (fun (s, p) -> (s, p)) (Vas.segments vh.vas) @ vh.local_segs

let malloc_c ctx ?seg n =
  call ctx Heap_malloc (fun () ->
      let seg, prot =
        match seg with
        | Some s -> (
          match
            List.find_opt
              (fun (s', _) -> Segment.sid s' = Segment.sid s)
              (segments_of_current ctx)
          with
          | Some sp -> sp
          | None ->
            Error.fail Invalid ~op:"malloc" "segment not attached in the current address space")
        | None -> (
          match
            List.find_opt
              (fun ((_ : Segment.t), (p : Prot.t)) -> p.write)
              (segments_of_current ctx)
          with
          | Some sp -> sp
          | None ->
            Error.fail Invalid ~op:"malloc" "no writable segment in the current address space")
      in
      if not (prot : Prot.t).write then
        Error.fail Invalid ~op:"malloc" "segment mapped read-only";
      let heap = Registry.heap ctx.sys.reg seg in
      match Mspace.malloc heap n with
      | Some va -> va
      | None -> Error.fail Capacity ~op:"malloc" "mspace exhausted")

let free_c ctx va =
  call ctx Heap_free (fun () ->
      match
        List.find_opt
          (fun ((s : Segment.t), _) ->
            Addr.range_contains ~base:(Segment.base s) ~size:(Segment.size s) va)
          (segments_of_current ctx)
      with
      | None ->
        Error.fail Invalid ~op:"free" "address not within any segment of the current address space"
      | Some (seg, _) -> (
        let heap = Registry.heap ctx.sys.reg seg in
        try Mspace.free heap va
        with Invalid_argument m -> Error.fail Invalid ~op:"free" m))

(* -------------------- Result-typed surface -------------------- *)

module Checked = struct
  let vas_create = vas_create_c
  let vas_find = vas_find_c
  let vas_clone = vas_clone_c
  let vas_attach = vas_attach_c
  let vas_detach = vas_detach_c
  let vas_switch = vas_switch_c
  let switch_home = switch_home_c
  let vas_ctl = vas_ctl_c
  let exit_process = exit_process_c
  let crash_process = crash_process_c
  let crash_thread = crash_thread_c

  (* Bounded deterministic retry around transient [Would_block] on
     vas_switch. Attempt k waits k * backoff_cycles before retrying
     (linear backoff), charged to the calling core in simulated cycles
     — pure simulation state, so -j 1 and -j N runs are byte-identical.
     Any other fault, or Would_block past the attempt budget, is
     returned to the caller. *)
  let switch_retry ?(attempts = 8) ?(backoff_cycles = 1_000) ctx vh =
    let rec go k =
      match vas_switch_c ctx vh with
      | Ok () -> Ok ()
      | Error f when f.code = Error.Would_block && k < attempts ->
        let backoff = k * backoff_cycles in
        Core.charge ctx.core backoff;
        (match obs ctx with
        | Some r ->
          emit_to r ctx
            (Sj_obs.Event.Switch_retry
               { vid = Vas.vid vh.vas; attempt = k; backoff })
        | None -> ());
        go (k + 1)
      | Error f -> Error f
    in
    go 1
  let seg_alloc = seg_alloc_c
  let seg_alloc_anywhere = seg_alloc_anywhere_c
  let seg_find = seg_find_c
  let seg_attach = seg_attach_c
  let seg_attach_local = seg_attach_local_c
  let seg_detach = seg_detach_c
  let seg_detach_local = seg_detach_local_c
  let seg_clone = seg_clone_c
  let seg_snapshot = seg_snapshot_c
  let seg_ctl = seg_ctl_c
  let malloc = malloc_c
  let free = free_c
  let pkey_alloc = pkey_alloc_c
  let pkey_assign = pkey_assign_c
  let pkey_switch = pkey_switch_c
  let vas_fork = vas_fork_c
  let proc_fork = proc_fork_c
end

(* -------------------- Legacy exception-style surface -------------------- *)

let vas_create ctx ~name ~mode = ok_exn (vas_create_c ctx ~name ~mode)
let vas_find ctx ~name = ok_exn (vas_find_c ctx ~name)
let vas_clone ctx vas ~name = ok_exn (vas_clone_c ctx vas ~name)
let vas_attach ctx vas = ok_exn (vas_attach_c ctx vas)
let vas_switch ctx vh = ok_exn (vas_switch_c ctx vh)
let vas_ctl ctx cmd = ok_exn (vas_ctl_c ctx cmd)
let exit_process ctx = ok_exn (exit_process_c ctx)
let crash_process ctx = ok_exn (crash_process_c ctx)
let crash_thread ctx = ok_exn (crash_thread_c ctx)

let seg_alloc ?huge ?tier ctx ~name ~base ~size ~mode =
  ok_exn (seg_alloc_c ?huge ?tier ctx ~name ~base ~size ~mode)

let seg_alloc_anywhere ?huge ?tier ctx ~name ~size ~mode =
  ok_exn (seg_alloc_anywhere_c ?huge ?tier ctx ~name ~size ~mode)

let seg_find ctx ~name = ok_exn (seg_find_c ctx ~name)
let seg_attach ctx vas seg ~prot = ok_exn (seg_attach_c ctx vas seg ~prot)
let seg_attach_local ctx vh seg ~prot = ok_exn (seg_attach_local_c ctx vh seg ~prot)
let seg_detach ctx vas seg = ok_exn (seg_detach_c ctx vas seg)
let seg_detach_local ctx vh seg = ok_exn (seg_detach_local_c ctx vh seg)
let seg_clone ctx seg ~name = ok_exn (seg_clone_c ctx seg ~name)
let seg_snapshot ctx seg ~name = ok_exn (seg_snapshot_c ctx seg ~name)
let seg_ctl ctx cmd = ok_exn (seg_ctl_c ctx cmd)
let malloc ctx ?seg n = ok_exn (malloc_c ctx ?seg n)
let free ctx va = ok_exn (free_c ctx va)
let pkey_alloc ctx vas = ok_exn (pkey_alloc_c ctx vas)
let pkey_assign ctx vas seg ~key = ok_exn (pkey_assign_c ctx vas seg ~key)
let pkey_switch ctx ~key = ok_exn (pkey_switch_c ctx ~key)
let vas_fork ctx vh ~name = ok_exn (vas_fork_c ctx vh ~name)
let proc_fork ?name ctx ~core = ok_exn (proc_fork_c ?name ctx ~core)

(* -------------------- Data access -------------------- *)

(* A key-denied access surfaces as the typed [Key_violation] fault. The
   event carries the page's key tag, recovered by walking the installed
   tables — the denial changed no state, so the walk sees exactly what
   the hardware checked. *)
let key_violation ctx ~va ~write =
  let vms =
    match ctx.cur with
    | Some vh -> vh.vmspace
    | None -> Process.primary_vmspace ctx.proc
  in
  let key =
    match Page_table.walk (Vmspace.page_table vms) ~va with
    | Some m -> m.key
    | None -> 0
  in
  (match obs ctx with
  | Some r -> emit_to r ctx (Sj_obs.Event.Key_violation { va; key; write })
  | None -> ());
  Error.failf Key_violation
    ~op:(if write then "store" else "load")
    "key %d denies %s access at 0x%x" key
    (if write then "write" else "read")
    va

let load64 ctx ~va =
  try Core.load64 ctx.core ~va
  with Machine.Key_fault _ -> key_violation ctx ~va ~write:false

let store64 ctx ~va v =
  try Core.store64 ctx.core ~va v
  with Machine.Key_fault _ -> key_violation ctx ~va ~write:true

let load_bytes ctx ~va ~len =
  try Core.load_bytes ctx.core ~va ~len
  with Machine.Key_fault f -> key_violation ctx ~va:f.va ~write:false

let store_bytes ctx ~va data =
  try Core.store_bytes ctx.core ~va data
  with Machine.Key_fault f -> key_violation ctx ~va:f.va ~write:true
