(** Bounded ring buffer of {!Event.t}.

    Overwrites oldest events when full (keeping the most recent
    [capacity]); overwritten events are counted, not silently lost.
    Owned by exactly one {!Recorder} and not separately thread-safe. *)

type t

val create : int -> t
(** [create capacity] — capacity is clamped to at least 1. *)

val capacity : t -> int
val length : t -> int
(** Events currently held (≤ capacity). *)

val dropped : t -> int
(** Events overwritten because the ring was full. *)

val push : t -> Event.t -> unit

val to_list : t -> Event.t list
(** Retained events, oldest first. *)

val iter : t -> (Event.t -> unit) -> unit
val clear : t -> unit
