(** Aggregated counters and histograms over the event stream.

    One instance per {!Recorder}; every emitted event updates it, so the
    metrics cover the whole run even when the ring buffer has wrapped.
    Deterministic: a pure function of the event sequence. *)

type t

val create : unit -> t

val record : t -> Event.kind -> unit
(** Fold one event into the aggregates. [Syscall_enter] is a no-op
    (cycle deltas arrive with the matching [Syscall_exit]). *)

val syscall_rows : t -> (int * string * int * int * int * Hist.t) list
(** [(nr, name, calls, faults, total_cycles, hist)] for every dispatch
    entry that was called at least once, ascending by number. *)

val crashes : t -> int
(** Processes torn down involuntarily ([Proc_crash] events). *)

val lock_reclaims : t -> int
(** Segment locks force-released from dead holders ([Lock_reclaim]). *)

val switch_retries : t -> int
(** Backoffs taken by [Checked.switch_retry] ([Switch_retry] events) —
    the visible cost of vas_switch contention. *)

val switch_retry_cycles : t -> int
(** Total simulated cycles charged as retry backoff. *)

val describe : t -> string
(** Human-readable multi-line summary ([sjctl stats]). *)

val to_json : t -> string
(** The same summary as a JSON object ([sjctl stats --json]). *)
