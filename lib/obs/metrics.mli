(** Aggregated counters and histograms over the event stream.

    One instance per {!Recorder}; every emitted event updates it, so the
    metrics cover the whole run even when the ring buffer has wrapped.
    Deterministic: a pure function of the event sequence. *)

type t

val create : unit -> t

val record : t -> Event.kind -> unit
(** Fold one event into the aggregates. [Syscall_enter] is a no-op
    (cycle deltas arrive with the matching [Syscall_exit]). *)

val syscall_rows : t -> (int * string * int * int * int * Hist.t) list
(** [(nr, name, calls, faults, total_cycles, hist)] for every dispatch
    entry that was called at least once, ascending by number. *)

val vas_switches : t -> int
(** Address-space switches committed ([Vas_switch] events). *)

val lock_acquires : t -> int
(** Successful segment-lock acquisitions ([Seg_lock] with
    [acquired = true]) — one side of the explorer's lock-balance
    invariant. *)

val lock_releases : t -> int
(** Voluntary segment unlocks ([Seg_unlock] events). *)

val tag_assigns : t -> int
(** ASID/tag grants ([Tag_assign] events). *)

val tag_recycles : t -> int
(** Tags re-issued from the free list ([Tag_recycle] events). *)

val tlb_flushes : t -> int
(** Full and tagged TLB flushes ([Tlb_flush] events other than
    single-page invalidations) — the counter the compartment bench
    audits for zero during pkey crossings. *)

val page_invalidations : t -> int
(** Single-page TLB shootdowns ([Tlb_flush] with [Flush_page]). *)

val crashes : t -> int
(** Processes torn down involuntarily ([Proc_crash] events). *)

val lock_reclaims : t -> int
(** Segment locks force-released from dead holders ([Lock_reclaim]). *)

val switch_retries : t -> int
(** Backoffs taken by [Checked.switch_retry] ([Switch_retry] events) —
    the visible cost of vas_switch contention. *)

val switch_retry_cycles : t -> int
(** Total simulated cycles charged as retry backoff. *)

val pkey_switches : t -> int
(** Compartment crossings ([Pkey_switch] events) — the pkey analogue of
    the vas_switch counter. *)

val pkey_switch_cycles : t -> int
(** Total simulated cycles charged to pkey switches (WRPKRU +
    bookkeeping; no CR3, no flush). *)

val key_violations : t -> int
(** Accesses denied by the key register ([Key_violation] events). *)

val forks : t -> int
(** Fork operations ([Fork] events, vas_fork and proc_fork alike). *)

val cow_faults : t -> int
(** Copy-on-write write faults broken ([Cow_fault] events). *)

val cow_copies : t -> int
(** CoW faults that needed a frame copy ([Cow_fault] with
    [copied = true]; the rest privatized a sole-owner frame in place). *)

val describe : t -> string
(** Human-readable multi-line summary ([sjctl stats]). *)

val to_json : t -> string
(** The same summary as a JSON object ([sjctl stats --json]). *)
