(* Bounded ring buffer of events. When full, the oldest events are
   overwritten and counted in [dropped]; the trace therefore always
   holds the most recent [capacity] events, which is what you want when
   replaying the tail of a long run. Not thread-safe on its own — each
   ring belongs to one recorder, which belongs to one Sim_ctx, which is
   owned by one domain at a time. *)

type t = {
  buf : Event.t array;
  capacity : int;
  mutable next : int;  (* total events ever pushed *)
}

let dummy : Event.t =
  { seq = -1; core = -1; cycles = 0; kind = Event.Tag_recycle { tag = -1 } }

let create capacity =
  let capacity = max 1 capacity in
  { buf = Array.make capacity dummy; capacity; next = 0 }

let capacity t = t.capacity
let length t = min t.next t.capacity
let dropped t = max 0 (t.next - t.capacity)

let push t e =
  t.buf.(t.next mod t.capacity) <- e;
  t.next <- t.next + 1

(* Oldest-first. *)
let to_list t =
  let n = length t in
  let first = t.next - n in
  List.init n (fun i -> t.buf.((first + i) mod t.capacity))

let iter t f = List.iter f (to_list t)

let clear t =
  Array.fill t.buf 0 t.capacity dummy;
  t.next <- 0
