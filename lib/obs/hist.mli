(** Log2-bucketed histogram of non-negative integers (simulated cycles).

    Bucket [i] covers values of bit length [i]: bucket 0 is exactly
    [{0}], bucket [i >= 1] covers [2^(i-1) .. 2^i - 1]. Deterministic:
    the histogram state is a pure function of the sample sequence. *)

type t

val create : unit -> t
val add : t -> int -> unit
(** Negative samples are clamped to 0. *)

val count : t -> int
val sum : t -> int
val min_value : t -> int
val max_value : t -> int
val mean : t -> float

val quantile : t -> float -> int
(** [quantile t q] — upper bound of the first bucket at or below which a
    fraction [q] of samples fall; precise to a power of two. *)

val nonzero_buckets : t -> (int * int) list
(** [(bucket_upper_bound, count)] pairs, ascending, empty buckets
    omitted. *)

val clear : t -> unit
