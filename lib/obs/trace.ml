(* Chrome trace-event JSON export (the JSON-object format understood by
   chrome://tracing and Perfetto). Syscall enter/exit become duration
   begin/end pairs ("B"/"E"); everything else is a thread-scoped instant
   ("i"). [ts] is the event's simulated cycle count, [tid] the emitting
   core, so the rendered timeline is the simulated machine, not the
   host. Hand-rolled with Buffer — the toolchain has no JSON library,
   and the event payloads are all printf-safe scalars. *)

let event_json (e : Event.t) =
  let name = Event.name e.kind in
  let args = Event.args_json e.kind in
  let common = Printf.sprintf {|"name":%S,"ts":%d,"pid":0,"tid":%d|} name
      e.cycles e.core in
  match e.kind with
  | Event.Syscall_enter _ ->
      Printf.sprintf {|{%s,"ph":"B","args":%s}|} common args
  | Event.Syscall_exit _ ->
      Printf.sprintf {|{%s,"ph":"E","args":%s}|} common args
  | _ -> Printf.sprintf {|{%s,"ph":"i","s":"t","args":%s}|} common args

let to_chrome_json events =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n  ";
      Buffer.add_string b (event_json e))
    events;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents b

let to_text events =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string b (Event.to_string e);
      Buffer.add_char b '\n')
    events;
  Buffer.contents b

(* Minimal JSON well-formedness checker used by the trace-shape tests
   (and available to callers that want a sanity pass before shipping a
   file to Perfetto). Recursive descent over the full grammar; on
   success additionally requires a top-level object with a
   "traceEvents" array. *)

exception Bad of string

let check_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> bad "expected '%c' at %d, got '%c'" c !pos c'
    | None -> bad "expected '%c' at %d, got end of input" c !pos
  in
  let parse_string () =
    expect '"';
    let fin = ref false in
    while not !fin do
      match peek () with
      | None -> bad "unterminated string at %d" !pos
      | Some '"' -> advance (); fin := true
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> bad "bad \\u escape at %d" !pos
              done
          | _ -> bad "bad escape at %d" !pos)
      | Some _ -> advance ()
    done
  in
  let parse_number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits = ref 0 in
    let eat_digits () =
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        incr digits;
        advance ()
      done
    in
    eat_digits ();
    if !digits = 0 then bad "expected digit at %d" !pos;
    (match peek () with
    | Some '.' ->
        advance ();
        digits := 0;
        eat_digits ();
        if !digits = 0 then bad "expected fraction digit at %d" !pos
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits := 0;
        eat_digits ();
        if !digits = 0 then bad "expected exponent digit at %d" !pos
    | _ -> ()
  in
  let parse_literal lit =
    String.iter
      (fun c ->
        match peek () with
        | Some c' when c' = c -> advance ()
        | _ -> bad "expected %S at %d" lit !pos)
      lit
  in
  (* parse_value returns the set of member keys when the value is an
     object, so the caller can check for required keys. *)
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        let keys = ref [] in
        (match peek () with
        | Some '}' -> advance ()
        | _ ->
            let fin = ref false in
            while not !fin do
              skip_ws ();
              let kstart = !pos + 1 in
              parse_string ();
              keys := String.sub s kstart (!pos - kstart - 1) :: !keys;
              skip_ws ();
              expect ':';
              ignore (parse_value ());
              skip_ws ();
              match peek () with
              | Some ',' -> advance ()
              | Some '}' -> advance (); fin := true
              | _ -> bad "expected ',' or '}' at %d" !pos
            done);
        `Obj !keys
    | Some '[' ->
        advance ();
        skip_ws ();
        (match peek () with
        | Some ']' -> advance ()
        | _ ->
            let fin = ref false in
            while not !fin do
              ignore (parse_value ());
              skip_ws ();
              match peek () with
              | Some ',' -> advance ()
              | Some ']' -> advance (); fin := true
              | _ -> bad "expected ',' or ']' at %d" !pos
            done);
        `Arr
    | Some '"' -> parse_string (); `Other
    | Some ('-' | '0' .. '9') -> parse_number (); `Other
    | Some 't' -> parse_literal "true"; `Other
    | Some 'f' -> parse_literal "false"; `Other
    | Some 'n' -> parse_literal "null"; `Other
    | Some c -> bad "unexpected '%c' at %d" c !pos
    | None -> bad "unexpected end of input at %d" !pos
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then bad "trailing garbage at %d" !pos;
    v
  with
  | `Obj keys when List.mem "traceEvents" keys -> Ok ()
  | `Obj _ -> Error "top-level object lacks \"traceEvents\""
  | `Arr | `Other -> Error "top-level value is not an object"
  | exception Bad m -> Error m
