(* The per-simulation event recorder. A recorder hangs off the
   simulation's Sim_ctx through the extensible [Sim_ctx.obs] slot, so
   every layer that can see a core can reach the recorder without a
   dependency on this library's users — and two machines in two domains
   each record into their own ring with no shared mutable state.

   Emission discipline (see HACKING.md, "Observability"): call sites
   must match on [active ctx] and only construct the event inside the
   [Some] branch, so the disabled path allocates nothing and simulated
   cycles stay bit-identical with tracing off. *)

module Sim_ctx = Sj_util.Sim_ctx

type t = {
  mutable enabled : bool;
  ring : Ring.t;
  metrics : Metrics.t;
  mutable seq : int;
}

type Sim_ctx.obs += Recorder of t

let default_capacity = 65536

let create ?(capacity = default_capacity) () =
  { enabled = true; ring = Ring.create capacity; metrics = Metrics.create ();
    seq = 0 }

let attach ctx t = Sim_ctx.set_obs ctx (Some (Recorder t))

let of_ctx ctx =
  match Sim_ctx.obs ctx with Some (Recorder t) -> Some t | _ -> None

let active ctx =
  match Sim_ctx.obs ctx with
  | Some (Recorder t) when t.enabled -> Some t
  | _ -> None

let enabled t = t.enabled
let set_enabled t on = t.enabled <- on

let emit t ~core ~cycles kind =
  if t.enabled then begin
    let e : Event.t = { seq = t.seq; core; cycles; kind } in
    t.seq <- t.seq + 1;
    Metrics.record t.metrics kind;
    Ring.push t.ring e
  end

let events t = Ring.to_list t.ring
let dropped t = Ring.dropped t.ring
let metrics t = t.metrics

let clear t =
  Ring.clear t.ring;
  t.seq <- 0

(* Ambient default, read by Machine.create: [None] means machines boot
   with tracing off; [Some capacity] means every machine created in this
   dynamic extent gets a fresh enabled recorder. Domain-local (like
   Machine.with_fast_path) so parallel trials inherit their own copy and
   serial-vs-parallel runs behave identically. *)
let ambient : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let ambient_capacity () = Domain.DLS.get ambient

let with_tracing ?(capacity = default_capacity) on f =
  let prev = Domain.DLS.get ambient in
  Domain.DLS.set ambient (if on then Some capacity else None);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient prev) f
