(** Per-simulation event recorder.

    A recorder is attached to a simulation's [Sim_ctx] (through the
    extensible [Sim_ctx.obs] slot) and owns that simulation's event
    {!Ring} and {!Metrics}. Emitters reach it via [active ctx] and must
    construct events only inside the [Some] branch so the disabled path
    allocates nothing:

    {[
      (match Recorder.active ctx with
      | Some r -> Recorder.emit r ~core ~cycles (Event.Vas_switch { vid; tag })
      | None -> ())
    ]} *)

type t

type Sj_util.Sim_ctx.obs += Recorder of t

val default_capacity : int
(** 65536 events. *)

val create : ?capacity:int -> unit -> t
(** A fresh enabled recorder with an empty ring. *)

val attach : Sj_util.Sim_ctx.t -> t -> unit
val of_ctx : Sj_util.Sim_ctx.t -> t option
(** The attached recorder whether enabled or not. *)

val active : Sj_util.Sim_ctx.t -> t option
(** The attached recorder only if tracing is currently enabled — the
    emission guard. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val emit : t -> core:int -> cycles:int -> Event.kind -> unit
(** Stamp the event with the next sequence number, fold it into the
    metrics, and push it onto the ring. No-op when disabled. *)

val events : t -> Event.t list
(** Retained events, oldest first (the ring may have dropped earlier
    ones — see [dropped]). *)

val dropped : t -> int
val metrics : t -> Metrics.t

val clear : t -> unit
(** Empty the ring and reset the sequence counter; metrics keep
    accumulating. *)

val ambient_capacity : unit -> int option
(** Domain-local default consulted by [Machine.create]: [Some capacity]
    means new machines boot with an enabled recorder attached. *)

val with_tracing : ?capacity:int -> bool -> (unit -> 'a) -> 'a
(** [with_tracing on f] runs [f] with the ambient default set (like
    [Machine.with_fast_path]); domain-local, restored on exit. *)
