(* Aggregated counters and histograms fed from the event stream. One
   instance per recorder (so per Sim_ctx); updated on every emit, read
   by `sjctl stats` and tests. Syscall slots are indexed by dispatch
   number — 64 slots comfortably covers the ABI's 26 entries with room
   for growth. *)

let slots = 64

type t = {
  (* per-syscall, indexed by Sys.number *)
  sys_names : string array;
  sys_calls : int array;
  sys_faults : int array;
  sys_cycles : int array;
  sys_hist : Hist.t array;
  (* VAS / tag lifecycle *)
  mutable switches : int;
  mutable tag_assigns : int;
  mutable tag_recycles : int;
  (* TLB *)
  mutable flushes : int;
  mutable flushed_entries : int;
  mutable page_invalidations : int;
  (* segment locks *)
  mutable lock_acquires : int;
  mutable lock_conflicts : int;
  mutable lock_releases : int;
  (* faults / teardown *)
  mutable faults : int;
  mutable faults_resolved : int;
  mutable teardowns : int;
  mutable teardown_pte_clears : int;
  (* crash recovery *)
  mutable crashes : int;
  mutable lock_reclaims : int;
  (* vas_switch contention: bounded-retry backoffs (Checked.switch_retry) *)
  mutable switch_retries : int;
  mutable switch_retry_cycles : int;
  retry_hist : Hist.t;  (* backoff cycles per retry *)
  (* protection-key compartments *)
  mutable pkey_switches : int;
  mutable pkey_switch_cycles : int;
  mutable key_violations : int;
  (* fork / copy-on-write *)
  mutable forks : int;
  mutable cow_faults : int;
  mutable cow_copies : int;
}

let create () =
  {
    sys_names = Array.make slots "";
    sys_calls = Array.make slots 0;
    sys_faults = Array.make slots 0;
    sys_cycles = Array.make slots 0;
    sys_hist = Array.init slots (fun _ -> Hist.create ());
    switches = 0;
    tag_assigns = 0;
    tag_recycles = 0;
    flushes = 0;
    flushed_entries = 0;
    page_invalidations = 0;
    lock_acquires = 0;
    lock_conflicts = 0;
    lock_releases = 0;
    faults = 0;
    faults_resolved = 0;
    teardowns = 0;
    teardown_pte_clears = 0;
    crashes = 0;
    lock_reclaims = 0;
    switch_retries = 0;
    switch_retry_cycles = 0;
    retry_hist = Hist.create ();
    pkey_switches = 0;
    pkey_switch_cycles = 0;
    key_violations = 0;
    forks = 0;
    cow_faults = 0;
    cow_copies = 0;
  }

let record t (kind : Event.kind) =
  match kind with
  | Syscall_enter _ -> ()
  | Syscall_exit { nr; sname; cycles; ok } ->
      if nr >= 0 && nr < slots then begin
        t.sys_names.(nr) <- sname;
        t.sys_calls.(nr) <- t.sys_calls.(nr) + 1;
        if not ok then t.sys_faults.(nr) <- t.sys_faults.(nr) + 1;
        t.sys_cycles.(nr) <- t.sys_cycles.(nr) + cycles;
        Hist.add t.sys_hist.(nr) cycles
      end
  | Vas_switch _ -> t.switches <- t.switches + 1
  | Tag_assign _ -> t.tag_assigns <- t.tag_assigns + 1
  | Tag_recycle _ -> t.tag_recycles <- t.tag_recycles + 1
  | Tlb_flush { flush = Flush_page _; _ } ->
      t.page_invalidations <- t.page_invalidations + 1
  | Tlb_flush { entries; _ } ->
      t.flushes <- t.flushes + 1;
      t.flushed_entries <- t.flushed_entries + entries
  | Seg_lock { acquired = true; _ } -> t.lock_acquires <- t.lock_acquires + 1
  | Seg_lock { acquired = false; _ } ->
      t.lock_conflicts <- t.lock_conflicts + 1
  | Seg_unlock _ -> t.lock_releases <- t.lock_releases + 1
  | Page_fault { resolved; _ } ->
      t.faults <- t.faults + 1;
      if resolved then t.faults_resolved <- t.faults_resolved + 1
  | Pt_teardown { pte_clears } ->
      t.teardowns <- t.teardowns + 1;
      t.teardown_pte_clears <- t.teardown_pte_clears + pte_clears
  | Proc_crash _ -> t.crashes <- t.crashes + 1
  | Lock_reclaim _ -> t.lock_reclaims <- t.lock_reclaims + 1
  | Switch_retry { backoff; _ } ->
      t.switch_retries <- t.switch_retries + 1;
      t.switch_retry_cycles <- t.switch_retry_cycles + backoff;
      Hist.add t.retry_hist backoff
  | Pkey_switch { cycles; _ } ->
      t.pkey_switches <- t.pkey_switches + 1;
      t.pkey_switch_cycles <- t.pkey_switch_cycles + cycles
  | Key_violation _ -> t.key_violations <- t.key_violations + 1
  | Fork _ -> t.forks <- t.forks + 1
  | Cow_fault { copied; _ } ->
      t.cow_faults <- t.cow_faults + 1;
      if copied then t.cow_copies <- t.cow_copies + 1

let syscall_rows t =
  let out = ref [] in
  for nr = slots - 1 downto 0 do
    if t.sys_calls.(nr) > 0 then
      out :=
        ( nr,
          t.sys_names.(nr),
          t.sys_calls.(nr),
          t.sys_faults.(nr),
          t.sys_cycles.(nr),
          t.sys_hist.(nr) )
        :: !out
  done;
  !out

let vas_switches t = t.switches
let lock_acquires t = t.lock_acquires
let lock_releases t = t.lock_releases
let tag_assigns t = t.tag_assigns
let tag_recycles t = t.tag_recycles
let tlb_flushes t = t.flushes
let page_invalidations t = t.page_invalidations
let crashes t = t.crashes
let lock_reclaims t = t.lock_reclaims
let switch_retries t = t.switch_retries
let switch_retry_cycles t = t.switch_retry_cycles
let pkey_switches t = t.pkey_switches
let pkey_switch_cycles t = t.pkey_switch_cycles
let key_violations t = t.key_violations
let forks t = t.forks
let cow_faults t = t.cow_faults
let cow_copies t = t.cow_copies

let describe t =
  let b = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "syscalls:\n";
  p "  %-16s %8s %7s %12s %10s %10s %10s\n" "name" "calls" "faults" "cycles"
    "mean" "p50" "max";
  List.iter
    (fun (_, name, calls, faults, cycles, hist) ->
      p "  %-16s %8d %7d %12d %10.1f %10d %10d\n" name calls faults cycles
        (Hist.mean hist)
        (Hist.quantile hist 0.5)
        (Hist.max_value hist))
    (syscall_rows t);
  p "vas:      switches=%d tag_assigns=%d tag_recycles=%d\n" t.switches
    t.tag_assigns t.tag_recycles;
  p "tlb:      flushes=%d flushed_entries=%d page_invalidations=%d\n"
    t.flushes t.flushed_entries t.page_invalidations;
  p "locks:    acquires=%d conflicts=%d releases=%d\n" t.lock_acquires
    t.lock_conflicts t.lock_releases;
  p "faults:   total=%d resolved=%d\n" t.faults t.faults_resolved;
  p "teardown: vmspaces=%d pte_clears=%d\n" t.teardowns t.teardown_pte_clears;
  if t.crashes > 0 || t.lock_reclaims > 0 then
    p "crashes:  procs=%d lock_reclaims=%d\n" t.crashes t.lock_reclaims;
  if t.switch_retries > 0 then
    p "retries:  switch_retries=%d backoff_cycles=%d p50=%d max=%d\n"
      t.switch_retries t.switch_retry_cycles
      (Hist.quantile t.retry_hist 0.5)
      (Hist.max_value t.retry_hist);
  if t.pkey_switches > 0 || t.key_violations > 0 then
    p "pkeys:    switches=%d switch_cycles=%d violations=%d\n" t.pkey_switches
      t.pkey_switch_cycles t.key_violations;
  (* Conditional like crashes/retries/pkeys: fork-free workloads must
     describe byte-identically to pre-fork builds. *)
  if t.forks > 0 || t.cow_faults > 0 then
    p "fork:     forks=%d cow_faults=%d cow_copies=%d\n" t.forks t.cow_faults
      t.cow_copies;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "{\n  \"syscalls\": [";
  List.iteri
    (fun i (nr, name, calls, faults, cycles, hist) ->
      if i > 0 then p ",";
      p
        "\n    \
         {\"nr\":%d,\"name\":%S,\"calls\":%d,\"faults\":%d,\"cycles\":%d,\
         \"mean\":%.1f,\"p50\":%d,\"max\":%d}"
        nr name calls faults cycles (Hist.mean hist)
        (Hist.quantile hist 0.5)
        (Hist.max_value hist))
    (syscall_rows t);
  p "\n  ],\n";
  p "  \"vas\": {\"switches\":%d,\"tag_assigns\":%d,\"tag_recycles\":%d},\n"
    t.switches t.tag_assigns t.tag_recycles;
  p
    "  \"tlb\": \
     {\"flushes\":%d,\"flushed_entries\":%d,\"page_invalidations\":%d},\n"
    t.flushes t.flushed_entries t.page_invalidations;
  p "  \"locks\": {\"acquires\":%d,\"conflicts\":%d,\"releases\":%d},\n"
    t.lock_acquires t.lock_conflicts t.lock_releases;
  p "  \"faults\": {\"total\":%d,\"resolved\":%d},\n" t.faults
    t.faults_resolved;
  p "  \"teardown\": {\"vmspaces\":%d,\"pte_clears\":%d},\n" t.teardowns
    t.teardown_pte_clears;
  p "  \"crashes\": {\"procs\":%d,\"lock_reclaims\":%d},\n" t.crashes
    t.lock_reclaims;
  p
    "  \"retries\": \
     {\"switch_retries\":%d,\"backoff_cycles\":%d,\"p50\":%d,\"max\":%d},\n"
    t.switch_retries t.switch_retry_cycles
    (Hist.quantile t.retry_hist 0.5)
    (Hist.max_value t.retry_hist);
  p "  \"pkeys\": {\"switches\":%d,\"switch_cycles\":%d,\"violations\":%d},\n"
    t.pkey_switches t.pkey_switch_cycles t.key_violations;
  p "  \"fork\": {\"forks\":%d,\"cow_faults\":%d,\"cow_copies\":%d}\n" t.forks
    t.cow_faults t.cow_copies;
  p "}\n";
  Buffer.contents b
