(** Typed structured events recorded by {!Recorder}.

    Timestamps are simulated cycles, never host wall clock, so a trace
    of a deterministic workload is itself deterministic: running under
    [-j 1] and [-j 4] produces byte-identical event streams. *)

type flush_kind =
  | Flush_nonglobal
  | Flush_all
  | Flush_tag of int
  | Flush_page of int  (** vbase of the invalidated page *)

type kind =
  | Syscall_enter of { nr : int; sname : string }
  | Syscall_exit of { nr : int; sname : string; cycles : int; ok : bool }
  | Vas_switch of { vid : int; tag : int }
      (** [vid] 0 means the process's home space; [tag] is the hardware
          ASID installed (0 = untagged CR3 write). *)
  | Tag_assign of { vid : int; tag : int }
  | Tag_recycle of { tag : int }
  | Tlb_flush of { flush : flush_kind; entries : int }
  | Seg_lock of { sid : int; exclusive : bool; acquired : bool }
      (** [acquired = false] records a lock conflict. *)
  | Seg_unlock of { sid : int }
  | Page_fault of { va : int; write : bool; resolved : bool }
  | Pt_teardown of { pte_clears : int }
  | Proc_crash of { pid : int; locks : int; attachments : int }
      (** Involuntary teardown: [locks] segment locks and [attachments]
          VAS attachments were reclaimed from the dead process. *)
  | Lock_reclaim of { sid : int; pid : int }
      (** A segment lock force-released from crashed process [pid]. *)
  | Switch_retry of { vid : int; attempt : int; backoff : int }
      (** A [Would_block]ed vas_switch backing off before attempt
          [attempt + 1]; [backoff] simulated cycles were charged. *)
  | Pkey_switch of { vid : int; key : int; cycles : int }
      (** A compartment crossing: the core's key-permission register was
          rewritten to enter compartment [key] of VAS [vid] ([key] 0 =
          back to the unrestricted view). [cycles] is the charged WRPKRU
          + bookkeeping cost; no CR3 write and no TLB flush occurs. *)
  | Key_violation of { va : int; key : int; write : bool }
      (** A data access denied by the key register: the page's key tag
          [key] is not permitted by the current compartment. Lands as
          the typed [Key_violation] fault. *)
  | Fork of { parent : int; child : int; proc : bool; nodes_shared : int; nodes_total : int }
      (** A [vas_fork]/[proc_fork] ([proc] distinguishes them): [child]
          was cloned from [parent] (vids or pids) with [nodes_shared]
          of the child's [nodes_total] page-table nodes CoW-shared
          rather than copied. *)
  | Cow_fault of { va : int; copied : bool }
      (** A copy-on-write write fault was broken at [va]. [copied]
          records whether a frame copy was needed ([false] = last
          owner: the existing frame was privatized in place). *)

type t = {
  seq : int;  (** per-recorder emission order, from 0 *)
  core : int;  (** emitting core id, or -1 for machine-level events *)
  cycles : int;  (** emitting core's simulated cycle counter *)
  kind : kind;
}

val name : kind -> string
(** Stable event name: the syscall name for enter/exit, a fixed slug
    otherwise ([seg_lock] vs [seg_lock_conflict] distinguish outcome). *)

val flush_to_string : flush_kind -> string

val args_json : kind -> string
(** The event's payload as a one-line JSON object (Chrome trace [args]). *)

val to_string : t -> string
(** One fixed-width text line: seq, cycles, core, name, args. *)
