(* Typed structured events. Every observable action in the simulator is
   one of these constructors; the recorder stamps them with a sequence
   number, emitting core and simulated-cycle timestamp. Timestamps are
   simulated cycles — never host wall clock — so traces replay
   bit-identically across -j N settings (HACKING.md, "Determinism"). *)

type flush_kind =
  | Flush_nonglobal
  | Flush_all
  | Flush_tag of int
  | Flush_page of int  (** vbase of the invalidated page *)

type kind =
  | Syscall_enter of { nr : int; sname : string }
  | Syscall_exit of { nr : int; sname : string; cycles : int; ok : bool }
  | Vas_switch of { vid : int; tag : int }
      (** [vid] 0 means the process's home space; [tag] is the hardware
          ASID installed (0 = untagged CR3 write). *)
  | Tag_assign of { vid : int; tag : int }
  | Tag_recycle of { tag : int }
  | Tlb_flush of { flush : flush_kind; entries : int }
  | Seg_lock of { sid : int; exclusive : bool; acquired : bool }
      (** [acquired = false] records a lock conflict. *)
  | Seg_unlock of { sid : int }
  | Page_fault of { va : int; write : bool; resolved : bool }
  | Pt_teardown of { pte_clears : int }
  | Proc_crash of { pid : int; locks : int; attachments : int }
      (** Involuntary teardown: [locks] segment locks and [attachments]
          VAS attachments were reclaimed from the dead process. *)
  | Lock_reclaim of { sid : int; pid : int }
      (** A segment lock force-released from crashed process [pid]. *)
  | Switch_retry of { vid : int; attempt : int; backoff : int }
      (** A [Would_block]ed vas_switch backing off before attempt
          [attempt + 1]; [backoff] simulated cycles were charged. *)
  | Pkey_switch of { vid : int; key : int; cycles : int }
      (** A compartment crossing: the core's key-permission register was
          rewritten to enter compartment [key] of VAS [vid] ([key] 0 =
          back to the unrestricted view). [cycles] is the charged WRPKRU
          + bookkeeping cost; no CR3 write and no TLB flush occurs. *)
  | Key_violation of { va : int; key : int; write : bool }
      (** A data access denied by the key register: the page's key tag
          [key] is not permitted by the current compartment. Lands as
          the typed [Key_violation] fault. *)
  | Fork of { parent : int; child : int; proc : bool; nodes_shared : int; nodes_total : int }
      (** A [vas_fork]/[proc_fork] ([proc] distinguishes them): [child]
          was cloned from [parent] (vids or pids) with [nodes_shared]
          of the child's [nodes_total] page-table nodes CoW-shared
          rather than copied. *)
  | Cow_fault of { va : int; copied : bool }
      (** A copy-on-write write fault was broken at [va]. [copied]
          records whether a frame copy was needed ([false] = last
          owner: the existing frame was privatized in place). *)

type t = { seq : int; core : int; cycles : int; kind : kind }

let name = function
  | Syscall_enter { sname; _ } | Syscall_exit { sname; _ } -> sname
  | Vas_switch _ -> "vas_switch"
  | Tag_assign _ -> "tag_assign"
  | Tag_recycle _ -> "tag_recycle"
  | Tlb_flush _ -> "tlb_flush"
  | Seg_lock { acquired = true; _ } -> "seg_lock"
  | Seg_lock { acquired = false; _ } -> "seg_lock_conflict"
  | Seg_unlock _ -> "seg_unlock"
  | Page_fault _ -> "page_fault"
  | Pt_teardown _ -> "pt_teardown"
  | Proc_crash _ -> "proc_crash"
  | Lock_reclaim _ -> "lock_reclaim"
  | Switch_retry _ -> "switch_retry"
  | Pkey_switch _ -> "pkey_switch"
  | Key_violation _ -> "key_violation"
  | Fork { proc = true; _ } -> "proc_fork"
  | Fork { proc = false; _ } -> "vas_fork"
  | Cow_fault _ -> "cow_fault"

let flush_to_string = function
  | Flush_nonglobal -> "nonglobal"
  | Flush_all -> "all"
  | Flush_tag tag -> Printf.sprintf "tag:%d" tag
  | Flush_page vbase -> Printf.sprintf "page:0x%x" vbase

(* Chrome trace-event "args" object for a kind; keys and values must be
   deterministic functions of the event alone. *)
let args_json = function
  | Syscall_enter { nr; _ } -> Printf.sprintf {|{"nr":%d}|} nr
  | Syscall_exit { nr; cycles; ok; _ } ->
      Printf.sprintf {|{"nr":%d,"cycles":%d,"ok":%b}|} nr cycles ok
  | Vas_switch { vid; tag } -> Printf.sprintf {|{"vid":%d,"tag":%d}|} vid tag
  | Tag_assign { vid; tag } -> Printf.sprintf {|{"vid":%d,"tag":%d}|} vid tag
  | Tag_recycle { tag } -> Printf.sprintf {|{"tag":%d}|} tag
  | Tlb_flush { flush; entries } ->
      Printf.sprintf {|{"flush":"%s","entries":%d}|} (flush_to_string flush)
        entries
  | Seg_lock { sid; exclusive; acquired } ->
      Printf.sprintf {|{"sid":%d,"exclusive":%b,"acquired":%b}|} sid exclusive
        acquired
  | Seg_unlock { sid } -> Printf.sprintf {|{"sid":%d}|} sid
  | Page_fault { va; write; resolved } ->
      Printf.sprintf {|{"va":"0x%x","write":%b,"resolved":%b}|} va write
        resolved
  | Pt_teardown { pte_clears } ->
      Printf.sprintf {|{"pte_clears":%d}|} pte_clears
  | Proc_crash { pid; locks; attachments } ->
      Printf.sprintf {|{"pid":%d,"locks":%d,"attachments":%d}|} pid locks
        attachments
  | Lock_reclaim { sid; pid } ->
      Printf.sprintf {|{"sid":%d,"pid":%d}|} sid pid
  | Switch_retry { vid; attempt; backoff } ->
      Printf.sprintf {|{"vid":%d,"attempt":%d,"backoff":%d}|} vid attempt
        backoff
  | Pkey_switch { vid; key; cycles } ->
      Printf.sprintf {|{"vid":%d,"key":%d,"cycles":%d}|} vid key cycles
  | Key_violation { va; key; write } ->
      Printf.sprintf {|{"va":"0x%x","key":%d,"write":%b}|} va key write
  | Fork { parent; child; proc; nodes_shared; nodes_total } ->
      Printf.sprintf
        {|{"parent":%d,"child":%d,"proc":%b,"nodes_shared":%d,"nodes_total":%d}|}
        parent child proc nodes_shared nodes_total
  | Cow_fault { va; copied } ->
      Printf.sprintf {|{"va":"0x%x","copied":%b}|} va copied

let to_string e =
  Printf.sprintf "%08d %10d c%d %-18s %s" e.seq e.cycles e.core (name e.kind)
    (args_json e.kind)
