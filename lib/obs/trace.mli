(** Chrome trace-event JSON export.

    Produces the JSON-object format consumed by [chrome://tracing] and
    Perfetto: syscall enter/exit map to duration begin/end phases
    ("B"/"E"), all other events to thread-scoped instants ("i").
    Timestamps are simulated cycles and thread ids are simulated core
    ids, so the timeline renders the simulated machine. *)

val event_json : Event.t -> string
(** One trace event as a single-line JSON object. *)

val to_chrome_json : Event.t list -> string
(** Full trace document: [{"traceEvents": [...], ...}]. *)

val to_text : Event.t list -> string
(** One {!Event.to_string} line per event — the deterministic text form
    compared across [-j N] runs. *)

val check_string : string -> (unit, string) result
(** Well-formedness check: parses the full JSON grammar and requires a
    top-level object containing a ["traceEvents"] member. *)
