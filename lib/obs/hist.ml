(* Log2-bucketed histogram of non-negative integer samples (simulated
   cycles). Bucket i holds samples whose bit length is i, i.e. bucket 0
   is exactly {0}, bucket i>=1 covers [2^(i-1), 2^i - 1]. 63 buckets
   cover the full positive int range. *)

let buckets = 63

type t = {
  counts : int array;
  mutable n : int;
  mutable sum : int;
  mutable min : int;
  mutable max : int;
}

let create () =
  { counts = Array.make buckets 0; n = 0; sum = 0; min = max_int; max = 0 }

let bucket_of v =
  let v = if v < 0 then 0 else v in
  let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
  bits 0 v

let add t v =
  let v = if v < 0 then 0 else v in
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + v;
  if v < t.min then t.min <- v;
  if v > t.max then t.max <- v

let count t = t.n
let sum t = t.sum
let min_value t = if t.n = 0 then 0 else t.min
let max_value t = t.max
let mean t = if t.n = 0 then 0. else float_of_int t.sum /. float_of_int t.n

(* Upper bound of bucket i: largest value with bit length i. *)
let bucket_hi i = if i = 0 then 0 else (1 lsl i) - 1

(* Smallest bucket upper bound below which at least [q] of the samples
   fall — a coarse quantile, precise to a power of two. *)
let quantile t q =
  if t.n = 0 then 0
  else begin
    let target = int_of_float (ceil (q *. float_of_int t.n)) in
    let acc = ref 0 and res = ref (bucket_hi (buckets - 1)) in
    (try
       for i = 0 to buckets - 1 do
         acc := !acc + t.counts.(i);
         if !acc >= target then begin
           res := bucket_hi i;
           raise Exit
         end
       done
     with Exit -> ());
    !res
  end

let nonzero_buckets t =
  let out = ref [] in
  for i = buckets - 1 downto 0 do
    if t.counts.(i) > 0 then out := (bucket_hi i, t.counts.(i)) :: !out
  done;
  !out

let clear t =
  Array.fill t.counts 0 buckets 0;
  t.n <- 0;
  t.sum <- 0;
  t.min <- max_int;
  t.max <- 0
