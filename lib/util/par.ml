(* A fixed-size domain work-pool for running independent simulations in
   parallel. Deliberately minimal: stdlib Domain/Mutex/Condition only,
   one batch in flight at a time, results delivered in task order. *)

type batch = {
  run_task : worker:int -> int -> unit;
  (* claims results/exception storage itself; [worker] is the pool slot
     executing the task (0 = the submitting thread) *)
  n : int;
  mutable next : int; (* next unclaimed task index *)
  mutable completed : int;
}

type t = {
  m : Mutex.t;
  work : Condition.t; (* signalled when a batch is submitted / stop *)
  finished : Condition.t; (* signalled when a batch completes *)
  mutable batch : batch option;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  size : int;
}

let default_size () = max 1 (Domain.recommended_domain_count ())

(* Claim and run tasks until the current batch is drained. Caller must
   NOT hold the lock. *)
let drain t ~worker b =
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock t.m;
    if b.next >= b.n then begin
      Mutex.unlock t.m;
      continue_ := false
    end
    else begin
      let i = b.next in
      b.next <- i + 1;
      Mutex.unlock t.m;
      b.run_task ~worker i;
      Mutex.lock t.m;
      b.completed <- b.completed + 1;
      if b.completed = b.n then Condition.broadcast t.finished;
      Mutex.unlock t.m
    end
  done

let worker_loop t ~worker () =
  let running = ref true in
  while !running do
    Mutex.lock t.m;
    while
      (not t.stop)
      && match t.batch with None -> true | Some b -> b.next >= b.n
    do
      Condition.wait t.work t.m
    done;
    if t.stop then begin
      Mutex.unlock t.m;
      running := false
    end
    else begin
      let b = match t.batch with Some b -> b | None -> assert false in
      Mutex.unlock t.m;
      drain t ~worker b
    end
  done

let create ?size () =
  let size = match size with Some n -> max 1 n | None -> default_size () in
  let t =
    {
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batch = None;
      stop = false;
      workers = [||];
      size;
    }
  in
  (* The submitting thread participates in every batch as worker 0, so
     a pool of size [n] spawns [n - 1] worker domains (slots 1..n-1);
     size 1 runs fully inline (no domains, bit-identical scheduling to
     plain serial code). *)
  t.workers <-
    Array.init (size - 1) (fun i -> Domain.spawn (worker_loop t ~worker:(i + 1)));
  t

let size t = t.size

exception Task_error of int * exn

let run_placed : 'a. t -> (unit -> 'a) array -> 'a array * int array =
 fun t tasks ->
  let n = Array.length tasks in
  if n = 0 then ([||], [||])
  else begin
    let results : ('a, exn) result option array = Array.make n None in
    let placement = Array.make n 0 in
    let run_task ~worker i =
      placement.(i) <- worker;
      results.(i) <- Some (try Ok (tasks.(i) ()) with e -> Error e)
    in
    if Array.length t.workers = 0 then
      (* Inline serial execution: same task order as submission, every
         task on the submitting thread (slot 0). *)
      for i = 0 to n - 1 do
        run_task ~worker:0 i
      done
    else begin
      let b = { run_task; n; next = 0; completed = 0 } in
      Mutex.lock t.m;
      (match t.batch with
      | Some _ ->
        Mutex.unlock t.m;
        invalid_arg "Par.run: pool already running a batch (not reentrant)"
      | None -> ());
      t.batch <- Some b;
      Condition.broadcast t.work;
      Mutex.unlock t.m;
      (* Participate, then wait for workers still finishing tasks. *)
      drain t ~worker:0 b;
      Mutex.lock t.m;
      while b.completed < b.n do
        Condition.wait t.finished t.m
      done;
      t.batch <- None;
      Mutex.unlock t.m
    end;
    (* Deterministic result order regardless of which domain ran what;
       the lowest-index failure wins, as it would serially. *)
    ( Array.mapi
        (fun i r ->
          match r with
          | Some (Ok v) -> v
          | Some (Error e) -> raise (Task_error (i, e))
          | None -> assert false)
        results,
      placement )
  end

let run t tasks = fst (run_placed t tasks)

let map t f xs = run t (Array.map (fun x () -> f x) xs)

let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

(* Chunked map: pack the elements into at most [shards] contiguous,
   balanced chunks and submit one pool task per chunk. Long trial
   lists then pay one scheduling handoff per chunk instead of per
   element, and each chunk's elements run serially, in order, on one
   domain — so the flattened result is [List.map f xs] exactly. *)
let map_sharded t ~shards f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let k = max 1 (min shards n) in
  if k <= 1 then List.map f xs
  else begin
    let chunk i =
      (* Chunk [i] covers [lo, hi); k <= n keeps every chunk nonempty. *)
      let lo = i * n / k and hi = (i + 1) * n / k in
      fun () ->
        let out = Array.make (hi - lo) (f arr.(lo)) in
        for j = 1 to hi - lo - 1 do
          out.(j) <- f arr.(lo + j)
        done;
        out
    in
    let parts = run t (Array.init k chunk) in
    List.concat_map Array.to_list (Array.to_list parts)
  end

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  Array.iter Domain.join t.workers

let with_pool ?size f =
  let t = create ?size () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
