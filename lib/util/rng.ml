type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) land max_int in
  create ~seed

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int t bound =
  assert (bound > 0);
  let mask = Int64.to_int (bits64 t) land max_int in
  mask mod bound

let int_in t ~lo ~hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let mantissa = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int mantissa /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let geometric t ~p =
  assert (p > 0.0 && p <= 1.0);
  if p >= 1.0 then 0
  else
    let u = float t 1.0 in
    let u = if u <= 0.0 then epsilon_float else u in
    int_of_float (Float.log u /. Float.log (1.0 -. p))

(* Zipf via rejection-inversion (Hormann & Derflinger). For the modest
   [n] used by workloads a simple cumulative-table method suffices and
   is easier to verify. Tables are memoized per (n, s) — the memo is a
   process-wide cache of *deterministic* content (identical for every
   simulation), so sharing it across domains is benign; the mutex only
   protects the table structure itself. Allowlisted in the
   domain-safety lint (test/lint_globals.sh). *)
let zipf_tables : (int * float, float array) Hashtbl.t = Hashtbl.create 7
let zipf_mutex = Mutex.create ()

let zipf_table n s =
  Mutex.lock zipf_mutex;
  let tbl =
    match Hashtbl.find_opt zipf_tables (n, s) with
    | Some tbl -> tbl
    | None ->
      let tbl = Array.make n 0.0 in
      let acc = ref 0.0 in
      for k = 1 to n do
        acc := !acc +. (1.0 /. Float.pow (float_of_int k) s);
        tbl.(k - 1) <- !acc
      done;
      let total = !acc in
      for k = 0 to n - 1 do
        tbl.(k) <- tbl.(k) /. total
      done;
      Hashtbl.replace zipf_tables (n, s) tbl;
      tbl
  in
  Mutex.unlock zipf_mutex;
  tbl

let zipf t ~n ~s =
  assert (n > 0);
  let tbl = zipf_table n s in
  let u = float t 1.0 in
  (* Binary search for the first index with cumulative >= u. *)
  let rec go lo hi =
    if lo >= hi then lo + 1
    else
      let mid = (lo + hi) / 2 in
      if tbl.(mid) >= u then go lo mid else go (mid + 1) hi
  in
  go 0 (n - 1)
