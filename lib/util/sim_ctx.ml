(* Per-simulation world state. One value of this record backs every
   id generator and policy cursor that used to be a process-global ref,
   so two machines built in the same process (or in two domains) are
   fully independent and each one numbers its objects from scratch. *)

type obs = ..
(* Open slot for the simulation's observability recorder
   (Sj_obs.Recorder.t). An extensible variant keeps sj_util below
   sj_obs in the layering while still scoping the recorder to the
   simulation that owns it — the same trick as Registry.service. *)

type fault = ..
(* Open slot for the simulation's fault injector (Sj_fault.Injector.t).
   Same layering trick as [obs]: sj_util stays below sj_fault while the
   injector is scoped to the simulation that owns it. *)

type t = {
  mutable next_vm_object : int;
  mutable next_cap : int;
  mutable next_vmspace : int;
  mutable next_pid : int;
  mutable next_vid : int;
  mutable next_sid : int;
  (* Global-segment layout cursor, stored as a byte offset above the
     layout's global base so this module stays policy-free; only
     Sj_kernel.Layout interprets it. *)
  mutable layout_offset : int;
  mutable obs : obs option;
  mutable fault : fault option;
}

let create () =
  {
    next_vm_object = 0;
    next_cap = 0;
    next_vmspace = 0;
    next_pid = 0;
    next_vid = 0;
    next_sid = 0;
    layout_offset = 0;
    obs = None;
    fault = None;
  }

let next_vm_object_id t =
  t.next_vm_object <- t.next_vm_object + 1;
  t.next_vm_object

let next_cap_id t =
  t.next_cap <- t.next_cap + 1;
  t.next_cap

let next_vmspace_id t =
  t.next_vmspace <- t.next_vmspace + 1;
  t.next_vmspace

let next_pid t =
  t.next_pid <- t.next_pid + 1;
  t.next_pid

let next_vid t =
  t.next_vid <- t.next_vid + 1;
  t.next_vid

let next_sid t =
  t.next_sid <- t.next_sid + 1;
  t.next_sid

let layout_offset t = t.layout_offset
let set_layout_offset t off = t.layout_offset <- off
let obs t = t.obs
let set_obs t o = t.obs <- o
let fault t = t.fault
let set_fault t f = t.fault <- f
