(** A fixed-size domain work-pool for independent simulations.

    Built on stdlib [Domain]/[Mutex]/[Condition] only. A pool of size
    [n] uses the submitting thread plus [n - 1] worker domains; a pool
    of size 1 runs everything inline on the caller (no domains at all),
    which makes [-j 1] scheduling bit-identical to plain serial code.

    Tasks must be *isolated*: each one should build its own machines,
    RNGs and contexts, and must not touch another task's mutable state
    (HACKING.md, "Domain safety"). Results come back in task order, so
    output is deterministic no matter which domain ran which task.

    Note that [Machine.with_fast_path] is domain-local: a task that
    must run with a specific fast-path mode wraps itself in it. *)

type t

exception Task_error of int * exn
(** Raised by {!run} when tasks failed: the lowest failing task index
    and its exception (later results are discarded, as serial execution
    would never have produced them). *)

val create : ?size:int -> unit -> t
(** [create ~size ()] builds a pool of [size] (default
    [Domain.recommended_domain_count ()], min 1). *)

val default_size : unit -> int
(** The default pool size: [Domain.recommended_domain_count ()]. *)

val size : t -> int
(** Total parallelism, including the submitting thread. *)

val run : t -> (unit -> 'a) array -> 'a array
(** Run every task, returning results in task order. Not reentrant:
    one batch at a time per pool, submitted from one thread. *)

val run_placed : t -> (unit -> 'a) array -> 'a array * int array
(** Like {!run}, but also reports placement: the second array gives,
    per task, the pool slot that executed it (0 = the submitting
    thread, 1..size-1 the worker domains). Placement is a host
    scheduling artifact — it may differ between identical runs and
    must never feed back into simulated results; the bench report
    records it so a report reader can see how the batch actually
    spread. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

val map_sharded : t -> shards:int -> ('a -> 'b) -> 'a list -> 'b list
(** Like {!map_list}, but packs the elements into at most [shards]
    contiguous balanced chunks and submits one pool task per chunk:
    long trial lists pay per-chunk (not per-element) scheduling, and a
    chunk's elements run serially in order on one domain. The result
    equals [List.map f xs]. On failure, {!Task_error} carries the
    failing *chunk* index. *)

val shutdown : t -> unit
(** Stop and join the worker domains. The pool must be idle. *)

val with_pool : ?size:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down after,
    even on exceptions. *)
