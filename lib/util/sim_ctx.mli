(** Per-simulation world state.

    Every id generator and allocation cursor that would otherwise be a
    process-global mutable ref lives here, one instance per simulated
    machine. That scoping is what makes simulations independent: a
    machine's object ids and segment bases do not depend on how many
    machines were built earlier in the process, and two simulations can
    run concurrently in different domains without sharing any mutable
    state (see HACKING.md, "Domain safety").

    A context is owned by exactly one simulation and is not itself
    thread-safe; concurrency comes from giving each domain its own. *)

type obs = ..
(** Open slot for the simulation's observability recorder.
    [Sj_obs.Recorder] extends this with its own constructor and stores a
    recorder per context via [set_obs]; keeping the type extensible here
    lets every layer above [sj_util] reach the recorder without this
    module depending on [sj_obs] (same pattern as [Registry.service]). *)

type fault = ..
(** Open slot for the simulation's fault injector. [Sj_fault.Injector]
    extends this with its own constructor and stores an injector per
    context via [set_fault] — the same layering trick as [obs]. *)

type t

val create : unit -> t
(** A fresh context with every counter at zero. [Sj_machine.Machine.create]
    makes one per machine; standalone kernel tests can create their own. *)

(** Id generators. Each call returns the next id, starting at 1 —
    the same sequence the former global counters produced in a fresh
    process. *)

val next_vm_object_id : t -> int
val next_cap_id : t -> int
val next_vmspace_id : t -> int
val next_pid : t -> int
val next_vid : t -> int
val next_sid : t -> int

val layout_offset : t -> int
(** Byte offset of the global-segment layout cursor above the layout's
    global base. Interpreted by [Sj_kernel.Layout] only. *)

val set_layout_offset : t -> int -> unit

val obs : t -> obs option
(** The observability slot, [None] until a recorder is attached. *)

val set_obs : t -> obs option -> unit

val fault : t -> fault option
(** The fault-injection slot, [None] until an injector is attached. *)

val set_fault : t -> fault option -> unit
