(** Address-space layout policy.

    The DragonFly implementation avoids collisions between globally
    visible segments and process-private segments (code, globals,
    stacks) by "ensuring both globally visible and process-private
    segments are created in disjoint address ranges" (§4.1). We encode
    that policy here: private segments live below 1 TiB, global
    (VAS-shareable) segments above it. *)

val text_base : int
(** Default program-text base (0x40_0000, the ELF default). *)

val data_base : int
(** Default globals/data base. *)

val stack_top : int
(** Top of the first thread's stack; stacks grow down, successive
    thread stacks are placed below with a guard gap. *)

val stack_gap : int
val private_limit : int
(** Exclusive upper bound of the private range (1 TiB). *)

val global_base : int
(** Base of the globally visible segment range (= [private_limit]). *)

val is_private : int -> bool
val is_global : int -> bool

val next_global_base : Sj_util.Sim_ctx.t -> size:int -> int
(** Per-simulation sequential allocator for global segment bases,
    aligned to 1 GiB so segment translations can be cached as whole
    PDPT-slot subtrees (§4.4). The cursor lives in the simulation's
    [Sim_ctx] (callers with a machine pass [Machine.sim_ctx machine]),
    so bases are deterministic per machine regardless of what else the
    process has simulated. When the range above [global_base] is spent,
    raises [Sj_abi.Error.Fault] with code [Layout_exhausted] and leaves
    the cursor unchanged, so callers can observe the fault and retry
    after releasing space. *)

val reset_global_allocator : Sj_util.Sim_ctx.t -> unit
(** Reset the sequential allocator (machine reuse within one test). *)

val reserve_global : Sj_util.Sim_ctx.t -> base:int -> size:int -> unit
(** Advance the allocator past an externally placed range (segments
    restored from a persistence image keep their original bases). *)
