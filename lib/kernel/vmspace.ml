open Sj_util
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Page_table = Sj_paging.Page_table
module Prot = Sj_paging.Prot

type region = {
  base : int;
  size : int;
  prot : Prot.t;
  obj : Vm_object.t;
  obj_page : int;
  global : bool;
  cow : bool;
  page : Page_table.page_size;
  region_name : string option;
}

type t = {
  id : int;
  machine : Machine.t;
  pt : Page_table.t;
  mutable regions : region array; (* sorted by base, non-overlapping *)
}

(* Charge the page-table work performed since [before] to a core. *)
let charge_pt_delta t charge_to (before : Page_table.stats) =
  match charge_to with
  | None -> ()
  | Some core ->
    let after = Page_table.stats t.pt in
    let cost = Machine.cost t.machine in
    let d_tables = after.tables_allocated - before.tables_allocated in
    let d_writes = after.pte_writes - before.pte_writes in
    let d_clears = after.pte_clears - before.pte_clears in
    Core.charge core
      ((d_tables * cost.table_alloc) + (d_writes * cost.pte_write) + (d_clears * cost.pte_clear))

let snapshot_stats t : Page_table.stats =
  let s = Page_table.stats t.pt in
  {
    tables_allocated = s.tables_allocated;
    tables_freed = s.tables_freed;
    pte_writes = s.pte_writes;
    pte_clears = s.pte_clears;
  }

let create machine ~charge_to =
  let pt = Page_table.create (Machine.mem machine) in
  (match charge_to with
  | Some core -> Core.charge core (Machine.cost machine).table_alloc
  | None -> ());
  { id = Sim_ctx.next_vmspace_id (Machine.sim_ctx machine); machine; pt; regions = [||] }

let id t = t.id
let page_table t = t.pt
let regions t = Array.to_list t.regions

(* Index of the last region with [base <= va], or -1. *)
let floor_index regions va =
  let lo = ref 0 and hi = ref (Array.length regions - 1) and ans = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if regions.(mid).base <= va then begin
      ans := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !ans

let find_region t ~va =
  let i = floor_index t.regions va in
  if i < 0 then None
  else
    let r = t.regions.(i) in
    if Addr.range_contains ~base:r.base ~size:r.size va then Some r else None

(* Regions are sorted and non-overlapping, so a new range can only
   collide with its two would-be neighbours. *)
let check_no_overlap t ~base ~size =
  let check r =
    if Addr.range_overlaps ~base1:base ~size1:size ~base2:r.base ~size2:r.size then
      Sj_abi.Error.failf Address_conflict ~op:"vm_map" "[%s,+%s) overlaps region at %s"
        (Addr.to_string base) (Size.to_string size) (Addr.to_string r.base)
  in
  let i = floor_index t.regions base in
  if i >= 0 then check t.regions.(i);
  if i + 1 < Array.length t.regions then check t.regions.(i + 1)

let insert_region t r =
  let n = Array.length t.regions in
  let i = floor_index t.regions r.base + 1 in
  let dst = Array.make (n + 1) r in
  Array.blit t.regions 0 dst 0 i;
  Array.blit t.regions i dst (i + 1) (n - i);
  t.regions <- dst

(* Index of the region starting exactly at [base], or -1. *)
let index_at_base t base =
  let i = floor_index t.regions base in
  if i >= 0 && t.regions.(i).base = base then i else -1

let remove_region_index t i =
  let n = Array.length t.regions in
  if n = 1 then t.regions <- [||]
  else begin
    let dst = Array.make (n - 1) t.regions.(0) in
    Array.blit t.regions 0 dst 0 i;
    Array.blit t.regions (i + 1) dst i (n - 1 - i);
    t.regions <- dst
  end

let map_object t ~charge_to ~base ?(obj_page = 0) ?pages ?(global = false) ?(cow = false)
    ?(page = Page_table.P4K) ?(key = 0) ?name ~prot obj =
  if not (Addr.is_page_aligned base) then
    Sj_abi.Error.fail Invalid ~op:"vm_map" "base not aligned";
  let pages = match pages with Some p -> p | None -> Vm_object.pages obj - obj_page in
  if pages <= 0 || obj_page < 0 || obj_page + pages > Vm_object.pages obj then
    Sj_abi.Error.fail Invalid ~op:"vm_map" "page range outside object";
  let size = pages * Addr.page_size in
  check_no_overlap t ~base ~size;
  let before = snapshot_stats t in
  (match page with
  | Page_table.P4K ->
    if not cow then
      (* Uniform protection: install the whole run through the batched
         path (identical PTEs and stats, one leaf-table walk per
         2 MiB). *)
      Page_table.map_run ~global ~key t.pt ~va:base ~n:pages
        ~frames:(Vm_object.frames obj) ~off:obj_page ~prot
    else
      for i = 0 to pages - 1 do
        let page = obj_page + i in
        let frame = Vm_object.frame_at obj ~page in
        (* COW: shared pages are installed read-only; the write fault
           splits them. *)
        let hw_prot =
          if Vm_object.page_shared obj ~page then { prot with Prot.write = false }
          else prot
        in
        Page_table.map ~global ~key t.pt
          ~va:(base + (i * Addr.page_size))
          ~pa:(Sj_mem.Phys_mem.base_of_frame frame)
          ~prot:hw_prot ~size:Page_table.P4K
      done
  | Page_table.P2M ->
    let huge = Size.mib 2 / Addr.page_size in
    if cow then Sj_abi.Error.fail Invalid ~op:"vm_map" "COW requires 4 KiB granularity";
    if not (Vm_object.is_contiguous obj) then
      Sj_abi.Error.fail Invalid ~op:"vm_map" "2 MiB mapping needs a contiguous object";
    if base mod Size.mib 2 <> 0 || obj_page mod huge <> 0 || pages mod huge <> 0 then
      Sj_abi.Error.fail Invalid ~op:"vm_map" "2 MiB mapping needs 2 MiB alignment";
    for i = 0 to (pages / huge) - 1 do
      let frame = Vm_object.frame_at obj ~page:(obj_page + (i * huge)) in
      Page_table.map ~global ~key t.pt
        ~va:(base + (i * Size.mib 2))
        ~pa:(Sj_mem.Phys_mem.base_of_frame frame)
        ~prot ~size:Page_table.P2M
    done);
  charge_pt_delta t charge_to before;
  insert_region t { base; size; prot; obj; obj_page; global; cow; page; region_name = name }

let unmap_region t ~charge_to ~base =
  match index_at_base t base with
  | -1 -> Sj_abi.Error.fail Unknown_name ~op:"vm_unmap" "no region at base"
  | i ->
    let r = t.regions.(i) in
    let before = snapshot_stats t in
    (match r.page with
    | Page_table.P4K -> Page_table.unmap_range t.pt ~va:r.base ~pages:(r.size / Addr.page_size)
    | Page_table.P2M ->
      for j = 0 to (r.size / Size.mib 2) - 1 do
        Page_table.unmap t.pt ~va:(r.base + (j * Size.mib 2)) ~size:Page_table.P2M
      done);
    charge_pt_delta t charge_to before;
    remove_region_index t i

let remap_page t ~charge_to ~va ~frame ~prot =
  (* 4 KiB-granularity operation: inside a 2 MiB region the unmap/map
     pair below would tear a hole in the huge mapping, so refuse with a
     typed fault instead of corrupting it. *)
  (match find_region t ~va with
  | Some { page = Page_table.P2M; base; _ } ->
    Sj_abi.Error.failf Invalid ~op:"vm_remap"
      "%s lies in a 2 MiB region at %s; remap is 4 KiB-granular"
      (Addr.to_string va) (Addr.to_string base)
  | Some _ | None -> ());
  let before = snapshot_stats t in
  let va = Sj_util.Size.round_down va ~align:Addr.page_size in
  Page_table.unmap t.pt ~va ~size:Page_table.P4K;
  Page_table.map t.pt ~va ~pa:(Sj_mem.Phys_mem.base_of_frame frame) ~prot
    ~size:Page_table.P4K;
  charge_pt_delta t charge_to before

let write_protect_region t ~charge_to ~base =
  match index_at_base t base with
  | -1 -> Sj_abi.Error.fail Unknown_name ~op:"vm_write_protect" "no region at base"
  | i ->
    let r = t.regions.(i) in
    let before = snapshot_stats t in
    let step =
      match r.page with Page_table.P4K -> Addr.page_size | Page_table.P2M -> Size.mib 2
    in
    for j = 0 to (r.size / step) - 1 do
      let va = r.base + (j * step) in
      match Page_table.walk t.pt ~va with
      | Some m when m.prot.write ->
        Page_table.protect t.pt ~va ~size:r.page
          ~prot:{ m.prot with Prot.write = false }
      | Some _ | None -> ()
    done;
    charge_pt_delta t charge_to before;
    t.regions.(i) <- { r with cow = true }

let set_region_key t ~charge_to ~base ~key =
  match index_at_base t base with
  | -1 -> Sj_abi.Error.fail Unknown_name ~op:"pkey_assign" "no region at base"
  | i ->
    let r = t.regions.(i) in
    let before = snapshot_stats t in
    (match r.page with
    | Page_table.P4K ->
      for j = 0 to (r.size / Addr.page_size) - 1 do
        Page_table.set_key t.pt
          ~va:(r.base + (j * Addr.page_size))
          ~size:Page_table.P4K ~key
      done
    | Page_table.P2M ->
      for j = 0 to (r.size / Size.mib 2) - 1 do
        Page_table.set_key t.pt ~va:(r.base + (j * Size.mib 2)) ~size:Page_table.P2M ~key
      done);
    charge_pt_delta t charge_to before

(* Copy-on-write duplicate of every region whose 512 GiB span [share]
   accepts. The page table is cloned via [Page_table.clone_cow] (top
   slots shared, both sides CoW-tagged); each kept region's object is
   [Vm_object.cow_clone]d so frame ownership is per-side, and writable
   regions are flagged [cow] on *both* sides so the fault path breaks
   sharing page by page. Read-only regions never fault, so their frames
   stay shared for good — that is fork's text-segment win. *)
let fork t ~charge_to ~share =
  let before = snapshot_stats t in
  let pt = Page_table.clone_cow ~share:(fun slot -> share (slot lsl 39)) t.pt in
  charge_pt_delta t charge_to before;
  (* The clone's own construction work (root alloc + one PTE per shared
     slot) accrues in its fresh stats; charge it like any other
     page-table mutation. *)
  (match charge_to with
  | None -> ()
  | Some core ->
    let s = Page_table.stats pt in
    let cost = Machine.cost t.machine in
    Core.charge core
      ((s.tables_allocated * cost.table_alloc) + (s.pte_writes * cost.pte_write)));
  let child =
    { id = Sim_ctx.next_vmspace_id (Machine.sim_ctx t.machine); machine = t.machine; pt; regions = [||] }
  in
  let kept = ref [] in
  Array.iteri
    (fun i r ->
      if share r.base then begin
        let obj = Vm_object.cow_clone r.obj in
        kept := { r with obj; cow = r.cow || r.prot.write } :: !kept;
        if r.prot.write && not r.cow then t.regions.(i) <- { r with cow = true }
      end)
    t.regions;
  child.regions <- Array.of_list (List.rev !kept);
  child

(* PTE surgery for one resolved CoW write fault: repoint [va]'s leaf at
   the private [frame] (ownership walk included) and charge the PTE
   writes it took. Frame allocation and the byte copy happened in
   [Vm_object.resolve_cow_write]. *)
let cow_break t ~charge_to ~va ~frame =
  let before = snapshot_stats t in
  Page_table.break_cow t.pt ~va ~pa:(Sj_mem.Phys_mem.base_of_frame frame);
  charge_pt_delta t charge_to before

let graft_cached t ~charge_to ~base ~subtree ~region =
  check_no_overlap t ~base ~size:region.size;
  let before = snapshot_stats t in
  Page_table.graft_subtree t.pt ~va:base subtree;
  charge_pt_delta t charge_to before;
  insert_region t region

let prune_cached t ~charge_to ~base ~gib_spans =
  let before = snapshot_stats t in
  for i = 0 to gib_spans - 1 do
    Page_table.prune_subtree t.pt ~va:(base + (i * Size.gib 1)) ~level:2
  done;
  charge_pt_delta t charge_to before;
  t.regions <-
    Array.of_list
      (List.filter
         (fun r -> not (r.base >= base && r.base < base + (gib_spans * Size.gib 1)))
         (Array.to_list t.regions))

let destroy t ~charge_to =
  let before = snapshot_stats t in
  Page_table.destroy t.pt;
  (* Teardown is page-table work like any other: the PTE clears counted
     by [Page_table.destroy] are charged to the detaching core. *)
  charge_pt_delta t charge_to before;
  (match charge_to with
  | None -> ()
  | Some core -> (
    match Sj_obs.Recorder.active (Core.sim_ctx core) with
    | Some r ->
      let clears = (Page_table.stats t.pt).pte_clears - before.pte_clears in
      Sj_obs.Recorder.emit r ~core:(Core.id core) ~cycles:(Core.cycles core)
        (Sj_obs.Event.Pt_teardown { pte_clears = clears })
    | None -> ()));
  t.regions <- [||]
