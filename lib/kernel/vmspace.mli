(** A concrete address space instance: BSD's [vmspace] (§4.1) — a list
    of region descriptors plus the architecture-specific translation
    tree. Mapping is eager (all PTEs installed at map time), matching
    the prototype: SpaceJMP segments are backed by reserved physical
    memory, so there is no demand paging, and page faults indicate
    program errors.

    All construction/destruction work charges mechanical costs
    (PTE writes, table allocations) to the optional [charge_to] core,
    which is how Figure 1's curves are measured. *)

type t

type region = {
  base : int;
  size : int;  (** bytes, page multiple *)
  prot : Sj_paging.Prot.t;  (** the *logical* protection *)
  obj : Vm_object.t;
  obj_page : int;  (** first backing page within [obj] *)
  global : bool;  (** mapped with the TLB-global bit (common region) *)
  cow : bool;
      (** copy-on-write region: shared pages are hardware-mapped
          read-only even when [prot] permits writes; the fault handler
          splits and upgrades them (sec 7 snapshotting) *)
  page : Sj_paging.Page_table.page_size;
      (** mapping granularity; 2 MiB needs a contiguous object and
          2 MiB-aligned base/size (a Barrelfish-style user policy,
          sec 4.2) *)
  region_name : string option;
}

val create :
  Sj_machine.Machine.t -> charge_to:Sj_machine.Machine.Core.core option -> t

val id : t -> int
val page_table : t -> Sj_paging.Page_table.t
val regions : t -> region list
(** Sorted by base address. *)

val find_region : t -> va:int -> region option

val map_object :
  t ->
  charge_to:Sj_machine.Machine.Core.core option ->
  base:int ->
  ?obj_page:int ->
  ?pages:int ->
  ?global:bool ->
  ?cow:bool ->
  ?page:Sj_paging.Page_table.page_size ->
  ?key:int ->
  ?name:string ->
  prot:Sj_paging.Prot.t ->
  Vm_object.t ->
  unit
(** Map [pages] 4 KiB pages of the object (default: all, starting at
    [obj_page] = 0) at [base]. Unlike Linux [mmap] (§2.4 criticism),
    overlapping an existing region raises [Invalid_argument] rather
    than silently clobbering it. With [~page:P2M] the range is mapped
    with 2 MiB entries (object must be contiguous; base, offset and
    size 2 MiB-aligned; incompatible with [cow]). [key] (default 0)
    tags every installed leaf PTE with a protection key. *)

val unmap_region : t -> charge_to:Sj_machine.Machine.Core.core option -> base:int -> unit
(** Remove the region starting exactly at [base] and clear its PTEs.
    The caller is responsible for TLB shootdown on cores that may cache
    translations. *)

val remap_page :
  t ->
  charge_to:Sj_machine.Machine.Core.core option ->
  va:int ->
  frame:Sj_mem.Phys_mem.frame ->
  prot:Sj_paging.Prot.t ->
  unit
(** Point one 4 KiB translation at a (possibly different) frame with new
    protections — the fault handler's repair primitive. The region
    descriptor is unchanged. Raises a typed [Invalid] fault when [va]
    lies inside a 2 MiB region: the operation is 4 KiB-granular and
    would otherwise corrupt the huge mapping. *)

val write_protect_region : t -> charge_to:Sj_machine.Machine.Core.core option -> base:int -> unit
(** Strip write permission from every PTE of the region (its logical
    [prot] is unchanged) and mark it COW — performed on the *original*
    when a snapshot is taken. *)

val set_region_key :
  t ->
  charge_to:Sj_machine.Machine.Core.core option ->
  base:int ->
  key:int ->
  unit
(** Rewrite the protection-key tag of every PTE in the region starting
    exactly at [base] — [pkey_assign]'s per-vmspace PTE rewrite. Prot
    bits, frames and the region descriptor are untouched; each page
    costs one PTE write. Raises a typed [Unknown_name] fault when no
    region starts at [base]. *)

val graft_cached :
  t ->
  charge_to:Sj_machine.Machine.Core.core option ->
  base:int ->
  subtree:Sj_paging.Page_table.subtree ->
  region:region ->
  unit
(** Attach a segment whose translations were pre-built as a shared
    page-table subtree (§4.1 "cached translations"): one PTE write
    instead of thousands. The [region] descriptor records the logical
    mapping. *)

val prune_cached :
  t ->
  charge_to:Sj_machine.Machine.Core.core option ->
  base:int ->
  gib_spans:int ->
  unit
(** Inverse of {!graft_cached}: unlink [gib_spans] grafted 1 GiB
    subtrees starting at [base] and drop the region descriptor. *)

val fork :
  t ->
  charge_to:Sj_machine.Machine.Core.core option ->
  share:(int -> bool) ->
  t
(** Copy-on-write duplicate. The translation tree is cloned via
    {!Sj_paging.Page_table.clone_cow} — top-level subtrees whose
    512 GiB span base [share] accepts are shared CoW-tagged, nothing is
    deep-copied — and every kept region is duplicated with a
    [Vm_object.cow_clone]d object. Writable regions come back (and are
    left) flagged [cow] on both sides, so the first write on either
    side faults and splits just that page; read-only regions keep
    sharing frames forever. Cost is O(top-level slots) page-table work
    plus O(regions) bookkeeping, charged to [charge_to]. *)

val cow_break :
  t ->
  charge_to:Sj_machine.Machine.Core.core option ->
  va:int ->
  frame:Sj_mem.Phys_mem.frame ->
  unit
(** Repoint the leaf translating [va] at the private [frame] and clear
    its CoW marking, taking private ownership of any fork-shared tables
    on the walk — the page-table half of resolving one CoW write fault
    ([Vm_object.resolve_cow_write] is the frame half). Charges the PTE
    writes the ownership walk performs. *)

val destroy : t -> charge_to:Sj_machine.Machine.Core.core option -> unit
(** Free the translation tree (not the VM objects). Teardown PTE clears
    are charged to [charge_to] like every other page-table mutation, and
    a [Pt_teardown] event is emitted when tracing is on. *)
