(** seL4-inspired capability system, as used by the Barrelfish backend
    (§4.2).

    Physical resources are referred to by typed capabilities. Untyped
    RAM capabilities are *retyped* into frames or page-table nodes by
    explicit, kernel-checked operations; each byte of untyped memory can
    be retyped at most once (no aliasing). Processes hold capabilities
    in a CSpace and act on resources only via {!invoke}, which validates
    presence, type, and rights — this is what makes the Barrelfish
    SpaceJMP implementation safe without kernel logic. Revoking a
    capability recursively deletes descendants, the mechanism the paper
    relies on to reclaim a VAS ("revoking the process' root page table
    prohibits the process from switching into the VAS"). *)

type captype =
  | Ram of int  (** untyped memory of a given size *)
  | Frame  (** mappable memory *)
  | Vnode of int  (** page-table node at level 1-4 *)
  | Vas_ref of int  (** handle onto a SpaceJMP VAS (service-level) *)
  | Endpoint of int  (** RPC endpoint to a service *)

type t
(** A capability. Copies made by {!mint} share the underlying object but
    have their own identity and rights. *)

val captype : t -> captype
val rights : t -> Sj_paging.Prot.t
val is_revoked : t -> bool

val create_ram : Sj_util.Sim_ctx.t -> size:int -> t
(** A fresh untyped memory capability (memory-server allocation).
    Capability ids come from the simulation's [Sim_ctx] (callers with a
    machine pass [Machine.sim_ctx machine]); children made by {!retype}
    and {!mint} inherit the parent's generator. *)

val create_endpoint : Sj_util.Sim_ctx.t -> service:int -> t
val create_vas_ref : Sj_util.Sim_ctx.t -> vas:int -> rights:Sj_paging.Prot.t -> t

val retype : t -> into:captype -> t
(** Retype untyped memory. Raises [Invalid_argument] if the source is
    not RAM, was already retyped, or is revoked. The result is a child
    of the source. *)

val mint : t -> rights:Sj_paging.Prot.t -> t
(** Copy with (possibly diminished) rights; the copy is a child.
    Raises [Invalid_argument] when attempting to *amplify* rights. *)

val revoke : t -> unit
(** Recursively revoke this capability and all its descendants. *)

module Cspace : sig
  type cap = t
  type t

  val create : unit -> t
  val insert : t -> cap -> int
  (** Returns the slot number. *)

  val lookup : t -> int -> cap option
  val delete : t -> int -> unit
  val slots : t -> (int * cap) list

  val invoke : t -> slot:int -> access:[ `Read | `Write | `Exec ] -> cap
  (** Validate and return the capability for a kernel-checked operation.
      Raises [Invalid_argument] if the slot is empty, the capability is
      revoked, or rights are insufficient. *)
end
