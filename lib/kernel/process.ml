open Sj_util
module Machine = Sj_machine.Machine
module Prot = Sj_paging.Prot

type thread = { tid : int; stack_base : int; stack_size : int; stack_obj : Vm_object.t }

type t = {
  pid : int;
  name : string;
  cred : Acl.cred;
  machine : Machine.t;
  cspace : Cap.Cspace.t;
  primary : Vmspace.t;
  text_obj : Vm_object.t;
  data_obj : Vm_object.t;
  text_size : int;
  data_size : int;
  mutable thread_list : thread list; (* newest first *)
  mutable next_tid : int;
  mutable live : bool;
}

let create ?(text_size = Size.kib 512) ?(data_size = Size.mib 2) ?(stack_size = Size.mib 8)
    ?(cred = Acl.root) ~name machine =
  let text_size = Size.round_up text_size ~align:Addr.page_size in
  let data_size = Size.round_up data_size ~align:Addr.page_size in
  let stack_size = Size.round_up stack_size ~align:Addr.page_size in
  let primary = Vmspace.create machine ~charge_to:None in
  let text_obj = Vm_object.create ~name:(name ^ ".text") machine ~size:text_size ~charge_to:None in
  let data_obj = Vm_object.create ~name:(name ^ ".data") machine ~size:data_size ~charge_to:None in
  let stack_obj =
    Vm_object.create ~name:(name ^ ".stack0") machine ~size:stack_size ~charge_to:None
  in
  Vmspace.map_object primary ~charge_to:None ~base:Layout.text_base ~name:"text" ~prot:Prot.rx
    text_obj;
  Vmspace.map_object primary ~charge_to:None ~base:Layout.data_base ~name:"data" ~prot:Prot.rw
    data_obj;
  let stack_base = Layout.stack_top - stack_size in
  Vmspace.map_object primary ~charge_to:None ~base:stack_base ~name:"stack0" ~prot:Prot.rw
    stack_obj;
  {
    pid = Sim_ctx.next_pid (Machine.sim_ctx machine);
    name;
    cred;
    machine;
    cspace = Cap.Cspace.create ();
    primary;
    text_obj;
    data_obj;
    text_size;
    data_size;
    thread_list = [ { tid = 0; stack_base; stack_size; stack_obj } ];
    next_tid = 1;
    live = true;
  }

let pid t = t.pid
let name t = t.name
let cred t = t.cred
let machine t = t.machine
let cspace t = t.cspace
let primary_vmspace t = t.primary
let threads t = List.rev t.thread_list

let main_thread t =
  match List.rev t.thread_list with
  | th :: _ -> th
  | [] -> assert false

let spawn_thread t =
  if not t.live then Sj_abi.Error.fail Stale_handle ~op:"spawn_thread" "process exited";
  let prev_bottom =
    List.fold_left (fun acc th -> min acc th.stack_base) Layout.stack_top t.thread_list
  in
  let stack_size = (main_thread t).stack_size in
  let stack_base = prev_bottom - Layout.stack_gap - stack_size in
  let stack_obj =
    Vm_object.create
      ~name:(Printf.sprintf "%s.stack%d" t.name t.next_tid)
      t.machine ~size:stack_size ~charge_to:None
  in
  Vmspace.map_object t.primary ~charge_to:None ~base:stack_base
    ~name:(Printf.sprintf "stack%d" t.next_tid) ~prot:Prot.rw stack_obj;
  let th = { tid = t.next_tid; stack_base; stack_size; stack_obj } in
  t.next_tid <- t.next_tid + 1;
  t.thread_list <- th :: t.thread_list;
  th

(* POSIX-style fork of the private half of a process: the primary
   vmspace is duplicated copy-on-write (every PML4 slot shared), and
   the child's object handles are the CoW clones [Vmspace.fork] made —
   *not* the parent's — so a child [exit] only drops the child's
   references and the parent's frames survive any family member's
   crash. Capability space is fresh; credentials are inherited; thread
   geometry (bases, sizes, tids) is mirrored. *)
let fork ?name t ~charge_to =
  if not t.live then Sj_abi.Error.fail Stale_handle ~op:"proc_fork" "process exited";
  let name = match name with Some n -> n | None -> t.name ^ "+" in
  let primary = Vmspace.fork t.primary ~charge_to ~share:(fun _ -> true) in
  let obj_at base =
    match Vmspace.find_region primary ~va:base with
    | Some (r : Vmspace.region) -> r.obj
    | None -> assert false
  in
  let thread_list =
    List.map (fun th -> { th with stack_obj = obj_at th.stack_base }) t.thread_list
  in
  {
    pid = Sim_ctx.next_pid (Machine.sim_ctx t.machine);
    name;
    cred = t.cred;
    machine = t.machine;
    cspace = Cap.Cspace.create ();
    primary;
    text_obj = obj_at Layout.text_base;
    data_obj = obj_at Layout.data_base;
    text_size = t.text_size;
    data_size = t.data_size;
    thread_list;
    next_tid = t.next_tid;
    live = true;
  }

let private_regions t =
  List.filter (fun (r : Vmspace.region) -> Layout.is_private r.base) (Vmspace.regions t.primary)

let exit t =
  if t.live then begin
    t.live <- false;
    Vmspace.destroy t.primary ~charge_to:None;
    Vm_object.destroy t.machine t.text_obj;
    Vm_object.destroy t.machine t.data_obj;
    List.iter (fun th -> Vm_object.destroy t.machine th.stack_obj) t.thread_list
  end

let is_live t = t.live
