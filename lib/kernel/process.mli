(** Processes and threads.

    A process owns credentials, a capability space, and an initial
    ("primary") vmspace populated with its private segments: program
    text, globals, and one stack per thread. These private segments
    form the paper's *common region* (§3.3) — the runtime maps them
    into every VAS the process attaches, so code, globals and stacks
    stay valid across switches (Fig. 2). *)

type t

type thread = { tid : int; stack_base : int; stack_size : int; stack_obj : Vm_object.t }

val create :
  ?text_size:int ->
  ?data_size:int ->
  ?stack_size:int ->
  ?cred:Acl.cred ->
  name:string ->
  Sj_machine.Machine.t ->
  t
(** Build a process with one thread. Segment sizes default to 512 KiB
    text, 2 MiB data, 8 MiB stack. *)

val pid : t -> int
val name : t -> string
val cred : t -> Acl.cred
val machine : t -> Sj_machine.Machine.t
val cspace : t -> Cap.Cspace.t
val primary_vmspace : t -> Vmspace.t
val threads : t -> thread list
val main_thread : t -> thread

val spawn_thread : t -> thread
(** Add a thread with a fresh stack below the previous one. *)

val fork :
  ?name:string ->
  t ->
  charge_to:Sj_machine.Machine.Core.core option ->
  t
(** Copy-on-write duplicate with a fresh pid: the primary vmspace forks
    via {!Vmspace.fork} (all spans shared), the child's text/data/stack
    handles are the CoW-cloned objects (so a child {!exit} never frees
    the parent's frames), credentials and thread geometry are
    inherited, and the capability space starts empty. [name] defaults
    to the parent's name suffixed with ["+"]. VAS attachments, segment
    locks and pkey ownership are runtime state and deliberately NOT
    duplicated here — [Api.proc_fork] rebuilds them under its own
    rules. *)

val private_regions : t -> Vmspace.region list
(** The common-region descriptors (text, data, every thread stack) to
    replicate into attached VASes. *)

val exit : t -> unit
(** Tear down: destroy the primary vmspace and free private segment
    memory. VASes the process created live on (§3.2). *)

val is_live : t -> bool
