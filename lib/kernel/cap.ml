open Sj_paging
module Sim_ctx = Sj_util.Sim_ctx

type captype = Ram of int | Frame | Vnode of int | Vas_ref of int | Endpoint of int

type t = {
  id : int;
  ctx : Sim_ctx.t; (* id generator; children inherit it *)
  captype : captype;
  rights : Prot.t;
  mutable revoked : bool;
  mutable retyped : bool;
  mutable children : t list;
}

let make ctx captype rights =
  {
    id = Sim_ctx.next_cap_id ctx;
    ctx;
    captype;
    rights;
    revoked = false;
    retyped = false;
    children = [];
  }

let captype t = t.captype
let rights t = t.rights
let is_revoked t = t.revoked
let create_ram ctx ~size = make ctx (Ram size) Prot.rwx
let create_endpoint ctx ~service = make ctx (Endpoint service) Prot.rw
let create_vas_ref ctx ~vas ~rights = make ctx (Vas_ref vas) rights

let retype t ~into =
  if t.revoked then Sj_abi.Error.fail Stale_handle ~op:"cap_retype" "revoked";
  (match t.captype with
  | Ram _ -> ()
  | Frame | Vnode _ | Vas_ref _ | Endpoint _ ->
    Sj_abi.Error.fail Invalid ~op:"cap_retype" "source is not untyped RAM");
  if t.retyped then Sj_abi.Error.fail Invalid ~op:"cap_retype" "already retyped";
  (match into with
  | Frame | Vnode _ -> ()
  | Ram _ | Vas_ref _ | Endpoint _ ->
    Sj_abi.Error.fail Invalid ~op:"cap_retype" "invalid target type");
  t.retyped <- true;
  let child = make t.ctx into t.rights in
  t.children <- child :: t.children;
  child

let mint t ~rights =
  if t.revoked then Sj_abi.Error.fail Stale_handle ~op:"cap_mint" "revoked";
  if not (Prot.subsumes t.rights rights) then
    Sj_abi.Error.fail Permission_denied ~op:"cap_mint" "rights amplification";
  let child = make t.ctx t.captype rights in
  t.children <- child :: t.children;
  child

let rec revoke t =
  if not t.revoked then begin
    t.revoked <- true;
    List.iter revoke t.children;
    t.children <- []
  end

module Cspace = struct
  type cap = t
  type nonrec t = { mutable next_slot : int; table : (int, cap) Hashtbl.t }

  let create () = { next_slot = 1; table = Hashtbl.create 16 }

  let insert t cap =
    let slot = t.next_slot in
    t.next_slot <- slot + 1;
    Hashtbl.replace t.table slot cap;
    slot

  let lookup t slot = Hashtbl.find_opt t.table slot
  let delete t slot = Hashtbl.remove t.table slot
  let slots t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table []

  let invoke t ~slot ~access =
    match lookup t slot with
    | None -> Sj_abi.Error.fail Unknown_name ~op:"cap_invoke" "empty slot"
    | Some cap ->
      if cap.revoked then Sj_abi.Error.fail Stale_handle ~op:"cap_invoke" "revoked capability";
      if not (Prot.allows cap.rights access) then
        Sj_abi.Error.fail Permission_denied ~op:"cap_invoke" "insufficient rights";
      cap
end
