open Sj_util

let text_base = 0x40_0000
let data_base = 0x60_0000
let stack_top = 0x7f_ffff_f000
let stack_gap = Size.mib 1
let private_limit = Size.tib 1
let global_base = private_limit
let is_private va = va >= 0 && va < private_limit
let is_global va = va >= global_base && va < Addr.va_limit

(* The cursor lives in the simulation's Sim_ctx (as an offset above
   [global_base]) so two machines place their global segments
   identically and independently. *)

let next_global_base ctx ~size =
  let base = global_base + Sim_ctx.layout_offset ctx in
  let span = Size.round_up size ~align:(Size.gib 1) in
  if base + span >= Addr.va_limit then
    Sj_abi.Error.failf Layout_exhausted ~op:"seg_alloc"
      "global address range exhausted (cursor %s + %s exceeds %s)" (Addr.to_string base)
      (Size.to_string span) (Addr.to_string Addr.va_limit);
  (* The cursor only advances on success, so a caller that observes the
     fault can release space (or pick another machine) and retry. *)
  Sim_ctx.set_layout_offset ctx (base + span - global_base);
  base

let reset_global_allocator ctx = Sim_ctx.set_layout_offset ctx 0

let reserve_global ctx ~base ~size =
  let top = Size.round_up (base + size) ~align:(Size.gib 1) in
  if top - global_base > Sim_ctx.layout_offset ctx then
    Sim_ctx.set_layout_offset ctx (top - global_base)
