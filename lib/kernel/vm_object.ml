open Sj_util
module Machine = Sj_machine.Machine

type t = {
  id : int;
  ctx : Sim_ctx.t; (* id generator for COW clones of this object *)
  name : string option;
  mutable frames : Sj_mem.Phys_mem.frame array;
  (* Per-page owner counts; the cell (not just the value) is shared
     with COW clones so splits and destroys stay coherent. *)
  mutable shares : int ref array;
  mutable destroyed : bool;
}

let create ?name ?node ?contiguous machine ~size ~charge_to =
  if size <= 0 then Sj_abi.Error.fail Invalid ~op:"vm_object_create" "size must be positive";
  let pages = (size + Addr.page_size - 1) / Addr.page_size in
  let frames = Machine.alloc_pages ?node ?contiguous machine ~n:pages ~charge_to in
  let ctx = Machine.sim_ctx machine in
  {
    id = Sim_ctx.next_vm_object_id ctx;
    ctx;
    name;
    frames;
    shares = Array.init pages (fun _ -> ref 1);
    destroyed = false;
  }

let id t = t.id
let name t = t.name
let pages t = Array.length t.frames
let size t = pages t * Addr.page_size
let frames t = t.frames

let frame_at t ~page =
  if page < 0 || page >= Array.length t.frames then
    Sj_abi.Error.fail Invalid ~op:"vm_object_frame" "page out of range";
  t.frames.(page)

let grow ?node machine t ~by_pages ~charge_to =
  if t.destroyed then Sj_abi.Error.fail Stale_handle ~op:"vm_object_grow" "destroyed";
  if by_pages <= 0 then
    Sj_abi.Error.fail Invalid ~op:"vm_object_grow" "by_pages must be positive";
  let extra = Machine.alloc_pages ?node machine ~n:by_pages ~charge_to in
  t.frames <- Array.append t.frames extra;
  t.shares <- Array.append t.shares (Array.init by_pages (fun _ -> ref 1))

let destroy machine t =
  if not t.destroyed then begin
    Array.iteri
      (fun i frame ->
        let r = t.shares.(i) in
        decr r;
        if !r = 0 then Sj_mem.Phys_mem.free_frame (Machine.mem machine) frame)
      t.frames;
    t.destroyed <- true;
    t.frames <- [||];
    t.shares <- [||]
  end

let is_destroyed t = t.destroyed

let cow_clone ?name t =
  if t.destroyed then Sj_abi.Error.fail Stale_handle ~op:"vm_object_clone" "destroyed";
  Array.iter incr t.shares;
  {
    id = Sim_ctx.next_vm_object_id t.ctx;
    ctx = t.ctx;
    name = (match name with Some _ -> name | None -> t.name);
    frames = Array.copy t.frames;
    shares = Array.copy t.shares (* same ref cells, private array *);
    destroyed = false;
  }

let page_shared t ~page = !(t.shares.(page)) > 1

let is_contiguous t =
  let n = Array.length t.frames in
  n > 0
  &&
  let rec go i =
    i >= n || ((t.frames.(i) :> int) = (t.frames.(0) :> int) + i && go (i + 1))
  in
  go 1

let resolve_cow_write t ~page machine ~charge_to =
  let r = t.shares.(page) in
  if !r <= 1 then t.frames.(page)
  else begin
    let mem = Machine.mem machine in
    let fresh = Machine.alloc_pages machine ~n:1 ~charge_to in
    let dst = fresh.(0) in
    let data =
      Sj_mem.Phys_mem.read_bytes mem
        ~pa:(Sj_mem.Phys_mem.base_of_frame t.frames.(page))
        ~len:Sj_util.Addr.page_size
    in
    Sj_mem.Phys_mem.write_bytes mem ~pa:(Sj_mem.Phys_mem.base_of_frame dst) data;
    decr r;
    t.frames.(page) <- dst;
    t.shares.(page) <- ref 1;
    dst
  end
