(** BENCH_fork.json: schema "spacejmp-bench/7-fork". The headline pair
    (prefork pool vs fork-per-connection at the same shape), the sweep
    grid over mode x connections x write fraction, the acceptance
    claims, and the determinism audit verdict. {!check_string} refuses
    a report that records a divergence or a failed claim. *)

type point = { cfg : Sj_kvstore.Kv_fork.config; res : Sj_kvstore.Kv_fork.result }

type t = {
  quick : bool;
  jobs : int;
  cores : int;
  ocaml_version : string;
  headline : point list;  (** one per serving mode, same shape *)
  grid : point list;
  fault_storm_measured : bool;
  prefork_steady_zero : bool;
  parent_store_unwritten : bool;
  sharing_over_90 : bool;
  refcounts_leak_free : bool;
  prefork_faster : bool;
  determinism_ok : bool;
  audits : string list;
}

val schema : string

val to_json : t -> string

val check_string : string -> (unit, string list) result

val check_file : string -> (unit, string list) result
