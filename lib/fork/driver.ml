(* The `bench fork` / `sjctl fork` driver: runs the headline pair (one
   run per serving mode at the same shape), the sweep grid over serving
   mode x connections x write fraction, evaluates the acceptance
   claims, and runs the same determinism audits as the cluster and
   compartment drivers. Shared by bench/forkbench.ml and bin/sjctl.ml
   so the two front-ends cannot drift.

   Two failure channels, both fatal to the front-ends (exit 2, no
   report written):
   - [divergences]: a fingerprint changed under a host-side condition
     that must not leak into simulated results (rerun, tracing on,
     empty fault plan installed, inside a domain pool);
   - [failed_claims]: a fork-per-connection run with no CoW fault
     storm, a prefork run with steady-state faults, a connection whose
     writes reached the parent's store, a forked family sharing <=90%
     of its page-table nodes, a refcount leak, or a headline where the
     prefork pool did not out-serve fork-per-connection. *)

module Par = Sj_util.Par
module Kv_fork = Sj_kvstore.Kv_fork

type outcome = {
  report : Fork_report.t;
  divergences : string list;  (* empty iff report.determinism_ok *)
  failed_claims : string list;
}

let modes = [ Kv_fork.Prefork { workers = 4 }; Kv_fork.Fork_per_conn ]

(* Headline shape: enough connections that the p99 sits inside the
   storm, at the default 25%-write mix. *)
let headline_cfg ~quick =
  if quick then { Kv_fork.default with connections = 8; requests_per_conn = 16 }
  else { Kv_fork.default with connections = 32; requests_per_conn = 32 }

(* The sweep is about the *shape* of the surface: how the storm scales
   with connection count, and whether a read-only mix still pays it
   (it does — connection bookkeeping breaks the child's CoW pages even
   when no SET touches the snapshot). *)
let grid_cfg ~quick =
  if quick then { Kv_fork.default with connections = 4; requests_per_conn = 8 }
  else { Kv_fork.default with connections = 12; requests_per_conn = 16 }

let grid_axes ~quick =
  if quick then ([ 4; 8 ], [ 0.0; 0.5 ]) else ([ 4; 12; 24 ], [ 0.0; 0.25; 0.5 ])

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let fp_equal (a : Kv_fork.result) (b : Kv_fork.result) =
  a.Kv_fork.fingerprint = b.Kv_fork.fingerprint

(* The acceptance claims, evaluated over the sweep (headline included —
   it is just another shape). *)
let evaluate points =
  let failed = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failed := s :: !failed) fmt in
  List.iter
    (fun (p : Fork_report.point) ->
      let c = p.cfg and r = p.res in
      let shape =
        Printf.sprintf "%s(connections=%d,sets=%.2f)"
          (Kv_fork.mode_name c.Kv_fork.mode)
          c.Kv_fork.connections c.Kv_fork.set_fraction
      in
      (match c.Kv_fork.mode with
      | Kv_fork.Fork_per_conn ->
        if r.Kv_fork.cow_faults = 0 then fail "no-fault-storm%s" shape;
        (* Every connection is two Fork events: the proc_fork of the
           worker and the vas_fork of its snapshot. *)
        if r.Kv_fork.forks <> 2 * c.Kv_fork.connections then
          fail "fork-count%s: %d of %d" shape r.Kv_fork.forks (2 * c.Kv_fork.connections);
        if r.Kv_fork.checksum_before <> r.Kv_fork.checksum_after then
          fail "store-written%s" shape
      | Kv_fork.Prefork _ ->
        if r.Kv_fork.steady_cow_faults <> 0 then
          fail "steady-faults%s: %d" shape r.Kv_fork.steady_cow_faults);
      if
        float_of_int r.Kv_fork.share_shared
        <= 0.9 *. float_of_int (max 1 r.Kv_fork.share_total)
      then
        fail "sharing-under-90%s: %d/%d" shape r.Kv_fork.share_shared r.Kv_fork.share_total;
      if r.Kv_fork.pt_leaked <> 0 || r.Kv_fork.pt_imbalanced <> 0 then
        fail "refcount-leak%s: %d leaked, %d imbalanced" shape r.Kv_fork.pt_leaked
          r.Kv_fork.pt_imbalanced)
    points;
  List.rev !failed

let evaluate_headline (headline : Fork_report.point list) =
  let find m =
    List.find_opt
      (fun (p : Fork_report.point) -> Kv_fork.mode_name p.cfg.Kv_fork.mode = m)
      headline
  in
  match (find "prefork", find "fork_per_conn") with
  | Some pf, Some fc ->
    if pf.res.Kv_fork.throughput > fc.res.Kv_fork.throughput then []
    else
      [
        Printf.sprintf "prefork-not-faster: %.1f <= %.1f rps" pf.res.Kv_fork.throughput
          fc.res.Kv_fork.throughput;
      ]
  | _ -> [ "missing-headline-mode" ]

let run ~quick ~jobs ?(progress = fun _ -> ()) () =
  let point cfg = { Fork_report.cfg; res = Kv_fork.run cfg } in
  let hcfg = headline_cfg ~quick in
  progress "headline: one run per serving mode, same shape";
  let headline = List.map (fun mode -> point { hcfg with Kv_fork.mode }) modes in
  let gcfg = grid_cfg ~quick in
  let conns_l, sets_l = grid_axes ~quick in
  let cfgs =
    List.concat_map
      (fun mode ->
        List.concat_map
          (fun connections ->
            List.map
              (fun set_fraction -> { gcfg with Kv_fork.mode; connections; set_fraction })
              sets_l)
          conns_l)
      modes
  in
  progress
    (Printf.sprintf "grid: %d points (serving mode x connections x write fraction)"
       (List.length cfgs));
  (* Each point simulates its own machine, so fanning points across
     domains changes only the wall clock; results are assembled in
     config order either way. *)
  let grid =
    if jobs <= 1 then List.map point cfgs
    else
      Par.with_pool ~size:jobs (fun pool ->
          List.map2
            (fun cfg res -> { Fork_report.cfg; res })
            cfgs
            (Par.map_list pool Kv_fork.run cfgs))
  in
  progress "claims: storm present, prefork steady-state clean, store unwritten";
  let failed_claims = evaluate (headline @ grid) @ evaluate_headline headline in
  progress "determinism audits";
  (* Audit the fork-per-connection path (the novel one) under every
     host condition, plus a plain rerun of a prefork config. *)
  let acfg = { gcfg with Kv_fork.mode = Kv_fork.Fork_per_conn } in
  let reference = Kv_fork.run acfg in
  let divergences = ref [] in
  let audit name r =
    if not (fp_equal reference r) then divergences := name :: !divergences
  in
  audit "rerun" (Kv_fork.run acfg);
  audit "trace-on" (Sj_obs.Recorder.with_tracing true (fun () -> Kv_fork.run acfg));
  audit "empty-fault-plan" (Sj_fault.Injector.with_plan [] (fun () -> Kv_fork.run acfg));
  Par.with_pool ~size:(max 2 jobs) (fun pool ->
      List.iter
        (fun r -> audit "domains" r)
        (Par.map_list pool Kv_fork.run [ acfg; acfg ]));
  let pcfg = { gcfg with Kv_fork.mode = Kv_fork.Prefork { workers = 4 } } in
  let pref = Kv_fork.run pcfg in
  if not (fp_equal pref (Kv_fork.run pcfg)) then
    divergences := "rerun-prefork" :: !divergences;
  let report =
    {
      Fork_report.quick;
      jobs;
      cores = Domain.recommended_domain_count ();
      ocaml_version = Sys.ocaml_version;
      headline;
      grid;
      fault_storm_measured =
        not (List.exists (has_prefix "no-fault-storm") failed_claims
             || List.exists (has_prefix "fork-count") failed_claims);
      prefork_steady_zero = not (List.exists (has_prefix "steady-faults") failed_claims);
      parent_store_unwritten = not (List.exists (has_prefix "store-written") failed_claims);
      sharing_over_90 = not (List.exists (has_prefix "sharing-under-90") failed_claims);
      refcounts_leak_free = not (List.exists (has_prefix "refcount-leak") failed_claims);
      prefork_faster =
        not (List.exists (has_prefix "prefork-not-faster") failed_claims
             || List.exists (has_prefix "missing-headline") failed_claims);
      determinism_ok = !divergences = [];
      audits = [ "rerun"; "trace-on"; "empty-fault-plan"; "domains"; "rerun-prefork" ];
    }
  in
  { report; divergences = List.rev !divergences; failed_claims }
