(* BENCH_fork.json, schema "spacejmp-bench/7-fork".

   Extends the spacejmp-bench report family to the fork bench: the same
   host block and determinism discipline as the cluster and compartment
   reports (a report recording a divergence is refused by the checker;
   the harness exits 2 before writing one), plus the serving-mode
   comparison — a headline pair (prefork pool vs fork-per-connection at
   the same shape), the sweep grid over mode x connections x write
   fraction, and the claims the ISSUE's acceptance criteria name:
   fork-per-connection runs show a measurable CoW fault storm, the
   prefork pool takes zero steady-state CoW faults, the parent's store
   checksum is unwritten by any connection, every forked family shares
   >90% of its page-table nodes pre-write, and the page-table refcount
   audit is leak-free and balanced after every run. A report with any
   claim false is refused too. *)

module Kv_fork = Sj_kvstore.Kv_fork

type point = { cfg : Kv_fork.config; res : Kv_fork.result }

type t = {
  quick : bool;
  jobs : int;
  cores : int;
  ocaml_version : string;
  headline : point list;  (* one per mode, same shape *)
  grid : point list;
  fault_storm_measured : bool;
  prefork_steady_zero : bool;
  parent_store_unwritten : bool;
  sharing_over_90 : bool;
  refcounts_leak_free : bool;
  prefork_faster : bool;
  determinism_ok : bool;
  audits : string list;
}

let schema = "spacejmp-bench/7-fork"

let add_point b ~indent ~label p =
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let pad = String.make indent ' ' in
  let c = p.cfg and r = p.res in
  add "%s\"%s\": {\n" pad label;
  add "%s  \"mode\": \"%s\",\n" pad (Kv_fork.mode_name c.Kv_fork.mode);
  add "%s  \"connections\": %d,\n" pad c.connections;
  add "%s  \"requests_per_conn\": %d,\n" pad c.requests_per_conn;
  add "%s  \"set_fraction\": %.2f,\n" pad c.set_fraction;
  add "%s  \"store_bytes\": %d,\n" pad c.store_size;
  add "%s  \"requests\": %d,\n" pad r.Kv_fork.requests;
  add "%s  \"throughput_rps\": %.1f,\n" pad r.throughput;
  add "%s  \"latency_p50_cycles\": %.1f,\n" pad r.p50;
  add "%s  \"latency_p99_cycles\": %.1f,\n" pad r.p99;
  add "%s  \"forks\": %d,\n" pad r.forks;
  add "%s  \"cow_faults\": %d,\n" pad r.cow_faults;
  add "%s  \"steady_cow_faults\": %d,\n" pad r.steady_cow_faults;
  add "%s  \"cow_copies\": %d,\n" pad r.cow_copies;
  add "%s  \"pt_nodes_total\": %d,\n" pad r.share_total;
  add "%s  \"pt_nodes_shared\": %d,\n" pad r.share_shared;
  add "%s  \"checksum_stable\": %b,\n" pad (r.checksum_before = r.checksum_after);
  add "%s  \"pt_leaked\": %d,\n" pad r.pt_leaked;
  add "%s  \"pt_imbalanced\": %d,\n" pad r.pt_imbalanced;
  add "%s  \"simulated\": {" pad;
  List.iteri
    (fun j (k, v) ->
      if j > 0 then add ", ";
      add "\"%s\": %d" k v)
    r.fingerprint;
  add "}\n";
  add "%s}" pad

let to_json r =
  let b = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"schema\": \"%s\",\n" schema;
  add "  \"mode\": \"%s\",\n" (if r.quick then "quick" else "full");
  add "  \"host\": {\n";
  add "    \"cores\": %d,\n" r.cores;
  add "    \"ocaml_version\": \"%s\",\n" r.ocaml_version;
  add "    \"jobs\": %d\n" r.jobs;
  add "  },\n";
  add "  \"headline\": {\n";
  List.iteri
    (fun i p ->
      if i > 0 then add ",\n";
      add_point b ~indent:4 ~label:(Kv_fork.mode_name p.cfg.Kv_fork.mode) p)
    r.headline;
  add "\n  },\n";
  add "  \"grid\": [\n";
  List.iteri
    (fun i p ->
      add "    {\n";
      add_point b ~indent:6 ~label:"point" p;
      add "\n    }%s\n" (if i = List.length r.grid - 1 then "" else ","))
    r.grid;
  add "  ],\n";
  add "  \"claims\": {\n";
  add "    \"fault_storm_measured\": %b,\n" r.fault_storm_measured;
  add "    \"prefork_steady_zero\": %b,\n" r.prefork_steady_zero;
  add "    \"parent_store_unwritten\": %b,\n" r.parent_store_unwritten;
  add "    \"sharing_over_90\": %b,\n" r.sharing_over_90;
  add "    \"refcounts_leak_free\": %b,\n" r.refcounts_leak_free;
  add "    \"prefork_faster\": %b\n" r.prefork_faster;
  add "  },\n";
  add "  \"determinism\": {\n";
  add "    \"audits\": [%s],\n"
    (String.concat ", " (List.map (Printf.sprintf "\"%s\"") r.audits));
  add "    \"equal\": %b\n" r.determinism_ok;
  add "  }\n}\n";
  Buffer.contents b

(* Same validation discipline as {!Compart_report.check_string}: no
   JSON library in the tree, so check nesting balance outside strings,
   required keys, and refuse any recorded divergence or failed claim. *)
let check_string s =
  let depth = ref 0 and in_str = ref false and ok = ref true in
  String.iteri
    (fun i ch ->
      if !in_str then begin
        if ch = '"' && (i = 0 || s.[i - 1] <> '\\') then in_str := false
      end
      else
        match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
          decr depth;
          if !depth < 0 then ok := false
        | _ -> ())
    s;
  if !depth <> 0 || !in_str then ok := false;
  let required =
    [
      Printf.sprintf "\"schema\": \"%s\"" schema;
      "\"host\"";
      "\"cores\"";
      "\"ocaml_version\"";
      "\"jobs\"";
      "\"headline\"";
      "\"prefork\"";
      "\"fork_per_conn\"";
      "\"grid\"";
      "\"throughput_rps\"";
      "\"latency_p50_cycles\"";
      "\"latency_p99_cycles\"";
      "\"cow_faults\"";
      "\"pt_nodes_shared\"";
      "\"simulated\"";
      "\"claims\"";
      "\"fault_storm_measured\"";
      "\"prefork_steady_zero\"";
      "\"parent_store_unwritten\"";
      "\"sharing_over_90\"";
      "\"refcounts_leak_free\"";
      "\"prefork_faster\"";
      "\"determinism\"";
    ]
  in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let errors = ref [] in
  List.iter
    (fun key ->
      if not (contains key) then
        errors := Printf.sprintf "missing key %s" key :: !errors)
    required;
  if contains "\"equal\": false" then
    errors := "report records a determinism divergence" :: !errors;
  if contains "\"fault_storm_measured\": false" then
    errors := "fork-per-connection run with no CoW fault storm" :: !errors;
  if contains "\"prefork_steady_zero\": false" then
    errors := "prefork pool took steady-state CoW faults" :: !errors;
  if contains "\"parent_store_unwritten\": false" then
    errors := "a connection's writes leaked into the parent's store" :: !errors;
  if contains "\"sharing_over_90\": false" then
    errors := "a forked family shared <=90% of its page-table nodes" :: !errors;
  if contains "\"refcounts_leak_free\": false" then
    errors := "page-table refcount audit found leaks or imbalance" :: !errors;
  if contains "\"prefork_faster\": false" then
    errors := "fork-per-connection outperformed the prefork pool" :: !errors;
  if not !ok then errors := "unbalanced JSON nesting" :: !errors;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let check_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  check_string s
