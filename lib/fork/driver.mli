(** The shared [bench fork] / [sjctl fork] driver: headline pair
    (prefork pool vs fork-per-connection), sweep grid over serving mode
    x connections x write fraction, acceptance claims, determinism
    audits. Front-ends differ only in argument parsing and printing;
    both exit 2 without writing a report when [divergences] or
    [failed_claims] is non-empty. *)

type outcome = {
  report : Fork_report.t;
  divergences : string list;
      (** fingerprint mismatches under host-side conditions (rerun,
          tracing, fault plan, domain pool); empty iff
          [report.determinism_ok] *)
  failed_claims : string list;
      (** acceptance-claim failures: a fork-per-connection run with no
          CoW fault storm, steady-state prefork faults, a connection
          whose writes reached the parent's store, a family sharing
          <=90% of its page-table nodes, a refcount leak, or a headline
          where prefork did not out-serve fork-per-connection *)
}

val headline_cfg : quick:bool -> Sj_kvstore.Kv_fork.config
val grid_cfg : quick:bool -> Sj_kvstore.Kv_fork.config

val run :
  quick:bool -> jobs:int -> ?progress:(string -> unit) -> unit -> outcome
