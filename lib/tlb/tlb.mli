(** Tagged translation lookaside buffer.

    Models an x86-64 data TLB: a set-associative 4 KiB-page array plus a
    small fully-associative 2 MiB-page array, with optional address-space
    identifier (ASID/PCID) tags and global entries.

    Semantics follow §4.4 of the paper:
    - tag 0 is reserved: installing an address space with tag 0 flushes
      all non-global entries (a plain CR3 write);
    - with a non-zero tag, entries of other tags are retained and simply
      do not hit, so switching back to a recently used address space
      finds its translations still resident (Figure 6);
    - global entries (kernel/common-region mappings) hit under any tag
      and survive untagged flushes. *)

type t

type config = {
  sets_4k : int;  (** number of sets in the 4 KiB array *)
  ways_4k : int;
  entries_2m : int;  (** fully associative 2 MiB array size *)
  tag_bits : int;  (** ASID width, e.g. 12 *)
}

val default_config : config
(** 64-entry 4-way L1-like 4 KiB array plus a 1024-entry 8-way second
    level merged as sets, 32-entry 2 MiB array, 12 tag bits --
    representative of the paper's Xeon platforms. *)

type hit = {
  pa : int;
  prot : Sj_paging.Prot.t;
  key : int;
      (** the PTE's protection-key tag — callers evaluate it against
          the current per-core register; rights are never cached *)
  size : Sj_paging.Page_table.page_size;
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable flushes : int;
  mutable flushed_entries : int;
}

val create : config -> t
val config : t -> config
val stats : t -> stats
val reset_stats : t -> unit
val max_tag : t -> int

val missed : int
(** {!translate_probe} sentinel: TLB miss (-1). *)

val prot_failed : int
(** {!translate_probe} sentinel: paging protections deny (-2). *)

val key_failed : int
(** {!translate_probe} sentinel: protection-key register denies (-3). *)

val lookup : t -> tag:int -> va:int -> hit option
(** Probe under ASID [tag]. Global entries hit regardless of tag. *)

val lookup_fast : t -> tag:int -> va:int -> hit option
(** Observably identical to {!lookup} (same result, same stats, same
    LRU updates) but consults a host-side per-tag MRU cache keyed on
    [(tag, 4 KiB page)] before scanning the arrays. Records survive
    [vas_switch]: each tag has its own slot, and validity is stamped
    against the generation of exactly the sets the recording scan
    consulted, so fills and flushes that touch other sets (including
    another address space's traffic) leave the record warm. A hit is
    provably the entry the full scan would have found. *)

val translate_probe : t -> tag:int -> pkru:Sj_paging.Pkey.reg -> va:int -> write:bool -> int
(** Allocation-free variant of {!lookup_fast} for the machine's hot
    path: returns the translated physical address with the protection
    and protection-key checks folded in, [-1] on a TLB miss, [-2] when
    the resident entry's paging protections forbid the access ([write]
    selects which permission is required), or [-3] when the paging
    protections admit it but [pkru] denies the entry's key. The key
    check always consults the *current* [pkru] — entries cache only the
    key tag — so a warm hit after a pkey switch faults or passes
    exactly like a fresh walk, with no flush. Stats and LRU effects are
    identical to {!lookup}. *)

val insert :
  ?key:int ->
  t -> tag:int -> va:int -> pa:int -> prot:Sj_paging.Prot.t ->
  size:Sj_paging.Page_table.page_size -> global:bool -> unit
(** Fill after a walk. Refreshes in place only an entry with the exact
    same [(tag, global)] identity at that vbase — in particular a
    non-global fill never overwrites a global entry — and otherwise
    evicts LRU within the set. *)

val flush_nonglobal : t -> unit
(** Untagged CR3 write: drop every non-global entry. *)

val flush_all : t -> unit
(** Full flush including globals (e.g. CR4.PGE toggle). *)

val flush_tag : t -> tag:int -> unit
(** Drop entries of one ASID (INVPCID). *)

val invalidate_page : t -> va:int -> unit
(** INVLPG: drop any entry, of any tag, translating [va]. *)

val occupancy : t -> int
(** Number of valid entries currently resident. *)

val set_obs : t -> (Sj_obs.Event.flush_kind -> int -> unit) option -> unit
(** Install (or remove) the flush-observation hook. The hook is called
    once per flush or page invalidation with the flush kind and the
    number of entries dropped, after stats are updated. Installed by
    [Machine.create] when tracing is enabled; [None] by default. *)
