open Sj_util
open Sj_paging

type config = { sets_4k : int; ways_4k : int; entries_2m : int; tag_bits : int }

let default_config = { sets_4k = 256; ways_4k = 4; entries_2m = 32; tag_bits = 12 }

type hit = { pa : int; prot : Prot.t; key : int; size : Page_table.page_size }

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable flushes : int;
  mutable flushed_entries : int;
}

type entry = {
  mutable valid : bool;
  mutable vbase : int; (* virtual base of the translated page *)
  mutable tag : int;
  mutable global : bool;
  mutable pa : int; (* physical base of the page *)
  mutable prot : Prot.t;
  (* Protection-key *tag* of the PTE, never its rights: key rights are
     evaluated against the core's current register at every hit, so a
     pkey switch changes what resident entries permit without touching
     them (zero flushes — the whole point of the mechanism). *)
  mutable key : int;
  mutable last_use : int;
}

(* Host-side MRU fast path, one slot per (low bits of) ASID tag so the
   cache stays warm across vas_switch: switching A -> B -> A finds A's
   record intact as long as the arrays it depends on are unchanged.
   Validation is per-set generation stamps rather than one global
   counter — a fill or flush in set S only invalidates records whose
   scan consulted S, so unrelated traffic (including the other tag's
   fills) no longer evicts a warm record. A record of a 2 MiB hit also
   stamps the 2 MiB array: its scan proved a 4 KiB-set miss *and* a
   2 MiB hit, so both must be unchanged for a replay to be exact. *)
type mru_slot = {
  mutable m_tag : int; (* -1 = empty *)
  mutable m_vbase : int; (* 4 KiB base of the access that recorded it *)
  mutable m_size : Page_table.page_size;
  mutable m_entry : entry;
  mutable m_set : int; (* 4 KiB set index of m_vbase *)
  mutable m_set_gen : int;
  mutable m_2m_gen : int; (* only checked when m_size = P2M *)
}

let mru_slots = 64 (* power of two; slot = tag land (mru_slots - 1) *)

type t = {
  cfg : config;
  array_4k : entry array array; (* [set].[way] *)
  array_2m : entry array;
  stats : stats;
  mutable clock : int;
  (* Per-set generation stamps (see [mru_slot]) and per-set counts of
     valid entries. The counts let flushes skip provably empty sets, so
     a flush costs O(resident entries), not O(capacity) — the dominant
     host cost of switch-heavy workloads (every untagged vas_switch is
     a flush_nonglobal over all sets). Stats are unaffected: a skipped
     set contributes zero flushed entries either way. *)
  set_gens : int array;
  valid_4k : int array;
  (* Worklist of 4 KiB set indices that *may* hold valid entries: every
     set whose count went 0 -> 1 is pushed, and flushes visit only the
     worklist instead of striding all [sets_4k] counters. Entries can
     be stale (the count fell back to 0) or duplicated (refilled while
     a stale entry remained) — both are harmless, since visits re-check
     the count — and flushes compact the list to the survivors. If the
     list ever fills, [occ_overflow] falls back to the full stride once
     and rebuilds. Purely host-side: which entries a flush drops, and
     every stat, is identical with or without the list. *)
  occ : int array;
  mutable n_occ : int;
  mutable occ_overflow : bool;
  mutable gen_2m : int;
  mutable valid_2m : int;
  mru : mru_slot array;
  (* Observability hook, installed by Machine.create when tracing is on;
     called once per flush operation with the flush kind and the number
     of entries invalidated. None (the default) costs one test per
     flush — nothing on lookup/insert hot paths. *)
  mutable obs : (Sj_obs.Event.flush_kind -> int -> unit) option;
}

let fresh_entry () =
  {
    valid = false;
    vbase = 0;
    tag = 0;
    global = false;
    pa = 0;
    prot = Prot.none;
    key = 0;
    last_use = 0;
  }

let fresh_stats () =
  { hits = 0; misses = 0; insertions = 0; evictions = 0; flushes = 0; flushed_entries = 0 }

let fresh_slot () =
  {
    m_tag = -1;
    m_vbase = -1;
    m_size = Page_table.P4K;
    m_entry = fresh_entry ();
    m_set = 0;
    m_set_gen = -1;
    m_2m_gen = -1;
  }

(* 4 KiB set rows are allocated on first insert; untouched sets share
   this sentinel (tested by physical equality). [probe_set] and
   [kill_where] treat the empty row as what it is — a set with no
   entries — so only [insert] needs to materialize rows, and creating
   a TLB no longer allocates sets*ways entry records up front. *)
let no_ways : entry array = [||]

let create cfg =
  if not (Size.is_power_of_two cfg.sets_4k) then invalid_arg "Tlb.create: sets_4k";
  if cfg.ways_4k <= 0 || cfg.entries_2m <= 0 then invalid_arg "Tlb.create: sizes";
  {
    cfg;
    array_4k = Array.make cfg.sets_4k no_ways;
    array_2m = Array.init cfg.entries_2m (fun _ -> fresh_entry ());
    stats = fresh_stats ();
    clock = 0;
    set_gens = Array.make cfg.sets_4k 0;
    valid_4k = Array.make cfg.sets_4k 0;
    occ = Array.make cfg.sets_4k 0;
    n_occ = 0;
    occ_overflow = false;
    gen_2m = 0;
    valid_2m = 0;
    mru = Array.init mru_slots (fun _ -> fresh_slot ());
    obs = None;
  }

let set_obs t hook = t.obs <- hook

let notify_flush t kind entries =
  match t.obs with None -> () | Some f -> f kind entries

let config t = t.cfg
let stats t = t.stats

let note_occupied t set_idx =
  if t.n_occ < Array.length t.occ then begin
    t.occ.(t.n_occ) <- set_idx;
    t.n_occ <- t.n_occ + 1
  end
  else t.occ_overflow <- true

let reset_stats t =
  let s = t.stats in
  s.hits <- 0;
  s.misses <- 0;
  s.insertions <- 0;
  s.evictions <- 0;
  s.flushes <- 0;
  s.flushed_entries <- 0

let max_tag t = (1 lsl t.cfg.tag_bits) - 1
let tick t = t.clock <- t.clock + 1; t.clock
let set_of_4k t va = Addr.page_of va land (t.cfg.sets_4k - 1)
let base_4k va = Size.round_down va ~align:Addr.page_size
let base_2m va = Size.round_down va ~align:(Size.mib 2)

let entry_matches e ~tag ~vbase = e.valid && e.vbase = vbase && (e.global || e.tag = tag)

(* Sentinel results of [translate_probe]; PAs are non-negative, so
   these cannot collide with a real translation. *)
let missed = -1
let prot_failed = -2
let key_failed = -3

(* Way index of the matching entry, or -1. A direct indexed loop so the
   hot paths (lookup, insert refresh) allocate nothing. *)
let probe_set set ~tag ~vbase =
  let n = Array.length set in
  let rec go i =
    if i >= n then -1 else if entry_matches set.(i) ~tag ~vbase then i else go (i + 1)
  in
  go 0

(* Exact-identity probe used by [insert]'s refresh-in-place path. Unlike
   [entry_matches] it does NOT treat a global entry as matching every
   tag: refreshing is only sound when (tag, global) are identical,
   otherwise a non-global fill for tag T would silently overwrite a
   global mapping that happens to share the vbase. *)
let probe_exact set ~tag ~vbase ~global =
  let n = Array.length set in
  let rec go i =
    if i >= n then -1
    else
      let e = set.(i) in
      if e.valid && e.vbase = vbase && e.tag = tag && e.global = global then i
      else go (i + 1)
  in
  go 0

let hit_entry t e =
  e.last_use <- tick t;
  t.stats.hits <- t.stats.hits + 1

let lookup t ~tag ~va =
  let hit_of e size = { pa = e.pa + (va - e.vbase); prot = e.prot; key = e.key; size } in
  let set = t.array_4k.(set_of_4k t va) in
  let i4 = probe_set set ~tag ~vbase:(base_4k va) in
  if i4 >= 0 then begin
    let e = set.(i4) in
    hit_entry t e;
    Some (hit_of e Page_table.P4K)
  end
  else begin
    let i2 = probe_set t.array_2m ~tag ~vbase:(base_2m va) in
    if i2 >= 0 then begin
      let e = t.array_2m.(i2) in
      hit_entry t e;
      Some (hit_of e Page_table.P2M)
    end
    else begin
      t.stats.misses <- t.stats.misses + 1;
      None
    end
  end

(* A slot replay is exact when the arrays its recording scan consulted
   are unchanged: for a 4 KiB hit that is just the home set (the scan
   stopped there); for a 2 MiB hit it is the home set (which missed)
   plus the 2 MiB array (which hit). The slot's entry is then provably
   the entry a full scan would return right now. *)
let slot_matches t s ~tag ~vbase =
  s.m_tag = tag && s.m_vbase = vbase
  && s.m_set_gen = Array.unsafe_get t.set_gens s.m_set
  && (match s.m_size with
     | Page_table.P4K -> true
     | Page_table.P2M -> s.m_2m_gen = t.gen_2m)

let record_mru t ~tag ~vbase e size ~set_idx =
  let s = Array.unsafe_get t.mru (tag land (mru_slots - 1)) in
  s.m_tag <- tag;
  s.m_vbase <- vbase;
  s.m_size <- size;
  s.m_entry <- e;
  s.m_set <- set_idx;
  s.m_set_gen <- Array.unsafe_get t.set_gens set_idx;
  s.m_2m_gen <- t.gen_2m

let lookup_fast t ~tag ~va =
  let vbase = base_4k va in
  let s = Array.unsafe_get t.mru (tag land (mru_slots - 1)) in
  if slot_matches t s ~tag ~vbase then begin
    let e = s.m_entry in
    hit_entry t e;
    Some { pa = e.pa + (va - e.vbase); prot = e.prot; key = e.key; size = s.m_size }
  end
  else begin
    let set_idx = set_of_4k t va in
    let set = t.array_4k.(set_idx) in
    let i4 = probe_set set ~tag ~vbase in
    if i4 >= 0 then begin
      let e = set.(i4) in
      hit_entry t e;
      record_mru t ~tag ~vbase e Page_table.P4K ~set_idx;
      Some { pa = e.pa + (va - e.vbase); prot = e.prot; key = e.key; size = Page_table.P4K }
    end
    else begin
      let i2 = probe_set t.array_2m ~tag ~vbase:(base_2m va) in
      if i2 >= 0 then begin
        let e = t.array_2m.(i2) in
        hit_entry t e;
        record_mru t ~tag ~vbase e Page_table.P2M ~set_idx;
        Some { pa = e.pa + (va - e.vbase); prot = e.prot; key = e.key; size = Page_table.P2M }
      end
      else begin
        t.stats.misses <- t.stats.misses + 1;
        None
      end
    end
  end

(* Protection check folded in so the machine's hot path needs no [hit]
   record, no option, and no closure. The key check runs after the
   paging check, against the *caller's current* register — the entry
   contributes only its key tag, so a warm entry faults or passes
   exactly as a fresh walk of the same PTE would under that register. *)
let checked_pa ~pkru ~write ~va e =
  if if write then e.prot.Prot.write else e.prot.Prot.read then
    if e.key = 0 || Pkey.allows pkru ~key:e.key ~write then e.pa + (va - e.vbase)
    else key_failed
  else prot_failed

let translate_probe t ~tag ~pkru ~va ~write =
  let vbase = base_4k va in
  let s = Array.unsafe_get t.mru (tag land (mru_slots - 1)) in
  if slot_matches t s ~tag ~vbase then begin
    let e = s.m_entry in
    hit_entry t e;
    checked_pa ~pkru ~write ~va e
  end
  else begin
    let set_idx = set_of_4k t va in
    let set = t.array_4k.(set_idx) in
    let i4 = probe_set set ~tag ~vbase in
    if i4 >= 0 then begin
      let e = set.(i4) in
      hit_entry t e;
      record_mru t ~tag ~vbase e Page_table.P4K ~set_idx;
      checked_pa ~pkru ~write ~va e
    end
    else begin
      let i2 = probe_set t.array_2m ~tag ~vbase:(base_2m va) in
      if i2 >= 0 then begin
        let e = t.array_2m.(i2) in
        hit_entry t e;
        record_mru t ~tag ~vbase e Page_table.P2M ~set_idx;
        checked_pa ~pkru ~write ~va e
      end
      else begin
        t.stats.misses <- t.stats.misses + 1;
        missed
      end
    end
  end

let victim t entries =
  (* Invalid entry first, else LRU. *)
  let n = Array.length entries in
  let best = ref 0 in
  (try
     for i = 0 to n - 1 do
       if not entries.(i).valid then begin
         best := i;
         raise Exit
       end;
       if entries.(i).last_use < entries.(!best).last_use then best := i
     done
   with Exit -> ());
  if entries.(!best).valid then t.stats.evictions <- t.stats.evictions + 1;
  entries.(!best)

let fill t e ~tag ~vbase ~pa ~prot ~key ~global =
  e.valid <- true;
  e.vbase <- vbase;
  e.tag <- tag;
  e.global <- global;
  e.pa <- pa;
  e.prot <- prot;
  e.key <- key;
  e.last_use <- tick t;
  t.stats.insertions <- t.stats.insertions + 1

let insert ?(key = 0) t ~tag ~va ~pa ~prot ~size ~global =
  if tag < 0 || tag > max_tag t then invalid_arg "Tlb.insert: tag out of range";
  if key < 0 || key > Pkey.max_key then invalid_arg "Tlb.insert: key out of range";
  match size with
  | Page_table.P4K ->
    let vbase = base_4k va in
    let pa = Size.round_down pa ~align:Addr.page_size in
    let set_idx = set_of_4k t va in
    let set =
      let s = t.array_4k.(set_idx) in
      if s != no_ways then s
      else begin
        let s = Array.init t.cfg.ways_4k (fun _ -> fresh_entry ()) in
        t.array_4k.(set_idx) <- s;
        s
      end
    in
    (* Refresh in place only when the exact (tag, global) identity is
       already present; a looser probe would let a non-global fill
       clobber a global entry at the same vbase. *)
    let i = probe_exact set ~tag ~vbase ~global in
    let e = if i >= 0 then set.(i) else victim t set in
    if not e.valid then begin
      if t.valid_4k.(set_idx) = 0 then note_occupied t set_idx;
      t.valid_4k.(set_idx) <- t.valid_4k.(set_idx) + 1
    end;
    t.set_gens.(set_idx) <- t.set_gens.(set_idx) + 1;
    fill t e ~tag ~vbase ~pa ~prot ~key ~global
  | Page_table.P2M ->
    let vbase = base_2m va in
    let pa = Size.round_down pa ~align:(Size.mib 2) in
    let i = probe_exact t.array_2m ~tag ~vbase ~global in
    let e = if i >= 0 then t.array_2m.(i) else victim t t.array_2m in
    if not e.valid then t.valid_2m <- t.valid_2m + 1;
    t.gen_2m <- t.gen_2m + 1;
    fill t e ~tag ~vbase ~pa ~prot ~key ~global

let iter_entries t f =
  Array.iter (fun set -> Array.iter f set) t.array_4k;
  Array.iter f t.array_2m

(* Kill matching entries in one entry array; returns the kill count.
   Callers decide which count/gen to charge it to. *)
let kill_where entries pred =
  let killed = ref 0 in
  Array.iter
    (fun e ->
      if e.valid && pred e then begin
        e.valid <- false;
        incr killed
      end)
    entries;
  !killed

let flush_where t pred =
  t.stats.flushes <- t.stats.flushes + 1;
  let n = ref 0 in
  (* Visit only sets that may hold valid entries (the occupancy
     worklist; all sets on overflow). Sets with a zero count are
     skipped outright; sets where nothing matched keep their
     generation, so MRU records over them stay warm — in both cases
     the observable effect (zero entries dropped) is what the full
     scan would have produced. Survivors are compacted back into the
     worklist. *)
  let visit si kept =
    if t.valid_4k.(si) > 0 then begin
      let killed = kill_where t.array_4k.(si) pred in
      if killed > 0 then begin
        t.valid_4k.(si) <- t.valid_4k.(si) - killed;
        t.set_gens.(si) <- t.set_gens.(si) + 1;
        n := !n + killed
      end;
      if t.valid_4k.(si) > 0 then begin
        t.occ.(kept) <- si;
        kept + 1
      end
      else kept
    end
    else kept
  in
  let kept = ref 0 in
  if t.occ_overflow then begin
    for si = 0 to Array.length t.array_4k - 1 do
      kept := visit si !kept
    done;
    t.occ_overflow <- false
  end
  else
    for k = 0 to t.n_occ - 1 do
      kept := visit t.occ.(k) !kept
    done;
  t.n_occ <- !kept;
  if t.valid_2m > 0 then begin
    let killed = kill_where t.array_2m pred in
    if killed > 0 then begin
      t.valid_2m <- t.valid_2m - killed;
      t.gen_2m <- t.gen_2m + 1;
      n := !n + killed
    end
  end;
  t.stats.flushed_entries <- t.stats.flushed_entries + !n;
  !n

let flush_nonglobal t =
  notify_flush t Sj_obs.Event.Flush_nonglobal
    (flush_where t (fun e -> not e.global))

let flush_all t =
  notify_flush t Sj_obs.Event.Flush_all (flush_where t (fun _ -> true))

let flush_tag t ~tag =
  notify_flush t (Sj_obs.Event.Flush_tag tag)
    (flush_where t (fun e -> (not e.global) && e.tag = tag))

let invalidate_page t ~va =
  let v4 = base_4k va and v2 = base_2m va in
  let n = ref 0 in
  let pred e = e.vbase = v4 || e.vbase = v2 in
  (* A 4 KiB entry for [v4] can only live in [v4]'s set; the only other
     4 KiB base the predicate can match is [v2] (a 2 MiB base is itself
     page-aligned), which can only live in [v2]'s set. Every other 4 KiB
     set is provably unaffected, so skip it. The small 2 MiB array is
     scanned in full. *)
  let kill_set si =
    if t.valid_4k.(si) > 0 then begin
      let killed = kill_where t.array_4k.(si) pred in
      if killed > 0 then begin
        t.valid_4k.(si) <- t.valid_4k.(si) - killed;
        t.set_gens.(si) <- t.set_gens.(si) + 1;
        n := !n + killed
      end
    end
  in
  let s4 = set_of_4k t v4 in
  kill_set s4;
  let s2 = set_of_4k t v2 in
  if s2 <> s4 then kill_set s2;
  if t.valid_2m > 0 then begin
    let killed = kill_where t.array_2m pred in
    if killed > 0 then begin
      t.valid_2m <- t.valid_2m - killed;
      t.gen_2m <- t.gen_2m + 1;
      n := !n + killed
    end
  end;
  notify_flush t (Sj_obs.Event.Flush_page v4) !n

let occupancy t =
  let n = ref 0 in
  iter_entries t (fun e -> if e.valid then incr n);
  !n
