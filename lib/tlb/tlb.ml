open Sj_util
open Sj_paging

type config = { sets_4k : int; ways_4k : int; entries_2m : int; tag_bits : int }

let default_config = { sets_4k = 256; ways_4k = 4; entries_2m = 32; tag_bits = 12 }

type hit = { pa : int; prot : Prot.t; size : Page_table.page_size }

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable flushes : int;
  mutable flushed_entries : int;
}

type entry = {
  mutable valid : bool;
  mutable vbase : int; (* virtual base of the translated page *)
  mutable tag : int;
  mutable global : bool;
  mutable pa : int; (* physical base of the page *)
  mutable prot : Prot.t;
  mutable last_use : int;
}

type t = {
  cfg : config;
  array_4k : entry array array; (* [set].[way] *)
  array_2m : entry array;
  stats : stats;
  mutable clock : int;
  (* Host-side MRU fast path. [gen] is bumped whenever array contents
     change (fill, flush, invalidate); the MRU record is only trusted
     while [mru_gen = gen], which makes a hit provably identical to
     re-running the full scan (nothing that affects matching changed
     since the scan that recorded it). *)
  mutable gen : int;
  mutable mru_gen : int; (* -1 = empty *)
  mutable mru_tag : int;
  mutable mru_vbase : int; (* 4 KiB base of the access that recorded it *)
  mutable mru_size : Page_table.page_size;
  mutable mru_entry : entry;
  (* Observability hook, installed by Machine.create when tracing is on;
     called once per flush operation with the flush kind and the number
     of entries invalidated. None (the default) costs one test per
     flush — nothing on lookup/insert hot paths. *)
  mutable obs : (Sj_obs.Event.flush_kind -> int -> unit) option;
}

let fresh_entry () =
  { valid = false; vbase = 0; tag = 0; global = false; pa = 0; prot = Prot.none; last_use = 0 }

let fresh_stats () =
  { hits = 0; misses = 0; insertions = 0; evictions = 0; flushes = 0; flushed_entries = 0 }

let create cfg =
  if not (Size.is_power_of_two cfg.sets_4k) then invalid_arg "Tlb.create: sets_4k";
  if cfg.ways_4k <= 0 || cfg.entries_2m <= 0 then invalid_arg "Tlb.create: sizes";
  {
    cfg;
    array_4k = Array.init cfg.sets_4k (fun _ -> Array.init cfg.ways_4k (fun _ -> fresh_entry ()));
    array_2m = Array.init cfg.entries_2m (fun _ -> fresh_entry ());
    stats = fresh_stats ();
    clock = 0;
    gen = 0;
    mru_gen = -1;
    mru_tag = 0;
    mru_vbase = -1;
    mru_size = Page_table.P4K;
    mru_entry = fresh_entry ();
    obs = None;
  }

let dirty t = t.gen <- t.gen + 1
let set_obs t hook = t.obs <- hook

let notify_flush t kind entries =
  match t.obs with None -> () | Some f -> f kind entries

let config t = t.cfg
let stats t = t.stats

let reset_stats t =
  let s = t.stats in
  s.hits <- 0;
  s.misses <- 0;
  s.insertions <- 0;
  s.evictions <- 0;
  s.flushes <- 0;
  s.flushed_entries <- 0

let max_tag t = (1 lsl t.cfg.tag_bits) - 1
let tick t = t.clock <- t.clock + 1; t.clock
let set_of_4k t va = Addr.page_of va land (t.cfg.sets_4k - 1)
let base_4k va = Size.round_down va ~align:Addr.page_size
let base_2m va = Size.round_down va ~align:(Size.mib 2)

let entry_matches e ~tag ~vbase = e.valid && e.vbase = vbase && (e.global || e.tag = tag)

(* Sentinel results of [translate_probe]; PAs are non-negative, so
   these cannot collide with a real translation. *)
let missed = -1
let prot_failed = -2

(* Way index of the matching entry, or -1. A direct indexed loop so the
   hot paths (lookup, insert refresh) allocate nothing. *)
let probe_set set ~tag ~vbase =
  let n = Array.length set in
  let rec go i =
    if i >= n then -1 else if entry_matches set.(i) ~tag ~vbase then i else go (i + 1)
  in
  go 0

(* Exact-identity probe used by [insert]'s refresh-in-place path. Unlike
   [entry_matches] it does NOT treat a global entry as matching every
   tag: refreshing is only sound when (tag, global) are identical,
   otherwise a non-global fill for tag T would silently overwrite a
   global mapping that happens to share the vbase. *)
let probe_exact set ~tag ~vbase ~global =
  let n = Array.length set in
  let rec go i =
    if i >= n then -1
    else
      let e = set.(i) in
      if e.valid && e.vbase = vbase && e.tag = tag && e.global = global then i
      else go (i + 1)
  in
  go 0

let hit_entry t e =
  e.last_use <- tick t;
  t.stats.hits <- t.stats.hits + 1

let lookup t ~tag ~va =
  let hit_of e size = { pa = e.pa + (va - e.vbase); prot = e.prot; size } in
  let set = t.array_4k.(set_of_4k t va) in
  let i4 = probe_set set ~tag ~vbase:(base_4k va) in
  if i4 >= 0 then begin
    let e = set.(i4) in
    hit_entry t e;
    Some (hit_of e Page_table.P4K)
  end
  else begin
    let i2 = probe_set t.array_2m ~tag ~vbase:(base_2m va) in
    if i2 >= 0 then begin
      let e = t.array_2m.(i2) in
      hit_entry t e;
      Some (hit_of e Page_table.P2M)
    end
    else begin
      t.stats.misses <- t.stats.misses + 1;
      None
    end
  end

let record_mru t ~tag ~va e size =
  t.mru_gen <- t.gen;
  t.mru_tag <- tag;
  t.mru_vbase <- base_4k va;
  t.mru_size <- size;
  t.mru_entry <- e

let mru_matches t ~tag ~va =
  t.mru_gen = t.gen && t.mru_tag = tag && t.mru_vbase = base_4k va

let lookup_fast t ~tag ~va =
  if mru_matches t ~tag ~va then begin
    let e = t.mru_entry in
    hit_entry t e;
    Some { pa = e.pa + (va - e.vbase); prot = e.prot; size = t.mru_size }
  end
  else begin
    let set = t.array_4k.(set_of_4k t va) in
    let i4 = probe_set set ~tag ~vbase:(base_4k va) in
    if i4 >= 0 then begin
      let e = set.(i4) in
      hit_entry t e;
      record_mru t ~tag ~va e Page_table.P4K;
      Some { pa = e.pa + (va - e.vbase); prot = e.prot; size = Page_table.P4K }
    end
    else begin
      let i2 = probe_set t.array_2m ~tag ~vbase:(base_2m va) in
      if i2 >= 0 then begin
        let e = t.array_2m.(i2) in
        hit_entry t e;
        record_mru t ~tag ~va e Page_table.P2M;
        Some { pa = e.pa + (va - e.vbase); prot = e.prot; size = Page_table.P2M }
      end
      else begin
        t.stats.misses <- t.stats.misses + 1;
        None
      end
    end
  end

(* Protection check folded in so the machine's hot path needs no [hit]
   record, no option, and no closure. *)
let checked_pa ~write ~va e =
  if if write then e.prot.Prot.write else e.prot.Prot.read then e.pa + (va - e.vbase)
  else prot_failed

let translate_probe t ~tag ~va ~write =
  if mru_matches t ~tag ~va then begin
    let e = t.mru_entry in
    hit_entry t e;
    checked_pa ~write ~va e
  end
  else begin
    let set = t.array_4k.(set_of_4k t va) in
    let i4 = probe_set set ~tag ~vbase:(base_4k va) in
    if i4 >= 0 then begin
      let e = set.(i4) in
      hit_entry t e;
      record_mru t ~tag ~va e Page_table.P4K;
      checked_pa ~write ~va e
    end
    else begin
      let i2 = probe_set t.array_2m ~tag ~vbase:(base_2m va) in
      if i2 >= 0 then begin
        let e = t.array_2m.(i2) in
        hit_entry t e;
        record_mru t ~tag ~va e Page_table.P2M;
        checked_pa ~write ~va e
      end
      else begin
        t.stats.misses <- t.stats.misses + 1;
        missed
      end
    end
  end

let victim t entries =
  (* Invalid entry first, else LRU. *)
  let n = Array.length entries in
  let best = ref 0 in
  (try
     for i = 0 to n - 1 do
       if not entries.(i).valid then begin
         best := i;
         raise Exit
       end;
       if entries.(i).last_use < entries.(!best).last_use then best := i
     done
   with Exit -> ());
  if entries.(!best).valid then t.stats.evictions <- t.stats.evictions + 1;
  entries.(!best)

let fill t e ~tag ~vbase ~pa ~prot ~global =
  dirty t;
  e.valid <- true;
  e.vbase <- vbase;
  e.tag <- tag;
  e.global <- global;
  e.pa <- pa;
  e.prot <- prot;
  e.last_use <- tick t;
  t.stats.insertions <- t.stats.insertions + 1

let insert t ~tag ~va ~pa ~prot ~size ~global =
  if tag < 0 || tag > max_tag t then invalid_arg "Tlb.insert: tag out of range";
  match size with
  | Page_table.P4K ->
    let vbase = base_4k va in
    let pa = Size.round_down pa ~align:Addr.page_size in
    let set = t.array_4k.(set_of_4k t va) in
    (* Refresh in place only when the exact (tag, global) identity is
       already present; a looser probe would let a non-global fill
       clobber a global entry at the same vbase. *)
    let i = probe_exact set ~tag ~vbase ~global in
    let e = if i >= 0 then set.(i) else victim t set in
    fill t e ~tag ~vbase ~pa ~prot ~global
  | Page_table.P2M ->
    let vbase = base_2m va in
    let pa = Size.round_down pa ~align:(Size.mib 2) in
    let i = probe_exact t.array_2m ~tag ~vbase ~global in
    let e = if i >= 0 then t.array_2m.(i) else victim t t.array_2m in
    fill t e ~tag ~vbase ~pa ~prot ~global

let iter_entries t f =
  Array.iter (fun set -> Array.iter f set) t.array_4k;
  Array.iter f t.array_2m

let flush_where t pred =
  dirty t;
  t.stats.flushes <- t.stats.flushes + 1;
  let n = ref 0 in
  iter_entries t (fun e ->
      if e.valid && pred e then begin
        e.valid <- false;
        incr n
      end);
  t.stats.flushed_entries <- t.stats.flushed_entries + !n;
  !n

let flush_nonglobal t =
  notify_flush t Sj_obs.Event.Flush_nonglobal
    (flush_where t (fun e -> not e.global))

let flush_all t =
  notify_flush t Sj_obs.Event.Flush_all (flush_where t (fun _ -> true))

let flush_tag t ~tag =
  notify_flush t (Sj_obs.Event.Flush_tag tag)
    (flush_where t (fun e -> (not e.global) && e.tag = tag))

let invalidate_page t ~va =
  dirty t;
  let v4 = base_4k va and v2 = base_2m va in
  let n = ref 0 in
  let kill e =
    if e.valid && (e.vbase = v4 || e.vbase = v2) then begin
      e.valid <- false;
      incr n
    end
  in
  (* A 4 KiB entry for [v4] can only live in [v4]'s set; the only other
     4 KiB base the predicate can match is [v2] (a 2 MiB base is itself
     page-aligned), which can only live in [v2]'s set. Every other 4 KiB
     set is provably unaffected, so skip it. The small 2 MiB array is
     scanned in full. *)
  let s4 = set_of_4k t v4 in
  Array.iter kill t.array_4k.(s4);
  let s2 = set_of_4k t v2 in
  if s2 <> s4 then Array.iter kill t.array_4k.(s2);
  Array.iter kill t.array_2m;
  notify_flush t (Sj_obs.Event.Flush_page v4) !n

let occupancy t =
  let n = ref 0 in
  iter_entries t (fun e -> if e.valid then incr n);
  !n
