(** Per-simulation fault injector.

    An injector is attached to a simulation's [Sim_ctx] (through the
    extensible [Sim_ctx.fault] slot, like [Sj_obs.Recorder]) and
    interprets one {!Plan}. Hook sites in the dispatch, grow and
    persist paths consult it via [active ctx] and do all injection work
    inside the [Some] branch, so a run with no plan installed is
    bit-identical — same cycles, same traces — to a build without the
    subsystem.

    Determinism contract: faults fire at points defined purely by
    simulation state (a pid's n-th invocation of a dispatch entry, the
    n-th grow, the n-th save); the only randomness is the torn-write
    offset when [at_byte = -1], drawn from the injector's own seeded
    generator. Same plan + same seed = same faults at the same simulated
    cycles, at [-j 1] and [-j N] alike. *)

type t

type Sj_util.Sim_ctx.fault += Injector of t

exception Killed of { pid : int; op : string }
(** Raised out of a dispatch call whose invoking process was killed by
    the injector, after crash teardown has completed. Not an
    [Sj_abi.Error.Fault]: death is not an errno. *)

type decision = Pass | Kill | Would_block

val create : ?seed:int -> Plan.t -> t
(** Fresh injector for [plan]; [seed] (default 42) feeds the torn-write
    offset generator. *)

val attach : Sj_util.Sim_ctx.t -> t -> unit
val of_ctx : Sj_util.Sim_ctx.t -> t option

val active : Sj_util.Sim_ctx.t -> t option
(** The attached injector, if any — the hook-site guard. *)

val seed : t -> int
val plan : t -> Plan.t

val fired : t -> Plan.t
(** Faults that have fired so far, in firing order. A [Torn_write] is
    recorded with its resolved byte offset, so a failing seeded run can
    be replayed with an explicit [at_byte]. *)

val on_syscall : t -> pid:int -> nr:int -> held:int list -> decision
(** Consulted by the dispatch layer before an entry body runs. [held]
    lists the segment ids the invoking process holds locks on. Kills
    take priority over storms; at most one fault fires per call. *)

val on_grow : t -> bool
(** Counts one segment grow; [true] means this grow must fail with
    [Capacity]. *)

val tear_save : t -> bytes -> bytes
(** Counts one persist save; a matching [Torn_write] returns the image
    truncated at the planned (or seeded-random) offset. *)

val ambient_plan : unit -> (Plan.t * int) option
(** Domain-local default consulted by [Machine.create]: [Some (plan,
    seed)] means new machines boot with a fresh injector attached. *)

val with_plan : ?seed:int -> Plan.t -> (unit -> 'a) -> 'a
(** [with_plan plan f] runs [f] with the ambient default set (like
    [Recorder.with_tracing]); domain-local, restored on exit. *)
